/**
 * @file
 * Monotone resource timelines.
 *
 * The simulator models QCCD parallelism constraints (paper Section V-B:
 * gates within a trap execute serially; independent shuttles run in
 * parallel with each other and with gates in other traps) by giving each
 * trap, segment run, and junction an exclusive timeline. A primitive
 * operation acquires its resource no earlier than both the operation's
 * data-ready time and the resource's free time; waiting at a busy
 * junction (the paper's inserted "wait operations") falls out naturally.
 */

#ifndef QCCD_SIM_RESOURCES_HPP
#define QCCD_SIM_RESOURCES_HPP

#include <algorithm>

#include "common/types.hpp"

namespace qccd
{

/** Exclusive-use timeline for one hardware resource. */
class ResourceTimeline
{
  public:
    /**
     * Reserve the resource for @p duration starting no earlier than
     * @p ready.
     *
     * @return the actual start time granted
     */
    TimeUs acquire(TimeUs ready, TimeUs duration)
    {
        const TimeUs start = std::max(ready, freeAt_);
        freeAt_ = start + duration;
        return start;
    }

    /** Earliest time the resource is free. */
    TimeUs freeAt() const { return freeAt_; }

  private:
    TimeUs freeAt_ = 0;
};

} // namespace qccd

#endif // QCCD_SIM_RESOURCES_HPP
