/**
 * @file
 * Metric accumulation for one simulated application execution.
 *
 * The simulator computes application fidelity as the product of the
 * fidelities of every operation (paper Section V-B); the product is kept
 * in log domain so deeply unreliable configurations (app fidelity below
 * 1e-300) still compare correctly instead of flushing to zero.
 */

#ifndef QCCD_SIM_METRICS_HPP
#define QCCD_SIM_METRICS_HPP

#include "sim/trace.hpp"

namespace qccd
{

/** Operation counters over one run. */
struct OpCounts
{
    long algorithmMs = 0;   ///< MS gates from the program
    long reorderMs = 0;     ///< MS gates inserted for GS reordering
    long oneQubit = 0;
    long measurements = 0;
    long splits = 0;
    long merges = 0;
    long moves = 0;         ///< edge traversals
    long segmentsMoved = 0; ///< segments covered by those traversals
    long junctionCrossings = 0;
    long rotations = 0;     ///< IS hop rotations
    long transits = 0;      ///< empty-trap pass-throughs
    long shuttles = 0;      ///< complete ion trips between traps
    long evictions = 0;     ///< make-room shuttles
    long trapPassThroughs = 0; ///< merge+split detours at full traps

    long totalMs() const { return algorithmMs + reorderMs; }
};

/**
 * Fidelity floor applied inside the log product so it stays finite
 * (exposed so ModelTables can precompute clamped logs bit-identically).
 */
constexpr double kMinFidelity = 1e-15;

/** Aggregate results of one simulated execution. */
struct SimResult
{
    TimeUs makespan = 0;      ///< application runtime
    double logFidelity = 0;   ///< sum of log op fidelities
    long zeroFidelityOps = 0; ///< ops whose modeled fidelity hit <= 0

    OpCounts counts;

    /** Max chain motional energy seen anywhere during the run. */
    Quanta maxChainEnergy = 0;

    /** Summed MS-gate error terms, for the Fig. 6g decomposition. @{ */
    double sumBackgroundError = 0;
    double sumMotionalError = 0;
    /** @} */

    /** Busy-time sums by class (parallel ops overlap). @{ */
    TimeUs computeBusy = 0;
    TimeUs commBusy = 0;
    /** @} */

    int effectiveBuffer = 0; ///< buffer slots the mapper achieved

    /** Application fidelity exp(logFidelity). */
    double fidelity() const;

    /** Mean per-MS-gate background error (Fig. 6g series). */
    double meanBackgroundError() const;

    /** Mean per-MS-gate motional error (Fig. 6g series). */
    double meanMotionalError() const;

    /** Fold one scheduled op into counters/makespan/fidelity. */
    void noteOp(const PrimOp &op);

    /**
     * Metrics-only fast paths: identical accounting to noteOp without
     * requiring a populated PrimOp, for the no-trace schedule mode. The
     * caller passes log(max(fidelity, kMinFidelity)) precomputed — the
     * emitter memoizes it for the constant-fidelity op kinds — so the
     * accumulated sums match noteOp's bit for bit. @{
     */
    void noteMsOp(TimeUs end, TimeUs duration, bool for_comm,
                  double err_background, double err_motional,
                  double fidelity, double log_fidelity);
    void noteSimpleOp(PrimKind kind, TimeUs end, TimeUs duration,
                      bool for_comm, double fidelity,
                      double log_fidelity);
    /** @} */
};

} // namespace qccd

#endif // QCCD_SIM_METRICS_HPP
