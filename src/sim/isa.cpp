#include "sim/isa.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qccd
{

namespace
{

PrimKind
primKindFromName(const std::string &name)
{
    if (name == "ms") return PrimKind::GateMS;
    if (name == "1q") return PrimKind::Gate1Q;
    if (name == "measure") return PrimKind::Measure;
    if (name == "split") return PrimKind::Split;
    if (name == "merge") return PrimKind::Merge;
    if (name == "move") return PrimKind::Move;
    if (name == "junction") return PrimKind::JunctionCross;
    if (name == "rotate") return PrimKind::Rotate;
    if (name == "transit") return PrimKind::Transit;
    throw ConfigError("unknown QCCD instruction '" + name + "'");
}

} // namespace

std::string
writeIsa(const Trace &trace)
{
    std::ostringstream out;
    out << "# QCCD executable, " << trace.size() << " primitives\n";
    out.precision(17);
    for (const PrimOp &op : trace) {
        out << op.start << " " << op.duration << " "
            << primKindName(op.kind);
        if (op.trap != kInvalidId)
            out << " trap=" << op.trap;
        if (op.edge != kInvalidId)
            out << " edge=" << op.edge;
        if (op.junction != kInvalidId)
            out << " junction=" << op.junction;
        if (op.ion != kInvalidId)
            out << " ion=" << op.ion;
        if (op.q0 != kInvalidId)
            out << " q0=" << op.q0;
        if (op.q1 != kInvalidId)
            out << " q1=" << op.q1;
        if (op.kind == PrimKind::GateMS) {
            out << " d=" << op.separation << " n=" << op.chainLength
                << " nbar=" << op.nbar;
        }
        out << " fid=" << op.fidelity;
        if (op.forCommunication)
            out << " comm";
        out << "\n";
    }
    return out.str();
}

Trace
parseIsa(const std::string &text)
{
    Trace trace;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream fields(line);
        PrimOp op;
        std::string kind;
        if (!(fields >> op.start >> op.duration >> kind)) {
            // Blank or comment-only line.
            bool blank = true;
            for (char c : line)
                if (!std::isspace(static_cast<unsigned char>(c)))
                    blank = false;
            fatalUnless(blank, "malformed QCCD instruction at line " +
                        std::to_string(line_no));
            continue;
        }
        op.kind = primKindFromName(kind);

        std::string attr;
        while (fields >> attr) {
            if (attr == "comm") {
                op.forCommunication = true;
                continue;
            }
            const size_t eq = attr.find('=');
            fatalUnless(eq != std::string::npos,
                        "malformed attribute '" + attr + "' at line " +
                        std::to_string(line_no));
            const std::string key = attr.substr(0, eq);
            const std::string value = attr.substr(eq + 1);
            try {
                if (key == "trap") op.trap = std::stoi(value);
                else if (key == "edge") op.edge = std::stoi(value);
                else if (key == "junction")
                    op.junction = std::stoi(value);
                else if (key == "ion") op.ion = std::stoi(value);
                else if (key == "q0") op.q0 = std::stoi(value);
                else if (key == "q1") op.q1 = std::stoi(value);
                else if (key == "d") op.separation = std::stoi(value);
                else if (key == "n") op.chainLength = std::stoi(value);
                else if (key == "nbar") op.nbar = std::stod(value);
                else if (key == "fid") op.fidelity = std::stod(value);
                else
                    throw ConfigError("unknown attribute '" + key +
                                      "' at line " +
                                      std::to_string(line_no));
            } catch (const std::invalid_argument &) {
                throw ConfigError("bad value in '" + attr +
                                  "' at line " + std::to_string(line_no));
            }
        }
        trace.push_back(op);
    }
    return trace;
}

void
writeIsaFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    fatalUnless(out.good(), "cannot write ISA file '" + path + "'");
    out << writeIsa(trace);
    fatalUnless(out.good(), "error writing ISA file '" + path + "'");
}

Trace
parseIsaFile(const std::string &path)
{
    std::ifstream in(path);
    fatalUnless(in.good(), "cannot open ISA file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseIsa(buf.str());
}

} // namespace qccd
