#include "sim/isa.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string_view>
#include <system_error>

#include "common/error.hpp"

namespace qccd
{

namespace
{

PrimKind
primKindFromName(std::string_view name)
{
    if (name == "ms") return PrimKind::GateMS;
    if (name == "1q") return PrimKind::Gate1Q;
    if (name == "measure") return PrimKind::Measure;
    if (name == "split") return PrimKind::Split;
    if (name == "merge") return PrimKind::Merge;
    if (name == "move") return PrimKind::Move;
    if (name == "junction") return PrimKind::JunctionCross;
    if (name == "rotate") return PrimKind::Rotate;
    if (name == "transit") return PrimKind::Transit;
    throw ConfigError("unknown QCCD instruction '" + std::string(name) +
                      "'");
}

/** printf-%.17g rendering, matching the former ostream formatting. */
void
appendDouble(std::string &out, double value)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                   std::chars_format::general, 17);
    out.append(buf, res.ptr);
}

void
appendInt(std::string &out, long value)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, res.ptr);
}

/** Whole-token numeric parses; false on any trailing garbage. @{ */
bool
parseDouble(std::string_view token, double *out)
{
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), *out,
                        std::chars_format::general);
    return res.ec == std::errc() &&
           res.ptr == token.data() + token.size();
}

bool
parseInt(std::string_view token, int *out)
{
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), *out);
    return res.ec == std::errc() &&
           res.ptr == token.data() + token.size();
}
/** @} */

constexpr std::string_view kSpaces = " \t\r\v\f";

/** Pop the next whitespace-separated token off @p rest (empty = none). */
std::string_view
nextToken(std::string_view *rest)
{
    const size_t begin = rest->find_first_not_of(kSpaces);
    if (begin == std::string_view::npos) {
        *rest = {};
        return {};
    }
    size_t end = rest->find_first_of(kSpaces, begin);
    if (end == std::string_view::npos)
        end = rest->size();
    const std::string_view token = rest->substr(begin, end - begin);
    rest->remove_prefix(end);
    return token;
}

} // namespace

std::string
writeIsa(const Trace &trace)
{
    std::string out;
    // ~96 characters covers the longest (MS gate) lines; one upfront
    // reservation replaces the ostringstream's repeated growth.
    out.reserve(64 + trace.size() * 96);
    out += "# QCCD executable, ";
    appendInt(out, static_cast<long>(trace.size()));
    out += " primitives\n";
    for (const PrimOp &op : trace) {
        appendDouble(out, op.start);
        out += ' ';
        appendDouble(out, op.duration);
        out += ' ';
        out += primKindName(op.kind);
        if (op.trap != kInvalidId) {
            out += " trap=";
            appendInt(out, op.trap);
        }
        if (op.edge != kInvalidId) {
            out += " edge=";
            appendInt(out, op.edge);
        }
        if (op.junction != kInvalidId) {
            out += " junction=";
            appendInt(out, op.junction);
        }
        if (op.ion != kInvalidId) {
            out += " ion=";
            appendInt(out, op.ion);
        }
        if (op.q0 != kInvalidId) {
            out += " q0=";
            appendInt(out, op.q0);
        }
        if (op.q1 != kInvalidId) {
            out += " q1=";
            appendInt(out, op.q1);
        }
        if (op.kind == PrimKind::GateMS) {
            out += " d=";
            appendInt(out, op.separation);
            out += " n=";
            appendInt(out, op.chainLength);
            out += " nbar=";
            appendDouble(out, op.nbar);
        }
        out += " fid=";
        appendDouble(out, op.fidelity);
        if (op.forCommunication)
            out += " comm";
        out += '\n';
    }
    return out;
}

Trace
parseIsa(const std::string &text)
{
    Trace trace;
    trace.reserve(
        static_cast<size_t>(std::count(text.begin(), text.end(), '\n')));

    const std::string_view all(text);
    size_t pos = 0;
    int line_no = 0;
    while (pos < all.size()) {
        size_t eol = all.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = all.size();
        std::string_view line = all.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;

        const size_t hash = line.find('#');
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);

        std::string_view rest = line;
        const std::string_view start_tok = nextToken(&rest);
        if (start_tok.empty())
            continue; // blank or comment-only line

        PrimOp op;
        const std::string_view dur_tok = nextToken(&rest);
        const std::string_view kind_tok = nextToken(&rest);
        if (!parseDouble(start_tok, &op.start) || dur_tok.empty() ||
            !parseDouble(dur_tok, &op.duration) || kind_tok.empty())
            throw ConfigError("malformed QCCD instruction at line " +
                              std::to_string(line_no));
        op.kind = primKindFromName(kind_tok);

        for (std::string_view attr = nextToken(&rest); !attr.empty();
             attr = nextToken(&rest)) {
            if (attr == "comm") {
                op.forCommunication = true;
                continue;
            }
            const size_t eq = attr.find('=');
            if (eq == std::string_view::npos)
                throw ConfigError("malformed attribute '" +
                                  std::string(attr) + "' at line " +
                                  std::to_string(line_no));
            const std::string_view key = attr.substr(0, eq);
            const std::string_view value = attr.substr(eq + 1);
            bool ok = false;
            if (key == "trap") ok = parseInt(value, &op.trap);
            else if (key == "edge") ok = parseInt(value, &op.edge);
            else if (key == "junction")
                ok = parseInt(value, &op.junction);
            else if (key == "ion") ok = parseInt(value, &op.ion);
            else if (key == "q0") ok = parseInt(value, &op.q0);
            else if (key == "q1") ok = parseInt(value, &op.q1);
            else if (key == "d") ok = parseInt(value, &op.separation);
            else if (key == "n") ok = parseInt(value, &op.chainLength);
            else if (key == "nbar") ok = parseDouble(value, &op.nbar);
            else if (key == "fid") ok = parseDouble(value, &op.fidelity);
            else
                throw ConfigError("unknown attribute '" +
                                  std::string(key) + "' at line " +
                                  std::to_string(line_no));
            if (!ok)
                throw ConfigError("bad value in '" + std::string(attr) +
                                  "' at line " + std::to_string(line_no));
        }
        trace.push_back(op);
    }
    return trace;
}

void
writeIsaFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    fatalUnless(out.good(), "cannot write ISA file '" + path + "'");
    out << writeIsa(trace);
    fatalUnless(out.good(), "error writing ISA file '" + path + "'");
}

Trace
parseIsaFile(const std::string &path)
{
    std::ifstream in(path);
    fatalUnless(in.good(), "cannot open ISA file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseIsa(buf.str());
}

} // namespace qccd
