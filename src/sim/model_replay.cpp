#include "sim/model_replay.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "models/model_tables.hpp"

namespace qccd
{

SimResult
replayModelEval(const ModelEvalLog &log, const HardwareParams &hw,
                const SimResult &base)
{
    const std::shared_ptr<const ModelTables> tables =
        ModelTables::shared(hw, log.maxChain());
    const HeatingModel heating = hw.heatingModel();

    SimResult out = base;
    out.logFidelity = 0;
    out.zeroFidelityOps = 0;
    out.sumBackgroundError = 0;
    out.sumMotionalError = 0;
    out.maxChainEnergy = 0;

    // The energy trajectory the recording run's DeviceState held:
    // per-trap chain energies plus the (single, see below) in-flight
    // ion's energy. max_seen mirrors DeviceState::maxEnergySeen —
    // updated exactly where setEnergy / detachEnd / setFlightEnergy
    // would have been called.
    std::vector<Quanta> energy;
    Quanta flight = 0;
    Quanta max_seen = 0;
    const auto trapEnergy = [&](TrapId t) -> Quanta & {
        const auto idx = static_cast<size_t>(t);
        if (idx >= energy.size())
            energy.resize(idx + 1, 0);
        return energy[idx];
    };

    const auto noteFidelity = [&](double fid, double log_fid) {
        if (fid <= 0)
            ++out.zeroFidelityOps;
        out.logFidelity += log_fid;
    };

    using Event = ModelEvalLog::Event;
    for (const Event &ev : log.events()) {
        switch (ev.kind) {
          case Event::Kind::Ms: {
            const GateErrorBreakdown err =
                tables->msError(ev.physDur, ev.a, trapEnergy(ev.trap));
            const double fid = err.fidelity();
            out.sumBackgroundError += err.background;
            out.sumMotionalError += err.motional;
            noteFidelity(fid,
                         std::log(std::max(fid, kMinFidelity)));
            break;
          }
          case Event::Kind::OneQubit:
            noteFidelity(tables->fidelity().oneQubitFidelity(),
                         tables->logOneQubitFidelity());
            break;
          case Event::Kind::Measure:
            noteFidelity(tables->fidelity().measureFidelity(),
                         tables->logMeasureFidelity());
            break;
          case Event::Kind::Split: {
            Quanta &e = trapEnergy(ev.trap);
            if (ev.a == 0) {
                // Last ion out: it keeps the chain energy plus the
                // split disturbance; the empty trap holds none.
                flight = e + heating.k1();
                e = 0;
            } else {
                const auto [rest, moved] =
                    heating.afterSplit(e, ev.a, 1);
                e = rest;
                max_seen = std::max(max_seen, rest);
                flight = moved;
            }
            max_seen = std::max(max_seen, flight);
            break;
          }
          case Event::Kind::Merge: {
            Quanta &e = trapEnergy(ev.trap);
            Quanta merged = heating.afterMerge(e, flight);
            merged *= hw.recoolFactor;
            e = merged;
            max_seen = std::max(max_seen, merged);
            break;
          }
          case Event::Kind::Moves:
            flight = heating.afterMoves(flight, ev.a);
            max_seen = std::max(max_seen, flight);
            break;
          case Event::Kind::Junction:
            flight = heating.afterJunction(flight);
            max_seen = std::max(max_seen, flight);
            break;
          case Event::Kind::IonSwapHop: {
            // Split off the swapping pair, rotate, merge back — the
            // intermediate halves never pass through setEnergy, and
            // the hop's merge does NOT recool (see emitIonSwapHop).
            panicUnless(ev.a > 2,
                        "ion-swap hop event on a chain without a split");
            Quanta &e = trapEnergy(ev.trap);
            const auto [rest, pair] =
                heating.afterSplit(e, ev.a - 2, 2);
            e = heating.afterMerge(rest, pair);
            max_seen = std::max(max_seen, e);
            break;
          }
        }
    }

    out.maxChainEnergy = max_seen;
    return out;
}

} // namespace qccd
