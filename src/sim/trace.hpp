/**
 * @file
 * Execution trace of primitive QCCD operations.
 *
 * The scheduler records every primitive it schedules; the trace drives
 * metric extraction, invariant checking (sim/checker.hpp) and debugging
 * dumps. One trace entry corresponds to one atomic reservation of one
 * hardware resource.
 */

#ifndef QCCD_SIM_TRACE_HPP
#define QCCD_SIM_TRACE_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace qccd
{

/** Kind of a primitive operation. */
enum class PrimKind
{
    GateMS,       ///< two-qubit MS gate (algorithm or reorder)
    Gate1Q,       ///< single-qubit gate
    Measure,      ///< qubit measurement
    Split,        ///< split an ion off a chain
    Merge,        ///< merge an ion into a chain
    Move,         ///< transport across one edge (segment run)
    JunctionCross,///< cross a junction
    Rotate,       ///< 180-degree two-ion rotation (IS hop)
    Transit       ///< pass through an empty trap without merging
};

/** Printable name of a primitive kind. */
std::string primKindName(PrimKind kind);

/** One scheduled primitive operation. */
struct PrimOp
{
    PrimKind kind = PrimKind::GateMS;
    TimeUs start = 0;
    TimeUs duration = 0;

    TrapId trap = kInvalidId;     ///< trap resource used (if any)
    EdgeId edge = kInvalidId;     ///< edge resource used (Move)
    NodeId junction = kInvalidId; ///< junction resource (JunctionCross)

    IonId ion = kInvalidId;       ///< shuttled ion (shuttle primitives)
    QubitId q0 = kInvalidId;      ///< first logical operand (gates)
    QubitId q1 = kInvalidId;      ///< second logical operand (MS)

    int chainLength = 0;          ///< chain length at gate time (MS)
    int separation = 0;           ///< ion separation at gate time (MS)
    Quanta nbar = 0;              ///< chain energy at gate time (MS)
    double errBackground = 0;     ///< Gamma*tau error term (MS)
    double errMotional = 0;       ///< A*(2nbar+1) error term (MS)
    double fidelity = 1.0;        ///< op fidelity contribution

    bool forCommunication = false;///< true for reorder/shuttle-support ops

    TimeUs end() const { return start + duration; }
};

/** Whole-run trace. */
using Trace = std::vector<PrimOp>;

/** Render a compact human-readable dump of @p trace (for debugging). */
std::string dumpTrace(const Trace &trace, size_t max_ops = 100);

} // namespace qccd

#endif // QCCD_SIM_TRACE_HPP
