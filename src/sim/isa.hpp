/**
 * @file
 * Textual QCCD instruction set serialization.
 *
 * The paper's compiler emits "an executable with primitive QCCD
 * instructions" (Section V-A). This module renders a scheduled trace as
 * that executable - one primitive per line with its resources, operands
 * and times - and parses it back, so compiled programs can be archived,
 * diffed and replayed by external tools.
 *
 * Format (whitespace-separated, one op per line, '#' comments):
 *
 *   <start> <duration> <kind> [trap=N] [edge=N] [junction=N] [ion=N]
 *           [q0=N] [q1=N] [d=N] [n=N] [nbar=F] [fid=F] [comm]
 */

#ifndef QCCD_SIM_ISA_HPP
#define QCCD_SIM_ISA_HPP

#include <string>

#include "sim/trace.hpp"

namespace qccd
{

/** Render @p trace as QCCD assembly text. */
std::string writeIsa(const Trace &trace);

/**
 * Parse QCCD assembly text back into a trace.
 *
 * @throws ConfigError on malformed input
 */
Trace parseIsa(const std::string &text);

/** Write @p trace to @p path. @throws ConfigError if unwritable. */
void writeIsaFile(const Trace &trace, const std::string &path);

/** Read a trace from @p path. @throws ConfigError if unreadable. */
Trace parseIsaFile(const std::string &path);

} // namespace qccd

#endif // QCCD_SIM_ISA_HPP
