#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace qccd
{

namespace
{

/** Fidelity floor so the log product stays finite. */
constexpr double kMinFidelity = 1e-15;

} // namespace

double
SimResult::fidelity() const
{
    return std::exp(logFidelity);
}

double
SimResult::meanBackgroundError() const
{
    const long ms = counts.totalMs();
    return ms == 0 ? 0.0 : sumBackgroundError / ms;
}

double
SimResult::meanMotionalError() const
{
    const long ms = counts.totalMs();
    return ms == 0 ? 0.0 : sumMotionalError / ms;
}

void
SimResult::noteOp(const PrimOp &op)
{
    makespan = std::max(makespan, op.end());

    switch (op.kind) {
      case PrimKind::GateMS:
        if (op.forCommunication)
            ++counts.reorderMs;
        else
            ++counts.algorithmMs;
        sumBackgroundError += op.errBackground;
        sumMotionalError += op.errMotional;
        break;
      case PrimKind::Gate1Q:
        ++counts.oneQubit;
        break;
      case PrimKind::Measure:
        ++counts.measurements;
        break;
      case PrimKind::Split:
        ++counts.splits;
        break;
      case PrimKind::Merge:
        ++counts.merges;
        break;
      case PrimKind::Move:
        ++counts.moves;
        break;
      case PrimKind::JunctionCross:
        ++counts.junctionCrossings;
        break;
      case PrimKind::Rotate:
        ++counts.rotations;
        break;
      case PrimKind::Transit:
        ++counts.transits;
        break;
    }

    if (op.forCommunication)
        commBusy += op.duration;
    else
        computeBusy += op.duration;

    if (op.fidelity <= 0)
        ++zeroFidelityOps;
    logFidelity += std::log(std::max(op.fidelity, kMinFidelity));
}

} // namespace qccd
