#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace qccd
{

double
SimResult::fidelity() const
{
    return std::exp(logFidelity);
}

double
SimResult::meanBackgroundError() const
{
    const long ms = counts.totalMs();
    return ms == 0 ? 0.0 : sumBackgroundError / ms;
}

double
SimResult::meanMotionalError() const
{
    const long ms = counts.totalMs();
    return ms == 0 ? 0.0 : sumMotionalError / ms;
}

void
SimResult::noteMsOp(TimeUs end, TimeUs duration, bool for_comm,
                    double err_background, double err_motional,
                    double fidelity, double log_fidelity)
{
    makespan = std::max(makespan, end);
    if (for_comm)
        ++counts.reorderMs;
    else
        ++counts.algorithmMs;
    sumBackgroundError += err_background;
    sumMotionalError += err_motional;

    if (for_comm)
        commBusy += duration;
    else
        computeBusy += duration;

    if (fidelity <= 0)
        ++zeroFidelityOps;
    logFidelity += log_fidelity;
}

void
SimResult::noteSimpleOp(PrimKind kind, TimeUs end, TimeUs duration,
                        bool for_comm, double fidelity,
                        double log_fidelity)
{
    makespan = std::max(makespan, end);

    switch (kind) {
      case PrimKind::GateMS:
        // MS gates carry error sums; they must go through noteMsOp.
        if (for_comm)
            ++counts.reorderMs;
        else
            ++counts.algorithmMs;
        break;
      case PrimKind::Gate1Q:
        ++counts.oneQubit;
        break;
      case PrimKind::Measure:
        ++counts.measurements;
        break;
      case PrimKind::Split:
        ++counts.splits;
        break;
      case PrimKind::Merge:
        ++counts.merges;
        break;
      case PrimKind::Move:
        ++counts.moves;
        break;
      case PrimKind::JunctionCross:
        ++counts.junctionCrossings;
        break;
      case PrimKind::Rotate:
        ++counts.rotations;
        break;
      case PrimKind::Transit:
        ++counts.transits;
        break;
    }

    if (for_comm)
        commBusy += duration;
    else
        computeBusy += duration;

    if (fidelity <= 0)
        ++zeroFidelityOps;
    logFidelity += log_fidelity;
}

void
SimResult::noteOp(const PrimOp &op)
{
    const double log_fid =
        std::log(std::max(op.fidelity, kMinFidelity));
    if (op.kind == PrimKind::GateMS)
        noteMsOp(op.end(), op.duration, op.forCommunication,
                 op.errBackground, op.errMotional, op.fidelity, log_fid);
    else
        noteSimpleOp(op.kind, op.end(), op.duration, op.forCommunication,
                     op.fidelity, log_fid);
}

} // namespace qccd
