/**
 * @file
 * Post-run trace analysis: per-trap utilization, shuttle-network load,
 * and a parallelism profile. Complements the scalar metrics of
 * metrics.hpp with the per-resource views an architect needs to spot
 * bottlenecks (e.g. a congested junction or one overloaded trap).
 */

#ifndef QCCD_SIM_ANALYSIS_HPP
#define QCCD_SIM_ANALYSIS_HPP

#include <string>
#include <vector>

#include "arch/topology.hpp"
#include "sim/trace.hpp"

namespace qccd
{

/** Busy-time accounting for one resource. */
struct ResourceUsage
{
    long ops = 0;
    TimeUs busy = 0;

    /** Busy fraction of @p makespan (0 when makespan is 0). */
    double utilization(TimeUs makespan) const;
};

/** Aggregate per-resource views over one trace. */
struct TraceAnalysis
{
    TimeUs makespan = 0;
    std::vector<ResourceUsage> traps;     ///< indexed by TrapId
    std::vector<ResourceUsage> edges;     ///< indexed by EdgeId
    std::vector<ResourceUsage> junctions; ///< indexed by NodeId

    /**
     * Average number of concurrently executing primitives, i.e. total
     * busy time across all ops divided by the makespan.
     */
    double meanParallelism = 0;

    /** Peak number of simultaneously executing primitives. */
    int peakParallelism = 0;

    /** Index of the busiest trap (kInvalidId when no trap ops). */
    TrapId busiestTrap = kInvalidId;

    /** Render a human-readable utilization report. */
    std::string report() const;
};

/** Analyze @p trace against @p topo. */
TraceAnalysis analyzeTrace(const Trace &trace, const Topology &topo);

} // namespace qccd

#endif // QCCD_SIM_ANALYSIS_HPP
