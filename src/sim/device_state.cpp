#include "sim/device_state.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qccd
{

DeviceState::DeviceState(const Topology &topo, int num_ions)
    : topo_(topo), chains_(topo.trapCount()),
      ionTrap_(num_ions, kInvalidId), ionPos_(num_ions, kInvalidId),
      ionPayload_(num_ions, kInvalidId), qubitIon_(num_ions, kInvalidId),
      flightEnergy_(num_ions, 0), trapRes_(topo.trapCount()),
      edgeRes_(topo.edgeCount()), nodeRes_(topo.nodeCount())
{
    fatalUnless(num_ions >= 1, "device state needs at least one ion");
    if (num_ions > topo.totalCapacity())
        fatalUnless(false, "application does not fit: " +
                    std::to_string(num_ions) + " qubits > device capacity " +
                    std::to_string(topo.totalCapacity()));
}

void
DeviceState::reset()
{
    for (ChainState &c : chains_) {
        c.ions.clear();
        c.energy = 0;
    }
    std::fill(ionTrap_.begin(), ionTrap_.end(), kInvalidId);
    std::fill(ionPos_.begin(), ionPos_.end(), kInvalidId);
    std::fill(ionPayload_.begin(), ionPayload_.end(), kInvalidId);
    std::fill(qubitIon_.begin(), qubitIon_.end(), kInvalidId);
    std::fill(flightEnergy_.begin(), flightEnergy_.end(), 0.0);
    std::fill(trapRes_.begin(), trapRes_.end(), ResourceTimeline{});
    std::fill(edgeRes_.begin(), edgeRes_.end(), ResourceTimeline{});
    std::fill(nodeRes_.begin(), nodeRes_.end(), ResourceTimeline{});
    maxEnergySeen_ = 0;
}

bool
DeviceState::fits(const Topology &topo, int num_ions) const
{
    return &topo == &topo_ && num_ions == numIons() &&
           chains_.size() == static_cast<size_t>(topo.trapCount()) &&
           trapRes_.size() == static_cast<size_t>(topo.trapCount()) &&
           edgeRes_.size() == static_cast<size_t>(topo.edgeCount()) &&
           nodeRes_.size() == static_cast<size_t>(topo.nodeCount());
}

void
DeviceState::reindexChain(TrapId t)
{
    const auto &ions = chains_[t].ions;
    for (size_t i = 0; i < ions.size(); ++i)
        ionPos_[ions[i]] = static_cast<int>(i);
}

bool
DeviceState::positionIndexConsistent() const
{
    for (TrapId t = 0; t < topo_.trapCount(); ++t) {
        const auto &ions = chains_[t].ions;
        for (size_t i = 0; i < ions.size(); ++i) {
            if (ionTrap_[ions[i]] != t)
                return false;
            if (ionPos_[ions[i]] != static_cast<int>(i))
                return false;
        }
    }
    for (IonId ion = 0; ion < numIons(); ++ion)
        if (ionTrap_[ion] == kInvalidId && ionPos_[ion] != kInvalidId)
            return false;
    return true;
}

void
DeviceState::placeIon(TrapId t, IonId ion, QubitId payload)
{
    panicUnless(t >= 0 && t < topo_.trapCount(), "trap out of range");
    panicUnless(ion >= 0 && ion < numIons(), "ion out of range");
    panicUnless(ionTrap_[ion] == kInvalidId && ionPayload_[ion] ==
                kInvalidId, "ion already placed");
    ChainState &c = chains_[t];
    fatalUnless(c.size() < topo_.node(topo_.trapNode(t)).capacity,
                "initial layout exceeds trap capacity");
    c.ions.push_back(ion);
    ionTrap_[ion] = t;
    ionPos_[ion] = c.size() - 1;
    ionPayload_[ion] = payload;
    qubitIon_[payload] = ion;
    QCCD_DBG_ASSERT(positionIndexConsistent(),
                    "placeIon broke the position index");
}

const ChainState &
DeviceState::chain(TrapId t) const
{
    panicUnless(t >= 0 && t < topo_.trapCount(), "trap out of range");
    return chains_[t];
}

void
DeviceState::setEnergy(TrapId t, Quanta e)
{
    panicUnless(t >= 0 && t < topo_.trapCount(), "trap out of range");
    panicUnless(e >= 0, "chain energy cannot be negative");
    chains_[t].energy = e;
    maxEnergySeen_ = std::max(maxEnergySeen_, e);
}

TrapId
DeviceState::trapOf(IonId ion) const
{
    panicUnless(ion >= 0 && ion < numIons(), "ion out of range");
    return ionTrap_[ion];
}

int
DeviceState::positionOf(IonId ion) const
{
    const TrapId t = trapOf(ion);
    panicUnless(t != kInvalidId, "ion is in flight");
    const int pos = ionPos_[ion];
    panicUnless(pos >= 0 && pos < chains_[t].size() &&
                    chains_[t].ions[pos] == ion,
                "ion/trap bookkeeping out of sync");
    return pos;
}

QubitId
DeviceState::payloadOf(IonId ion) const
{
    panicUnless(ion >= 0 && ion < numIons(), "ion out of range");
    return ionPayload_[ion];
}

IonId
DeviceState::ionOf(QubitId q) const
{
    panicUnless(q >= 0 && q < static_cast<int>(qubitIon_.size()),
                "qubit out of range");
    return qubitIon_[q];
}

void
DeviceState::swapPayloads(IonId a, IonId b)
{
    panicUnless(a != b, "cannot swap an ion's payload with itself");
    std::swap(ionPayload_[a], ionPayload_[b]);
    qubitIon_[ionPayload_[a]] = a;
    qubitIon_[ionPayload_[b]] = b;
    QCCD_DBG_ASSERT(qubitIon_[ionPayload_[a]] == a &&
                        qubitIon_[ionPayload_[b]] == b,
                    "swapPayloads broke the qubit->ion index");
}

IonId
DeviceState::swapToward(IonId ion, ChainEnd end)
{
    const TrapId t = trapOf(ion);
    panicUnless(t != kInvalidId, "ion is in flight");
    auto &ions = chains_[t].ions;
    const int pos = positionOf(ion);
    const int next = end == ChainEnd::Left ? pos - 1 : pos + 1;
    panicUnless(next >= 0 && next < static_cast<int>(ions.size()),
                "ion swap would fall off the chain end");
    std::swap(ions[pos], ions[next]);
    ionPos_[ions[pos]] = pos;
    ionPos_[ions[next]] = next;
    QCCD_DBG_ASSERT(positionIndexConsistent(),
                    "swapToward broke the position index");
    return ions[pos];
}

IonId
DeviceState::detachEnd(TrapId t, ChainEnd end, Quanta ion_energy)
{
    ChainState &c = chains_[t];
    panicUnless(c.size() >= 1, "cannot split an empty chain");
    IonId ion = kInvalidId;
    if (end == ChainEnd::Left) {
        ion = c.ions.front();
        c.ions.erase(c.ions.begin());
        reindexChain(t);
    } else {
        ion = c.ions.back();
        c.ions.pop_back();
    }
    ionTrap_[ion] = kInvalidId;
    ionPos_[ion] = kInvalidId;
    flightEnergy_[ion] = ion_energy;
    maxEnergySeen_ = std::max(maxEnergySeen_, ion_energy);
    QCCD_DBG_ASSERT(positionIndexConsistent(),
                    "detachEnd broke the position index");
    return ion;
}

void
DeviceState::attachEnd(TrapId t, ChainEnd end, IonId ion)
{
    panicUnless(ionTrap_[ion] == kInvalidId,
                "attachEnd requires an in-flight ion");
    ChainState &c = chains_[t];
    if (end == ChainEnd::Left) {
        c.ions.insert(c.ions.begin(), ion);
        ionTrap_[ion] = t;
        reindexChain(t);
    } else {
        c.ions.push_back(ion);
        ionTrap_[ion] = t;
        ionPos_[ion] = c.size() - 1;
    }
    QCCD_DBG_ASSERT(positionIndexConsistent(),
                    "attachEnd broke the position index");
}

Quanta
DeviceState::flightEnergy(IonId ion) const
{
    panicUnless(ionTrap_[ion] == kInvalidId, "ion is not in flight");
    return flightEnergy_[ion];
}

void
DeviceState::setFlightEnergy(IonId ion, Quanta e)
{
    panicUnless(ionTrap_[ion] == kInvalidId, "ion is not in flight");
    panicUnless(e >= 0, "ion energy cannot be negative");
    flightEnergy_[ion] = e;
    maxEnergySeen_ = std::max(maxEnergySeen_, e);
}

ChainEnd
DeviceState::portEnd(TrapId t, EdgeId e) const
{
    const NodeId trap_node = topo_.trapNode(t);
    const TopoEdge &edge = topo_.edge(e);
    panicUnless(edge.a == trap_node || edge.b == trap_node,
                "edge is not incident to trap");
    return edge.other(trap_node) < trap_node ? ChainEnd::Left
                                             : ChainEnd::Right;
}

int
DeviceState::freeSlots(TrapId t) const
{
    return topo_.node(topo_.trapNode(t)).capacity - chain(t).size();
}

ResourceTimeline &
DeviceState::trapTimeline(TrapId t)
{
    panicUnless(t >= 0 && t < topo_.trapCount(), "trap out of range");
    return trapRes_[t];
}

ResourceTimeline &
DeviceState::edgeTimeline(EdgeId e)
{
    panicUnless(e >= 0 && e < topo_.edgeCount(), "edge out of range");
    return edgeRes_[e];
}

ResourceTimeline &
DeviceState::junctionTimeline(NodeId n)
{
    panicUnless(n >= 0 && n < topo_.nodeCount(), "node out of range");
    panicUnless(topo_.node(n).kind == NodeKind::Junction,
                "node is not a junction");
    return nodeRes_[n];
}

} // namespace qccd
