/**
 * @file
 * Mutable runtime state of a QCCD device during scheduling/simulation.
 *
 * Tracks, per trap, the spatially ordered ion chain (index 0 is the
 * "left" end) and its motional energy; per ion, its holding trap (or
 * in-flight status) and the logical qubit payload it carries; and the
 * exclusive timelines of every trap, edge and junction resource.
 *
 * Port convention: for a trap node t and incident edge e, the edge
 * attaches to the left end when the edge's other endpoint has a smaller
 * node id, and to the right end otherwise. Builders create linear traps
 * in left-to-right order and junctions after all traps, so linear traps
 * see their lower neighbour on the left, and grid traps reach their
 * junction on the right.
 */

#ifndef QCCD_SIM_DEVICE_STATE_HPP
#define QCCD_SIM_DEVICE_STATE_HPP

#include <vector>

#include "arch/topology.hpp"
#include "sim/resources.hpp"

namespace qccd
{

/** Which end of a chain an operation touches. */
enum class ChainEnd
{
    Left,
    Right
};

/** Ordered ion chain plus motional energy for one trap. */
struct ChainState
{
    std::vector<IonId> ions; ///< index 0 = left end
    Quanta energy = 0;

    int size() const { return static_cast<int>(ions.size()); }
};

/** Mutable device state; created from a topology and an ion count. */
class DeviceState
{
  public:
    /**
     * @param topo device topology (must outlive this object)
     * @param num_ions ions (= program qubits) to track
     */
    DeviceState(const Topology &topo, int num_ions);

    /**
     * Return to the freshly constructed state (no ions placed, all
     * energies and timelines zero) without releasing any storage, so a
     * pooled DeviceState can be reused across schedule passes.
     */
    void reset();

    /**
     * True when this state's storage is sized exactly for @p topo and
     * @p num_ions — the precondition for reusing it via reset()
     * instead of reconstructing (see SchedulerScratch).
     */
    bool fits(const Topology &topo, int num_ions) const;

    const Topology &topology() const { return topo_; }
    int numIons() const { return static_cast<int>(ionTrap_.size()); }

    /** Place ion @p ion carrying @p payload at the right end of @p t. */
    void placeIon(TrapId t, IonId ion, QubitId payload);

    const ChainState &chain(TrapId t) const;
    Quanta energy(TrapId t) const { return chain(t).energy; }
    void setEnergy(TrapId t, Quanta e);

    /** Trap currently holding @p ion, or kInvalidId while in flight. */
    TrapId trapOf(IonId ion) const;

    /** Position of @p ion within its chain. @pre not in flight */
    int positionOf(IonId ion) const;

    /** Logical qubit carried by @p ion. */
    QubitId payloadOf(IonId ion) const;

    /** Ion currently carrying logical qubit @p q. */
    IonId ionOf(QubitId q) const;

    /** Exchange the logical payloads of two ions (gate-based swap). */
    void swapPayloads(IonId a, IonId b);

    /** Physically exchange @p ion with its chain neighbour toward
     *  @p end (ion-swap hop). @return the neighbour ion */
    IonId swapToward(IonId ion, ChainEnd end);

    /**
     * Remove the ion at @p end of trap @p t (split bookkeeping); the
     * ion becomes in-flight with energy @p ion_energy.
     *
     * @return the detached ion
     */
    IonId detachEnd(TrapId t, ChainEnd end, Quanta ion_energy);

    /** Attach in-flight @p ion at @p end of trap @p t. */
    void attachEnd(TrapId t, ChainEnd end, IonId ion);

    /** Energy carried by an in-flight ion. */
    Quanta flightEnergy(IonId ion) const;
    void setFlightEnergy(IonId ion, Quanta e);

    /** The chain end that trap @p t's port for edge @p e sits on. */
    ChainEnd portEnd(TrapId t, EdgeId e) const;

    /** Free slots remaining in trap @p t given its capacity. */
    int freeSlots(TrapId t) const;

    /** Maximum chain energy observed so far across all traps. */
    Quanta maxEnergySeen() const { return maxEnergySeen_; }

    /**
     * True when the per-ion position index agrees with every chain's
     * ion order (test invariant; positionOf answers from the index in
     * O(1) instead of scanning the chain).
     */
    bool positionIndexConsistent() const;

    /** Resource timelines. @{ */
    ResourceTimeline &trapTimeline(TrapId t);
    ResourceTimeline &edgeTimeline(EdgeId e);
    ResourceTimeline &junctionTimeline(NodeId n);
    /** @} */

  private:
    const Topology &topo_;
    std::vector<ChainState> chains_;          // per trap
    std::vector<TrapId> ionTrap_;             // per ion; -1 = in flight
    std::vector<int> ionPos_;                 // per ion chain position
    std::vector<QubitId> ionPayload_;         // per ion
    std::vector<IonId> qubitIon_;             // per qubit
    std::vector<Quanta> flightEnergy_;        // per ion, valid in flight
    std::vector<ResourceTimeline> trapRes_;
    std::vector<ResourceTimeline> edgeRes_;
    std::vector<ResourceTimeline> nodeRes_;   // junctions use node ids
    Quanta maxEnergySeen_ = 0;

    /** Rewrite the position index of every ion in trap @p t's chain. */
    void reindexChain(TrapId t);
};

} // namespace qccd

#endif // QCCD_SIM_DEVICE_STATE_HPP
