/**
 * @file
 * Model-evaluation replay: re-run the physical models over a recorded
 * schedule without re-scheduling.
 *
 * The scheduler's decisions (gate order, routing, evictions, every
 * primitive's duration and timeline placement) depend on the gate/
 * shuttle timing knobs and the microarchitecture — but never on the
 * pure model knobs (heating k1/k2, recool factor, Gamma, kappa, the
 * 1q/measurement error rates). Those knobs only feed the energy
 * trajectory and the fidelity accumulators. Two design points that
 * agree on everything the scheduler reads therefore emit the *same*
 * primitive sequence, and the second point's metrics can be produced
 * by replaying the first point's op stream under the new models.
 *
 * ModelEvalLog is that op stream: PrimitiveEmitter appends one compact
 * event per model-relevant primitive (in emission order), and
 * replayModelEval() folds a new HardwareParams over the events,
 * recomputing exactly the model-dependent SimResult fields —
 * logFidelity, zeroFidelityOps, sumBackgroundError, sumMotionalError,
 * maxChainEnergy — while every schedule-determined field (makespan, op
 * counts, busy times, effectiveBuffer) is frozen from the base run.
 *
 * Bit-identity contract: replayed metrics equal a from-scratch run of
 * the same schedule bit for bit. The replay accumulates in emission
 * order (float addition is not associative), applies the heating
 * recurrences stepwise exactly as DeviceState saw them, and skips only
 * unit-fidelity ops — whose log-fidelity contribution is exactly +0.0
 * and cannot change any accumulator bit (the log-fidelity sum is +0.0
 * or strictly negative, never -0.0). Enforced by the staged-vs-scalar
 * differential in tests/test_sweep_engine.cpp.
 */

#ifndef QCCD_SIM_MODEL_REPLAY_HPP
#define QCCD_SIM_MODEL_REPLAY_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "models/params.hpp"
#include "sim/metrics.hpp"

namespace qccd
{

/**
 * Compact record of every model-relevant primitive of one schedule, in
 * emission order. Recorded by PrimitiveEmitter when a ScheduleOptions
 * passes a log; replayed by replayModelEval(). Unit-fidelity ops that
 * do not touch chain energy (GS payload swaps aside from their MS
 * gates, rotations of two-ion chains) are not recorded — they cannot
 * change any model-dependent accumulator.
 */
class ModelEvalLog
{
  public:
    /** One recorded primitive. */
    struct Event
    {
        enum class Kind : std::uint8_t
        {
            Ms,         ///< MS gate: trap, chain length, physical dur
            OneQubit,   ///< single-qubit gate
            Measure,    ///< measurement
            Split,      ///< split: trap, ions remaining (0 = last ion)
            Merge,      ///< merge into trap (recool applies)
            Moves,      ///< in-flight heating over `a` segments
            Junction,   ///< in-flight junction-crossing heating
            IonSwapHop, ///< IS hop on a chain of `a` > 2 ions
        };

        Kind kind;
        TrapId trap = kInvalidId;
        int a = 0;          ///< chainLen / restIons / segments
        TimeUs physDur = 0; ///< Ms only: physical gate duration
    };

    void clear() { events_.clear(); }
    bool empty() const { return events_.empty(); }
    const std::vector<Event> &events() const { return events_; }

    /**
     * Chain-length bound the recording emitter sized its ModelTables
     * with; the replay uses the same bound so both share one table
     * instance per parameterization (values are identical for any
     * bound — the tables are exact — this is purely for sharing).
     */
    void setMaxChain(int max_chain) { maxChain_ = max_chain; }
    int maxChain() const { return maxChain_; }

    /** Recording hooks, called by PrimitiveEmitter in emission order.
     *  @{ */
    void noteMs(TrapId t, int chain_len, TimeUs phys_dur)
    {
        events_.push_back({Event::Kind::Ms, t, chain_len, phys_dur});
    }
    void noteOneQubit()
    {
        events_.push_back({Event::Kind::OneQubit, kInvalidId, 0, 0});
    }
    void noteMeasure()
    {
        events_.push_back({Event::Kind::Measure, kInvalidId, 0, 0});
    }
    void noteSplit(TrapId t, int rest_ions)
    {
        events_.push_back({Event::Kind::Split, t, rest_ions, 0});
    }
    void noteMerge(TrapId t)
    {
        events_.push_back({Event::Kind::Merge, t, 0, 0});
    }
    void noteMoves(int segments)
    {
        events_.push_back({Event::Kind::Moves, kInvalidId, segments, 0});
    }
    void noteJunction()
    {
        events_.push_back({Event::Kind::Junction, kInvalidId, 0, 0});
    }
    void noteIonSwapHop(TrapId t, int chain_len)
    {
        events_.push_back({Event::Kind::IonSwapHop, t, chain_len, 0});
    }
    /** @} */

  private:
    std::vector<Event> events_;
    int maxChain_ = 0;
};

/**
 * Re-evaluate the physical models of @p hw over the recorded schedule
 * @p log, starting from @p base (the recording run's metrics).
 *
 * @return @p base with the five model-dependent fields recomputed;
 *         all schedule-determined fields are copied through unchanged
 * @pre @p hw agrees with the recording run's parameters on every knob
 *      the scheduler reads (see ScheduleKey in core/toolflow.hpp) —
 *      only the pure model knobs may differ
 */
SimResult replayModelEval(const ModelEvalLog &log,
                          const HardwareParams &hw,
                          const SimResult &base);

} // namespace qccd

#endif // QCCD_SIM_MODEL_REPLAY_HPP
