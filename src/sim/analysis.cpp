#include "sim/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace qccd
{

double
ResourceUsage::utilization(TimeUs makespan) const
{
    return makespan > 0 ? busy / makespan : 0.0;
}

TraceAnalysis
analyzeTrace(const Trace &trace, const Topology &topo)
{
    TraceAnalysis analysis;
    analysis.traps.resize(topo.trapCount());
    analysis.edges.resize(topo.edgeCount());
    analysis.junctions.resize(topo.nodeCount());

    TimeUs total_busy = 0;
    std::vector<std::pair<TimeUs, int>> events; // (+1 at start, -1 at end)
    events.reserve(trace.size() * 2);

    for (const PrimOp &op : trace) {
        analysis.makespan = std::max(analysis.makespan, op.end());
        total_busy += op.duration;
        if (op.duration > 0) {
            events.emplace_back(op.start, +1);
            events.emplace_back(op.end(), -1);
        }
        if (op.trap != kInvalidId) {
            panicUnless(op.trap >= 0 && op.trap < topo.trapCount(),
                        "trace names an invalid trap");
            ++analysis.traps[op.trap].ops;
            analysis.traps[op.trap].busy += op.duration;
        }
        if (op.edge != kInvalidId) {
            panicUnless(op.edge >= 0 && op.edge < topo.edgeCount(),
                        "trace names an invalid edge");
            ++analysis.edges[op.edge].ops;
            analysis.edges[op.edge].busy += op.duration;
        }
        if (op.junction != kInvalidId) {
            panicUnless(op.junction >= 0 &&
                        op.junction < topo.nodeCount(),
                        "trace names an invalid junction");
            ++analysis.junctions[op.junction].ops;
            analysis.junctions[op.junction].busy += op.duration;
        }
    }

    if (analysis.makespan > 0)
        analysis.meanParallelism = total_busy / analysis.makespan;

    // Sweep events by time; ends sort before starts at equal times so
    // back-to-back ops do not double-count.
    std::sort(events.begin(), events.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second < b.second;
              });
    int live = 0;
    for (const auto &[time, delta] : events) {
        live += delta;
        analysis.peakParallelism =
            std::max(analysis.peakParallelism, live);
    }

    TimeUs best_busy = -1;
    for (TrapId t = 0; t < topo.trapCount(); ++t) {
        if (analysis.traps[t].busy > best_busy) {
            best_busy = analysis.traps[t].busy;
            analysis.busiestTrap = t;
        }
    }
    return analysis;
}

std::string
TraceAnalysis::report() const
{
    std::ostringstream out;
    out << "makespan: " << makespan / kSecondUs << " s, mean parallelism "
        << formatSig(meanParallelism, 3) << ", peak "
        << peakParallelism << "\n";
    TextTable table;
    table.addRow({"resource", "ops", "busy (s)", "utilization"});
    for (size_t t = 0; t < traps.size(); ++t) {
        table.addRow({"trap " + std::to_string(t),
                      std::to_string(traps[t].ops),
                      formatSig(traps[t].busy / kSecondUs, 4),
                      formatFixed(traps[t].utilization(makespan), 3)});
    }
    for (size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].ops == 0)
            continue;
        table.addRow({"edge " + std::to_string(e),
                      std::to_string(edges[e].ops),
                      formatSig(edges[e].busy / kSecondUs, 4),
                      formatFixed(edges[e].utilization(makespan), 3)});
    }
    for (size_t j = 0; j < junctions.size(); ++j) {
        if (junctions[j].ops == 0)
            continue;
        table.addRow({"junction " + std::to_string(j),
                      std::to_string(junctions[j].ops),
                      formatSig(junctions[j].busy / kSecondUs, 4),
                      formatFixed(junctions[j].utilization(makespan),
                                  3)});
    }
    out << table.render();
    return out.str();
}

} // namespace qccd
