#include "sim/trace.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qccd
{

std::string
primKindName(PrimKind kind)
{
    switch (kind) {
      case PrimKind::GateMS: return "ms";
      case PrimKind::Gate1Q: return "1q";
      case PrimKind::Measure: return "measure";
      case PrimKind::Split: return "split";
      case PrimKind::Merge: return "merge";
      case PrimKind::Move: return "move";
      case PrimKind::JunctionCross: return "junction";
      case PrimKind::Rotate: return "rotate";
      case PrimKind::Transit: return "transit";
    }
    throw InternalError("unknown PrimKind");
}

std::string
dumpTrace(const Trace &trace, size_t max_ops)
{
    std::ostringstream out;
    size_t shown = 0;
    for (const PrimOp &op : trace) {
        if (shown++ >= max_ops) {
            out << "... (" << trace.size() - max_ops
                << " more ops)\n";
            break;
        }
        out << "[" << op.start << " +" << op.duration << "] "
            << primKindName(op.kind);
        if (op.trap != kInvalidId)
            out << " trap=" << op.trap;
        if (op.edge != kInvalidId)
            out << " edge=" << op.edge;
        if (op.junction != kInvalidId)
            out << " junction=" << op.junction;
        if (op.ion != kInvalidId)
            out << " ion=" << op.ion;
        if (op.q0 != kInvalidId)
            out << " q0=" << op.q0;
        if (op.q1 != kInvalidId)
            out << " q1=" << op.q1;
        if (op.kind == PrimKind::GateMS)
            out << " d=" << op.separation << " N=" << op.chainLength
                << " nbar=" << op.nbar << " F=" << op.fidelity;
        if (op.forCommunication)
            out << " [comm]";
        out << "\n";
    }
    return out.str();
}

} // namespace qccd
