/**
 * @file
 * Post-hoc validation of a scheduled trace.
 *
 * Replays a trace and verifies the architectural invariants the
 * scheduler must uphold: exclusive resources never host overlapping
 * operations, per-qubit operations respect program order, durations are
 * non-negative, and fidelities lie in [0, 1]. Used by the test suite as
 * a property check over every scheduled workload.
 */

#ifndef QCCD_SIM_CHECKER_HPP
#define QCCD_SIM_CHECKER_HPP

#include <string>
#include <vector>

#include "arch/topology.hpp"
#include "sim/trace.hpp"

namespace qccd
{

/** Result of validating one trace. */
struct CheckReport
{
    bool ok = true;
    std::vector<std::string> violations;

    /** Append a violation and flip ok. */
    void fail(std::string message);
};

/**
 * Validate @p trace against @p topo.
 *
 * Checks:
 *  - every op has non-negative start and duration, fidelity in [0, 1];
 *  - ops on the same trap resource do not overlap in time;
 *  - ops on the same edge / junction resource do not overlap;
 *  - ops touching the same logical qubit do not overlap;
 *  - MS gates have sane geometry (1 <= separation < chainLength).
 */
CheckReport checkTrace(const Trace &trace, const Topology &topo);

} // namespace qccd

#endif // QCCD_SIM_CHECKER_HPP
