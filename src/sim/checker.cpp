#include "sim/checker.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace qccd
{

void
CheckReport::fail(std::string message)
{
    ok = false;
    if (violations.size() < 50)
        violations.push_back(std::move(message));
}

namespace
{

/** Interval with origin op index for overlap diagnostics. */
struct Interval
{
    TimeUs start;
    TimeUs end;
    size_t op;
};

void
checkNoOverlap(CheckReport &report, const std::string &resource,
               std::vector<Interval> &intervals)
{
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });
    for (size_t i = 1; i < intervals.size(); ++i) {
        // Zero-duration ops may share an instant; real overlap needs
        // strictly positive intersection.
        if (intervals[i].start < intervals[i - 1].end - 1e-9) {
            std::ostringstream msg;
            msg << resource << ": op " << intervals[i].op
                << " starts at " << intervals[i].start
                << " before op " << intervals[i - 1].op << " ends at "
                << intervals[i - 1].end;
            report.fail(msg.str());
        }
    }
}

} // namespace

CheckReport
checkTrace(const Trace &trace, const Topology &topo)
{
    CheckReport report;

    std::map<TrapId, std::vector<Interval>> traps;
    std::map<EdgeId, std::vector<Interval>> edges;
    std::map<NodeId, std::vector<Interval>> junctions;
    std::map<QubitId, std::vector<Interval>> qubits;

    for (size_t i = 0; i < trace.size(); ++i) {
        const PrimOp &op = trace[i];
        if (op.start < 0)
            report.fail("op " + std::to_string(i) + " starts before 0");
        if (op.duration < 0)
            report.fail("op " + std::to_string(i) +
                        " has negative duration");
        if (op.fidelity < 0 || op.fidelity > 1)
            report.fail("op " + std::to_string(i) +
                        " has fidelity outside [0, 1]");

        const Interval iv{op.start, op.end(), i};
        if (op.trap != kInvalidId) {
            if (op.trap < 0 || op.trap >= topo.trapCount())
                report.fail("op " + std::to_string(i) +
                            " names an invalid trap");
            else
                traps[op.trap].push_back(iv);
        }
        if (op.edge != kInvalidId) {
            if (op.edge < 0 || op.edge >= topo.edgeCount())
                report.fail("op " + std::to_string(i) +
                            " names an invalid edge");
            else
                edges[op.edge].push_back(iv);
        }
        if (op.junction != kInvalidId)
            junctions[op.junction].push_back(iv);
        if (op.q0 != kInvalidId)
            qubits[op.q0].push_back(iv);
        if (op.q1 != kInvalidId)
            qubits[op.q1].push_back(iv);

        if (op.kind == PrimKind::GateMS) {
            if (op.separation < 1 || op.separation >= op.chainLength)
                report.fail("MS op " + std::to_string(i) +
                            " has invalid geometry (d=" +
                            std::to_string(op.separation) + ", N=" +
                            std::to_string(op.chainLength) + ")");
            if (op.nbar < 0)
                report.fail("MS op " + std::to_string(i) +
                            " has negative motional energy");
        }
    }

    for (auto &[t, ivs] : traps)
        checkNoOverlap(report, "trap " + std::to_string(t), ivs);
    for (auto &[e, ivs] : edges)
        checkNoOverlap(report, "edge " + std::to_string(e), ivs);
    for (auto &[n, ivs] : junctions)
        checkNoOverlap(report, "junction " + std::to_string(n), ivs);
    for (auto &[q, ivs] : qubits)
        checkNoOverlap(report, "qubit " + std::to_string(q), ivs);

    return report;
}

} // namespace qccd
