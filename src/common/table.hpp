/**
 * @file
 * Plain-text table formatting used by the benchmark harnesses to print
 * paper-style rows (Tables I/II, Figures 6-8 series).
 */

#ifndef QCCD_COMMON_TABLE_HPP
#define QCCD_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace qccd
{

/**
 * Accumulates rows of string cells and renders them with aligned columns.
 *
 * The first row added is treated as the header and separated from the
 * body by a dashed rule.
 */
class TextTable
{
  public:
    /** Append a row of cells. Rows may have differing cell counts. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with two-space column gutters. */
    std::string render() const;

    /** Number of rows added so far (including the header). */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant digits (general format). */
std::string formatSig(double value, int digits = 4);

/** Format a double in fixed notation with @p digits decimals. */
std::string formatFixed(double value, int digits = 3);

/** Format a double in scientific notation with @p digits decimals. */
std::string formatSci(double value, int digits = 3);

} // namespace qccd

#endif // QCCD_COMMON_TABLE_HPP
