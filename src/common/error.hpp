/**
 * @file
 * Error handling for QCCDSim.
 *
 * Follows the gem5 fatal/panic distinction: user-caused conditions
 * (bad configurations, malformed input files) raise ConfigError; internal
 * invariant violations raise InternalError. Both derive from QccdError so
 * callers can catch everything from this library in one place.
 */

#ifndef QCCD_COMMON_ERROR_HPP
#define QCCD_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace qccd
{

/** Base class for all errors thrown by QCCDSim. */
class QccdError : public std::runtime_error
{
  public:
    explicit QccdError(const std::string &msg) : std::runtime_error(msg) {}
};

/** The user supplied an invalid configuration or input (gem5 "fatal"). */
class ConfigError : public QccdError
{
  public:
    explicit ConfigError(const std::string &msg) : QccdError(msg) {}
};

/** An internal invariant was violated (gem5 "panic"). */
class InternalError : public QccdError
{
  public:
    explicit InternalError(const std::string &msg) : QccdError(msg) {}
};

/**
 * A cooperative watchdog deadline expired (see common/deadline.hpp).
 *
 * Distinct from ConfigError/InternalError so sweep isolation can
 * classify a runaway point as `timeout` rather than `error`: the
 * configuration may be perfectly valid, it just exceeded the budget
 * the caller gave it.
 */
class TimeoutError : public QccdError
{
  public:
    explicit TimeoutError(const std::string &msg) : QccdError(msg) {}
};

/** Out-of-line throw helpers so the inline checks stay branch-only. @{ */
[[noreturn]] void raiseConfigError(const char *msg);
[[noreturn]] void raiseInternalError(const char *msg);
/** @} */

/**
 * Throw ConfigError when a user-facing precondition fails.
 *
 * @param ok condition that must hold
 * @param msg description of the failure, shown to the user
 */
void fatalUnless(bool ok, const std::string &msg);

/**
 * Literal-message overload: checks in hot loops compile to a predicted
 * branch plus a pointer, instead of materializing a std::string (a heap
 * allocation) per call even when the condition holds.
 */
inline void
fatalUnless(bool ok, const char *msg)
{
    if (!ok) [[unlikely]]
        raiseConfigError(msg);
}

/**
 * Throw InternalError when an internal invariant fails.
 *
 * @param ok condition that must hold
 * @param msg description of the violated invariant
 */
void panicUnless(bool ok, const std::string &msg);

/** Literal-message overload (see fatalUnless above). */
inline void
panicUnless(bool ok, const char *msg)
{
    if (!ok) [[unlikely]]
        raiseInternalError(msg);
}

/*
 * Checked-build contract layer.
 *
 * `panicUnless` guards invariants cheap enough to keep in release
 * builds. Stage-boundary *audits* — full position-index walks, heap
 * shape validation, occupancy conservation sums — are O(state) per
 * call and belong only in checked builds. `QCCD_DBG_ASSERT` compiles
 * to nothing (the condition is NOT evaluated) unless the tree is
 * configured with -DQCCD_CHECKED=ON, so release binaries and their
 * golden outputs are provably unaffected.
 *
 * A failed audit throws InternalError exactly like panicUnless, so
 * checked-build failures surface through the ordinary error contract
 * (and are testable with EXPECT_THROW rather than death tests).
 */
#if defined(QCCD_CHECKED) && QCCD_CHECKED
#define QCCD_CHECKED_BUILD 1
#else
#define QCCD_CHECKED_BUILD 0
#endif

#if QCCD_CHECKED_BUILD
/** Audit @p cond (checked builds only; else not even evaluated). */
#define QCCD_DBG_ASSERT(cond, msg) ::qccd::panicUnless((cond), (msg))
/** Emit @p ... statements in checked builds only. */
#define QCCD_CHECKED_ONLY(...) __VA_ARGS__
#else
#define QCCD_DBG_ASSERT(cond, msg) static_cast<void>(0)
#define QCCD_CHECKED_ONLY(...)
#endif

/** True when this build carries the contract audits (for --build-info
 *  and the golden-check guard in scripts/check_golden.sh). */
constexpr bool
checkedBuildEnabled()
{
    return QCCD_CHECKED_BUILD != 0;
}

} // namespace qccd

#endif // QCCD_COMMON_ERROR_HPP
