/**
 * @file
 * Error handling for QCCDSim.
 *
 * Follows the gem5 fatal/panic distinction: user-caused conditions
 * (bad configurations, malformed input files) raise ConfigError; internal
 * invariant violations raise InternalError. Both derive from QccdError so
 * callers can catch everything from this library in one place.
 */

#ifndef QCCD_COMMON_ERROR_HPP
#define QCCD_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace qccd
{

/** Base class for all errors thrown by QCCDSim. */
class QccdError : public std::runtime_error
{
  public:
    explicit QccdError(const std::string &msg) : std::runtime_error(msg) {}
};

/** The user supplied an invalid configuration or input (gem5 "fatal"). */
class ConfigError : public QccdError
{
  public:
    explicit ConfigError(const std::string &msg) : QccdError(msg) {}
};

/** An internal invariant was violated (gem5 "panic"). */
class InternalError : public QccdError
{
  public:
    explicit InternalError(const std::string &msg) : QccdError(msg) {}
};

/** Out-of-line throw helpers so the inline checks stay branch-only. @{ */
[[noreturn]] void raiseConfigError(const char *msg);
[[noreturn]] void raiseInternalError(const char *msg);
/** @} */

/**
 * Throw ConfigError when a user-facing precondition fails.
 *
 * @param ok condition that must hold
 * @param msg description of the failure, shown to the user
 */
void fatalUnless(bool ok, const std::string &msg);

/**
 * Literal-message overload: checks in hot loops compile to a predicted
 * branch plus a pointer, instead of materializing a std::string (a heap
 * allocation) per call even when the condition holds.
 */
inline void
fatalUnless(bool ok, const char *msg)
{
    if (!ok) [[unlikely]]
        raiseConfigError(msg);
}

/**
 * Throw InternalError when an internal invariant fails.
 *
 * @param ok condition that must hold
 * @param msg description of the violated invariant
 */
void panicUnless(bool ok, const std::string &msg);

/** Literal-message overload (see fatalUnless above). */
inline void
panicUnless(bool ok, const char *msg)
{
    if (!ok) [[unlikely]]
        raiseInternalError(msg);
}

} // namespace qccd

#endif // QCCD_COMMON_ERROR_HPP
