/**
 * @file
 * Stable content hashing for durable artifacts.
 *
 * The result store (core/result_store.hpp) keys cached rows on a hash
 * that must be identical across processes, runs, compilers and
 * platforms — std::hash guarantees none of that, so this header
 * provides an explicit FNV-1a construction with a pinned byte order:
 * every integer is folded little-endian, every double as its IEEE-754
 * bit pattern, every string length-prefixed (so "ab","c" never
 * collides with "a","bc"). Two independently seeded 64-bit lanes give
 * a 128-bit digest; at the store's scale (~10^6 entries) accidental
 * collision is negligible, and `--cache-verify` exists to audit even
 * that.
 */

#ifndef QCCD_COMMON_HASH_HPP
#define QCCD_COMMON_HASH_HPP

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

namespace qccd
{

/** FNV-1a 64-bit offset basis / prime (public domain constants). @{ */
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;
/** @} */

/**
 * One-shot FNV-1a over @p len bytes starting from @p seed. Single-byte
 * changes always change the result (xor then odd-prime multiply are
 * both bijective), which is the property the store's per-record
 * checksum needs.
 */
uint64_t fnv1a64(const void *data, size_t len,
                 uint64_t seed = kFnvOffsetBasis);

/** A 128-bit content digest (two independent 64-bit lanes). */
struct Digest128
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    friend auto operator<=>(const Digest128 &, const Digest128 &) =
        default;
    friend bool operator==(const Digest128 &, const Digest128 &) =
        default;

    /** 32 lowercase hex digits (hi then lo), for diagnostics. */
    std::string hex() const;
};

/**
 * Streaming 128-bit hasher with a pinned serialization, so equal
 * logical inputs produce equal digests on every platform.
 *
 * Feed typed values, never raw structs: padding bytes and field order
 * would silently enter the key. The type-tagged helpers below each
 * fold a one-byte tag before the value, so adjacent fields of
 * different types cannot alias each other's encodings.
 */
class StableHash
{
  public:
    StableHash() = default;

    /** Raw bytes, no tag (building block for the typed helpers). */
    void bytes(const void *data, size_t len);

    /** Typed fields (tag byte + little-endian payload). @{ */
    void u32(uint32_t value);
    void u64(uint64_t value);
    void i64(int64_t value);

    /** Doubles fold as IEEE-754 bit patterns: bit-equal in, bit-equal
     *  key out, matching the byte-identical goldens contract. */
    void f64(double value);

    /** Length-prefixed, so field boundaries are unambiguous. */
    void str(const std::string &value);
    /** @} */

    Digest128 digest() const { return {hi_, lo_}; }

  private:
    // Distinct seeds decorrelate the lanes: FNV-1a folds the seed
    // non-linearly, so a collision in one lane does not imply one in
    // the other.
    uint64_t hi_ = kFnvOffsetBasis;
    uint64_t lo_ = kFnvOffsetBasis ^ 0x9e3779b97f4a7c15ULL;
};

} // namespace qccd

#endif // QCCD_COMMON_HASH_HPP
