#include "common/deadline.hpp"

#include <string>

#include "common/error.hpp"

namespace qccd
{

Deadline
Deadline::afterMs(long budget_ms)
{
    fatalUnless(budget_ms >= 0, "deadline budget must be non-negative");
    Deadline d;
    d.due_ = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(budget_ms);
    d.budgetMs_ = budget_ms;
    d.armed_ = true;
    return d;
}

Deadline
Deadline::expired()
{
    Deadline d;
    d.due_ = std::chrono::steady_clock::time_point::min();
    d.budgetMs_ = 0;
    d.armed_ = true;
    return d;
}

bool
Deadline::exceededNow() const
{
    return armed_ && std::chrono::steady_clock::now() > due_;
}

void
Deadline::checkArmed(const char *stage) const
{
    if (std::chrono::steady_clock::now() <= due_)
        return;
    throw TimeoutError("point exceeded its " +
                       std::to_string(budgetMs_) +
                       " ms deadline at " + stage);
}

} // namespace qccd
