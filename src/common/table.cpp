#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qccd
{

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Compute per-column widths over all rows.
    std::vector<size_t> widths;
    for (const auto &row : rows_) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    for (size_t r = 0; r < rows_.size(); ++r) {
        const auto &row = rows_[r];
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
        if (r == 0 && rows_.size() > 1) {
            size_t total = 0;
            for (size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

namespace
{

std::string
formatWith(const char *spec, int digits, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, digits, value);
    return buf;
}

} // namespace

std::string
formatSig(double value, int digits)
{
    return formatWith("%.*g", digits, value);
}

std::string
formatFixed(double value, int digits)
{
    return formatWith("%.*f", digits, value);
}

std::string
formatSci(double value, int digits)
{
    return formatWith("%.*e", digits, value);
}

} // namespace qccd
