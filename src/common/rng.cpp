#include "common/rng.hpp"

#include "common/error.hpp"

namespace qccd
{

uint64_t
Rng::next()
{
    // SplitMix64 (Steele, Lea, Flood 2014): a single 64-bit state pass
    // through two xor-shift-multiply mixing steps.
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    panicUnless(bound > 0, "Rng::nextBelow requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t v = next();
    while (v >= limit)
        v = next();
    return v % bound;
}

int
Rng::nextInt(int lo, int hi)
{
    panicUnless(lo <= hi, "Rng::nextInt requires lo <= hi");
    return lo + static_cast<int>(nextBelow(
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace qccd
