#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/error.hpp"

namespace qccd
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &member : members)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

std::string
jsonKindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Object: return "object";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::Bool: return "boolean";
      case JsonValue::Kind::Null: return "null";
    }
    return "value";
}

JsonParser::JsonParser(const std::string &source,
                       const std::string &origin)
    : src_(source), origin_(origin)
{
}

JsonValue
JsonParser::parseDocument()
{
    const JsonValue root = parseValue(0);
    skipSpace();
    check(pos_ >= src_.size(), "trailing content after document");
    return root;
}

void
JsonParser::failAt(const JsonValue &value, const std::string &msg) const
{
    fail(value.line, value.column, msg);
}

std::string
JsonParser::formatAt(const JsonValue &value, const std::string &msg) const
{
    std::ostringstream out;
    out << origin_ << ":" << value.line << ":" << value.column << ": "
        << msg;
    return out.str();
}

void
JsonParser::fail(int line, int column, const std::string &msg) const
{
    std::ostringstream out;
    out << origin_ << ":" << line << ":" << column << ": " << msg;
    throw ConfigError(out.str());
}

void
JsonParser::check(bool ok, const std::string &msg) const
{
    if (!ok)
        fail(line_, column_, msg);
}

char
JsonParser::advance()
{
    const char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

void
JsonParser::skipSpace()
{
    while (!atEnd()) {
        const char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '#') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else {
            break;
        }
    }
}

JsonValue
JsonParser::parseValue(int depth)
{
    check(depth < kMaxDepth, "spec nesting too deep");
    skipSpace();
    check(!atEnd(), "unexpected end of input (expected a value)");
    JsonValue value;
    value.line = line_;
    value.column = column_;
    const char c = peek();
    if (c == '{') {
        parseObject(value, depth);
    } else if (c == '[') {
        parseArray(value, depth);
    } else if (c == '"') {
        value.kind = JsonValue::Kind::String;
        value.text = parseString();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
        parseNumber(value);
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
        parseKeyword(value);
    } else {
        fail(line_, column_,
             std::string("unexpected character '") + c + "'");
    }
    return value;
}

void
JsonParser::parseObject(JsonValue &value, int depth)
{
    value.kind = JsonValue::Kind::Object;
    advance(); // '{'
    skipSpace();
    if (!atEnd() && peek() == '}') {
        advance();
        return;
    }
    while (true) {
        skipSpace();
        check(!atEnd() && peek() == '"',
              "expected a quoted object key");
        const int key_line = line_;
        const int key_column = column_;
        const std::string key = parseString();
        for (const auto &member : value.members)
            if (member.first == key)
                fail(key_line, key_column,
                     "duplicate key \"" + key + "\"");
        skipSpace();
        check(!atEnd() && peek() == ':', "expected ':' after key");
        advance();
        value.members.emplace_back(key, parseValue(depth + 1));
        skipSpace();
        check(!atEnd(), "unterminated object (expected ',' or '}')");
        if (peek() == ',') {
            advance();
            skipSpace();
            check(!atEnd(),
                  "unterminated object (expected ',' or '}')");
            if (peek() == '}') { // trailing comma
                advance();
                return;
            }
            continue;
        }
        check(peek() == '}', "expected ',' or '}' in object");
        advance();
        return;
    }
}

void
JsonParser::parseArray(JsonValue &value, int depth)
{
    value.kind = JsonValue::Kind::Array;
    advance(); // '['
    skipSpace();
    if (!atEnd() && peek() == ']') {
        advance();
        return;
    }
    while (true) {
        value.items.push_back(parseValue(depth + 1));
        skipSpace();
        check(!atEnd(), "unterminated array (expected ',' or ']')");
        if (peek() == ',') {
            advance();
            skipSpace();
            check(!atEnd(),
                  "unterminated array (expected ',' or ']')");
            if (peek() == ']') { // trailing comma
                advance();
                return;
            }
            continue;
        }
        check(peek() == ']', "expected ',' or ']' in array");
        advance();
        return;
    }
}

std::string
JsonParser::parseString()
{
    advance(); // opening quote
    std::string out;
    while (true) {
        check(!atEnd(), "unterminated string");
        const char c = advance();
        if (c == '"')
            return out;
        check(c != '\n', "unterminated string");
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        check(!atEnd(), "unterminated escape sequence");
        const char esc = advance();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default:
            fail(line_, column_,
                 std::string("unsupported escape '\\") + esc + "'");
        }
    }
}

void
JsonParser::parseNumber(JsonValue &value)
{
    value.kind = JsonValue::Kind::Number;
    const size_t start = pos_;
    auto digits = [&]() {
        size_t n = 0;
        while (!atEnd() && peek() >= '0' && peek() <= '9') {
            advance();
            ++n;
        }
        check(n > 0, "malformed number");
    };
    if (peek() == '-')
        advance();
    digits();
    if (!atEnd() && peek() == '.') {
        advance();
        digits();
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
        advance();
        if (!atEnd() && (peek() == '+' || peek() == '-'))
            advance();
        digits();
    }
    // from_chars is locale-independent and correctly rounded, so a
    // spec literal parses to the same double the C++ compiler gives
    // the equivalent source literal — required for bit-identical
    // spec-vs-bench reproductions.
    const char *first = src_.data() + start;
    const char *last = src_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value.number);
    check(ec == std::errc() && ptr == last, "number out of range");
    value.text.assign(first, last);
}

void
JsonParser::parseKeyword(JsonValue &value)
{
    std::string word;
    while (!atEnd() && std::isalpha(static_cast<unsigned char>(peek())))
        word.push_back(advance());
    if (word == "true") {
        value.kind = JsonValue::Kind::Bool;
        value.boolean = true;
    } else if (word == "false") {
        value.kind = JsonValue::Kind::Bool;
        value.boolean = false;
    } else if (word == "null") {
        value.kind = JsonValue::Kind::Null;
    } else {
        fail(value.line, value.column,
             "unknown keyword '" + word + "'");
    }
}

} // namespace qccd
