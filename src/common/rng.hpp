/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * QCCDSim never uses global random state: every generator takes an
 * explicit seed so that benchmark circuits (e.g. the Supremacy random
 * circuit, the Bernstein-Vazirani secret string) are reproducible across
 * runs and platforms. The engine is SplitMix64, which is tiny, fast and
 * has well-understood statistical quality for this purpose.
 */

#ifndef QCCD_COMMON_RNG_HPP
#define QCCD_COMMON_RNG_HPP

#include <cstdint>

namespace qccd
{

/** SplitMix64 pseudo-random generator with convenience helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    int nextInt(int lo, int hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform boolean. */
    bool nextBool() { return (next() >> 63) != 0; }

  private:
    uint64_t state_;
};

} // namespace qccd

#endif // QCCD_COMMON_RNG_HPP
