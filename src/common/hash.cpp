#include "common/hash.hpp"

#include <bit>

namespace qccd
{

namespace
{

/** Field tags; see StableHash. Values are part of the on-disk schema
 *  (they enter every stored key) — never renumber, only append. */
enum : unsigned char
{
    kTagU32 = 1,
    kTagU64 = 2,
    kTagI64 = 3,
    kTagF64 = 4,
    kTagStr = 5,
};

uint64_t
foldByte(uint64_t state, unsigned char byte)
{
    return (state ^ byte) * kFnvPrime;
}

} // namespace

uint64_t
fnv1a64(const void *data, size_t len, uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint64_t state = seed;
    for (size_t i = 0; i < len; ++i)
        state = foldByte(state, bytes[i]);
    return state;
}

std::string
Digest128::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (const uint64_t word : {hi, lo})
        for (int shift = 60; shift >= 0; shift -= 4)
            out.push_back(digits[(word >> shift) & 0xF]);
    return out;
}

void
StableHash::bytes(const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        hi_ = foldByte(hi_, p[i]);
        lo_ = foldByte(lo_, p[i]);
    }
}

void
StableHash::u32(uint32_t value)
{
    unsigned char buf[5] = {kTagU32};
    for (int i = 0; i < 4; ++i)
        buf[1 + i] = static_cast<unsigned char>(value >> (8 * i));
    bytes(buf, sizeof buf);
}

void
StableHash::u64(uint64_t value)
{
    unsigned char buf[9] = {kTagU64};
    for (int i = 0; i < 8; ++i)
        buf[1 + i] = static_cast<unsigned char>(value >> (8 * i));
    bytes(buf, sizeof buf);
}

void
StableHash::i64(int64_t value)
{
    unsigned char buf[9] = {kTagI64};
    const auto pattern = static_cast<uint64_t>(value);
    for (int i = 0; i < 8; ++i)
        buf[1 + i] = static_cast<unsigned char>(pattern >> (8 * i));
    bytes(buf, sizeof buf);
}

void
StableHash::f64(double value)
{
    unsigned char buf[9] = {kTagF64};
    const auto pattern = std::bit_cast<uint64_t>(value);
    for (int i = 0; i < 8; ++i)
        buf[1 + i] = static_cast<unsigned char>(pattern >> (8 * i));
    bytes(buf, sizeof buf);
}

void
StableHash::str(const std::string &value)
{
    unsigned char buf[9] = {kTagStr};
    const auto len = static_cast<uint64_t>(value.size());
    for (int i = 0; i < 8; ++i)
        buf[1 + i] = static_cast<unsigned char>(len >> (8 * i));
    bytes(buf, sizeof buf);
    bytes(value.data(), value.size());
}

} // namespace qccd
