#include "common/error.hpp"

namespace qccd
{

void
fatalUnless(bool ok, const std::string &msg)
{
    if (!ok)
        throw ConfigError(msg);
}

void
panicUnless(bool ok, const std::string &msg)
{
    if (!ok)
        throw InternalError(msg);
}

} // namespace qccd
