#include "common/error.hpp"

namespace qccd
{

void
raiseConfigError(const char *msg)
{
    throw ConfigError(msg);
}

void
raiseInternalError(const char *msg)
{
    throw InternalError(msg);
}

void
fatalUnless(bool ok, const std::string &msg)
{
    if (!ok)
        throw ConfigError(msg);
}

void
panicUnless(bool ok, const std::string &msg)
{
    if (!ok)
        throw InternalError(msg);
}

} // namespace qccd
