#include "common/faultpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>

#include "common/error.hpp"

namespace qccd
{

namespace
{

enum class FaultKind
{
    Throw,   ///< InternalError
    Alloc,   ///< std::bad_alloc
    Config,  ///< ConfigError
    Timeout, ///< TimeoutError
};

/** One armed site: fire at the @ref triggerAt -th hit (1-based). */
struct ArmedSite
{
    std::string site;
    unsigned long triggerAt = 0;
    FaultKind kind = FaultKind::Throw;
    std::atomic<unsigned long> hits{0};

    ArmedSite() = default;

    /** Moves happen only while arming (no concurrent hits). */
    ArmedSite(ArmedSite &&other) noexcept
        : site(std::move(other.site)), triggerAt(other.triggerAt),
          kind(other.kind), hits(other.hits.load())
    {
    }
};

/**
 * The armed campaign. Written only by setFaultInjectSpec /
 * clearFaultInject (never while workers run — arming mid-sweep is not
 * a supported shape); hit counters are atomic so concurrent workers
 * can race on them safely, with exactly one thread observing the
 * trigger count.
 */
std::vector<ArmedSite> &
armedSites()
{
    static std::vector<ArmedSite> sites;
    return sites;
}

std::mutex &
armedMutex()
{
    static std::mutex m;
    return m;
}

FaultKind
kindFromName(const std::string &name)
{
    if (name == "throw")
        return FaultKind::Throw;
    if (name == "alloc")
        return FaultKind::Alloc;
    if (name == "config")
        return FaultKind::Config;
    if (name == "timeout")
        return FaultKind::Timeout;
    throw ConfigError("unknown fault kind '" + name +
                      "' (expected throw, alloc, config or timeout)");
}

std::vector<ArmedSite>
parseSpec(const std::string &spec)
{
    std::vector<ArmedSite> sites;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string directive = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (directive.empty()) {
            if (comma == spec.size())
                break;
            throw ConfigError(
                "empty directive in fault spec '" + spec + "'");
        }

        const size_t eq = directive.find('=');
        fatalUnless(eq != std::string::npos && eq > 0,
                    "fault directive must be SITE=N[:KIND]; got '" +
                        directive + "'");
        const std::string site = directive.substr(0, eq);
        std::string count_text = directive.substr(eq + 1);
        FaultKind kind = FaultKind::Throw;
        const size_t colon = count_text.find(':');
        if (colon != std::string::npos) {
            kind = kindFromName(count_text.substr(colon + 1));
            count_text.resize(colon);
        }

        bool known = false;
        for (const std::string &name : faultSiteNames())
            known = known || name == site;
        fatalUnless(known, "unknown fault site '" + site +
                               "' (see faultSiteNames())");

        size_t used = 0;
        unsigned long trigger = 0;
        try {
            trigger = std::stoul(count_text, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        fatalUnless(used == count_text.size() && used > 0 &&
                        trigger >= 1,
                    "fault trigger must be a positive hit count; got "
                    "'" + directive + "'");

        ArmedSite armed;
        armed.site = site;
        armed.triggerAt = trigger;
        armed.kind = kind;
        sites.push_back(std::move(armed));
    }
    return sites;
}

/**
 * Parse QCCD_FAULT_INJECT before main() so armed CLI runs behave
 * exactly like armed test runs. A malformed spec is fatal: a fault
 * campaign that silently arms nothing would pass every test.
 */
const bool initFromEnv = []() {
    const char *env = std::getenv("QCCD_FAULT_INJECT");
    if (env == nullptr || *env == '\0')
        return false;
    try {
        setFaultInjectSpec(env);
    } catch (const QccdError &err) {
        std::fprintf(stderr, "error: bad QCCD_FAULT_INJECT: %s\n",
                     err.what());
        std::exit(2);
    }
    return true;
}();

} // namespace

namespace detail
{

std::atomic<bool> faultInjectArmed{false};

void
faultPointHit(const char *site)
{
    // Sites vector is stable while armed (see armedSites comment), so
    // walking it without the mutex is safe; only the counters mutate.
    // Every matching directive counts the hit *before* anything
    // throws, so a campaign arming one site at several triggers
    // ("toolflow.run=1,toolflow.run=2") fires at each of them.
    const ArmedSite *fire = nullptr;
    for (ArmedSite &armed : armedSites()) {
        if (armed.site != site)
            continue;
        const unsigned long hit =
            armed.hits.fetch_add(1, std::memory_order_relaxed) + 1;
        if (hit == armed.triggerAt && fire == nullptr)
            fire = &armed;
    }
    if (fire == nullptr)
        return;
    const std::string msg = "fault injected at '" + fire->site +
                            "' (hit " + std::to_string(fire->triggerAt) +
                            ")";
    switch (fire->kind) {
      case FaultKind::Throw:
        throw InternalError(msg);
      case FaultKind::Alloc:
        throw std::bad_alloc();
      case FaultKind::Config:
        throw ConfigError(msg);
      case FaultKind::Timeout:
        throw TimeoutError(msg);
    }
    panicUnless(false, "unreachable fault kind");
}

} // namespace detail

const std::vector<std::string> &
faultSiteNames()
{
    // Every QCCD_FAULT_POINT site in the tree, in pipeline order.
    // tests/test_faults.cpp arms each one against a workload chosen to
    // hit them all, so a listed-but-unreachable site fails the suite
    // (and a new site must be added here to be testable at all).
    // The "cache." sites fire only in cache-enabled runs, so the
    // campaign in test_faults skips them (like "export.row") and
    // test_result_store arms them against a cached sweep instead.
    static const std::vector<std::string> names = {
        "engine.lower",   "engine.context", "toolflow.run",
        "scheduler.build_queues", "scheduler.pop", "scheduler.execute",
        "router.evict",   "shuttle.emit",   "export.row",
        "cache.open",     "cache.lookup",   "cache.append",
        "cache.commit",
    };
    return names;
}

void
setFaultInjectSpec(const std::string &spec)
{
    std::vector<ArmedSite> parsed = parseSpec(spec);
    fatalUnless(!parsed.empty(),
                "fault spec '" + spec + "' arms no sites");
    const std::lock_guard<std::mutex> lock(armedMutex());
    detail::faultInjectArmed.store(false, std::memory_order_relaxed);
    armedSites().clear();
    for (ArmedSite &site : parsed)
        armedSites().push_back(std::move(site));
    detail::faultInjectArmed.store(true, std::memory_order_relaxed);
}

void
clearFaultInject()
{
    const std::lock_guard<std::mutex> lock(armedMutex());
    detail::faultInjectArmed.store(false, std::memory_order_relaxed);
    armedSites().clear();
}

} // namespace qccd
