/**
 * @file
 * Fundamental scalar types and identifiers used throughout QCCDSim.
 *
 * Times are kept in microseconds as doubles: the simulator is an
 * architectural timing model, not a cycle-accurate one, and the paper's
 * performance fits (Section VII) are all expressed in microseconds.
 * Motional energy is kept in units of motional quanta (Section VII-B).
 */

#ifndef QCCD_COMMON_TYPES_HPP
#define QCCD_COMMON_TYPES_HPP

#include <cstdint>

namespace qccd
{

/** Logical (program) qubit index within a circuit. */
using QubitId = int;

/** Physical ion index within a device. */
using IonId = int;

/** Trap index within a device. */
using TrapId = int;

/** Topology node index (traps and junctions share one id space). */
using NodeId = int;

/** Topology edge (segment run) index. */
using EdgeId = int;

/** Time in microseconds. */
using TimeUs = double;

/** Motional energy in units of motional quanta. */
using Quanta = double;

/** Sentinel for "no id". */
constexpr int kInvalidId = -1;

/** One second expressed in microseconds. */
constexpr TimeUs kSecondUs = 1e6;

} // namespace qccd

#endif // QCCD_COMMON_TYPES_HPP
