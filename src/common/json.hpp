/**
 * @file
 * The JSON-ish configuration reader shared by the `.sweep` spec parser
 * and the `qccd_lint` artifact analyzer.
 *
 * Hand-rolled on purpose: the container bakes in no JSON dependency,
 * the grammar we need is small, and owning the parser lets every
 * diagnostic carry origin:line:column. Two conveniences beyond strict
 * JSON, both common in config dialects: `#` comments to end of line
 * and trailing commas in objects/arrays.
 *
 * Extracted from core/sweep_spec.cpp (PR 4) so consumers beyond the
 * sweep runner — notably core/lint.cpp, which walks spec documents
 * without executing them — share one grammar and one error format.
 */

#ifndef QCCD_COMMON_JSON_HPP
#define QCCD_COMMON_JSON_HPP

#include <string>
#include <utility>
#include <vector>

namespace qccd
{

/** One parsed JSON value with its document position. */
struct JsonValue
{
    enum class Kind
    {
        Object,
        Array,
        String,
        Number,
        Bool,
        Null
    };

    Kind kind = Kind::Null;
    // Members keep declaration order: grid axes expand in the order the
    // file declares them, which is what lets a spec reproduce a
    // compiled bench's exact row order.
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> items;
    std::string text;
    double number = 0;
    bool boolean = false;
    int line = 0;
    int column = 0;

    /** Member lookup; nullptr when absent. @pre kind == Object */
    const JsonValue *find(const std::string &key) const;
};

/** Lowercase kind name for diagnostics ("object", "string", ...). */
std::string jsonKindName(JsonValue::Kind kind);

/**
 * Recursive-descent JSON reader with positioned failures.
 *
 * Every error is a ConfigError formatted "origin:line:column: message"
 * — malformed input never crashes. Numbers are parsed with from_chars
 * (locale-independent, correctly rounded), so a spec literal parses to
 * the same double the C++ compiler gives the equivalent source
 * literal; required for bit-identical spec-vs-bench reproductions.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &source, const std::string &origin);

    /** Parse one document; trailing garbage is an error. */
    JsonValue parseDocument();

    /** Raise a ConfigError anchored at @p value's position. */
    [[noreturn]] void failAt(const JsonValue &value,
                             const std::string &msg) const;

    /** "origin:line:column: msg" without throwing (lint diagnostics). */
    std::string formatAt(const JsonValue &value,
                         const std::string &msg) const;

    const std::string &origin() const { return origin_; }

  private:
    [[noreturn]] void fail(int line, int column,
                           const std::string &msg) const;

    void check(bool ok, const std::string &msg) const;
    bool atEnd() const { return pos_ >= src_.size(); }
    char peek() const { return src_[pos_]; }
    char advance();
    void skipSpace();
    JsonValue parseValue(int depth);
    void parseObject(JsonValue &value, int depth);
    void parseArray(JsonValue &value, int depth);
    std::string parseString();
    void parseNumber(JsonValue &value);
    void parseKeyword(JsonValue &value);

    static constexpr int kMaxDepth = 64;

    const std::string &src_;
    std::string origin_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

} // namespace qccd

#endif // QCCD_COMMON_JSON_HPP
