/**
 * @file
 * Cooperative watchdog deadlines for bounding a runaway toolflow point.
 *
 * A Deadline is an absolute wall-clock due time checked at coarse stage
 * boundaries (the scheduler's ready-heap pop loop, router evictions,
 * shuttle emission). When the due time passes, the next check() throws
 * TimeoutError naming the stage, so a pathological design point turns
 * into a per-point `timeout` outcome instead of a stuck worker pool.
 *
 * The design is deliberately cooperative — no signals, no watchdog
 * threads — so an expired point unwinds through the ordinary exception
 * contract with the device state simply discarded, and an unarmed
 * deadline costs one predicted branch per check (goldens from runs
 * without --point-timeout-ms are provably unaffected).
 */

#ifndef QCCD_COMMON_DEADLINE_HPP
#define QCCD_COMMON_DEADLINE_HPP

#include <chrono>

namespace qccd
{

/** An absolute due time; default-constructed deadlines never fire. */
class Deadline
{
  public:
    /** Unarmed: check() is a no-op. */
    Deadline() = default;

    /** Armed @p budget_ms milliseconds from now (@p budget_ms >= 0). */
    static Deadline afterMs(long budget_ms);

    /** Armed and already due (deterministic timeouts in tests). */
    static Deadline expired();

    bool armed() const { return armed_; }

    /** True when armed and the due time has passed. */
    bool exceededNow() const;

    /**
     * Throw TimeoutError naming @p stage when the deadline has passed.
     * Unarmed deadlines return immediately (one branch, no clock read).
     */
    void check(const char *stage) const
    {
        if (!armed_) [[likely]]
            return;
        checkArmed(stage);
    }

  private:
    void checkArmed(const char *stage) const;

    std::chrono::steady_clock::time_point due_{};
    long budgetMs_ = 0;
    bool armed_ = false;
};

} // namespace qccd

#endif // QCCD_COMMON_DEADLINE_HPP
