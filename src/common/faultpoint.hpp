/**
 * @file
 * Deterministic fault injection at stage boundaries.
 *
 * Every coarse stage of the execution stack (circuit lowering, context
 * construction, scheduling, routing, shuttle emission, row export)
 * carries a named fault point:
 *
 *     QCCD_FAULT_POINT("scheduler.pop");
 *
 * In normal operation a fault point is one relaxed atomic load and a
 * predicted branch — it cannot perturb results. When armed (via the
 * QCCD_FAULT_INJECT environment variable at process start, or
 * programmatically with setFaultInjectSpec() in tests), the named
 * site counts its hits and throws at exactly the requested one, so a
 * test can prove that *every* error path leaves the engine and its
 * output files consistent.
 *
 * Spec grammar (comma-separated arm directives):
 *
 *     QCCD_FAULT_INJECT="scheduler.pop=120,router.evict=1:alloc"
 *
 * Each directive is SITE=N[:KIND]: at the Nth hit (1-based, counted
 * process-wide) of SITE, throw KIND:
 *
 *     throw    InternalError  (default — a latent logic bug)
 *     alloc    std::bad_alloc (simulated allocation failure)
 *     config   ConfigError    (an infeasible-input path)
 *     timeout  TimeoutError   (a deterministic watchdog expiry)
 *
 * Hits are deterministic per (site, counter); with one worker thread
 * the faulting point is fully reproducible. A malformed env spec is
 * diagnosed on stderr and the process exits 2 before main() runs — a
 * typo'd fault campaign must never silently test nothing.
 */

#ifndef QCCD_COMMON_FAULTPOINT_HPP
#define QCCD_COMMON_FAULTPOINT_HPP

#include <atomic>
#include <string>
#include <vector>

namespace qccd
{

namespace detail
{

/** True when any site is armed (set once; relaxed reads are safe). */
extern std::atomic<bool> faultInjectArmed;

/** Count a hit of @p site and throw if its armed trigger is reached. */
void faultPointHit(const char *site);

} // namespace detail

/** Stage-boundary fault point; see the file comment for the grammar. */
#define QCCD_FAULT_POINT(site)                                          \
    do {                                                                \
        if (::qccd::detail::faultInjectArmed.load(                      \
                std::memory_order_relaxed)) [[unlikely]]                \
            ::qccd::detail::faultPointHit(site);                        \
    } while (0)

/**
 * Every fault-point site name compiled into the library, so tests can
 * enumerate the campaign (tests/test_faults.cpp arms each in turn and
 * proves the engine survives it).
 */
const std::vector<std::string> &faultSiteNames();

/**
 * Arm fault injection from @p spec (same grammar as QCCD_FAULT_INJECT)
 * and reset all hit counters. Unknown sites are rejected so a typo'd
 * campaign cannot silently test nothing.
 *
 * @throws ConfigError on a malformed spec
 */
void setFaultInjectSpec(const std::string &spec);

/** Disarm all sites and reset hit counters. */
void clearFaultInject();

} // namespace qccd

#endif // QCCD_COMMON_FAULTPOINT_HPP
