/**
 * @file
 * `.topo` device files: arbitrary QCCD trap/junction graphs as data.
 *
 * A `.topo` file declares one device graph, one directive per line,
 * with `#` comments (to end of line) and blank lines allowed — the same
 * hand-rolled, no-dependency parser conventions as `.sweep` files, and
 * the same `origin:line:column` ConfigError diagnostics:
 *
 *     # A 4-trap ring with one bigger "memory" trap.
 *     name ring4          # optional device name (default: file stem)
 *     trap a 30           # trap NAME [CAPACITY]
 *     trap b              # capacity defaults to the design point's
 *     trap c
 *     trap d
 *     junction hub        # junction NAME
 *     edge a b            # edge NAME NAME [SEGMENTS] (default 1)
 *     edge b c 2          # a longer run: 2 transport segments
 *     edge c d
 *     edge d a
 *     edge a hub          # junctions connect like any other node
 *     edge c hub
 *
 * Node names are free-form words (no whitespace or '#'); declaration
 * order fixes the node ids, so trap indices — and therefore mapping
 * and routing — are deterministic. The finished graph must pass
 * Topology::validate() (connected, no dangling junctions, at least one
 * trap); violations are reported as ConfigErrors naming the file.
 *
 * Everywhere a builder spec is accepted ("linear:6", "grid:2x3", ...)
 * the form "topo:FILE" loads one of these files instead, composing
 * with `.sweep` specs, the CLI and DesignPoint unchanged.
 */

#ifndef QCCD_ARCH_TOPO_FILE_HPP
#define QCCD_ARCH_TOPO_FILE_HPP

#include <string>

#include "arch/topology.hpp"

namespace qccd
{

/**
 * Parse `.topo` text into a validated Topology.
 *
 * @param text the device description
 * @param origin name used in diagnostics (e.g. the file path)
 * @param default_capacity capacity for traps that do not pin their own
 *        (the design point's trap capacity)
 * @throws ConfigError with origin:line:column on any syntax, schema or
 *         graph-invariant error — malformed input never crashes
 */
Topology parseTopo(const std::string &text, const std::string &origin,
                   int default_capacity);

/** Read and parse a `.topo` file. */
Topology loadTopoFile(const std::string &path, int default_capacity);

/** "dir/ring4.topo" -> "ring4": the device label a path implies. */
std::string topoFileStem(const std::string &path);

} // namespace qccd

#endif // QCCD_ARCH_TOPO_FILE_HPP
