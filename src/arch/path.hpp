/**
 * @file
 * Shortest-path shuttle routing over a QCCD topology.
 *
 * The compiler routes every inter-trap shuttle along the cheapest path
 * where edges cost their transport time, junctions cost their crossing
 * time, and passing *through* an intermediate trap costs the merge +
 * reorder + split detour of Fig. 4 (a fixed routing estimate; the
 * simulator later charges the exact cost).
 */

#ifndef QCCD_ARCH_PATH_HPP
#define QCCD_ARCH_PATH_HPP

#include <vector>

#include "arch/topology.hpp"

namespace qccd
{

/** Routing cost weights, in microseconds. */
struct PathCost
{
    double perSegment = 5.0;      ///< one transport segment
    double yJunction = 100.0;     ///< crossing a 3-way junction
    double xJunction = 120.0;     ///< crossing a 4-way junction
    /**
     * Routing estimate for passing through an intermediate trap:
     * merge (80) + split (80) + a nominal chain reorder allowance (300).
     */
    double trapPassThrough = 460.0;
};

/** One element of a routed path, in traversal order. */
struct PathStep
{
    enum class Kind
    {
        Edge,        ///< traverse edge `id`
        Junction,    ///< cross junction node `id`
        ThroughTrap  ///< merge into / split out of trap node `id`
    };

    Kind kind;
    int id; ///< EdgeId for Edge, NodeId otherwise
};

/** A routed path between two trap nodes. */
struct Path
{
    NodeId src = kInvalidId;
    NodeId dst = kInvalidId;
    std::vector<PathStep> steps;
    double cost = 0; ///< routing cost (us estimate)

    /**
     * Step-kind totals, computed once when the path is built so hot
     * scheduler queries never rescan `steps`. @{
     */
    int throughTraps = 0; ///< intermediate traps passed through
    int junctions = 0;    ///< junction crossings
    int segments = 0;     ///< transport segments covered
    /** @} */

    /** Recompute the cached step totals from `steps`. */
    void finalizeCounts(const Topology &topo);

    /** Number of intermediate traps passed through. */
    int throughTrapCount() const { return throughTraps; }

    /** Number of junction crossings. */
    int junctionCount() const { return junctions; }

    /** Total segments moved across. */
    int segmentCount() const { return segments; }
};

/**
 * All-pairs trap-to-trap shortest paths, precomputed with Dijkstra.
 *
 * Paths are deterministic: ties break toward lower node ids so repeated
 * runs produce identical schedules. The matrix is stored as one
 * contiguous trap*trap block for locality, and a finished PathFinder is
 * immutable, so one instance can be shared by any number of concurrent
 * schedulers (see ToolflowContext / SweepEngine).
 */
class PathFinder
{
  public:
    PathFinder(const Topology &topo, const PathCost &cost);

    /** The routed path from trap @p a to trap @p b (dense trap ids). */
    const Path &path(TrapId a, TrapId b) const;

    /** Routing cost between traps @p a and @p b. */
    double cost(TrapId a, TrapId b) const;

  private:
    const Topology &topo_;
    std::vector<Path> paths_; // contiguous [srcTrap * trapCount + dstTrap]

    void computeFrom(TrapId src, const PathCost &cost);
};

} // namespace qccd

#endif // QCCD_ARCH_PATH_HPP
