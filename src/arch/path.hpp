/**
 * @file
 * Shortest-path shuttle routing over a QCCD topology.
 *
 * The compiler routes every inter-trap shuttle along the cheapest path
 * where edges cost their transport time, junctions cost their crossing
 * time, and passing *through* an intermediate trap costs the merge +
 * reorder + split detour of Fig. 4 (a fixed routing estimate; the
 * simulator later charges the exact cost).
 */

#ifndef QCCD_ARCH_PATH_HPP
#define QCCD_ARCH_PATH_HPP

#include <vector>

#include "arch/topology.hpp"

namespace qccd
{

/** Routing cost weights, in microseconds. */
struct PathCost
{
    double perSegment = 5.0;      ///< one transport segment
    double yJunction = 100.0;     ///< crossing a 3-way junction
    double xJunction = 120.0;     ///< crossing a 4-way junction
    /**
     * Routing estimate for passing through an intermediate trap:
     * merge (80) + split (80) + a nominal chain reorder allowance (300).
     */
    double trapPassThrough = 460.0;
};

/** One element of a routed path, in traversal order. */
struct PathStep
{
    enum class Kind
    {
        Edge,        ///< traverse edge `id`
        Junction,    ///< cross junction node `id`
        ThroughTrap  ///< merge into / split out of trap node `id`
    };

    Kind kind;
    int id; ///< EdgeId for Edge, NodeId otherwise
};

/** A routed path between two trap nodes. */
struct Path
{
    NodeId src = kInvalidId;
    NodeId dst = kInvalidId;
    std::vector<PathStep> steps;
    double cost = 0; ///< routing cost (us estimate)

    /** Number of intermediate traps passed through. */
    int throughTrapCount() const;

    /** Number of junction crossings. */
    int junctionCount() const;

    /** Total segments moved across. */
    int segmentCount(const Topology &topo) const;
};

/**
 * All-pairs trap-to-trap shortest paths, precomputed with Dijkstra.
 *
 * Paths are deterministic: ties break toward lower node ids so repeated
 * runs produce identical schedules.
 */
class PathFinder
{
  public:
    PathFinder(const Topology &topo, const PathCost &cost);

    /** The routed path from trap @p a to trap @p b (dense trap ids). */
    const Path &path(TrapId a, TrapId b) const;

    /** Routing cost between traps @p a and @p b. */
    double cost(TrapId a, TrapId b) const;

  private:
    const Topology &topo_;
    std::vector<std::vector<Path>> paths_; // [srcTrap][dstTrap]

    void computeFrom(TrapId src, const PathCost &cost);
};

} // namespace qccd

#endif // QCCD_ARCH_PATH_HPP
