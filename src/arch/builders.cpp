#include "arch/builders.hpp"

#include <cctype>
#include <charconv>

#include "arch/topo_file.hpp"
#include "common/error.hpp"

namespace qccd
{

Topology
makeLinear(int num_traps, int capacity, int segments_per_edge)
{
    fatalUnless(num_traps >= 1, "linear device needs at least one trap");
    Topology topo;
    std::vector<NodeId> traps;
    traps.reserve(num_traps);
    for (int i = 0; i < num_traps; ++i)
        traps.push_back(topo.addTrap(capacity));
    for (int i = 0; i + 1 < num_traps; ++i)
        topo.connect(traps[i], traps[i + 1], segments_per_edge);
    return topo;
}

Topology
makeGrid(int rows, int cols, int capacity, int segments_per_edge)
{
    fatalUnless(rows >= 1, "grid device needs at least one row");
    fatalUnless(cols >= 2, "grid device needs at least two columns");
    Topology topo;
    std::vector<std::vector<NodeId>> traps(rows, std::vector<NodeId>(cols));
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            traps[r][c] = topo.addTrap(capacity);

    std::vector<NodeId> rail(cols);
    for (int c = 0; c < cols; ++c)
        rail[c] = topo.addJunction();

    for (int c = 0; c < cols; ++c)
        for (int r = 0; r < rows; ++r)
            topo.connect(traps[r][c], rail[c], segments_per_edge);
    for (int c = 0; c + 1 < cols; ++c)
        topo.connect(rail[c], rail[c + 1], segments_per_edge);
    return topo;
}

Topology
makeRing(int num_traps, int capacity, int segments_per_edge)
{
    fatalUnless(num_traps >= 3, "ring device needs at least three traps");
    Topology topo = makeLinear(num_traps, capacity, segments_per_edge);
    topo.connect(topo.trapNode(num_traps - 1), topo.trapNode(0),
                 segments_per_edge);
    return topo;
}

Topology
makeStar(int num_traps, int capacity, int segments_per_edge)
{
    fatalUnless(num_traps >= 2, "star device needs at least two traps");
    Topology topo;
    std::vector<NodeId> traps;
    traps.reserve(num_traps);
    for (int i = 0; i < num_traps; ++i)
        traps.push_back(topo.addTrap(capacity));
    const NodeId hub = topo.addJunction();
    for (NodeId t : traps)
        topo.connect(t, hub, segments_per_edge);
    return topo;
}

Topology
makeHTree(int depth, int capacity, int segments_per_edge)
{
    fatalUnless(depth >= 1, "H-tree device needs depth at least 1");
    fatalUnless(depth <= 10, "H-tree depth is limited to 10");
    Topology topo;
    const int leaves = 1 << depth;
    std::vector<NodeId> traps;
    traps.reserve(leaves);
    for (int i = 0; i < leaves; ++i)
        traps.push_back(topo.addTrap(capacity));

    // Complete binary junction tree, allocated level by level from the
    // root: junction j's children are junctions 2j+1 and 2j+2 while
    // those exist, leaf traps otherwise.
    const int internal = leaves - 1;
    std::vector<NodeId> junctions;
    junctions.reserve(internal);
    for (int i = 0; i < internal; ++i)
        junctions.push_back(topo.addJunction());
    for (int j = 0; j < internal; ++j) {
        for (int child : {2 * j + 1, 2 * j + 2}) {
            const NodeId to = child < internal
                                  ? junctions[child]
                                  : traps[child - internal];
            topo.connect(junctions[j], to, segments_per_edge);
        }
    }
    return topo;
}

namespace
{

/** Malformed-spec diagnostic carrying the 1-based position. */
[[noreturn]] void
failSpec(const std::string &spec, size_t pos, const std::string &msg)
{
    throw ConfigError("topology spec '" + spec + "':" +
                      std::to_string(pos + 1) + ": " + msg);
}

/** Parse spec[begin, end) as a positive integer size/count. */
int
parseSize(const std::string &spec, size_t begin, size_t end,
          const char *what)
{
    if (begin >= end)
        failSpec(spec, begin, std::string(what) + " is missing");
    for (size_t i = begin; i < end; ++i)
        if (std::isdigit(static_cast<unsigned char>(spec[i])) == 0)
            failSpec(spec, i,
                     std::string(what) + " must be a positive integer");
    int value = 0;
    const auto [ptr, ec] = std::from_chars(
        spec.data() + begin, spec.data() + end, value);
    if (ec != std::errc() || ptr != spec.data() + end)
        failSpec(spec, begin, std::string(what) + " is out of range");
    if (value <= 0)
        failSpec(spec, begin, std::string(what) + " must be positive");
    return value;
}

std::vector<TopologyFamily> &
familiesMutable()
{
    static std::vector<TopologyFamily> families = [] {
        auto one = [](Topology (*fn)(int, int, int)) {
            return [fn](const std::vector<int> &sizes, int capacity,
                        int segments) {
                return fn(sizes[0], capacity, segments);
            };
        };
        std::vector<TopologyFamily> builtins;
        builtins.push_back({"linear", 'l', 1, "linear:N[:sS]",
                            "N traps in a row, no junctions (Fig. 2a)",
                            one(makeLinear)});
        builtins.push_back(
            {"grid", 'g', 2, "grid:RxC[:sS]",
             "RxC traps on a junction rail (Fig. 2b)",
             [](const std::vector<int> &sizes, int capacity,
                int segments) {
                 return makeGrid(sizes[0], sizes[1], capacity, segments);
             }});
        builtins.push_back({"ring", 'r', 1, "ring:N[:sS]",
                            "N traps in a cycle (linear with ends joined)",
                            one(makeRing)});
        builtins.push_back({"star", 0, 1, "star:N[:sS]",
                            "N traps around one central junction hub",
                            one(makeStar)});
        builtins.push_back({"htree", 'h', 1, "htree:D[:sS]",
                            "2^D leaf traps on a binary junction tree",
                            one(makeHTree)});
        return builtins;
    }();
    return families;
}

const TopologyFamily *
findFamily(const std::string &name)
{
    for (const TopologyFamily &family : familiesMutable())
        if (family.name == name)
            return &family;
    return nullptr;
}

const TopologyFamily *
findShortForm(char letter)
{
    const char lower =
        static_cast<char>(std::tolower(static_cast<unsigned char>(letter)));
    for (const TopologyFamily &family : familiesMutable())
        if (family.shortForm == lower)
            return &family;
    return nullptr;
}

std::string
knownFamilyList()
{
    std::string list;
    for (const TopologyFamily &family : familiesMutable()) {
        if (!list.empty())
            list += ", ";
        list += family.name;
    }
    return list;
}

/** A fully parsed builder spec (or a `.topo` file reference). */
struct ParsedSpec
{
    const TopologyFamily *family = nullptr;
    std::vector<int> sizes;
    int segments = 1;
    std::string topoPath; ///< non-empty for "topo:FILE" specs
};

ParsedSpec
parseSpecString(const std::string &spec)
{
    fatalUnless(!spec.empty(), "empty topology spec");

    ParsedSpec parsed;
    const std::string topo_prefix = "topo:";
    if (spec.rfind(topo_prefix, 0) == 0) {
        parsed.topoPath = spec.substr(topo_prefix.size());
        if (parsed.topoPath.empty())
            failSpec(spec, topo_prefix.size(),
                     "path after 'topo:' is missing");
        return parsed;
    }

    // Family keyword: letters up to the first ':' or digit ("linear:6"
    // vs the short form "l6").
    size_t word_end = 0;
    while (word_end < spec.size() &&
           std::isalpha(static_cast<unsigned char>(spec[word_end])) != 0)
        ++word_end;
    const std::string word = spec.substr(0, word_end);

    size_t args_begin = 0;
    if (const TopologyFamily *family = findFamily(word);
        family != nullptr) {
        parsed.family = family;
        if (word_end >= spec.size() || spec[word_end] != ':')
            failSpec(spec, word_end,
                     "expected ':' and sizes, like " + family->grammar);
        args_begin = word_end + 1;
    } else if (word.size() == 1 && word_end < spec.size() &&
               findShortForm(word[0]) != nullptr) {
        parsed.family = findShortForm(word[0]);
        args_begin = 1;
    } else {
        throw ConfigError("unknown topology spec '" + spec +
                          "' (known families: " + knownFamilyList() +
                          "; or topo:FILE)");
    }

    // Sizes field: `arity` positive integers separated by 'x'.
    size_t args_end = spec.find(':', args_begin);
    if (args_end == std::string::npos)
        args_end = spec.size();
    const auto wrongShape = [&](size_t pos) {
        failSpec(spec, pos,
                 "family '" + parsed.family->name + "' takes " +
                     std::to_string(parsed.family->arity) +
                     (parsed.family->arity == 1 ? " size" : " sizes") +
                     ", like " + parsed.family->grammar);
    };
    size_t part_begin = args_begin;
    for (int part = 0; part < parsed.family->arity; ++part) {
        const bool last = part + 1 == parsed.family->arity;
        size_t part_end = 0;
        if (last) {
            part_end = args_end;
            const size_t extra = spec.find('x', part_begin);
            if (extra < args_end)
                wrongShape(extra);
        } else {
            part_end = spec.find('x', part_begin);
            if (part_end == std::string::npos || part_end >= args_end)
                wrongShape(args_begin);
        }
        parsed.sizes.push_back(
            parseSize(spec, part_begin, part_end, "size"));
        part_begin = part_end + 1;
    }

    // Optional suffix fields; the only one defined is ":sN" (transport
    // segments per edge), and it may appear once — conflicting
    // duplicates must not silently last-one-wins.
    bool have_segments = false;
    size_t field_begin = args_end;
    while (field_begin < spec.size()) {
        const size_t field_end = std::min(
            spec.find(':', field_begin + 1), spec.size());
        if (field_begin + 1 >= field_end ||
            spec[field_begin + 1] != 's')
            failSpec(spec, field_begin + 1,
                     "unknown spec suffix (expected ':sN' segments "
                     "per edge)");
        if (have_segments)
            failSpec(spec, field_begin + 1,
                     "duplicate ':sN' segment suffix");
        have_segments = true;
        parsed.segments = parseSize(spec, field_begin + 2, field_end,
                                    "segment count");
        field_begin = field_end;
    }
    return parsed;
}

} // namespace

const std::vector<TopologyFamily> &
topologyFamilies()
{
    return familiesMutable();
}

void
registerTopologyFamily(TopologyFamily family)
{
    fatalUnless(!family.name.empty(),
                "topology family needs a non-empty name");
    for (const char c : family.name)
        fatalUnless(std::islower(static_cast<unsigned char>(c)) != 0,
                    "topology family name must be a lowercase word: '" +
                        family.name + "'");
    fatalUnless(family.name != "topo",
                "'topo' is reserved for .topo file specs");
    fatalUnless(family.arity >= 1,
                "topology family '" + family.name +
                    "' must take at least one size");
    fatalUnless(family.build != nullptr,
                "topology family '" + family.name + "' has no builder");
    if (family.shortForm != 0)
        fatalUnless(std::islower(static_cast<unsigned char>(
                        family.shortForm)) != 0,
                    "topology family short form must be a lowercase "
                    "letter");
    for (const TopologyFamily &existing : familiesMutable()) {
        fatalUnless(existing.name != family.name,
                    "topology family '" + family.name +
                        "' is already registered");
        fatalUnless(family.shortForm == 0 ||
                        existing.shortForm != family.shortForm,
                    "topology family short form '" +
                        std::string(1, family.shortForm) +
                        "' is already taken by '" + existing.name + "'");
    }
    familiesMutable().push_back(std::move(family));
}

Topology
makeFromSpec(const std::string &spec, int capacity)
{
    const ParsedSpec parsed = parseSpecString(spec);
    if (!parsed.topoPath.empty())
        return loadTopoFile(parsed.topoPath, capacity);
    Topology topo =
        parsed.family->build(parsed.sizes, capacity, parsed.segments);
    topo.validate();
    return topo;
}

void
validateTopologySpec(const std::string &spec)
{
    parseSpecString(spec);
}

} // namespace qccd
