#include "arch/builders.hpp"

#include <cctype>
#include <vector>

#include "common/error.hpp"

namespace qccd
{

Topology
makeLinear(int num_traps, int capacity, int segments_per_edge)
{
    fatalUnless(num_traps >= 1, "linear device needs at least one trap");
    Topology topo;
    std::vector<NodeId> traps;
    traps.reserve(num_traps);
    for (int i = 0; i < num_traps; ++i)
        traps.push_back(topo.addTrap(capacity));
    for (int i = 0; i + 1 < num_traps; ++i)
        topo.connect(traps[i], traps[i + 1], segments_per_edge);
    return topo;
}

Topology
makeGrid(int rows, int cols, int capacity, int segments_per_edge)
{
    fatalUnless(rows >= 1, "grid device needs at least one row");
    fatalUnless(cols >= 2, "grid device needs at least two columns");
    Topology topo;
    std::vector<std::vector<NodeId>> traps(rows, std::vector<NodeId>(cols));
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            traps[r][c] = topo.addTrap(capacity);

    std::vector<NodeId> rail(cols);
    for (int c = 0; c < cols; ++c)
        rail[c] = topo.addJunction();

    for (int c = 0; c < cols; ++c)
        for (int r = 0; r < rows; ++r)
            topo.connect(traps[r][c], rail[c], segments_per_edge);
    for (int c = 0; c + 1 < cols; ++c)
        topo.connect(rail[c], rail[c + 1], segments_per_edge);
    return topo;
}

namespace
{

int
parsePositiveInt(const std::string &text, const std::string &spec)
{
    fatalUnless(!text.empty(), "malformed topology spec '" + spec + "'");
    for (char ch : text) {
        fatalUnless(std::isdigit(static_cast<unsigned char>(ch)) != 0,
                    "malformed topology spec '" + spec + "'");
    }
    const int value = std::stoi(text);
    fatalUnless(value > 0, "topology spec sizes must be positive: '" +
                spec + "'");
    return value;
}

} // namespace

Topology
makeFromSpec(const std::string &spec, int capacity)
{
    std::string body;
    bool linear = false;
    if (spec.rfind("linear:", 0) == 0) {
        linear = true;
        body = spec.substr(7);
    } else if (spec.rfind("grid:", 0) == 0) {
        body = spec.substr(5);
    } else if (!spec.empty() && (spec[0] == 'l' || spec[0] == 'L')) {
        linear = true;
        body = spec.substr(1);
    } else if (!spec.empty() && (spec[0] == 'g' || spec[0] == 'G')) {
        body = spec.substr(1);
    } else {
        throw ConfigError("unknown topology spec '" + spec + "'");
    }

    // Optional ":sN" suffix: N transport segments per inter-trap edge
    // (default 1), e.g. "linear:6:s4" for the segment-count ablation.
    int segments = 1;
    const size_t suffix = body.rfind(":s");
    if (suffix != std::string::npos) {
        segments = parsePositiveInt(body.substr(suffix + 2), spec);
        body = body.substr(0, suffix);
    }

    if (linear)
        return makeLinear(parsePositiveInt(body, spec), capacity,
                          segments);

    const size_t x = body.find('x');
    fatalUnless(x != std::string::npos,
                "grid spec must look like grid:RxC, got '" + spec + "'");
    const int rows = parsePositiveInt(body.substr(0, x), spec);
    const int cols = parsePositiveInt(body.substr(x + 1), spec);
    return makeGrid(rows, cols, capacity, segments);
}

} // namespace qccd
