/**
 * @file
 * Topology builders and the extensible device-family registry.
 *
 * The paper's evaluation (Section VIII-B) uses two families — LN linear
 * devices (e.g. L6, the Honeywell-like topology) and GRxC junction-rail
 * grids (e.g. G2x3, Fig. 2b) — but the toolflow itself runs on any
 * trap/junction graph. This header exposes the standard families (ring,
 * star and H-tree devices alongside linear and grid), a registry new
 * families can be added to at runtime, and the spec-string front door
 * `makeFromSpec` that every layer above (DesignPoint, sweeps, the CLI)
 * goes through. Fully custom graphs load from `.topo` files (see
 * arch/topo_file.hpp) via the "topo:FILE" spec form.
 */

#ifndef QCCD_ARCH_BUILDERS_HPP
#define QCCD_ARCH_BUILDERS_HPP

#include <functional>
#include <string>
#include <vector>

#include "arch/topology.hpp"

namespace qccd
{

/**
 * Build a linear device: @p num_traps traps in a row, adjacent traps
 * connected directly by an edge of @p segments_per_edge segments.
 *
 * There are no junctions; a shuttle between non-adjacent traps passes
 * through the intermediate traps (merge + reorder + split, Fig. 4).
 */
Topology makeLinear(int num_traps, int capacity, int segments_per_edge = 1);

/**
 * Build a grid device with @p rows x @p cols traps and a junction rail.
 *
 * Each column has one junction serving its @p rows traps (each trap
 * connects to its column junction by one edge); the junctions form a
 * rail. End-of-rail junctions are 3-way (Y) for rows == 2, interior
 * junctions are 4-way (X), matching the paper's Fig. 2b layout where a
 * 2x2 grid has 5 segments and 2 junctions. Shuttles never pass through
 * intermediate traps.
 *
 * @pre rows >= 1, cols >= 2 (a single column would need no rail)
 */
Topology makeGrid(int rows, int cols, int capacity,
                  int segments_per_edge = 1);

/**
 * Build a ring device: @p num_traps traps in a cycle, adjacent traps
 * connected directly (a linear device with the ends joined, so the
 * worst-case shuttle passes through half as many intermediate traps).
 *
 * @pre num_traps >= 3 (two traps would need a parallel double edge)
 */
Topology makeRing(int num_traps, int capacity, int segments_per_edge = 1);

/**
 * Build a star device: @p num_traps traps, each connected by its own
 * edge to one central junction hub. Every shuttle crosses exactly the
 * hub; the hub prices as an X junction once its degree exceeds 3.
 *
 * @pre num_traps >= 2 (a junction must join at least two edges)
 */
Topology makeStar(int num_traps, int capacity, int segments_per_edge = 1);

/**
 * Build an H-tree device of depth @p depth: 2^depth leaf traps at the
 * tips of a complete binary junction tree (2^depth - 1 junctions). The
 * root junction is a straight-through corner (degree 2), every other
 * junction a Y; shuttles never pass through intermediate traps and any
 * leaf reaches any other in at most 2*depth - 1 junction crossings.
 *
 * @pre 1 <= depth <= 10 (2^10 = 1024 traps is already far beyond the
 *      paper's design space)
 */
Topology makeHTree(int depth, int capacity, int segments_per_edge = 1);

/**
 * One registered device family of the builder-spec grammar
 * `family:SIZES[:sN]` (see makeFromSpec).
 */
struct TopologyFamily
{
    /** Spec keyword, e.g. "ring" for "ring:6". */
    std::string name;

    /**
     * Optional single-letter shorthand prefix (0 = none), matched
     * case-insensitively: 'l' makes "l6"/"L6" mean "linear:6".
     */
    char shortForm = 0;

    /** Number of integer sizes the spec takes ("RxC" has two). */
    int arity = 1;

    /** Human-readable spec grammar, e.g. "grid:RxC[:sN]". */
    std::string grammar;

    /** One-line description for listings (qccd_explore --topologies). */
    std::string description;

    /**
     * Build the device. @p sizes has exactly `arity` positive entries;
     * @p capacity is the default per-trap capacity and @p segments the
     * per-edge segment count. Semantic range errors (e.g. a ring of
     * two traps) throw ConfigError.
     */
    std::function<Topology(const std::vector<int> &sizes, int capacity,
                           int segments)> build;
};

/** Every registered family, builtins first, in registration order. */
const std::vector<TopologyFamily> &topologyFamilies();

/**
 * Register an additional device family.
 *
 * @throws ConfigError when the name or short form collides with an
 *         existing family, the name is not a lowercase word, or the
 *         family is malformed (no builder, arity < 1)
 */
void registerTopologyFamily(TopologyFamily family);

/**
 * Build a topology from a spec string:
 *
 *  - "FAMILY:SIZES" for any registered family, e.g. "linear:6",
 *    "grid:2x3", "ring:8", "star:5", "htree:3" (multi-size families
 *    separate sizes with 'x');
 *  - single-letter short forms for families that declare one, e.g.
 *    "l6" / "L6" / "g2x3" / "r8";
 *  - an optional ":sN" suffix setting the transport segments per edge
 *    (default 1), e.g. "linear:6:s4";
 *  - "topo:FILE" to load a custom device graph from a `.topo` file
 *    (see arch/topo_file.hpp), with @p capacity as the default for
 *    traps that do not pin their own.
 *
 * @throws ConfigError on malformed specs, naming the offending spec
 *         and the 1-based position of the error within it
 */
Topology makeFromSpec(const std::string &spec, int capacity);

/**
 * Check @p spec's syntax (family exists, sizes/suffix well formed)
 * without building the device or touching the filesystem, so sweep
 * parsing can reject a typo'd topology axis at parse time with the
 * file position attached. "topo:FILE" specs only check for a non-empty
 * path — the file itself is read when the device is built.
 *
 * @throws ConfigError exactly as makeFromSpec would for syntax errors
 */
void validateTopologySpec(const std::string &spec);

} // namespace qccd

#endif // QCCD_ARCH_BUILDERS_HPP
