/**
 * @file
 * Standard QCCD topology builders used in the paper's evaluation
 * (Section VIII-B): LN linear devices (e.g. L6, the Honeywell-like
 * topology) and GRxC junction-rail grid devices (e.g. G2x3, Fig. 2b).
 */

#ifndef QCCD_ARCH_BUILDERS_HPP
#define QCCD_ARCH_BUILDERS_HPP

#include <string>

#include "arch/topology.hpp"

namespace qccd
{

/**
 * Build a linear device: @p num_traps traps in a row, adjacent traps
 * connected directly by an edge of @p segments_per_edge segments.
 *
 * There are no junctions; a shuttle between non-adjacent traps passes
 * through the intermediate traps (merge + reorder + split each).
 */
Topology makeLinear(int num_traps, int capacity, int segments_per_edge = 1);

/**
 * Build a grid device with @p rows x @p cols traps and a junction rail.
 *
 * Each column has one junction serving its @p rows traps (each trap
 * connects to its column junction by one edge); the junctions form a
 * rail. End-of-rail junctions are 3-way (Y) for rows == 2, interior
 * junctions are 4-way (X), matching the paper's Fig. 2b layout where a
 * 2x2 grid has 5 segments and 2 junctions. Shuttles never pass through
 * intermediate traps.
 *
 * @pre rows >= 1, cols >= 2 (a single column would need no rail)
 */
Topology makeGrid(int rows, int cols, int capacity,
                  int segments_per_edge = 1);

/**
 * Build a topology from a spec string:
 *  - "linear:N" or "lN"  -> makeLinear(N, capacity)
 *  - "grid:RxC" or "gRxC" -> makeGrid(R, C, capacity)
 *
 * An optional ":sN" suffix sets the segments per inter-trap edge
 * (default 1), e.g. "linear:6:s4".
 *
 * @throws ConfigError on malformed specs.
 */
Topology makeFromSpec(const std::string &spec, int capacity);

} // namespace qccd

#endif // QCCD_ARCH_BUILDERS_HPP
