#include "arch/topology.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qccd
{

NodeId
Topology::addTrap(int capacity)
{
    fatalUnless(capacity >= 2, "trap capacity must be at least 2");
    TopoNode node;
    node.kind = NodeKind::Trap;
    node.capacity = capacity;
    node.trapIndex = static_cast<TrapId>(trapNodes_.size());
    const NodeId id = nodeCount();
    nodes_.push_back(node);
    adjacency_.emplace_back();
    trapNodes_.push_back(id);
    return id;
}

NodeId
Topology::addJunction()
{
    TopoNode node;
    node.kind = NodeKind::Junction;
    const NodeId id = nodeCount();
    nodes_.push_back(node);
    adjacency_.emplace_back();
    return id;
}

EdgeId
Topology::connect(NodeId a, NodeId b, int segments)
{
    fatalUnless(a >= 0 && a < nodeCount() && b >= 0 && b < nodeCount(),
                "connect: node id out of range");
    fatalUnless(a != b, "connect: self loops are not allowed");
    fatalUnless(segments >= 1, "connect: edge needs at least one segment");
    TopoEdge edge;
    edge.a = a;
    edge.b = b;
    edge.segments = segments;
    const EdgeId id = edgeCount();
    edges_.push_back(edge);
    adjacency_[a].push_back(id);
    adjacency_[b].push_back(id);
    return id;
}

int
Topology::junctionCount() const
{
    return nodeCount() - trapCount();
}

const TopoNode &
Topology::node(NodeId id) const
{
    panicUnless(id >= 0 && id < nodeCount(), "node id out of range");
    return nodes_[id];
}

const TopoEdge &
Topology::edge(EdgeId id) const
{
    panicUnless(id >= 0 && id < edgeCount(), "edge id out of range");
    return edges_[id];
}

NodeId
Topology::trapNode(TrapId t) const
{
    panicUnless(t >= 0 && t < trapCount(), "trap index out of range");
    return trapNodes_[t];
}

const std::vector<EdgeId> &
Topology::incidentEdges(NodeId id) const
{
    panicUnless(id >= 0 && id < nodeCount(), "node id out of range");
    return adjacency_[id];
}

int
Topology::degree(NodeId id) const
{
    return static_cast<int>(incidentEdges(id).size());
}

int
Topology::reachableFromFirst() const
{
    if (nodeCount() == 0)
        return 0;
    std::vector<bool> seen(nodeCount(), false);
    std::vector<NodeId> stack{0};
    seen[0] = true;
    int visited = 1;
    while (!stack.empty()) {
        const NodeId n = stack.back();
        stack.pop_back();
        for (EdgeId e : adjacency_[n]) {
            const NodeId m = edges_[e].other(n);
            if (!seen[m]) {
                seen[m] = true;
                ++visited;
                stack.push_back(m);
            }
        }
    }
    return visited;
}

bool
Topology::isConnected() const
{
    return reachableFromFirst() == nodeCount();
}

void
Topology::validate() const
{
    fatalUnless(trapCount() >= 1, "topology has no traps");
    for (NodeId n = 0; n < nodeCount(); ++n) {
        if (nodes_[n].kind != NodeKind::Junction)
            continue;
        if (degree(n) < 2)
            throw ConfigError(
                "junction node " + std::to_string(n) + " has degree " +
                std::to_string(degree(n)) +
                "; a junction must join at least two edges");
    }
    const int reachable = reachableFromFirst();
    if (reachable != nodeCount())
        throw ConfigError(
            "topology must be connected: only " +
            std::to_string(reachable) + " of " +
            std::to_string(nodeCount()) +
            " nodes are reachable from node 0");
}

int
Topology::totalCapacity() const
{
    int total = 0;
    for (NodeId t : trapNodes_)
        total += nodes_[t].capacity;
    return total;
}

std::string
Topology::summary() const
{
    std::ostringstream out;
    if (!name_.empty())
        out << name_ << ": ";
    out << trapCount() << " traps, " << junctionCount() << " junctions, "
        << edgeCount() << " edges, capacity " << totalCapacity();
    return out.str();
}

} // namespace qccd
