#include "arch/path.hpp"

#include <limits>
#include <queue>

#include "common/error.hpp"

namespace qccd
{

void
Path::finalizeCounts(const Topology &topo)
{
    throughTraps = 0;
    junctions = 0;
    segments = 0;
    for (const PathStep &s : steps) {
        switch (s.kind) {
          case PathStep::Kind::Edge:
            segments += topo.edge(s.id).segments;
            break;
          case PathStep::Kind::Junction:
            ++junctions;
            break;
          case PathStep::Kind::ThroughTrap:
            ++throughTraps;
            break;
        }
    }
}

namespace
{

double
nodeTraversalCost(const Topology &topo, NodeId n, const PathCost &cost)
{
    const TopoNode &node = topo.node(n);
    if (node.kind == NodeKind::Trap)
        return cost.trapPassThrough;
    // Degree <= 3 crossings (Y junctions and straight-through corners)
    // price as a Y; anything wider (X crossings and beyond, e.g. the
    // hub of a star device) prices as an X. Mirrors
    // ShuttleTimeModel::junctionCrossing so the routing estimate and
    // the simulated charge agree on every graph.
    return topo.degree(n) <= 3 ? cost.yJunction : cost.xJunction;
}

} // namespace

PathFinder::PathFinder(const Topology &topo, const PathCost &cost)
    : topo_(topo)
{
    // Full graph validation (connectivity, junction invariants): the
    // compiler's correctness on arbitrary graphs starts here.
    topo.validate();
    paths_.resize(static_cast<size_t>(topo.trapCount()) *
                  topo.trapCount());
    for (TrapId t = 0; t < topo.trapCount(); ++t)
        computeFrom(t, cost);
}

void
PathFinder::computeFrom(TrapId src, const PathCost &cost)
{
    const NodeId source = topo_.trapNode(src);
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(topo_.nodeCount(), inf);
    std::vector<NodeId> parentNode(topo_.nodeCount(), kInvalidId);
    std::vector<EdgeId> parentEdge(topo_.nodeCount(), kInvalidId);

    // Min-heap ordered by (distance, node id) for deterministic ties.
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[source] = 0;
    heap.emplace(0.0, source);

    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u])
            continue;
        // Leaving an intermediate node costs its traversal price.
        const double leave_cost =
            u == source ? 0.0 : nodeTraversalCost(topo_, u, cost);
        for (EdgeId e : topo_.incidentEdges(u)) {
            const TopoEdge &edge = topo_.edge(e);
            const NodeId v = edge.other(u);
            const double nd =
                d + leave_cost + edge.segments * cost.perSegment;
            if (nd < dist[v]) {
                dist[v] = nd;
                parentNode[v] = u;
                parentEdge[v] = e;
                heap.emplace(nd, v);
            }
        }
    }

    const size_t row = static_cast<size_t>(src) * topo_.trapCount();
    for (TrapId t = 0; t < topo_.trapCount(); ++t) {
        Path &p = paths_[row + t];
        p.src = source;
        p.dst = topo_.trapNode(t);
        p.cost = dist[p.dst];
        if (t == src)
            continue;
        panicUnless(dist[p.dst] < inf, "unreachable trap in topology");

        // Reconstruct dst -> src, then reverse into traversal order.
        std::vector<PathStep> reversed;
        NodeId cur = p.dst;
        while (cur != source) {
            reversed.push_back(
                {PathStep::Kind::Edge, parentEdge[cur]});
            const NodeId prev = parentNode[cur];
            if (prev != source) {
                const NodeKind kind = topo_.node(prev).kind;
                reversed.push_back(
                    {kind == NodeKind::Trap ? PathStep::Kind::ThroughTrap
                                            : PathStep::Kind::Junction,
                     prev});
            }
            cur = prev;
        }
        p.steps.assign(reversed.rbegin(), reversed.rend());
        p.finalizeCounts(topo_);
    }
}

const Path &
PathFinder::path(TrapId a, TrapId b) const
{
    panicUnless(a >= 0 && a < topo_.trapCount() && b >= 0 &&
                b < topo_.trapCount(), "trap index out of range");
    return paths_[static_cast<size_t>(a) * topo_.trapCount() + b];
}

double
PathFinder::cost(TrapId a, TrapId b) const
{
    return path(a, b).cost;
}

} // namespace qccd
