#include "arch/topo_file.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qccd
{

namespace
{

/** One whitespace-delimited token with its 1-based position. */
struct Token
{
    std::string text;
    int line = 0;
    int column = 0;
};

[[noreturn]] void
failAt(const std::string &origin, int line, int column,
       const std::string &msg)
{
    std::ostringstream out;
    out << origin << ":" << line << ":" << column << ": " << msg;
    throw ConfigError(out.str());
}

[[noreturn]] void
failAt(const std::string &origin, const Token &token,
       const std::string &msg)
{
    failAt(origin, token.line, token.column, msg);
}

/** Split one line into tokens, dropping a '#' comment. */
std::vector<Token>
tokenize(const std::string &line, int line_no)
{
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < line.size()) {
        const char c = line[i];
        if (c == '#')
            break;
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            continue;
        }
        const size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
               line[i] != '\r' && line[i] != '#')
            ++i;
        tokens.push_back({line.substr(start, i - start), line_no,
                          static_cast<int>(start) + 1});
    }
    return tokens;
}

int
parsePositiveInt(const std::string &origin, const Token &token,
                 const char *what)
{
    int value = 0;
    const char *first = token.text.data();
    const char *last = first + token.text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || value <= 0)
        failAt(origin, token,
               std::string(what) + " must be a positive integer, got '" +
                   token.text + "'");
    return value;
}

} // namespace

std::string
topoFileStem(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const size_t start = slash == std::string::npos ? 0 : slash + 1;
    size_t end = path.find_last_of('.');
    if (end == std::string::npos || end <= start)
        end = path.size();
    return path.substr(start, end - start);
}

Topology
parseTopo(const std::string &text, const std::string &origin,
          int default_capacity)
{
    Topology topo;
    topo.setName(topoFileStem(origin));
    std::map<std::string, NodeId> nodes;
    bool named = false;

    std::istringstream lines(text);
    std::string line;
    int line_no = 0;
    while (std::getline(lines, line)) {
        ++line_no;
        const std::vector<Token> tokens = tokenize(line, line_no);
        if (tokens.empty())
            continue;
        const Token &directive = tokens[0];
        const auto argCount = [&](size_t min_args, size_t max_args) {
            const size_t args = tokens.size() - 1;
            if (args < min_args)
                failAt(origin, directive,
                       "'" + directive.text + "' needs " +
                           std::to_string(min_args) +
                           (max_args > min_args ? "+" : "") +
                           " argument(s), got " + std::to_string(args));
            if (args > max_args)
                failAt(origin, tokens[max_args + 1],
                       "unexpected extra token '" +
                           tokens[max_args + 1].text + "' after '" +
                           directive.text + "'");
        };
        const auto declareNode = [&](const Token &name_token) {
            if (nodes.count(name_token.text) != 0)
                failAt(origin, name_token,
                       "duplicate node name '" + name_token.text + "'");
        };

        if (directive.text == "name") {
            argCount(1, 1);
            if (named)
                failAt(origin, directive, "duplicate 'name' directive");
            named = true;
            topo.setName(tokens[1].text);
        } else if (directive.text == "trap") {
            argCount(1, 2);
            declareNode(tokens[1]);
            int capacity = default_capacity;
            if (tokens.size() == 3) {
                capacity = parsePositiveInt(origin, tokens[2],
                                            "trap capacity");
                if (capacity < 2)
                    failAt(origin, tokens[2],
                           "trap capacity must be at least 2");
            }
            nodes[tokens[1].text] = topo.addTrap(capacity);
        } else if (directive.text == "junction") {
            argCount(1, 1);
            declareNode(tokens[1]);
            nodes[tokens[1].text] = topo.addJunction();
        } else if (directive.text == "edge") {
            argCount(2, 3);
            NodeId ends[2];
            for (int i = 0; i < 2; ++i) {
                const auto it = nodes.find(tokens[1 + i].text);
                if (it == nodes.end())
                    failAt(origin, tokens[1 + i],
                           "unknown node '" + tokens[1 + i].text +
                               "' (declare traps and junctions before "
                               "their edges)");
                ends[i] = it->second;
            }
            if (ends[0] == ends[1])
                failAt(origin, tokens[2],
                       "an edge cannot connect '" + tokens[1].text +
                           "' to itself");
            int segments = 1;
            if (tokens.size() == 4)
                segments = parsePositiveInt(origin, tokens[3],
                                            "edge segment count");
            topo.connect(ends[0], ends[1], segments);
        } else {
            failAt(origin, directive,
                   "unknown directive '" + directive.text +
                       "' (known: name, trap, junction, edge)");
        }
    }

    // Graph-invariant errors carry the origin so a bad file in a big
    // sweep is directly attributable.
    try {
        topo.validate();
    } catch (const ConfigError &err) {
        throw ConfigError(origin + ": " + err.what());
    }
    return topo;
}

Topology
loadTopoFile(const std::string &path, int default_capacity)
{
    // ifstream happily "opens" a directory on Linux and then reads
    // nothing, which would surface as a misleading "topology has no
    // traps" — reject non-files up front.
    std::error_code ec;
    fatalUnless(std::filesystem::is_regular_file(path, ec) && !ec,
                "cannot read topology file '" + path + "'");
    std::ifstream in(path);
    fatalUnless(in.good(), "cannot read topology file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    fatalUnless(!in.bad(), "error reading topology file '" + path + "'");
    return parseTopo(text.str(), path, default_capacity);
}

} // namespace qccd
