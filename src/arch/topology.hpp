/**
 * @file
 * QCCD device topology: a graph of traps and junctions connected by
 * shuttling segments (paper Section III-B).
 *
 * Nodes are either Trap (holds an ion chain, has a capacity) or Junction
 * (a 3-way "Y" or 4-way "X" crossing of shuttling paths). Edges are runs
 * of one or more straight segments. Linear devices have no junctions:
 * traps connect directly to neighbouring traps, and long shuttles must
 * pass *through* intermediate traps (merge + reorder + split, Fig. 4).
 */

#ifndef QCCD_ARCH_TOPOLOGY_HPP
#define QCCD_ARCH_TOPOLOGY_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace qccd
{

/** Kind of a topology node. */
enum class NodeKind
{
    Trap,
    Junction
};

/** One node of the device graph. */
struct TopoNode
{
    NodeKind kind = NodeKind::Trap;
    int capacity = 0;   ///< max ions (traps only)
    TrapId trapIndex = kInvalidId; ///< dense trap numbering (traps only)
};

/** One edge of the device graph: a run of straight segments. */
struct TopoEdge
{
    NodeId a = kInvalidId;
    NodeId b = kInvalidId;
    int segments = 1; ///< number of 5 us transport segments in the run

    /** The endpoint opposite to @p from. */
    NodeId other(NodeId from) const { return from == a ? b : a; }
};

/** Immutable-after-build device connectivity graph. */
class Topology
{
  public:
    /**
     * Optional device name (e.g. the `name` directive of a `.topo`
     * file); empty for anonymous builder-made devices. @{
     */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    /** @} */
    /**
     * Add a trap node.
     *
     * @param capacity maximum ions the trap can hold (>= 2)
     * @return the new node id
     */
    NodeId addTrap(int capacity);

    /** Add a junction node. @return the new node id */
    NodeId addJunction();

    /**
     * Connect two distinct nodes with an edge of @p segments segments.
     *
     * @return the new edge id
     */
    EdgeId connect(NodeId a, NodeId b, int segments = 1);

    int nodeCount() const { return static_cast<int>(nodes_.size()); }
    int edgeCount() const { return static_cast<int>(edges_.size()); }
    int trapCount() const { return static_cast<int>(trapNodes_.size()); }
    int junctionCount() const;

    const TopoNode &node(NodeId id) const;
    const TopoEdge &edge(EdgeId id) const;

    /** Node id of the dense trap index @p t. */
    NodeId trapNode(TrapId t) const;

    /** Edge ids incident to @p id. */
    const std::vector<EdgeId> &incidentEdges(NodeId id) const;

    /** Degree (incident edge count) of @p id. */
    int degree(NodeId id) const;

    /** True if the graph is connected (ignores isolated build order). */
    bool isConnected() const;

    /**
     * Check the device-graph invariants every layer above relies on:
     * at least one trap, a connected graph, and no dangling junctions
     * (every junction joins at least two edges — a degree-1 junction is
     * a dead end no shuttle can cross).
     *
     * Builders and the `.topo` loader call this before handing a
     * topology to the compiler, so PathFinder/Router only ever see
     * well-formed graphs.
     *
     * @throws ConfigError naming the violated invariant (disconnected
     *         component census, the dangling junction's node id)
     */
    void validate() const;

    /** Sum of trap capacities. */
    int totalCapacity() const;

    /** Human-readable summary, e.g. "6 traps, 0 junctions, 5 edges". */
    std::string summary() const;

  private:
    /** Nodes reachable from node 0 (the connectivity walk). */
    int reachableFromFirst() const;

    std::string name_;
    std::vector<TopoNode> nodes_;
    std::vector<TopoEdge> edges_;
    std::vector<std::vector<EdgeId>> adjacency_;
    std::vector<NodeId> trapNodes_;
};

} // namespace qccd

#endif // QCCD_ARCH_TOPOLOGY_HPP
