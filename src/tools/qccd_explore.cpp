/**
 * @file
 * Command-line driver for the QCCDSim toolflow.
 *
 * Usage:
 *   qccd_explore [--app NAME | --qasm FILE] [--topology SPEC]
 *                [--capacity N] [--gate AM1|AM2|PM|FM]
 *                [--reorder GS|IS] [--buffer N] [--decompose]
 *                [--trace N] [--list]
 *   qccd_explore --sweep FILE [--out FILE] [--format csv|json]
 *                [--shard I/N] [--resume] [--jobs N] [--keep-going]
 *                [--max-errors N] [--point-timeout-ms N]
 *                [--cache FILE] [--cache-verify]
 *   qccd_explore --search FILE [--search-budget N] [--search-seed N]
 *                [--search-report FILE] [--jobs N]
 *                [--point-timeout-ms N] [--cache FILE] [--cache-verify]
 *
 * Exit codes: 0 success, 1 error, 2 usage, 3 sweep completed but at
 * least one point failed (--keep-going; see README "Failure
 * semantics").
 *
 * Examples:
 *   qccd_explore --app qft --topology linear:6 --capacity 22 --gate FM
 *   qccd_explore --qasm mycircuit.qasm --topology grid:2x3 --capacity 20
 *   qccd_explore --sweep examples/sweeps/fig6.sweep
 */

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/qasm/parser.hpp"
#include "circuit/stats.hpp"
#include "common/error.hpp"
#include "compiler/mapping.hpp"
#include "core/export.hpp"
#include "core/recommend.hpp"
#include "core/report.hpp"
#include "core/result_store.hpp"
#include "core/resume.hpp"
#include "core/search.hpp"
#include "core/sweep_engine.hpp"
#include "core/sweep_spec.hpp"
#include "core/toolflow.hpp"
#include "sim/analysis.hpp"
#include "sim/checker.hpp"
#include "sim/isa.hpp"

namespace
{

using namespace qccd;

void
printUsage()
{
    std::cout <<
        "qccd_explore - QCCD trapped-ion design toolflow\n"
        "\n"
        "  --app NAME        benchmark application (see --list)\n"
        "  --qasm FILE       OpenQASM 2.0 circuit file instead of --app\n"
        "  --topology SPEC   device spec: any registered family (see\n"
        "                    --topologies) or topo:FILE (default linear:6)\n"
        "  --topo FILE       load a .topo device file (= --topology\n"
        "                    topo:FILE; see README for the format)\n"
        "  --capacity N      ions per trap (default 22)\n"
        "  --gate IMPL       AM1 | AM2 | PM | FM (default FM)\n"
        "  --reorder METHOD  GS | IS (default GS)\n"
        "  --buffer N        buffer slots per trap (default 2)\n"
        "  --policy P        mapping policy: packed | balanced\n"
        "  --decompose       report compute/communication time split\n"
        "  --trace N         dump the first N scheduled primitives\n"
        "  --analyze         print per-resource utilization report\n"
        "  --emit-isa FILE   write the compiled QCCD executable\n"
        "  --recommend       rank the paper's design space for the app\n"
        "  --jobs N          worker threads for --sweep / --recommend\n"
        "                    (default: QCCD_JOBS env, then all cores)\n"
        "  --list            list available benchmark applications\n"
        "  --topologies      list registered topology families\n"
        "  --build-info      print build provenance (checked contracts)\n"
        "\n"
        "Declarative sweeps (see examples/sweeps/ and README):\n"
        "  --sweep FILE      run a .sweep design-space specification\n"
        "  --out FILE        output path (default <spec name>.csv)\n"
        "  --format F        csv | json (default from --out extension)\n"
        "  --shard I/N       evaluate the I-th of N contiguous slices;\n"
        "                    concatenating the N outputs in order is\n"
        "                    byte-identical to the unsharded run\n"
        "  --resume          append to --out, skipping completed rows\n"
        "  --keep-going      isolate failed points: record each in\n"
        "                    <out>.errors and keep sweeping; exit 3 if\n"
        "                    any point failed (CSV output only)\n"
        "  --max-errors N    stop launching new work after N failed\n"
        "                    points and exit 1 (implies --keep-going)\n"
        "  --point-timeout-ms N\n"
        "                    per-point watchdog deadline; a point that\n"
        "                    exceeds it fails with outcome 'timeout'\n"
        "                    (overrides the spec's point_timeout_ms)\n"
        "  --cache FILE      persistent result store: points already\n"
        "                    in it are answered without re-simulating,\n"
        "                    new results are appended (byte-identical\n"
        "                    output either way; overrides the spec's\n"
        "                    \"cache\" option — see README)\n"
        "  --cache-verify    audit the cache: recompute every hit and\n"
        "                    report divergence (exit 1 if any)\n"
        "\n"
        "Surrogate-guided search (see README \"Design-space search\"):\n"
        "  --search FILE     find the best point of a .sweep space by\n"
        "                    successive halving over a cost-model\n"
        "                    ranking, really simulating only a budget\n"
        "                    of points (default: a quarter of the\n"
        "                    space); prints the winner and writes an\n"
        "                    audit CSV of every real evaluation whose\n"
        "                    rows are byte-identical to --sweep's\n"
        "  --search-budget N real evaluations to spend (overrides the\n"
        "                    spec's \"search\" block)\n"
        "  --search-seed N   calibration-sampling seed (overrides the\n"
        "                    spec; same seed => same winner and rows)\n"
        "  --search-report FILE\n"
        "                    audit CSV path (default <name>.search.csv)\n"
        "                    (--jobs, --cache, --cache-verify and\n"
        "                    --point-timeout-ms apply as in --sweep)\n";
}

/** Everything --sweep mode needs beyond the shared engine knobs. */
struct SweepCliOptions
{
    std::string outFile;
    std::string formatName;
    std::string shardText;
    bool resume = false;
    bool keepGoing = false;
    int maxErrors = 0;       // 0: unlimited
    int pointTimeoutMs = 0;  // 0: no override
    int jobs = 0;
    std::string cachePath;   // empty: spec option, then no cache
    bool cacheVerify = false;
};

int
runSweepMode(const std::string &sweep_file, SweepCliOptions cli)
{
    const SweepSpec spec = parseSweepSpecFile(sweep_file);
    std::string out_file = cli.outFile;

    ExportFormat format = ExportFormat::Csv;
    if (!cli.formatName.empty())
        format = exportFormatFromName(cli.formatName);
    else if (out_file.size() >= 5 &&
             out_file.compare(out_file.size() - 5, 5, ".json") == 0)
        format = ExportFormat::Json;

    SweepShard shard;
    if (!cli.shardText.empty())
        shard = parseShard(cli.shardText);
    if (out_file.empty()) {
        // Sharded runs get distinct default names: with a shared
        // default, shard 1 would truncate shard 0's freshly written
        // output in the same directory.
        std::string stem = spec.name;
        if (shard.count > 1)
            stem += ".shard" + std::to_string(shard.index) + "of" +
                    std::to_string(shard.count);
        out_file =
            stem + (format == ExportFormat::Csv ? ".csv" : ".json");
    }
    fatalUnless(format == ExportFormat::Csv || shard.count == 1,
                "--shard requires CSV output");
    fatalUnless(format == ExportFormat::Csv || !cli.resume,
                "--resume requires CSV output");
    fatalUnless(format == ExportFormat::Csv || !cli.keepGoing,
                "--keep-going requires CSV output (the .errors "
                "sidecar is CSV)");

    const auto [first, last] =
        shardRange(spec.points.size(), shard.index, shard.count);
    std::vector<PlannedPoint> slice(
        spec.points.begin() + static_cast<long>(first),
        spec.points.begin() + static_cast<long>(last));
    if (cli.pointTimeoutMs > 0)
        for (PlannedPoint &point : slice)
            point.options.pointTimeoutMs = cli.pointTimeoutMs;

    // Resolve the result store: --cache wins over the spec's "cache"
    // option; grids declaring different stores for one run is a
    // contradiction we refuse rather than guess about.
    std::string cache_path = cli.cachePath;
    if (cache_path.empty()) {
        for (const PlannedPoint &point : slice) {
            if (point.options.cachePath.empty())
                continue;
            fatalUnless(cache_path.empty() ||
                            cache_path == point.options.cachePath,
                        "sweep spec declares conflicting cache paths "
                        "('" + cache_path + "' vs '" +
                            point.options.cachePath +
                            "'); use one, or override with --cache");
            cache_path = point.options.cachePath;
        }
    }
    fatalUnless(!cli.cacheVerify || !cache_path.empty(),
                "--cache-verify requires a result store (--cache FILE "
                "or the spec's \"cache\" option)");

    // Refusals (wrong magic, version skew, live lock owner) are
    // ConfigErrors and abort the run; anything else — an I/O failure
    // or an injected cache.open fault — degrades to a cold run, which
    // by contract produces the same bytes.
    std::unique_ptr<ResultStore> store;
    if (!cache_path.empty()) {
        try {
            store = std::make_unique<ResultStore>(cache_path);
        } catch (const ConfigError &) {
            throw;
        } catch (const std::exception &err) {
            std::cerr << "warning: result cache disabled (open "
                         "failed: "
                      << err.what() << "); continuing without it\n";
        }
    }

    // Shard 0 owns the header so that concatenating shard files in
    // index order reproduces the unsharded export byte-for-byte.
    const bool with_header = shard.index == 0;
    const std::string errors_path = out_file + ".errors";
    ResumeState state;
    if (cli.resume)
        state = analyzeResume(out_file, with_header, cli.keepGoing,
                              slice, first);
    else
        std::remove(errors_path.c_str()); // stale sidecar of an old run
    const size_t done = state.done;

    std::cout << "sweep " << spec.name << ": " << spec.points.size()
              << " points";
    if (shard.count > 1)
        std::cout << ", shard " << shard.index << "/" << shard.count
                  << " covers [" << first << ", " << last << ")";
    if (done > 0)
        std::cout << ", resuming past " << done << " completed points";
    std::cout << ", " << SweepEngine::resolveJobs(cli.jobs)
              << " workers\n";

    size_t failures_total = state.failedIndices.size();
    if (done == slice.size()) {
        std::cout << out_file << " is already complete ("
                  << state.csvRows << " rows";
        if (failures_total > 0)
            std::cout << ", " << failures_total << " failed";
        std::cout << ")\n";
        return failures_total > 0 ? 3 : 0;
    }

    // Append whenever the healed file holds anything worth keeping —
    // including a bare header with zero data rows (a run killed right
    // after the header write); truncating then would drop the header
    // while the writer, seeing csvEmpty == false, skips rewriting it.
    const bool append = done > 0 || !state.csvEmpty;
    std::ofstream out(out_file,
                      append ? std::ios::app : std::ios::trunc);
    fatalUnless(out.good(), "cannot write file '" + out_file + "'");
    SweepRowWriter writer(out, format,
                          with_header && state.csvEmpty,
                          state.csvRows);

    // The sidecar is created lazily on the first failure, so a
    // fault-free --keep-going run leaves no .errors file at all.
    std::ofstream errors_out;
    const bool sidecar_exists = !state.failedIndices.empty();
    auto recordFailure = [&](size_t absolute, const SweepPoint &point) {
        if (!errors_out.is_open()) {
            errors_out.open(errors_path, sidecar_exists
                                             ? std::ios::app
                                             : std::ios::trunc);
            fatalUnless(errors_out.good(),
                        "cannot write file '" + errors_path + "'");
            if (!sidecar_exists)
                errors_out << sweepErrorsHeader() << '\n';
        }
        // One flushed line per failure, same crash-safety contract as
        // the data CSV: a kill tears at most the final line.
        errors_out << sweepErrorRow(absolute, point) << '\n';
        errors_out.flush();
        fatalUnless(errors_out.good(),
                    "error writing '" + errors_path + "'");
        ++failures_total;
    };

    SweepEngine engine(cli.jobs);
    SweepSpecRunner runner(engine);
    SweepRunPolicy policy;
    policy.keepGoing = cli.keepGoing;
    policy.maxErrors = static_cast<size_t>(cli.maxErrors);
    policy.cache = store.get();
    policy.cacheVerify = cli.cacheVerify;
    size_t next_index = first + done;
    const SweepRunStats stats =
        runner.run(slice, done,
                   [&](const SweepPoint &point) {
                       if (point.ok())
                           writer.write(point);
                       else
                           recordFailure(next_index, point);
                       ++next_index;
                   },
                   policy);
    writer.finish();

    // Greppable staged-evaluation provenance ("^staged:"): how many
    // points paid a full schedule vs. rode a model-log replay.
    std::cout << "staged: " << stats.fullSchedules << " full, "
              << stats.replays << " replayed\n";

    if (store != nullptr) {
        // One greppable provenance line per cached run ("^cache:"):
        // check_golden.sh uses it to refuse blessing goldens from a
        // warm run, and the CI cache job asserts hit/miss counts.
        const ResultStoreStats &cs = store->stats();
        std::cout << "cache: " << store->path() << " hits=" << cs.hits
                  << " misses=" << cs.misses
                  << " inserts=" << cs.inserts
                  << " loaded=" << cs.loaded
                  << " quarantined=" << cs.quarantined
                  << " healed=" << (cs.healedTail ? 1 : 0);
        if (cli.cacheVerify)
            std::cout << " divergent=" << stats.cacheDivergent;
        std::cout << "\n";
    }
    if (stats.cacheDivergent > 0) {
        std::cerr << "error: result cache '" << cache_path << "' has "
                  << stats.cacheDivergent
                  << " divergent record(s); the emitted rows are the "
                     "recomputed ones — rebuild the cache file\n";
        return 1;
    }

    if (stats.aborted) {
        std::cerr << "error: stopping after " << stats.failed
                  << " failed point(s) (--max-errors "
                  << cli.maxErrors << "); "
                  << (slice.size() - done - stats.evaluated)
                  << " point(s) not evaluated\n";
        return 1;
    }

    std::cout << "wrote " << (stats.evaluated - stats.failed)
              << " rows to " << out_file;
    if (failures_total > 0)
        std::cout << " (" << failures_total << " failed, see "
                  << errors_path << ")";
    std::cout << "\n";
    return failures_total > 0 ? 3 : 0;
}

/** Everything --search mode needs beyond the shared engine knobs. */
struct SearchCliOptions
{
    std::string reportFile;
    size_t budget = 0;      // 0: spec "search" block, then space/4
    bool haveSeed = false;
    uint64_t seed = 0;
    int pointTimeoutMs = 0; // 0: no override
    int jobs = 0;
    std::string cachePath;  // empty: spec option, then no cache
    bool cacheVerify = false;
};

/** The plan's lazy space with CLI point overrides applied on decode. */
class CliSearchSpace : public SearchSpace
{
  public:
    CliSearchSpace(const SweepPlan &plan, int point_timeout_ms)
        : plan_(plan), pointTimeoutMs_(point_timeout_ms)
    {
    }
    size_t size() const override { return plan_.size(); }
    PlannedPoint point(size_t index) const override
    {
        PlannedPoint point = plan_.point(index);
        if (pointTimeoutMs_ > 0)
            point.options.pointTimeoutMs = pointTimeoutMs_;
        return point;
    }

  private:
    const SweepPlan &plan_;
    int pointTimeoutMs_;
};

int
runSearchMode(const std::string &search_file, SearchCliOptions cli)
{
    const SweepPlan plan = parseSweepPlanFile(search_file);

    // Resolve the result store exactly like --sweep: the CLI flag wins
    // over the spec's "cache" option (a grid-level option, so the grid
    // bases carry it — no need to expand the space to find it).
    std::string cache_path = cli.cachePath;
    if (cache_path.empty()) {
        for (const SweepGrid &grid : plan.grids) {
            const std::string &declared = grid.base().options.cachePath;
            if (declared.empty())
                continue;
            fatalUnless(cache_path.empty() || cache_path == declared,
                        "sweep spec declares conflicting cache paths "
                        "('" + cache_path + "' vs '" + declared +
                            "'); use one, or override with --cache");
            cache_path = declared;
        }
    }
    fatalUnless(!cli.cacheVerify || !cache_path.empty(),
                "--cache-verify requires a result store (--cache FILE "
                "or the spec's \"cache\" option)");
    std::unique_ptr<ResultStore> store;
    if (!cache_path.empty()) {
        try {
            store = std::make_unique<ResultStore>(cache_path);
        } catch (const ConfigError &) {
            throw;
        } catch (const std::exception &err) {
            std::cerr << "warning: result cache disabled (open "
                         "failed: "
                      << err.what() << "); continuing without it\n";
        }
    }

    SearchOptions options;
    options.budget = cli.budget != 0 ? cli.budget : plan.search.budget;
    options.seed = cli.haveSeed ? cli.seed : plan.search.seed;
    options.eta = plan.search.eta;
    options.policy.cache = store.get();
    options.policy.cacheVerify = cli.cacheVerify;

    SweepEngine engine(cli.jobs);
    SearchEngine search(engine);
    const CliSearchSpace space(plan, cli.pointTimeoutMs);

    // Open the audit CSV before spending any budget: an unwritable
    // report path must fail fast, not after the search ran.
    const std::string report_file = cli.reportFile.empty()
                                        ? plan.name + ".search.csv"
                                        : cli.reportFile;
    std::ofstream report(report_file, std::ios::trunc);
    fatalUnless(report.good(),
                "cannot write file '" + report_file + "'");

    std::cout << "search " << plan.name << ": " << space.size()
              << " points, "
              << SweepEngine::resolveJobs(cli.jobs) << " workers\n";

    const SearchOutcome outcome = search.run(space, options);

    // The audit CSV: header + one --sweep-identical row per real
    // evaluation, ascending by spec index.
    SweepRowWriter writer(report, ExportFormat::Csv);
    for (const SearchEvaluation &ev : outcome.evaluations)
        if (ev.point.ok())
            writer.write(ev.point);
    writer.finish();

    const SearchStats &stats = outcome.stats;
    std::cout << "staged: " << stats.run.fullSchedules << " full, "
              << stats.run.replays << " replayed\n";
    if (store != nullptr) {
        const ResultStoreStats &cs = store->stats();
        std::cout << "cache: " << store->path() << " hits=" << cs.hits
                  << " misses=" << cs.misses
                  << " inserts=" << cs.inserts
                  << " loaded=" << cs.loaded
                  << " quarantined=" << cs.quarantined
                  << " healed=" << (cs.healedTail ? 1 : 0);
        if (cli.cacheVerify)
            std::cout << " divergent=" << stats.run.cacheDivergent;
        std::cout << "\n";
    }

    // Greppable provenance ("^search:"): CI asserts evaluated stays
    // within the budget fraction of the declared space.
    std::cout << "search: space=" << stats.space
              << " budget=" << stats.budget
              << " evaluated=" << stats.evaluated
              << " calibration=" << stats.calibration
              << " rungs=" << stats.rungs << "\n";
    fatalUnless(outcome.haveWinner, "search produced no result");
    std::cout << "winner: " << sweepCsvRow(outcome.winner) << "\n";
    std::cout << "wrote " << writer.rowsWritten() << " rows to "
              << report_file << "\n";

    if (stats.run.cacheDivergent > 0) {
        std::cerr << "error: result cache '" << cache_path << "' has "
                  << stats.run.cacheDivergent
                  << " divergent record(s); the emitted rows are the "
                     "recomputed ones — rebuild the cache file\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qccd;

    std::string app = "qft";
    std::string qasm_file;
    DesignPoint design;
    RunOptions options;
    int trace_ops = 0;
    bool analyze = false;
    bool recommend = false;
    int jobs = 0; // 0: resolve via QCCD_JOBS / hardware concurrency
    std::string isa_file;
    std::string sweep_file;
    SweepCliOptions sweep_cli;
    std::string search_file;
    SearchCliOptions search_cli;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                fatalUnless(i + 1 < argc, "missing value for " + arg);
                return argv[++i];
            };
            auto intValue = [&]() -> int {
                const std::string text = value();
                try {
                    size_t used = 0;
                    const int parsed = std::stoi(text, &used);
                    fatalUnless(used == text.size(),
                                "expected an integer for " + arg +
                                    ", got '" + text + "'");
                    return parsed;
                } catch (const QccdError &) {
                    throw;
                } catch (const std::exception &) {
                    throw ConfigError("expected an integer for " + arg +
                                      ", got '" + text + "'");
                }
            };
            if (arg == "--help" || arg == "-h") {
                printUsage();
                return 0;
            } else if (arg == "--build-info") {
                // Machine-readable build provenance. check_golden.sh
                // refuses to bless goldens from a checked build: the
                // contract layer must be provably compiled out of any
                // binary whose output is compared byte-for-byte.
                // The cache schema line lets scripts prove which
                // result-store format a binary speaks before trusting
                // its warm runs.
                std::cout << "checked-contracts="
                          << (checkedBuildEnabled() ? "on" : "off")
                          << "\n"
                          << "cache-schema="
                          << ResultStore::kSchemaVersion << "\n";
                return 0;
            } else if (arg == "--list") {
                for (const BenchmarkSpec &spec : benchmarkList())
                    std::cout << spec.name << " - " << spec.description
                              << "\n";
                return 0;
            } else if (arg == "--topologies") {
                for (const TopologyFamily &family : topologyFamilies()) {
                    std::cout << family.grammar;
                    if (family.shortForm != 0)
                        std::cout << " (short: " << family.shortForm
                                  << "...)";
                    std::cout << " - " << family.description << "\n";
                }
                std::cout << "topo:FILE - custom .topo device graph "
                             "(see README)\n";
                return 0;
            } else if (arg == "--app") {
                app = value();
            } else if (arg == "--qasm") {
                qasm_file = value();
            } else if (arg == "--topology") {
                design.topologySpec = value();
            } else if (arg == "--topo") {
                design.topologySpec = "topo:" + value();
            } else if (arg == "--capacity") {
                design.trapCapacity = intValue();
            } else if (arg == "--gate") {
                design.hw.gateImpl = gateImplFromName(value());
            } else if (arg == "--reorder") {
                design.hw.reorder = reorderMethodFromName(value());
            } else if (arg == "--buffer") {
                design.hw.bufferSlots = intValue();
            } else if (arg == "--policy") {
                const std::string p = value();
                if (p == "packed") {
                    options.mappingPolicy = MappingPolicy::Packed;
                } else if (p == "balanced") {
                    options.mappingPolicy = MappingPolicy::Balanced;
                } else {
                    throw ConfigError("unknown mapping policy '" + p +
                                      "' (expected packed or balanced)");
                }
            } else if (arg == "--analyze") {
                analyze = true;
            } else if (arg == "--recommend") {
                recommend = true;
            } else if (arg == "--jobs") {
                jobs = intValue();
                fatalUnless(jobs >= 1,
                            "--jobs must be at least 1");
            } else if (arg == "--emit-isa") {
                isa_file = value();
            } else if (arg == "--sweep") {
                sweep_file = value();
            } else if (arg == "--search") {
                search_file = value();
            } else if (arg == "--search-budget") {
                const int budget = intValue();
                fatalUnless(budget >= 1,
                            "--search-budget must be at least 1");
                search_cli.budget = static_cast<size_t>(budget);
            } else if (arg == "--search-seed") {
                const std::string text = value();
                uint64_t seed = 0;
                const auto [p, ec] = std::from_chars(
                    text.data(), text.data() + text.size(), seed);
                fatalUnless(ec == std::errc() &&
                                p == text.data() + text.size(),
                            "expected a non-negative integer for "
                            "--search-seed, got '" + text + "'");
                search_cli.seed = seed;
                search_cli.haveSeed = true;
            } else if (arg == "--search-report") {
                search_cli.reportFile = value();
                fatalUnless(!search_cli.reportFile.empty(),
                            "--search-report needs a file path");
            } else if (arg == "--out") {
                sweep_cli.outFile = value();
            } else if (arg == "--format") {
                sweep_cli.formatName = value();
            } else if (arg == "--shard") {
                sweep_cli.shardText = value();
            } else if (arg == "--resume") {
                sweep_cli.resume = true;
            } else if (arg == "--keep-going") {
                sweep_cli.keepGoing = true;
            } else if (arg == "--max-errors") {
                sweep_cli.maxErrors = intValue();
                fatalUnless(sweep_cli.maxErrors >= 1,
                            "--max-errors must be at least 1");
                sweep_cli.keepGoing = true;
            } else if (arg == "--point-timeout-ms") {
                sweep_cli.pointTimeoutMs = intValue();
                fatalUnless(sweep_cli.pointTimeoutMs >= 1,
                            "--point-timeout-ms must be at least 1");
            } else if (arg == "--cache") {
                sweep_cli.cachePath = value();
                fatalUnless(!sweep_cli.cachePath.empty(),
                            "--cache needs a file path");
            } else if (arg == "--cache-verify") {
                sweep_cli.cacheVerify = true;
            } else if (arg == "--decompose") {
                options.decomposeRuntime = true;
            } else if (arg == "--trace") {
                trace_ops = intValue();
                fatalUnless(trace_ops >= 1,
                            "--trace must be at least 1");
            } else {
                std::cerr << "unknown option " << arg << "\n";
                printUsage();
                return 2;
            }
        }

        fatalUnless(sweep_file.empty() || search_file.empty(),
                    "use either --sweep or --search, not both");
        fatalUnless(search_file.empty() || !recommend,
                    "use either --search or --recommend, not both");
        fatalUnless(!search_file.empty() ||
                        (search_cli.budget == 0 &&
                         !search_cli.haveSeed &&
                         search_cli.reportFile.empty()),
                    "--search-budget/--search-seed/--search-report "
                    "require --search");
        if (!sweep_file.empty()) {
            sweep_cli.jobs = jobs;
            return runSweepMode(sweep_file, sweep_cli);
        }
        if (!search_file.empty()) {
            // Exhaustive-output plumbing makes no sense under a
            // budgeted search; the audit CSV replaces --out.
            fatalUnless(sweep_cli.outFile.empty() &&
                            sweep_cli.formatName.empty() &&
                            sweep_cli.shardText.empty() &&
                            !sweep_cli.resume && !sweep_cli.keepGoing &&
                            sweep_cli.maxErrors == 0,
                        "--out/--format/--shard/--resume/--keep-going/"
                        "--max-errors require --sweep");
            search_cli.jobs = jobs;
            search_cli.pointTimeoutMs = sweep_cli.pointTimeoutMs;
            search_cli.cachePath = sweep_cli.cachePath;
            search_cli.cacheVerify = sweep_cli.cacheVerify;
            return runSearchMode(search_file, search_cli);
        }
        fatalUnless(sweep_cli.outFile.empty() &&
                        sweep_cli.formatName.empty() &&
                        sweep_cli.shardText.empty() &&
                        !sweep_cli.resume && !sweep_cli.keepGoing &&
                        sweep_cli.maxErrors == 0 &&
                        sweep_cli.cachePath.empty() &&
                        !sweep_cli.cacheVerify,
                    "--out/--format/--shard/--resume/--keep-going/"
                    "--max-errors/--cache/--cache-verify require "
                    "--sweep");

        // The watchdog also guards single-point runs: a hung schedule
        // becomes a clean TimeoutError instead of a stuck process.
        if (sweep_cli.pointTimeoutMs > 0)
            options.pointTimeoutMs = sweep_cli.pointTimeoutMs;

        const Circuit circuit = qasm_file.empty()
                                    ? makeBenchmark(app)
                                    : qasm::parseFile(qasm_file);
        const std::string name =
            qasm_file.empty() ? app : circuit.name();

        const CircuitStats stats = computeStats(circuit);
        std::cout << "circuit: " << circuit.name() << " ("
                  << stats.numQubits << " qubits, "
                  << stats.twoQubitGates << " 2q gates, pattern: "
                  << stats.patternLabel() << ")\n";

        if (recommend) {
            // Surrogate-guided: the paper's candidate space is ranked
            // by the cost model and only the predicted frontier is
            // really simulated (a quarter of the fitting candidates),
            // through the same SearchEngine as --search.
            SweepEngine engine(jobs);
            const auto native = SweepEngine::lower(circuit);
            const CandidateSpace space;
            std::vector<PlannedPoint> candidates;
            candidates.reserve(space.size());
            for (const std::string &topo : space.topologies) {
                for (int cap : space.capacities) {
                    for (GateImpl gate : space.gates) {
                        for (ReorderMethod reorder : space.reorders) {
                            DesignPoint dp;
                            dp.topologySpec = topo;
                            dp.trapCapacity = cap;
                            dp.hw.gateImpl = gate;
                            dp.hw.reorder = reorder;
                            if (engine.context(dp)
                                    ->topology()
                                    .totalCapacity() <
                                circuit.numQubits())
                                continue; // application does not fit
                            PlannedPoint point;
                            point.application = name;
                            point.native = native;
                            point.design = dp;
                            candidates.push_back(std::move(point));
                        }
                    }
                }
            }
            fatalUnless(!candidates.empty(),
                        "no candidate design fits the application");
            std::cout << "searching " << candidates.size()
                      << " candidate designs on "
                      << SweepEngine::resolveJobs(jobs)
                      << " workers...\n";
            SearchEngine search(engine);
            const SearchOutcome outcome =
                search.run(PointsSearchSpace(candidates), {});
            std::vector<RankedDesign> ranking;
            ranking.reserve(outcome.evaluations.size());
            for (const SearchEvaluation &ev : outcome.evaluations)
                if (ev.point.ok())
                    ranking.emplace_back(ev.point.design,
                                         ev.point.result);
            std::stable_sort(
                ranking.begin(), ranking.end(),
                [](const RankedDesign &a, const RankedDesign &b) {
                    if (a.score() != b.score())
                        return a.score() > b.score();
                    return a.result.totalTime() <
                           b.result.totalTime();
                });
            const SearchStats &stats = outcome.stats;
            std::cout << "search: space=" << stats.space
                      << " budget=" << stats.budget
                      << " evaluated=" << stats.evaluated
                      << " calibration=" << stats.calibration
                      << " rungs=" << stats.rungs << "\n";
            std::cout << rankingTable(ranking, 10);
            std::cout << "recommended: "
                      << outcome.winner.design.label() << "\n";
            return 0;
        }

        if (analyze || !isa_file.empty()) {
            // Thread the run options through: --policy must shape the
            // analyzed schedule and --point-timeout-ms must guard it,
            // exactly as they do on the metrics path.
            const ScheduleResult detail =
                runToolflowDetailed(circuit, design, options);
            std::cout << summarizeRun(name, design,
                                      RunResult{detail.metrics, 0})
                      << "\n";
            if (analyze) {
                std::cout << "\n"
                          << analyzeTrace(detail.trace,
                                          design.buildTopology())
                                 .report();
            }
            if (!isa_file.empty()) {
                writeIsaFile(detail.trace, isa_file);
                std::cout << "wrote " << detail.trace.size()
                          << " primitives to " << isa_file << "\n";
            }
            return 0;
        }

        if (trace_ops > 0) {
            const ScheduleResult detail =
                runToolflowDetailed(circuit, design, options);
            std::cout << summarizeRun(name, design,
                                      RunResult{detail.metrics, 0})
                      << "\n\n"
                      << dumpTrace(detail.trace,
                                   static_cast<size_t>(trace_ops));
            const CheckReport check =
                checkTrace(detail.trace, design.buildTopology());
            std::cout << "trace invariants: "
                      << (check.ok ? "ok" : "VIOLATED") << "\n";
            for (const std::string &v : check.violations)
                std::cout << "  " << v << "\n";
            return check.ok ? 0 : 1;
        }

        const RunResult result = runToolflow(circuit, design, options);
        std::cout << summarizeRun(name, design, result) << "\n";
        if (options.decomposeRuntime) {
            std::cout << "  compute time:       "
                      << result.computeOnlyTime / kSecondUs << " s\n"
                      << "  communication time: "
                      << result.communicationTime() / kSecondUs << " s\n";
        }
        return 0;
    } catch (const QccdError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
