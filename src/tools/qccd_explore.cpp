/**
 * @file
 * Command-line driver for the QCCDSim toolflow.
 *
 * Usage:
 *   qccd_explore [--app NAME | --qasm FILE] [--topology SPEC]
 *                [--capacity N] [--gate AM1|AM2|PM|FM]
 *                [--reorder GS|IS] [--buffer N] [--decompose]
 *                [--trace N] [--list]
 *
 * Examples:
 *   qccd_explore --app qft --topology linear:6 --capacity 22 --gate FM
 *   qccd_explore --qasm mycircuit.qasm --topology grid:2x3 --capacity 20
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "benchgen/benchgen.hpp"
#include "circuit/qasm/parser.hpp"
#include "circuit/stats.hpp"
#include "common/error.hpp"
#include "compiler/mapping.hpp"
#include "core/recommend.hpp"
#include "core/report.hpp"
#include "core/sweep_engine.hpp"
#include "core/toolflow.hpp"
#include "sim/analysis.hpp"
#include "sim/checker.hpp"
#include "sim/isa.hpp"

namespace
{

void
printUsage()
{
    std::cout <<
        "qccd_explore - QCCD trapped-ion design toolflow\n"
        "\n"
        "  --app NAME        benchmark application (see --list)\n"
        "  --qasm FILE       OpenQASM 2.0 circuit file instead of --app\n"
        "  --topology SPEC   linear:N or grid:RxC (default linear:6)\n"
        "  --capacity N      ions per trap (default 22)\n"
        "  --gate IMPL       AM1 | AM2 | PM | FM (default FM)\n"
        "  --reorder METHOD  GS | IS (default GS)\n"
        "  --buffer N        buffer slots per trap (default 2)\n"
        "  --policy P        mapping policy: packed | balanced\n"
        "  --decompose       report compute/communication time split\n"
        "  --trace N         dump the first N scheduled primitives\n"
        "  --analyze         print per-resource utilization report\n"
        "  --emit-isa FILE   write the compiled QCCD executable\n"
        "  --recommend       rank the paper's design space for the app\n"
        "  --jobs N          worker threads for --recommend sweeps\n"
        "                    (default: QCCD_JOBS env, then all cores)\n"
        "  --list            list available benchmark applications\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qccd;

    std::string app = "qft";
    std::string qasm_file;
    DesignPoint design;
    RunOptions options;
    int trace_ops = 0;
    bool analyze = false;
    bool recommend = false;
    int jobs = 0; // 0: resolve via QCCD_JOBS / hardware concurrency
    std::string isa_file;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                fatalUnless(i + 1 < argc, "missing value for " + arg);
                return argv[++i];
            };
            auto intValue = [&]() -> int {
                const std::string text = value();
                try {
                    size_t used = 0;
                    const int parsed = std::stoi(text, &used);
                    fatalUnless(used == text.size(),
                                "expected an integer for " + arg +
                                    ", got '" + text + "'");
                    return parsed;
                } catch (const QccdError &) {
                    throw;
                } catch (const std::exception &) {
                    throw ConfigError("expected an integer for " + arg +
                                      ", got '" + text + "'");
                }
            };
            if (arg == "--help" || arg == "-h") {
                printUsage();
                return 0;
            } else if (arg == "--list") {
                for (const BenchmarkSpec &spec : benchmarkList())
                    std::cout << spec.name << " - " << spec.description
                              << "\n";
                return 0;
            } else if (arg == "--app") {
                app = value();
            } else if (arg == "--qasm") {
                qasm_file = value();
            } else if (arg == "--topology") {
                design.topologySpec = value();
            } else if (arg == "--capacity") {
                design.trapCapacity = intValue();
            } else if (arg == "--gate") {
                design.hw.gateImpl = gateImplFromName(value());
            } else if (arg == "--reorder") {
                design.hw.reorder = reorderMethodFromName(value());
            } else if (arg == "--buffer") {
                design.hw.bufferSlots = intValue();
            } else if (arg == "--policy") {
                const std::string p = value();
                if (p == "packed") {
                    options.mappingPolicy = MappingPolicy::Packed;
                } else if (p == "balanced") {
                    options.mappingPolicy = MappingPolicy::Balanced;
                } else {
                    throw ConfigError("unknown mapping policy '" + p +
                                      "' (expected packed or balanced)");
                }
            } else if (arg == "--analyze") {
                analyze = true;
            } else if (arg == "--recommend") {
                recommend = true;
            } else if (arg == "--jobs") {
                jobs = intValue();
            } else if (arg == "--emit-isa") {
                isa_file = value();
            } else if (arg == "--decompose") {
                options.decomposeRuntime = true;
            } else if (arg == "--trace") {
                trace_ops = intValue();
            } else {
                std::cerr << "unknown option " << arg << "\n";
                printUsage();
                return 2;
            }
        }

        const Circuit circuit = qasm_file.empty()
                                    ? makeBenchmark(app)
                                    : qasm::parseFile(qasm_file);
        const std::string name =
            qasm_file.empty() ? app : circuit.name();

        const CircuitStats stats = computeStats(circuit);
        std::cout << "circuit: " << circuit.name() << " ("
                  << stats.numQubits << " qubits, "
                  << stats.twoQubitGates << " 2q gates, pattern: "
                  << stats.patternLabel() << ")\n";

        if (recommend) {
            const CandidateSpace space;
            std::cout << "evaluating " << space.size()
                      << " candidate designs on "
                      << SweepEngine::resolveJobs(jobs) << " workers...\n";
            const auto ranking = rankDesigns(circuit, space, jobs);
            std::cout << rankingTable(ranking, 10);
            std::cout << "recommended: "
                      << ranking.front().design.label() << "\n";
            return 0;
        }

        if (analyze || !isa_file.empty()) {
            const ScheduleResult detail =
                runToolflowDetailed(circuit, design);
            std::cout << summarizeRun(name, design,
                                      RunResult{detail.metrics, 0})
                      << "\n";
            if (analyze) {
                std::cout << "\n"
                          << analyzeTrace(detail.trace,
                                          design.buildTopology())
                                 .report();
            }
            if (!isa_file.empty()) {
                writeIsaFile(detail.trace, isa_file);
                std::cout << "wrote " << detail.trace.size()
                          << " primitives to " << isa_file << "\n";
            }
            return 0;
        }

        if (trace_ops > 0) {
            const ScheduleResult detail =
                runToolflowDetailed(circuit, design);
            std::cout << summarizeRun(name, design,
                                      RunResult{detail.metrics, 0})
                      << "\n\n"
                      << dumpTrace(detail.trace,
                                   static_cast<size_t>(trace_ops));
            const CheckReport check =
                checkTrace(detail.trace, design.buildTopology());
            std::cout << "trace invariants: "
                      << (check.ok ? "ok" : "VIOLATED") << "\n";
            for (const std::string &v : check.violations)
                std::cout << "  " << v << "\n";
            return check.ok ? 0 : 1;
        }

        const RunResult result = runToolflow(circuit, design, options);
        std::cout << summarizeRun(name, design, result) << "\n";
        if (options.decomposeRuntime) {
            std::cout << "  compute time:       "
                      << result.computeOnlyTime / kSecondUs << " s\n"
                      << "  communication time: "
                      << result.communicationTime() / kSecondUs << " s\n";
        }
        return 0;
    } catch (const QccdError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
