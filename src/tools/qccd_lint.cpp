/**
 * @file
 * `qccd_lint` — static analyzer for the explorer's file artifacts.
 *
 * Usage:
 *     qccd_lint [--quiet] PATH...
 *
 * Each PATH is a `.sweep` spec, `.topo` device file, golden `.csv`,
 * `.qcache` result store, or a directory walked recursively for all
 * four. Diagnostics print to
 * stdout as "origin:line:col: severity: message [code]". When the
 * argument set covers both specs and goldens (e.g. `qccd_lint
 * examples/ golden/`), cross-artifact coverage and row-count checks
 * run too. No simulation happens; linting the full committed tree
 * takes milliseconds.
 *
 * Exit status: 0 clean (warnings allowed), 1 errors found, 2 usage.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/lint.hpp"

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage: qccd_lint [--quiet] PATH...\n"
        << "  PATH  a .sweep spec, .topo device file, golden .csv,\n"
        << "        .qcache result store, or a directory searched\n"
        << "        recursively for all four\n"
        << "  --quiet  print only the summary line\n"
        << "exit: 0 clean (warnings allowed), 1 errors, 2 usage\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "error: unknown option '" << arg
                      << "' (try --help)\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << "error: no artifacts to lint (try --help)\n";
        return 2;
    }

    try {
        const qccd::LintReport report = qccd::lintArtifacts(paths);
        if (!quiet)
            std::cout << report.toString();
        std::cout << report.filesChecked << " artifact(s): "
                  << report.errorCount() << " error(s), "
                  << report.warningCount() << " warning(s)\n";
        return report.clean() ? 0 : 1;
    } catch (const qccd::QccdError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
