#include "compiler/mapping.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qccd
{

std::string
mappingPolicyName(MappingPolicy policy)
{
    switch (policy) {
      case MappingPolicy::Packed: return "packed";
      case MappingPolicy::Balanced: return "balanced";
    }
    throw InternalError("unknown MappingPolicy");
}

MappingPolicy
mappingPolicyFromName(const std::string &name)
{
    if (name == "packed") return MappingPolicy::Packed;
    if (name == "balanced") return MappingPolicy::Balanced;
    throw ConfigError("unknown mapping policy '" + name +
                      "' (expected packed or balanced)");
}

std::vector<QubitId>
firstUseOrder(const Circuit &circuit)
{
    const int n = circuit.numQubits();
    const int unused = -1;
    std::vector<int> first(n, unused);
    int stamp = 0;
    for (const Gate &g : circuit.gates()) {
        const int arity = opArity(g.op);
        if (arity >= 1 && first[g.q0] == unused)
            first[g.q0] = stamp++;
        if (arity == 2 && first[g.q1] == unused)
            first[g.q1] = stamp++;
    }

    std::vector<QubitId> order(n);
    for (QubitId q = 0; q < n; ++q)
        order[q] = q;
    std::stable_sort(order.begin(), order.end(),
                     [&](QubitId a, QubitId b) {
                         const int fa = first[a] == unused ? stamp + a
                                                           : first[a];
                         const int fb = first[b] == unused ? stamp + b
                                                           : first[b];
                         return fa < fb;
                     });
    return order;
}

InitialMapping
mapQubits(const Circuit &circuit, const Topology &topo, int buffer_slots,
          MappingPolicy policy)
{
    fatalUnless(buffer_slots >= 0, "buffer slots must be non-negative");
    const int n = circuit.numQubits();
    const int traps = topo.trapCount();
    fatalUnless(n <= topo.totalCapacity(),
                "application does not fit on the device: " +
                std::to_string(n) + " qubits > capacity " +
                std::to_string(topo.totalCapacity()));

    // Shrink the buffer until the program fits with it applied uniformly.
    int buffer = buffer_slots;
    auto usable = [&](int buf) {
        int total = 0;
        for (TrapId t = 0; t < traps; ++t) {
            const int cap = topo.node(topo.trapNode(t)).capacity;
            total += std::max(cap - buf, 0);
        }
        return total;
    };
    while (buffer > 0 && usable(buffer) < n)
        --buffer;

    InitialMapping mapping;
    mapping.effectiveBuffer = buffer;
    mapping.trapOf.assign(n, kInvalidId);
    mapping.chainOrder.assign(traps, {});

    const std::vector<QubitId> order = firstUseOrder(circuit);

    // Per-trap fill targets: either capacity-minus-buffer (packed) or
    // an even division of the program across all traps (balanced, still
    // respecting per-trap capacity for heterogeneous devices).
    std::vector<int> fill(traps, 0);
    if (policy == MappingPolicy::Packed) {
        for (TrapId t = 0; t < traps; ++t) {
            const int cap = topo.node(topo.trapNode(t)).capacity;
            fill[t] = std::max(cap - buffer, 0);
        }
    } else {
        int remaining = n;
        for (TrapId t = 0; t < traps; ++t) {
            const int cap = topo.node(topo.trapNode(t)).capacity;
            const int share = (remaining + (traps - t) - 1) / (traps - t);
            fill[t] = std::min(share, std::max(cap - buffer, 0));
            remaining -= fill[t];
        }
        // Capacity clamping can leave a remainder; spill it into traps
        // with spare buffered room.
        for (TrapId t = 0; t < traps && remaining > 0; ++t) {
            const int cap = topo.node(topo.trapNode(t)).capacity;
            const int extra =
                std::min(remaining, std::max(cap - buffer, 0) - fill[t]);
            fill[t] += extra;
            remaining -= extra;
        }
        panicUnless(remaining == 0,
                    "balanced mapping overflow despite capacity check");
    }

    TrapId t = 0;
    for (QubitId q : order) {
        while (t < traps &&
               static_cast<int>(mapping.chainOrder[t].size()) >= fill[t])
            ++t;
        panicUnless(t < traps, "mapping overflow despite capacity check");
        mapping.chainOrder[t].push_back(q);
        mapping.trapOf[q] = t;
    }
    return mapping;
}

} // namespace qccd
