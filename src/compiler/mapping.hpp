/**
 * @file
 * Initial qubit-to-trap mapping (paper Section VI).
 *
 * The greedy heuristic orders program qubits by first use in the gate
 * sequence and packs them into traps in topology order, leaving buffer
 * slots in each trap for incoming shuttles. When the application is too
 * large for the requested buffer, the buffer shrinks adaptively (e.g.
 * SquareRoot-78 on six 14-ion traps only leaves one slot per trap).
 */

#ifndef QCCD_COMPILER_MAPPING_HPP
#define QCCD_COMPILER_MAPPING_HPP

#include <vector>

#include "arch/topology.hpp"
#include "circuit/circuit.hpp"

namespace qccd
{

/** Initial placement policy. */
enum class MappingPolicy
{
    /** Pack traps to capacity minus buffer in first-use order (the
     *  paper's greedy heuristic). */
    Packed,

    /** Spread qubits evenly across all traps, preserving first-use
     *  order. Trades intra-trap locality for shorter chains and more
     *  spare capacity per trap. */
    Balanced
};

/** Lowercase policy name ("packed" / "balanced"). */
std::string mappingPolicyName(MappingPolicy policy);

/** Parse a policy name; throws ConfigError on bad input. */
MappingPolicy mappingPolicyFromName(const std::string &name);

/** Result of the initial mapping. */
struct InitialMapping
{
    /** trapOf[q] = trap holding program qubit q at program start. */
    std::vector<TrapId> trapOf;

    /** chainOrder[t] = qubits of trap t in left-to-right chain order. */
    std::vector<std::vector<QubitId>> chainOrder;

    /** Buffer slots per trap actually achieved. */
    int effectiveBuffer = 0;
};

/**
 * Compute the greedy first-use mapping.
 *
 * @param circuit program to map
 * @param topo target device
 * @param buffer_slots requested free slots per trap (paper uses 2)
 * @param policy placement policy (default: the paper's packing)
 * @throws ConfigError if the program has more qubits than the device
 */
InitialMapping mapQubits(const Circuit &circuit, const Topology &topo,
                         int buffer_slots,
                         MappingPolicy policy = MappingPolicy::Packed);

/** Program qubits ordered by first use (then index for unused ones). */
std::vector<QubitId> firstUseOrder(const Circuit &circuit);

} // namespace qccd

#endif // QCCD_COMPILER_MAPPING_HPP
