/**
 * @file
 * Shuttle routing policy: which ion moves for a cross-trap gate, where
 * evicted ions go, and which path a shuttle takes (paper Section VI).
 *
 * The policy is topology-agnostic: every decision is made from the
 * all-pairs PathFinder costs and per-trap occupancy, never from the
 * shape of the device, so it is correct on any connected trap/junction
 * graph (linear, grid, ring, star, H-tree, or a custom `.topo` device).
 */

#ifndef QCCD_COMPILER_ROUTER_HPP
#define QCCD_COMPILER_ROUTER_HPP

#include "arch/path.hpp"
#include "arch/topology.hpp"
#include "sim/device_state.hpp"

namespace qccd
{

/** Decision for satisfying one cross-trap two-qubit gate. */
struct MoveDecision
{
    IonId mover = kInvalidId;    ///< ion that shuttles
    IonId stayer = kInvalidId;   ///< gate partner that stays put
    TrapId source = kInvalidId;  ///< mover's current trap
    TrapId dest = kInvalidId;    ///< stayer's trap
};

/** Routing policy over a fixed topology and precomputed paths. */
class Router
{
  public:
    /**
     * @param topo device topology
     * @param paths all-pairs shortest paths (must outlive the router)
     */
    Router(const Topology &topo, const PathFinder &paths);

    /**
     * Choose which of a gate's two ions shuttles toward the other.
     *
     * Prefers the cheaper path; a destination without a free slot is
     * penalized so the gate gravitates toward the trap with space,
     * ties break toward moving @p ion_a.
     */
    MoveDecision chooseMover(const DeviceState &state, IonId ion_a,
                             IonId ion_b) const;

    /** The routed path between two traps. */
    const Path &pathBetween(TrapId a, TrapId b) const;

    /**
     * Pick the trap an evicted ion should flee to: the trap nearest to
     * @p from (by routing cost) with at least one free slot, excluding
     * @p exclude.
     *
     * @throws ConfigError when every other trap is full; the diagnostic
     *         names the stuck trap and carries a per-trap free-slot
     *         census so capacity problems on custom devices are
     *         attributable
     */
    TrapId evictionTarget(const DeviceState &state, TrapId from,
                          TrapId exclude) const;

  private:
    const Topology &topo_;
    const PathFinder &paths_;
};

} // namespace qccd

#endif // QCCD_COMPILER_ROUTER_HPP
