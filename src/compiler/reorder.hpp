/**
 * @file
 * Primitive operation emission, including chain reordering (paper
 * Section IV-C).
 *
 * PrimitiveEmitter is the single place where primitive QCCD operations
 * are stamped onto resource timelines, charged for heating and fidelity,
 * and recorded in the trace. Both the scheduler's gate/shuttle
 * orchestration and the chain-reorder expansion (GS or IS) go through
 * it, so every cost is accounted exactly once.
 */

#ifndef QCCD_COMPILER_REORDER_HPP
#define QCCD_COMPILER_REORDER_HPP

#include <memory>
#include <vector>

#include "models/model_tables.hpp"
#include "models/params.hpp"
#include "sim/device_state.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace qccd
{

class ModelEvalLog;

/** Stamps primitive ops onto the device, charging time/heat/fidelity. */
class PrimitiveEmitter
{
  public:
    /**
     * @param state mutable device state (chains, energies, timelines)
     * @param hw hardware parameterization
     * @param result metric accumulator to fold ops into
     * @param trace op trace to append to (may be nullptr to skip)
     * @param zero_comm_times when true, communication ops (shuttle
     *        primitives and reorder gates) take zero time but still heat
     *        the chains; used for the compute/communication runtime
     *        decomposition of Fig. 6b
     * @param model_log optional model-evaluation log (see
     *        sim/model_replay.hpp): every model-relevant primitive is
     *        recorded in emission order so the staged toolflow can
     *        re-evaluate new model knobs without re-scheduling
     */
    PrimitiveEmitter(DeviceState &state, const HardwareParams &hw,
                     SimResult &result, Trace *trace,
                     bool zero_comm_times = false,
                     ModelEvalLog *model_log = nullptr);

    /** Per-qubit data-ready times. @{ */
    std::vector<TimeUs> &qubitReady() { return qubitReady_; }
    const std::vector<TimeUs> &qubitReady() const { return qubitReady_; }
    /** @} */

    /**
     * Emit a two-qubit MS gate between the ions carrying @p qa and
     * @p qb, which must be co-located.
     *
     * @param ready earliest start (maxed with both qubits' ready times)
     * @param for_comm true when the gate implements GS reordering
     * @return gate end time
     */
    TimeUs emitMs(QubitId qa, QubitId qb, TimeUs ready, bool for_comm);

    /** Emit a single-qubit gate on @p q. @return end time */
    TimeUs emitOneQubit(QubitId q, TimeUs ready);

    /** Emit a measurement of @p q. @return end time */
    TimeUs emitMeasure(QubitId q, TimeUs ready);

    /**
     * Split the ion at @p end off trap @p t into flight.
     *
     * @param[out] out_ion the detached ion
     * @return end time
     */
    TimeUs emitSplit(TrapId t, ChainEnd end, TimeUs ready,
                     IonId *out_ion);

    /** Merge in-flight @p ion into trap @p t at @p end. @return end */
    TimeUs emitMerge(TrapId t, ChainEnd end, IonId ion, TimeUs ready);

    /** Move in-flight @p ion across edge @p e. @return end time */
    TimeUs emitMove(EdgeId e, IonId ion, TimeUs ready);

    /** Cross junction @p n with in-flight @p ion. @return end time */
    TimeUs emitJunction(NodeId n, IonId ion, TimeUs ready);

    /** Pass in-flight @p ion through the empty trap @p t. @return end */
    TimeUs emitTransit(TrapId t, IonId ion, TimeUs ready);

    /**
     * Bring the logical payload of @p ion to @p end of its chain using
     * the configured reordering method. Under GS the payload teleports
     * to the ion already at that end; under IS the ion physically hops.
     *
     * @param[out] out_time completion time
     * @return the ion now carrying the payload at the chain end
     */
    IonId reorderToEnd(IonId ion, ChainEnd end, TimeUs ready,
                       TimeUs *out_time);

  private:
    DeviceState &state_;
    const HardwareParams &hw_;

    /**
     * Memoized models, shared read-only across all emitters with the
     * same parameterization (sized to the device's largest trap plus
     * one, since a linear pass-through can briefly exceed capacity).
     */
    std::shared_ptr<const ModelTables> tables_;
    HeatingModel heating_;
    SimResult &result_;
    Trace *trace_;
    bool zeroComm_;
    ModelEvalLog *log_;
    std::vector<TimeUs> qubitReady_;

    /** Scale a communication duration per the decomposition mode. */
    TimeUs commDur(TimeUs d) const { return zeroComm_ ? 0.0 : d; }

    /**
     * Fold a constant-fidelity primitive into the metrics (memoized
     * log) and append it to the trace only when tracing is on — the
     * no-trace schedule mode skips building the PrimOp entirely.
     */
    void recordSimple(PrimKind kind, TimeUs start, TimeUs duration,
                      TrapId trap, EdgeId edge, NodeId junction,
                      IonId ion, QubitId q0, bool for_comm, double fid,
                      double log_fid);

    /** One IS hop: split/rotate/merge around the swapping pair. */
    TimeUs emitIonSwapHop(IonId ion, ChainEnd end, TimeUs ready);
};

} // namespace qccd

#endif // QCCD_COMPILER_REORDER_HPP
