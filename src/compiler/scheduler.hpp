/**
 * @file
 * The QCCD backend scheduler (paper Sections V-A, VI).
 *
 * Implements earliest-ready-gate-first list scheduling over the device's
 * resource timelines. Single-qubit gates and measurements run in the
 * ion's current trap; two-qubit gates between different traps trigger a
 * shuttle: reorder to the exit end, split, move across segments and
 * junctions (merging through intermediate traps on linear topologies,
 * Fig. 4), merge at the destination, then the MS gate. Full destination
 * traps first evict their least-soon-needed ion to the nearest trap
 * with space.
 *
 * All primitive operations are atomic reservations on monotone
 * timelines, so parallel shuttles can never deadlock; contention at
 * junctions or segments resolves to waiting, which is exactly the
 * paper's congestion policy.
 *
 * Shuttle emission is driven purely by the routed Path's step sequence
 * (edges, junction crossings, trap pass-throughs) — nothing here
 * assumes a linear chain or a junction rail, so the scheduler runs
 * unchanged on any validated topology, including `.topo` device files.
 */

#ifndef QCCD_COMPILER_SCHEDULER_HPP
#define QCCD_COMPILER_SCHEDULER_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "arch/path.hpp"
#include "arch/topology.hpp"
#include "circuit/circuit.hpp"
#include "common/deadline.hpp"
#include "compiler/mapping.hpp"
#include "compiler/reorder.hpp"
#include "compiler/router.hpp"
#include "models/params.hpp"
#include "sim/device_state.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace qccd
{

class ModelEvalLog;

/** Scheduling knobs. */
struct ScheduleOptions
{
    bool collectTrace = true;   ///< record the primitive op trace
    bool zeroCommTimes = false; ///< Fig. 6b decomposition mode

    /** Initial placement policy (paper default: packed). */
    MappingPolicy mappingPolicy = MappingPolicy::Packed;

    /**
     * Cooperative watchdog checked at stage boundaries (pop loop,
     * evictions, shuttle emission); unarmed by default. An expired
     * deadline throws TimeoutError, leaving the scratch buffers valid
     * for the next run (every run fully reinitializes them).
     */
    Deadline deadline;

    /**
     * Precomputed initial placement to adopt instead of running
     * mapQubits (the staged toolflow's placement cache). Must be the
     * mapping mapQubits(circuit, topo, hw.bufferSlots, mappingPolicy)
     * would produce — mapping is deterministic, so a cached result for
     * identical inputs is exactly that — and must outlive the run.
     */
    const InitialMapping *placement = nullptr;

    /**
     * When set, every model-relevant primitive is recorded here in
     * emission order (see sim/model_replay.hpp), enabling model-knob
     * re-evaluation without re-scheduling. The log is NOT cleared by
     * the scheduler; callers clear it between recordings.
     */
    ModelEvalLog *modelLog = nullptr;
};

/** Output of one compile+simulate pass. */
struct ScheduleResult
{
    SimResult metrics;
    Trace trace;
    InitialMapping mapping;
};

/**
 * Reusable buffers shared between consecutive Scheduler runs.
 *
 * A toolflow point schedules the same circuit up to twice (the real
 * pass and the zero-communication pass of the Fig. 6b decomposition),
 * and a sweep worker evaluates many points back to back. Passing one
 * scratch to every Scheduler pools the allocations: the flattened gate
 * queue and ready-heap keep their storage across runs (contents are
 * rebuilt every run), and the DeviceState is reset in place instead of
 * reconstructed when the same topology and ion count repeat. Contents
 * are fully (re)initialized by each run, so results are bit-identical
 * with and without a scratch. Not thread-safe: use one scratch per
 * worker.
 */
class SchedulerScratch
{
  public:
    SchedulerScratch() = default;

    /**
     * The pooled device state of the most recent run (nullptr before
     * any run). Exposed read-only so tests can check end-of-run
     * invariants (e.g. DeviceState::positionIndexConsistent).
     */
    const DeviceState *deviceState() const
    {
        return state_.has_value() ? &*state_ : nullptr;
    }

  private:
    friend class Scheduler;

    /** CSR gate queue: per-qubit slices of queue_ delimited by
     *  offsets_. Contents are rebuilt by every run (only the storage
     *  is pooled — a cheap linear pass, and address-based circuit
     *  identity would be unsound across pooled runs). @{ */
    std::vector<uint32_t> queue_;
    std::vector<uint32_t> offsets_;
    /** @} */

    std::vector<uint32_t> cursors_; ///< per-qubit position in queue_
    std::vector<std::pair<TimeUs, size_t>> heap_;
    std::optional<DeviceState> state_;
};

/** Compiles and simulates one circuit on one device configuration. */
class Scheduler
{
  public:
    /**
     * @param circuit program in the native gate set ({1q, MS, measure};
     *        use decomposeToNative() first)
     * @param topo device topology (must outlive the scheduler)
     * @param hw hardware parameterization
     * @param options scheduling knobs
     * @param scratch optional buffer pool reused across schedulers
     *        (must outlive this scheduler; one scheduler at a time)
     */
    Scheduler(const Circuit &circuit, const Topology &topo,
              const HardwareParams &hw, ScheduleOptions options = {},
              SchedulerScratch *scratch = nullptr);

    /**
     * Like the owning constructor, but routes over a prebuilt all-pairs
     * @p paths instead of recomputing Dijkstra per scheduler. The paths
     * must have been built over @p topo with pathCostFrom(@p hw) (what
     * ToolflowContext does) and must outlive the scheduler; one
     * PathFinder may be shared by many concurrent schedulers.
     */
    Scheduler(const Circuit &circuit, const Topology &topo,
              const HardwareParams &hw, const PathFinder &paths,
              ScheduleOptions options = {},
              SchedulerScratch *scratch = nullptr);

    /** Run the full schedule; callable once. */
    ScheduleResult run();

    /** Routing cost weights implied by @p hw (shared with contexts). */
    static PathCost pathCostFrom(const HardwareParams &hw);

  private:
    /** Owning delegate: keeps @p owned alive and routes over it. */
    Scheduler(const Circuit &circuit, const Topology &topo,
              const HardwareParams &hw,
              std::unique_ptr<PathFinder> owned, ScheduleOptions options,
              SchedulerScratch *scratch);

    const Circuit &circuit_;
    const Topology &topo_;
    HardwareParams hw_;
    ScheduleOptions options_;

    std::unique_ptr<PathFinder> ownedPaths_; ///< only when not shared
    const PathFinder &paths_;
    Router router_;

    SchedulerScratch ownScratch_; ///< used when the caller gave none
    SchedulerScratch *scratch_;   ///< buffers this run schedules out of
    DeviceState *state_;          ///< lives in scratch_->state_

    ScheduleResult result_;
    std::unique_ptr<PrimitiveEmitter> emitter_;

    size_t gateCount_ = 0; ///< non-barrier gates, set by buildQueues
    bool ran_ = false;

    /** Emplace or reset the pooled DeviceState for this run. */
    void initState();

    void validateAndInitEmitter();
    void buildQueues();
    void placeInitialLayout();

    /** Gate index of qubit @p q's next pending gate (SIZE_MAX if none). */
    size_t nextGateIndex(QubitId q) const;

    /** True when gate @p gi is the front gate of all its operands. */
    bool gateReady(size_t gi) const;

    /** Data-ready time of gate @p gi. */
    TimeUs gateReadyTime(size_t gi) const;

    void executeGate(size_t gi);

    /**
     * Shuttle @p ion to trap @p dest; returns the ion that arrives
     * (GS reordering may teleport the payload to a different ion) and
     * sets @p out_time to the final merge completion.
     *
     * @pre dest has a free slot (callers evict first and must then
     *      re-resolve qubit -> ion bindings, since evictions can
     *      teleport payloads between physical ions)
     */
    IonId performShuttle(IonId ion, TrapId dest, TimeUs ready,
                         TimeUs *out_time);

    /** Make room in @p dest by evicting its least-needed ion. */
    void evictFrom(TrapId dest, IonId keep, TimeUs ready);
};

} // namespace qccd

#endif // QCCD_COMPILER_SCHEDULER_HPP
