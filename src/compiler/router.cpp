#include "compiler/router.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace qccd
{

Router::Router(const Topology &topo, const PathFinder &paths)
    : topo_(topo), paths_(paths)
{
}

MoveDecision
Router::chooseMover(const DeviceState &state, IonId ion_a,
                    IonId ion_b) const
{
    const TrapId trap_a = state.trapOf(ion_a);
    const TrapId trap_b = state.trapOf(ion_b);
    panicUnless(trap_a != kInvalidId && trap_b != kInvalidId,
                "both gate ions must be trapped");
    panicUnless(trap_a != trap_b, "ions are already co-located");

    // A full destination forces an eviction detour, so weigh it as an
    // extra shuttle's worth of routing cost.
    const double eviction_penalty = 1000.0;
    double cost_a_moves = paths_.cost(trap_a, trap_b);
    double cost_b_moves = paths_.cost(trap_b, trap_a);
    if (state.freeSlots(trap_b) <= 0)
        cost_a_moves += eviction_penalty;
    if (state.freeSlots(trap_a) <= 0)
        cost_b_moves += eviction_penalty;

    MoveDecision decision;
    if (cost_a_moves <= cost_b_moves) {
        decision.mover = ion_a;
        decision.stayer = ion_b;
        decision.source = trap_a;
        decision.dest = trap_b;
    } else {
        decision.mover = ion_b;
        decision.stayer = ion_a;
        decision.source = trap_b;
        decision.dest = trap_a;
    }
    return decision;
}

const Path &
Router::pathBetween(TrapId a, TrapId b) const
{
    return paths_.path(a, b);
}

TrapId
Router::evictionTarget(const DeviceState &state, TrapId from,
                       TrapId exclude) const
{
    TrapId best = kInvalidId;
    double best_cost = std::numeric_limits<double>::infinity();
    for (TrapId t = 0; t < topo_.trapCount(); ++t) {
        if (t == from || t == exclude)
            continue;
        if (state.freeSlots(t) <= 0)
            continue;
        const double c = paths_.cost(from, t);
        if (c < best_cost) {
            best_cost = c;
            best = t;
        }
    }
    if (best == kInvalidId) [[unlikely]] {
        // Capacity diagnostic: name the stuck trap and give the
        // free-slot census so the user can see which capacity/buffer
        // knob to turn (a generic "too full" is undebuggable on a
        // 50-trap custom device).
        std::ostringstream out;
        out << "device too full to route: no trap can take an ion "
               "evicted from trap "
            << from;
        if (exclude != kInvalidId && exclude != from)
            out << " (trap " << exclude << " excluded)";
        out << "; free slots:";
        const int shown = std::min(topo_.trapCount(), 32);
        for (TrapId t = 0; t < shown; ++t)
            out << " t" << t << "=" << state.freeSlots(t);
        if (shown < topo_.trapCount())
            out << " ... (" << topo_.trapCount() - shown
                << " more traps)";
        throw ConfigError(out.str());
    }
    return best;
}

} // namespace qccd
