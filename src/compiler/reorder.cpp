#include "compiler/reorder.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/model_replay.hpp"

namespace qccd
{

namespace
{

/** Largest trap capacity in @p topo (chain lengths never exceed it+1). */
int
maxTrapCapacity(const Topology &topo)
{
    int max_cap = 0;
    for (TrapId t = 0; t < topo.trapCount(); ++t)
        max_cap = std::max(max_cap, topo.node(topo.trapNode(t)).capacity);
    return max_cap;
}

} // namespace

PrimitiveEmitter::PrimitiveEmitter(DeviceState &state,
                                   const HardwareParams &hw,
                                   SimResult &result, Trace *trace,
                                   bool zero_comm_times,
                                   ModelEvalLog *model_log)
    : state_(state), hw_(hw),
      tables_(ModelTables::shared(hw,
                                  maxTrapCapacity(state.topology()) + 1)),
      heating_(hw.heatingModel()), result_(result), trace_(trace),
      zeroComm_(zero_comm_times), log_(model_log),
      qubitReady_(state.numIons(), 0)
{
    if (log_ != nullptr)
        log_->setMaxChain(tables_->maxChain());
}

void
PrimitiveEmitter::recordSimple(PrimKind kind, TimeUs start,
                               TimeUs duration, TrapId trap, EdgeId edge,
                               NodeId junction, IonId ion, QubitId q0,
                               bool for_comm, double fid, double log_fid)
{
    result_.noteSimpleOp(kind, start + duration, duration, for_comm, fid,
                         log_fid);
    if (trace_ != nullptr) {
        PrimOp op;
        op.kind = kind;
        op.start = start;
        op.duration = duration;
        op.trap = trap;
        op.edge = edge;
        op.junction = junction;
        op.ion = ion;
        op.q0 = q0;
        op.fidelity = fid;
        op.forCommunication = for_comm;
        trace_->push_back(op);
    }
}

TimeUs
PrimitiveEmitter::emitMs(QubitId qa, QubitId qb, TimeUs ready,
                         bool for_comm)
{
    const IonId ia = state_.ionOf(qa);
    const IonId ib = state_.ionOf(qb);
    const TrapId t = state_.trapOf(ia);
    panicUnless(t != kInvalidId && t == state_.trapOf(ib),
                "MS gate requires co-located ions");

    const int pa = state_.positionOf(ia);
    const int pb = state_.positionOf(ib);
    const int separation = std::abs(pa - pb);
    const int chain_len = state_.chain(t).size();
    const Quanta nbar = state_.energy(t);

    // Fidelity uses the *physical* gate duration even when the
    // decomposition mode zeroes schedule time.
    const TimeUs phys_dur = tables_->twoQubit(separation, chain_len);
    const TimeUs dur = for_comm ? commDur(phys_dur) : phys_dur;

    const TimeUs data_ready =
        std::max({ready, qubitReady_[qa], qubitReady_[qb]});
    const TimeUs start = state_.trapTimeline(t).acquire(data_ready, dur);
    const TimeUs end = start + dur;
    qubitReady_[qa] = end;
    qubitReady_[qb] = end;

    const GateErrorBreakdown err =
        tables_->msError(phys_dur, chain_len, nbar);
    const double fid = err.fidelity();
    const double log_fid = std::log(std::max(fid, kMinFidelity));

    if (log_ != nullptr)
        log_->noteMs(t, chain_len, phys_dur);
    result_.noteMsOp(end, dur, for_comm, err.background, err.motional,
                     fid, log_fid);
    if (trace_ != nullptr) {
        PrimOp op;
        op.kind = PrimKind::GateMS;
        op.start = start;
        op.duration = dur;
        op.trap = t;
        op.q0 = qa;
        op.q1 = qb;
        op.chainLength = chain_len;
        op.separation = separation;
        op.nbar = nbar;
        op.errBackground = err.background;
        op.errMotional = err.motional;
        op.fidelity = fid;
        op.forCommunication = for_comm;
        trace_->push_back(op);
    }
    return end;
}

TimeUs
PrimitiveEmitter::emitOneQubit(QubitId q, TimeUs ready)
{
    const IonId ion = state_.ionOf(q);
    const TrapId t = state_.trapOf(ion);
    panicUnless(t != kInvalidId, "one-qubit gate on an in-flight ion");

    const TimeUs dur = tables_->gateTime().oneQubit();
    const TimeUs start = state_.trapTimeline(t).acquire(
        std::max(ready, qubitReady_[q]), dur);
    qubitReady_[q] = start + dur;

    if (log_ != nullptr)
        log_->noteOneQubit();
    recordSimple(PrimKind::Gate1Q, start, dur, t, kInvalidId, kInvalidId,
                 kInvalidId, q, false,
                 tables_->fidelity().oneQubitFidelity(),
                 tables_->logOneQubitFidelity());
    return start + dur;
}

TimeUs
PrimitiveEmitter::emitMeasure(QubitId q, TimeUs ready)
{
    const IonId ion = state_.ionOf(q);
    const TrapId t = state_.trapOf(ion);
    panicUnless(t != kInvalidId, "measurement of an in-flight ion");

    const TimeUs dur = tables_->gateTime().measure();
    const TimeUs start = state_.trapTimeline(t).acquire(
        std::max(ready, qubitReady_[q]), dur);
    qubitReady_[q] = start + dur;

    if (log_ != nullptr)
        log_->noteMeasure();
    recordSimple(PrimKind::Measure, start, dur, t, kInvalidId,
                 kInvalidId, kInvalidId, q, false,
                 tables_->fidelity().measureFidelity(),
                 tables_->logMeasureFidelity());
    return start + dur;
}

TimeUs
PrimitiveEmitter::emitSplit(TrapId t, ChainEnd end, TimeUs ready,
                            IonId *out_ion)
{
    const ChainState &chain = state_.chain(t);
    const int n = chain.size();
    panicUnless(n >= 1, "split on an empty trap");
    const IonId ion =
        end == ChainEnd::Left ? chain.ions.front() : chain.ions.back();
    const QubitId payload = state_.payloadOf(ion);

    const TimeUs dur = commDur(hw_.shuttle.split);
    const TimeUs start = state_.trapTimeline(t).acquire(
        std::max(ready, qubitReady_[payload]), dur);
    qubitReady_[payload] = start + dur;

    if (log_ != nullptr)
        log_->noteSplit(t, n - 1);
    Quanta ion_energy = 0;
    if (n == 1) {
        // Extracting the last ion: it keeps the chain energy and gains
        // the split disturbance; the empty trap holds no energy.
        ion_energy = chain.energy + heating_.k1();
        state_.setEnergy(t, 0);
    } else {
        const auto [rest, moved] =
            heating_.afterSplit(chain.energy, n - 1, 1);
        state_.setEnergy(t, rest);
        ion_energy = moved;
    }
    *out_ion = state_.detachEnd(t, end, ion_energy);
    panicUnless(*out_ion == ion, "split detached the wrong ion");

    recordSimple(PrimKind::Split, start, dur, t, kInvalidId, kInvalidId,
                 ion, payload, true, 1.0, tables_->logUnitFidelity());
    return start + dur;
}

TimeUs
PrimitiveEmitter::emitMerge(TrapId t, ChainEnd end, IonId ion,
                            TimeUs ready)
{
    const QubitId payload = state_.payloadOf(ion);
    const TimeUs dur = commDur(hw_.shuttle.merge);
    const TimeUs start = state_.trapTimeline(t).acquire(
        std::max(ready, qubitReady_[payload]), dur);
    qubitReady_[payload] = start + dur;

    if (log_ != nullptr)
        log_->noteMerge(t);
    Quanta merged = heating_.afterMerge(state_.energy(t),
                                        state_.flightEnergy(ion));
    merged *= hw_.recoolFactor;
    state_.attachEnd(t, end, ion);
    state_.setEnergy(t, merged);

    recordSimple(PrimKind::Merge, start, dur, t, kInvalidId, kInvalidId,
                 ion, payload, true, 1.0, tables_->logUnitFidelity());
    return start + dur;
}

TimeUs
PrimitiveEmitter::emitMove(EdgeId e, IonId ion, TimeUs ready)
{
    const int segments = state_.topology().edge(e).segments;
    const TimeUs dur = commDur(hw_.shuttle.movePerSegment * segments);
    const QubitId payload = state_.payloadOf(ion);
    const TimeUs start = state_.edgeTimeline(e).acquire(
        std::max(ready, qubitReady_[payload]), dur);
    qubitReady_[payload] = start + dur;

    if (log_ != nullptr)
        log_->noteMoves(segments);
    state_.setFlightEnergy(
        ion, heating_.afterMoves(state_.flightEnergy(ion), segments));
    result_.counts.segmentsMoved += segments;

    recordSimple(PrimKind::Move, start, dur, kInvalidId, e, kInvalidId,
                 ion, payload, true, 1.0, tables_->logUnitFidelity());
    return start + dur;
}

TimeUs
PrimitiveEmitter::emitJunction(NodeId n, IonId ion, TimeUs ready)
{
    const int degree = state_.topology().degree(n);
    const TimeUs dur = commDur(hw_.shuttle.junctionCrossing(degree));
    const QubitId payload = state_.payloadOf(ion);
    const TimeUs start = state_.junctionTimeline(n).acquire(
        std::max(ready, qubitReady_[payload]), dur);
    qubitReady_[payload] = start + dur;

    if (log_ != nullptr)
        log_->noteJunction();
    state_.setFlightEnergy(ion,
                           heating_.afterJunction(state_.flightEnergy(ion)));

    recordSimple(PrimKind::JunctionCross, start, dur, kInvalidId,
                 kInvalidId, n, ion, payload, true, 1.0,
                 tables_->logUnitFidelity());
    return start + dur;
}

TimeUs
PrimitiveEmitter::emitTransit(TrapId t, IonId ion, TimeUs ready)
{
    // Crossing an empty trap region is modeled as one segment of linear
    // transport: nothing to merge with, nothing to reorder.
    // afterMove(e, 1) == afterMoves(e, 1) bit for bit, so the replay
    // log records it as a one-segment move.
    if (log_ != nullptr)
        log_->noteMoves(1);
    const TimeUs dur = commDur(hw_.shuttle.movePerSegment);
    const QubitId payload = state_.payloadOf(ion);
    const TimeUs start = state_.trapTimeline(t).acquire(
        std::max(ready, qubitReady_[payload]), dur);
    qubitReady_[payload] = start + dur;

    state_.setFlightEnergy(ion,
                           heating_.afterMove(state_.flightEnergy(ion), 1));

    recordSimple(PrimKind::Transit, start, dur, t, kInvalidId,
                 kInvalidId, ion, payload, true, 1.0,
                 tables_->logUnitFidelity());
    return start + dur;
}

TimeUs
PrimitiveEmitter::emitIonSwapHop(IonId ion, ChainEnd end, TimeUs ready)
{
    const TrapId t = state_.trapOf(ion);
    const ChainState &chain = state_.chain(t);
    const int n = chain.size();
    panicUnless(n >= 2, "ion-swap hop needs at least two ions");

    // Isolate the swapping pair (split), rotate it 180 degrees, and
    // merge it back (paper Fig. 5). For a two-ion chain the pair is the
    // whole chain and no split/merge is needed.
    TimeUs t_flow = ready;
    if (n > 2) {
        // A two-ion hop (else branch) touches neither chain energy nor
        // any non-unit fidelity, so only this branch is logged.
        if (log_ != nullptr)
            log_->noteIonSwapHop(t, n);
        const TimeUs dur = commDur(hw_.shuttle.split);
        const TimeUs start =
            state_.trapTimeline(t).acquire(t_flow, dur);
        t_flow = start + dur;
        const auto [rest, pair] =
            heating_.afterSplit(chain.energy, n - 2, 2);
        // The chain is reassembled below; meanwhile track both halves
        // summed at merge time. Stash the pair share through the
        // rotation via local bookkeeping.
        recordSimple(PrimKind::Split, start, dur, t, kInvalidId,
                     kInvalidId, ion, kInvalidId, true, 1.0,
                     tables_->logUnitFidelity());

        // Rotation.
        const TimeUs rdur = commDur(hw_.shuttle.ionSwapRotation);
        const TimeUs rstart =
            state_.trapTimeline(t).acquire(t_flow, rdur);
        t_flow = rstart + rdur;
        recordSimple(PrimKind::Rotate, rstart, rdur, t, kInvalidId,
                     kInvalidId, ion, kInvalidId, true, 1.0,
                     tables_->logUnitFidelity());

        // Merge back.
        const TimeUs mdur = commDur(hw_.shuttle.merge);
        const TimeUs mstart =
            state_.trapTimeline(t).acquire(t_flow, mdur);
        t_flow = mstart + mdur;
        state_.setEnergy(t, heating_.afterMerge(rest, pair));
        recordSimple(PrimKind::Merge, mstart, mdur, t, kInvalidId,
                     kInvalidId, ion, kInvalidId, true, 1.0,
                     tables_->logUnitFidelity());
    } else {
        const TimeUs rdur = commDur(hw_.shuttle.ionSwapRotation);
        const TimeUs rstart =
            state_.trapTimeline(t).acquire(t_flow, rdur);
        t_flow = rstart + rdur;
        recordSimple(PrimKind::Rotate, rstart, rdur, t, kInvalidId,
                     kInvalidId, ion, kInvalidId, true, 1.0,
                     tables_->logUnitFidelity());
    }

    // Physically exchange the ions and release both payloads at the
    // hop's completion time.
    const QubitId pa = state_.payloadOf(ion);
    const IonId neighbour = state_.swapToward(ion, end);
    const QubitId pb = state_.payloadOf(neighbour);
    qubitReady_[pa] = std::max(qubitReady_[pa], t_flow);
    qubitReady_[pb] = std::max(qubitReady_[pb], t_flow);
    return t_flow;
}

IonId
PrimitiveEmitter::reorderToEnd(IonId ion, ChainEnd end, TimeUs ready,
                               TimeUs *out_time)
{
    const TrapId t = state_.trapOf(ion);
    panicUnless(t != kInvalidId, "reorder of an in-flight ion");
    const ChainState &chain = state_.chain(t);
    const int n = chain.size();
    const int target = end == ChainEnd::Left ? 0 : n - 1;
    int pos = state_.positionOf(ion);

    if (pos == target) {
        *out_time = ready;
        return ion;
    }

    if (hw_.reorder == ReorderMethod::GS) {
        // One SWAP gate between the ion and the chain-end ion: three MS
        // gates (paper Fig. 5), after which the logical payload lives in
        // the end ion.
        const IonId end_ion = chain.ions[target];
        const QubitId qa = state_.payloadOf(ion);
        const QubitId qb = state_.payloadOf(end_ion);
        TimeUs t_flow = ready;
        for (int k = 0; k < 3; ++k)
            t_flow = emitMs(qa, qb, t_flow, true);
        state_.swapPayloads(ion, end_ion);
        *out_time = t_flow;
        return end_ion;
    }

    // IS: hop the ion to the end one neighbour at a time.
    TimeUs t_flow = ready;
    while (pos != target) {
        t_flow = emitIonSwapHop(ion, end, t_flow);
        pos = state_.positionOf(ion);
    }
    *out_time = t_flow;
    return ion;
}

} // namespace qccd
