#include "compiler/scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace qccd
{

PathCost
Scheduler::pathCostFrom(const HardwareParams &hw)
{
    PathCost cost;
    cost.perSegment = hw.shuttle.movePerSegment;
    cost.yJunction = hw.shuttle.yJunction;
    cost.xJunction = hw.shuttle.xJunction;
    // Routing estimate for a trap pass-through: merge + split plus a
    // nominal reorder allowance of three mid-chain MS gates.
    cost.trapPassThrough = hw.shuttle.merge + hw.shuttle.split + 300.0;
    return cost;
}

Scheduler::Scheduler(const Circuit &circuit, const Topology &topo,
                     const HardwareParams &hw, ScheduleOptions options,
                     SchedulerScratch *scratch)
    : Scheduler(circuit, topo, hw,
                std::make_unique<PathFinder>(topo, pathCostFrom(hw)),
                options, scratch)
{
}

Scheduler::Scheduler(const Circuit &circuit, const Topology &topo,
                     const HardwareParams &hw,
                     std::unique_ptr<PathFinder> owned,
                     ScheduleOptions options, SchedulerScratch *scratch)
    : circuit_(circuit), topo_(topo), hw_(hw), options_(options),
      ownedPaths_(std::move(owned)), paths_(*ownedPaths_),
      router_(topo, paths_),
      scratch_(scratch != nullptr ? scratch : &ownScratch_)
{
    initState();
    validateAndInitEmitter();
}

Scheduler::Scheduler(const Circuit &circuit, const Topology &topo,
                     const HardwareParams &hw, const PathFinder &paths,
                     ScheduleOptions options, SchedulerScratch *scratch)
    : circuit_(circuit), topo_(topo), hw_(hw), options_(options),
      paths_(paths), router_(topo, paths_),
      scratch_(scratch != nullptr ? scratch : &ownScratch_)
{
    initState();
    validateAndInitEmitter();
}

void
Scheduler::initState()
{
    // Reuse the pooled state only when its storage provably fits this
    // run: same topology object AND vectors sized for its current
    // extents. The size checks guard against a different Topology
    // recycled at the old address (per-node data is always read live
    // through the reference, but the per-trap/edge/node vectors were
    // sized at construction and must match this topology).
    std::optional<DeviceState> &pooled = scratch_->state_;
    if (pooled.has_value() &&
        pooled->fits(topo_, circuit_.numQubits()))
        pooled->reset();
    else
        pooled.emplace(topo_, circuit_.numQubits());
    state_ = &*pooled;
}

void
Scheduler::validateAndInitEmitter()
{
    hw_.validate();
    for (const Gate &g : circuit_.gates()) {
        if (!isNative(g.op) && g.op != Op::Barrier) [[unlikely]]
            throw ConfigError(
                "scheduler requires the native gate set; lower with "
                "decomposeToNative() (found " + g.toString() + ")");
    }
    emitter_ = std::make_unique<PrimitiveEmitter>(
        *state_, hw_, result_.metrics,
        options_.collectTrace ? &result_.trace : nullptr,
        options_.zeroCommTimes, options_.modelLog);
}

void
Scheduler::buildQueues()
{
    QCCD_FAULT_POINT("scheduler.build_queues");

    SchedulerScratch &s = *scratch_;
    const int nq = circuit_.numQubits();

    // Operand entries (up to two per gate) and the prefix sums over
    // them must fit the uint32 CSR cells.
    fatalUnless(circuit_.size() < UINT32_MAX / 2,
                "circuit too large for the scheduler's gate queue");

    // CSR layout: one flat index vector, per-qubit slices located by
    // offsets. Built in two passes (count, then fill with the cursor
    // vector as the per-qubit write head). Rebuilt every run — only
    // the storage is pooled, so a recycled scratch can never serve a
    // stale queue.
    s.offsets_.assign(nq + 1, 0);
    size_t total = 0;
    for (size_t gi = 0; gi < circuit_.size(); ++gi) {
        const Gate &g = circuit_.gate(gi);
        if (g.op == Op::Barrier)
            continue;
        ++s.offsets_[g.q0 + 1];
        if (g.isTwoQubit())
            ++s.offsets_[g.q1 + 1];
        ++total;
    }
    for (int q = 0; q < nq; ++q)
        s.offsets_[q + 1] += s.offsets_[q];
    s.queue_.resize(s.offsets_[nq]);
    s.cursors_.assign(s.offsets_.begin(), s.offsets_.end() - 1);
    for (size_t gi = 0; gi < circuit_.size(); ++gi) {
        const Gate &g = circuit_.gate(gi);
        if (g.op == Op::Barrier)
            continue;
        s.queue_[s.cursors_[g.q0]++] = static_cast<uint32_t>(gi);
        if (g.isTwoQubit())
            s.queue_[s.cursors_[g.q1]++] = static_cast<uint32_t>(gi);
    }
    gateCount_ = total;

    // Rewind every qubit's cursor to the start of its slice.
    s.cursors_.assign(s.offsets_.begin(), s.offsets_.end() - 1);

    // Checked builds audit the CSR shape: monotone offsets, a fully
    // written index vector, and every cell naming a real gate.
    QCCD_CHECKED_ONLY({
        for (int q = 0; q < nq; ++q)
            panicUnless(s.offsets_[q] <= s.offsets_[q + 1],
                        "gate queue offsets are not monotone");
        panicUnless(s.queue_.size() == s.offsets_[nq],
                    "gate queue storage does not match its offsets");
        for (const uint32_t gi : s.queue_)
            panicUnless(gi < circuit_.size(),
                        "gate queue cell names a nonexistent gate");
    })
}

void
Scheduler::placeInitialLayout()
{
    // A caller-supplied placement is by contract the mapping mapQubits
    // would return for these inputs (mapQubits is deterministic), so
    // adopting it is bit-identical to recomputing it.
    if (options_.placement != nullptr)
        result_.mapping = *options_.placement;
    else
        result_.mapping = mapQubits(circuit_, topo_, hw_.bufferSlots,
                                    options_.mappingPolicy);
    result_.metrics.effectiveBuffer = result_.mapping.effectiveBuffer;
    for (TrapId t = 0; t < topo_.trapCount(); ++t) {
        for (QubitId q : result_.mapping.chainOrder[t]) {
            // Ion ids coincide with the program qubit they initially
            // carry; payloads drift apart under GS reordering.
            state_->placeIon(t, q, q);
        }
    }
}

size_t
Scheduler::nextGateIndex(QubitId q) const
{
    const SchedulerScratch &s = *scratch_;
    const uint32_t cur = s.cursors_[q];
    if (cur >= s.offsets_[q + 1])
        return SIZE_MAX;
    return s.queue_[cur];
}

bool
Scheduler::gateReady(size_t gi) const
{
    const Gate &g = circuit_.gate(gi);
    if (nextGateIndex(g.q0) != gi)
        return false;
    if (g.isTwoQubit() && nextGateIndex(g.q1) != gi)
        return false;
    return true;
}

TimeUs
Scheduler::gateReadyTime(size_t gi) const
{
    const Gate &g = circuit_.gate(gi);
    const auto &ready =
        static_cast<const PrimitiveEmitter &>(*emitter_).qubitReady();
    TimeUs t = ready[g.q0];
    if (g.isTwoQubit())
        t = std::max(t, ready[g.q1]);
    return t;
}

ScheduleResult
Scheduler::run()
{
    panicUnless(!ran_, "Scheduler::run may only be called once");
    ran_ = true;

    buildQueues();
    placeInitialLayout();

    SchedulerScratch &s = *scratch_;
    const size_t total = gateCount_;
    if (options_.collectTrace) {
        // Every gate emits at least one primitive; shuttle/reorder
        // expansion adds more. Pre-size for the common sweep shapes so
        // the trace grows without reallocating mid-run.
        result_.trace.reserve(total + total / 2);
    }

    // Lazy min-heap of (readyTime, gate index) on pooled storage;
    // stale keys reinserted. push_heap/pop_heap is exactly what
    // std::priority_queue runs, so pop order (ties included) matches
    // the previous implementation.
    using Entry = std::pair<TimeUs, size_t>;
    auto &heap = s.heap_;
    const auto cmp = std::greater<Entry>{};
    heap.clear();
    heap.reserve(total + 1);
    const auto heapPush = [&](TimeUs key, size_t gi) {
        heap.emplace_back(key, gi);
        std::push_heap(heap.begin(), heap.end(), cmp);
    };
    for (size_t gi = 0; gi < circuit_.size(); ++gi)
        if (circuit_.gate(gi).op != Op::Barrier && gateReady(gi))
            heapPush(gateReadyTime(gi), gi);
    QCCD_DBG_ASSERT(std::is_heap(heap.begin(), heap.end(), cmp),
                    "initial ready set is not a min-heap");

    size_t executed = 0;
    size_t pops = 0;

    while (!heap.empty()) {
        // Watchdog: a clock read per pop would be measurable on the
        // 1 ms/point hot path, so the deadline is sampled every 256
        // pops (the first pop included, so an already-expired deadline
        // fires before any work). Unarmed deadlines cost one branch.
        QCCD_FAULT_POINT("scheduler.pop");
        if ((pops++ & 0xFF) == 0)
            options_.deadline.check("scheduler.pop");

        const auto [key, gi] = heap.front();
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.pop_back();
        // Min-heap pop order: nothing left can sort before the popped
        // key (O(1) per pop, so checked full runs stay fast).
        QCCD_DBG_ASSERT(heap.empty() || !cmp(Entry{key, gi},
                                             heap.front()),
                        "heap popped keys out of order");
        panicUnless(gateReady(gi), "non-ready gate escaped into heap");
        const TimeUs now = gateReadyTime(gi);
        if (now > key) {
            heapPush(now, gi);
            continue;
        }

        executeGate(gi);
        ++executed;

        // Retire the gate and surface newly ready successors.
        const Gate &g = circuit_.gate(gi);
        ++s.cursors_[g.q0];
        const size_t succ0 = nextGateIndex(g.q0);
        if (succ0 != SIZE_MAX && gateReady(succ0))
            heapPush(gateReadyTime(succ0), succ0);
        if (g.isTwoQubit()) {
            ++s.cursors_[g.q1];
            const size_t succ1 = nextGateIndex(g.q1);
            if (succ1 != SIZE_MAX && gateReady(succ1))
                heapPush(gateReadyTime(succ1), succ1);
        }
    }

    panicUnless(executed == total,
                "scheduler finished with unexecuted gates");

    // Occupancy conservation: every ion must end the run back in some
    // trap (performShuttle always re-merges what it splits off), and
    // every program qubit must still resolve through the payload maps.
    QCCD_CHECKED_ONLY({
        int trapped = 0;
        for (TrapId t = 0; t < topo_.trapCount(); ++t)
            trapped += state_->chain(t).size();
        panicUnless(trapped == circuit_.numQubits(),
                    "scheduler finished with ions in flight");
        for (QubitId q = 0; q < circuit_.numQubits(); ++q)
            panicUnless(state_->payloadOf(state_->ionOf(q)) == q,
                        "qubit->ion->payload maps desynchronized");
    })
    result_.metrics.maxChainEnergy = state_->maxEnergySeen();
    return std::move(result_);
}

void
Scheduler::executeGate(size_t gi)
{
    QCCD_FAULT_POINT("scheduler.execute");

    const Gate &g = circuit_.gate(gi);
    if (g.isMeasure()) {
        emitter_->emitMeasure(g.q0, 0);
        return;
    }
    if (g.isOneQubit()) {
        emitter_->emitOneQubit(g.q0, 0);
        return;
    }

    panicUnless(g.op == Op::MS, "unexpected non-native two-qubit gate");

    // Gate-based reordering teleports logical payloads between physical
    // ions (including during evictions that pass through other traps),
    // so qubit -> ion bindings must be re-resolved after every eviction
    // rather than cached across it.
    for (int guard = 0; ; ++guard) {
        panicUnless(guard < 1000, "gate placement failed to converge");
        const IonId ia = state_->ionOf(g.q0);
        const IonId ib = state_->ionOf(g.q1);
        if (state_->trapOf(ia) == state_->trapOf(ib))
            break;
        const MoveDecision move = router_.chooseMover(*state_, ia, ib);
        if (state_->freeSlots(move.dest) <= 0) {
            evictFrom(move.dest, move.stayer, 0);
            continue; // re-resolve: eviction may teleport payloads
        }
        TimeUs arrive = 0;
        performShuttle(move.mover, move.dest, 0, &arrive);
        ++result_.metrics.counts.shuttles;
    }
    emitter_->emitMs(g.q0, g.q1, 0, false);
}

void
Scheduler::evictFrom(TrapId dest, IonId keep, TimeUs ready)
{
    QCCD_FAULT_POINT("router.evict");
    options_.deadline.check("router.evict");

    // Victim: the ion whose payload is needed latest (unused payloads
    // first), never the gate partner we must keep.
    const ChainState &chain = state_->chain(dest);
    IonId victim = kInvalidId;
    size_t best_next = 0;
    for (IonId ion : chain.ions) {
        if (ion == keep)
            continue;
        const size_t next = nextGateIndex(state_->payloadOf(ion));
        if (victim == kInvalidId || next > best_next) {
            victim = ion;
            best_next = next;
        }
    }
    panicUnless(victim != kInvalidId, "no evictable ion in full trap");

    const TrapId refuge = router_.evictionTarget(*state_, dest, dest);
    TimeUs done = 0;
    performShuttle(victim, refuge, ready, &done);
    ++result_.metrics.counts.evictions;
    ++result_.metrics.counts.shuttles;
}

IonId
Scheduler::performShuttle(IonId ion, TrapId dest, TimeUs ready,
                          TimeUs *out_time)
{
    QCCD_FAULT_POINT("shuttle.emit");
    options_.deadline.check("shuttle.emit");

    const TrapId src = state_->trapOf(ion);
    panicUnless(src != kInvalidId && src != dest,
                "shuttle needs a trapped ion and a distinct destination");
    panicUnless(state_->freeSlots(dest) > 0,
                "shuttle destination is full; caller must evict first");
    const Path &path = router_.pathBetween(src, dest);
    panicUnless(!path.steps.empty() &&
                path.steps.front().kind == PathStep::Kind::Edge &&
                path.steps.back().kind == PathStep::Kind::Edge,
                "routed path must start and end with an edge");

    TimeUs t = ready;

    // Reorder the payload to the source exit end and split it off.
    const EdgeId first_edge = path.steps.front().id;
    const ChainEnd exit_end = state_->portEnd(src, first_edge);
    ion = emitter_->reorderToEnd(ion, exit_end, t, &t);
    IonId flying = kInvalidId;
    t = emitter_->emitSplit(src, exit_end, t, &flying);
    panicUnless(flying == ion, "source split detached an unexpected ion");

    // Walk the path.
    for (size_t i = 0; i < path.steps.size(); ++i) {
        const PathStep &step = path.steps[i];
        switch (step.kind) {
          case PathStep::Kind::Edge:
            t = emitter_->emitMove(step.id, flying, t);
            break;
          case PathStep::Kind::Junction:
            t = emitter_->emitJunction(step.id, flying, t);
            break;
          case PathStep::Kind::ThroughTrap: {
            const TrapId through = topo_.node(step.id).trapIndex;
            panicUnless(through != kInvalidId,
                        "through-trap step names a non-trap node");
            panicUnless(i > 0 && i + 1 < path.steps.size(),
                        "through-trap cannot begin or end a path");
            const EdgeId in_edge = path.steps[i - 1].id;
            const EdgeId out_edge = path.steps[i + 1].id;
            if (state_->chain(through).ions.empty()) {
                t = emitter_->emitTransit(through, flying, t);
                break;
            }
            // On a path graph the two ports always differ (the ion
            // crosses the whole chain); on general graphs both edges
            // can attach to the same chain end — e.g. a ring trap
            // whose neighbours both have smaller node ids — and the
            // pass-through degenerates to a touch-and-go: the ion
            // merges as the outermost ion of that end, the reorder
            // no-ops, and the split detaches it again.
            const ChainEnd entry = state_->portEnd(through, in_edge);
            const ChainEnd exit = state_->portEnd(through, out_edge);
            t = emitter_->emitMerge(through, entry, flying, t);
            ++result_.metrics.counts.trapPassThroughs;
            IonId carrier =
                emitter_->reorderToEnd(flying, exit, t, &t);
            t = emitter_->emitSplit(through, exit, t, &flying);
            panicUnless(flying == carrier,
                        "pass-through split detached the wrong ion");
            break;
          }
        }
    }

    // Merge at the destination.
    const EdgeId last_edge = path.steps.back().id;
    const ChainEnd entry_end = state_->portEnd(dest, last_edge);
    t = emitter_->emitMerge(dest, entry_end, flying, t);
    QCCD_DBG_ASSERT(state_->trapOf(flying) == dest,
                    "shuttle did not deliver the ion to its destination");
    QCCD_DBG_ASSERT(state_->freeSlots(dest) >= 0,
                    "shuttle overfilled the destination trap");
    *out_time = t;
    return flying;
}

} // namespace qccd
