#include "compiler/scheduler.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace qccd
{

PathCost
Scheduler::pathCostFrom(const HardwareParams &hw)
{
    PathCost cost;
    cost.perSegment = hw.shuttle.movePerSegment;
    cost.yJunction = hw.shuttle.yJunction;
    cost.xJunction = hw.shuttle.xJunction;
    // Routing estimate for a trap pass-through: merge + split plus a
    // nominal reorder allowance of three mid-chain MS gates.
    cost.trapPassThrough = hw.shuttle.merge + hw.shuttle.split + 300.0;
    return cost;
}

Scheduler::Scheduler(const Circuit &circuit, const Topology &topo,
                     const HardwareParams &hw, ScheduleOptions options)
    : Scheduler(circuit, topo, hw,
                std::make_unique<PathFinder>(topo, pathCostFrom(hw)),
                options)
{
}

Scheduler::Scheduler(const Circuit &circuit, const Topology &topo,
                     const HardwareParams &hw,
                     std::unique_ptr<PathFinder> owned,
                     ScheduleOptions options)
    : circuit_(circuit), topo_(topo), hw_(hw), options_(options),
      ownedPaths_(std::move(owned)), paths_(*ownedPaths_),
      router_(topo, paths_), state_(topo, circuit.numQubits())
{
    validateAndInitEmitter();
}

Scheduler::Scheduler(const Circuit &circuit, const Topology &topo,
                     const HardwareParams &hw, const PathFinder &paths,
                     ScheduleOptions options)
    : circuit_(circuit), topo_(topo), hw_(hw), options_(options),
      paths_(paths), router_(topo, paths_),
      state_(topo, circuit.numQubits())
{
    validateAndInitEmitter();
}

void
Scheduler::validateAndInitEmitter()
{
    hw_.validate();
    for (const Gate &g : circuit_.gates()) {
        fatalUnless(isNative(g.op) || g.op == Op::Barrier,
                    "scheduler requires the native gate set; lower with "
                    "decomposeToNative() (found " + g.toString() + ")");
    }
    emitter_ = std::make_unique<PrimitiveEmitter>(
        state_, hw_, result_.metrics,
        options_.collectTrace ? &result_.trace : nullptr,
        options_.zeroCommTimes);
}

void
Scheduler::buildQueues()
{
    qubitGates_.assign(circuit_.numQubits(), {});
    qubitNext_.assign(circuit_.numQubits(), 0);
    std::vector<size_t> perQubit(circuit_.numQubits(), 0);
    for (size_t gi = 0; gi < circuit_.size(); ++gi) {
        const Gate &g = circuit_.gate(gi);
        if (g.op == Op::Barrier)
            continue;
        ++perQubit[g.q0];
        if (g.isTwoQubit())
            ++perQubit[g.q1];
    }
    for (QubitId q = 0; q < circuit_.numQubits(); ++q)
        qubitGates_[q].reserve(perQubit[q]);
    for (size_t gi = 0; gi < circuit_.size(); ++gi) {
        const Gate &g = circuit_.gate(gi);
        if (g.op == Op::Barrier)
            continue;
        qubitGates_[g.q0].push_back(gi);
        if (g.isTwoQubit())
            qubitGates_[g.q1].push_back(gi);
    }
}

void
Scheduler::placeInitialLayout()
{
    result_.mapping = mapQubits(circuit_, topo_, hw_.bufferSlots,
                                options_.mappingPolicy);
    result_.metrics.effectiveBuffer = result_.mapping.effectiveBuffer;
    for (TrapId t = 0; t < topo_.trapCount(); ++t) {
        for (QubitId q : result_.mapping.chainOrder[t]) {
            // Ion ids coincide with the program qubit they initially
            // carry; payloads drift apart under GS reordering.
            state_.placeIon(t, q, q);
        }
    }
}

size_t
Scheduler::nextGateIndex(QubitId q) const
{
    if (qubitNext_[q] >= qubitGates_[q].size())
        return SIZE_MAX;
    return qubitGates_[q][qubitNext_[q]];
}

bool
Scheduler::gateReady(size_t gi) const
{
    const Gate &g = circuit_.gate(gi);
    if (nextGateIndex(g.q0) != gi)
        return false;
    if (g.isTwoQubit() && nextGateIndex(g.q1) != gi)
        return false;
    return true;
}

TimeUs
Scheduler::gateReadyTime(size_t gi) const
{
    const Gate &g = circuit_.gate(gi);
    const auto &ready =
        static_cast<const PrimitiveEmitter &>(*emitter_).qubitReady();
    TimeUs t = ready[g.q0];
    if (g.isTwoQubit())
        t = std::max(t, ready[g.q1]);
    return t;
}

ScheduleResult
Scheduler::run()
{
    panicUnless(!ran_, "Scheduler::run may only be called once");
    ran_ = true;

    buildQueues();
    placeInitialLayout();

    size_t total = 0;
    for (size_t gi = 0; gi < circuit_.size(); ++gi)
        if (circuit_.gate(gi).op != Op::Barrier)
            ++total;

    // Lazy min-heap of (readyTime, gate index); stale keys reinserted.
    using Entry = std::pair<TimeUs, size_t>;
    std::vector<Entry> heapStorage;
    heapStorage.reserve(total + 1);
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap(
        std::greater<>{}, std::move(heapStorage));
    for (size_t gi = 0; gi < circuit_.size(); ++gi)
        if (circuit_.gate(gi).op != Op::Barrier && gateReady(gi))
            heap.emplace(gateReadyTime(gi), gi);

    size_t executed = 0;

    while (!heap.empty()) {
        const auto [key, gi] = heap.top();
        heap.pop();
        panicUnless(gateReady(gi), "non-ready gate escaped into heap");
        const TimeUs now = gateReadyTime(gi);
        if (now > key) {
            heap.emplace(now, gi);
            continue;
        }

        executeGate(gi);
        ++executed;

        // Retire the gate and surface newly ready successors.
        const Gate &g = circuit_.gate(gi);
        ++qubitNext_[g.q0];
        const size_t succ0 = nextGateIndex(g.q0);
        if (succ0 != SIZE_MAX && gateReady(succ0))
            heap.emplace(gateReadyTime(succ0), succ0);
        if (g.isTwoQubit()) {
            ++qubitNext_[g.q1];
            const size_t succ1 = nextGateIndex(g.q1);
            if (succ1 != SIZE_MAX && gateReady(succ1))
                heap.emplace(gateReadyTime(succ1), succ1);
        }
    }

    panicUnless(executed == total,
                "scheduler finished with unexecuted gates");
    result_.metrics.maxChainEnergy = state_.maxEnergySeen();
    return std::move(result_);
}

void
Scheduler::executeGate(size_t gi)
{
    const Gate &g = circuit_.gate(gi);
    if (g.isMeasure()) {
        emitter_->emitMeasure(g.q0, 0);
        return;
    }
    if (g.isOneQubit()) {
        emitter_->emitOneQubit(g.q0, 0);
        return;
    }

    panicUnless(g.op == Op::MS, "unexpected non-native two-qubit gate");

    // Gate-based reordering teleports logical payloads between physical
    // ions (including during evictions that pass through other traps),
    // so qubit -> ion bindings must be re-resolved after every eviction
    // rather than cached across it.
    for (int guard = 0; ; ++guard) {
        panicUnless(guard < 1000, "gate placement failed to converge");
        const IonId ia = state_.ionOf(g.q0);
        const IonId ib = state_.ionOf(g.q1);
        if (state_.trapOf(ia) == state_.trapOf(ib))
            break;
        const MoveDecision move = router_.chooseMover(state_, ia, ib);
        if (state_.freeSlots(move.dest) <= 0) {
            evictFrom(move.dest, move.stayer, 0);
            continue; // re-resolve: eviction may teleport payloads
        }
        TimeUs arrive = 0;
        performShuttle(move.mover, move.dest, 0, &arrive);
        ++result_.metrics.counts.shuttles;
    }
    emitter_->emitMs(g.q0, g.q1, 0, false);
}

void
Scheduler::evictFrom(TrapId dest, IonId keep, TimeUs ready)
{
    // Victim: the ion whose payload is needed latest (unused payloads
    // first), never the gate partner we must keep.
    const ChainState &chain = state_.chain(dest);
    IonId victim = kInvalidId;
    size_t best_next = 0;
    for (IonId ion : chain.ions) {
        if (ion == keep)
            continue;
        const size_t next = nextGateIndex(state_.payloadOf(ion));
        if (victim == kInvalidId || next > best_next) {
            victim = ion;
            best_next = next;
        }
    }
    panicUnless(victim != kInvalidId, "no evictable ion in full trap");

    const TrapId refuge = router_.evictionTarget(state_, dest, dest);
    TimeUs done = 0;
    performShuttle(victim, refuge, ready, &done);
    ++result_.metrics.counts.evictions;
    ++result_.metrics.counts.shuttles;
}

IonId
Scheduler::performShuttle(IonId ion, TrapId dest, TimeUs ready,
                          TimeUs *out_time)
{
    const TrapId src = state_.trapOf(ion);
    panicUnless(src != kInvalidId && src != dest,
                "shuttle needs a trapped ion and a distinct destination");
    panicUnless(state_.freeSlots(dest) > 0,
                "shuttle destination is full; caller must evict first");
    const Path &path = router_.pathBetween(src, dest);
    panicUnless(!path.steps.empty() &&
                path.steps.front().kind == PathStep::Kind::Edge &&
                path.steps.back().kind == PathStep::Kind::Edge,
                "routed path must start and end with an edge");

    TimeUs t = ready;

    // Reorder the payload to the source exit end and split it off.
    const EdgeId first_edge = path.steps.front().id;
    const ChainEnd exit_end = state_.portEnd(src, first_edge);
    ion = emitter_->reorderToEnd(ion, exit_end, t, &t);
    IonId flying = kInvalidId;
    t = emitter_->emitSplit(src, exit_end, t, &flying);
    panicUnless(flying == ion, "source split detached an unexpected ion");

    // Walk the path.
    for (size_t i = 0; i < path.steps.size(); ++i) {
        const PathStep &step = path.steps[i];
        switch (step.kind) {
          case PathStep::Kind::Edge:
            t = emitter_->emitMove(step.id, flying, t);
            break;
          case PathStep::Kind::Junction:
            t = emitter_->emitJunction(step.id, flying, t);
            break;
          case PathStep::Kind::ThroughTrap: {
            const TrapId through = topo_.node(step.id).trapIndex;
            panicUnless(through != kInvalidId,
                        "through-trap step names a non-trap node");
            panicUnless(i > 0 && i + 1 < path.steps.size(),
                        "through-trap cannot begin or end a path");
            const EdgeId in_edge = path.steps[i - 1].id;
            const EdgeId out_edge = path.steps[i + 1].id;
            if (state_.chain(through).size() == 0) {
                t = emitter_->emitTransit(through, flying, t);
                break;
            }
            const ChainEnd entry = state_.portEnd(through, in_edge);
            const ChainEnd exit = state_.portEnd(through, out_edge);
            panicUnless(entry != exit,
                        "pass-through must cross the chain");
            t = emitter_->emitMerge(through, entry, flying, t);
            ++result_.metrics.counts.trapPassThroughs;
            IonId carrier =
                emitter_->reorderToEnd(flying, exit, t, &t);
            t = emitter_->emitSplit(through, exit, t, &flying);
            panicUnless(flying == carrier,
                        "pass-through split detached the wrong ion");
            break;
          }
        }
    }

    // Merge at the destination.
    const EdgeId last_edge = path.steps.back().id;
    const ChainEnd entry_end = state_.portEnd(dest, last_edge);
    t = emitter_->emitMerge(dest, entry_end, flying, t);
    *out_time = t;
    return flying;
}

} // namespace qccd
