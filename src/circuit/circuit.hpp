/**
 * @file
 * The circuit intermediate representation: a named, validated, flat gate
 * sequence over a fixed number of qubits (paper Fig. 2c).
 */

#ifndef QCCD_CIRCUIT_CIRCUIT_HPP
#define QCCD_CIRCUIT_CIRCUIT_HPP

#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qccd
{

/** A quantum program IR. */
class Circuit
{
  public:
    /**
     * @param num_qubits number of program qubits (>= 1)
     * @param name human-readable circuit name
     */
    explicit Circuit(int num_qubits, std::string name = "circuit");

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append a gate; validates operand ranges. */
    void add(const Gate &gate);

    /** Convenience builders (validate like add). @{ */
    void h(QubitId q) { add(Gate::one(Op::H, q)); }
    void x(QubitId q) { add(Gate::one(Op::X, q)); }
    void z(QubitId q) { add(Gate::one(Op::Z, q)); }
    void t(QubitId q) { add(Gate::one(Op::T, q)); }
    void tdg(QubitId q) { add(Gate::one(Op::Tdg, q)); }
    void rx(QubitId q, double a) { add(Gate::one(Op::RX, q, a)); }
    void ry(QubitId q, double a) { add(Gate::one(Op::RY, q, a)); }
    void rz(QubitId q, double a) { add(Gate::one(Op::RZ, q, a)); }
    void cx(QubitId c, QubitId t) { add(Gate::two(Op::CX, c, t)); }
    void cz(QubitId a, QubitId b) { add(Gate::two(Op::CZ, a, b)); }
    void cphase(QubitId a, QubitId b, double ang)
    { add(Gate::two(Op::CPhase, a, b, ang)); }
    void ms(QubitId a, QubitId b, double ang = 0)
    { add(Gate::two(Op::MS, a, b, ang)); }
    void swap(QubitId a, QubitId b) { add(Gate::two(Op::Swap, a, b)); }
    void measure(QubitId q) { add(Gate::measure(q)); }
    /** @} */

    /** Measure every qubit, in index order. */
    void measureAll();

    const std::vector<Gate> &gates() const { return gates_; }
    size_t size() const { return gates_.size(); }
    const Gate &gate(size_t i) const { return gates_[i]; }

  private:
    int numQubits_;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace qccd

#endif // QCCD_CIRCUIT_CIRCUIT_HPP
