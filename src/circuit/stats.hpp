/**
 * @file
 * Static circuit statistics: gate counts, logical depth, and the
 * interaction-distance histogram used to characterize communication
 * patterns (paper Table II's "Communication Pattern" column).
 */

#ifndef QCCD_CIRCUIT_STATS_HPP
#define QCCD_CIRCUIT_STATS_HPP

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qccd
{

/** Aggregate static properties of a circuit. */
struct CircuitStats
{
    int numQubits = 0;
    int oneQubitGates = 0;
    int twoQubitGates = 0;
    int measurements = 0;

    /** Logical depth counting every non-barrier op as one level. */
    int depth = 0;

    /** Histogram of |q0 - q1| over two-qubit gates (index = distance). */
    std::vector<int> interactionDistance;

    /** Mean |q0 - q1| over two-qubit gates (0 when none). */
    double meanInteractionDistance = 0;

    /** Max |q0 - q1| over two-qubit gates (0 when none). */
    int maxInteractionDistance = 0;

    /**
     * Communication pattern label derived from the histogram, mirroring
     * Table II's vocabulary: "nearest neighbor", "short range",
     * "short and long-range" or "all distances".
     */
    std::string patternLabel() const;
};

/** Compute statistics for @p circuit. */
CircuitStats computeStats(const Circuit &circuit);

} // namespace qccd

#endif // QCCD_CIRCUIT_STATS_HPP
