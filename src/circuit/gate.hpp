/**
 * @file
 * Gate vocabulary for the QCCDSim circuit IR.
 *
 * The IR is a flat gate sequence with data dependencies only (quantum
 * programs have no control dependencies after full unrolling, paper
 * Section VI). Gates are either one-qubit rotations/Cliffords, two-qubit
 * entangling gates, or measurements. The native trapped-ion basis is
 * {one-qubit rotations, MS}; decompose.hpp lowers everything else.
 */

#ifndef QCCD_CIRCUIT_GATE_HPP
#define QCCD_CIRCUIT_GATE_HPP

#include <string>

#include "common/types.hpp"

namespace qccd
{

/** Operation names understood by the IR. */
enum class Op
{
    // One-qubit gates.
    H, X, Y, Z, S, Sdg, T, Tdg, RX, RY, RZ,
    // Two-qubit gates.
    CX, CZ, CPhase, MS, Swap,
    // Non-unitary.
    Measure,
    Barrier
};

/** Lowercase OpenQASM-style mnemonic ("cx", "rz", "ms", ...). */
std::string opName(Op op);

/** True if @p op is a two-qubit gate. */
constexpr bool
isTwoQubit(Op op)
{
    switch (op) {
      case Op::CX:
      case Op::CZ:
      case Op::CPhase:
      case Op::MS:
      case Op::Swap:
        return true;
      default:
        return false;
    }
}

/** Number of qubit operands of @p op (Barrier reports 0). */
constexpr int
opArity(Op op)
{
    if (op == Op::Barrier)
        return 0;
    return isTwoQubit(op) ? 2 : 1;
}

/** True if @p op takes an angle parameter (RX/RY/RZ/CPhase/MS). */
constexpr bool
opHasParam(Op op)
{
    switch (op) {
      case Op::RX:
      case Op::RY:
      case Op::RZ:
      case Op::CPhase:
      case Op::MS:
        return true;
      default:
        return false;
    }
}

/** True if @p op is native to the QCCD trap ({1q, MS, Measure}). */
constexpr bool
isNative(Op op)
{
    if (op == Op::MS || op == Op::Measure)
        return true;
    return !isTwoQubit(op) && op != Op::Barrier;
}

/** One gate of the IR. */
struct Gate
{
    Op op = Op::Barrier;
    QubitId q0 = kInvalidId; ///< first operand
    QubitId q1 = kInvalidId; ///< second operand (two-qubit gates only)
    double param = 0;        ///< rotation angle where applicable

    /** Make a one-qubit gate. */
    static Gate one(Op op, QubitId q, double param = 0);

    /** Make a two-qubit gate. */
    static Gate two(Op op, QubitId a, QubitId b, double param = 0);

    /** Make a measurement. */
    static Gate measure(QubitId q);

    bool isTwoQubit() const { return qccd::isTwoQubit(op); }
    bool isMeasure() const { return op == Op::Measure; }
    bool isOneQubit() const { return opArity(op) == 1 && op != Op::Measure; }

    /** "cx q3, q7" style rendering for diagnostics. */
    std::string toString() const;
};

} // namespace qccd

#endif // QCCD_CIRCUIT_GATE_HPP
