#include "circuit/decompose.hpp"

#include <numbers>

#include "common/error.hpp"

namespace qccd
{

namespace
{

constexpr double kPi = std::numbers::pi;

/**
 * Emit the ion-trap CX construction: one MS core conjugated by
 * single-qubit rotations (Maslov 2017, circuit 5).
 */
void
emitCx(Circuit &out, QubitId control, QubitId target)
{
    out.ry(control, kPi / 2);
    out.ms(control, target, kPi / 4);
    out.rx(control, -kPi / 2);
    out.rx(target, -kPi / 2);
    out.ry(control, -kPi / 2);
}

/** CZ = H(target) CX H(target). */
void
emitCz(Circuit &out, QubitId a, QubitId b)
{
    out.h(b);
    emitCx(out, a, b);
    out.h(b);
}

/**
 * Controlled-phase via two CX cores and RZ rotations (the textbook
 * two-CNOT construction).
 */
void
emitCPhase(Circuit &out, QubitId a, QubitId b, double angle)
{
    out.rz(a, angle / 2);
    emitCx(out, a, b);
    out.rz(b, -angle / 2);
    emitCx(out, a, b);
    out.rz(b, angle / 2);
}

/** SWAP via three CX cores. */
void
emitSwap(Circuit &out, QubitId a, QubitId b)
{
    emitCx(out, a, b);
    emitCx(out, b, a);
    emitCx(out, a, b);
}

} // namespace

int
msCostOf(Op op)
{
    switch (op) {
      case Op::MS: return 1;
      case Op::CX: return 1;
      case Op::CZ: return 1;
      case Op::CPhase: return 2;
      case Op::Swap: return 3;
      default: return 0;
    }
}

Circuit
decomposeToNative(const Circuit &input)
{
    Circuit out(input.numQubits(), input.name());
    for (const Gate &g : input.gates()) {
        if (g.op == Op::Barrier)
            continue;
        if (isNative(g.op)) {
            out.add(g);
            continue;
        }
        switch (g.op) {
          case Op::CX:
            emitCx(out, g.q0, g.q1);
            break;
          case Op::CZ:
            emitCz(out, g.q0, g.q1);
            break;
          case Op::CPhase:
            emitCPhase(out, g.q0, g.q1, g.param);
            break;
          case Op::Swap:
            emitSwap(out, g.q0, g.q1);
            break;
          default:
            throw InternalError("no decomposition for op " +
                                opName(g.op));
        }
    }
    return out;
}

} // namespace qccd
