#include "circuit/circuit.hpp"

#include "common/error.hpp"

namespace qccd
{

Circuit::Circuit(int num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    fatalUnless(num_qubits >= 1, "circuit needs at least one qubit");
}

void
Circuit::add(const Gate &gate)
{
    const int arity = opArity(gate.op);
    if (arity >= 1) {
        fatalUnless(gate.q0 >= 0 && gate.q0 < numQubits_,
                    "gate operand q0 out of range in " + gate.toString());
    }
    if (arity == 2) {
        fatalUnless(gate.q1 >= 0 && gate.q1 < numQubits_,
                    "gate operand q1 out of range in " + gate.toString());
        fatalUnless(gate.q0 != gate.q1,
                    "two-qubit gate operands must differ in " +
                    gate.toString());
    }
    gates_.push_back(gate);
}

void
Circuit::measureAll()
{
    for (QubitId q = 0; q < numQubits_; ++q)
        measure(q);
}

} // namespace qccd
