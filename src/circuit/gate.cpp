#include "circuit/gate.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qccd
{

std::string
opName(Op op)
{
    switch (op) {
      case Op::H: return "h";
      case Op::X: return "x";
      case Op::Y: return "y";
      case Op::Z: return "z";
      case Op::S: return "s";
      case Op::Sdg: return "sdg";
      case Op::T: return "t";
      case Op::Tdg: return "tdg";
      case Op::RX: return "rx";
      case Op::RY: return "ry";
      case Op::RZ: return "rz";
      case Op::CX: return "cx";
      case Op::CZ: return "cz";
      case Op::CPhase: return "cphase";
      case Op::MS: return "ms";
      case Op::Swap: return "swap";
      case Op::Measure: return "measure";
      case Op::Barrier: return "barrier";
    }
    throw InternalError("unknown Op");
}

Gate
Gate::one(Op op, QubitId q, double param)
{
    panicUnless(opArity(op) == 1 && op != Op::Measure,
                "Gate::one requires a one-qubit unitary op");
    Gate g;
    g.op = op;
    g.q0 = q;
    g.param = param;
    return g;
}

Gate
Gate::two(Op op, QubitId a, QubitId b, double param)
{
    panicUnless(qccd::isTwoQubit(op), "Gate::two requires a two-qubit op");
    panicUnless(a != b, "two-qubit gate operands must differ");
    Gate g;
    g.op = op;
    g.q0 = a;
    g.q1 = b;
    g.param = param;
    return g;
}

Gate
Gate::measure(QubitId q)
{
    Gate g;
    g.op = Op::Measure;
    g.q0 = q;
    return g;
}

std::string
Gate::toString() const
{
    std::ostringstream out;
    out << opName(op);
    if (opHasParam(op))
        out << "(" << param << ")";
    if (opArity(op) >= 1)
        out << " q" << q0;
    if (opArity(op) == 2)
        out << ", q" << q1;
    return out.str();
}

} // namespace qccd
