/**
 * @file
 * Lowering from the general IR gate set to the native trapped-ion basis
 * {one-qubit rotations, MS, measure}.
 *
 * Decompositions follow the standard ion-trap constructions (Maslov
 * 2017): CX and CZ each lower to one MS gate plus single-qubit
 * rotations; CPhase lowers to two MS-layer equivalents (two CX-like MS
 * cores plus rotations), which is how the paper's QFT arrives at
 * 64*63 = 4032 two-qubit gates; SWAP lowers to three MS cores.
 */

#ifndef QCCD_CIRCUIT_DECOMPOSE_HPP
#define QCCD_CIRCUIT_DECOMPOSE_HPP

#include "circuit/circuit.hpp"

namespace qccd
{

/**
 * Return a circuit equivalent to @p input using only native ops.
 *
 * Barriers are dropped; native gates pass through unchanged.
 */
Circuit decomposeToNative(const Circuit &input);

/** Number of MS gates the decomposition emits for one @p op. */
int msCostOf(Op op);

} // namespace qccd

#endif // QCCD_CIRCUIT_DECOMPOSE_HPP
