#include "circuit/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qccd
{

std::string
CircuitStats::patternLabel() const
{
    if (twoQubitGates == 0)
        return "no two-qubit gates";
    const double span = std::max(numQubits - 1, 1);
    const double mean_frac = meanInteractionDistance / span;
    const double max_frac = maxInteractionDistance / span;
    if (maxInteractionDistance <= 1)
        return "nearest neighbor";
    // A circuit touching nearly every distance with a large mean is
    // all-to-all-like (QFT); long max but small mean is mixed.
    if (mean_frac > 0.25 && max_frac > 0.9)
        return "all distances";
    if (max_frac > 0.5)
        return "short and long-range";
    return "short range";
}

CircuitStats
computeStats(const Circuit &circuit)
{
    CircuitStats stats;
    stats.numQubits = circuit.numQubits();
    stats.interactionDistance.assign(
        std::max(circuit.numQubits(), 1), 0);

    std::vector<int> level(circuit.numQubits(), 0);
    long distance_sum = 0;

    for (const Gate &g : circuit.gates()) {
        if (g.op == Op::Barrier)
            continue;
        if (g.isTwoQubit()) {
            ++stats.twoQubitGates;
            const int d = std::abs(g.q0 - g.q1);
            ++stats.interactionDistance[d];
            distance_sum += d;
            stats.maxInteractionDistance =
                std::max(stats.maxInteractionDistance, d);
            const int lvl = std::max(level[g.q0], level[g.q1]) + 1;
            level[g.q0] = lvl;
            level[g.q1] = lvl;
        } else {
            if (g.isMeasure())
                ++stats.measurements;
            else
                ++stats.oneQubitGates;
            ++level[g.q0];
        }
    }

    stats.depth = *std::max_element(level.begin(), level.end());
    if (stats.twoQubitGates > 0) {
        stats.meanInteractionDistance =
            static_cast<double>(distance_sum) / stats.twoQubitGates;
    }
    return stats;
}

} // namespace qccd
