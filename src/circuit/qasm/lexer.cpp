#include "circuit/qasm/lexer.hpp"

#include <cctype>
#include <unordered_set>

#include "common/error.hpp"

namespace qccd::qasm
{

namespace
{

const std::unordered_set<std::string> kKeywords = {
    "OPENQASM", "include", "qreg", "creg", "gate", "opaque", "measure",
    "barrier", "reset", "if",
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentBody(char c)
{
    return isIdentStart(c) ||
           std::isdigit(static_cast<unsigned char>(c)) != 0;
}

} // namespace

std::string
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Keyword: return "keyword";
      case TokenKind::Integer: return "integer";
      case TokenKind::Real: return "real";
      case TokenKind::Pi: return "pi";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::Comma: return "','";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Arrow: return "'->'";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::StringLit: return "string";
      case TokenKind::EndOfFile: return "end of file";
    }
    throw InternalError("unknown TokenKind");
}

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    int line = 1;
    int col = 1;
    size_t i = 0;
    const size_t n = source.size();

    auto make = [&](TokenKind kind, std::string text) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = line;
        t.column = col;
        return t;
    };
    auto advance = [&](size_t count) {
        for (size_t k = 0; k < count && i < n; ++k, ++i) {
            if (source[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
    };

    while (i < n) {
        const char c = source[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                advance(1);
            continue;
        }
        if (isIdentStart(c)) {
            size_t j = i;
            while (j < n && isIdentBody(source[j]))
                ++j;
            std::string word = source.substr(i, j - i);
            TokenKind kind = TokenKind::Identifier;
            if (kKeywords.count(word))
                kind = TokenKind::Keyword;
            else if (word == "pi")
                kind = TokenKind::Pi;
            tokens.push_back(make(kind, word));
            advance(j - i);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            size_t j = i;
            bool real = false;
            while (j < n) {
                const char d = source[j];
                if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
                    ++j;
                } else if (d == '.' || d == 'e' || d == 'E') {
                    real = true;
                    ++j;
                    if (j < n && (source[j] == '+' || source[j] == '-') &&
                        (d == 'e' || d == 'E'))
                        ++j;
                } else {
                    break;
                }
            }
            std::string text = source.substr(i, j - i);
            Token t = make(real ? TokenKind::Real : TokenKind::Integer,
                           text);
            t.numValue = std::stod(text);
            tokens.push_back(t);
            advance(j - i);
            continue;
        }
        if (c == '"') {
            size_t j = i + 1;
            while (j < n && source[j] != '"')
                ++j;
            fatalUnless(j < n, "unterminated string literal at line " +
                        std::to_string(line));
            tokens.push_back(make(TokenKind::StringLit,
                                  source.substr(i + 1, j - i - 1)));
            advance(j - i + 1);
            continue;
        }
        if (c == '-' && i + 1 < n && source[i + 1] == '>') {
            tokens.push_back(make(TokenKind::Arrow, "->"));
            advance(2);
            continue;
        }
        TokenKind kind;
        switch (c) {
          case '(': kind = TokenKind::LParen; break;
          case ')': kind = TokenKind::RParen; break;
          case '[': kind = TokenKind::LBracket; break;
          case ']': kind = TokenKind::RBracket; break;
          case '{': kind = TokenKind::LBrace; break;
          case '}': kind = TokenKind::RBrace; break;
          case ',': kind = TokenKind::Comma; break;
          case ';': kind = TokenKind::Semicolon; break;
          case '+': kind = TokenKind::Plus; break;
          case '-': kind = TokenKind::Minus; break;
          case '*': kind = TokenKind::Star; break;
          case '/': kind = TokenKind::Slash; break;
          default:
            throw ConfigError("illegal character '" + std::string(1, c) +
                              "' at line " + std::to_string(line) +
                              ", column " + std::to_string(col));
        }
        tokens.push_back(make(kind, std::string(1, c)));
        advance(1);
    }

    tokens.push_back(make(TokenKind::EndOfFile, ""));
    return tokens;
}

} // namespace qccd::qasm
