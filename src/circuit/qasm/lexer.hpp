/**
 * @file
 * Tokenizer for the OpenQASM 2.0 subset QCCDSim accepts.
 *
 * The paper's toolflow exposes an OpenQASM interface to high-level
 * frontends (Section VIII-A); this lexer plus parser.hpp replace those
 * frontends offline. Supported lexemes: identifiers, keywords, integer
 * and real literals, `pi`, punctuation, operators (+ - * /), comments
 * (`//` to end of line) and the `OPENQASM 2.0;` header.
 */

#ifndef QCCD_CIRCUIT_QASM_LEXER_HPP
#define QCCD_CIRCUIT_QASM_LEXER_HPP

#include <string>
#include <vector>

namespace qccd::qasm
{

/** Token categories. */
enum class TokenKind
{
    Identifier,
    Keyword,    ///< OPENQASM, include, qreg, creg, gate, measure, barrier
    Integer,
    Real,
    Pi,
    LParen, RParen,
    LBracket, RBracket,
    LBrace, RBrace,
    Comma, Semicolon, Arrow,
    Plus, Minus, Star, Slash,
    StringLit,
    EndOfFile
};

/** One token with source position for diagnostics. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;
    double numValue = 0; ///< for Integer/Real
    int line = 0;
    int column = 0;
};

/**
 * Tokenize @p source.
 *
 * @throws ConfigError with line/column info on illegal characters.
 */
std::vector<Token> tokenize(const std::string &source);

/** Printable name of a token kind (for error messages). */
std::string tokenKindName(TokenKind kind);

} // namespace qccd::qasm

#endif // QCCD_CIRCUIT_QASM_LEXER_HPP
