#include "circuit/qasm/parser.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <numbers>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "circuit/qasm/lexer.hpp"
#include "common/error.hpp"

namespace qccd::qasm
{

namespace
{

/** A user-defined gate body statement (operands are parameter indices). */
struct MacroStmt
{
    std::string gateName;
    std::vector<int> qubitArgs;   ///< indices into the macro's qubit params
    std::vector<double> angles;   ///< already-evaluated angles
    bool isBarrier = false;
};

/** A parsed `gate` definition. */
struct MacroDef
{
    int numParams = 0; ///< angle parameters (must be literal at call site)
    int numQubits = 0;
    std::vector<MacroStmt> body;
};

/** One qubit register: base offset into the flat qubit index space. */
struct Register
{
    int offset = 0;
    int size = 0;
};

class Parser
{
  public:
    Parser(const std::string &source, const std::string &name)
        : tokens_(tokenize(source)), circuitName_(name) {}

    Circuit run();

  private:
    std::vector<Token> tokens_;
    size_t pos_ = 0;
    std::string circuitName_;
    std::map<std::string, Register> qregs_;
    std::map<std::string, Register> cregs_;
    std::unordered_map<std::string, MacroDef> macros_;
    int totalQubits_ = 0;

    const Token &peek() const { return tokens_[pos_]; }
    const Token &get() { return tokens_[pos_++]; }

    [[noreturn]] void fail(const std::string &msg) const
    {
        std::ostringstream out;
        out << "QASM parse error at line " << peek().line << ", column "
            << peek().column << ": " << msg;
        throw ConfigError(out.str());
    }

    Token expect(TokenKind kind)
    {
        if (peek().kind != kind) {
            fail("expected " + tokenKindName(kind) + ", found '" +
                 peek().text + "'");
        }
        return get();
    }

    bool accept(TokenKind kind)
    {
        if (peek().kind == kind) {
            get();
            return true;
        }
        return false;
    }

    void parseHeader();
    void parseQreg();
    void parseCreg();
    void parseGateDef();
    void parseBarrier(Circuit &out);
    void parseMeasure(Circuit &out);
    void parseApplication(Circuit &out, const std::string &gate_name);

    double parseAngle();
    double parseAngleTerm();
    double parseAngleFactor();

    /** Resolve `name` or `name[k]` to one or all qubits of a register. */
    std::vector<QubitId> parseQubitOperand();

    void applyGate(Circuit &out, const std::string &gate_name,
                   const std::vector<double> &angles,
                   const std::vector<QubitId> &qubits);
};

constexpr double kPi = std::numbers::pi;

/** Built-in gate table: name -> (angle params, qubit arity). */
const std::unordered_map<std::string, std::pair<int, int>> kBuiltins = {
    {"h", {0, 1}},   {"x", {0, 1}},   {"y", {0, 1}},   {"z", {0, 1}},
    {"s", {0, 1}},   {"sdg", {0, 1}}, {"t", {0, 1}},   {"tdg", {0, 1}},
    {"rx", {1, 1}},  {"ry", {1, 1}},  {"rz", {1, 1}},  {"u1", {1, 1}},
    {"cx", {0, 2}},  {"CX", {0, 2}},  {"cz", {0, 2}},  {"cp", {1, 2}},
    {"cu1", {1, 2}}, {"swap", {0, 2}}, {"rzz", {1, 2}}, {"ms", {1, 2}},
    {"rxx", {1, 2}},
};

Circuit
Parser::run()
{
    parseHeader();

    // First pass collects declarations and statements; the circuit can
    // only be sized once at least one qreg is seen, so statements are
    // deferred until the first gate application.
    std::optional<Circuit> circuit;
    auto ensureCircuit = [&]() -> Circuit & {
        if (!circuit) {
            fatalUnless(totalQubits_ > 0,
                        "QASM program uses gates before any qreg");
            circuit.emplace(totalQubits_, circuitName_);
        }
        return *circuit;
    };

    while (peek().kind != TokenKind::EndOfFile) {
        const Token &t = peek();
        if (t.kind == TokenKind::Keyword) {
            if (t.text == "qreg") {
                fatalUnless(!circuit,
                            "all qreg declarations must precede gates");
                parseQreg();
            } else if (t.text == "creg") {
                parseCreg();
            } else if (t.text == "include") {
                get();
                expect(TokenKind::StringLit);
                expect(TokenKind::Semicolon);
            } else if (t.text == "gate") {
                parseGateDef();
            } else if (t.text == "opaque") {
                // Skip to semicolon: opaque gates cannot be simulated.
                while (peek().kind != TokenKind::Semicolon &&
                       peek().kind != TokenKind::EndOfFile)
                    get();
                expect(TokenKind::Semicolon);
            } else if (t.text == "barrier") {
                parseBarrier(ensureCircuit());
            } else if (t.text == "measure") {
                parseMeasure(ensureCircuit());
            } else if (t.text == "reset") {
                // Reset is not modeled; consume the statement.
                while (peek().kind != TokenKind::Semicolon &&
                       peek().kind != TokenKind::EndOfFile)
                    get();
                expect(TokenKind::Semicolon);
            } else if (t.text == "if") {
                fail("classical control ('if') is not supported");
            } else {
                fail("unexpected keyword '" + t.text + "'");
            }
        } else if (t.kind == TokenKind::Identifier) {
            const std::string name = get().text;
            parseApplication(ensureCircuit(), name);
        } else {
            fail("unexpected token '" + t.text + "'");
        }
    }

    fatalUnless(circuit.has_value() || totalQubits_ > 0,
                "QASM program declares no qubits");
    if (!circuit)
        circuit.emplace(totalQubits_, circuitName_);
    return *circuit;
}

void
Parser::parseHeader()
{
    if (peek().kind == TokenKind::Keyword && peek().text == "OPENQASM") {
        get();
        const Token version = get();
        fatalUnless(version.kind == TokenKind::Real ||
                    version.kind == TokenKind::Integer,
                    "OPENQASM header needs a version number");
        expect(TokenKind::Semicolon);
    }
}

void
Parser::parseQreg()
{
    expect(TokenKind::Keyword); // qreg
    const std::string name = expect(TokenKind::Identifier).text;
    expect(TokenKind::LBracket);
    const Token size = expect(TokenKind::Integer);
    expect(TokenKind::RBracket);
    expect(TokenKind::Semicolon);
    fatalUnless(!qregs_.count(name), "duplicate qreg '" + name + "'");
    const int n = static_cast<int>(size.numValue);
    fatalUnless(n > 0, "qreg '" + name + "' must have positive size");
    qregs_[name] = {totalQubits_, n};
    totalQubits_ += n;
}

void
Parser::parseCreg()
{
    expect(TokenKind::Keyword); // creg
    const std::string name = expect(TokenKind::Identifier).text;
    expect(TokenKind::LBracket);
    const Token size = expect(TokenKind::Integer);
    expect(TokenKind::RBracket);
    expect(TokenKind::Semicolon);
    fatalUnless(!cregs_.count(name), "duplicate creg '" + name + "'");
    cregs_[name] = {0, static_cast<int>(size.numValue)};
}

void
Parser::parseGateDef()
{
    expect(TokenKind::Keyword); // gate
    const std::string name = expect(TokenKind::Identifier).text;
    MacroDef def;

    std::vector<std::string> param_names;
    if (accept(TokenKind::LParen)) {
        if (peek().kind != TokenKind::RParen) {
            param_names.push_back(expect(TokenKind::Identifier).text);
            while (accept(TokenKind::Comma))
                param_names.push_back(expect(TokenKind::Identifier).text);
        }
        expect(TokenKind::RParen);
    }
    def.numParams = static_cast<int>(param_names.size());
    fatalUnless(def.numParams == 0,
                "parameterized user gates are not supported (gate '" +
                name + "'); inline the angles instead");

    std::vector<std::string> qubit_names;
    qubit_names.push_back(expect(TokenKind::Identifier).text);
    while (accept(TokenKind::Comma))
        qubit_names.push_back(expect(TokenKind::Identifier).text);
    def.numQubits = static_cast<int>(qubit_names.size());

    auto qubitIndex = [&](const std::string &q) {
        for (int i = 0; i < def.numQubits; ++i)
            if (qubit_names[i] == q)
                return i;
        fail("unknown qubit parameter '" + q + "' in gate '" + name + "'");
    };

    expect(TokenKind::LBrace);
    while (!accept(TokenKind::RBrace)) {
        MacroStmt stmt;
        if (peek().kind == TokenKind::Keyword && peek().text == "barrier") {
            get();
            stmt.isBarrier = true;
            while (peek().kind != TokenKind::Semicolon)
                get();
            expect(TokenKind::Semicolon);
            def.body.push_back(stmt);
            continue;
        }
        stmt.gateName = expect(TokenKind::Identifier).text;
        if (accept(TokenKind::LParen)) {
            if (peek().kind != TokenKind::RParen) {
                stmt.angles.push_back(parseAngle());
                while (accept(TokenKind::Comma))
                    stmt.angles.push_back(parseAngle());
            }
            expect(TokenKind::RParen);
        }
        stmt.qubitArgs.push_back(
            qubitIndex(expect(TokenKind::Identifier).text));
        while (accept(TokenKind::Comma)) {
            stmt.qubitArgs.push_back(
                qubitIndex(expect(TokenKind::Identifier).text));
        }
        expect(TokenKind::Semicolon);
        def.body.push_back(stmt);
    }
    macros_[name] = std::move(def);
}

void
Parser::parseBarrier(Circuit &out)
{
    expect(TokenKind::Keyword); // barrier
    // Operands are irrelevant for the flat IR barrier.
    while (peek().kind != TokenKind::Semicolon &&
           peek().kind != TokenKind::EndOfFile)
        get();
    expect(TokenKind::Semicolon);
    Gate g;
    g.op = Op::Barrier;
    out.add(g);
}

void
Parser::parseMeasure(Circuit &out)
{
    expect(TokenKind::Keyword); // measure
    const std::vector<QubitId> qubits = parseQubitOperand();
    expect(TokenKind::Arrow);
    // Classical target: `name` or `name[k]`; recorded but unused.
    expect(TokenKind::Identifier);
    if (accept(TokenKind::LBracket)) {
        expect(TokenKind::Integer);
        expect(TokenKind::RBracket);
    }
    expect(TokenKind::Semicolon);
    for (QubitId q : qubits)
        out.measure(q);
}

std::vector<QubitId>
Parser::parseQubitOperand()
{
    const std::string name = expect(TokenKind::Identifier).text;
    const auto it = qregs_.find(name);
    if (it == qregs_.end())
        fail("unknown qreg '" + name + "'");
    const Register &reg = it->second;
    if (accept(TokenKind::LBracket)) {
        const Token idx = expect(TokenKind::Integer);
        expect(TokenKind::RBracket);
        const int k = static_cast<int>(idx.numValue);
        if (k < 0 || k >= reg.size)
            fail("index " + std::to_string(k) + " out of range for qreg '" +
                 name + "'");
        return {reg.offset + k};
    }
    std::vector<QubitId> all(reg.size);
    for (int k = 0; k < reg.size; ++k)
        all[k] = reg.offset + k;
    return all;
}

double
Parser::parseAngle()
{
    double value = parseAngleTerm();
    while (true) {
        if (accept(TokenKind::Plus))
            value += parseAngleTerm();
        else if (accept(TokenKind::Minus))
            value -= parseAngleTerm();
        else
            return value;
    }
}

double
Parser::parseAngleTerm()
{
    double value = parseAngleFactor();
    while (true) {
        if (accept(TokenKind::Star)) {
            value *= parseAngleFactor();
        } else if (accept(TokenKind::Slash)) {
            const double d = parseAngleFactor();
            if (d == 0)
                fail("division by zero in angle expression");
            value /= d;
        } else {
            return value;
        }
    }
}

double
Parser::parseAngleFactor()
{
    if (accept(TokenKind::Minus))
        return -parseAngleFactor();
    if (accept(TokenKind::Plus))
        return parseAngleFactor();
    if (accept(TokenKind::LParen)) {
        const double v = parseAngle();
        expect(TokenKind::RParen);
        return v;
    }
    if (peek().kind == TokenKind::Pi) {
        get();
        return kPi;
    }
    if (peek().kind == TokenKind::Integer ||
        peek().kind == TokenKind::Real)
        return get().numValue;
    fail("expected a number, 'pi' or '(' in angle expression");
}

void
Parser::applyGate(Circuit &out, const std::string &gate_name,
                  const std::vector<double> &angles,
                  const std::vector<QubitId> &qubits)
{
    const auto macro = macros_.find(gate_name);
    if (macro != macros_.end()) {
        const MacroDef &def = macro->second;
        if (static_cast<int>(qubits.size()) != def.numQubits)
            fail("gate '" + gate_name + "' expects " +
                 std::to_string(def.numQubits) + " qubits");
        for (const MacroStmt &stmt : def.body) {
            if (stmt.isBarrier)
                continue;
            std::vector<QubitId> mapped;
            mapped.reserve(stmt.qubitArgs.size());
            for (int arg : stmt.qubitArgs)
                mapped.push_back(qubits[arg]);
            applyGate(out, stmt.gateName, stmt.angles, mapped);
        }
        return;
    }

    const auto builtin = kBuiltins.find(gate_name);
    if (builtin == kBuiltins.end())
        fail("unknown gate '" + gate_name + "'");
    const auto [want_angles, want_qubits] = builtin->second;
    if (static_cast<int>(angles.size()) != want_angles)
        fail("gate '" + gate_name + "' expects " +
             std::to_string(want_angles) + " angle parameter(s)");
    if (static_cast<int>(qubits.size()) != want_qubits)
        fail("gate '" + gate_name + "' expects " +
             std::to_string(want_qubits) + " qubit(s)");

    const QubitId a = qubits[0];
    const QubitId b = want_qubits == 2 ? qubits[1] : kInvalidId;
    if (want_qubits == 2 && a == b)
        fail("gate '" + gate_name + "' applied to the same qubit twice");
    const double ang = want_angles == 1 ? angles[0] : 0.0;

    if (gate_name == "h") out.h(a);
    else if (gate_name == "x") out.x(a);
    else if (gate_name == "y") out.add(Gate::one(Op::Y, a));
    else if (gate_name == "z") out.z(a);
    else if (gate_name == "s") out.add(Gate::one(Op::S, a));
    else if (gate_name == "sdg") out.add(Gate::one(Op::Sdg, a));
    else if (gate_name == "t") out.t(a);
    else if (gate_name == "tdg") out.tdg(a);
    else if (gate_name == "rx") out.rx(a, ang);
    else if (gate_name == "ry") out.ry(a, ang);
    else if (gate_name == "rz" || gate_name == "u1") out.rz(a, ang);
    else if (gate_name == "cx" || gate_name == "CX") out.cx(a, b);
    else if (gate_name == "cz") out.cz(a, b);
    else if (gate_name == "cp" || gate_name == "cu1") out.cphase(a, b, ang);
    else if (gate_name == "swap") out.swap(a, b);
    else if (gate_name == "rzz") out.cphase(a, b, 2 * ang);
    else if (gate_name == "ms" || gate_name == "rxx") out.ms(a, b, ang);
    else
        throw InternalError("builtin gate table out of sync");
}

void
Parser::parseApplication(Circuit &out, const std::string &gate_name)
{
    std::vector<double> angles;
    if (accept(TokenKind::LParen)) {
        if (peek().kind != TokenKind::RParen) {
            angles.push_back(parseAngle());
            while (accept(TokenKind::Comma))
                angles.push_back(parseAngle());
        }
        expect(TokenKind::RParen);
    }

    std::vector<std::vector<QubitId>> operands;
    operands.push_back(parseQubitOperand());
    while (accept(TokenKind::Comma))
        operands.push_back(parseQubitOperand());
    expect(TokenKind::Semicolon);

    // Whole-register operands broadcast (standard OpenQASM semantics):
    // all register operands must have equal size; scalars repeat.
    size_t broadcast = 1;
    for (const auto &ops : operands) {
        if (ops.size() > 1) {
            if (broadcast == 1)
                broadcast = ops.size();
            else if (broadcast != ops.size())
                fail("mismatched register sizes in gate '" + gate_name +
                     "'");
        }
    }
    for (size_t k = 0; k < broadcast; ++k) {
        std::vector<QubitId> qubits;
        qubits.reserve(operands.size());
        for (const auto &ops : operands)
            qubits.push_back(ops.size() == 1 ? ops[0] : ops[k]);
        applyGate(out, gate_name, angles, qubits);
    }
}

} // namespace

Circuit
parse(const std::string &source, const std::string &name)
{
    Parser parser(source, name);
    return parser.run();
}

Circuit
parseFile(const std::string &path)
{
    std::ifstream in(path);
    fatalUnless(in.good(), "cannot open QASM file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string base = path;
    const size_t slash = base.find_last_of('/');
    if (slash != std::string::npos)
        base = base.substr(slash + 1);
    return parse(buf.str(), base);
}

} // namespace qccd::qasm
