/**
 * @file
 * Recursive-descent parser for the OpenQASM 2.0 subset QCCDSim accepts.
 *
 * Supported constructs:
 *  - `OPENQASM 2.0;` header and `include "qelib1.inc";` (include is a
 *    no-op: the qelib gates QCCDSim understands are built in);
 *  - `qreg name[n];` (multiple registers concatenate into one qubit
 *    index space) and `creg name[n];` (recorded, otherwise ignored);
 *  - applications of the built-in gates h, x, y, z, s, sdg, t, tdg,
 *    rx(.), ry(.), rz(.), u1(.), cx, CX, cz, cp(.)/cu1(.), swap,
 *    rzz(.), ms(.)/rxx(.) with qubit or whole-register operands;
 *  - `measure q[i] -> c[j];` and `measure q -> c;`;
 *  - `barrier ...;` (kept as an IR barrier);
 *  - user-defined `gate` bodies are parsed and inlined (one level of
 *    expansion per definition, definitions may reference earlier ones).
 *
 * Angle expressions support +, -, *, /, unary minus, parentheses, `pi`,
 * and numeric literals.
 */

#ifndef QCCD_CIRCUIT_QASM_PARSER_HPP
#define QCCD_CIRCUIT_QASM_PARSER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace qccd::qasm
{

/**
 * Parse OpenQASM 2.0 source text into a Circuit.
 *
 * @param source QASM program text
 * @param name name to give the resulting circuit
 * @throws ConfigError with line info on syntax or semantic errors
 */
Circuit parse(const std::string &source, const std::string &name = "qasm");

/** Parse a QASM file from disk. @throws ConfigError if unreadable. */
Circuit parseFile(const std::string &path);

} // namespace qccd::qasm

#endif // QCCD_CIRCUIT_QASM_PARSER_HPP
