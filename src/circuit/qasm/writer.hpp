/**
 * @file
 * OpenQASM 2.0 emission for Circuit IR, the inverse of parser.hpp.
 *
 * Useful for exporting generated workloads to other toolchains and for
 * round-trip testing the parser.
 */

#ifndef QCCD_CIRCUIT_QASM_WRITER_HPP
#define QCCD_CIRCUIT_QASM_WRITER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace qccd::qasm
{

/**
 * Render @p circuit as OpenQASM 2.0 with a single qreg `q` and creg `c`.
 *
 * MS gates are emitted as `rxx`, CPhase as `cp`; both parse back to the
 * same IR ops.
 */
std::string write(const Circuit &circuit);

/** Write @p circuit to @p path. @throws ConfigError if unwritable. */
void writeFile(const Circuit &circuit, const std::string &path);

} // namespace qccd::qasm

#endif // QCCD_CIRCUIT_QASM_WRITER_HPP
