#include "circuit/qasm/writer.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qccd::qasm
{

namespace
{

std::string
formatAngle(double angle)
{
    std::ostringstream out;
    out.precision(17);
    out << angle;
    return out.str();
}

} // namespace

std::string
write(const Circuit &circuit)
{
    std::ostringstream out;
    out << "OPENQASM 2.0;\n";
    out << "include \"qelib1.inc\";\n";
    out << "// " << circuit.name() << "\n";
    out << "qreg q[" << circuit.numQubits() << "];\n";
    out << "creg c[" << circuit.numQubits() << "];\n";

    int next_clbit = 0;
    for (const Gate &g : circuit.gates()) {
        switch (g.op) {
          case Op::Barrier:
            out << "barrier q;\n";
            continue;
          case Op::Measure:
            out << "measure q[" << g.q0 << "] -> c[" << next_clbit++
                << "];\n";
            continue;
          case Op::MS:
            out << "rxx(" << formatAngle(g.param) << ") q[" << g.q0
                << "], q[" << g.q1 << "];\n";
            continue;
          case Op::CPhase:
            out << "cp(" << formatAngle(g.param) << ") q[" << g.q0
                << "], q[" << g.q1 << "];\n";
            continue;
          default:
            break;
        }
        out << opName(g.op);
        if (opHasParam(g.op))
            out << "(" << formatAngle(g.param) << ")";
        out << " q[" << g.q0 << "]";
        if (g.isTwoQubit())
            out << ", q[" << g.q1 << "]";
        out << ";\n";
    }
    return out.str();
}

void
writeFile(const Circuit &circuit, const std::string &path)
{
    std::ofstream out(path);
    fatalUnless(out.good(), "cannot write QASM file '" + path + "'");
    out << write(circuit);
    fatalUnless(out.good(), "error while writing QASM file '" + path + "'");
}

} // namespace qccd::qasm
