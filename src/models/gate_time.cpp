#include "models/gate_time.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qccd
{

std::string
gateImplName(GateImpl impl)
{
    switch (impl) {
      case GateImpl::AM1: return "AM1";
      case GateImpl::AM2: return "AM2";
      case GateImpl::PM: return "PM";
      case GateImpl::FM: return "FM";
    }
    throw InternalError("unknown GateImpl");
}

GateImpl
gateImplFromName(const std::string &name)
{
    if (name == "AM1") return GateImpl::AM1;
    if (name == "AM2") return GateImpl::AM2;
    if (name == "PM") return GateImpl::PM;
    if (name == "FM") return GateImpl::FM;
    throw ConfigError("unknown gate implementation '" + name +
                      "' (expected AM1, AM2, PM or FM)");
}

GateTimeModel::GateTimeModel(GateImpl impl, TimeUs one_qubit_us,
                             TimeUs measure_us, TimeUs floor_us)
    : impl_(impl), oneQubitUs_(one_qubit_us), measureUs_(measure_us),
      floorUs_(floor_us)
{
    fatalUnless(one_qubit_us > 0, "one-qubit gate time must be positive");
    fatalUnless(measure_us > 0, "measurement time must be positive");
    fatalUnless(floor_us > 0, "gate time floor must be positive");
}

TimeUs
GateTimeModel::twoQubit(int separation, int chain_length) const
{
    panicUnless(separation >= 1, "two-qubit gate needs separation >= 1");
    panicUnless(chain_length >= 2, "two-qubit gate needs chain length >= 2");
    panicUnless(separation < chain_length,
                "ion separation cannot exceed chain length - 1");

    const double d = separation;
    const double n = chain_length;
    TimeUs tau = 0;
    switch (impl_) {
      case GateImpl::AM1:
        tau = 100.0 * d - 22.0;
        break;
      case GateImpl::AM2:
        tau = 38.0 * d + 10.0;
        break;
      case GateImpl::PM:
        tau = 5.0 * d + 160.0;
        break;
      case GateImpl::FM:
        tau = std::max(13.33 * n - 54.0, 100.0);
        break;
    }
    return std::max(tau, floorUs_);
}

} // namespace qccd
