#include "models/params.hpp"

#include "common/error.hpp"

namespace qccd
{

std::string
reorderMethodName(ReorderMethod method)
{
    switch (method) {
      case ReorderMethod::GS: return "GS";
      case ReorderMethod::IS: return "IS";
    }
    throw InternalError("unknown ReorderMethod");
}

ReorderMethod
reorderMethodFromName(const std::string &name)
{
    if (name == "GS") return ReorderMethod::GS;
    if (name == "IS") return ReorderMethod::IS;
    throw ConfigError("unknown reorder method '" + name +
                      "' (expected GS or IS)");
}

GateTimeModel
HardwareParams::gateTimeModel() const
{
    return GateTimeModel(gateImpl, oneQubitUs, measureUs, twoQubitFloorUs);
}

HeatingModel
HardwareParams::heatingModel() const
{
    return HeatingModel(heatingK1, heatingK2);
}

FidelityModel
HardwareParams::fidelityModel() const
{
    return FidelityModel(gammaPerS, kappa, oneQubitError, measureError);
}

namespace
{

/** One named numeric parameter of HardwareParams. */
struct OverrideEntry
{
    const char *key;
    double HardwareParams::*doubleField = nullptr;
    int HardwareParams::*intField = nullptr;
};

/** TimeUs and Quanta are double typedefs, so one pointer type covers
 *  every non-integer parameter. */
const OverrideEntry kOverrides[] = {
    {"one_qubit_us", &HardwareParams::oneQubitUs, nullptr},
    {"measure_us", &HardwareParams::measureUs, nullptr},
    {"two_qubit_floor_us", &HardwareParams::twoQubitFloorUs, nullptr},
    {"heating_k1", &HardwareParams::heatingK1, nullptr},
    {"heating_k2", &HardwareParams::heatingK2, nullptr},
    {"gamma_per_s", &HardwareParams::gammaPerS, nullptr},
    {"kappa", &HardwareParams::kappa, nullptr},
    {"one_qubit_error", &HardwareParams::oneQubitError, nullptr},
    {"measure_error", &HardwareParams::measureError, nullptr},
    {"recool_factor", &HardwareParams::recoolFactor, nullptr},
    {"buffer_slots", nullptr, &HardwareParams::bufferSlots},
};

/** Shuttle timings live one struct deeper; map them separately. */
struct ShuttleEntry
{
    const char *key;
    TimeUs ShuttleTimeModel::*field;
};

const ShuttleEntry kShuttleOverrides[] = {
    {"move_per_segment_us", &ShuttleTimeModel::movePerSegment},
    {"split_us", &ShuttleTimeModel::split},
    {"merge_us", &ShuttleTimeModel::merge},
    {"y_junction_us", &ShuttleTimeModel::yJunction},
    {"x_junction_us", &ShuttleTimeModel::xJunction},
    {"ion_swap_rotation_us", &ShuttleTimeModel::ionSwapRotation},
};

} // namespace

void
applyHardwareOverride(HardwareParams &params, const std::string &key,
                      double value)
{
    for (const OverrideEntry &entry : kOverrides) {
        if (key != entry.key)
            continue;
        if (entry.doubleField) {
            params.*entry.doubleField = value;
        } else {
            const int integral = static_cast<int>(value);
            fatalUnless(static_cast<double>(integral) == value,
                        "parameter '" + key +
                            "' takes an integer value");
            params.*entry.intField = integral;
        }
        return;
    }
    for (const ShuttleEntry &entry : kShuttleOverrides) {
        if (key == entry.key) {
            params.shuttle.*entry.field = value;
            return;
        }
    }
    std::string known;
    for (const std::string &k : hardwareOverrideKeys())
        known += (known.empty() ? "" : ", ") + k;
    throw ConfigError("unknown hardware parameter '" + key +
                      "' (known: " + known + ")");
}

std::vector<std::string>
hardwareOverrideKeys()
{
    std::vector<std::string> keys;
    for (const OverrideEntry &entry : kOverrides)
        keys.push_back(entry.key);
    for (const ShuttleEntry &entry : kShuttleOverrides)
        keys.push_back(entry.key);
    return keys;
}

void
HardwareParams::validate() const
{
    shuttle.validate();
    fatalUnless(bufferSlots >= 0, "buffer slots must be non-negative");
    fatalUnless(recoolFactor > 0 && recoolFactor <= 1.0,
                "recool factor must be in (0, 1]");
    // The model constructors validate their own parameters.
    gateTimeModel();
    heatingModel();
    fidelityModel();
}

} // namespace qccd
