#include "models/params.hpp"

#include "common/error.hpp"

namespace qccd
{

std::string
reorderMethodName(ReorderMethod method)
{
    switch (method) {
      case ReorderMethod::GS: return "GS";
      case ReorderMethod::IS: return "IS";
    }
    throw InternalError("unknown ReorderMethod");
}

ReorderMethod
reorderMethodFromName(const std::string &name)
{
    if (name == "GS") return ReorderMethod::GS;
    if (name == "IS") return ReorderMethod::IS;
    throw ConfigError("unknown reorder method '" + name +
                      "' (expected GS or IS)");
}

GateTimeModel
HardwareParams::gateTimeModel() const
{
    return GateTimeModel(gateImpl, oneQubitUs, measureUs, twoQubitFloorUs);
}

HeatingModel
HardwareParams::heatingModel() const
{
    return HeatingModel(heatingK1, heatingK2);
}

FidelityModel
HardwareParams::fidelityModel() const
{
    return FidelityModel(gammaPerS, kappa, oneQubitError, measureError);
}

void
HardwareParams::validate() const
{
    shuttle.validate();
    fatalUnless(bufferSlots >= 0, "buffer slots must be non-negative");
    fatalUnless(recoolFactor > 0 && recoolFactor <= 1.0,
                "recool factor must be in (0, 1]");
    // The model constructors validate their own parameters.
    gateTimeModel();
    heatingModel();
    fidelityModel();
}

} // namespace qccd
