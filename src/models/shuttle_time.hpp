/**
 * @file
 * Shuttling primitive durations (paper Table I) plus the physical ion-swap
 * rotation used by IS chain reordering (Kaufmann et al. 2017).
 */

#ifndef QCCD_MODELS_SHUTTLE_TIME_HPP
#define QCCD_MODELS_SHUTTLE_TIME_HPP

#include "common/types.hpp"

namespace qccd
{

/**
 * Durations of the primitive shuttling operations.
 *
 * Defaults are the experimental characterization values the paper adopts
 * (Gutierrez, Muller, Bermudez 2019): move through one segment 5 us,
 * split 80 us, merge 80 us, Y-junction 100 us, X-junction 120 us.
 * The 180-degree two-ion rotation used by physical ion swapping is not in
 * Table I; 50 us is assumed and documented in DESIGN.md.
 */
struct ShuttleTimeModel
{
    TimeUs movePerSegment = 5.0;  ///< linear transport across one segment
    TimeUs split = 80.0;          ///< split an ion off a chain
    TimeUs merge = 80.0;          ///< merge an ion into a chain
    TimeUs yJunction = 100.0;     ///< cross a 3-way junction
    TimeUs xJunction = 120.0;     ///< cross a 4-way junction
    TimeUs ionSwapRotation = 50.0; ///< 180-degree rotation for an IS hop

    /** Junction crossing time by junction degree (<= 3 -> Y, else X). */
    TimeUs junctionCrossing(int degree) const;

    /** Validate all durations are positive; throws ConfigError if not. */
    void validate() const;
};

} // namespace qccd

#endif // QCCD_MODELS_SHUTTLE_TIME_HPP
