/**
 * @file
 * Gate fidelity model (paper Section VII-C, Equation 1).
 *
 * The two-qubit MS gate fidelity is
 *
 *     F = 1 - Gamma*tau - A*(2*nbar + 1),      A = kappa * N / ln(N)
 *
 * where Gamma is the trap background heating error rate, tau the gate
 * duration, nbar the chain's motional energy in quanta, and N the chain
 * length. The second term models thermal laser-beam instabilities, which
 * is why it grows with chain length and chain temperature.
 *
 * Gamma and kappa are not stated numerically in the paper; the defaults
 * here are calibrated so the published result shapes reproduce (see
 * DESIGN.md Section 3 and EXPERIMENTS.md).
 */

#ifndef QCCD_MODELS_FIDELITY_HPP
#define QCCD_MODELS_FIDELITY_HPP

#include "common/types.hpp"

namespace qccd
{

/** Additive error decomposition of a single two-qubit gate. */
struct GateErrorBreakdown
{
    double background = 0; ///< Gamma * tau term
    double motional = 0;   ///< A * (2*nbar + 1) term

    /** Total gate error (sum of the terms, clamped to [0, 1]). */
    double total() const;

    /** Gate fidelity 1 - total(). */
    double fidelity() const { return 1.0 - total(); }
};

/** Evaluates Equation 1 plus constant 1q/measurement error rates. */
class FidelityModel
{
  public:
    /**
     * @param gamma_per_s background heating error rate, per second
     * @param kappa laser-instability prefactor of A = kappa*N/ln(N)
     * @param one_qubit_error constant single-qubit gate error
     * @param measure_error constant measurement error
     */
    explicit FidelityModel(double gamma_per_s = 1.0, double kappa = 5e-6,
                           double one_qubit_error = 3e-5,
                           double measure_error = 1e-3);

    /**
     * Error terms of one MS gate.
     *
     * @param tau_us gate duration in microseconds
     * @param chain_length number of ions in the chain (>= 2)
     * @param nbar chain motional energy in quanta
     */
    GateErrorBreakdown twoQubitError(TimeUs tau_us, int chain_length,
                                     Quanta nbar) const;

    /**
     * Like twoQubitError but with the laser-instability factor A given
     * directly instead of recomputed from the chain length. Passing
     * scaleFactorA(chain_length) reproduces twoQubitError bit-for-bit;
     * ModelTables uses this to substitute its memoized A.
     */
    GateErrorBreakdown twoQubitErrorWithScale(TimeUs tau_us,
                                              double scale_a,
                                              Quanta nbar) const;

    /** Fidelity of one MS gate (convenience over twoQubitError). */
    double twoQubitFidelity(TimeUs tau_us, int chain_length,
                            Quanta nbar) const;

    /** The laser-instability scale factor A for a chain of @p n ions. */
    double scaleFactorA(int n) const;

    double oneQubitFidelity() const { return 1.0 - oneQubitError_; }
    double measureFidelity() const { return 1.0 - measureError_; }

    double gammaPerSecond() const { return gammaPerS_; }
    double kappa() const { return kappa_; }

  private:
    double gammaPerS_;
    double kappa_;
    double oneQubitError_;
    double measureError_;
};

} // namespace qccd

#endif // QCCD_MODELS_FIDELITY_HPP
