#include "models/fidelity.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qccd
{

double
GateErrorBreakdown::total() const
{
    return std::clamp(background + motional, 0.0, 1.0);
}

FidelityModel::FidelityModel(double gamma_per_s, double kappa,
                             double one_qubit_error, double measure_error)
    : gammaPerS_(gamma_per_s), kappa_(kappa),
      oneQubitError_(one_qubit_error), measureError_(measure_error)
{
    fatalUnless(gamma_per_s >= 0, "background rate must be non-negative");
    fatalUnless(kappa >= 0, "kappa must be non-negative");
    fatalUnless(one_qubit_error >= 0 && one_qubit_error < 1,
                "one-qubit error must be in [0, 1)");
    fatalUnless(measure_error >= 0 && measure_error < 1,
                "measurement error must be in [0, 1)");
}

double
FidelityModel::scaleFactorA(int n) const
{
    panicUnless(n >= 2, "scale factor A needs chain length >= 2");
    return kappa_ * n / std::log(static_cast<double>(n));
}

GateErrorBreakdown
FidelityModel::twoQubitError(TimeUs tau_us, int chain_length,
                             Quanta nbar) const
{
    return twoQubitErrorWithScale(tau_us, scaleFactorA(chain_length),
                                  nbar);
}

GateErrorBreakdown
FidelityModel::twoQubitErrorWithScale(TimeUs tau_us, double scale_a,
                                      Quanta nbar) const
{
    panicUnless(tau_us >= 0, "gate duration cannot be negative");
    panicUnless(nbar >= 0, "motional energy cannot be negative");
    GateErrorBreakdown err;
    err.background = gammaPerS_ * (tau_us / kSecondUs);
    err.motional = scale_a * (2.0 * nbar + 1.0);
    return err;
}

double
FidelityModel::twoQubitFidelity(TimeUs tau_us, int chain_length,
                                Quanta nbar) const
{
    return twoQubitError(tau_us, chain_length, nbar).fidelity();
}

} // namespace qccd
