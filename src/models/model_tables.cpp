#include "models/model_tables.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "sim/metrics.hpp"

namespace qccd
{

namespace
{

/** log(max(f, kMinFidelity)), exactly as SimResult::noteOp computes. */
double
clampedLog(double fidelity)
{
    return std::log(std::max(fidelity, kMinFidelity));
}

} // namespace

ModelTables::ModelTables(const HardwareParams &hw, int max_chain)
    : gateTime_(hw.gateTimeModel()), fidelity_(hw.fidelityModel()),
      heating_(hw.heatingModel()), maxChain_(std::max(max_chain, 1)),
      twoQubitUs_(static_cast<size_t>(maxChain_ + 1) * maxChain_, 0.0),
      scaleA_(maxChain_ + 1, 0.0),
      logOneQubit_(clampedLog(fidelity_.oneQubitFidelity())),
      logMeasure_(clampedLog(fidelity_.measureFidelity())),
      logUnit_(clampedLog(1.0))
{
    for (int n = 2; n <= maxChain_; ++n) {
        scaleA_[n] = fidelity_.scaleFactorA(n);
        for (int d = 1; d < n; ++d)
            twoQubitUs_[static_cast<size_t>(n) * maxChain_ + d] =
                gateTime_.twoQubit(d, n);
    }
}

std::shared_ptr<const ModelTables>
ModelTables::shared(const HardwareParams &hw, int max_chain)
{
    using Key = std::tuple<int, TimeUs, TimeUs, TimeUs, Quanta, Quanta,
                           double, double, double, double, int>;
    const Key key{static_cast<int>(hw.gateImpl), hw.oneQubitUs,
                  hw.measureUs, hw.twoQubitFloorUs, hw.heatingK1,
                  hw.heatingK2, hw.gammaPerS, hw.kappa,
                  hw.oneQubitError, hw.measureError, max_chain};

    static std::mutex mutex;
    static std::map<Key, std::shared_ptr<const ModelTables>> cache;

    const std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache
                 .emplace(key,
                          std::make_shared<const ModelTables>(hw,
                                                              max_chain))
                 .first;
    return it->second;
}

} // namespace qccd
