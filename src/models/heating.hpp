/**
 * @file
 * Motional-mode heating model (paper Section VII-B).
 *
 * Every ion chain is treated as a quantum oscillator whose energy, in
 * units of motional quanta, starts at zero and only grows as shuttling
 * operations act on it:
 *
 *  - split: the parent energy divides proportionally to the sub-chain ion
 *    counts (conservation of energy), then each sub-chain gains k1;
 *  - merge: the merged chain holds the sum of both energies plus k1
 *    (the cost of stopping the chains and preventing collisions);
 *  - move: the transported chain gains k2 per segment traversed;
 *  - junction crossing: gains k2 (assumption, see DESIGN.md).
 *
 * Defaults k1 = 0.1 and k2 = 0.01 are the paper's values: one order of
 * magnitude below the per-operation heating Honeywell measured on its
 * 4-qubit QCCD system, anticipating the improvement needed for 50-100
 * qubit devices.
 */

#ifndef QCCD_MODELS_HEATING_HPP
#define QCCD_MODELS_HEATING_HPP

#include <utility>

#include "common/types.hpp"

namespace qccd
{

/** Per-operation motional energy bookkeeping rules. */
class HeatingModel
{
  public:
    /**
     * @param k1 quanta added to each chain by a split or merge
     * @param k2 quanta added per segment (and per junction) moved
     */
    explicit HeatingModel(Quanta k1 = 0.1, Quanta k2 = 0.01);

    /**
     * Energies of the two sub-chains after splitting a parent chain.
     *
     * @param parent_energy energy of the chain before the split
     * @param ions_a ions in the first sub-chain (>= 1)
     * @param ions_b ions in the second sub-chain (>= 1)
     * @return pair of sub-chain energies, in the same order
     */
    std::pair<Quanta, Quanta> afterSplit(Quanta parent_energy, int ions_a,
                                         int ions_b) const;

    /** Energy of the chain formed by merging two chains. */
    Quanta afterMerge(Quanta energy_a, Quanta energy_b) const;

    /** Energy of a chain after moving across @p segments segments. */
    Quanta afterMove(Quanta energy, int segments) const;

    /**
     * Energy after @p segments successive single-segment moves, i.e.
     * afterMove(. , 1) applied @p segments times. Bit-identical to that
     * loop: the recurrence e += k2 cannot be collapsed to e + k2*n in
     * floating point (the partial sums round differently), so the model
     * applies it stepwise rather than approximating with the closed
     * form afterMove(e, n).
     */
    Quanta afterMoves(Quanta energy, int segments) const;

    /** Energy of a chain after crossing one junction. */
    Quanta afterJunction(Quanta energy) const;

    Quanta k1() const { return k1_; }
    Quanta k2() const { return k2_; }

  private:
    Quanta k1_;
    Quanta k2_;
};

} // namespace qccd

#endif // QCCD_MODELS_HEATING_HPP
