/**
 * @file
 * Two-qubit Molmer-Sorensen gate duration models (paper Section VII-A).
 *
 * Four laser pulse-modulation schemes are modeled. AM1/AM2/PM durations
 * grow with the in-chain separation of the gate's two ions; FM duration
 * is separation-independent but grows with chain length:
 *
 *   AM1: tau(d) = 100*d - 22        (Wu, Wang, Duan 2018)
 *   AM2: tau(d) = 38*d + 10         (Trout et al. 2018)
 *   PM:  tau(d) = 5*d + 160         (Milne et al. 2018)
 *   FM:  tau(N) = max(13.33*N - 54, 100)   (Leung et al. 2018)
 *
 * All times in microseconds. d is the positional separation between the
 * two ions (adjacent ions: d = 1); N is the chain length. Because the
 * published AM1 fit goes negative at d = 0 the model clamps every duration
 * to a configurable floor (default 10 us).
 */

#ifndef QCCD_MODELS_GATE_TIME_HPP
#define QCCD_MODELS_GATE_TIME_HPP

#include <string>

#include "common/types.hpp"

namespace qccd
{

/** Available two-qubit gate pulse-modulation implementations. */
enum class GateImpl
{
    AM1, ///< amplitude modulation, robust variant (slower)
    AM2, ///< amplitude modulation, fast variant
    PM,  ///< phase modulation (weak distance dependence)
    FM   ///< frequency modulation (distance independent)
};

/** Short uppercase name of a gate implementation ("AM1", "FM", ...). */
std::string gateImplName(GateImpl impl);

/** Parse a gate implementation name; throws ConfigError on bad input. */
GateImpl gateImplFromName(const std::string &name);

/** Duration model for native trap operations. */
class GateTimeModel
{
  public:
    /**
     * @param impl two-qubit pulse modulation scheme
     * @param one_qubit_us duration of a single-qubit rotation
     * @param measure_us duration of a qubit measurement
     * @param floor_us minimum physical two-qubit gate duration
     */
    explicit GateTimeModel(GateImpl impl, TimeUs one_qubit_us = 5.0,
                           TimeUs measure_us = 150.0,
                           TimeUs floor_us = 10.0);

    /**
     * Duration of one MS gate.
     *
     * @param separation positional distance between the ions (>= 1)
     * @param chain_length number of ions in the chain (>= 2)
     */
    TimeUs twoQubit(int separation, int chain_length) const;

    /** Duration of a single-qubit gate. */
    TimeUs oneQubit() const { return oneQubitUs_; }

    /** Duration of a measurement. */
    TimeUs measure() const { return measureUs_; }

    /** The modeled implementation. */
    GateImpl impl() const { return impl_; }

  private:
    GateImpl impl_;
    TimeUs oneQubitUs_;
    TimeUs measureUs_;
    TimeUs floorUs_;
};

} // namespace qccd

#endif // QCCD_MODELS_GATE_TIME_HPP
