#include "models/heating.hpp"

#include "common/error.hpp"

namespace qccd
{

HeatingModel::HeatingModel(Quanta k1, Quanta k2) : k1_(k1), k2_(k2)
{
    fatalUnless(k1 >= 0 && k2 >= 0,
                "heating constants k1, k2 must be non-negative");
}

std::pair<Quanta, Quanta>
HeatingModel::afterSplit(Quanta parent_energy, int ions_a, int ions_b) const
{
    panicUnless(ions_a >= 1 && ions_b >= 1,
                "split sub-chains must each hold at least one ion");
    panicUnless(parent_energy >= 0, "chain energy cannot be negative");
    const double total = ions_a + ions_b;
    const Quanta share_a = parent_energy * (ions_a / total);
    const Quanta share_b = parent_energy * (ions_b / total);
    return {share_a + k1_, share_b + k1_};
}

Quanta
HeatingModel::afterMerge(Quanta energy_a, Quanta energy_b) const
{
    panicUnless(energy_a >= 0 && energy_b >= 0,
                "chain energy cannot be negative");
    return energy_a + energy_b + k1_;
}

Quanta
HeatingModel::afterMove(Quanta energy, int segments) const
{
    panicUnless(segments >= 0, "segment count cannot be negative");
    return energy + k2_ * segments;
}

Quanta
HeatingModel::afterMoves(Quanta energy, int segments) const
{
    panicUnless(segments >= 0, "segment count cannot be negative");
    // energy + k2*1 == energy + k2 bitwise (IEEE multiply by one is
    // exact), so this is afterMove(e, 1) iterated without the call.
    for (int s = 0; s < segments; ++s)
        energy += k2_;
    return energy;
}

Quanta
HeatingModel::afterJunction(Quanta energy) const
{
    return energy + k2_;
}

} // namespace qccd
