#include "models/shuttle_time.hpp"

#include "common/error.hpp"

namespace qccd
{

TimeUs
ShuttleTimeModel::junctionCrossing(int degree) const
{
    // Y junctions and straight-through corners (degree 2, e.g. the
    // root of an H-tree or the end of a one-row grid rail) charge the
    // cheaper Y time; X crossings and wider hubs charge the X time.
    panicUnless(degree >= 2, "junction degree must be at least 2");
    return degree <= 3 ? yJunction : xJunction;
}

void
ShuttleTimeModel::validate() const
{
    fatalUnless(movePerSegment > 0 && split > 0 && merge > 0 &&
                yJunction > 0 && xJunction > 0 && ionSwapRotation > 0,
                "all shuttle operation times must be positive");
}

} // namespace qccd
