#include "models/shuttle_time.hpp"

#include "common/error.hpp"

namespace qccd
{

TimeUs
ShuttleTimeModel::junctionCrossing(int degree) const
{
    panicUnless(degree >= 3, "junction degree must be at least 3");
    return degree == 3 ? yJunction : xJunction;
}

void
ShuttleTimeModel::validate() const
{
    fatalUnless(movePerSegment > 0 && split > 0 && merge > 0 &&
                yJunction > 0 && xJunction > 0 && ionSwapRotation > 0,
                "all shuttle operation times must be positive");
}

} // namespace qccd
