/**
 * @file
 * Memoized physical-model evaluations for the scheduling hot loop.
 *
 * The per-point simulator evaluates the same model expressions millions
 * of times per sweep: MS gate durations over a small integer domain
 * (separation x chain length, both bounded by the trap capacity), the
 * laser-instability factor A(N) = kappa*N/ln(N) (a transcendental per
 * MS gate), and log-fidelities of the constant-error op kinds (one per
 * primitive in SimResult's log-domain fidelity product). ModelTables
 * evaluates each expression once per HardwareParams over its discrete
 * domain and serves lookups after that.
 *
 * Exactness contract: every table stores the exact double the
 * underlying model produces today, so a toolflow run through the tables
 * is bit-identical to one that calls the models directly (enforced by
 * tests/test_model_tables.cpp). Only the MS-gate fidelity keeps a
 * per-op std::log, because nbar is continuous.
 *
 * Tables are immutable after construction; shared() hands out one
 * instance per distinct parameterization from a mutex-guarded
 * process-wide cache, so concurrent SweepEngine workers share tables
 * read-only.
 */

#ifndef QCCD_MODELS_MODEL_TABLES_HPP
#define QCCD_MODELS_MODEL_TABLES_HPP

#include <memory>
#include <vector>

#include "models/params.hpp"

namespace qccd
{

/** Read-only memo of the physical models over their discrete domains. */
class ModelTables
{
  public:
    /**
     * @param hw hardware parameterization to memoize
     * @param max_chain largest chain length to table (the device's max
     *        trap capacity); longer chains fall back to the models
     */
    ModelTables(const HardwareParams &hw, int max_chain);

    /** Largest chain length covered by the tables. */
    int maxChain() const { return maxChain_; }

    /** Memoized GateTimeModel::twoQubit(separation, chain_length). */
    TimeUs twoQubit(int separation, int chain_length) const
    {
        if (chain_length <= maxChain_) [[likely]]
            return twoQubitUs_[static_cast<size_t>(chain_length) *
                                   maxChain_ + separation];
        return gateTime_.twoQubit(separation, chain_length);
    }

    /** Memoized FidelityModel::scaleFactorA(n). */
    double scaleFactorA(int n) const
    {
        if (n <= maxChain_) [[likely]]
            return scaleA_[n];
        return fidelity_.scaleFactorA(n);
    }

    /** MS-gate error terms with the memoized scale factor. */
    GateErrorBreakdown msError(TimeUs tau_us, int chain_length,
                               Quanta nbar) const
    {
        return fidelity_.twoQubitErrorWithScale(
            tau_us, scaleFactorA(chain_length), nbar);
    }

    /**
     * log(max(f, kMinFidelity)) of the constant-fidelity op kinds,
     * matching SimResult::noteOp's per-op computation bit for bit. @{
     */
    double logOneQubitFidelity() const { return logOneQubit_; }
    double logMeasureFidelity() const { return logMeasure_; }
    double logUnitFidelity() const { return logUnit_; }
    /** @} */

    /** The memoized models themselves. @{ */
    const GateTimeModel &gateTime() const { return gateTime_; }
    const FidelityModel &fidelity() const { return fidelity_; }
    const HeatingModel &heating() const { return heating_; }
    /** @} */

    /**
     * Shared instance for @p hw / @p max_chain from the process-wide
     * cache (mutex-guarded; the returned tables are immutable and safe
     * to use concurrently). One sweep's workers all receive the same
     * object for designs that share model parameters.
     */
    static std::shared_ptr<const ModelTables>
    shared(const HardwareParams &hw, int max_chain);

  private:
    GateTimeModel gateTime_;
    FidelityModel fidelity_;
    HeatingModel heating_;
    int maxChain_;

    /** twoQubit(d, n) at [n * maxChain_ + d]; 0 where d/n invalid. */
    std::vector<TimeUs> twoQubitUs_;
    std::vector<double> scaleA_; ///< scaleFactorA(n) at [n]

    double logOneQubit_;
    double logMeasure_;
    double logUnit_;
};

} // namespace qccd

#endif // QCCD_MODELS_MODEL_TABLES_HPP
