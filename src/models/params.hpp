/**
 * @file
 * Aggregated hardware parameter set for one candidate QCCD design.
 *
 * HardwareParams bundles the four physical models (gate time, shuttle
 * time, heating, fidelity) together with the microarchitectural choices
 * the paper sweeps (two-qubit gate implementation, chain reordering
 * method) and compiler-visible knobs (buffer slots per trap, optional
 * sympathetic recooling extension).
 */

#ifndef QCCD_MODELS_PARAMS_HPP
#define QCCD_MODELS_PARAMS_HPP

#include <string>
#include <vector>

#include "models/fidelity.hpp"
#include "models/gate_time.hpp"
#include "models/heating.hpp"
#include "models/shuttle_time.hpp"

namespace qccd
{

/** Chain reordering microarchitecture (paper Section IV-C). */
enum class ReorderMethod
{
    GS, ///< gate-based swapping: one SWAP = 3 MS gates
    IS  ///< physical ion swapping: hop-by-hop split/rotate/merge
};

/** Short name of a reordering method ("GS" / "IS"). */
std::string reorderMethodName(ReorderMethod method);

/** Parse a reordering method name; throws ConfigError on bad input. */
ReorderMethod reorderMethodFromName(const std::string &name);

/** Complete physical + microarchitectural parameterization. */
struct HardwareParams
{
    GateImpl gateImpl = GateImpl::FM;
    ReorderMethod reorder = ReorderMethod::GS;

    TimeUs oneQubitUs = 5.0;
    TimeUs measureUs = 150.0;
    TimeUs twoQubitFloorUs = 10.0;

    ShuttleTimeModel shuttle;

    Quanta heatingK1 = 0.1;
    Quanta heatingK2 = 0.01;

    double gammaPerS = 1.0;
    double kappa = 5e-6;
    double oneQubitError = 3e-5;
    double measureError = 1e-3;

    /** Trap slots left empty for incoming shuttles (paper Section VI). */
    int bufferSlots = 2;

    /**
     * Optional extension (off by default, matching the paper): after each
     * merge the chain is sympathetically recooled to this fraction of its
     * energy. 1.0 disables recooling.
     */
    double recoolFactor = 1.0;

    /** Instantiate the gate-duration model from these parameters. */
    GateTimeModel gateTimeModel() const;

    /** Instantiate the heating model from these parameters. */
    HeatingModel heatingModel() const;

    /** Instantiate the fidelity model from these parameters. */
    FidelityModel fidelityModel() const;

    /** Validate all parameters; throws ConfigError on violations. */
    void validate() const;
};

/**
 * Named access to the numeric model parameters, for declarative
 * configuration layers (sweep specs, future config files). Every
 * sensitivity axis of the paper — gate fidelity constants, heating
 * rates, shuttle timings — is reachable by key without recompiling.
 *
 * Keys: one_qubit_us, measure_us, two_qubit_floor_us,
 * move_per_segment_us, split_us, merge_us, y_junction_us,
 * x_junction_us, ion_swap_rotation_us, heating_k1, heating_k2,
 * gamma_per_s, kappa, one_qubit_error, measure_error, buffer_slots,
 * recool_factor.
 *
 * @throws ConfigError for unknown keys (the message lists them all) or
 *         non-integral values for integer parameters.
 */
void applyHardwareOverride(HardwareParams &params, const std::string &key,
                           double value);

/** All keys applyHardwareOverride accepts, in documentation order. */
std::vector<std::string> hardwareOverrideKeys();

} // namespace qccd

#endif // QCCD_MODELS_PARAMS_HPP
