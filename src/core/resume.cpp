#include "core/resume.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/export.hpp"

namespace qccd
{

namespace
{

/** First @p count comma-separated fields of @p line (short if the line
 *  has fewer). Enough for the identifying columns; the quoted error
 *  field is never split. */
std::vector<std::string>
leadingFields(const std::string &line, size_t count)
{
    std::vector<std::string> fields;
    size_t pos = 0;
    while (fields.size() < count && pos <= line.size()) {
        size_t comma = line.find(',', pos);
        if (comma == std::string::npos)
            comma = line.size();
        fields.push_back(line.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return fields;
}

std::vector<std::string>
nonEmptyLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

/** "app,topology,capacity" of the planned point, for row checks. */
std::string
plannedKey(const PlannedPoint &point)
{
    return point.application + "," + point.design.topologyLabel() + "," +
           std::to_string(point.design.trapCapacity);
}

std::string
rowKey(const std::vector<std::string> &fields)
{
    std::string key;
    for (const std::string &f : fields)
        key += (key.empty() ? "" : ",") + f;
    return key;
}

} // namespace

std::string
loadHealedLines(const std::string &path, bool *existed)
{
    std::ifstream in(path);
    *existed = in.good();
    if (!*existed)
        return "";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatalUnless(!in.bad(), "error reading '" + path + "'");
    std::string content = buffer.str();
    in.close();

    // A run killed mid-write leaves a final line without a newline;
    // that row is incomplete, so drop it (its point is re-evaluated)
    // via atomic replace — a second kill during the heal itself leaves
    // either the old file or the healed file, never an empty one.
    const size_t last_newline = content.find_last_of('\n');
    if (!content.empty() && last_newline != content.size() - 1) {
        content.resize(
            last_newline == std::string::npos ? 0 : last_newline + 1);
        replaceTextFileAtomic(content, path);
    }
    return content;
}

ResumeState
analyzeResume(const std::string &out_path, bool with_header,
              bool keep_going, const std::vector<PlannedPoint> &slice,
              size_t slice_first)
{
    ResumeState state;

    bool csv_existed = false;
    const std::string csv = loadHealedLines(out_path, &csv_existed);
    std::vector<std::string> csv_lines = nonEmptyLines(csv);
    state.csvEmpty = csv_lines.empty();
    if (with_header && !csv_lines.empty()) {
        fatalUnless(csv_lines.front() == sweepCsvHeader(),
                    "cannot resume '" + out_path +
                        "': its header does not match the sweep CSV "
                        "format");
        csv_lines.erase(csv_lines.begin());
    }
    state.csvRows = csv_lines.size();

    // The sidecar records the failed points of earlier --keep-going
    // passes; its rows are part of the completed prefix.
    const std::string errors_path = out_path + ".errors";
    bool errors_existed = false;
    const std::string errors =
        loadHealedLines(errors_path, &errors_existed);
    std::vector<std::string> error_lines = nonEmptyLines(errors);
    if (!error_lines.empty()) {
        fatalUnless(error_lines.front() == sweepErrorsHeader(),
                    "cannot resume '" + out_path + "': sidecar '" +
                        errors_path +
                        "' does not have the .errors header");
        error_lines.erase(error_lines.begin());
    }
    fatalUnless(error_lines.empty() || keep_going,
                "cannot resume '" + out_path + "': '" + errors_path +
                    "' records failed points; rerun with --keep-going");
    fatalUnless(error_lines.empty() || !state.csvEmpty || !with_header ||
                    csv_existed,
                "cannot resume '" + out_path + "': the CSV is missing "
                "but its .errors sidecar records failures");

    for (const std::string &line : error_lines) {
        const std::vector<std::string> fields = leadingFields(line, 4);
        fatalUnless(fields.size() == 4,
                    "cannot resume '" + out_path + "': malformed "
                    "sidecar row '" + line + "'");
        size_t absolute = 0;
        const char *begin = fields[0].data();
        const char *end = begin + fields[0].size();
        const auto [ptr, ec] = std::from_chars(begin, end, absolute);
        fatalUnless(ec == std::errc() && ptr == end,
                    "cannot resume '" + out_path + "': sidecar row "
                    "index '" + fields[0] + "' is not a number");
        fatalUnless(absolute >= slice_first &&
                        absolute - slice_first < slice.size(),
                    "cannot resume '" + out_path + "': sidecar index " +
                        fields[0] +
                        " is outside this sweep shard's points");
        const size_t rel = absolute - slice_first;
        fatalUnless(state.failedIndices.empty() ||
                        rel > state.failedIndices.back(),
                    "cannot resume '" + out_path + "': sidecar indices "
                    "are not strictly increasing");
        const std::string expect = plannedKey(slice[rel]);
        const std::string got =
            rowKey({fields[1], fields[2], fields[3]});
        fatalUnless(got == expect,
                    "cannot resume '" + out_path + "': sidecar row (" +
                        got + ") does not match the planned point (" +
                        expect + ") at index " + fields[0]);
        state.failedIndices.push_back(rel);
    }

    state.done = state.csvRows + state.failedIndices.size();
    fatalUnless(state.done <= slice.size(),
                "cannot resume '" + out_path +
                    "': it has more rows than this sweep" +
                    (slice_first > 0 || slice.size() > 0 ? "" : "") +
                    " produces");

    // Verify the completed prefix row by row: every planned point up
    // to `done` must appear either as the next CSV data row or as a
    // recorded failure — a header-compatible CSV from a different
    // sweep (or the wrong shard) fails here instead of merging.
    size_t next_csv = 0;
    size_t next_failed = 0;
    for (size_t i = 0; i < state.done; ++i) {
        if (next_failed < state.failedIndices.size() &&
            state.failedIndices[next_failed] == i) {
            ++next_failed; // verified against the sidecar above
            continue;
        }
        fatalUnless(next_csv < csv_lines.size(),
                    "cannot resume '" + out_path + "': recorded "
                    "failures extend past the completed rows");
        const std::vector<std::string> fields =
            leadingFields(csv_lines[next_csv], 3);
        const std::string expect = plannedKey(slice[i]);
        const std::string got = rowKey(fields);
        fatalUnless(got == expect,
                    "cannot resume '" + out_path + "': row " +
                        std::to_string(next_csv + 1) + " (" + got +
                        ") does not match the planned point (" + expect +
                        ") — is this the right sweep and shard?");
        ++next_csv;
    }
    return state;
}

} // namespace qccd
