#include "core/sweep_spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/qasm/parser.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "compiler/mapping.hpp"
#include "core/result_store.hpp"
#include "core/sweep_engine.hpp"

namespace qccd
{

namespace
{

class SpecBuilder
{
  public:
    SpecBuilder(const JsonParser &parser, const std::string &base_dir)
        : parser_(parser), baseDir_(base_dir)
    {
    }

    SweepPlan build(const JsonValue &root)
    {
        expect(root, JsonValue::Kind::Object, "spec document");
        SweepPlan plan;
        const JsonValue *sweeps = nullptr;
        for (const auto &[key, value] : root.members) {
            if (key == "name") {
                expect(value, JsonValue::Kind::String, "\"name\"");
                plan.name = value.text;
                checkName(value);
            } else if (key == "description") {
                expect(value, JsonValue::Kind::String,
                       "\"description\"");
                plan.description = value.text;
            } else if (key == "search") {
                parseSearch(value, plan.search);
            } else if (key == "sweeps") {
                expect(value, JsonValue::Kind::Array, "\"sweeps\"");
                sweeps = &value;
            } else {
                parser_.failAt(value,
                               "unknown spec key \"" + key +
                                   "\" (known: name, description, "
                                   "search, sweeps)");
            }
        }
        if (plan.name.empty())
            parser_.failAt(root, "spec is missing \"name\"");
        if (sweeps == nullptr || sweeps->items.empty())
            parser_.failAt(root,
                           "spec needs a non-empty \"sweeps\" array");
        size_t total = 0;
        for (const JsonValue &grid : sweeps->items) {
            plan.grids.push_back(buildGrid(grid, total));
            total += plan.grids.back().size();
        }
        return plan;
    }

  private:
    void expect(const JsonValue &value, JsonValue::Kind kind,
                const std::string &what) const
    {
        if (value.kind != kind)
            parser_.failAt(value, what + " must be a " +
                                      jsonKindName(kind) + ", got " +
                                      jsonKindName(value.kind));
    }

    /** The spec name becomes an output file stem; keep it shell-safe. */
    void checkName(const JsonValue &value) const
    {
        if (value.text.empty())
            parser_.failAt(value, "\"name\" must not be empty");
        for (const char c : value.text) {
            const bool ok =
                std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == '-' || c == '.';
            if (!ok)
                parser_.failAt(value,
                               "\"name\" may only contain letters, "
                               "digits, '_', '-' and '.'");
        }
    }

    int intOf(const JsonValue &value, const std::string &what) const
    {
        expect(value, JsonValue::Kind::Number, what);
        const int integral = static_cast<int>(value.number);
        if (static_cast<double>(integral) != value.number)
            parser_.failAt(value, what + " must be an integer");
        return integral;
    }

    /**
     * Run a name-lookup helper (gate/reorder/policy names, parameter
     * keys) whose ConfigErrors carry no document position, and re-raise
     * them anchored at @p value. Errors thrown via failAt() elsewhere
     * already carry their position and must not pass through this (the
     * prefix would double up).
     */
    template <typename Fn>
    auto lookupAt(const JsonValue &value, Fn &&fn) const
    {
        try {
            return fn();
        } catch (const ConfigError &err) {
            parser_.failAt(value, err.what());
        }
    }

    /**
     * Validate one axis value now (all schema and name errors carry
     * the document position) and return a setter that applies it to a
     * point later — the lazy-grid building block. Applying the
     * returned setter is exactly what the eager expansion used to do
     * in place.
     */
    SweepGrid::Setter makeSetter(const std::string &key,
                                 const JsonValue &value) const
    {
        if (key == "apps") {
            expect(value, JsonValue::Kind::String, "application");
            return makeApplicationSetter(value.text, value);
        }
        if (key == "topology") {
            expect(value, JsonValue::Kind::String, "\"topology\"");
            return makeTopologySetter(value.text, value);
        }
        if (key == "capacity") {
            const int capacity = intOf(value, "\"capacity\"");
            return [capacity](PlannedPoint &point) {
                point.design.trapCapacity = capacity;
            };
        }
        if (key == "gate") {
            expect(value, JsonValue::Kind::String, "\"gate\"");
            const GateImpl impl = lookupAt(
                value, [&] { return gateImplFromName(value.text); });
            return [impl](PlannedPoint &point) {
                point.design.hw.gateImpl = impl;
            };
        }
        if (key == "reorder") {
            expect(value, JsonValue::Kind::String, "\"reorder\"");
            const ReorderMethod reorder = lookupAt(value, [&] {
                return reorderMethodFromName(value.text);
            });
            return [reorder](PlannedPoint &point) {
                point.design.hw.reorder = reorder;
            };
        }
        if (key == "buffer") {
            const int buffer = intOf(value, "\"buffer\"");
            return [buffer](PlannedPoint &point) {
                point.design.hw.bufferSlots = buffer;
            };
        }
        if (key == "policy") {
            expect(value, JsonValue::Kind::String, "\"policy\"");
            const MappingPolicy policy = lookupAt(value, [&] {
                return mappingPolicyFromName(value.text);
            });
            return [policy](PlannedPoint &point) {
                point.options.mappingPolicy = policy;
            };
        }
        if (key == "params") {
            expect(value, JsonValue::Kind::Object, "\"params\"");
            std::vector<std::pair<std::string, double>> overrides;
            HardwareParams scratch; // name check at parse time
            for (const auto &[param, pv] : value.members) {
                expect(pv, JsonValue::Kind::Number,
                       "parameter \"" + param + "\"");
                lookupAt(pv, [&] {
                    applyHardwareOverride(scratch, param, pv.number);
                });
                overrides.emplace_back(param, pv.number);
            }
            return [overrides](PlannedPoint &point) {
                for (const auto &[param, number] : overrides)
                    applyHardwareOverride(point.design.hw, param,
                                          number);
            };
        }
        panicUnless(false, "axis key missing from sweepAxisKeys");
        return {};
    }

    /**
     * Topology axis values: builder specs are syntax-checked now so a
     * typo fails at parse time with the document position; "topo:FILE"
     * paths resolve relative to the spec file like "qasm:" paths do
     * (the file itself is read when the device is built).
     */
    SweepGrid::Setter
    makeTopologySetter(const std::string &text,
                       const JsonValue &value) const
    {
        const std::string topo_prefix = "topo:";
        std::string spec = text;
        if (text.rfind(topo_prefix, 0) == 0) {
            std::string path = text.substr(topo_prefix.size());
            if (path.empty())
                parser_.failAt(value, "empty path after \"topo:\"");
            if (path[0] != '/' && !baseDir_.empty())
                path = baseDir_ + "/" + path;
            spec = topo_prefix + path;
        } else {
            lookupAt(value, [&] {
                validateTopologySpec(text);
                return 0;
            });
        }
        return [spec](PlannedPoint &point) {
            point.design.topologySpec = spec;
        };
    }

    SweepGrid::Setter
    makeApplicationSetter(const std::string &text,
                          const JsonValue &value) const
    {
        const std::string qasm_prefix = "qasm:";
        if (text.rfind(qasm_prefix, 0) == 0) {
            std::string path = text.substr(qasm_prefix.size());
            if (path.empty())
                parser_.failAt(value, "empty path after \"qasm:\"");
            if (path[0] != '/' && !baseDir_.empty())
                path = baseDir_ + "/" + path;
            std::string stem = stemOf(path);
            return [path, stem](PlannedPoint &point) {
                point.qasmPath = path;
                point.application = stem;
            };
        }
        // Builtin applications are validated now so a typo fails at
        // parse time, not points deep into a long run.
        bool known = false;
        for (const BenchmarkSpec &bench : benchmarkList())
            known = known || bench.name == text;
        if (!known)
            parser_.failAt(value, "unknown application '" + text +
                                      "' (see qccd_explore --list, or "
                                      "use \"qasm:FILE\")");
        return [text](PlannedPoint &point) {
            point.qasmPath.clear();
            point.application = text;
        };
    }

    static std::string stemOf(const std::string &path)
    {
        const size_t slash = path.find_last_of('/');
        const size_t start = slash == std::string::npos ? 0 : slash + 1;
        size_t end = path.find_last_of('.');
        if (end == std::string::npos || end <= start)
            end = path.size();
        return path.substr(start, end - start);
    }

    void parseOptions(const JsonValue &value, RunOptions &options) const
    {
        expect(value, JsonValue::Kind::Object, "\"options\"");
        for (const auto &[key, v] : value.members) {
            if (key == "decompose_runtime") {
                expect(v, JsonValue::Kind::Bool,
                       "\"decompose_runtime\"");
                options.decomposeRuntime = v.boolean;
            } else if (key == "point_timeout_ms") {
                const int ms = intOf(v, "\"point_timeout_ms\"");
                if (ms < 1)
                    parser_.failAt(v, "\"point_timeout_ms\" must be "
                                      "at least 1");
                options.pointTimeoutMs = ms;
            } else if (key == "cache") {
                expect(v, JsonValue::Kind::String, "\"cache\"");
                if (v.text.empty())
                    parser_.failAt(v, "\"cache\" must not be empty");
                std::string path = v.text;
                if (path[0] != '/' && !baseDir_.empty())
                    path = baseDir_ + "/" + path;
                options.cachePath = path;
            } else {
                parser_.failAt(v, "unknown option \"" + key +
                                      "\" (known: cache, "
                                      "decompose_runtime, "
                                      "point_timeout_ms)");
            }
        }
    }

    /** Parse the top-level "search" block (budget/eta/seed). */
    void parseSearch(const JsonValue &value,
                     SearchSpecOptions &search) const
    {
        expect(value, JsonValue::Kind::Object, "\"search\"");
        search.declared = true;
        for (const auto &[key, v] : value.members) {
            if (key == "budget") {
                const int budget = intOf(v, "\"budget\"");
                if (budget < 1)
                    parser_.failAt(v,
                                   "\"budget\" must be at least 1");
                search.budget = static_cast<size_t>(budget);
            } else if (key == "eta") {
                const int eta = intOf(v, "\"eta\"");
                if (eta < 2)
                    parser_.failAt(v, "\"eta\" must be at least 2");
                search.eta = eta;
            } else if (key == "seed") {
                expect(v, JsonValue::Kind::Number, "\"seed\"");
                const auto seed = static_cast<uint64_t>(v.number);
                if (static_cast<double>(seed) != v.number ||
                    v.number < 0)
                    parser_.failAt(v, "\"seed\" must be a "
                                      "non-negative integer");
                search.seed = seed;
            } else {
                parser_.failAt(v, "unknown search key \"" + key +
                                      "\" (known: budget, eta, "
                                      "seed)");
            }
        }
    }

    SweepGrid buildGrid(const JsonValue &grid,
                        size_t points_so_far) const
    {
        expect(grid, JsonValue::Kind::Object, "sweep grid");

        // An axis per array-valued key, in declaration order (first
        // declared varies slowest); scalars fix the value grid-wide.
        std::vector<SweepGrid::Axis> axes;
        PlannedPoint base;
        bool have_apps = false;

        for (const auto &[key, value] : grid.members) {
            if (key == "options") {
                parseOptions(value, base.options);
                continue;
            }
            bool known = false;
            for (const std::string &axis_key : sweepAxisKeys())
                known = known || key == axis_key;
            if (!known) {
                std::string list;
                for (const std::string &axis_key : sweepAxisKeys())
                    list += axis_key + ", ";
                parser_.failAt(value, "unknown grid key \"" + key +
                                          "\" (known: " + list +
                                          "options)");
            }
            have_apps = have_apps || key == "apps";
            // "params" takes an object per value, so a bare object is
            // a scalar there, not an axis.
            const bool is_axis = value.kind == JsonValue::Kind::Array;
            if (is_axis) {
                if (value.items.empty())
                    parser_.failAt(value, "axis \"" + key +
                                              "\" must not be empty");
                SweepGrid::Axis axis;
                axis.key = key;
                axis.values.reserve(value.items.size());
                for (const JsonValue &item : value.items)
                    axis.values.push_back(makeSetter(key, item));
                axes.push_back(std::move(axis));
            } else {
                makeSetter(key, value)(base);
            }
        }
        if (!have_apps)
            parser_.failAt(grid, "sweep grid is missing \"apps\"");

        size_t total = 1;
        for (const SweepGrid::Axis &axis : axes) {
            const size_t n = axis.values.size();
            if (total > kMaxSweepPoints / n)
                parser_.failAt(grid,
                               "grid expands to too many points");
            total *= n;
        }
        if (points_so_far > kMaxSweepPoints - total)
            parser_.failAt(grid, "spec expands to too many points");

        return {std::move(base), std::move(axes)};
    }

    const JsonParser &parser_;
    std::string baseDir_;
};

} // namespace

const std::vector<std::string> &
sweepAxisKeys()
{
    // One table drives the membership check, the unknown-key error
    // text, applyAxisValue's dispatch (which panics on anything not
    // listed here), and qccd_lint's schema walk — so the four can
    // never drift apart.
    static const std::vector<std::string> keys = {
        "apps",   "topology", "capacity", "gate",
        "reorder", "buffer",  "policy",   "params"};
    return keys;
}

SweepGrid::SweepGrid(PlannedPoint base, std::vector<Axis> axes)
    : base_(std::move(base)), axes_(std::move(axes))
{
    for (const Axis &axis : axes_)
        size_ *= axis.values.size();
}

PlannedPoint
SweepGrid::point(size_t index) const
{
    panicUnless(index < size_, "grid point index out of range");
    PlannedPoint point = base_;
    // Odometer decode, first declared axis the slowest digit, setters
    // applied in declaration order — the same point the eager
    // expansion produced at this position.
    size_t stride = size_;
    for (const Axis &axis : axes_) {
        stride /= axis.values.size();
        axis.values[(index / stride) % axis.values.size()](point);
    }
    return point;
}

size_t
SweepPlan::size() const
{
    size_t total = 0;
    for (const SweepGrid &grid : grids)
        total += grid.size();
    return total;
}

PlannedPoint
SweepPlan::point(size_t index) const
{
    for (const SweepGrid &grid : grids) {
        if (index < grid.size())
            return grid.point(index);
        index -= grid.size();
    }
    panicUnless(false, "plan point index out of range");
    return {};
}

std::vector<PlannedPoint>
SweepPlan::expand() const
{
    std::vector<PlannedPoint> points;
    points.reserve(size());
    for (const SweepGrid &grid : grids)
        for (size_t i = 0; i < grid.size(); ++i)
            points.push_back(grid.point(i));
    return points;
}

SweepPlan
parseSweepPlan(const std::string &text, const std::string &origin,
               const std::string &base_dir)
{
    JsonParser parser(text, origin);
    const JsonValue root = parser.parseDocument();
    return SpecBuilder(parser, base_dir).build(root);
}

SweepPlan
parseSweepPlanFile(const std::string &path)
{
    std::ifstream in(path);
    fatalUnless(in.good(), "cannot read sweep spec '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    fatalUnless(!in.bad(), "error reading sweep spec '" + path + "'");
    const size_t slash = path.find_last_of('/');
    const std::string base_dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    return parseSweepPlan(text.str(), path, base_dir);
}

SweepSpec
parseSweepSpec(const std::string &text, const std::string &origin,
               const std::string &base_dir)
{
    SweepPlan plan = parseSweepPlan(text, origin, base_dir);
    return {std::move(plan.name), std::move(plan.description),
            plan.expand()};
}

SweepSpec
parseSweepSpecFile(const std::string &path)
{
    SweepPlan plan = parseSweepPlanFile(path);
    return {std::move(plan.name), std::move(plan.description),
            plan.expand()};
}

SweepShard
parseShard(const std::string &text)
{
    const size_t slash = text.find('/');
    fatalUnless(slash != std::string::npos,
                "shard must be I/N, e.g. 0/4; got '" + text + "'");
    SweepShard shard;
    const char *begin = text.data();
    auto [iptr, iec] =
        std::from_chars(begin, begin + slash, shard.index);
    auto [nptr, nec] = std::from_chars(begin + slash + 1,
                                       begin + text.size(), shard.count);
    fatalUnless(iec == std::errc() && iptr == begin + slash &&
                    nec == std::errc() &&
                    nptr == begin + text.size(),
                "shard must be I/N, e.g. 0/4; got '" + text + "'");
    fatalUnless(shard.count >= 1, "shard count must be at least 1");
    fatalUnless(shard.index >= 0 && shard.index < shard.count,
                "shard index must be in [0, count)");
    return shard;
}

std::pair<size_t, size_t>
shardRange(size_t total, int index, int count)
{
    fatalUnless(count >= 1, "shard count must be at least 1");
    fatalUnless(index >= 0 && index < count,
                "shard index must be in [0, count)");
    const size_t n = static_cast<size_t>(count);
    const size_t i = static_cast<size_t>(index);
    return {total * i / n, total * (i + 1) / n};
}

SweepSpecRunner::SweepSpecRunner(SweepEngine &engine) : engine_(engine)
{
}

std::shared_ptr<const Circuit>
SweepSpecRunner::circuitFor(const PlannedPoint &point)
{
    if (point.native != nullptr)
        return point.native;
    if (point.qasmPath.empty())
        return engine_.nativeBenchmark(point.application);
    auto it = qasmCache_.find(point.qasmPath);
    if (it == qasmCache_.end())
        it = qasmCache_
                 .emplace(point.qasmPath,
                          SweepEngine::lower(
                              qasm::parseFile(point.qasmPath)))
                 .first;
    return it->second;
}

Digest128
SweepSpecRunner::circuitDigestFor(const Circuit &native)
{
    const auto it = digestCache_.find(&native);
    if (it != digestCache_.end())
        return it->second;
    const Digest128 digest = ResultStore::circuitDigest(native);
    digestCache_.emplace(&native, digest);
    return digest;
}

SweepRunStats
SweepSpecRunner::run(const std::vector<PlannedPoint> &points, size_t skip,
                     const std::function<void(const SweepPoint &)> &emit,
                     const SweepRunPolicy &policy, size_t batch_size)
{
    fatalUnless(batch_size >= 1, "batch size must be at least 1");
    SweepRunStats stats;
    const FailurePolicy engine_policy = policy.keepGoing
                                            ? FailurePolicy::Isolate
                                            : FailurePolicy::Rethrow;

    // The engine's stage-reuse counters are cumulative across batches
    // (and across runs sharing the engine); report this run's share.
    const StagedToolflow::Stats delta_before = engine_.deltaStats();
    const auto finishStats = [&]() {
        const StagedToolflow::Stats &after = engine_.deltaStats();
        stats.fullSchedules =
            after.fullSchedules - delta_before.fullSchedules;
        stats.replays = after.replays - delta_before.replays;
    };

    // The cache degrades, never sinks: any store failure mid-run
    // (I/O error, injected cache.* fault) drops it for the rest of
    // the run with one warning, and every point is evaluated cold —
    // the acceptance contract is identical bytes either way.
    ResultStore *cache = policy.cache;
    const auto disableCache = [&cache](const char *what,
                                       const std::exception &err) {
        std::fprintf(stderr,
                     "warning: result cache disabled (%s: %s); "
                     "continuing without it\n",
                     what, err.what());
        cache = nullptr;
    };

    // Per-batch-position cache state: the key (when computable), and
    // under cacheVerify the stored result a recomputation must match.
    struct CacheSlot
    {
        bool haveKey = false;
        bool verifyHit = false;
        Digest128 key;
        RunResult cached;
    };

    for (size_t start = skip; start < points.size();
         start += batch_size) {
        const size_t end =
            std::min(points.size(), start + batch_size);

        // Under keepGoing a circuit that fails to load (missing QASM
        // file, parse error, fault injection in the lowering path)
        // becomes a prefailed point of this batch rather than sinking
        // the whole shard; `slot` maps batch positions to engine jobs.
        // Cache hits resolve the same way: a filled `resolved` row
        // and no engine job.
        const size_t none = static_cast<size_t>(-1);
        std::vector<SweepJob> jobs;
        std::vector<size_t> slot(end - start, none);
        std::vector<SweepPoint> resolved(end - start);
        std::vector<CacheSlot> cslot(end - start);
        jobs.reserve(end - start);
        for (size_t i = start; i < end; ++i) {
            const PlannedPoint &point = points[i];
            SweepJob job;
            job.application = point.application;
            job.design = point.design;
            job.options = point.options;
            if (policy.keepGoing) {
                try {
                    job.native = circuitFor(point);
                } catch (...) {
                    SweepPoint &failed = resolved[i - start];
                    failed.application = point.application;
                    failed.design = point.design;
                    failed.outcome = classifyFailure(
                        std::current_exception(), &failed.error);
                    continue;
                }
            } else {
                job.native = circuitFor(point);
            }

            if (cache != nullptr) {
                CacheSlot &cs = cslot[i - start];
                try {
                    cs.key = ResultStore::keyFor(
                        point.design, point.options,
                        circuitDigestFor(*job.native));
                    cs.haveKey = true;
                } catch (const QccdError &) {
                    // Unkeyable (e.g. unreadable "topo:" file): run
                    // it cold and let evaluation report the problem.
                }
                if (cs.haveKey) {
                    try {
                        const std::optional<RunResult> found =
                            cache->lookup(cs.key);
                        if (found.has_value()) {
                            ++stats.cacheHits;
                            if (policy.cacheVerify) {
                                cs.verifyHit = true;
                                cs.cached = *found;
                            } else {
                                SweepPoint &hit = resolved[i - start];
                                hit.application = point.application;
                                hit.design = point.design;
                                hit.result = *found;
                                continue; // no engine job needed
                            }
                        }
                    } catch (const std::exception &err) {
                        disableCache("lookup failed", err);
                    }
                }
            }
            slot[i - start] = jobs.size();
            jobs.push_back(std::move(job));
        }

        const std::vector<SweepPoint> results =
            engine_.run(jobs, engine_policy);
        for (size_t i = start; i < end; ++i) {
            const size_t s = slot[i - start];
            const SweepPoint &result =
                s == none ? resolved[i - start] : results[s];
            const CacheSlot &cs = cslot[i - start];
            if (s != none && cache != nullptr && cs.haveKey &&
                result.ok()) {
                if (cs.verifyHit) {
                    if (ResultStore::encodeRecordPayload(cs.key,
                                                         cs.cached) !=
                        ResultStore::encodeRecordPayload(
                            cs.key, result.result)) {
                        ++stats.cacheDivergent;
                        std::fprintf(
                            stderr,
                            "error: result cache divergence at point "
                            "'%s' (key %s): stored record differs "
                            "from recomputation\n",
                            result.application.c_str(),
                            cs.key.hex().c_str());
                    }
                } else {
                    // Insert before emitting the row: a kill between
                    // the two leaves the store ahead of the CSV, and
                    // the resumed run re-hits instead of re-appending
                    // — warm store bytes stay deterministic.
                    try {
                        cache->insert(cs.key, result.result);
                    } catch (const std::exception &err) {
                        disableCache("append failed", err);
                    }
                }
            }
            ++stats.evaluated;
            if (!result.ok())
                ++stats.failed;
            emit(result);
            // The error budget stops the sweep mid-batch: emitted
            // points stay durable, everything after them is reported
            // as unevaluated (aborted stays false when the budget
            // trips on the very last point — nothing was cut short).
            if (policy.keepGoing && policy.maxErrors > 0 &&
                stats.failed >= policy.maxErrors &&
                (i + 1 < end || end < points.size())) {
                stats.aborted = true;
                finishStats();
                return stats;
            }
        }
    }
    finishStats();
    return stats;
}

void
SweepSpecRunner::run(const std::vector<PlannedPoint> &points, size_t skip,
                     const std::function<void(const SweepPoint &)> &emit,
                     size_t batch_size)
{
    run(points, skip, emit, SweepRunPolicy{}, batch_size);
}

} // namespace qccd
