/**
 * @file
 * Crash-safe sweep resume: heal, count, and *verify* checkpoint files.
 *
 * `qccd_explore --sweep ... --resume` treats the output CSV (plus, under
 * --keep-going, its `<out>.errors` sidecar) as a durable checkpoint: the
 * process may be killed anywhere and the final bytes after resuming must
 * be indistinguishable from an uninterrupted run. Three properties make
 * that hold:
 *
 *  1. Rows are appended one fully flushed line at a time, so a kill can
 *     tear at most the final line.
 *  2. A torn final line is dropped by atomic replace (tmp + rename) —
 *     a kill during healing itself loses nothing either.
 *  3. Resumed rows are cross-checked against the shard's planned points
 *     (application / topology / capacity per row, failure indices in
 *     the sidecar), so a header-compatible CSV from a *different* sweep
 *     or shard is refused instead of silently merged.
 */

#ifndef QCCD_CORE_RESUME_HPP
#define QCCD_CORE_RESUME_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "core/sweep_spec.hpp"

namespace qccd
{

/** What --resume found in (and verified about) existing output. */
struct ResumeState
{
    /** Planned points already evaluated: CSV rows + sidecar rows. */
    size_t done = 0;

    /** Successful rows present in the data CSV. */
    size_t csvRows = 0;

    /** True when the data CSV is absent or empty (header not yet
     *  written; the resumed writer must emit it on shard 0). */
    bool csvEmpty = true;

    /** Slice-relative indices of failed points from the sidecar,
     *  strictly ascending. */
    std::vector<size_t> failedIndices;
};

/**
 * Read @p path and heal a torn final line (a line without a trailing
 * newline, left by a kill mid-write): the file is atomically replaced
 * without the partial line, whose point will simply be re-evaluated.
 *
 * @param[out] existed set to whether the file was present
 * @return the healed content ("" when the file is missing)
 */
std::string loadHealedLines(const std::string &path, bool *existed);

/**
 * Inspect @p out_path (and its `.errors` sidecar) for a resumed run of
 * shard slice @p slice, healing torn lines and validating every
 * recovered row against the planned points.
 *
 * @param out_path the sweep's CSV output path
 * @param with_header whether this shard writes the CSV header (shard 0)
 * @param keep_going whether this resume runs under --keep-going; a
 *        sidecar with recorded failures is refused without it
 * @param slice the planned points of this shard, in evaluation order
 * @param slice_first absolute index of slice[0] in the expanded spec
 *        (sidecar rows store absolute indices so they stay meaningful
 *        across shards)
 * @throws ConfigError when the checkpoint does not belong to this
 *         sweep/shard or is internally inconsistent
 */
ResumeState analyzeResume(const std::string &out_path, bool with_header,
                          bool keep_going,
                          const std::vector<PlannedPoint> &slice,
                          size_t slice_first);

} // namespace qccd

#endif // QCCD_CORE_RESUME_HPP
