#include "core/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/table.hpp"

namespace qccd
{

std::string
summarizeRun(const std::string &app, const DesignPoint &design,
             const RunResult &result)
{
    std::ostringstream out;
    out << app << " on " << design.label() << ": time "
        << formatSig(result.totalTime() / kSecondUs, 4) << " s, fidelity "
        << formatSci(result.fidelity(), 3) << " (log " <<
        formatSig(result.sim.logFidelity, 4) << "), MS gates "
        << result.sim.counts.algorithmMs << " (+"
        << result.sim.counts.reorderMs << " reorder), shuttles "
        << result.sim.counts.shuttles << ", splits "
        << result.sim.counts.splits << ", max energy "
        << formatSig(result.sim.maxChainEnergy, 4) << " quanta";
    return out.str();
}

double
metricTimeSeconds(const RunResult &r)
{
    return r.totalTime() / kSecondUs;
}

double
metricFidelity(const RunResult &r)
{
    return r.fidelity();
}

double
metricLogFidelity(const RunResult &r)
{
    return r.sim.logFidelity;
}

double
metricMaxEnergy(const RunResult &r)
{
    return r.sim.maxChainEnergy;
}

double
metricCommTimeSeconds(const RunResult &r)
{
    return r.communicationTime() / kSecondUs;
}

double
metricComputeTimeSeconds(const RunResult &r)
{
    return r.computeOnlyTime / kSecondUs;
}

std::string
seriesTable(const std::vector<SweepPoint> &points, MetricFn metric,
            const std::string &metric_name, bool scientific)
{
    // Column set: sorted unique capacities, in first-seen order.
    std::vector<int> caps;
    std::vector<std::string> apps;
    for (const SweepPoint &p : points) {
        if (std::find(caps.begin(), caps.end(),
                      p.design.trapCapacity) == caps.end())
            caps.push_back(p.design.trapCapacity);
        if (std::find(apps.begin(), apps.end(), p.application) ==
            apps.end())
            apps.push_back(p.application);
    }
    std::sort(caps.begin(), caps.end());

    std::map<std::pair<std::string, int>, double> values;
    for (const SweepPoint &p : points)
        values[{p.application, p.design.trapCapacity}] =
            metric(p.result);

    TextTable table;
    std::vector<std::string> header{metric_name + " \\ capacity"};
    for (int c : caps)
        header.push_back(std::to_string(c));
    table.addRow(std::move(header));
    for (const std::string &app : apps) {
        std::vector<std::string> row{app};
        for (int c : caps) {
            const auto it = values.find({app, c});
            if (it == values.end())
                row.push_back("-");
            else
                row.push_back(scientific ? formatSci(it->second, 3)
                                         : formatSig(it->second, 4));
        }
        table.addRow(std::move(row));
    }
    return table.render();
}

} // namespace qccd
