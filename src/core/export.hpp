/**
 * @file
 * Machine-readable export of sweep results: CSV for spreadsheets and
 * plotting scripts, JSON for structured pipelines. Every figure bench
 * can dump its raw series so the paper's plots can be regenerated with
 * any plotting tool.
 */

#ifndef QCCD_CORE_EXPORT_HPP
#define QCCD_CORE_EXPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace qccd
{

/** Output syntax of a sweep export. */
enum class ExportFormat
{
    Csv, ///< one header line + one comma-separated row per point
    Json ///< a JSON array of objects (same fields as the CSV columns)
};

/** Parse "csv" / "json"; throws ConfigError on anything else. */
ExportFormat exportFormatFromName(const std::string &name);

/** The CSV header line (no trailing newline). Columns: application,
 *  topology, capacity, gate, reorder, time_s, compute_s, comm_s,
 *  fidelity, log_fidelity, max_energy_quanta, ms_gates, reorder_ms,
 *  shuttles, splits, merges, evictions. */
std::string sweepCsvHeader();

/** One CSV row for @p point (no trailing newline). */
std::string sweepCsvRow(const SweepPoint &point);

/** One JSON object for @p point (no surrounding array/comma). */
std::string sweepJsonRow(const SweepPoint &point);

/**
 * Header of the `<out>.errors` sidecar a --keep-going sweep writes one
 * row to per failed point (no trailing newline). Columns: index (the
 * point's absolute index in the expanded spec, stable across shards),
 * the identifying design columns, the outcome class, and the
 * diagnostic.
 */
std::string sweepErrorsHeader();

/**
 * One sidecar row for failed @p point at absolute spec index @p index
 * (no trailing newline). The diagnostic is CSV-quoted (quotes doubled,
 * newlines flattened) so the sidecar stays line-oriented — resume
 * counts and heals it exactly like the data CSV.
 */
std::string sweepErrorRow(size_t index, const SweepPoint &point);

/**
 * Streaming row writer over an ostream: the single formatting path for
 * sweep exports, shared by the batch helpers below, the figure benches
 * and the declarative sweep runner (qccd_explore --sweep). Rows are
 * written as they arrive, so a partial file of a killed run is valid
 * CSV and can be resumed by counting its rows.
 *
 * For byte-stable sharded output, the header is optional: shard 0
 * writes it, later shards do not, and concatenating the shard files in
 * index order reproduces the unsharded export exactly.
 */
class SweepRowWriter
{
  public:
    /**
     * @param out destination stream (kept by reference)
     * @param format CSV or JSON
     * @param with_header write the CSV header / JSON opening bracket
     * @param rows_before rows already in the destination (resumed CSV
     *        appends); used only to place JSON separators correctly
     */
    SweepRowWriter(std::ostream &out, ExportFormat format,
                   bool with_header = true, size_t rows_before = 0);

    /** Append one point (flushes the stream). */
    void write(const SweepPoint &point);

    /** Close the export (JSON array bracket; no-op for CSV). */
    void finish();

    size_t rowsWritten() const { return rows_; }

  private:
    std::ostream &out_;
    ExportFormat format_;
    size_t rows_;
    bool finished_ = false;
};

/**
 * Render sweep points as CSV (header + rows, one per point); see
 * sweepCsvHeader() for the columns.
 */
std::string toCsv(const std::vector<SweepPoint> &points);

/** Render sweep points as a JSON array of objects (same fields). */
std::string toJson(const std::vector<SweepPoint> &points);

/** Write @p text to @p path. @throws ConfigError if unwritable. */
void writeTextFile(const std::string &text, const std::string &path);

/**
 * Atomically replace @p path with @p text: the content is written to
 * `path + ".tmp"` and renamed over the destination, so a reader (or a
 * resumed run after a mid-write kill) sees either the old bytes or the
 * new bytes, never a torn mixture — and the original survives any
 * failure before the rename. @throws ConfigError if unwritable.
 */
void replaceTextFileAtomic(const std::string &text,
                           const std::string &path);

} // namespace qccd

#endif // QCCD_CORE_EXPORT_HPP
