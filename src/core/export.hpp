/**
 * @file
 * Machine-readable export of sweep results: CSV for spreadsheets and
 * plotting scripts, JSON for structured pipelines. Every figure bench
 * can dump its raw series so the paper's plots can be regenerated with
 * any plotting tool.
 */

#ifndef QCCD_CORE_EXPORT_HPP
#define QCCD_CORE_EXPORT_HPP

#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace qccd
{

/**
 * Render sweep points as CSV with one row per point and the columns:
 * application, topology, capacity, gate, reorder, time_s, compute_s,
 * comm_s, fidelity, log_fidelity, max_energy_quanta, ms_gates,
 * reorder_ms, shuttles, splits, merges, evictions.
 */
std::string toCsv(const std::vector<SweepPoint> &points);

/** Render sweep points as a JSON array of objects (same fields). */
std::string toJson(const std::vector<SweepPoint> &points);

/** Write @p text to @p path. @throws ConfigError if unwritable. */
void writeTextFile(const std::string &text, const std::string &path);

} // namespace qccd

#endif // QCCD_CORE_EXPORT_HPP
