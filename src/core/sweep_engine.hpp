/**
 * @file
 * Parallel design-space sweep engine.
 *
 * The paper's headline artifact is a sweep: applications x capacities x
 * topologies x gate implementations (Figs. 6-8). Evaluating points
 * serially wastes both redundant work (the same application is lowered
 * once per point, the same Topology and all-pairs PathFinder rebuilt
 * for dozens of points that share an architecture) and the machine's
 * cores. The engine eliminates both:
 *
 *  - a native-circuit cache lowers each application exactly once per
 *    sweep (decomposeToNative is deterministic, so the cached circuit
 *    is identical to a per-point lowering);
 *  - a ToolflowContext cache builds one Topology + PathFinder per
 *    distinct architecture (keyed by ToolflowContext::cacheKey);
 *  - a fixed-size std::thread worker pool pulls work off a shared
 *    atomic counter and writes results into preallocated slots, so the
 *    result vector is in input order and bit-identical for any worker
 *    count (jobs=1 included);
 *  - jobs are grouped by schedule stage key (see ScheduleKey) and each
 *    worker evaluates through a StagedToolflow, so a point differing
 *    from its predecessor only in model knobs replays the cached
 *    schedule's model log instead of re-scheduling. Every point's row
 *    is still bit-identical to a scalar runToolflow call.
 *
 * Both caches hold state that is immutable after construction, and the
 * caches themselves are populated before any worker starts, so workers
 * share everything without locks.
 */

#ifndef QCCD_CORE_SWEEP_ENGINE_HPP
#define QCCD_CORE_SWEEP_ENGINE_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "core/toolflow.hpp"

namespace qccd
{

/** One design point queued for evaluation. */
struct SweepJob
{
    /** Label recorded in the resulting SweepPoint. */
    std::string application;

    /** Lowered circuit (native gate set); see SweepEngine::nativeBenchmark. */
    std::shared_ptr<const Circuit> native;

    DesignPoint design;
    RunOptions options;
};

/**
 * What SweepEngine::run does with a failing point.
 *
 * Rethrow is the historical contract (the whole batch's work is
 * discarded behind the first exception); Isolate is the fault-tolerant
 * contract (each point carries its own PointOutcome and the batch
 * always completes). Isolation is what --keep-going rides on.
 */
enum class FailurePolicy
{
    Rethrow, ///< run everything, then rethrow the first point's error
    Isolate, ///< record per-point outcomes; run() never throws per-point
};

/** Parallel evaluator for batches of design points. */
class SweepEngine
{
  public:
    /**
     * @param jobs worker count; <= 0 resolves via resolveJobs(): the
     *        QCCD_JOBS environment variable if set, otherwise
     *        std::thread::hardware_concurrency()
     */
    explicit SweepEngine(int jobs = 0);

    /** The resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * The lowered circuit for Table II application @p app, cached per
     * engine so a sweep lowers each application exactly once.
     */
    std::shared_ptr<const Circuit> nativeBenchmark(const std::string &app);

    /** Lower an arbitrary @p circuit into a shareable job input. */
    static std::shared_ptr<const Circuit> lower(const Circuit &circuit);

    /**
     * The shared Topology + PathFinder for @p design, cached per engine
     * under ToolflowContext::cacheKey. Not thread-safe: populate from
     * the sweep thread (run() does this for its whole batch up front).
     */
    std::shared_ptr<const ToolflowContext> context(const DesignPoint &design);

    /**
     * Evaluate every job across the worker pool.
     *
     * Results are returned in input order and are bit-identical for any
     * worker count. Under FailurePolicy::Rethrow (the default), if any
     * job throws the remaining jobs still run and the lowest-indexed
     * exception is rethrown. Under FailurePolicy::Isolate a failing
     * job (including a failing context build) becomes a per-point
     * outcome + diagnostic and the batch always returns completely; a
     * failed point's RunResult is default-constructed and must not be
     * read.
     */
    std::vector<SweepPoint>
    run(const std::vector<SweepJob> &batch,
        FailurePolicy policy = FailurePolicy::Rethrow);

    /**
     * Resolve a requested worker count (see the constructor). A set
     * but malformed QCCD_JOBS (non-integer, trailing junk, < 1, or out
     * of range) is a usage error: a pointed diagnostic goes to stderr
     * and the process exits with status 2 — silently falling back to
     * hardware concurrency would hide the typo behind an unexpected
     * core count.
     */
    static int resolveJobs(int requested);

    /**
     * Cumulative stage-reuse counters summed over every run() batch:
     * how many points ran the scheduler vs. were served by model
     * replay (the sweep's delta-evaluation win, surfaced as the
     * "staged:" line and BM_SweepDelta's metric).
     */
    const StagedToolflow::Stats &deltaStats() const
    {
        return deltaStats_;
    }

  private:
    int jobs_;
    StagedToolflow::Stats deltaStats_;
    std::map<std::string, std::shared_ptr<const Circuit>> circuits_;
    std::map<ContextKey, std::shared_ptr<const ToolflowContext>> contexts_;
};

} // namespace qccd

#endif // QCCD_CORE_SWEEP_ENGINE_HPP
