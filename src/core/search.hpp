/**
 * @file
 * Surrogate-guided design-space search (paper Sections IX-X turned
 * into an optimizer): find the sweep optimum while really evaluating
 * only a fraction of the declared space.
 *
 * The exhaustive sweeps stop scaling around 10^4 points; the spaces a
 * SweepPlan can declare (arbitrary `.topo` graphs x capacities x 17
 * model knobs) are far larger. SearchEngine expands the plan lazily
 * (SweepGrid::point decodes any index on demand), scores every
 * candidate with a cheap CostModel (core/cost_model.hpp), and spends
 * its real-evaluation budget successively-halving down the predicted
 * frontier. Real evaluations run through the existing
 * SweepSpecRunner -> SweepEngine -> StagedToolflow -> ResultStore
 * stack: each rung is one engine batch, sorted by spec index so
 * schedule-key grouping and the replay fast path apply, and rows are
 * byte-identical to what the exhaustive sweep would emit for the same
 * points (that identity is the audit contract `--search-report`
 * exposes and tests/test_search.cpp pins).
 *
 * Determinism: ranking is pure (surrogate scores, ties broken by spec
 * index), calibration sampling is seeded (SearchOptions::seed), and
 * evaluation inherits the engine's any-worker-count bit-identity — so
 * a search's winner, audit rows, and counters are identical for any
 * --jobs and any rerun with the same seed.
 *
 * Search procedure (budget B over a space of N points):
 *  1. When the budget affords it, evaluate a small stratified sample
 *     of the space (deterministic seed) and fit the calibrated
 *     surrogate's corrections on the results.
 *  2. Rank all unevaluated candidates by corrected prediction
 *     (log-fidelity desc, predicted time asc, index asc).
 *  3. Promote the top `remaining - remaining/eta` candidates to real
 *     evaluation, refit on everything measured so far, re-rank, and
 *     repeat with the shrunk remainder until B points have run.
 *  4. The winner is the best REAL result (max log-fidelity, then min
 *     time, then min index) — the simulator stays the oracle; the
 *     surrogate only chooses where to look.
 */

#ifndef QCCD_CORE_SEARCH_HPP
#define QCCD_CORE_SEARCH_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/sweep_spec.hpp"

namespace qccd
{

class SweepEngine;

/**
 * A lazily addressable candidate space: the search needs only its
 * size and random access to points. SweepPlan and plain point vectors
 * (the --recommend path) adapt below.
 */
class SearchSpace
{
  public:
    virtual ~SearchSpace() = default;
    virtual size_t size() const = 0;
    virtual PlannedPoint point(size_t index) const = 0;
};

/** SearchSpace over a parsed SweepPlan (lazy grid decode). */
class PlanSearchSpace : public SearchSpace
{
  public:
    explicit PlanSearchSpace(const SweepPlan &plan) : plan_(&plan) {}
    size_t size() const override { return plan_->size(); }
    PlannedPoint point(size_t index) const override
    {
        return plan_->point(index);
    }

  private:
    const SweepPlan *plan_;
};

/** SearchSpace over an explicit point list. */
class PointsSearchSpace : public SearchSpace
{
  public:
    explicit PointsSearchSpace(const std::vector<PlannedPoint> &points)
        : points_(&points)
    {
    }
    size_t size() const override { return points_->size(); }
    PlannedPoint point(size_t index) const override
    {
        return (*points_)[index];
    }

  private:
    const std::vector<PlannedPoint> *points_;
};

/** How a search run is configured (spec "search" block + CLI flags). */
struct SearchOptions
{
    /** Real-evaluation budget; 0 = max(1, space/4) — the headline
     *  quarter of the exhaustive cost. Capped at the space size. */
    size_t budget = 0;

    /** Stratified calibration-sampling seed. */
    uint64_t seed = SearchSpecOptions::kDefaultSearchSeed;

    /** Successive-halving rate (>= 2). */
    int eta = 2;

    /** Failure isolation and result-store plumbing for the real
     *  evaluations (same semantics as sweeps). */
    SweepRunPolicy policy;
};

/** One real evaluation the search performed. */
struct SearchEvaluation
{
    /** Absolute spec index (== the exhaustive CSV row position). */
    size_t index = 0;

    SweepPoint point;
};

/** Counters of one search run (the CLI's greppable `search:` line). */
struct SearchStats
{
    size_t space = 0;       ///< declared points
    size_t budget = 0;      ///< resolved real-evaluation budget
    size_t evaluated = 0;   ///< points really evaluated
    size_t calibration = 0; ///< evaluations spent on the seeded sample
    size_t rungs = 0;       ///< successive-halving promotions
    SweepRunStats run;      ///< cache/staged counters (aggregated)
};

/** What a search run produced. */
struct SearchOutcome
{
    bool haveWinner = false;
    size_t winnerIndex = 0;
    SweepPoint winner;

    /** Every real evaluation, ascending by spec index (the audit CSV;
     *  failed points carry their outcome and produce no row). */
    std::vector<SearchEvaluation> evaluations;

    SearchStats stats;
};

/** Successive-halving searcher over a SweepEngine (see file docs). */
class SearchEngine
{
  public:
    explicit SearchEngine(SweepEngine &engine);

    /**
     * Search @p space under @p options.
     *
     * Throws on the first evaluation failure unless
     * options.policy.keepGoing is set (failed points then consume
     * budget and are reported in evaluations). Throws ConfigError if
     * the space is empty.
     */
    SearchOutcome run(const SearchSpace &space,
                      const SearchOptions &options);

  private:
    SweepEngine &engine_;
    SweepSpecRunner runner_;
};

} // namespace qccd

#endif // QCCD_CORE_SEARCH_HPP
