#include "core/sweep_engine.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace qccd
{

int
SweepEngine::resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("QCCD_JOBS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepEngine::SweepEngine(int jobs) : jobs_(resolveJobs(jobs))
{
}

std::shared_ptr<const Circuit>
SweepEngine::lower(const Circuit &circuit)
{
    QCCD_FAULT_POINT("engine.lower");
    return std::make_shared<const Circuit>(decomposeToNative(circuit));
}

std::shared_ptr<const Circuit>
SweepEngine::nativeBenchmark(const std::string &app)
{
    auto it = circuits_.find(app);
    if (it == circuits_.end())
        it = circuits_.emplace(app, lower(makeBenchmark(app))).first;
    return it->second;
}

std::shared_ptr<const ToolflowContext>
SweepEngine::context(const DesignPoint &design)
{
    const ContextKey key = ToolflowContext::cacheKey(design);
    auto it = contexts_.find(key);
    if (it == contexts_.end()) {
        QCCD_FAULT_POINT("engine.context");
        it = contexts_
                 .emplace(key, std::make_shared<const ToolflowContext>(
                                   design))
                 .first;
    }
    return it->second;
}

std::vector<SweepPoint>
SweepEngine::run(const std::vector<SweepJob> &batch,
                 FailurePolicy policy)
{
    // Populate the context cache serially so the workers only ever read
    // shared state; each job's context is pinned by index. A failing
    // context build is itself a per-point failure: the job is marked
    // and skipped by the workers instead of sinking the whole batch.
    std::vector<std::shared_ptr<const ToolflowContext>> jobContexts(
        batch.size());
    std::vector<SweepPoint> points(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        const SweepJob &job = batch[i];
        fatalUnless(job.native != nullptr,
                    "sweep job '" + job.application +
                        "' has no lowered circuit");
        points[i].application = job.application;
        points[i].design = job.design;
        try {
            jobContexts[i] = context(job.design);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    }

    std::atomic<size_t> next{0};

    auto worker = [&]() {
        // One buffer pool per worker: schedulers of consecutive points
        // reuse the gate queue, heap, and device-state storage (fully
        // reinitialized per run, so results don't depend on job order).
        SchedulerScratch scratch;
        for (size_t i = next.fetch_add(1); i < batch.size();
             i = next.fetch_add(1)) {
            const SweepJob &job = batch[i];
            if (errors[i])
                continue; // context build already failed
            try {
                points[i].result =
                    runToolflow(*job.native, job.design, *jobContexts[i],
                                job.options, &scratch);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const size_t workers =
        std::min(static_cast<size_t>(jobs_), batch.size());
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (size_t i = 0; i < batch.size(); ++i) {
        if (!errors[i])
            continue;
        if (policy == FailurePolicy::Rethrow)
            std::rethrow_exception(errors[i]);
        points[i].outcome = classifyFailure(errors[i], &points[i].error);
        points[i].result = RunResult{};
    }
    return points;
}

} // namespace qccd
