#include "core/sweep_engine.hpp"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <thread>
#include <utility>

#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace qccd
{

int
SweepEngine::resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("QCCD_JOBS")) {
        // A set QCCD_JOBS must be a well-formed worker count; anything
        // else is a usage error (exit 2), not a silent fallback. atoi
        // would quietly turn "4x" into 4 and "garbage" into a
        // hardware-concurrency run.
        int parsed = 0;
        const char *end = env + std::strlen(env);
        const auto [ptr, ec] = std::from_chars(env, end, parsed);
        if (ec != std::errc() || ptr != end || parsed < 1) {
            std::fprintf(stderr,
                         "error: bad QCCD_JOBS '%s': expected an "
                         "integer >= 1\n",
                         env);
            std::exit(2);
        }
        return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepEngine::SweepEngine(int jobs) : jobs_(resolveJobs(jobs))
{
}

std::shared_ptr<const Circuit>
SweepEngine::lower(const Circuit &circuit)
{
    QCCD_FAULT_POINT("engine.lower");
    return std::make_shared<const Circuit>(decomposeToNative(circuit));
}

std::shared_ptr<const Circuit>
SweepEngine::nativeBenchmark(const std::string &app)
{
    auto it = circuits_.find(app);
    if (it == circuits_.end())
        it = circuits_.emplace(app, lower(makeBenchmark(app))).first;
    return it->second;
}

std::shared_ptr<const ToolflowContext>
SweepEngine::context(const DesignPoint &design)
{
    const ContextKey key = ToolflowContext::cacheKey(design);
    auto it = contexts_.find(key);
    if (it == contexts_.end()) {
        QCCD_FAULT_POINT("engine.context");
        it = contexts_
                 .emplace(key, std::make_shared<const ToolflowContext>(
                                   design))
                 .first;
    }
    return it->second;
}

std::vector<SweepPoint>
SweepEngine::run(const std::vector<SweepJob> &batch,
                 FailurePolicy policy)
{
    // Populate the context cache serially so the workers only ever read
    // shared state; each job's context is pinned by index. A failing
    // context build is itself a per-point failure: the job is marked
    // and skipped by the workers instead of sinking the whole batch.
    std::vector<std::shared_ptr<const ToolflowContext>> jobContexts(
        batch.size());
    std::vector<SweepPoint> points(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        const SweepJob &job = batch[i];
        fatalUnless(job.native != nullptr,
                    "sweep job '" + job.application +
                        "' has no lowered circuit");
        points[i].application = job.application;
        points[i].design = job.design;
        try {
            jobContexts[i] = context(job.design);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    }

    const size_t workers = std::max<size_t>(
        std::min(static_cast<size_t>(jobs_), batch.size()), 1);

    // Evaluation order: group jobs by schedule stage key so each
    // worker's StagedToolflow sees same-key points back to back and
    // serves every point after a group's first by model replay. Groups
    // keep first-appearance order and are split into contiguous spans
    // so a large group still spreads across the pool (each span pays
    // one full schedule). Results land in input-order slots and every
    // point is bit-identical to a scalar runToolflow call, so grouping
    // never changes the rows — only how much work computes them.
    std::vector<size_t> order;
    order.reserve(batch.size());
    std::vector<std::pair<size_t, size_t>> spans; // [begin,end) in order
    {
        std::map<ScheduleKey, size_t> groupOf;
        std::vector<std::vector<size_t>> groups;
        for (size_t i = 0; i < batch.size(); ++i) {
            const auto [it, inserted] = groupOf.emplace(
                scheduleKeyFor(*batch[i].native, batch[i].design,
                               batch[i].options),
                groups.size());
            if (inserted)
                groups.emplace_back();
            groups[it->second].push_back(i);
        }
        for (const std::vector<size_t> &g : groups) {
            const size_t chunk =
                std::max<size_t>(1, (g.size() + workers - 1) / workers);
            for (size_t off = 0; off < g.size(); off += chunk) {
                const size_t len = std::min(chunk, g.size() - off);
                spans.emplace_back(order.size(), order.size() + len);
                order.insert(order.end(), g.begin() + off,
                             g.begin() + off + len);
            }
        }
    }

    std::atomic<size_t> nextSpan{0};
    std::vector<StagedToolflow::Stats> workerStats(workers);

    auto worker = [&](size_t w) {
        // One staged evaluator per worker: it carries the scratch
        // buffer pool plus the placement/schedule stage caches across
        // this worker's spans (fully keyed, so results don't depend on
        // job order).
        StagedToolflow staged;
        for (size_t s = nextSpan.fetch_add(1); s < spans.size();
             s = nextSpan.fetch_add(1)) {
            for (size_t k = spans[s].first; k < spans[s].second; ++k) {
                const size_t i = order[k];
                const SweepJob &job = batch[i];
                if (errors[i])
                    continue; // context build already failed
                try {
                    points[i].result =
                        staged.run(*job.native, job.design,
                                   *jobContexts[i], job.options);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        }
        workerStats[w] = staged.stats();
    };

    if (workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker, w);
        for (std::thread &t : pool)
            t.join();
    }

    for (const StagedToolflow::Stats &s : workerStats) {
        deltaStats_.fullSchedules += s.fullSchedules;
        deltaStats_.replays += s.replays;
        deltaStats_.placementsReused += s.placementsReused;
    }

    for (size_t i = 0; i < batch.size(); ++i) {
        if (!errors[i])
            continue;
        if (policy == FailurePolicy::Rethrow)
            std::rethrow_exception(errors[i]);
        points[i].outcome = classifyFailure(errors[i], &points[i].error);
        points[i].result = RunResult{};
    }
    return points;
}

} // namespace qccd
