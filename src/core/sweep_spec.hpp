/**
 * @file
 * Declarative sweep specifications: run any design-space scenario from
 * a file instead of a compiled-in bench.
 *
 * A `.sweep` file is a small JSON document (hand-rolled parser, no
 * dependencies; `#` comments and trailing commas are allowed) that
 * declares one or more cross-product grids over the toolflow's inputs:
 *
 *     {
 *       "name": "fig6_trap_sizing",        # output stem
 *       "sweeps": [{
 *         "apps": ["adder", "qft"],        # builtin or "qasm:FILE"
 *         "topology": "linear:6",
 *         "capacity": [14, 18, 22],
 *         "gate": "FM",                    # AM1 | AM2 | PM | FM
 *         "reorder": "GS",                 # GS | IS
 *         "buffer": 2,
 *         "policy": "packed",              # packed | balanced
 *         "params": {"heating_k1": 0.1},   # see hardwareOverrideKeys()
 *         "options": {"decompose_runtime": true}
 *       }]
 *     }
 *
 * Every grid key except "options" accepts either a scalar (fixed for
 * the whole grid) or an array (a sweep axis). Axes expand as nested
 * loops in declaration order — the first array declared varies slowest
 * — so a spec can reproduce any compiled bench's row order exactly.
 * "params" values are objects mapping model-parameter names (the
 * paper's sensitivity axes: gate fidelity constants, heating rates,
 * shuttle timings) to numbers; an array of such objects sweeps
 * co-varying parameter sets that a plain cross product cannot express.
 * Grids expand in file order and concatenate into one row stream.
 *
 * An optional top-level "search" block configures surrogate-guided
 * search over the same space (core/search.hpp):
 *
 *     "search": {"budget": 16, "seed": 7, "eta": 2}
 *
 * Parsing yields a SweepPlan first — grids hold their axes as
 * pre-validated value setters and decode any point index on demand —
 * so a search can address a combinatorially large space without
 * materializing it. parseSweepSpec() is the eager wrapper that expands
 * a plan into the flat point list sweeps execute.
 *
 * Expanded points execute through the shared SweepEngine in batches,
 * with contiguous sharding (--shard i/n; concatenating shard outputs in
 * index order is byte-identical to the unsharded run) and append/resume
 * (completed rows already in the output CSV are skipped). Rows stream
 * through SweepRowWriter (core/export.hpp), the same formatting path
 * the figure benches use, so a spec-driven reproduction of a bench is
 * bit-identical to the compiled bench.
 */

#ifndef QCCD_CORE_SWEEP_SPEC_HPP
#define QCCD_CORE_SWEEP_SPEC_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "core/sweep.hpp"

namespace qccd
{

class ResultStore;
class SweepEngine;

/** One expanded grid point, ready to be evaluated. */
struct PlannedPoint
{
    /** Label recorded in the output rows (builtin name or QASM stem). */
    std::string application;

    /** Path of the QASM source; empty for builtin applications. */
    std::string qasmPath;

    /**
     * Already-lowered circuit, set by callers that build points
     * programmatically around a circuit with no spec name (the
     * --recommend path). When set it wins over application/qasmPath
     * for evaluation; `application` stays the row label.
     */
    std::shared_ptr<const Circuit> native;

    DesignPoint design;
    RunOptions options;
};

/** A parsed, fully expanded sweep specification. */
struct SweepSpec
{
    /** Output stem: `qccd_explore --sweep` writes <name>.<format>. */
    std::string name;

    /** Optional free-text description. */
    std::string description;

    /** Every grid point in file order (grids concatenated). */
    std::vector<PlannedPoint> points;
};

/** Spec-level configuration of the surrogate-guided search
 *  (`"search"` block; see core/search.hpp for the semantics). */
struct SearchSpecOptions
{
    /** True when the spec declared a "search" block. */
    bool declared = false;

    /** Real-evaluation budget; 0 = default (a quarter of the space,
     *  the headline ratio, but at least one point). */
    size_t budget = 0;

    /** Calibration-sampling seed (deterministic by construction). */
    uint64_t seed = kDefaultSearchSeed;

    /** Successive-halving rate: each rung keeps ~1/eta of the
     *  remaining budget for later rungs. */
    int eta = 2;

    static constexpr uint64_t kDefaultSearchSeed = 0x9E3779B97F4A7C15ULL;
};

/**
 * One declared grid in lazy form: a base point plus per-axis vectors of
 * pre-validated value setters. point(i) decodes the odometer (first
 * declared axis varies slowest — identical order to eager expansion)
 * without touching any other index, so a search can address point
 * 814_231 of a million-point grid in O(axes).
 */
class SweepGrid
{
  public:
    using Setter = std::function<void(PlannedPoint &)>;

    struct Axis
    {
        std::string key;
        std::vector<Setter> values;
    };

    SweepGrid(PlannedPoint base, std::vector<Axis> axes);

    /** Number of points this grid expands to (product of axis sizes). */
    size_t size() const { return size_; }

    /** Decode point @p index (grid-local, in [0, size())). */
    PlannedPoint point(size_t index) const;

    /** The scalar-valued base every point starts from. */
    const PlannedPoint &base() const { return base_; }

  private:
    PlannedPoint base_;
    std::vector<Axis> axes_;
    size_t size_ = 1;
};

/**
 * A parsed sweep specification with its grids kept lazy. expand() is
 * exactly the flat point list parseSweepSpec() returns; size()/point()
 * serve the search layer without materializing the space.
 */
struct SweepPlan
{
    std::string name;
    std::string description;
    SearchSpecOptions search;
    std::vector<SweepGrid> grids;

    /** Total points across grids. */
    size_t size() const;

    /** Decode absolute point @p index (spec order, grids
     *  concatenated) — the index sweeps and CSV rows use. */
    PlannedPoint point(size_t index) const;

    /** Eagerly expand every grid, in spec order. */
    std::vector<PlannedPoint> expand() const;
};

/** Lazy counterpart of parseSweepSpec (same schema, same errors). */
SweepPlan parseSweepPlan(const std::string &text,
                         const std::string &origin = "sweep",
                         const std::string &base_dir = "");

/** Parse a `.sweep` file into a lazy plan. */
SweepPlan parseSweepPlanFile(const std::string &path);

/**
 * Grid keys that take axis values ("apps", "topology", "capacity",
 * ...). The single source of truth for the spec schema, shared by the
 * parser's membership check and `qccd_lint`'s static walk.
 */
const std::vector<std::string> &sweepAxisKeys();

/** Hard cap on expanded points, so a typo'd grid cannot OOM the host
 *  (shared by the parser and `qccd_lint`'s static size check). */
inline constexpr size_t kMaxSweepPoints = size_t{1} << 20;

/**
 * Parse sweep-spec text.
 *
 * @param text the spec document
 * @param origin name used in error messages (e.g. the file path)
 * @param base_dir directory "qasm:" application paths are resolved
 *        against (empty: the current working directory)
 * @throws ConfigError with origin:line:column on any syntax or schema
 *         error — malformed input never crashes
 */
SweepSpec parseSweepSpec(const std::string &text,
                         const std::string &origin = "sweep",
                         const std::string &base_dir = "");

/** Parse a `.sweep` file; "qasm:" paths resolve relative to it. */
SweepSpec parseSweepSpecFile(const std::string &path);

/** Shard selector: contiguous slice @p index of @p count. */
struct SweepShard
{
    int index = 0;
    int count = 1;
};

/** Parse "i/n" (0 <= i < n); throws ConfigError on bad input. */
SweepShard parseShard(const std::string &text);

/**
 * The contiguous half-open range [first, last) of @p total points that
 * shard @p index of @p count evaluates. Slices are balanced (sizes
 * differ by at most one) and their in-order concatenation covers
 * 0..total exactly.
 */
std::pair<size_t, size_t> shardRange(size_t total, int index, int count);

/** How SweepSpecRunner::run reacts when a point fails. */
struct SweepRunPolicy
{
    /** Isolate failures as per-point outcomes instead of rethrowing
     *  the first one (the `--keep-going` behaviour). */
    bool keepGoing = false;

    /** Under keepGoing, stop evaluating once this many points have
     *  failed and at least one point remains (0 = unlimited). */
    size_t maxErrors = 0;

    /**
     * Persistent result store consulted before evaluating each point
     * and fed every Ok result (nullptr = no caching). Cache-hit rows
     * are byte-identical to recomputed ones; any cache failure mid-run
     * (I/O error, injected fault) disables the cache with a warning
     * and the sweep continues cold — the cache can slow a run down,
     * never change or sink it.
     */
    ResultStore *cache = nullptr;

    /**
     * Audit mode: hits are recomputed anyway and compared bit-exactly
     * against the cached record; divergences are counted in
     * SweepRunStats::cacheDivergent (the emitted row is always the
     * recomputed one). Misses still warm the cache.
     */
    bool cacheVerify = false;
};

/** What a SweepSpecRunner::run call did. */
struct SweepRunStats
{
    /** Points emitted (successes and isolated failures). */
    size_t evaluated = 0;

    /** Emitted points whose outcome is not Ok. */
    size_t failed = 0;

    /** True when maxErrors tripped with points still unevaluated. */
    bool aborted = false;

    /** Points answered from the result store without evaluation. */
    size_t cacheHits = 0;

    /** Under cacheVerify: hits whose recomputation disagreed with the
     *  stored record (any nonzero count is a defect report). */
    size_t cacheDivergent = 0;

    /** Evaluated points that ran the full scheduler (staged toolflow;
     *  see SweepEngine::deltaStats). @{ */
    size_t fullSchedules = 0;

    /** Evaluated points served by model replay of a cached schedule. */
    size_t replays = 0;
    /** @} */
};

/**
 * Evaluates planned points through a SweepEngine, streaming results.
 *
 * Builtin applications are lowered once per engine (the engine's own
 * cache); QASM applications are parsed and lowered once per runner.
 * Points are evaluated in batches (each batch one engine.run call, so
 * a batch rides the worker pool) and emitted strictly in input order.
 * Results are bit-identical for any worker count and batch size.
 */
class SweepSpecRunner
{
  public:
    explicit SweepSpecRunner(SweepEngine &engine);

    /**
     * Evaluate points[skip..points.size()) in order.
     *
     * Without @p policy.keepGoing the first failure propagates as an
     * exception (nothing after it is evaluated). With it, a failed
     * point — whether its circuit fails to load or its toolflow run
     * throws — is emitted with a non-Ok outcome and evaluation
     * continues; successful points are byte-identical to a fault-free
     * run either way.
     *
     * @param points planned points (typically a shard slice)
     * @param skip completed points to skip (resume support)
     * @param emit called once per completed point, in input order
     * @param policy failure isolation (see SweepRunPolicy)
     * @param batch_size points per engine batch (>= 1)
     */
    SweepRunStats
    run(const std::vector<PlannedPoint> &points, size_t skip,
        const std::function<void(const SweepPoint &)> &emit,
        const SweepRunPolicy &policy,
        size_t batch_size = kDefaultBatchSize);

    /** Rethrow-first convenience overload (default policy). */
    void run(const std::vector<PlannedPoint> &points, size_t skip,
             const std::function<void(const SweepPoint &)> &emit,
             size_t batch_size = kDefaultBatchSize);

    /** Points handed to the engine per run() batch by default. */
    static constexpr size_t kDefaultBatchSize = 64;

    /** Resolve a point's lowered circuit (builtin via the engine's
     *  cache, QASM via this runner's; point.native wins when set).
     *  Public so the search layer reuses the same caches for feature
     *  extraction. */
    std::shared_ptr<const Circuit> circuitFor(const PlannedPoint &point);

  private:
    /** Content digest of @p native, memoized per circuit object (the
     *  runner's circuits are shared, so identity implies content). */
    Digest128 circuitDigestFor(const Circuit &native);

    SweepEngine &engine_;
    std::map<std::string, std::shared_ptr<const Circuit>> qasmCache_;
    std::map<const Circuit *, Digest128> digestCache_;
};

} // namespace qccd

#endif // QCCD_CORE_SWEEP_SPEC_HPP
