#include "core/toolflow.hpp"

#include <algorithm>
#include <sstream>

#include "circuit/decompose.hpp"

namespace qccd
{

TimeUs
RunResult::communicationTime() const
{
    return std::max(sim.makespan - computeOnlyTime, 0.0);
}

ToolflowContext::ToolflowContext(const DesignPoint &design)
    : topo_(std::make_unique<const Topology>(design.buildTopology())),
      paths_(std::make_unique<const PathFinder>(
          *topo_, Scheduler::pathCostFrom(design.hw)))
{
}

std::string
ToolflowContext::cacheKey(const DesignPoint &design)
{
    const ShuttleTimeModel &s = design.hw.shuttle;
    std::ostringstream key;
    key.precision(17);
    key << design.topologySpec << '|' << design.trapCapacity << '|'
        << s.movePerSegment << '|' << s.split << '|' << s.merge << '|'
        << s.yJunction << '|' << s.xJunction;
    return key.str();
}

RunResult
runToolflow(const Circuit &native, const DesignPoint &design,
            const ToolflowContext &context, const RunOptions &options)
{
    RunResult result;
    {
        ScheduleOptions sched;
        sched.collectTrace = options.collectTrace;
        sched.mappingPolicy = options.mappingPolicy;
        Scheduler scheduler(native, context.topology(), design.hw,
                            context.paths(), sched);
        result.sim = scheduler.run().metrics;
    }
    if (options.decomposeRuntime) {
        // Second pass with shuttling idealized to zero duration yields
        // the pure computation critical path; the difference is the
        // communication share (Fig. 6b's decomposition). The pass
        // reuses the lowered circuit and the shared context: only the
        // schedule itself is recomputed.
        ScheduleOptions sched;
        sched.collectTrace = false;
        sched.zeroCommTimes = true;
        sched.mappingPolicy = options.mappingPolicy;
        Scheduler scheduler(native, context.topology(), design.hw,
                            context.paths(), sched);
        result.computeOnlyTime = scheduler.run().metrics.makespan;
    }
    return result;
}

RunResult
runToolflow(const Circuit &circuit, const DesignPoint &design,
            const RunOptions &options)
{
    const Circuit native = decomposeToNative(circuit);
    const ToolflowContext context(design);
    return runToolflow(native, design, context, options);
}

ScheduleResult
runToolflowDetailed(const Circuit &native, const DesignPoint &design,
                    const ToolflowContext &context)
{
    ScheduleOptions sched;
    sched.collectTrace = true;
    Scheduler scheduler(native, context.topology(), design.hw,
                        context.paths(), sched);
    return scheduler.run();
}

ScheduleResult
runToolflowDetailed(const Circuit &circuit, const DesignPoint &design)
{
    const Circuit native = decomposeToNative(circuit);
    const ToolflowContext context(design);
    return runToolflowDetailed(native, design, context);
}

} // namespace qccd
