#include "core/toolflow.hpp"

#include <algorithm>
#include <ostream>

#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace qccd
{

std::ostream &
operator<<(std::ostream &out, const ContextKey &key)
{
    return out << key.topologySpec << '|' << key.trapCapacity << '|'
               << key.movePerSegment << '|' << key.split << '|'
               << key.merge << '|' << key.yJunction << '|'
               << key.xJunction;
}

TimeUs
RunResult::communicationTime() const
{
    return std::max(sim.makespan - computeOnlyTime, 0.0);
}

ToolflowContext::ToolflowContext(const DesignPoint &design)
    : topo_(std::make_unique<const Topology>(design.buildTopology())),
      paths_(std::make_unique<const PathFinder>(
          *topo_, Scheduler::pathCostFrom(design.hw)))
{
    // Checked builds re-audit the full graph invariant set on every
    // context, so a builder bug cannot hand the toolflow a device the
    // .topo loader would have rejected.
    QCCD_CHECKED_ONLY(topo_->validate();)
}

ContextKey
ToolflowContext::cacheKey(const DesignPoint &design)
{
    const ShuttleTimeModel &s = design.hw.shuttle;
    return ContextKey{design.topologySpec, design.trapCapacity,
                      s.movePerSegment,   s.split,
                      s.merge,            s.yJunction,
                      s.xJunction};
}

RunResult
runToolflow(const Circuit &native, const DesignPoint &design,
            const ToolflowContext &context, const RunOptions &options,
            SchedulerScratch *scratch)
{
    QCCD_FAULT_POINT("toolflow.run");

    // Both passes (and, through the caller's scratch, consecutive
    // points of a sweep worker) schedule out of one buffer pool.
    SchedulerScratch local;
    if (scratch == nullptr)
        scratch = &local;

    // One watchdog budget covers the whole point: both passes share
    // the same absolute due time, armed when evaluation starts.
    const Deadline deadline = options.pointTimeoutMs > 0
                                  ? Deadline::afterMs(
                                        options.pointTimeoutMs)
                                  : Deadline();

    RunResult result;
    {
        ScheduleOptions sched;
        sched.collectTrace = options.collectTrace;
        sched.mappingPolicy = options.mappingPolicy;
        sched.deadline = deadline;
        Scheduler scheduler(native, context.topology(), design.hw,
                            context.paths(), sched, scratch);
        result.sim = scheduler.run().metrics;
    }
    if (options.decomposeRuntime) {
        // Second pass with shuttling idealized to zero duration yields
        // the pure computation critical path; the difference is the
        // communication share (Fig. 6b's decomposition). The pass
        // reuses the lowered circuit, the shared context, and the
        // first pass's scratch buffers: only the schedule itself is
        // recomputed.
        ScheduleOptions sched;
        sched.collectTrace = false;
        sched.zeroCommTimes = true;
        sched.mappingPolicy = options.mappingPolicy;
        sched.deadline = deadline;
        Scheduler scheduler(native, context.topology(), design.hw,
                            context.paths(), sched, scratch);
        result.computeOnlyTime = scheduler.run().metrics.makespan;
    }
    return result;
}

RunResult
runToolflow(const Circuit &circuit, const DesignPoint &design,
            const RunOptions &options)
{
    const Circuit native = decomposeToNative(circuit);
    const ToolflowContext context(design);
    return runToolflow(native, design, context, options);
}

ScheduleResult
runToolflowDetailed(const Circuit &native, const DesignPoint &design,
                    const ToolflowContext &context)
{
    ScheduleOptions sched;
    sched.collectTrace = true;
    Scheduler scheduler(native, context.topology(), design.hw,
                        context.paths(), sched);
    return scheduler.run();
}

ScheduleResult
runToolflowDetailed(const Circuit &circuit, const DesignPoint &design)
{
    const Circuit native = decomposeToNative(circuit);
    const ToolflowContext context(design);
    return runToolflowDetailed(native, design, context);
}

} // namespace qccd
