#include "core/toolflow.hpp"

#include <algorithm>
#include <ostream>

#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace qccd
{

std::ostream &
operator<<(std::ostream &out, const ContextKey &key)
{
    return out << key.topologySpec << '|' << key.trapCapacity << '|'
               << key.movePerSegment << '|' << key.split << '|'
               << key.merge << '|' << key.yJunction << '|'
               << key.xJunction;
}

TimeUs
RunResult::communicationTime() const
{
    return std::max(sim.makespan - computeOnlyTime, 0.0);
}

ToolflowContext::ToolflowContext(const DesignPoint &design)
    : topo_(std::make_unique<const Topology>(design.buildTopology())),
      paths_(std::make_unique<const PathFinder>(
          *topo_, Scheduler::pathCostFrom(design.hw)))
{
    // Checked builds re-audit the full graph invariant set on every
    // context, so a builder bug cannot hand the toolflow a device the
    // .topo loader would have rejected.
    QCCD_CHECKED_ONLY(topo_->validate();)
}

ContextKey
ToolflowContext::cacheKey(const DesignPoint &design)
{
    const ShuttleTimeModel &s = design.hw.shuttle;
    return ContextKey{design.topologySpec, design.trapCapacity,
                      s.movePerSegment,   s.split,
                      s.merge,            s.yJunction,
                      s.xJunction};
}

PlacementKey
placementKeyFor(const Circuit &native, const DesignPoint &design,
                const RunOptions &options)
{
    PlacementKey key;
    key.circuit = reinterpret_cast<std::uintptr_t>(&native);
    key.topologySpec = design.topologySpec;
    key.trapCapacity = design.trapCapacity;
    key.bufferSlots = design.hw.bufferSlots;
    key.mappingPolicy = options.mappingPolicy;
    return key;
}

ScheduleKey
scheduleKeyFor(const Circuit &native, const DesignPoint &design,
               const RunOptions &options)
{
    const HardwareParams &hw = design.hw;
    ScheduleKey key;
    key.circuit = reinterpret_cast<std::uintptr_t>(&native);
    key.topologySpec = design.topologySpec;
    key.trapCapacity = design.trapCapacity;
    key.movePerSegment = hw.shuttle.movePerSegment;
    key.split = hw.shuttle.split;
    key.merge = hw.shuttle.merge;
    key.yJunction = hw.shuttle.yJunction;
    key.xJunction = hw.shuttle.xJunction;
    key.ionSwapRotation = hw.shuttle.ionSwapRotation;
    key.gateImpl = hw.gateImpl;
    key.oneQubitUs = hw.oneQubitUs;
    key.measureUs = hw.measureUs;
    key.twoQubitFloorUs = hw.twoQubitFloorUs;
    key.reorder = hw.reorder;
    key.bufferSlots = hw.bufferSlots;
    key.mappingPolicy = options.mappingPolicy;
    key.decomposeRuntime = options.decomposeRuntime;
    key.collectTrace = options.collectTrace;
    key.pointTimeoutMs = options.pointTimeoutMs;
    return key;
}

namespace
{

/**
 * The shared body of every full toolflow evaluation. @p placement
 * optionally injects a cached initial mapping (both passes use the
 * same one — they map identically anyway); @p log optionally records
 * the real pass's model-relevant primitives for later replay (the
 * zero-communication pass is schedule-determined and never replayed,
 * so it is not logged).
 */
RunResult
runToolflowImpl(const Circuit &native, const DesignPoint &design,
                const ToolflowContext &context,
                const RunOptions &options, SchedulerScratch *scratch,
                const InitialMapping *placement, ModelEvalLog *log)
{
    QCCD_FAULT_POINT("toolflow.run");

    // Both passes (and, through the caller's scratch, consecutive
    // points of a sweep worker) schedule out of one buffer pool.
    SchedulerScratch local;
    if (scratch == nullptr)
        scratch = &local;

    // One watchdog budget covers the whole point: both passes share
    // the same absolute due time, armed when evaluation starts.
    const Deadline deadline = options.pointTimeoutMs > 0
                                  ? Deadline::afterMs(
                                        options.pointTimeoutMs)
                                  : Deadline();

    RunResult result;
    {
        ScheduleOptions sched;
        sched.collectTrace = options.collectTrace;
        sched.mappingPolicy = options.mappingPolicy;
        sched.deadline = deadline;
        sched.placement = placement;
        sched.modelLog = log;
        Scheduler scheduler(native, context.topology(), design.hw,
                            context.paths(), sched, scratch);
        result.sim = scheduler.run().metrics;
    }
    if (options.decomposeRuntime) {
        // Second pass with shuttling idealized to zero duration yields
        // the pure computation critical path; the difference is the
        // communication share (Fig. 6b's decomposition). The pass
        // reuses the lowered circuit, the shared context, and the
        // first pass's scratch buffers: only the schedule itself is
        // recomputed.
        ScheduleOptions sched;
        sched.collectTrace = false;
        sched.zeroCommTimes = true;
        sched.mappingPolicy = options.mappingPolicy;
        sched.deadline = deadline;
        sched.placement = placement;
        Scheduler scheduler(native, context.topology(), design.hw,
                            context.paths(), sched, scratch);
        result.computeOnlyTime = scheduler.run().metrics.makespan;
    }
    return result;
}

} // namespace

RunResult
runToolflow(const Circuit &native, const DesignPoint &design,
            const ToolflowContext &context, const RunOptions &options,
            SchedulerScratch *scratch)
{
    return runToolflowImpl(native, design, context, options, scratch,
                           nullptr, nullptr);
}

RunResult
runToolflow(const Circuit &circuit, const DesignPoint &design,
            const RunOptions &options)
{
    const Circuit native = decomposeToNative(circuit);
    const ToolflowContext context(design);
    return runToolflow(native, design, context, options);
}

RunResult
StagedToolflow::run(const Circuit &native, const DesignPoint &design,
                    const ToolflowContext &context,
                    const RunOptions &options)
{
    const ScheduleKey key = scheduleKeyFor(native, design, options);
    if (haveSchedule_ && key == scheduleKey_) {
        // Model-knobs-only delta: the cached schedule is bit-identical
        // to what this point would produce, so replay its model log
        // under the new knobs. The fault point and parameter
        // validation keep failure semantics aligned with the full
        // path (an infeasible model knob must classify as infeasible
        // here too, not silently evaluate).
        QCCD_FAULT_POINT("toolflow.run");
        design.hw.validate();
        RunResult result = scheduleBase_;
        result.sim = replayModelEval(log_, design.hw, scheduleBase_.sim);
        ++stats_.replays;
        return result;
    }

    const PlacementKey pkey = placementKeyFor(native, design, options);
    const InitialMapping *placement = nullptr;
    if (havePlacement_ && pkey == placementKey_) {
        placement = &placement_;
        ++stats_.placementsReused;
    }

    // Invalidate before scheduling so a throw (timeout, fault
    // injection, infeasible config) can never leave a stale schedule
    // paired with the new key.
    haveSchedule_ = false;
    log_.clear();
    RunResult result = runToolflowImpl(native, design, context, options,
                                       &scratch_, placement, &log_);
    ++stats_.fullSchedules;

    scheduleKey_ = key;
    scheduleBase_ = result;
    haveSchedule_ = true;
    if (placement == nullptr) {
        // Adopt this run's mapping for future placement reuse. The
        // scheduler recomputes mapQubits internally; rerunning it here
        // is cheap relative to a schedule and keeps the cache honest.
        placementKey_ = pkey;
        placement_ = mapQubits(native, context.topology(),
                               design.hw.bufferSlots,
                               options.mappingPolicy);
        havePlacement_ = true;
    }
    return result;
}

ScheduleResult
runToolflowDetailed(const Circuit &native, const DesignPoint &design,
                    const ToolflowContext &context,
                    const RunOptions &options)
{
    ScheduleOptions sched;
    sched.collectTrace = true;
    sched.mappingPolicy = options.mappingPolicy;
    if (options.pointTimeoutMs > 0)
        sched.deadline = Deadline::afterMs(options.pointTimeoutMs);
    Scheduler scheduler(native, context.topology(), design.hw,
                        context.paths(), sched);
    return scheduler.run();
}

ScheduleResult
runToolflowDetailed(const Circuit &circuit, const DesignPoint &design,
                    const RunOptions &options)
{
    const Circuit native = decomposeToNative(circuit);
    const ToolflowContext context(design);
    return runToolflowDetailed(native, design, context, options);
}

} // namespace qccd
