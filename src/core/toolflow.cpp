#include "core/toolflow.hpp"

#include <algorithm>

#include "circuit/decompose.hpp"

namespace qccd
{

TimeUs
RunResult::communicationTime() const
{
    return std::max(sim.makespan - computeOnlyTime, 0.0);
}

RunResult
runToolflow(const Circuit &circuit, const DesignPoint &design,
            const RunOptions &options)
{
    const Circuit native = decomposeToNative(circuit);
    const Topology topo = design.buildTopology();

    RunResult result;
    {
        ScheduleOptions sched;
        sched.collectTrace = options.collectTrace;
        sched.mappingPolicy = options.mappingPolicy;
        Scheduler scheduler(native, topo, design.hw, sched);
        result.sim = scheduler.run().metrics;
    }
    if (options.decomposeRuntime) {
        // Second pass with shuttling idealized to zero duration yields
        // the pure computation critical path; the difference is the
        // communication share (Fig. 6b's decomposition).
        ScheduleOptions sched;
        sched.collectTrace = false;
        sched.zeroCommTimes = true;
        sched.mappingPolicy = options.mappingPolicy;
        Scheduler scheduler(native, topo, design.hw, sched);
        result.computeOnlyTime = scheduler.run().metrics.makespan;
    }
    return result;
}

ScheduleResult
runToolflowDetailed(const Circuit &circuit, const DesignPoint &design)
{
    const Circuit native = decomposeToNative(circuit);
    const Topology topo = design.buildTopology();
    ScheduleOptions sched;
    sched.collectTrace = true;
    Scheduler scheduler(native, topo, design.hw, sched);
    return scheduler.run();
}

} // namespace qccd
