/**
 * @file
 * Report formatting for toolflow results: one-line run summaries and
 * paper-style series tables keyed by capacity.
 */

#ifndef QCCD_CORE_REPORT_HPP
#define QCCD_CORE_REPORT_HPP

#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace qccd
{

/** One-paragraph human-readable summary of a run. */
std::string summarizeRun(const std::string &app, const DesignPoint &design,
                         const RunResult &result);

/** Value extractor for series tables. */
using MetricFn = double (*)(const RunResult &);

/** Common extractors for series tables. @{ */
double metricTimeSeconds(const RunResult &r);
double metricFidelity(const RunResult &r);
double metricLogFidelity(const RunResult &r);
double metricMaxEnergy(const RunResult &r);
double metricCommTimeSeconds(const RunResult &r);
double metricComputeTimeSeconds(const RunResult &r);
/** @} */

/**
 * Render sweep points as a table with one row per application and one
 * column per capacity, extracting @p metric.
 */
std::string seriesTable(const std::vector<SweepPoint> &points,
                        MetricFn metric, const std::string &metric_name,
                        bool scientific = false);

} // namespace qccd

#endif // QCCD_CORE_REPORT_HPP
