/**
 * @file
 * Surrogate cost models for design-space search (core/search.hpp).
 *
 * A CostModel predicts the two objectives a sweep measures — log
 * fidelity and makespan — from a design point, the application's
 * CircuitStats, and a TopologyFeatures digest of the device graph,
 * WITHOUT running the simulator. The search layer ranks the declared
 * space by these predictions and spends its real-evaluation budget on
 * the predicted frontier only; the simulator stays the oracle that
 * decides the winner (the Halide-autoscheduler shape: one CostModel
 * interface, pluggable cheap backends).
 *
 * Two backends ship:
 *
 *  - AnalyticCostModel: closed-form over the same physical models the
 *    simulator runs (ModelTables' per-knob fidelity terms, the MS-gate
 *    duration at the packed chain length, heating from the estimated
 *    shuttle traffic). Deterministic, stateless, no tuning inputs.
 *
 *  - CalibratedCostModel: corrects the analytic predictions with
 *    per-objective least-squares affine fits against real runToolflow
 *    samples (log-fidelity and log-runtime). Fits are deterministic
 *    (fixed accumulation order) and monotone by construction — slopes
 *    are clamped positive, so calibration refines magnitudes but can
 *    never invert the analytic ranking. That guard is what lets the
 *    golden-rediscovery acceptance hold for any sample set.
 *
 * Predictions are heuristic: absolute values can be off by large
 * factors on communication-heavy circuits (the estimator deliberately
 * over-counts shuttling rather than model the scheduler). What the
 * search relies on — and what tests/test_search.cpp pins — is that the
 * predicted ORDER surfaces the true optimum within a quarter-budget
 * frontier on every committed golden scenario.
 */

#ifndef QCCD_CORE_COST_MODEL_HPP
#define QCCD_CORE_COST_MODEL_HPP

#include <cstddef>
#include <vector>

#include "circuit/stats.hpp"
#include "core/design_point.hpp"

namespace qccd
{

class Topology;

/**
 * Shape digest of a device graph: everything the surrogate reads about
 * a topology. Path statistics are means over all ordered trap pairs
 * (i < j) along BFS shortest paths (hop-count metric), so they track
 * the routes the shuttle scheduler actually uses.
 */
struct TopologyFeatures
{
    int traps = 0;
    int junctions = 0;
    int edges = 0;
    int totalCapacity = 0;
    int minTrapCapacity = 0;
    int maxTrapCapacity = 0;

    /** Max trap-pair shortest-path length, in edges. */
    int diameterEdges = 0;

    /** Mean trap-pair shortest-path statistics. @{ */
    double meanPathEdges = 0;
    double meanPathSegments = 0;
    double meanPathTraps = 0;      ///< intermediate traps per path
    double meanPathJunctions3 = 0; ///< intermediate Y junctions
    double meanPathJunctions4 = 0; ///< intermediate X+ junctions
    /** @} */
};

/** Extract the surrogate's feature digest from a built device. */
TopologyFeatures extractTopologyFeatures(const Topology &topo);

/** What a cost model predicts for one (design, application) pair. */
struct CostPrediction
{
    /** Predicted ln(application fidelity) (<= 0; higher is better). */
    double logFidelity = 0;

    /** Predicted makespan in microseconds. */
    double timeUs = 0;
};

/** Abstract surrogate: predict the sweep objectives without running
 *  the simulator. Implementations must be deterministic and safe to
 *  call concurrently. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    virtual CostPrediction
    predict(const DesignPoint &design, const CircuitStats &stats,
            const TopologyFeatures &topo) const = 0;
};

/**
 * Closed-form surrogate over circuit stats x topology features.
 *
 * The estimator mirrors the simulator's structure: packed placement
 * fills traps to capacity minus the buffer slots, which sets the
 * chain length and with it the MS-gate duration and laser-instability
 * factor (both via ModelTables, so per-knob fidelity terms are the
 * exact per-op values the simulator uses); the interaction-distance
 * histogram estimates how many gates cross traps; scarce buffer space
 * inflates that traffic with forced evictions; shuttle traffic heats
 * chains (k1 per split/merge, k2 per segment, attenuated by the
 * recool factor) and adds reorder MS gates under GS or rotation time
 * under IS. Applications that fit one trap predict identically across
 * capacities and topologies — exactly like the simulator, which makes
 * index order the tie-break in both worlds.
 */
class AnalyticCostModel : public CostModel
{
  public:
    CostPrediction predict(const DesignPoint &design,
                           const CircuitStats &stats,
                           const TopologyFeatures &topo) const override;
};

/**
 * Analytic surrogate corrected by least squares against real samples.
 *
 * fit() regresses measured log-fidelity on the analytic prediction
 * (and log-runtime likewise, in the log domain) and predict() applies
 * the affine corrections. See the file comment for the monotonicity
 * guard; with fewer than kSlopeFitMinSamples samples only intercepts
 * are fitted. fit() is idempotent and reproducible: the same samples
 * in the same order produce bit-identical coefficients.
 */
class CalibratedCostModel : public CostModel
{
  public:
    /** One real evaluation paired with its analytic prior. */
    struct Sample
    {
        CostPrediction prior;
        double logFidelity = 0;
        double timeUs = 0;
    };

    /** Samples below this count fit intercepts only. */
    static constexpr size_t kSlopeFitMinSamples = 4;

    /** Refit the corrections from scratch on @p samples. */
    void fit(const std::vector<Sample> &samples);

    /** Apply the fitted corrections to an analytic prior. */
    CostPrediction correct(const CostPrediction &prior) const;

    CostPrediction predict(const DesignPoint &design,
                           const CircuitStats &stats,
                           const TopologyFeatures &topo) const override;

    /** Fitted log-fidelity correction: corrected = a + b * prior. @{ */
    double fidelityIntercept() const { return fidA_; }
    double fidelitySlope() const { return fidB_; }
    /** @} */

    /** Fitted log-runtime correction coefficients. @{ */
    double timeIntercept() const { return timeA_; }
    double timeSlope() const { return timeB_; }
    /** @} */

  private:
    AnalyticCostModel prior_;
    double fidA_ = 0;
    double fidB_ = 1;
    double timeA_ = 0;
    double timeB_ = 1;
};

} // namespace qccd

#endif // QCCD_CORE_COST_MODEL_HPP
