/**
 * @file
 * Design-space sweep helpers used by the benchmark harnesses.
 *
 * The paper sweeps trap capacity 14-34 (Figs. 6-8), two topologies
 * (Fig. 7) and eight microarchitecture combinations (Fig. 8); these
 * helpers run the toolflow over such grids and collect rows.
 */

#ifndef QCCD_CORE_SWEEP_HPP
#define QCCD_CORE_SWEEP_HPP

#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "core/toolflow.hpp"

namespace qccd
{

class SweepEngine;

/**
 * How one design point's evaluation ended. The taxonomy mirrors the
 * error classes: a ConfigError means the *input* cannot run on that
 * device (infeasible), a TimeoutError means the point exceeded its
 * watchdog budget, and anything else is an internal failure. Only Ok
 * points carry a meaningful RunResult.
 */
enum class PointOutcome
{
    Ok,         ///< evaluated; result is valid
    Error,      ///< internal failure (InternalError, bad_alloc, ...)
    Timeout,    ///< exceeded the point's Deadline (TimeoutError)
    Infeasible, ///< rejected as invalid input (ConfigError)
};

/** Stable lowercase name ("ok", "error", "timeout", "infeasible"). */
const char *pointOutcomeName(PointOutcome outcome);

/**
 * Classify a caught per-point failure for isolation: TimeoutError ->
 * Timeout, ConfigError -> Infeasible, everything else -> Error.
 * @p message receives the exception text.
 */
PointOutcome classifyFailure(const std::exception_ptr &error,
                             std::string *message);

/** One sweep sample. */
struct SweepPoint
{
    std::string application;
    DesignPoint design;
    RunResult result;

    /** Ok unless the point ran under failure isolation and failed. */
    PointOutcome outcome = PointOutcome::Ok;

    /** Diagnostic for non-Ok outcomes (empty when Ok). */
    std::string error;

    bool ok() const { return outcome == PointOutcome::Ok; }
};

/** The paper's capacity sweep values (x axes of Figs. 6-8). */
std::vector<int> paperCapacities();

/**
 * Run @p make_design over every (application, capacity) pair.
 *
 * Evaluation goes through a SweepEngine: points run across a worker
 * pool (sized by QCCD_JOBS, default hardware concurrency) with each
 * application lowered once and Topology/PathFinder state shared between
 * points of the same architecture. Results are in (app, capacity)
 * order regardless of worker count.
 *
 * @param apps application names resolved via makeBenchmark()
 * @param capacities trap capacities to sweep
 * @param make_design builds the design point for one capacity
 * @param options toolflow options applied to every run
 */
std::vector<SweepPoint>
sweepCapacity(const std::vector<std::string> &apps,
              const std::vector<int> &capacities,
              const std::function<DesignPoint(int)> &make_design,
              const RunOptions &options = {});

/**
 * Like sweepCapacity above but reuses a caller-owned @p engine, so
 * consecutive sweeps (e.g. Fig. 7's linear and grid passes) share the
 * engine's circuit and context caches.
 */
std::vector<SweepPoint>
sweepCapacity(SweepEngine &engine, const std::vector<std::string> &apps,
              const std::vector<int> &capacities,
              const std::function<DesignPoint(int)> &make_design,
              const RunOptions &options = {});

} // namespace qccd

#endif // QCCD_CORE_SWEEP_HPP
