#include "core/sweep.hpp"

#include "common/error.hpp"
#include "core/sweep_engine.hpp"

namespace qccd
{

const char *
pointOutcomeName(PointOutcome outcome)
{
    switch (outcome) {
      case PointOutcome::Ok:
        return "ok";
      case PointOutcome::Error:
        return "error";
      case PointOutcome::Timeout:
        return "timeout";
      case PointOutcome::Infeasible:
        return "infeasible";
    }
    panicUnless(false, "unknown point outcome");
    return "";
}

PointOutcome
classifyFailure(const std::exception_ptr &error, std::string *message)
{
    panicUnless(error != nullptr, "classifyFailure needs an exception");
    try {
        std::rethrow_exception(error);
    } catch (const TimeoutError &err) {
        *message = err.what();
        return PointOutcome::Timeout;
    } catch (const ConfigError &err) {
        *message = err.what();
        return PointOutcome::Infeasible;
    } catch (const std::exception &err) {
        *message = err.what();
        return PointOutcome::Error;
    } catch (...) {
        *message = "unknown error";
        return PointOutcome::Error;
    }
}

std::vector<int>
paperCapacities()
{
    return {14, 18, 22, 26, 30, 34};
}

std::vector<SweepPoint>
sweepCapacity(SweepEngine &engine, const std::vector<std::string> &apps,
              const std::vector<int> &capacities,
              const std::function<DesignPoint(int)> &make_design,
              const RunOptions &options)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(apps.size() * capacities.size());
    for (const std::string &app : apps) {
        const auto native = engine.nativeBenchmark(app);
        for (int cap : capacities) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = make_design(cap);
            job.options = options;
            jobs.push_back(std::move(job));
        }
    }
    return engine.run(jobs);
}

std::vector<SweepPoint>
sweepCapacity(const std::vector<std::string> &apps,
              const std::vector<int> &capacities,
              const std::function<DesignPoint(int)> &make_design,
              const RunOptions &options)
{
    SweepEngine engine;
    return sweepCapacity(engine, apps, capacities, make_design, options);
}

} // namespace qccd
