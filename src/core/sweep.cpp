#include "core/sweep.hpp"

#include "benchgen/benchgen.hpp"

namespace qccd
{

std::vector<int>
paperCapacities()
{
    return {14, 18, 22, 26, 30, 34};
}

std::vector<SweepPoint>
sweepCapacity(const std::vector<std::string> &apps,
              const std::vector<int> &capacities,
              const std::function<DesignPoint(int)> &make_design,
              const RunOptions &options)
{
    std::vector<SweepPoint> points;
    points.reserve(apps.size() * capacities.size());
    for (const std::string &app : apps) {
        const Circuit circuit = makeBenchmark(app);
        for (int cap : capacities) {
            SweepPoint point;
            point.application = app;
            point.design = make_design(cap);
            point.result = runToolflow(circuit, point.design, options);
            points.push_back(std::move(point));
        }
    }
    return points;
}

} // namespace qccd
