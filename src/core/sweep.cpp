#include "core/sweep.hpp"

#include "core/sweep_engine.hpp"

namespace qccd
{

std::vector<int>
paperCapacities()
{
    return {14, 18, 22, 26, 30, 34};
}

std::vector<SweepPoint>
sweepCapacity(SweepEngine &engine, const std::vector<std::string> &apps,
              const std::vector<int> &capacities,
              const std::function<DesignPoint(int)> &make_design,
              const RunOptions &options)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(apps.size() * capacities.size());
    for (const std::string &app : apps) {
        const auto native = engine.nativeBenchmark(app);
        for (int cap : capacities) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = make_design(cap);
            job.options = options;
            jobs.push_back(std::move(job));
        }
    }
    return engine.run(jobs);
}

std::vector<SweepPoint>
sweepCapacity(const std::vector<std::string> &apps,
              const std::vector<int> &capacities,
              const std::function<DesignPoint(int)> &make_design,
              const RunOptions &options)
{
    SweepEngine engine;
    return sweepCapacity(engine, apps, capacities, make_design, options);
}

} // namespace qccd
