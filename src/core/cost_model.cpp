#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "arch/topology.hpp"
#include "models/model_tables.hpp"

namespace qccd
{

namespace
{

/**
 * Tuning constants of the analytic estimator. They shape predicted
 * magnitudes, not the physical per-op terms (those come straight from
 * ModelTables); the golden-rediscovery differential in
 * tests/test_search.cpp is the regression net for their values.
 */

/** Extra shuttles forced per remote gate when arrival space is scarce
 *  (evictions): scaled by 1 / (1 + bufferSlots). */
constexpr double kEvictionPressure = 1.0;

/** Shuttle-traffic saturation: the scheduler serves consecutive gates
 *  on a shuttled ion with one trip, so traffic tops out near this many
 *  visits per (qubit, foreign trap) pair. */
constexpr double kShuttleRevisits = 1.0;

/** Chain-reorder swaps per shuttle (GS inserts 3 MS gates each). */
constexpr double kSwapsPerShuttle = 1.1;

/** Fraction of accumulated shuttle heating a chain retains. */
constexpr double kHeatRetention = 0.3;

/** IS reorder heating per chain ion: a hop is a split + merge (2 x k1)
 *  and a reorder hops about half the chain, so one reorder deposits
 *  roughly chain x k1 quanta. */
constexpr double kIonSwapHeat = 1.0;

/** Recool attenuation exponent (nbar *= recool^exponent). */
constexpr double kRecoolExponent = 0.5;

/** Marginal speedup per additional occupied trap (gate parallelism). */
constexpr double kParallelFraction = 0.5;

/** Fraction of shuttle traffic on the makespan's critical path. */
constexpr double kShuttleSerialization = 0.5;

} // namespace

TopologyFeatures
extractTopologyFeatures(const Topology &topo)
{
    TopologyFeatures f;
    f.traps = topo.trapCount();
    f.junctions = topo.junctionCount();
    f.edges = topo.edgeCount();
    f.totalCapacity = topo.totalCapacity();

    for (TrapId t = 0; t < topo.trapCount(); ++t) {
        const int cap = topo.node(topo.trapNode(t)).capacity;
        f.minTrapCapacity =
            t == 0 ? cap : std::min(f.minTrapCapacity, cap);
        f.maxTrapCapacity = std::max(f.maxTrapCapacity, cap);
    }

    // BFS from every trap (hop-count shortest paths, deterministic
    // adjacency order); accumulate path statistics over unordered
    // trap pairs by walking the parent chain back to the source.
    const int nodes = topo.nodeCount();
    size_t pairs = 0;
    double sumEdges = 0;
    double sumSegments = 0;
    double sumTraps = 0;
    double sumJ3 = 0;
    double sumJ4 = 0;
    std::vector<int> parentNode(static_cast<size_t>(nodes));
    std::vector<EdgeId> parentEdge(static_cast<size_t>(nodes));
    std::vector<char> seen(static_cast<size_t>(nodes));
    for (TrapId t = 0; t < topo.trapCount(); ++t) {
        const NodeId source = topo.trapNode(t);
        std::fill(seen.begin(), seen.end(), char{0});
        std::queue<NodeId> frontier;
        frontier.push(source);
        seen[static_cast<size_t>(source)] = 1;
        parentNode[static_cast<size_t>(source)] = source;
        while (!frontier.empty()) {
            const NodeId at = frontier.front();
            frontier.pop();
            for (const EdgeId e : topo.incidentEdges(at)) {
                const NodeId next = topo.edge(e).other(at);
                if (seen[static_cast<size_t>(next)])
                    continue;
                seen[static_cast<size_t>(next)] = 1;
                parentNode[static_cast<size_t>(next)] = at;
                parentEdge[static_cast<size_t>(next)] = e;
                frontier.push(next);
            }
        }
        for (TrapId u = t + 1; u < topo.trapCount(); ++u) {
            NodeId at = topo.trapNode(u);
            int pathEdges = 0;
            int pathSegments = 0;
            while (at != source) {
                ++pathEdges;
                pathSegments +=
                    topo.edge(parentEdge[static_cast<size_t>(at)])
                        .segments;
                const NodeId prev =
                    parentNode[static_cast<size_t>(at)];
                if (prev != source) {
                    const TopoNode &via = topo.node(prev);
                    if (via.kind == NodeKind::Trap)
                        sumTraps += 1;
                    else if (topo.degree(prev) <= 3)
                        sumJ3 += 1;
                    else
                        sumJ4 += 1;
                }
                at = prev;
            }
            ++pairs;
            sumEdges += pathEdges;
            sumSegments += pathSegments;
            f.diameterEdges = std::max(f.diameterEdges, pathEdges);
        }
    }
    if (pairs > 0) {
        const auto count = static_cast<double>(pairs);
        f.meanPathEdges = sumEdges / count;
        f.meanPathSegments = sumSegments / count;
        f.meanPathTraps = sumTraps / count;
        f.meanPathJunctions3 = sumJ3 / count;
        f.meanPathJunctions4 = sumJ4 / count;
    }
    return f;
}

CostPrediction
AnalyticCostModel::predict(const DesignPoint &design,
                           const CircuitStats &stats,
                           const TopologyFeatures &topo) const
{
    const HardwareParams &hw = design.hw;
    const int capMax =
        std::max({2, topo.maxTrapCapacity, design.trapCapacity});
    const std::shared_ptr<const ModelTables> tables =
        ModelTables::shared(hw, capMax);

    // Packed placement fills traps to capacity minus the reserved
    // buffer slots; chains at that fill set the MS-gate regime.
    const double traps = std::max(1, topo.traps);
    const double capMean =
        topo.traps > 0
            ? static_cast<double>(topo.totalCapacity) / traps
            : static_cast<double>(design.trapCapacity);
    const double usable = std::max(2.0, capMean - hw.bufferSlots);
    const double n = std::max(1, stats.numQubits);
    const double chain = std::clamp(n, 2.0, usable);
    const double trapsUsed =
        std::clamp(std::ceil(n / usable), 1.0, traps);

    // Remote-gate estimate: under packed consecutive placement, a
    // gate spanning index distance d crosses a trap boundary with
    // probability ~ min(1, d / usable). Zero when everything fits one
    // trap — single-trap applications then predict identically across
    // capacities and topologies, matching the simulator.
    double remote = 0;
    if (n > usable) {
        for (size_t d = 1; d < stats.interactionDistance.size(); ++d)
            remote += stats.interactionDistance[d] *
                      std::min(1.0, static_cast<double>(d) / usable);
        // Scheduler locality: once an ion has shuttled over,
        // consecutive gates on it are served by the same trip, so
        // traffic saturates near one visit per (qubit, foreign trap).
        remote = std::min(
            remote, kShuttleRevisits * n * (trapsUsed - 1.0));
    }
    const double evictions =
        remote * (kEvictionPressure / (1.0 + hw.bufferSlots));
    const double shuttles = remote + evictions;

    // Mean shuttle route over the device graph (feature digest).
    const double hopSegments = std::max(1.0, topo.meanPathSegments);
    const double hopTraps = topo.meanPathTraps;
    const double junctionsY = topo.meanPathJunctions3;
    const double junctionsX = topo.meanPathJunctions4;

    // Heating: k1 quanta per split/merge (pass-through traps split and
    // merge again), k2 per segment and junction crossing; IS reorder
    // rotates chains instead of swapping gates, which heats more.
    double perShuttleQuanta =
        (2.0 + hopTraps) * hw.heatingK1 +
        (hopSegments + junctionsY + junctionsX) * hw.heatingK2;
    if (hw.reorder == ReorderMethod::IS)
        perShuttleQuanta += kIonSwapHeat * chain * hw.heatingK1;
    const double nbar = kHeatRetention * (shuttles / trapsUsed) *
                        perShuttleQuanta *
                        std::pow(hw.recoolFactor, kRecoolExponent);

    // MS gate at the packed chain length, mid-chain separation; error
    // terms are the simulator's own per-op values via ModelTables.
    const int chainLen = std::max(2, static_cast<int>(chain));
    const int separation = std::max(1, chainLen / 2);
    const TimeUs tau = tables->twoQubit(separation, chainLen);
    const double err2 =
        std::min(tables->msError(tau, chainLen, nbar).total(),
                 0.999999);
    const double logMs = std::log1p(-err2);

    // GS reorder executes 3 extra MS gates per swap.
    double reorderMs = 0;
    if (hw.reorder == ReorderMethod::GS)
        reorderMs = kSwapsPerShuttle * 3.0 * shuttles;
    const double msTotal = stats.twoQubitGates + reorderMs;

    const double logFidelity =
        msTotal * logMs +
        stats.oneQubitGates * tables->logOneQubitFidelity() +
        stats.measurements * tables->logMeasureFidelity();

    // Runtime: serial gate time shared across occupied traps, plus
    // the serialized share of the shuttle traffic.
    const GateTimeModel &gate = tables->gateTime();
    const double gateTime =
        stats.oneQubitGates * gate.oneQubit() +
        stats.measurements * gate.measure() + msTotal * tau;
    const ShuttleTimeModel &shuttle = hw.shuttle;
    double perShuttleTime =
        shuttle.split + shuttle.merge +
        shuttle.movePerSegment * hopSegments +
        junctionsY * shuttle.yJunction +
        junctionsX * shuttle.xJunction;
    if (hw.reorder == ReorderMethod::IS)
        // A reorder hops ~half the chain; each hop is an isolate,
        // rotate, reassemble sequence.
        perShuttleTime += 0.5 * chain *
                          (shuttle.split + shuttle.ionSwapRotation +
                           shuttle.merge);
    const double parallelism =
        1.0 + kParallelFraction * (trapsUsed - 1.0);
    const double timeUs =
        gateTime / parallelism +
        kShuttleSerialization * shuttles * perShuttleTime;

    return {logFidelity, timeUs};
}

namespace
{

/**
 * Least-squares slope/intercept of y on x, accumulated in index order
 * (bit-reproducible for identical input order). Falls back to the
 * identity slope when the fit is unusable: too few samples, a
 * degenerate x spread, or a non-positive slope (the monotonicity
 * guard — calibration must never invert the analytic ranking).
 */
void
fitAffine(const std::vector<double> &x, const std::vector<double> &y,
          double &intercept, double &slope)
{
    const size_t n = x.size();
    intercept = 0;
    slope = 1;
    if (n == 0)
        return;
    double meanX = 0;
    double meanY = 0;
    for (size_t i = 0; i < n; ++i) {
        meanX += x[i];
        meanY += y[i];
    }
    meanX /= static_cast<double>(n);
    meanY /= static_cast<double>(n);
    if (n >= CalibratedCostModel::kSlopeFitMinSamples) {
        double varX = 0;
        double covXY = 0;
        for (size_t i = 0; i < n; ++i) {
            varX += (x[i] - meanX) * (x[i] - meanX);
            covXY += (x[i] - meanX) * (y[i] - meanY);
        }
        if (varX > 0) {
            const double fitted = covXY / varX;
            if (fitted > 0)
                slope = fitted;
        }
    }
    intercept = meanY - slope * meanX;
}

/** Guard against log(0) from degenerate predicted/measured times. */
double
safeLog(double value)
{
    return std::log(std::max(value, 1e-9));
}

} // namespace

void
CalibratedCostModel::fit(const std::vector<Sample> &samples)
{
    std::vector<double> x;
    std::vector<double> y;
    x.reserve(samples.size());
    y.reserve(samples.size());
    for (const Sample &s : samples) {
        x.push_back(s.prior.logFidelity);
        y.push_back(s.logFidelity);
    }
    fitAffine(x, y, fidA_, fidB_);
    x.clear();
    y.clear();
    for (const Sample &s : samples) {
        x.push_back(safeLog(s.prior.timeUs));
        y.push_back(safeLog(s.timeUs));
    }
    fitAffine(x, y, timeA_, timeB_);
}

CostPrediction
CalibratedCostModel::correct(const CostPrediction &prior) const
{
    CostPrediction out;
    out.logFidelity = fidA_ + fidB_ * prior.logFidelity;
    out.timeUs =
        std::exp(timeA_ + timeB_ * safeLog(prior.timeUs));
    return out;
}

CostPrediction
CalibratedCostModel::predict(const DesignPoint &design,
                             const CircuitStats &stats,
                             const TopologyFeatures &topo) const
{
    return correct(prior_.predict(design, stats, topo));
}

} // namespace qccd
