/**
 * @file
 * Crash-safe persistent result store: an embedded, single-file,
 * append-only, content-addressed cache of per-point toolflow results.
 *
 * Why: every sweep recomputes from scratch and its results die with
 * the process. The store makes overlapping sweeps, `--resume`, and
 * repeated CI runs hit cache instead of re-simulating, while keeping
 * the project's core contract — cache-hit runs are byte-identical to
 * cold runs — and its robustness discipline: torn writes, corrupt
 * entries, version skew and concurrent writers degrade to a cache
 * miss (recompute and re-append), never to a wrong row or a crash.
 *
 * On-disk format (all integers little-endian):
 *
 *     header   8-byte magic "qccdRES\n"
 *              u32 schema version (kSchemaVersion)
 *              u32 reserved (zero)
 *     record*  u32 payload length (always kPayloadSize for version 1)
 *              u64 FNV-1a checksum of the payload
 *              payload: 128-bit key then the RunResult fields in the
 *              fixed order encodeRecordPayload() documents
 *
 * Records are committed by flushed append, so a partial file of a
 * killed run is a valid store plus at most one torn tail. Open-time
 * recovery:
 *
 *  - torn tail (incomplete final record / header): truncated by an
 *    atomic rewrite (the PR 7 tmp+rename healing pattern) — a reader
 *    never sees a half-healed file;
 *  - checksum-failing record: quarantined to `<path>.quarantine`
 *    (human-readable, one line per record) and dropped from the file;
 *  - bad framing (impossible length): everything from that offset is
 *    quarantined as one corrupt region;
 *  - wrong magic or schema version: refused with a ConfigError — the
 *    store never silently merges foreign or version-skewed data.
 *
 * Concurrent processes are serialized by `<path>.lock` holding the
 * owner's pid: a lock whose pid is dead is taken over, a live owner
 * is refused with a ConfigError naming it. Every entry the recovery
 * drops is simply a miss; the caller recomputes and re-appends.
 */

#ifndef QCCD_CORE_RESULT_STORE_HPP
#define QCCD_CORE_RESULT_STORE_HPP

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "core/toolflow.hpp"

namespace qccd
{

/** What a ResultStore did since open (for the CLI's `cache:` line). */
struct ResultStoreStats
{
    size_t hits = 0;      ///< lookups that returned a row
    size_t misses = 0;    ///< lookups that did not
    size_t inserts = 0;   ///< records appended this session
    size_t loaded = 0;    ///< intact records found at open
    size_t quarantined = 0; ///< corrupt records dropped at open
    bool healedTail = false; ///< open truncated a torn tail
};

/** One intact record found by scanResultStore(). */
struct ScannedResultRecord
{
    size_t offset = 0;   ///< file offset of the record framing
    Digest128 key;
    std::string payload; ///< checksum-verified payload bytes
};

/** One corrupt region found by scanResultStore(). */
struct ResultStoreDefect
{
    size_t offset = 0; ///< file offset where the defect starts
    size_t length = 0; ///< bytes covered (to end of record or file)
    std::string reason; ///< "checksum" or "frame"
};

/**
 * Static analysis of result-store bytes, shared by ResultStore's
 * open-time recovery and qccd_lint's `.qcache` validation. Never
 * throws: every possible byte string yields a verdict.
 */
struct ResultStoreScan
{
    bool magicOk = false;
    uint32_t version = 0;
    bool versionOk = false;

    /** True when the bytes are a proper prefix of a fresh header (a
     *  creation torn mid-write) — healable, unlike a bad magic. */
    bool headerTorn = false;

    std::vector<ScannedResultRecord> records;
    std::vector<ResultStoreDefect> defects;

    /** Offset of an incomplete final record; bytes.size() when the
     *  file ends on a record boundary. */
    size_t tornTailOffset = 0;

    bool tornTail() const { return headerTorn || truncatedTail; }
    bool truncatedTail = false;
};

ResultStoreScan scanResultStore(const std::string &bytes);

/**
 * The embedded cache. Construction acquires the lock, recovers the
 * file and loads the index; destruction releases the lock. Lookups
 * and inserts are in-memory-map cheap; inserts append-and-flush.
 *
 * Not internally synchronized: one ResultStore belongs to one thread
 * (the sweep runner's emit loop, which is already serial). Cross-
 * process safety comes from the lock file.
 */
class ResultStore
{
  public:
    /** Bump when the record payload layout or key recipe changes. */
    static constexpr uint32_t kSchemaVersion = 1;

    static constexpr size_t kMagicSize = 8;
    static constexpr size_t kHeaderSize = 16;

    /** Fixed version-1 payload size (framing rejects anything else). */
    static constexpr size_t kPayloadSize = 204;

    /** The 8 magic bytes ("qccdRES\n"). */
    static const char *magic();

    /** A valid empty store (header only), as bytes. */
    static std::string freshHeader();

    /**
     * Open (creating if missing) the store at @p path.
     *
     * @throws ConfigError when the file is not a result store, when
     *         its schema version differs from kSchemaVersion, or when
     *         another live process holds the lock. Corruption never
     *         throws — it is quarantined and becomes misses.
     */
    explicit ResultStore(const std::string &path);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &path() const { return path_; }
    const ResultStoreStats &stats() const { return stats_; }
    size_t entries() const { return index_.size(); }

    /** The cached result for @p key, if any (counts a hit or miss). */
    std::optional<RunResult> lookup(const Digest128 &key);

    /**
     * Append @p result under @p key (flushed). A key already present
     * is a no-op: replays after a resume cannot grow the file, which
     * is what makes warm store bytes deterministic under kill/resume.
     * @throws ConfigError when the append cannot be durably written.
     */
    void insert(const Digest128 &key, const RunResult &result);

    /**
     * The stable cache key of one planned point: schema version, the
     * full architecture (topology spec — with the device file's bytes
     * for "topo:" specs — capacity, gate/reorder microarchitecture,
     * all 17 model knobs), the result-affecting run options, and the
     * lowered circuit's digest. Deliberately excluded: application
     * labels, file paths, timeouts and trace flags — nothing that
     * cannot change the emitted metrics.
     * @throws ConfigError when a "topo:" device file is unreadable
     *         (the caller treats the point as uncacheable).
     */
    static Digest128 keyFor(const DesignPoint &design,
                            const RunOptions &options,
                            const Digest128 &circuit_digest);

    /** Content digest of a lowered circuit (name excluded). */
    static Digest128 circuitDigest(const Circuit &circuit);

    /**
     * Serialize @p key + @p result as a version-1 record payload
     * (exactly kPayloadSize bytes). Exposed for `--cache-verify`'s
     * bit-exact comparison and the tests' corruption campaigns.
     */
    static std::string encodeRecordPayload(const Digest128 &key,
                                           const RunResult &result);

    /** Inverse of encodeRecordPayload; false on any size mismatch. */
    static bool decodeRecordPayload(const std::string &payload,
                                    Digest128 *key, RunResult *result);

  private:
    void acquireLock();
    void releaseLock();
    void recoverAndLoad();

    std::string path_;
    std::string lockPath_;
    bool lockHeld_ = false;
    std::ofstream out_;
    std::map<Digest128, RunResult> index_;
    ResultStoreStats stats_;
};

} // namespace qccd

#endif // QCCD_CORE_RESULT_STORE_HPP
