#include "core/design_point.hpp"

#include <sstream>

#include "arch/builders.hpp"

namespace qccd
{

Topology
DesignPoint::buildTopology() const
{
    return makeFromSpec(topologySpec, trapCapacity);
}

std::string
DesignPoint::label() const
{
    std::ostringstream out;
    out << topologySpec << " cap=" << trapCapacity << " "
        << gateImplName(hw.gateImpl) << "-" << reorderMethodName(hw.reorder);
    return out.str();
}

DesignPoint
DesignPoint::linear(int traps, int capacity, GateImpl gate,
                    ReorderMethod reorder)
{
    DesignPoint dp;
    dp.topologySpec = "linear:" + std::to_string(traps);
    dp.trapCapacity = capacity;
    dp.hw.gateImpl = gate;
    dp.hw.reorder = reorder;
    return dp;
}

DesignPoint
DesignPoint::grid(int rows, int cols, int capacity, GateImpl gate,
                  ReorderMethod reorder)
{
    DesignPoint dp;
    dp.topologySpec = "grid:" + std::to_string(rows) + "x" +
                      std::to_string(cols);
    dp.trapCapacity = capacity;
    dp.hw.gateImpl = gate;
    dp.hw.reorder = reorder;
    return dp;
}

} // namespace qccd
