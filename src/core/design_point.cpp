#include "core/design_point.hpp"

#include <sstream>

#include "arch/builders.hpp"
#include "arch/topo_file.hpp"

namespace qccd
{

Topology
DesignPoint::buildTopology() const
{
    return makeFromSpec(topologySpec, trapCapacity);
}

std::string
DesignPoint::topologyLabel() const
{
    const std::string topo_prefix = "topo:";
    if (topologySpec.rfind(topo_prefix, 0) != 0)
        return topologySpec;
    const std::string stem =
        topoFileStem(topologySpec.substr(topo_prefix.size()));
    return stem.empty() ? topologySpec : stem;
}

std::string
DesignPoint::label() const
{
    std::ostringstream out;
    out << topologyLabel() << " cap=" << trapCapacity << " "
        << gateImplName(hw.gateImpl) << "-" << reorderMethodName(hw.reorder);
    return out.str();
}

DesignPoint
DesignPoint::linear(int traps, int capacity, GateImpl gate,
                    ReorderMethod reorder)
{
    DesignPoint dp;
    dp.topologySpec = "linear:" + std::to_string(traps);
    dp.trapCapacity = capacity;
    dp.hw.gateImpl = gate;
    dp.hw.reorder = reorder;
    return dp;
}

DesignPoint
DesignPoint::grid(int rows, int cols, int capacity, GateImpl gate,
                  ReorderMethod reorder)
{
    DesignPoint dp;
    dp.topologySpec = "grid:" + std::to_string(rows) + "x" +
                      std::to_string(cols);
    dp.trapCapacity = capacity;
    dp.hw.gateImpl = gate;
    dp.hw.reorder = reorder;
    return dp;
}

} // namespace qccd
