#include "core/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace qccd
{

namespace
{

/** Shared field extraction so CSV and JSON can never diverge. */
struct Row
{
    std::string application;
    std::string topology;
    int capacity;
    std::string gate;
    std::string reorder;
    double timeS;
    double computeS;
    double commS;
    double fidelity;
    double logFidelity;
    double maxEnergy;
    long msGates;
    long reorderMs;
    long shuttles;
    long splits;
    long merges;
    long evictions;
};

Row
makeRow(const SweepPoint &p)
{
    Row row;
    row.application = p.application;
    row.topology = p.design.topologyLabel();
    row.capacity = p.design.trapCapacity;
    row.gate = gateImplName(p.design.hw.gateImpl);
    row.reorder = reorderMethodName(p.design.hw.reorder);
    row.timeS = p.result.totalTime() / kSecondUs;
    row.computeS = p.result.computeOnlyTime / kSecondUs;
    row.commS = p.result.communicationTime() / kSecondUs;
    row.fidelity = p.result.fidelity();
    row.logFidelity = p.result.sim.logFidelity;
    row.maxEnergy = p.result.sim.maxChainEnergy;
    row.msGates = p.result.sim.counts.algorithmMs;
    row.reorderMs = p.result.sim.counts.reorderMs;
    row.shuttles = p.result.sim.counts.shuttles;
    row.splits = p.result.sim.counts.splits;
    row.merges = p.result.sim.counts.merges;
    row.evictions = p.result.sim.counts.evictions;
    return row;
}

/** JSON string escape: application labels and topology specs can carry
 *  arbitrary user text (e.g. a QASM file stem with a quote in it). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

ExportFormat
exportFormatFromName(const std::string &name)
{
    if (name == "csv")
        return ExportFormat::Csv;
    if (name == "json")
        return ExportFormat::Json;
    throw ConfigError("unknown export format '" + name +
                      "' (expected csv or json)");
}

std::string
sweepCsvHeader()
{
    return "application,topology,capacity,gate,reorder,time_s,"
           "compute_s,comm_s,fidelity,log_fidelity,max_energy_quanta,"
           "ms_gates,reorder_ms,shuttles,splits,merges,evictions";
}

std::string
sweepCsvRow(const SweepPoint &point)
{
    const Row r = makeRow(point);
    std::ostringstream out;
    out.precision(12);
    out << r.application << ',' << r.topology << ',' << r.capacity << ','
        << r.gate << ',' << r.reorder << ',' << r.timeS << ','
        << r.computeS << ',' << r.commS << ',' << r.fidelity << ','
        << r.logFidelity << ',' << r.maxEnergy << ',' << r.msGates << ','
        << r.reorderMs << ',' << r.shuttles << ',' << r.splits << ','
        << r.merges << ',' << r.evictions;
    return out.str();
}

std::string
sweepJsonRow(const SweepPoint &point)
{
    const Row r = makeRow(point);
    std::ostringstream out;
    out.precision(12);
    out << "{\"application\": \"" << jsonEscape(r.application)
        << "\", \"topology\": \"" << jsonEscape(r.topology)
        << "\", \"capacity\": " << r.capacity << ", \"gate\": \""
        << r.gate << "\", \"reorder\": \"" << r.reorder
        << "\", \"time_s\": " << r.timeS << ", \"compute_s\": "
        << r.computeS << ", \"comm_s\": " << r.commS
        << ", \"fidelity\": " << r.fidelity
        << ", \"log_fidelity\": " << r.logFidelity
        << ", \"max_energy_quanta\": " << r.maxEnergy
        << ", \"ms_gates\": " << r.msGates << ", \"reorder_ms\": "
        << r.reorderMs << ", \"shuttles\": " << r.shuttles
        << ", \"splits\": " << r.splits << ", \"merges\": "
        << r.merges << ", \"evictions\": " << r.evictions << "}";
    return out.str();
}

std::string
sweepErrorsHeader()
{
    return "index,application,topology,capacity,gate,reorder,outcome,"
           "error";
}

std::string
sweepErrorRow(size_t index, const SweepPoint &point)
{
    // The diagnostic is arbitrary text (paths, quotes, commas, even
    // newlines from a multi-line invariant report); quote it and keep
    // the sidecar one line per failure so torn-line healing and row
    // counting work on it unchanged.
    std::string quoted = "\"";
    for (const char c : point.error) {
        if (c == '"')
            quoted += "\"\"";
        else if (c == '\n' || c == '\r')
            quoted += ' ';
        else
            quoted += c;
    }
    quoted += '"';

    std::ostringstream out;
    out << index << ',' << point.application << ','
        << point.design.topologyLabel() << ','
        << point.design.trapCapacity << ','
        << gateImplName(point.design.hw.gateImpl) << ','
        << reorderMethodName(point.design.hw.reorder) << ','
        << pointOutcomeName(point.outcome) << ',' << quoted;
    return out.str();
}

SweepRowWriter::SweepRowWriter(std::ostream &out, ExportFormat format,
                               bool with_header, size_t rows_before)
    : out_(out), format_(format), rows_(rows_before)
{
    fatalUnless(rows_before == 0 || format_ == ExportFormat::Csv,
                "only CSV exports can be resumed mid-array");
    if (!with_header)
        return;
    if (format_ == ExportFormat::Csv)
        out_ << sweepCsvHeader() << '\n';
    else
        out_ << "[\n";
    out_.flush();
    fatalUnless(out_.good(), "error writing sweep export header");
}

void
SweepRowWriter::write(const SweepPoint &point)
{
    QCCD_FAULT_POINT("export.row");
    panicUnless(!finished_, "write after SweepRowWriter::finish");
    if (format_ == ExportFormat::Csv) {
        out_ << sweepCsvRow(point) << '\n';
    } else {
        if (rows_ > 0)
            out_ << ",\n";
        out_ << "  " << sweepJsonRow(point);
    }
    ++rows_;
    out_.flush();
    fatalUnless(out_.good(), "error writing sweep export row");
}

void
SweepRowWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (format_ == ExportFormat::Json) {
        out_ << (rows_ > 0 ? "\n]\n" : "]\n");
        out_.flush();
        fatalUnless(out_.good(), "error finishing sweep export");
    }
}

std::string
toCsv(const std::vector<SweepPoint> &points)
{
    std::ostringstream out;
    SweepRowWriter writer(out, ExportFormat::Csv);
    for (const SweepPoint &p : points)
        writer.write(p);
    writer.finish();
    return out.str();
}

std::string
toJson(const std::vector<SweepPoint> &points)
{
    std::ostringstream out;
    SweepRowWriter writer(out, ExportFormat::Json);
    for (const SweepPoint &p : points)
        writer.write(p);
    writer.finish();
    return out.str();
}

void
writeTextFile(const std::string &text, const std::string &path)
{
    std::ofstream out(path);
    fatalUnless(out.good(), "cannot write file '" + path + "'");
    out << text;
    fatalUnless(out.good(), "error writing file '" + path + "'");
}

void
replaceTextFileAtomic(const std::string &text, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        fatalUnless(out.good(), "cannot write file '" + tmp + "'");
        out << text;
        out.flush();
        fatalUnless(out.good(), "error writing file '" + tmp + "'");
    }
    fatalUnless(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename '" + tmp + "' over '" + path + "'");
}

} // namespace qccd
