#include "core/export.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qccd
{

namespace
{

/** Shared field extraction so CSV and JSON can never diverge. */
struct Row
{
    std::string application;
    std::string topology;
    int capacity;
    std::string gate;
    std::string reorder;
    double timeS;
    double computeS;
    double commS;
    double fidelity;
    double logFidelity;
    double maxEnergy;
    long msGates;
    long reorderMs;
    long shuttles;
    long splits;
    long merges;
    long evictions;
};

Row
makeRow(const SweepPoint &p)
{
    Row row;
    row.application = p.application;
    row.topology = p.design.topologySpec;
    row.capacity = p.design.trapCapacity;
    row.gate = gateImplName(p.design.hw.gateImpl);
    row.reorder = reorderMethodName(p.design.hw.reorder);
    row.timeS = p.result.totalTime() / kSecondUs;
    row.computeS = p.result.computeOnlyTime / kSecondUs;
    row.commS = p.result.communicationTime() / kSecondUs;
    row.fidelity = p.result.fidelity();
    row.logFidelity = p.result.sim.logFidelity;
    row.maxEnergy = p.result.sim.maxChainEnergy;
    row.msGates = p.result.sim.counts.algorithmMs;
    row.reorderMs = p.result.sim.counts.reorderMs;
    row.shuttles = p.result.sim.counts.shuttles;
    row.splits = p.result.sim.counts.splits;
    row.merges = p.result.sim.counts.merges;
    row.evictions = p.result.sim.counts.evictions;
    return row;
}

} // namespace

std::string
toCsv(const std::vector<SweepPoint> &points)
{
    std::ostringstream out;
    out.precision(12);
    out << "application,topology,capacity,gate,reorder,time_s,"
           "compute_s,comm_s,fidelity,log_fidelity,max_energy_quanta,"
           "ms_gates,reorder_ms,shuttles,splits,merges,evictions\n";
    for (const SweepPoint &p : points) {
        const Row r = makeRow(p);
        out << r.application << ',' << r.topology << ',' << r.capacity
            << ',' << r.gate << ',' << r.reorder << ',' << r.timeS << ','
            << r.computeS << ',' << r.commS << ',' << r.fidelity << ','
            << r.logFidelity << ',' << r.maxEnergy << ',' << r.msGates
            << ',' << r.reorderMs << ',' << r.shuttles << ','
            << r.splits << ',' << r.merges << ',' << r.evictions << '\n';
    }
    return out.str();
}

std::string
toJson(const std::vector<SweepPoint> &points)
{
    std::ostringstream out;
    out.precision(12);
    out << "[\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const Row r = makeRow(points[i]);
        out << "  {\"application\": \"" << r.application
            << "\", \"topology\": \"" << r.topology
            << "\", \"capacity\": " << r.capacity << ", \"gate\": \""
            << r.gate << "\", \"reorder\": \"" << r.reorder
            << "\", \"time_s\": " << r.timeS << ", \"compute_s\": "
            << r.computeS << ", \"comm_s\": " << r.commS
            << ", \"fidelity\": " << r.fidelity
            << ", \"log_fidelity\": " << r.logFidelity
            << ", \"max_energy_quanta\": " << r.maxEnergy
            << ", \"ms_gates\": " << r.msGates << ", \"reorder_ms\": "
            << r.reorderMs << ", \"shuttles\": " << r.shuttles
            << ", \"splits\": " << r.splits << ", \"merges\": "
            << r.merges << ", \"evictions\": " << r.evictions << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.str();
}

void
writeTextFile(const std::string &text, const std::string &path)
{
    std::ofstream out(path);
    fatalUnless(out.good(), "cannot write file '" + path + "'");
    out << text;
    fatalUnless(out.good(), "error writing file '" + path + "'");
}

} // namespace qccd
