/**
 * @file
 * Automated design recommendation: the paper's Sections IX-X distill
 * sweeps into concrete guidance (trap capacity 15-25, topology matched
 * to the application, GS reordering, application-dependent gate
 * implementation). This module automates that distillation: given an
 * application and a candidate space, it runs the toolflow over every
 * candidate and ranks them by application fidelity (tie-broken by
 * runtime), returning the recommendation a device architect would act
 * on.
 */

#ifndef QCCD_CORE_RECOMMEND_HPP
#define QCCD_CORE_RECOMMEND_HPP

#include <string>
#include <vector>

#include "core/toolflow.hpp"

namespace qccd
{

/** One evaluated candidate, ranked. */
struct RankedDesign
{
    DesignPoint design;
    RunResult result;

    /** Primary objective: log fidelity (higher is better). */
    double score() const { return result.sim.logFidelity; }
};

/** The candidate space to search. */
struct CandidateSpace
{
    std::vector<std::string> topologies{"linear:6", "grid:2x3"};
    std::vector<int> capacities{14, 18, 22, 26, 30, 34};
    std::vector<GateImpl> gates{GateImpl::AM1, GateImpl::AM2,
                                GateImpl::PM, GateImpl::FM};
    std::vector<ReorderMethod> reorders{ReorderMethod::GS,
                                        ReorderMethod::IS};

    /** Number of candidate design points in the space. */
    size_t size() const;
};

/**
 * Evaluate every candidate for @p circuit and return them ranked best
 * first (highest fidelity; runtime breaks ties). Candidates the circuit
 * does not fit on are skipped.
 *
 * Candidates are evaluated through a SweepEngine: the circuit is
 * lowered once, architecture state is shared between candidates, and
 * evaluation runs on @p jobs workers (<= 0: QCCD_JOBS env, default
 * hardware concurrency). The ranking is identical for any job count.
 *
 * @throws ConfigError when no candidate fits the application
 */
std::vector<RankedDesign> rankDesigns(const Circuit &circuit,
                                      const CandidateSpace &space,
                                      int jobs = 0);

/** Convenience: the best design for @p circuit over @p space. */
RankedDesign recommendDesign(const Circuit &circuit,
                             const CandidateSpace &space = {},
                             int jobs = 0);

/** Render the top @p show rows of a ranking as a table. */
std::string rankingTable(const std::vector<RankedDesign> &ranking,
                         size_t show = 10);

} // namespace qccd

#endif // QCCD_CORE_RECOMMEND_HPP
