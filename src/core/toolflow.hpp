/**
 * @file
 * The end-to-end design toolflow (paper Fig. 3): take a candidate QCCD
 * architecture and an application, lower the application to the native
 * gate set, compile it onto the device, simulate the schedule with the
 * physical models, and report application- and device-level metrics.
 */

#ifndef QCCD_CORE_TOOLFLOW_HPP
#define QCCD_CORE_TOOLFLOW_HPP

#include <compare>
#include <iosfwd>
#include <memory>
#include <string>

#include "circuit/circuit.hpp"
#include "compiler/scheduler.hpp"
#include "core/design_point.hpp"

namespace qccd
{

/**
 * Value key naming the architecture a ToolflowContext serves: the
 * topology spec, trap capacity, and the shuttle timings that feed the
 * routing cost. Designs with equal keys can share a context. A plain
 * comparable struct (no stream formatting) since sweep setup builds one
 * per job.
 */
struct ContextKey
{
    std::string topologySpec;
    int trapCapacity = 0;
    TimeUs movePerSegment = 0;
    TimeUs split = 0;
    TimeUs merge = 0;
    TimeUs yJunction = 0;
    TimeUs xJunction = 0;

    friend auto operator<=>(const ContextKey &, const ContextKey &) =
        default;
    friend bool operator==(const ContextKey &, const ContextKey &) =
        default;
};

/** Readable rendering for test failures and debugging. */
std::ostream &operator<<(std::ostream &out, const ContextKey &key);

/** Application + device metrics for one toolflow run. */
struct RunResult
{
    SimResult sim;

    /** Makespan with communication idealized to zero time (Fig. 6b). */
    TimeUs computeOnlyTime = 0;

    /** totalTime - computeOnlyTime: time attributable to shuttling. */
    TimeUs communicationTime() const;

    TimeUs totalTime() const { return sim.makespan; }
    double fidelity() const { return sim.fidelity(); }
};

/** Toolflow execution options. */
struct RunOptions
{
    bool collectTrace = false;

    /** Also run the zero-communication pass for the Fig. 6b split. */
    bool decomposeRuntime = false;

    /** Initial placement policy (paper default: packed). */
    MappingPolicy mappingPolicy = MappingPolicy::Packed;

    /**
     * Watchdog budget for the whole point (both passes of a decomposed
     * run), in milliseconds; 0 disables the deadline. When the budget
     * is exceeded the run throws TimeoutError at the next stage
     * boundary (scheduler pop loop, router eviction, shuttle emission)
     * — under sweep isolation that is a `timeout` outcome instead of a
     * stuck worker. Set via --point-timeout-ms or the spec's
     * "point_timeout_ms" option.
     */
    long pointTimeoutMs = 0;

    /**
     * Persistent result cache file (core/result_store.hpp) this
     * point's spec asked for; empty = no cache. Carried here so the
     * spec's "cache" option rides the same plumbing as its other
     * options — it never enters the cache key (a cache cannot depend
     * on its own location) and runToolflow itself ignores it: the
     * sweep layer owns the store.
     */
    std::string cachePath;
};

/**
 * Immutable per-architecture state shared across toolflow runs: the
 * built Topology and the all-pairs shuttle PathFinder over it.
 *
 * Building these dominates the fixed cost of a toolflow invocation, yet
 * every design point that shares a topology spec, capacity, and shuttle
 * timing produces identical copies. A context is constructed once per
 * distinct architecture (see SweepEngine's cache) and is safe to share
 * between concurrent schedulers: everything inside is read-only after
 * construction. Both members live behind stable pointers so contexts
 * can be moved around while schedulers hold references into them.
 */
class ToolflowContext
{
  public:
    explicit ToolflowContext(const DesignPoint &design);

    const Topology &topology() const { return *topo_; }
    const PathFinder &paths() const { return *paths_; }

    /**
     * Cache key covering every input the context depends on (see
     * ContextKey). Designs with equal keys can share a context.
     */
    static ContextKey cacheKey(const DesignPoint &design);

  private:
    std::unique_ptr<const Topology> topo_;
    std::unique_ptr<const PathFinder> paths_;
};

/**
 * Run @p circuit (any supported gate set) on @p design.
 *
 * The circuit is lowered with decomposeToNative() internally and the
 * architecture context is built on the spot. Sweeps evaluating many
 * points should lower once and share contexts via the overload below
 * (that is what SweepEngine automates).
 *
 * @throws ConfigError when the application does not fit the device or
 *         the configuration is invalid
 */
RunResult runToolflow(const Circuit &circuit, const DesignPoint &design,
                      const RunOptions &options = {});

/**
 * Run @p native (already lowered with decomposeToNative()) on
 * @p design, reusing the prebuilt @p context.
 *
 * @p context must have been built for a design with the same
 * ToolflowContext::cacheKey() as @p design. Thread-safe with respect
 * to other runs sharing the same context and circuit.
 *
 * @p scratch optionally pools scheduler buffers: the two passes of a
 * decomposed run share it, and a sweep worker can carry one scratch
 * across all its points (see SchedulerScratch). Results are
 * bit-identical with or without it.
 */
RunResult runToolflow(const Circuit &native, const DesignPoint &design,
                      const ToolflowContext &context,
                      const RunOptions &options = {},
                      SchedulerScratch *scratch = nullptr);

/**
 * Like runToolflow but also returns the full schedule (trace and
 * mapping) for inspection; always collects the trace.
 */
ScheduleResult runToolflowDetailed(const Circuit &circuit,
                                   const DesignPoint &design);

/** Context-sharing variant of runToolflowDetailed (@p native lowered). */
ScheduleResult runToolflowDetailed(const Circuit &native,
                                   const DesignPoint &design,
                                   const ToolflowContext &context);

} // namespace qccd

#endif // QCCD_CORE_TOOLFLOW_HPP
