/**
 * @file
 * The end-to-end design toolflow (paper Fig. 3): take a candidate QCCD
 * architecture and an application, lower the application to the native
 * gate set, compile it onto the device, simulate the schedule with the
 * physical models, and report application- and device-level metrics.
 */

#ifndef QCCD_CORE_TOOLFLOW_HPP
#define QCCD_CORE_TOOLFLOW_HPP

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "circuit/circuit.hpp"
#include "compiler/scheduler.hpp"
#include "core/design_point.hpp"
#include "sim/model_replay.hpp"

namespace qccd
{

/**
 * Value key naming the architecture a ToolflowContext serves: the
 * topology spec, trap capacity, and the shuttle timings that feed the
 * routing cost. Designs with equal keys can share a context. A plain
 * comparable struct (no stream formatting) since sweep setup builds one
 * per job.
 */
struct ContextKey
{
    std::string topologySpec;
    int trapCapacity = 0;
    TimeUs movePerSegment = 0;
    TimeUs split = 0;
    TimeUs merge = 0;
    TimeUs yJunction = 0;
    TimeUs xJunction = 0;

    friend auto operator<=>(const ContextKey &, const ContextKey &) =
        default;
    friend bool operator==(const ContextKey &, const ContextKey &) =
        default;
};

/** Readable rendering for test failures and debugging. */
std::ostream &operator<<(std::ostream &out, const ContextKey &key);

/**
 * Stage key of the placement stage: exactly the inputs mapQubits reads.
 * Two runs with equal placement keys produce identical InitialMappings
 * (mapQubits is deterministic), so the later one can adopt the earlier
 * one's mapping.
 *
 * The circuit is identified by object address: stage keys are only
 * compared between runs that share their lowered circuits by pointer
 * (SweepEngine jobs hold them via shared_ptr for the whole batch), so
 * identity implies content and no digest is needed. Keys must not
 * outlive the circuits they name.
 */
struct PlacementKey
{
    std::uintptr_t circuit = 0;
    std::string topologySpec;
    int trapCapacity = 0;
    int bufferSlots = 0;
    MappingPolicy mappingPolicy = MappingPolicy::Packed;

    friend auto operator<=>(const PlacementKey &, const PlacementKey &) =
        default;
    friend bool operator==(const PlacementKey &, const PlacementKey &) =
        default;
};

/**
 * Stage key of the schedule stage: every input that can influence the
 * scheduler's decisions, the emitted primitive sequence, or any
 * primitive's duration — circuit identity (see PlacementKey), the
 * architecture, all gate/shuttle timing knobs, the microarchitecture
 * (gate implementation, reorder method, buffer, placement policy) and
 * the run options that alter scheduling (the decomposition pass, trace
 * collection, the watchdog budget).
 *
 * Runs with equal schedule keys emit bit-identical schedules; they may
 * differ only in the pure model knobs (heating k1/k2, recool factor,
 * Gamma, kappa, 1q/measurement error rates), whose effects a recorded
 * ModelEvalLog replays without re-scheduling. That is the invariant
 * the staged toolflow's delta evaluation rests on; it is enforced by
 * the staged-vs-scalar differential in tests/test_sweep_engine.cpp.
 */
struct ScheduleKey
{
    std::uintptr_t circuit = 0;
    std::string topologySpec;
    int trapCapacity = 0;

    /** Shuttle timings (all six feed durations and routing costs). @{ */
    TimeUs movePerSegment = 0;
    TimeUs split = 0;
    TimeUs merge = 0;
    TimeUs yJunction = 0;
    TimeUs xJunction = 0;
    TimeUs ionSwapRotation = 0;
    /** @} */

    /** Gate timing knobs (they set ready times and pop order). @{ */
    GateImpl gateImpl = GateImpl::FM;
    TimeUs oneQubitUs = 0;
    TimeUs measureUs = 0;
    TimeUs twoQubitFloorUs = 0;
    /** @} */

    ReorderMethod reorder = ReorderMethod::GS;
    int bufferSlots = 0;
    MappingPolicy mappingPolicy = MappingPolicy::Packed;

    /** Schedule-affecting run options. @{ */
    bool decomposeRuntime = false;
    bool collectTrace = false;
    long pointTimeoutMs = 0;
    /** @} */

    friend auto operator<=>(const ScheduleKey &, const ScheduleKey &) =
        default;
    friend bool operator==(const ScheduleKey &, const ScheduleKey &) =
        default;
};

/** Application + device metrics for one toolflow run. */
struct RunResult
{
    SimResult sim;

    /** Makespan with communication idealized to zero time (Fig. 6b). */
    TimeUs computeOnlyTime = 0;

    /** totalTime - computeOnlyTime: time attributable to shuttling. */
    TimeUs communicationTime() const;

    TimeUs totalTime() const { return sim.makespan; }
    double fidelity() const { return sim.fidelity(); }
};

/** Toolflow execution options. */
struct RunOptions
{
    bool collectTrace = false;

    /** Also run the zero-communication pass for the Fig. 6b split. */
    bool decomposeRuntime = false;

    /** Initial placement policy (paper default: packed). */
    MappingPolicy mappingPolicy = MappingPolicy::Packed;

    /**
     * Watchdog budget for the whole point (both passes of a decomposed
     * run), in milliseconds; 0 disables the deadline. When the budget
     * is exceeded the run throws TimeoutError at the next stage
     * boundary (scheduler pop loop, router eviction, shuttle emission)
     * — under sweep isolation that is a `timeout` outcome instead of a
     * stuck worker. Set via --point-timeout-ms or the spec's
     * "point_timeout_ms" option.
     */
    long pointTimeoutMs = 0;

    /**
     * Persistent result cache file (core/result_store.hpp) this
     * point's spec asked for; empty = no cache. Carried here so the
     * spec's "cache" option rides the same plumbing as its other
     * options — it never enters the cache key (a cache cannot depend
     * on its own location) and runToolflow itself ignores it: the
     * sweep layer owns the store.
     */
    std::string cachePath;
};

/**
 * Immutable per-architecture state shared across toolflow runs: the
 * built Topology and the all-pairs shuttle PathFinder over it.
 *
 * Building these dominates the fixed cost of a toolflow invocation, yet
 * every design point that shares a topology spec, capacity, and shuttle
 * timing produces identical copies. A context is constructed once per
 * distinct architecture (see SweepEngine's cache) and is safe to share
 * between concurrent schedulers: everything inside is read-only after
 * construction. Both members live behind stable pointers so contexts
 * can be moved around while schedulers hold references into them.
 */
class ToolflowContext
{
  public:
    explicit ToolflowContext(const DesignPoint &design);

    const Topology &topology() const { return *topo_; }
    const PathFinder &paths() const { return *paths_; }

    /**
     * Cache key covering every input the context depends on (see
     * ContextKey). Designs with equal keys can share a context.
     */
    static ContextKey cacheKey(const DesignPoint &design);

  private:
    std::unique_ptr<const Topology> topo_;
    std::unique_ptr<const PathFinder> paths_;
};

/** The placement stage key for @p native on @p design (see
 *  PlacementKey for the circuit-identity caveat). */
PlacementKey placementKeyFor(const Circuit &native,
                             const DesignPoint &design,
                             const RunOptions &options);

/** The schedule stage key for @p native on @p design under
 *  @p options (see ScheduleKey for the reuse invariant). */
ScheduleKey scheduleKeyFor(const Circuit &native,
                           const DesignPoint &design,
                           const RunOptions &options);

/**
 * Per-worker staged evaluator: runToolflow split into keyed, reusable
 * stages (placement → schedule → model evaluation).
 *
 * Consecutive run() calls compare stage keys against the previous
 * point's. Equal placement key: the cached InitialMapping is adopted
 * instead of re-running mapQubits. Equal schedule key: the whole
 * schedule is reused — the cached run's recorded ModelEvalLog is
 * replayed under the new point's model knobs, re-evaluating only the
 * model-dependent metrics (a large multiple cheaper than scheduling).
 * Results are bit-identical to scalar runToolflow calls in any order;
 * SweepEngine orders each batch by schedule key so model-knob axes
 * collapse onto one full schedule per key.
 *
 * Holds a SchedulerScratch and the stage caches; not thread-safe (one
 * instance per worker). Cached keys hold circuit addresses, so a
 * StagedToolflow must not outlive the circuits it has evaluated.
 */
class StagedToolflow
{
  public:
    /** Stage-reuse counters (BM_SweepDelta's metric). */
    struct Stats
    {
        size_t fullSchedules = 0;    ///< points that ran the scheduler
        size_t replays = 0;          ///< points served by model replay
        size_t placementsReused = 0; ///< full runs that skipped mapQubits
    };

    /**
     * Evaluate one point, reusing the previous point's stages when the
     * keys allow. Bit-identical to runToolflow(native, design, context,
     * options, scratch). Exceptions propagate exactly as runToolflow's
     * (a throw invalidates the schedule cache, so the next point runs
     * full); infeasible model parameters are rejected on the replay
     * path by the same HardwareParams::validate the scheduler runs.
     */
    RunResult run(const Circuit &native, const DesignPoint &design,
                  const ToolflowContext &context,
                  const RunOptions &options);

    const Stats &stats() const { return stats_; }

  private:
    SchedulerScratch scratch_;

    /** Placement stage cache (last distinct mapping). @{ */
    bool havePlacement_ = false;
    PlacementKey placementKey_;
    InitialMapping placement_;
    /** @} */

    /** Schedule stage cache (last full schedule + its model log). @{ */
    bool haveSchedule_ = false;
    ScheduleKey scheduleKey_;
    RunResult scheduleBase_;
    ModelEvalLog log_;
    /** @} */

    Stats stats_;
};

/**
 * Run @p circuit (any supported gate set) on @p design.
 *
 * The circuit is lowered with decomposeToNative() internally and the
 * architecture context is built on the spot. Sweeps evaluating many
 * points should lower once and share contexts via the overload below
 * (that is what SweepEngine automates).
 *
 * @throws ConfigError when the application does not fit the device or
 *         the configuration is invalid
 */
RunResult runToolflow(const Circuit &circuit, const DesignPoint &design,
                      const RunOptions &options = {});

/**
 * Run @p native (already lowered with decomposeToNative()) on
 * @p design, reusing the prebuilt @p context.
 *
 * @p context must have been built for a design with the same
 * ToolflowContext::cacheKey() as @p design. Thread-safe with respect
 * to other runs sharing the same context and circuit.
 *
 * @p scratch optionally pools scheduler buffers: the two passes of a
 * decomposed run share it, and a sweep worker can carry one scratch
 * across all its points (see SchedulerScratch). Results are
 * bit-identical with or without it.
 */
RunResult runToolflow(const Circuit &native, const DesignPoint &design,
                      const ToolflowContext &context,
                      const RunOptions &options = {},
                      SchedulerScratch *scratch = nullptr);

/**
 * Like runToolflow but also returns the full schedule (trace and
 * mapping) for inspection; always collects the trace. Honors the
 * schedule-shaping options (mappingPolicy, pointTimeoutMs); the
 * trace/decompose flags are ignored (the trace is always collected,
 * and there is no second pass to decompose).
 */
ScheduleResult runToolflowDetailed(const Circuit &circuit,
                                   const DesignPoint &design,
                                   const RunOptions &options = {});

/** Context-sharing variant of runToolflowDetailed (@p native lowered). */
ScheduleResult runToolflowDetailed(const Circuit &native,
                                   const DesignPoint &design,
                                   const ToolflowContext &context,
                                   const RunOptions &options = {});

} // namespace qccd

#endif // QCCD_CORE_TOOLFLOW_HPP
