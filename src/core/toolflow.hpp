/**
 * @file
 * The end-to-end design toolflow (paper Fig. 3): take a candidate QCCD
 * architecture and an application, lower the application to the native
 * gate set, compile it onto the device, simulate the schedule with the
 * physical models, and report application- and device-level metrics.
 */

#ifndef QCCD_CORE_TOOLFLOW_HPP
#define QCCD_CORE_TOOLFLOW_HPP

#include "circuit/circuit.hpp"
#include "compiler/scheduler.hpp"
#include "core/design_point.hpp"

namespace qccd
{

/** Application + device metrics for one toolflow run. */
struct RunResult
{
    SimResult sim;

    /** Makespan with communication idealized to zero time (Fig. 6b). */
    TimeUs computeOnlyTime = 0;

    /** totalTime - computeOnlyTime: time attributable to shuttling. */
    TimeUs communicationTime() const;

    TimeUs totalTime() const { return sim.makespan; }
    double fidelity() const { return sim.fidelity(); }
};

/** Toolflow execution options. */
struct RunOptions
{
    bool collectTrace = false;

    /** Also run the zero-communication pass for the Fig. 6b split. */
    bool decomposeRuntime = false;

    /** Initial placement policy (paper default: packed). */
    MappingPolicy mappingPolicy = MappingPolicy::Packed;
};

/**
 * Run @p circuit (any supported gate set) on @p design.
 *
 * The circuit is lowered with decomposeToNative() internally.
 *
 * @throws ConfigError when the application does not fit the device or
 *         the configuration is invalid
 */
RunResult runToolflow(const Circuit &circuit, const DesignPoint &design,
                      const RunOptions &options = {});

/**
 * Like runToolflow but also returns the full schedule (trace and
 * mapping) for inspection; always collects the trace.
 */
ScheduleResult runToolflowDetailed(const Circuit &circuit,
                                   const DesignPoint &design);

} // namespace qccd

#endif // QCCD_CORE_TOOLFLOW_HPP
