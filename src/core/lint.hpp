/**
 * @file
 * `qccd_lint`: static validation of the explorer's file artifacts —
 * `.sweep` design-space specs, `.topo` device graphs, and the
 * committed `golden/` CSVs — without running the simulator.
 *
 * The sweep runner and topo loader already reject malformed input with
 * positioned ConfigErrors, but they stop at the first problem and some
 * contradictions (an application that cannot fit any swept device, a
 * golden CSV whose row count no longer matches its spec's expanded
 * grid) only surface points-deep into a run or as a CI golden diff.
 * The linter walks the artifacts purely statically, reports *every*
 * finding with `origin:line:col` diagnostics in one pass, and never
 * throws or crashes on arbitrary input — so `qccd_lint examples/
 * golden/` can gate CI cheaply before any simulation happens.
 *
 * Checks (stable diagnostic codes in brackets):
 *  - `.sweep`: syntax [parse], unknown spec/grid/option/param keys
 *    [unknown-key, unknown-option, unknown-param], wrong value kinds
 *    [bad-kind], unreachable axes — empty cross-products [empty-axis],
 *    duplicate axis values [duplicate-axis-value, warning], unknown
 *    applications/gates/reorders/policies [unknown-app, unknown-gate,
 *    unknown-reorder, unknown-policy], bad topology specs
 *    [bad-topology], `qasm:`/`topo:` paths that do not resolve
 *    [missing-file], capacity bounds [bad-capacity, bad-buffer], grids
 *    beyond the expansion cap [grid-too-large], applications that
 *    cannot fit a swept device's total capacity [app-does-not-fit],
 *    and fits that only work by shrinking the buffer [tight-fit,
 *    warning].
 *  - `.topo`: the loader's full syntax and graph validation, reported
 *    as diagnostics instead of exceptions [topo-parse, topo-graph].
 *  - `.qcache` result stores (core/result_store.hpp): magic
 *    [cache-magic], schema version [cache-version], record framing
 *    [cache-frame], checksums [cache-checksum], payload decode
 *    [cache-decode], with healable torn tails as warnings
 *    [cache-torn].
 *  - golden CSVs: header drift against sweepCsvHeader()
 *    [golden-header], truncated/empty files [golden-empty], rows with
 *    the wrong column count [golden-columns], non-numeric metric
 *    fields [golden-number].
 *  - cross-artifact (when specs and CSVs are linted together): specs
 *    with no covering golden [missing-golden], goldens no spec
 *    produces [golden-orphan, warning], and goldens whose data-row
 *    count differs from the spec's expanded point count [golden-rows].
 */

#ifndef QCCD_CORE_LINT_HPP
#define QCCD_CORE_LINT_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace qccd
{

/** How bad a finding is: errors fail CI, warnings do not. */
enum class LintSeverity
{
    Warning,
    Error
};

/** One finding, anchored to an artifact position. */
struct LintDiagnostic
{
    LintSeverity severity = LintSeverity::Error;

    /** Stable machine-readable slug, e.g. "unknown-key". */
    std::string code;

    /** Artifact path (as given to the linter). */
    std::string origin;

    /** 1-based position; 0 when the finding is file-level. @{ */
    int line = 0;
    int column = 0;
    /** @} */

    std::string message;

    /** "origin:line:col: error: message [code]" (no position when 0). */
    std::string toString() const;
};

/** Accumulated findings over one lint invocation. */
struct LintReport
{
    std::vector<LintDiagnostic> diagnostics;

    /** Artifacts inspected (files, not findings). */
    int filesChecked = 0;

    size_t errorCount() const;
    size_t warningCount() const;

    /** True when no *errors* were found (warnings do not fail). */
    bool clean() const { return errorCount() == 0; }

    /** All diagnostics, one per line (stable order: as discovered). */
    std::string toString() const;
};

/**
 * What the sweep walk learned about a spec, for cross-artifact checks.
 * `points` is the statically expanded grid size (0 when the spec was
 * too broken to expand).
 */
struct SweepLintSummary
{
    std::string name;
    size_t points = 0;
    bool expanded = false;
};

/**
 * Lint sweep-spec text. Never throws: all findings (including parse
 * failures) are appended to @p report as diagnostics.
 *
 * @param text the spec document
 * @param origin path used in diagnostics
 * @param base_dir directory `qasm:`/`topo:` paths resolve against
 *        (empty: the current working directory)
 * @param summary optional out-param for cross-artifact checks
 */
void lintSweepText(const std::string &text, const std::string &origin,
                   const std::string &base_dir, LintReport &report,
                   SweepLintSummary *summary = nullptr);

/** Lint `.topo` device-file text (never throws). */
void lintTopoText(const std::string &text, const std::string &origin,
                  LintReport &report);

/** Lint a golden sweep-CSV's text (never throws). @p rows_out gets the
 *  data-row count for the cross-artifact row check. */
void lintGoldenText(const std::string &text, const std::string &origin,
                    LintReport &report, size_t *rows_out = nullptr);

/** Lint raw `.qcache` result-store bytes (never throws): the static
 *  half of ResultStore's open-time recovery, reported as diagnostics
 *  instead of quarantine/heal actions. */
void lintCacheBytes(const std::string &bytes, const std::string &origin,
                    LintReport &report);

/**
 * Lint files and directory trees.
 *
 * Directories are walked recursively; `.sweep`, `.topo`, `.csv` and
 * `.qcache` files are linted by kind, other files are ignored. When the
 * argument set contains both specs and CSVs, the cross-artifact
 * coverage and row-count checks run over the whole set. An unreadable
 * or nonexistent path is itself a diagnostic, not an exception.
 */
LintReport lintArtifacts(const std::vector<std::string> &paths);

} // namespace qccd

#endif // QCCD_CORE_LINT_HPP
