#include "core/search.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/sweep_engine.hpp"
#include "core/toolflow.hpp"

namespace qccd
{

namespace
{

/** Ranking score: corrected prediction, worst-ranked when the prior
 *  could not be computed (broken points surface their error if the
 *  budget ever reaches them). */
struct Score
{
    double logFidelity = -std::numeric_limits<double>::infinity();
    double timeUs = std::numeric_limits<double>::infinity();
};

/** Deterministic total order: predicted log-fidelity descending,
 *  predicted time ascending, spec index ascending. */
bool
better(const Score &a, size_t ia, const Score &b, size_t ib)
{
    if (a.logFidelity != b.logFidelity)
        return a.logFidelity > b.logFidelity;
    if (a.timeUs != b.timeUs)
        return a.timeUs < b.timeUs;
    return ia < ib;
}

} // namespace

SearchEngine::SearchEngine(SweepEngine &engine)
    : engine_(engine), runner_(engine)
{
}

SearchOutcome
SearchEngine::run(const SearchSpace &space, const SearchOptions &options)
{
    const size_t n = space.size();
    fatalUnless(n > 0, "search space is empty");

    SearchOutcome out;
    out.stats.space = n;
    const size_t budget =
        options.budget == 0 ? std::max<size_t>(1, n / 4)
                            : std::min(options.budget, n);
    out.stats.budget = budget;
    const auto eta = static_cast<size_t>(std::max(2, options.eta));

    std::vector<char> evaluated(n, 0);
    std::vector<CalibratedCostModel::Sample> samples;
    size_t spent = 0;

    // One engine batch per rung, ascending by spec index: the engine
    // groups the batch by schedule key, so sibling promotions share
    // schedules via the replay fast path, and emission order matches
    // the exhaustive sweep's for the same points.
    const auto evaluate = [&](std::vector<size_t> indices) {
        std::sort(indices.begin(), indices.end());
        std::vector<PlannedPoint> points;
        points.reserve(indices.size());
        for (const size_t index : indices)
            points.push_back(space.point(index));
        size_t at = 0;
        const SweepRunStats run = runner_.run(
            points, 0,
            [&](const SweepPoint &point) {
                const size_t index = indices[at++];
                evaluated[index] = 1;
                out.evaluations.push_back({index, point});
            },
            options.policy, std::max<size_t>(1, indices.size()));
        spent += at;
        out.stats.run.evaluated += run.evaluated;
        out.stats.run.failed += run.failed;
        out.stats.run.aborted =
            out.stats.run.aborted || run.aborted;
        out.stats.run.cacheHits += run.cacheHits;
        out.stats.run.cacheDivergent += run.cacheDivergent;
        out.stats.run.fullSchedules += run.fullSchedules;
        out.stats.run.replays += run.replays;
    };

    if (budget >= n) {
        // The budget covers the space: this is an exhaustive sweep in
        // one batch; no surrogate needed.
        std::vector<size_t> all(n);
        for (size_t i = 0; i < n; ++i)
            all[i] = i;
        evaluate(std::move(all));
    } else {
        // Analytic priors for every candidate. Feature extraction is
        // memoized per circuit and per architecture; points whose
        // inputs fail to resolve rank last under failure isolation
        // (and fail the search eagerly without it, like a sweep).
        const AnalyticCostModel analytic;
        std::map<const Circuit *, CircuitStats> statsCache;
        std::map<std::pair<std::string, int>, TopologyFeatures>
            featureCache;
        std::vector<CostPrediction> priors(n);
        std::vector<char> scored(n, 0);
        for (size_t i = 0; i < n; ++i) {
            const PlannedPoint point = space.point(i);
            try {
                const std::shared_ptr<const Circuit> circuit =
                    runner_.circuitFor(point);
                auto statsIt = statsCache.find(circuit.get());
                if (statsIt == statsCache.end())
                    statsIt = statsCache
                                  .emplace(circuit.get(),
                                           computeStats(*circuit))
                                  .first;
                const std::pair<std::string, int> archKey{
                    point.design.topologySpec,
                    point.design.trapCapacity};
                auto featIt = featureCache.find(archKey);
                if (featIt == featureCache.end())
                    featIt =
                        featureCache
                            .emplace(archKey,
                                     extractTopologyFeatures(
                                         engine_.context(point.design)
                                             ->topology()))
                            .first;
                priors[i] = analytic.predict(
                    point.design, statsIt->second, featIt->second);
                scored[i] = 1;
            } catch (...) {
                if (!options.policy.keepGoing)
                    throw;
            }
        }

        CalibratedCostModel model; // identity until first fit
        const auto refit = [&]() {
            samples.clear();
            for (const SearchEvaluation &ev : out.evaluations) {
                if (!ev.point.ok() || !scored[ev.index])
                    continue;
                samples.push_back(
                    {priors[ev.index],
                     ev.point.result.sim.logFidelity,
                     ev.point.result.totalTime()});
            }
            model.fit(samples);
        };

        // Stage 1: stratified calibration sample (seeded, one index
        // per contiguous stratum — deterministic and duplicate-free).
        size_t calibration = 0;
        if (budget >= 8)
            calibration = std::min<size_t>(budget / 3, 16);
        if (calibration > 0) {
            Rng rng(options.seed);
            std::vector<size_t> pick;
            pick.reserve(calibration);
            for (size_t j = 0; j < calibration; ++j) {
                const size_t lo = n * j / calibration;
                const size_t hi = n * (j + 1) / calibration;
                pick.push_back(lo + rng.nextBelow(hi - lo));
            }
            evaluate(std::move(pick));
            out.stats.calibration = spent;
            refit();
        }

        // Stage 2: successive halving down the corrected ranking.
        while (spent < budget && !out.stats.run.aborted) {
            const size_t remaining = budget - spent;
            size_t rung = remaining - remaining / eta;
            std::vector<size_t> frontier;
            frontier.reserve(n - spent);
            for (size_t i = 0; i < n; ++i)
                if (!evaluated[i])
                    frontier.push_back(i);
            if (frontier.empty())
                break;
            rung = std::min(rung, frontier.size());
            std::vector<Score> scores(n);
            for (const size_t i : frontier) {
                if (!scored[i])
                    continue;
                const CostPrediction c = model.correct(priors[i]);
                scores[i] = {c.logFidelity, c.timeUs};
            }
            std::partial_sort(
                frontier.begin(),
                frontier.begin() + static_cast<long>(rung),
                frontier.end(), [&](size_t a, size_t b) {
                    return better(scores[a], a, scores[b], b);
                });
            frontier.resize(rung);
            evaluate(std::move(frontier));
            ++out.stats.rungs;
            refit();
        }
    }

    out.stats.evaluated = spent;

    // The audit list reads like the exhaustive CSV: ascending index.
    std::sort(out.evaluations.begin(), out.evaluations.end(),
              [](const SearchEvaluation &a, const SearchEvaluation &b) {
                  return a.index < b.index;
              });

    // Winner: best real result, the sweep objective's exact order
    // (max log-fidelity, then min time, then min spec index — the
    // index an exhaustive argmax scan would keep).
    for (const SearchEvaluation &ev : out.evaluations) {
        if (!ev.point.ok())
            continue;
        const double fid = ev.point.result.sim.logFidelity;
        const double time = ev.point.result.totalTime();
        if (!out.haveWinner ||
            fid > out.winner.result.sim.logFidelity ||
            (fid == out.winner.result.sim.logFidelity &&
             time < out.winner.result.totalTime())) {
            out.haveWinner = true;
            out.winnerIndex = ev.index;
            out.winner = ev.point;
        }
    }
    return out;
}

} // namespace qccd
