#include "core/recommend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/sweep_engine.hpp"

namespace qccd
{

size_t
CandidateSpace::size() const
{
    return topologies.size() * capacities.size() * gates.size() *
           reorders.size();
}

std::vector<RankedDesign>
rankDesigns(const Circuit &circuit, const CandidateSpace &space,
            int jobs)
{
    SweepEngine engine(jobs);
    const auto native = SweepEngine::lower(circuit);

    std::vector<SweepJob> batch;
    batch.reserve(space.size());
    for (const std::string &topo : space.topologies) {
        for (int cap : space.capacities) {
            for (GateImpl gate : space.gates) {
                for (ReorderMethod reorder : space.reorders) {
                    DesignPoint dp;
                    dp.topologySpec = topo;
                    dp.trapCapacity = cap;
                    dp.hw.gateImpl = gate;
                    dp.hw.reorder = reorder;
                    // The shared context also answers the fit check
                    // without building a throwaway topology per
                    // candidate.
                    if (engine.context(dp)->topology().totalCapacity() <
                        circuit.numQubits())
                        continue; // application does not fit
                    SweepJob job;
                    job.application = circuit.name();
                    job.native = native;
                    job.design = dp;
                    batch.push_back(std::move(job));
                }
            }
        }
    }
    fatalUnless(!batch.empty(),
                "no candidate design fits the application");

    const std::vector<SweepPoint> points = engine.run(batch);
    std::vector<RankedDesign> ranking;
    ranking.reserve(points.size());
    for (const SweepPoint &p : points)
        ranking.emplace_back(p.design, p.result);

    std::stable_sort(ranking.begin(), ranking.end(),
                     [](const RankedDesign &a, const RankedDesign &b) {
                         if (a.score() != b.score())
                             return a.score() > b.score();
                         return a.result.totalTime() <
                                b.result.totalTime();
                     });
    return ranking;
}

RankedDesign
recommendDesign(const Circuit &circuit, const CandidateSpace &space,
                int jobs)
{
    return rankDesigns(circuit, space, jobs).front();
}

std::string
rankingTable(const std::vector<RankedDesign> &ranking, size_t show)
{
    TextTable table;
    table.addRow({"rank", "design", "fidelity", "log-fid", "time (s)"});
    for (size_t i = 0; i < std::min(show, ranking.size()); ++i) {
        const RankedDesign &r = ranking[i];
        table.addRow({std::to_string(i + 1), r.design.label(),
                      formatSci(r.result.fidelity(), 3),
                      formatSig(r.score(), 4),
                      formatSig(r.result.totalTime() / kSecondUs, 4)});
    }
    return table.render();
}

} // namespace qccd
