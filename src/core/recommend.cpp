#include "core/recommend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/table.hpp"

namespace qccd
{

size_t
CandidateSpace::size() const
{
    return topologies.size() * capacities.size() * gates.size() *
           reorders.size();
}

std::vector<RankedDesign>
rankDesigns(const Circuit &circuit, const CandidateSpace &space)
{
    std::vector<RankedDesign> ranking;
    for (const std::string &topo : space.topologies) {
        for (int cap : space.capacities) {
            for (GateImpl gate : space.gates) {
                for (ReorderMethod reorder : space.reorders) {
                    DesignPoint dp;
                    dp.topologySpec = topo;
                    dp.trapCapacity = cap;
                    dp.hw.gateImpl = gate;
                    dp.hw.reorder = reorder;
                    if (dp.buildTopology().totalCapacity() <
                        circuit.numQubits())
                        continue; // application does not fit
                    RankedDesign entry;
                    entry.design = dp;
                    entry.result = runToolflow(circuit, dp);
                    ranking.push_back(std::move(entry));
                }
            }
        }
    }
    fatalUnless(!ranking.empty(),
                "no candidate design fits the application");

    std::stable_sort(ranking.begin(), ranking.end(),
                     [](const RankedDesign &a, const RankedDesign &b) {
                         if (a.score() != b.score())
                             return a.score() > b.score();
                         return a.result.totalTime() <
                                b.result.totalTime();
                     });
    return ranking;
}

RankedDesign
recommendDesign(const Circuit &circuit, const CandidateSpace &space)
{
    return rankDesigns(circuit, space).front();
}

std::string
rankingTable(const std::vector<RankedDesign> &ranking, size_t show)
{
    TextTable table;
    table.addRow({"rank", "design", "fidelity", "log-fid", "time (s)"});
    for (size_t i = 0; i < std::min(show, ranking.size()); ++i) {
        const RankedDesign &r = ranking[i];
        table.addRow({std::to_string(i + 1), r.design.label(),
                      formatSci(r.result.fidelity(), 3),
                      formatSig(r.score(), 4),
                      formatSig(r.result.totalTime() / kSecondUs, 4)});
    }
    return table.render();
}

} // namespace qccd
