/**
 * @file
 * A candidate QCCD architecture: everything Fig. 3 feeds the toolflow.
 *
 * A DesignPoint names the communication topology (via spec string), the
 * per-trap capacity, and the full hardware parameterization (gate
 * implementation, reordering method, physical model constants).
 */

#ifndef QCCD_CORE_DESIGN_POINT_HPP
#define QCCD_CORE_DESIGN_POINT_HPP

#include <string>

#include "arch/topology.hpp"
#include "models/params.hpp"

namespace qccd
{

/** One candidate device configuration. */
struct DesignPoint
{
    /**
     * Topology spec: any registered builder family ("linear:6", "L6",
     * "grid:2x3", "ring:8", "star:5", "htree:3", ...) or "topo:FILE"
     * for a custom `.topo` device graph (see arch/topo_file.hpp).
     */
    std::string topologySpec = "linear:6";

    /** Default maximum ions per trap (a `.topo` trap may pin its own). */
    int trapCapacity = 22;

    /** Physical and microarchitectural parameters. */
    HardwareParams hw;

    /** Build the topology for this design point. */
    Topology buildTopology() const;

    /**
     * The device name reports and CSV/JSON exports carry: the spec
     * itself for builder specs, the file stem for "topo:FILE" specs
     * (so rows say "ring4", not the machine-local path).
     */
    std::string topologyLabel() const;

    /** Short label like "L6 cap=22 FM-GS" for reports. */
    std::string label() const;

    /** Convenience constructors for the paper's two topologies. @{ */
    static DesignPoint linear(int traps, int capacity,
                              GateImpl gate = GateImpl::FM,
                              ReorderMethod reorder = ReorderMethod::GS);
    static DesignPoint grid(int rows, int cols, int capacity,
                            GateImpl gate = GateImpl::FM,
                            ReorderMethod reorder = ReorderMethod::GS);
    /** @} */
};

} // namespace qccd

#endif // QCCD_CORE_DESIGN_POINT_HPP
