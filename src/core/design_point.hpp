/**
 * @file
 * A candidate QCCD architecture: everything Fig. 3 feeds the toolflow.
 *
 * A DesignPoint names the communication topology (via spec string), the
 * per-trap capacity, and the full hardware parameterization (gate
 * implementation, reordering method, physical model constants).
 */

#ifndef QCCD_CORE_DESIGN_POINT_HPP
#define QCCD_CORE_DESIGN_POINT_HPP

#include <string>

#include "arch/topology.hpp"
#include "models/params.hpp"

namespace qccd
{

/** One candidate device configuration. */
struct DesignPoint
{
    /** Topology spec, e.g. "linear:6" / "L6" / "grid:2x3" / "G2x3". */
    std::string topologySpec = "linear:6";

    /** Maximum ions per trap. */
    int trapCapacity = 22;

    /** Physical and microarchitectural parameters. */
    HardwareParams hw;

    /** Build the topology for this design point. */
    Topology buildTopology() const;

    /** Short label like "L6 cap=22 FM-GS" for reports. */
    std::string label() const;

    /** Convenience constructors for the paper's two topologies. @{ */
    static DesignPoint linear(int traps, int capacity,
                              GateImpl gate = GateImpl::FM,
                              ReorderMethod reorder = ReorderMethod::GS);
    static DesignPoint grid(int rows, int cols, int capacity,
                            GateImpl gate = GateImpl::FM,
                            ReorderMethod reorder = ReorderMethod::GS);
    /** @} */
};

} // namespace qccd

#endif // QCCD_CORE_DESIGN_POINT_HPP
