#include "core/result_store.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <csignal>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "core/export.hpp"

namespace qccd
{

namespace
{

/** Little-endian emit helpers (the store's only byte order). @{ */
void
putU32(std::string &out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(value >> (8 * i)));
}

void
putU64(std::string &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(value >> (8 * i)));
}

void
putI64(std::string &out, int64_t value)
{
    putU64(out, static_cast<uint64_t>(value));
}

void
putF64(std::string &out, double value)
{
    putU64(out, std::bit_cast<uint64_t>(value));
}
/** @} */

/** Bounds-checked little-endian reader over payload bytes. */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes) : bytes_(bytes) {}

    bool ok() const { return ok_; }
    bool done() const { return ok_ && pos_ == bytes_.size(); }

    uint32_t u32()
    {
        uint32_t value = 0;
        if (!take(4))
            return 0;
        for (int i = 0; i < 4; ++i)
            value |= static_cast<uint32_t>(byteAt(pos_ - 4 + i))
                     << (8 * i);
        return value;
    }

    uint64_t u64()
    {
        uint64_t value = 0;
        if (!take(8))
            return 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<uint64_t>(byteAt(pos_ - 8 + i))
                     << (8 * i);
        return value;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }
    int32_t i32() { return static_cast<int32_t>(u32()); }

  private:
    bool take(size_t n)
    {
        if (!ok_ || bytes_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    unsigned char byteAt(size_t i) const
    {
        return static_cast<unsigned char>(bytes_[i]);
    }

    const std::string &bytes_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Read a whole file as raw bytes; false when it does not exist. */
bool
readFileBytes(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatalUnless(!in.bad(), "error reading result cache '" + path + "'");
    *out = buffer.str();
    return true;
}

/** First bytes of a corrupt region as hex, for the quarantine line. */
std::string
hexPrefix(const std::string &bytes, size_t offset, size_t length)
{
    static const char digits[] = "0123456789abcdef";
    const size_t n = std::min<size_t>(length, 16);
    std::string out;
    for (size_t i = 0; i < n && offset + i < bytes.size(); ++i) {
        const auto b = static_cast<unsigned char>(bytes[offset + i]);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

constexpr size_t kFrameOverhead = 12; // u32 length + u64 checksum

} // namespace

const char *
ResultStore::magic()
{
    // 8 bytes; the \n catches text-mode transfer mangling like the
    // PNG magic does.
    return "qccdRES\n";
}

std::string
ResultStore::freshHeader()
{
    std::string header(magic(), kMagicSize);
    putU32(header, kSchemaVersion);
    putU32(header, 0);
    return header;
}

ResultStoreScan
scanResultStore(const std::string &bytes)
{
    ResultStoreScan scan;
    scan.tornTailOffset = bytes.size();

    const std::string header = ResultStore::freshHeader();
    if (bytes.size() < ResultStore::kHeaderSize) {
        // A file shorter than the header is healable only when it is
        // a prefix of a legitimate creation (torn first write);
        // anything else is some other file handed to us by mistake.
        scan.headerTorn =
            bytes == header.substr(0, bytes.size()) ||
            (bytes.size() >= ResultStore::kMagicSize &&
             bytes.compare(0, ResultStore::kMagicSize,
                           ResultStore::magic()) == 0);
        scan.magicOk = bytes.size() >= ResultStore::kMagicSize &&
                       scan.headerTorn;
        return scan;
    }

    scan.magicOk = bytes.compare(0, ResultStore::kMagicSize,
                                 ResultStore::magic()) == 0;
    if (!scan.magicOk)
        return scan;
    for (int i = 0; i < 4; ++i)
        scan.version |= static_cast<uint32_t>(static_cast<unsigned char>(
                            bytes[ResultStore::kMagicSize + i]))
                        << (8 * i);
    scan.versionOk = scan.version == ResultStore::kSchemaVersion;
    if (!scan.versionOk)
        return scan; // foreign layout: nothing else is knowable

    size_t offset = ResultStore::kHeaderSize;
    while (offset < bytes.size()) {
        const size_t remaining = bytes.size() - offset;
        if (remaining < kFrameOverhead) {
            scan.truncatedTail = true;
            scan.tornTailOffset = offset;
            return scan;
        }
        uint32_t length = 0;
        for (int i = 0; i < 4; ++i)
            length |= static_cast<uint32_t>(static_cast<unsigned char>(
                          bytes[offset + i]))
                      << (8 * i);
        if (length != ResultStore::kPayloadSize) {
            // Impossible framing: record boundaries downstream are
            // unknowable, so the whole rest of the file is one defect.
            scan.defects.push_back(
                {offset, remaining, "frame"});
            scan.tornTailOffset = offset;
            return scan;
        }
        if (remaining < kFrameOverhead + length) {
            scan.truncatedTail = true;
            scan.tornTailOffset = offset;
            return scan;
        }
        uint64_t checksum = 0;
        for (int i = 0; i < 8; ++i)
            checksum |= static_cast<uint64_t>(static_cast<unsigned char>(
                            bytes[offset + 4 + i]))
                        << (8 * i);
        std::string payload =
            bytes.substr(offset + kFrameOverhead, length);
        if (fnv1a64(payload.data(), payload.size()) != checksum) {
            scan.defects.push_back(
                {offset, kFrameOverhead + length, "checksum"});
            offset += kFrameOverhead + length;
            continue;
        }
        ScannedResultRecord record;
        record.offset = offset;
        ByteReader reader(payload);
        record.key.hi = reader.u64();
        record.key.lo = reader.u64();
        record.payload = std::move(payload);
        scan.records.push_back(std::move(record));
        offset += kFrameOverhead + length;
    }
    return scan;
}

ResultStore::ResultStore(const std::string &path)
    : path_(path), lockPath_(path + ".lock")
{
    QCCD_FAULT_POINT("cache.open");
    acquireLock();
    try {
        recoverAndLoad();
    } catch (...) {
        releaseLock();
        throw;
    }
}

ResultStore::~ResultStore()
{
    if (out_.is_open())
        out_.close();
    releaseLock();
}

void
ResultStore::acquireLock()
{
    for (int attempt = 0; attempt < 16; ++attempt) {
        const int fd = ::open(lockPath_.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            const std::string pid =
                std::to_string(static_cast<long>(::getpid())) + "\n";
            const ssize_t wrote =
                ::write(fd, pid.data(), pid.size());
            ::close(fd);
            fatalUnless(wrote == static_cast<ssize_t>(pid.size()),
                        "cannot write result cache lock '" + lockPath_ +
                            "'");
            lockHeld_ = true;
            return;
        }
        fatalUnless(errno == EEXIST,
                    "cannot create result cache lock '" + lockPath_ +
                        "'");

        // Somebody holds it. A dead owner's lock is stale: SIGKILL
        // cannot run destructors, so takeover is the only way a
        // killed run's cache ever opens again.
        long owner = 0;
        {
            std::ifstream in(lockPath_);
            in >> owner;
            if (!in)
                owner = 0;
        }
        const bool alive =
            owner > 0 && (::kill(static_cast<pid_t>(owner), 0) == 0 ||
                          errno == EPERM);
        fatalUnless(!alive,
                    "result cache '" + path_ +
                        "' is locked by running process " +
                        std::to_string(owner) + "; remove '" +
                        lockPath_ + "' if that is wrong");
        // Stale (dead pid or unreadable): take it over and retry the
        // exclusive create — a race loser just loops again.
        ::unlink(lockPath_.c_str());
    }
    fatalUnless(false, "cannot acquire result cache lock '" +
                           lockPath_ + "' (retries exhausted)");
}

void
ResultStore::releaseLock()
{
    if (!lockHeld_)
        return;
    ::unlink(lockPath_.c_str());
    lockHeld_ = false;
}

void
ResultStore::recoverAndLoad()
{
    std::string bytes;
    if (!readFileBytes(path_, &bytes)) {
        std::ofstream create(path_,
                             std::ios::binary | std::ios::trunc);
        create << freshHeader();
        create.flush();
        fatalUnless(create.good(),
                    "cannot create result cache '" + path_ + "'");
    } else {
        const ResultStoreScan scan = scanResultStore(bytes);
        fatalUnless(scan.magicOk || scan.headerTorn,
                    "'" + path_ +
                        "' is not a qccd result cache (bad magic)");
        if (!scan.headerTorn)
            fatalUnless(
                scan.versionOk,
                "result cache '" + path_ + "' has schema version " +
                    std::to_string(scan.version) +
                    "; this build reads and writes version " +
                    std::to_string(kSchemaVersion) +
                    " — point --cache at a fresh file (or delete this "
                    "one) to recompute");

        for (const ScannedResultRecord &record : scan.records) {
            RunResult result;
            Digest128 key;
            if (!decodeRecordPayload(record.payload, &key, &result))
                continue; // unreachable for version-1 payloads
            index_.insert_or_assign(key, result);
        }
        stats_.loaded = scan.records.size();
        stats_.quarantined = scan.defects.size();
        stats_.healedTail = scan.tornTail();

        if (!scan.defects.empty() || scan.tornTail()) {
            // Quarantine first (so the dropped bytes stay inspectable
            // even if the rewrite below fails), then compact the file
            // to header + intact records in one atomic replace.
            if (!scan.defects.empty()) {
                std::ofstream quarantine(path_ + ".quarantine",
                                         std::ios::app);
                for (const ResultStoreDefect &defect : scan.defects)
                    quarantine
                        << "offset=" << defect.offset
                        << " length=" << defect.length
                        << " reason=" << defect.reason << " hex="
                        << hexPrefix(bytes, defect.offset,
                                     defect.length)
                        << "\n";
                quarantine.flush();
                fatalUnless(quarantine.good(),
                            "cannot write quarantine sidecar '" +
                                path_ + ".quarantine'");
            }
            std::string compacted = freshHeader();
            for (const ScannedResultRecord &record : scan.records) {
                putU32(compacted, static_cast<uint32_t>(
                                      record.payload.size()));
                putU64(compacted, fnv1a64(record.payload.data(),
                                          record.payload.size()));
                compacted += record.payload;
            }
            replaceTextFileAtomic(compacted, path_);
        }
    }

    out_.open(path_, std::ios::binary | std::ios::app);
    fatalUnless(out_.good(),
                "cannot open result cache '" + path_ +
                    "' for appending");
}

std::optional<RunResult>
ResultStore::lookup(const Digest128 &key)
{
    QCCD_FAULT_POINT("cache.lookup");
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
}

void
ResultStore::insert(const Digest128 &key, const RunResult &result)
{
    QCCD_FAULT_POINT("cache.append");
    if (index_.find(key) != index_.end())
        return; // replays (resume re-hits) must not grow the file
    const std::string payload = encodeRecordPayload(key, result);
    std::string frame;
    frame.reserve(kFrameOverhead + payload.size());
    putU32(frame, static_cast<uint32_t>(payload.size()));
    putU64(frame, fnv1a64(payload.data(), payload.size()));
    frame += payload;
    out_.write(frame.data(),
               static_cast<std::streamsize>(frame.size()));
    QCCD_FAULT_POINT("cache.commit");
    out_.flush();
    fatalUnless(out_.good(),
                "cannot append to result cache '" + path_ + "'");
    index_.emplace(key, result);
    ++stats_.inserts;
}

Digest128
ResultStore::keyFor(const DesignPoint &design,
                    const RunOptions &options,
                    const Digest128 &circuit_digest)
{
    StableHash hash;
    hash.u32(kSchemaVersion);

    hash.str(design.topologySpec);
    const std::string topo_prefix = "topo:";
    if (design.topologySpec.rfind(topo_prefix, 0) == 0) {
        // A device file's *content* decides the result; the same path
        // with edited bytes must miss.
        const std::string file =
            design.topologySpec.substr(topo_prefix.size());
        std::string bytes;
        fatalUnless(readFileBytes(file, &bytes),
                    "cannot read topology file '" + file +
                        "' for the cache key");
        hash.str(bytes);
    }
    hash.i64(design.trapCapacity);

    const HardwareParams &hw = design.hw;
    hash.i64(static_cast<int64_t>(hw.gateImpl));
    hash.i64(static_cast<int64_t>(hw.reorder));
    hash.f64(hw.oneQubitUs);
    hash.f64(hw.measureUs);
    hash.f64(hw.twoQubitFloorUs);
    hash.f64(hw.shuttle.movePerSegment);
    hash.f64(hw.shuttle.split);
    hash.f64(hw.shuttle.merge);
    hash.f64(hw.shuttle.yJunction);
    hash.f64(hw.shuttle.xJunction);
    hash.f64(hw.shuttle.ionSwapRotation);
    hash.f64(hw.heatingK1);
    hash.f64(hw.heatingK2);
    hash.f64(hw.gammaPerS);
    hash.f64(hw.kappa);
    hash.f64(hw.oneQubitError);
    hash.f64(hw.measureError);
    hash.i64(hw.bufferSlots);
    hash.f64(hw.recoolFactor);

    // Result-affecting options only: timeouts and trace collection
    // cannot change the metrics of a point that completes.
    hash.i64(static_cast<int64_t>(options.mappingPolicy));
    hash.i64(options.decomposeRuntime ? 1 : 0);

    hash.u64(circuit_digest.hi);
    hash.u64(circuit_digest.lo);
    return hash.digest();
}

Digest128
ResultStore::circuitDigest(const Circuit &circuit)
{
    // Content only — the name is a label, not an input to the result.
    StableHash hash;
    hash.i64(circuit.numQubits());
    for (const Gate &gate : circuit.gates()) {
        hash.i64(static_cast<int64_t>(gate.op));
        hash.i64(gate.q0);
        hash.i64(gate.q1);
        hash.f64(gate.param);
    }
    return hash.digest();
}

std::string
ResultStore::encodeRecordPayload(const Digest128 &key,
                                 const RunResult &result)
{
    std::string out;
    out.reserve(kPayloadSize);
    putU64(out, key.hi);
    putU64(out, key.lo);

    const SimResult &sim = result.sim;
    putF64(out, sim.makespan);
    putF64(out, sim.logFidelity);
    putI64(out, sim.zeroFidelityOps);
    putI64(out, sim.counts.algorithmMs);
    putI64(out, sim.counts.reorderMs);
    putI64(out, sim.counts.oneQubit);
    putI64(out, sim.counts.measurements);
    putI64(out, sim.counts.splits);
    putI64(out, sim.counts.merges);
    putI64(out, sim.counts.moves);
    putI64(out, sim.counts.segmentsMoved);
    putI64(out, sim.counts.junctionCrossings);
    putI64(out, sim.counts.rotations);
    putI64(out, sim.counts.transits);
    putI64(out, sim.counts.shuttles);
    putI64(out, sim.counts.evictions);
    putI64(out, sim.counts.trapPassThroughs);
    putF64(out, sim.maxChainEnergy);
    putF64(out, sim.sumBackgroundError);
    putF64(out, sim.sumMotionalError);
    putF64(out, sim.computeBusy);
    putF64(out, sim.commBusy);
    putU32(out, static_cast<uint32_t>(sim.effectiveBuffer));
    putF64(out, result.computeOnlyTime);

    panicUnless(out.size() == kPayloadSize,
                "result record payload size drifted from the schema");
    return out;
}

bool
ResultStore::decodeRecordPayload(const std::string &payload,
                                 Digest128 *key, RunResult *result)
{
    if (payload.size() != kPayloadSize)
        return false;
    ByteReader reader(payload);
    key->hi = reader.u64();
    key->lo = reader.u64();

    SimResult &sim = result->sim;
    sim.makespan = reader.f64();
    sim.logFidelity = reader.f64();
    sim.zeroFidelityOps = reader.i64();
    sim.counts.algorithmMs = reader.i64();
    sim.counts.reorderMs = reader.i64();
    sim.counts.oneQubit = reader.i64();
    sim.counts.measurements = reader.i64();
    sim.counts.splits = reader.i64();
    sim.counts.merges = reader.i64();
    sim.counts.moves = reader.i64();
    sim.counts.segmentsMoved = reader.i64();
    sim.counts.junctionCrossings = reader.i64();
    sim.counts.rotations = reader.i64();
    sim.counts.transits = reader.i64();
    sim.counts.shuttles = reader.i64();
    sim.counts.evictions = reader.i64();
    sim.counts.trapPassThroughs = reader.i64();
    sim.maxChainEnergy = reader.f64();
    sim.sumBackgroundError = reader.f64();
    sim.sumMotionalError = reader.f64();
    sim.computeBusy = reader.f64();
    sim.commBusy = reader.f64();
    sim.effectiveBuffer = reader.i32();
    result->computeOnlyTime = reader.f64();
    return reader.done();
}

} // namespace qccd
