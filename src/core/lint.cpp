#include "core/lint.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "arch/builders.hpp"
#include "arch/topo_file.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/qasm/parser.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "compiler/mapping.hpp"
#include "core/design_point.hpp"
#include "core/export.hpp"
#include "core/result_store.hpp"
#include "core/sweep_spec.hpp"
#include "models/gate_time.hpp"
#include "models/params.hpp"

namespace qccd
{

namespace
{

void
addDiag(LintReport &report, LintSeverity severity, std::string code,
        std::string origin, int line, int column, std::string message)
{
    LintDiagnostic diag;
    diag.severity = severity;
    diag.code = std::move(code);
    diag.origin = std::move(origin);
    diag.line = line;
    diag.column = column;
    diag.message = std::move(message);
    report.diagnostics.push_back(std::move(diag));
}

void
addAt(LintReport &report, LintSeverity severity, const char *code,
      const std::string &origin, const JsonValue &value,
      const std::string &message)
{
    addDiag(report, severity, code, origin, value.line, value.column,
            message);
}

/**
 * Convert a positioned ConfigError ("origin:LINE:COL: msg" when it was
 * raised by the JSON/topo machinery for @p origin) into a diagnostic,
 * recovering the position when present.
 */
void
addFromConfigError(LintReport &report, const char *code,
                   const std::string &origin, const std::string &what)
{
    int line = 0;
    int column = 0;
    std::string message = what;
    const std::string prefix = origin + ":";
    if (what.rfind(prefix, 0) == 0) {
        const char *first = what.data() + prefix.size();
        const char *last = what.data() + what.size();
        const auto [colon, lec] = std::from_chars(first, last, line);
        if (lec == std::errc() && colon < last && *colon == ':') {
            const auto [end, cec] =
                std::from_chars(colon + 1, last, column);
            if (cec == std::errc() && end + 2 <= last && end[0] == ':' &&
                end[1] == ' ') {
                message.assign(end + 2, last);
            } else {
                line = 0;
                column = 0;
                // "origin: msg" (no position): strip just the path.
                if (what.size() > prefix.size() + 1 &&
                    what[prefix.size()] == ' ')
                    message = what.substr(prefix.size() + 1);
            }
        } else {
            line = 0;
            column = 0;
            if (what.size() > prefix.size() + 1 &&
                what[prefix.size()] == ' ')
                message = what.substr(prefix.size() + 1);
        }
    }
    addDiag(report, LintSeverity::Error, code, origin, line, column,
            message);
}

std::string
resolveRelative(const std::string &path, const std::string &base_dir)
{
    if (path.empty() || path[0] == '/' || base_dir.empty())
        return path;
    return base_dir + "/" + path;
}

bool
isRegularFile(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::is_regular_file(path, ec) && !ec;
}

/** Count of comma-separated fields in @p header. */
size_t
fieldCount(const std::string &line)
{
    return static_cast<size_t>(
               std::count(line.begin(), line.end(), ',')) +
           1;
}

/**
 * The static sweep-spec walker: reports every schema finding with its
 * document position instead of stopping at the first, then runs the
 * fit analysis over the grid's app x device cross-product.
 */
class SweepLinter
{
  public:
    SweepLinter(const std::string &origin, const std::string &base_dir,
                LintReport &report)
        : origin_(origin), baseDir_(base_dir), report_(report)
    {
    }

    void walk(const JsonValue &root, SweepLintSummary *summary)
    {
        if (root.kind != JsonValue::Kind::Object) {
            error("bad-kind", root,
                  "spec document must be an object, got " +
                      jsonKindName(root.kind));
            return;
        }
        const JsonValue *sweeps = nullptr;
        for (const auto &[key, value] : root.members) {
            if (key == "name") {
                checkName(value, summary);
            } else if (key == "description") {
                expectKind(value, JsonValue::Kind::String,
                           "\"description\"");
            } else if (key == "search") {
                walkSearch(value);
            } else if (key == "sweeps") {
                if (expectKind(value, JsonValue::Kind::Array,
                               "\"sweeps\""))
                    sweeps = &value;
            } else {
                error("unknown-key", value,
                      "unknown spec key \"" + key +
                          "\" (known: name, description, search, "
                          "sweeps)");
            }
        }
        if (root.find("name") == nullptr)
            error("missing-name", root, "spec is missing \"name\"");
        if (sweeps == nullptr || sweeps->items.empty()) {
            if (root.find("sweeps") == nullptr || sweeps != nullptr)
                error("missing-sweeps", root,
                      "spec needs a non-empty \"sweeps\" array");
            return;
        }
        for (const JsonValue &grid : sweeps->items)
            walkGrid(grid);
    }

  private:
    // -- diagnostics --------------------------------------------------
    void error(const char *code, const JsonValue &value,
               const std::string &msg)
    {
        addAt(report_, LintSeverity::Error, code, origin_, value, msg);
    }

    void warning(const char *code, const JsonValue &value,
                 const std::string &msg)
    {
        addAt(report_, LintSeverity::Warning, code, origin_, value, msg);
    }

    bool expectKind(const JsonValue &value, JsonValue::Kind kind,
                    const std::string &what)
    {
        if (value.kind == kind)
            return true;
        error("bad-kind", value,
              what + " must be a " + jsonKindName(kind) + ", got " +
                  jsonKindName(value.kind));
        return false;
    }

    std::optional<int> intOf(const JsonValue &value,
                             const std::string &what)
    {
        if (!expectKind(value, JsonValue::Kind::Number, what))
            return std::nullopt;
        const int integral = static_cast<int>(value.number);
        if (static_cast<double>(integral) != value.number) {
            error("bad-kind", value, what + " must be an integer");
            return std::nullopt;
        }
        return integral;
    }

    void checkName(const JsonValue &value, SweepLintSummary *summary)
    {
        if (!expectKind(value, JsonValue::Kind::String, "\"name\""))
            return;
        if (summary != nullptr)
            summary->name = value.text;
        if (value.text.empty()) {
            error("bad-name", value, "\"name\" must not be empty");
            return;
        }
        for (const char c : value.text) {
            const bool ok =
                std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                c == '_' || c == '-' || c == '.';
            if (!ok) {
                error("bad-name", value,
                      "\"name\" may only contain letters, digits, "
                      "'_', '-' and '.'");
                return;
            }
        }
    }

    /** The "search" options block: same schema the parser enforces
     *  (sweep_spec.cpp parseSearch), but error-accumulating so one
     *  pass reports every defect with its position. */
    void walkSearch(const JsonValue &value)
    {
        if (!expectKind(value, JsonValue::Kind::Object, "\"search\""))
            return;
        for (const auto &[key, v] : value.members) {
            if (key == "budget") {
                const std::optional<int> budget =
                    intOf(v, "\"budget\"");
                if (budget && *budget < 1)
                    error("bad-search", v,
                          "\"budget\" must be at least 1");
            } else if (key == "eta") {
                const std::optional<int> eta = intOf(v, "\"eta\"");
                if (eta && *eta < 2)
                    error("bad-search", v,
                          "\"eta\" must be at least 2");
            } else if (key == "seed") {
                if (!expectKind(v, JsonValue::Kind::Number,
                                "\"seed\""))
                    continue;
                const auto seed = static_cast<uint64_t>(v.number);
                if (static_cast<double>(seed) != v.number ||
                    v.number < 0)
                    error("bad-search", v,
                          "\"seed\" must be a non-negative integer");
            } else {
                error("unknown-key", v,
                      "unknown search key \"" + key +
                          "\" (known: budget, eta, seed)");
            }
        }
    }

    // -- grid walk ----------------------------------------------------

    /** One value of the fit-relevant axes, with its position. */
    struct Sited
    {
        std::string text;
        int number = 0;
        const JsonValue *value = nullptr;
    };

    struct GridFacts
    {
        std::vector<Sited> apps;       // text = application label
        std::vector<Sited> topologies; // text = resolved topology spec
        std::vector<Sited> capacities; // number = trap capacity
        std::vector<int> buffers;      // swept buffer slot values
    };

    void walkGrid(const JsonValue &grid)
    {
        if (grid.kind != JsonValue::Kind::Object) {
            error("bad-kind", grid,
                  "sweep grid must be an object, got " +
                      jsonKindName(grid.kind));
            return;
        }
        GridFacts facts;
        size_t points = 1;
        bool countable = true;
        for (const auto &[key, value] : grid.members) {
            if (key == "options") {
                checkOptions(value);
                continue;
            }
            const auto &axes = sweepAxisKeys();
            if (std::find(axes.begin(), axes.end(), key) == axes.end()) {
                std::string list;
                for (const std::string &axis_key : axes)
                    list += axis_key + ", ";
                error("unknown-key", value,
                      "unknown grid key \"" + key + "\" (known: " +
                          list + "options)");
                continue;
            }
            // "params" takes an object per value, so a bare object is
            // a scalar there, not an axis.
            if (value.kind == JsonValue::Kind::Array) {
                if (value.items.empty()) {
                    error("empty-axis", value,
                          "axis \"" + key +
                              "\" is unreachable: an empty array "
                              "makes the whole cross-product empty");
                    countable = false;
                    continue;
                }
                checkDuplicates(key, value);
                for (const JsonValue &item : value.items)
                    checkAxisValue(key, item, facts);
                if (points > kMaxSweepPoints / value.items.size()) {
                    error("grid-too-large", value,
                          "grid expands past the " +
                              std::to_string(kMaxSweepPoints) +
                              "-point cap");
                    countable = false;
                } else {
                    points *= value.items.size();
                }
            } else {
                checkAxisValue(key, value, facts);
            }
        }
        if (grid.find("apps") == nullptr)
            error("missing-apps", grid,
                  "sweep grid is missing \"apps\"");
        static_cast<void>(countable);
        checkFit(facts);
    }

    void checkDuplicates(const std::string &key, const JsonValue &axis)
    {
        for (size_t i = 0; i < axis.items.size(); ++i) {
            for (size_t j = i + 1; j < axis.items.size(); ++j) {
                const JsonValue &a = axis.items[i];
                const JsonValue &b = axis.items[j];
                if (a.kind != b.kind ||
                    a.kind == JsonValue::Kind::Object)
                    continue;
                const bool same =
                    a.kind == JsonValue::Kind::Number
                        ? a.number == b.number
                        : (a.kind == JsonValue::Kind::String
                               ? a.text == b.text
                               : a.boolean == b.boolean);
                if (same) {
                    warning("duplicate-axis-value", b,
                            "axis \"" + key +
                                "\" repeats a value; the duplicate "
                                "rows carry no information");
                    break;
                }
            }
        }
    }

    void checkAxisValue(const std::string &key, const JsonValue &value,
                        GridFacts &facts)
    {
        if (key == "apps") {
            checkApp(value, facts);
        } else if (key == "topology") {
            checkTopology(value, facts);
        } else if (key == "capacity") {
            if (const auto capacity = intOf(value, "\"capacity\"")) {
                if (*capacity < 2)
                    error("bad-capacity", value,
                          "trap capacity must be at least 2, got " +
                              std::to_string(*capacity));
                else
                    facts.capacities.push_back(
                        {"", *capacity, &value});
            }
        } else if (key == "gate") {
            checkLookup(value, "\"gate\"", "unknown-gate", [&] {
                gateImplFromName(value.text);
            });
        } else if (key == "reorder") {
            checkLookup(value, "\"reorder\"", "unknown-reorder", [&] {
                reorderMethodFromName(value.text);
            });
        } else if (key == "policy") {
            checkLookup(value, "\"policy\"", "unknown-policy", [&] {
                mappingPolicyFromName(value.text);
            });
        } else if (key == "buffer") {
            if (const auto buffer = intOf(value, "\"buffer\"")) {
                if (*buffer < 0)
                    error("bad-buffer", value,
                          "buffer slots must be non-negative, got " +
                              std::to_string(*buffer));
                else
                    facts.buffers.push_back(*buffer);
            }
        } else if (key == "params") {
            checkParams(value);
        }
    }

    template <typename Fn>
    void checkLookup(const JsonValue &value, const std::string &what,
                     const char *code, Fn &&lookup)
    {
        if (!expectKind(value, JsonValue::Kind::String, what))
            return;
        try {
            lookup();
        } catch (const ConfigError &err) {
            error(code, value, err.what());
        }
    }

    void checkApp(const JsonValue &value, GridFacts &facts)
    {
        if (!expectKind(value, JsonValue::Kind::String, "application"))
            return;
        const std::string qasm_prefix = "qasm:";
        if (value.text.rfind(qasm_prefix, 0) == 0) {
            const std::string rel =
                value.text.substr(qasm_prefix.size());
            if (rel.empty()) {
                error("missing-file", value,
                      "empty path after \"qasm:\"");
                return;
            }
            const std::string path = resolveRelative(rel, baseDir_);
            if (!isRegularFile(path)) {
                error("missing-file", value,
                      "\"qasm:\" path does not resolve: '" + path +
                          "'");
                return;
            }
            facts.apps.push_back({value.text, 0, &value});
            return;
        }
        bool known = false;
        for (const BenchmarkSpec &bench : benchmarkList())
            known = known || bench.name == value.text;
        if (!known) {
            error("unknown-app", value,
                  "unknown application '" + value.text +
                      "' (see qccd_explore --list, or use "
                      "\"qasm:FILE\")");
            return;
        }
        facts.apps.push_back({value.text, 0, &value});
    }

    void checkTopology(const JsonValue &value, GridFacts &facts)
    {
        if (!expectKind(value, JsonValue::Kind::String, "\"topology\""))
            return;
        const std::string topo_prefix = "topo:";
        if (value.text.rfind(topo_prefix, 0) == 0) {
            const std::string rel =
                value.text.substr(topo_prefix.size());
            if (rel.empty()) {
                error("missing-file", value,
                      "empty path after \"topo:\"");
                return;
            }
            const std::string path = resolveRelative(rel, baseDir_);
            if (!isRegularFile(path)) {
                error("missing-file", value,
                      "\"topo:\" path does not resolve: '" + path +
                          "'");
                return;
            }
            facts.topologies.push_back(
                {topo_prefix + path, 0, &value});
            return;
        }
        try {
            validateTopologySpec(value.text);
        } catch (const ConfigError &err) {
            error("bad-topology", value, err.what());
            return;
        }
        facts.topologies.push_back({value.text, 0, &value});
    }

    void checkParams(const JsonValue &value)
    {
        if (value.kind != JsonValue::Kind::Object) {
            error("bad-kind", value,
                  "\"params\" must be an object (or an array of "
                  "objects), got " + jsonKindName(value.kind));
            return;
        }
        const std::vector<std::string> known = hardwareOverrideKeys();
        for (const auto &[param, pv] : value.members) {
            if (std::find(known.begin(), known.end(), param) ==
                known.end()) {
                error("unknown-param", pv,
                      "unknown model parameter \"" + param +
                          "\" (see hardwareOverrideKeys)");
                continue;
            }
            expectKind(pv, JsonValue::Kind::Number,
                       "parameter \"" + param + "\"");
        }
    }

    void checkOptions(const JsonValue &value)
    {
        if (!expectKind(value, JsonValue::Kind::Object, "\"options\""))
            return;
        for (const auto &[key, v] : value.members) {
            if (key == "decompose_runtime") {
                expectKind(v, JsonValue::Kind::Bool,
                           "\"decompose_runtime\"");
            } else if (key == "point_timeout_ms") {
                if (expectKind(v, JsonValue::Kind::Number,
                               "\"point_timeout_ms\"") &&
                    v.number < 1)
                    error("bad-option", v,
                          "\"point_timeout_ms\" must be at least 1");
            } else if (key == "cache") {
                if (expectKind(v, JsonValue::Kind::String,
                               "\"cache\"") &&
                    v.text.empty())
                    error("bad-option", v,
                          "\"cache\" must not be empty");
            } else {
                error("unknown-option", v,
                      "unknown option \"" + key +
                          "\" (known: cache, decompose_runtime, "
                          "point_timeout_ms)");
            }
        }
    }

    // -- capacity/trap fit analysis ----------------------------------

    /** Qubit count of @p app ("qasm:" or builtin); nullopt after a
     *  diagnostic (bad QASM) or for apps already reported unknown. */
    std::optional<int> appQubits(const Sited &app)
    {
        const auto cached = qubitCache_.find(app.text);
        if (cached != qubitCache_.end())
            return cached->second;
        std::optional<int> qubits;
        const std::string qasm_prefix = "qasm:";
        try {
            if (app.text.rfind(qasm_prefix, 0) == 0) {
                const std::string path = resolveRelative(
                    app.text.substr(qasm_prefix.size()), baseDir_);
                qubits = qasm::parseFile(path).numQubits();
            } else {
                qubits = makeBenchmark(app.text).numQubits();
            }
        } catch (const QccdError &err) {
            error("bad-qasm", *app.value, err.what());
        }
        qubitCache_.emplace(app.text, qubits);
        return qubits;
    }

    /** Total capacity and trap count of a device, built statically. */
    struct DeviceExtent
    {
        int totalCapacity = 0;
        int traps = 0;
    };

    std::optional<DeviceExtent> deviceExtent(const Sited &topo,
                                             int capacity)
    {
        const auto key = std::make_pair(topo.text, capacity);
        const auto cached = extentCache_.find(key);
        if (cached != extentCache_.end())
            return cached->second;
        std::optional<DeviceExtent> extent;
        const std::string topo_prefix = "topo:";
        try {
            const Topology built =
                topo.text.rfind(topo_prefix, 0) == 0
                    ? loadTopoFile(
                          topo.text.substr(topo_prefix.size()),
                          capacity)
                    : makeFromSpec(topo.text, capacity);
            extent = DeviceExtent{built.totalCapacity(),
                                  built.trapCount()};
        } catch (const QccdError &err) {
            // Reached only for devices whose syntax checked out but
            // whose construction fails (e.g. a broken `.topo` file).
            if (reportedDevices_.insert(topo.text).second)
                error("bad-topology", *topo.value, err.what());
        }
        extentCache_.emplace(key, extent);
        return extent;
    }

    void checkFit(GridFacts &facts)
    {
        if (facts.apps.empty() || facts.topologies.empty())
            return;
        if (facts.capacities.empty()) {
            // DesignPoint's default capacity applies grid-wide.
            facts.capacities.push_back(
                {"", DesignPoint{}.trapCapacity,
                 facts.topologies.front().value});
        }
        const int buffer =
            facts.buffers.empty()
                ? HardwareParams{}.bufferSlots
                : *std::min_element(facts.buffers.begin(),
                                    facts.buffers.end());
        for (const Sited &topo : facts.topologies) {
            for (const Sited &capacity : facts.capacities) {
                const auto extent =
                    deviceExtent(topo, capacity.number);
                if (!extent)
                    continue;
                for (const Sited &app : facts.apps) {
                    const auto qubits = appQubits(app);
                    if (!qubits)
                        continue;
                    const std::string device =
                        "'" + topo.text + "' at capacity " +
                        std::to_string(capacity.number) +
                        " (total capacity " +
                        std::to_string(extent->totalCapacity) + ")";
                    if (*qubits > extent->totalCapacity) {
                        error("app-does-not-fit", *app.value,
                              "application '" + app.text + "' (" +
                                  std::to_string(*qubits) +
                                  " qubits) cannot fit device " +
                                  device);
                    } else if (*qubits > extent->totalCapacity -
                                             buffer * extent->traps) {
                        warning("tight-fit", *app.value,
                                "application '" + app.text + "' (" +
                                    std::to_string(*qubits) +
                                    " qubits) only fits device " +
                                    device + " by shrinking the " +
                                    std::to_string(buffer) +
                                    " buffer slots per trap");
                    }
                }
            }
        }
    }

    const std::string &origin_;
    const std::string &baseDir_;
    LintReport &report_;

    std::map<std::string, std::optional<int>> qubitCache_;
    std::map<std::pair<std::string, int>, std::optional<DeviceExtent>>
        extentCache_;
    std::set<std::string> reportedDevices_;
};

} // namespace

std::string
LintDiagnostic::toString() const
{
    std::ostringstream out;
    out << origin;
    if (line > 0) {
        out << ":" << line;
        if (column > 0)
            out << ":" << column;
    }
    out << ": "
        << (severity == LintSeverity::Error ? "error" : "warning")
        << ": " << message << " [" << code << "]";
    return out.str();
}

size_t
LintReport::errorCount() const
{
    return static_cast<size_t>(std::count_if(
        diagnostics.begin(), diagnostics.end(),
        [](const LintDiagnostic &d) {
            return d.severity == LintSeverity::Error;
        }));
}

size_t
LintReport::warningCount() const
{
    return diagnostics.size() - errorCount();
}

std::string
LintReport::toString() const
{
    std::string out;
    for (const LintDiagnostic &diag : diagnostics) {
        out += diag.toString();
        out += '\n';
    }
    return out;
}

void
lintSweepText(const std::string &text, const std::string &origin,
              const std::string &base_dir, LintReport &report,
              SweepLintSummary *summary)
{
    ++report.filesChecked;
    const size_t before = report.errorCount();
    try {
        JsonParser parser(text, origin);
        const JsonValue root = parser.parseDocument();
        SweepLinter(origin, base_dir, report).walk(root, summary);
    } catch (const ConfigError &err) {
        addFromConfigError(report, "parse", origin, err.what());
    } catch (const std::exception &err) {
        addDiag(report, LintSeverity::Error, "internal", origin, 0, 0,
                std::string("linter failure: ") + err.what());
    }
    if (summary == nullptr || report.errorCount() != before)
        return;
    // The walk was clean, so the real parser must accept the spec; its
    // expansion gives the point count the covering golden must match.
    // Any residual rejection is itself a finding (the linter's schema
    // walk missed something the parser enforces).
    try {
        summary->points =
            parseSweepSpec(text, origin, base_dir).points.size();
        summary->expanded = true;
    } catch (const ConfigError &err) {
        addFromConfigError(report, "parse", origin, err.what());
    } catch (const std::exception &err) {
        addDiag(report, LintSeverity::Error, "internal", origin, 0, 0,
                std::string("linter failure: ") + err.what());
    }
}

void
lintTopoText(const std::string &text, const std::string &origin,
             LintReport &report)
{
    ++report.filesChecked;
    try {
        static_cast<void>(parseTopo(text, origin,
                                    DesignPoint{}.trapCapacity));
    } catch (const ConfigError &err) {
        const size_t at = report.diagnostics.size();
        addFromConfigError(report, "topo-parse", origin, err.what());
        // Graph-invariant errors (connectivity, dangling junctions)
        // carry no line position; keep them distinguishable.
        if (report.diagnostics[at].line == 0)
            report.diagnostics[at].code = "topo-graph";
    } catch (const std::exception &err) {
        addDiag(report, LintSeverity::Error, "internal", origin, 0, 0,
                std::string("linter failure: ") + err.what());
    }
}

void
lintGoldenText(const std::string &text, const std::string &origin,
               LintReport &report, size_t *rows_out)
{
    ++report.filesChecked;
    if (rows_out != nullptr)
        *rows_out = 0;

    std::istringstream lines(text);
    std::string line;
    int line_no = 0;
    size_t rows = 0;
    const std::string header = sweepCsvHeader();
    const size_t columns = fieldCount(header);
    bool have_header = false;
    while (std::getline(lines, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (!have_header) {
            have_header = true;
            if (line != header)
                addDiag(report, LintSeverity::Error, "golden-header",
                        origin, line_no, 1,
                        "header drifted from sweepCsvHeader(): got \"" +
                            line + "\"");
            continue;
        }
        ++rows;
        if (fieldCount(line) != columns) {
            addDiag(report, LintSeverity::Error, "golden-columns",
                    origin, line_no, 1,
                    "row has " + std::to_string(fieldCount(line)) +
                        " fields, expected " + std::to_string(columns));
            continue;
        }
        // Numeric columns: capacity (index 2, integer) and every
        // metric from time_s onward (indices 5..16, doubles).
        size_t field = 0;
        size_t start = 0;
        while (start <= line.size()) {
            size_t end = line.find(',', start);
            if (end == std::string::npos)
                end = line.size();
            const bool numeric =
                field == 2 || (field >= 5 && field < columns);
            if (numeric) {
                const char *first = line.data() + start;
                const char *last = line.data() + end;
                bool ok = first != last;
                if (ok && field == 2) {
                    int v = 0;
                    const auto [p, ec] =
                        std::from_chars(first, last, v);
                    ok = ec == std::errc() && p == last;
                } else if (ok) {
                    double v = 0;
                    const auto [p, ec] =
                        std::from_chars(first, last, v);
                    ok = ec == std::errc() && p == last;
                }
                if (!ok)
                    addDiag(report, LintSeverity::Error,
                            "golden-number", origin, line_no,
                            static_cast<int>(start) + 1,
                            "field " + std::to_string(field + 1) +
                                " is not numeric: '" +
                                line.substr(start, end - start) + "'");
            }
            ++field;
            start = end + 1;
        }
    }
    if (!have_header) {
        addDiag(report, LintSeverity::Error, "golden-empty", origin, 0,
                0, "file has no header line");
    } else if (rows == 0) {
        addDiag(report, LintSeverity::Error, "golden-empty", origin, 0,
                0, "file has a header but no data rows");
    }
    if (!text.empty() && text.back() != '\n')
        addDiag(report, LintSeverity::Warning, "golden-truncated",
                origin, line_no, 1,
                "file does not end with a newline (torn final row?)");
    if (rows_out != nullptr)
        *rows_out = rows;
}

void
lintCacheBytes(const std::string &bytes, const std::string &origin,
               LintReport &report)
{
    ++report.filesChecked;
    try {
        const ResultStoreScan scan = scanResultStore(bytes);
        if (!scan.magicOk && !scan.headerTorn) {
            addDiag(report, LintSeverity::Error, "cache-magic", origin,
                    0, 0, "not a qccd result cache (bad magic)");
            return;
        }
        if (scan.headerTorn) {
            addDiag(report, LintSeverity::Warning, "cache-torn", origin,
                    0, 0,
                    "truncated header (" +
                        std::to_string(bytes.size()) + " of " +
                        std::to_string(ResultStore::kHeaderSize) +
                        " bytes; the store heals this on open)");
            return;
        }
        if (!scan.versionOk) {
            addDiag(report, LintSeverity::Error, "cache-version",
                    origin, 0, 0,
                    "schema version " + std::to_string(scan.version) +
                        "; this build reads version " +
                        std::to_string(ResultStore::kSchemaVersion) +
                        " (the store refuses this file)");
            return;
        }
        for (const ResultStoreDefect &defect : scan.defects)
            addDiag(report, LintSeverity::Error,
                    defect.reason == "frame" ? "cache-frame"
                                             : "cache-checksum",
                    origin, 0, 0,
                    "corrupt record at offset " +
                        std::to_string(defect.offset) + " (" +
                        std::to_string(defect.length) + " bytes, " +
                        defect.reason +
                        "; the store quarantines this on open)");
        if (scan.truncatedTail)
            addDiag(report, LintSeverity::Warning, "cache-torn", origin,
                    0, 0,
                    "incomplete final record at offset " +
                        std::to_string(scan.tornTailOffset) +
                        " (torn append; the store heals this on open)");
        // A structurally valid payload can still decode to nothing if
        // the schema drifts; surface that rather than claim clean.
        for (const ScannedResultRecord &record : scan.records) {
            Digest128 key;
            RunResult result;
            if (!ResultStore::decodeRecordPayload(record.payload, &key,
                                                  &result))
                addDiag(report, LintSeverity::Error, "cache-decode",
                        origin, 0, 0,
                        "record at offset " +
                            std::to_string(record.offset) +
                            " does not decode as a version-" +
                            std::to_string(ResultStore::kSchemaVersion) +
                            " payload");
        }
    } catch (const std::exception &err) {
        addDiag(report, LintSeverity::Error, "internal", origin, 0, 0,
                std::string("linter failure: ") + err.what());
    }
}

namespace
{

/** Read a whole file; diagnostic (not exception) on failure. */
std::optional<std::string>
slurp(const std::string &path, LintReport &report)
{
    std::ifstream in(path);
    if (!in.good()) {
        addDiag(report, LintSeverity::Error, "unreadable", path, 0, 0,
                "cannot read file");
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        addDiag(report, LintSeverity::Error, "unreadable", path, 0, 0,
                "error while reading file");
        return std::nullopt;
    }
    return text.str();
}

std::string
dirnameOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::string
stemOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const size_t start = slash == std::string::npos ? 0 : slash + 1;
    size_t end = path.find_last_of('.');
    if (end == std::string::npos || end <= start)
        end = path.size();
    return path.substr(start, end - start);
}

} // namespace

LintReport
lintArtifacts(const std::vector<std::string> &paths)
{
    LintReport report;
    std::vector<std::string> sweeps;
    std::vector<std::string> topos;
    std::vector<std::string> csvs;
    std::vector<std::string> caches;

    const auto classify = [&](const std::string &path) {
        if (path.size() >= 6 &&
            path.compare(path.size() - 6, 6, ".sweep") == 0)
            sweeps.push_back(path);
        else if (path.size() >= 5 &&
                 path.compare(path.size() - 5, 5, ".topo") == 0)
            topos.push_back(path);
        else if (path.size() >= 4 &&
                 path.compare(path.size() - 4, 4, ".csv") == 0)
            csvs.push_back(path);
        else if (path.size() >= 7 &&
                 path.compare(path.size() - 7, 7, ".qcache") == 0)
            caches.push_back(path);
        else
            addDiag(report, LintSeverity::Warning, "skipped", path, 0,
                    0,
                    "not a lintable artifact (expected .sweep, .topo, "
                    ".csv or .qcache)");
    };

    for (const std::string &arg : paths) {
        std::error_code ec;
        const auto status = std::filesystem::status(arg, ec);
        if (ec || !std::filesystem::exists(status)) {
            addDiag(report, LintSeverity::Error, "missing-file", arg, 0,
                    0, "path does not exist");
            continue;
        }
        if (std::filesystem::is_directory(status)) {
            std::vector<std::string> found;
            for (const auto &entry :
                 std::filesystem::recursive_directory_iterator(
                     arg, std::filesystem::directory_options::
                              skip_permission_denied, ec)) {
                if (!entry.is_regular_file(ec))
                    continue;
                const std::string path = entry.path().string();
                if ((path.size() >= 6 &&
                     path.compare(path.size() - 6, 6, ".sweep") == 0) ||
                    (path.size() >= 5 &&
                     path.compare(path.size() - 5, 5, ".topo") == 0) ||
                    (path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0) ||
                    (path.size() >= 7 &&
                     path.compare(path.size() - 7, 7, ".qcache") == 0))
                    found.push_back(path);
            }
            // Deterministic order regardless of directory enumeration.
            std::sort(found.begin(), found.end());
            for (const std::string &path : found)
                classify(path);
        } else {
            classify(arg);
        }
    }

    std::vector<SweepLintSummary> summaries;
    for (const std::string &path : sweeps) {
        if (const auto text = slurp(path, report)) {
            SweepLintSummary summary;
            lintSweepText(*text, path, dirnameOf(path), report,
                          &summary);
            summaries.push_back(std::move(summary));
        }
    }
    for (const std::string &path : topos)
        if (const auto text = slurp(path, report))
            lintTopoText(*text, path, report);

    for (const std::string &path : caches)
        if (const auto text = slurp(path, report))
            lintCacheBytes(*text, path, report);

    std::map<std::string, std::pair<std::string, size_t>> goldenRows;
    for (const std::string &path : csvs) {
        if (const auto text = slurp(path, report)) {
            size_t rows = 0;
            lintGoldenText(*text, path, report, &rows);
            // Search-report audits (<name>.search.csv) share the
            // sweep CSV schema and get the full header/row lint, but
            // they cover only the points the search really evaluated
            // — they are not goldens and must not trip the row-count
            // or orphan cross-checks.
            const std::string stem = stemOf(path);
            const bool searchReport =
                stem.size() > 7 &&
                stem.compare(stem.size() - 7, 7, ".search") == 0;
            if (!searchReport)
                goldenRows.emplace(stem, std::make_pair(path, rows));
        }
    }

    // Cross-artifact coverage: only meaningful when the invocation
    // sees both sides (e.g. `qccd_lint examples/ golden/`).
    if (!summaries.empty() && !goldenRows.empty()) {
        std::set<std::string> producedStems;
        for (const SweepLintSummary &summary : summaries) {
            if (!summary.expanded || summary.name.empty())
                continue;
            producedStems.insert(summary.name);
            const auto golden = goldenRows.find(summary.name);
            if (golden == goldenRows.end()) {
                addDiag(report, LintSeverity::Error, "missing-golden",
                        summary.name, 0, 0,
                        "spec \"" + summary.name +
                            "\" has no covering golden CSV");
                continue;
            }
            if (golden->second.second != summary.points)
                addDiag(report, LintSeverity::Error, "golden-rows",
                        golden->second.first, 0, 0,
                        "golden has " +
                            std::to_string(golden->second.second) +
                            " data rows but spec \"" + summary.name +
                            "\" expands to " +
                            std::to_string(summary.points) +
                            " points");
        }
        for (const auto &[stem, golden] : goldenRows)
            if (producedStems.count(stem) == 0)
                addDiag(report, LintSeverity::Warning, "golden-orphan",
                        golden.first, 0, 0,
                        "no linted .sweep spec produces this golden "
                        "(bench-only goldens are fine)");
    }
    return report;
}

} // namespace qccd
