#include "benchgen/benchgen.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qccd
{

Circuit
makeBv(int n, uint64_t seed, bool full_secret)
{
    fatalUnless(n >= 1, "BV needs at least one data qubit");
    Circuit circuit(n + 1, "bv" + std::to_string(n));
    const QubitId ancilla = n;

    // Prepare |-> on the ancilla and |+> on the data register.
    circuit.x(ancilla);
    circuit.h(ancilla);
    for (QubitId q = 0; q < n; ++q)
        circuit.h(q);

    // Oracle: CX from each secret bit's qubit into the ancilla. The
    // paper's 64-gate configuration corresponds to the all-ones secret.
    Rng rng(seed);
    for (QubitId q = 0; q < n; ++q) {
        const bool bit = full_secret || rng.nextBool();
        if (bit)
            circuit.cx(q, ancilla);
    }

    for (QubitId q = 0; q < n; ++q)
        circuit.h(q);
    for (QubitId q = 0; q < n; ++q)
        circuit.measure(q);
    return circuit;
}

} // namespace qccd
