#include "benchgen/benchgen.hpp"

#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qccd
{

Circuit
makeQaoa(int n, int layers, uint64_t seed)
{
    fatalUnless(n >= 2, "QAOA needs at least two qubits");
    fatalUnless(layers >= 1, "QAOA needs at least one layer");
    Circuit circuit(n, "qaoa" + std::to_string(n));
    constexpr double pi = std::numbers::pi;
    Rng rng(seed);

    for (QubitId q = 0; q < n; ++q)
        circuit.h(q);

    // Hardware-efficient ansatz (Moll et al. 2018): entangler layers of
    // nearest-neighbour ZZ interactions on a line, interleaved with RX
    // mixers. ZZ(theta) lowers to CX, RZ, CX.
    for (int layer = 0; layer < layers; ++layer) {
        const double gamma = rng.nextDouble() * pi;
        const double beta = rng.nextDouble() * pi;
        for (QubitId q = 0; q + 1 < n; ++q) {
            circuit.cx(q, q + 1);
            circuit.rz(q + 1, 2 * gamma);
            circuit.cx(q, q + 1);
        }
        for (QubitId q = 0; q < n; ++q)
            circuit.rx(q, 2 * beta);
    }
    circuit.measureAll();
    return circuit;
}

} // namespace qccd
