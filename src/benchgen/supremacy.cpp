#include "benchgen/benchgen.hpp"

#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qccd
{

namespace
{

/**
 * The four nearest-neighbour coupler activation patterns of a
 * supremacy-style grid circuit: horizontal pairs starting at even or odd
 * columns, and vertical pairs starting at even or odd rows.
 */
std::vector<std::pair<QubitId, QubitId>>
patternPairs(int rows, int cols, int pattern)
{
    std::vector<std::pair<QubitId, QubitId>> pairs;
    auto idx = [cols](int r, int c) { return r * cols + c; };
    const bool horizontal = pattern < 2;
    const int offset = pattern % 2;
    if (horizontal) {
        for (int r = 0; r < rows; ++r)
            for (int c = offset; c + 1 < cols; c += 2)
                pairs.emplace_back(idx(r, c), idx(r, c + 1));
    } else {
        for (int r = offset; r + 1 < rows; r += 2)
            for (int c = 0; c < cols; ++c)
                pairs.emplace_back(idx(r, c), idx(r + 1, c));
    }
    return pairs;
}

} // namespace

Circuit
makeSupremacy(int rows, int cols, int target_two_qubit_gates, uint64_t seed)
{
    fatalUnless(rows >= 2 && cols >= 2,
                "supremacy grid needs at least 2x2 qubits");
    fatalUnless(target_two_qubit_gates >= 1,
                "supremacy needs a positive two-qubit gate target");
    const int n = rows * cols;
    Circuit circuit(n, "supremacy" + std::to_string(rows) + "x" +
                    std::to_string(cols));
    constexpr double pi = std::numbers::pi;
    Rng rng(seed);

    for (QubitId q = 0; q < n; ++q)
        circuit.h(q);

    // Alternate through the four coupler patterns; between two-qubit
    // layers every active qubit gets a random sqrt-gate-style rotation,
    // as in the Google supremacy circuits.
    int placed = 0;
    int layer = 0;
    while (placed < target_two_qubit_gates) {
        const auto pairs = patternPairs(rows, cols, layer % 4);
        ++layer;
        for (const auto &[a, b] : pairs) {
            if (placed >= target_two_qubit_gates)
                break;
            const int pick_a = rng.nextInt(0, 2);
            const int pick_b = rng.nextInt(0, 2);
            auto rot = [&](QubitId q, int pick) {
                if (pick == 0)
                    circuit.rx(q, pi / 2);
                else if (pick == 1)
                    circuit.ry(q, pi / 2);
                else
                    circuit.rz(q, pi / 2);
            };
            rot(a, pick_a);
            rot(b, pick_b);
            circuit.cz(a, b);
            ++placed;
        }
    }
    circuit.measureAll();
    return circuit;
}

} // namespace qccd
