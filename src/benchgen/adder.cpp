#include "benchgen/benchgen.hpp"

#include "common/error.hpp"

namespace qccd
{

namespace
{

/** Toffoli via the standard 6-CX / 7-T Clifford+T network. */
void
emitToffoli(Circuit &c, QubitId a, QubitId b, QubitId t)
{
    c.h(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(b);
    c.t(t);
    c.cx(a, b);
    c.h(t);
    c.t(a);
    c.tdg(b);
    c.cx(a, b);
}

/** Cuccaro MAJ block. */
void
emitMaj(Circuit &c, QubitId x, QubitId y, QubitId z)
{
    c.cx(z, y);
    c.cx(z, x);
    emitToffoli(c, x, y, z);
}

/** Cuccaro UMA (2-CNOT variant) block. */
void
emitUma(Circuit &c, QubitId x, QubitId y, QubitId z)
{
    emitToffoli(c, x, y, z);
    c.cx(z, x);
    c.cx(x, y);
}

} // namespace

Circuit
makeAdder(int bits)
{
    fatalUnless(bits >= 1, "adder needs at least one bit");
    // Layout: [c0, a0, b0, a1, b1, ...] so the ripple stays short-range.
    const int n = 2 * bits + 1;
    Circuit circuit(n, "adder" + std::to_string(bits));
    const QubitId carry = 0;
    auto a = [](int i) { return 1 + 2 * i; };
    auto b = [](int i) { return 2 + 2 * i; };

    // Cuccaro ripple-carry adder: MAJ ripple up, UMA ripple down.
    emitMaj(circuit, carry, b(0), a(0));
    for (int i = 1; i < bits; ++i)
        emitMaj(circuit, a(i - 1), b(i), a(i));
    for (int i = bits - 1; i >= 1; --i)
        emitUma(circuit, a(i - 1), b(i), a(i));
    emitUma(circuit, carry, b(0), a(0));

    for (int i = 0; i < bits; ++i)
        circuit.measure(b(i));
    return circuit;
}

} // namespace qccd
