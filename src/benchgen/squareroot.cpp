#include "benchgen/benchgen.hpp"

#include "common/error.hpp"

namespace qccd
{

namespace
{

/** Toffoli via the standard 6-CX network (same as the adder's). */
void
emitToffoli(Circuit &c, QubitId a, QubitId b, QubitId t)
{
    c.h(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(b);
    c.t(t);
    c.cx(a, b);
    c.h(t);
    c.t(a);
    c.tdg(b);
    c.cx(a, b);
}

/**
 * Compute the AND of @p inputs into @p target via a Toffoli ladder over
 * @p scratch (|inputs| - 2 ancillas used), then uncompute the ladder.
 * The ladder couples qubits across the whole register, which is what
 * gives the SquareRoot benchmark its irregular short-and-long-range
 * communication pattern.
 */
void
emitMultiControl(Circuit &c, const std::vector<QubitId> &inputs,
                 const std::vector<QubitId> &scratch, QubitId target)
{
    const int k = static_cast<int>(inputs.size());
    panicUnless(k >= 2, "multi-control needs at least two inputs");
    if (k == 2) {
        emitToffoli(c, inputs[0], inputs[1], target);
        return;
    }
    panicUnless(static_cast<int>(scratch.size()) >= k - 2,
                "not enough scratch ancillas for the Toffoli ladder");

    emitToffoli(c, inputs[0], inputs[1], scratch[0]);
    for (int i = 2; i < k - 1; ++i)
        emitToffoli(c, inputs[i], scratch[i - 2], scratch[i - 1]);
    emitToffoli(c, inputs[k - 1], scratch[k - 3], target);
    for (int i = k - 2; i >= 2; --i)
        emitToffoli(c, inputs[i], scratch[i - 2], scratch[i - 1]);
    emitToffoli(c, inputs[0], inputs[1], scratch[0]);
}

} // namespace

Circuit
makeSquareRoot(int search, int iterations)
{
    fatalUnless(search >= 3, "SquareRoot needs at least 3 search qubits");
    fatalUnless(iterations >= 1, "SquareRoot needs at least 1 iteration");

    // Layout: [search | scratch ancillas | oracle target].
    const int scratch = search - 2;
    const int n = search + scratch + 2;
    Circuit circuit(n, "squareroot" + std::to_string(n));

    std::vector<QubitId> inputs(search);
    for (int i = 0; i < search; ++i)
        inputs[i] = i;
    std::vector<QubitId> anc(scratch);
    for (int i = 0; i < scratch; ++i)
        anc[i] = search + i;
    const QubitId oracle_target = n - 2;
    const QubitId oracle_flag = n - 1;

    // Phase-kickback target |->.
    circuit.x(oracle_flag);
    circuit.h(oracle_flag);
    for (QubitId q : inputs)
        circuit.h(q);

    for (int it = 0; it < iterations; ++it) {
        // Oracle: mark the all-ones string (stand-in for the ScaffCC
        // SquareRoot predicate; the gate pattern, not the marked value,
        // drives communication behaviour).
        emitMultiControl(circuit, inputs, anc, oracle_target);
        circuit.cx(oracle_target, oracle_flag);
        emitMultiControl(circuit, inputs, anc, oracle_target);

        // Diffusion: H X [multi-controlled Z] X H over search qubits.
        for (QubitId q : inputs) {
            circuit.h(q);
            circuit.x(q);
        }
        circuit.h(inputs[search - 1]);
        emitMultiControl(
            circuit,
            std::vector<QubitId>(inputs.begin(), inputs.end() - 1), anc,
            inputs[search - 1]);
        circuit.h(inputs[search - 1]);
        for (QubitId q : inputs) {
            circuit.x(q);
            circuit.h(q);
        }
    }

    for (QubitId q : inputs)
        circuit.measure(q);
    return circuit;
}

} // namespace qccd
