#include "benchgen/benchgen.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qccd
{

std::vector<BenchmarkSpec>
benchmarkList()
{
    return {
        {"supremacy", "Google-style random circuit, 8x8 grid, 560 2q gates"},
        {"qaoa", "QAOA hardware-efficient ansatz, 64 qubits, NN pattern"},
        {"squareroot", "Grover search (ScaffCC SquareRoot proxy), 78 qubits"},
        {"qft", "Quantum Fourier Transform, 64 qubits, all distances"},
        {"adder", "Cuccaro ripple-carry adder, 63 qubits, short range"},
        {"bv", "Bernstein-Vazirani, 64 qubits, shared-ancilla pattern"},
        // Extensions beyond Table II.
        {"ghz", "GHZ ladder, 64 qubits, sequential nearest neighbor"},
        {"vqe", "hardware-efficient VQE ansatz, 64 qubits, mixed range"},
    };
}

Circuit
makeBenchmark(const std::string &name)
{
    // Paper-scale instantiations (Table II).
    if (name == "supremacy")
        return makeSupremacy(8, 8, 560);
    if (name == "qaoa")
        return makeQaoa(64, 10);
    if (name == "squareroot")
        return makeSquareRoot(39, 1);
    if (name == "qft")
        return makeQft(64);
    if (name == "adder")
        return makeAdder(31);
    if (name == "bv")
        return makeBv(63);
    if (name == "ghz")
        return makeGhz(64);
    if (name == "vqe")
        return makeVqe(64, 4);
    throw ConfigError("unknown benchmark '" + name + "'");
}

Circuit
makeBenchmarkSized(const std::string &name, int n)
{
    fatalUnless(n >= 4, "sized benchmarks need at least 4 qubits");
    if (name == "supremacy") {
        // Nearest square-ish grid with at least 4 qubits.
        int rows = 2;
        while ((rows + 1) * (rows + 1) <= n)
            ++rows;
        const int cols = std::max(2, n / rows);
        return makeSupremacy(rows, cols,
                             std::max(1, rows * cols * 9));
    }
    if (name == "qaoa")
        return makeQaoa(n, 10);
    if (name == "squareroot")
        return makeSquareRoot(std::max(3, (n - 2) / 2), 1);
    if (name == "qft")
        return makeQft(n);
    if (name == "adder")
        return makeAdder(std::max(1, (n - 1) / 2));
    if (name == "bv")
        return makeBv(n - 1);
    if (name == "ghz")
        return makeGhz(n);
    if (name == "vqe")
        return makeVqe(n, 4);
    throw ConfigError("unknown benchmark '" + name + "'");
}

} // namespace qccd
