#include "benchgen/benchgen.hpp"

#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qccd
{

Circuit
makeGhz(int n)
{
    fatalUnless(n >= 2, "GHZ needs at least two qubits");
    Circuit circuit(n, "ghz" + std::to_string(n));
    // H then a CX ladder: nearest-neighbour but strictly sequential, a
    // worst case for parallelism and a stress test for single long
    // dependency chains across the device.
    circuit.h(0);
    for (QubitId q = 0; q + 1 < n; ++q)
        circuit.cx(q, q + 1);
    circuit.measureAll();
    return circuit;
}

Circuit
makeVqe(int n, int layers, uint64_t seed)
{
    fatalUnless(n >= 2, "VQE ansatz needs at least two qubits");
    fatalUnless(layers >= 1, "VQE ansatz needs at least one layer");
    Circuit circuit(n, "vqe" + std::to_string(n));
    constexpr double pi = std::numbers::pi;
    Rng rng(seed);

    // Hardware-efficient VQE ansatz (Kandala et al. 2017 style): layers
    // of single-qubit Euler rotations followed by an entangling ladder,
    // plus a sparse set of longer-range ZZ terms standing in for
    // molecular Hamiltonian couplings - the near-term chemistry
    // workload the paper's introduction motivates.
    for (int layer = 0; layer < layers; ++layer) {
        for (QubitId q = 0; q < n; ++q) {
            circuit.rz(q, rng.nextDouble() * 2 * pi);
            circuit.rx(q, rng.nextDouble() * 2 * pi);
            circuit.rz(q, rng.nextDouble() * 2 * pi);
        }
        for (QubitId q = 0; q + 1 < n; ++q)
            circuit.cx(q, q + 1);
        // Sparse long-range couplings: qubit q to q + n/4.
        const int stride = std::max(n / 4, 2);
        for (QubitId q = 0; q + stride < n; q += stride) {
            circuit.cx(q, q + stride);
            circuit.rz(q + stride, rng.nextDouble() * pi);
            circuit.cx(q, q + stride);
        }
    }
    circuit.measureAll();
    return circuit;
}

} // namespace qccd
