/**
 * @file
 * NISQ benchmark generators for the paper's application suite (Table II).
 *
 * All generators emit IR in the general gate set; callers lower with
 * decomposeToNative() before compilation. Generated qubit and two-qubit
 * gate counts target Table II (64-78 qubits, 500-4000 two-qubit gates);
 * the exact generated counts are reported by bench/table2_applications
 * and recorded in EXPERIMENTS.md.
 */

#ifndef QCCD_BENCHGEN_BENCHGEN_HPP
#define QCCD_BENCHGEN_BENCHGEN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qccd
{

/**
 * Quantum Fourier Transform on @p n qubits: the canonical all-distances
 * kernel. qubit i is Hadamarded then controlled-phase coupled to every
 * later qubit, so every pair interacts once. With the CPhase -> 2 MS
 * lowering this yields n*(n-1) native two-qubit gates (4032 at n = 64,
 * matching Table II).
 */
Circuit makeQft(int n);

/**
 * Bernstein-Vazirani on @p n data qubits plus one ancilla (n+1 total).
 * The secret string is drawn from @p seed with on average half the bits
 * set; secret bits couple their data qubit to the shared ancilla, giving
 * the short-and-long-range pattern of Table II. With @p full_secret the
 * secret is all ones and the circuit has exactly n CX gates (the paper's
 * 64-gate configuration at n = 64).
 */
Circuit makeBv(int n, uint64_t seed = 7, bool full_secret = true);

/**
 * Cuccaro-style ripple-carry adder computing b += a on two
 * @p bits - bit registers with one carry ancilla (2*bits + 1 qubits,
 * short-range gates). bits = 31 gives 63 qubits; bits = 32 gives 65.
 * Toffolis lower to the standard 6-CX network.
 */
Circuit makeAdder(int bits);

/**
 * QAOA hardware-efficient ansatz (Moll et al. 2018) on @p n qubits:
 * @p layers layers of nearest-neighbour ZZ interactions on a line, each
 * followed by RX mixers. Each layer has n-1 two-qubit ZZ terms; ZZ
 * lowers to 2 CX. 64 qubits x 10 layers = 1260 CX, matching Table II.
 */
Circuit makeQaoa(int n, int layers = 10, uint64_t seed = 11);

/**
 * Google-supremacy-style random circuit on a @p rows x @p cols qubit
 * grid: alternating layers of nearest-neighbour two-qubit gates from
 * the four grid patterns, with random single-qubit gates between, until
 * @p target_two_qubit_gates two-qubit gates are placed (560 for 8x8 at
 * the paper's configuration).
 */
Circuit makeSupremacy(int rows, int cols, int target_two_qubit_gates = 560,
                      uint64_t seed = 23);

/**
 * Grover/SquareRoot search (the ScaffCC SquareRoot proxy): @p search
 * search qubits, a Toffoli-ladder oracle over search-2 scratch
 * ancillas, and the diffusion operator, iterated @p iterations times.
 * Qubit count is 2*search (search + scratch + oracle pair); search = 39
 * gives Table II's 78 qubits with the irregular short-and-long-range
 * pattern the paper describes.
 */
Circuit makeSquareRoot(int search = 39, int iterations = 1);

/**
 * Extension workload (beyond Table II): GHZ state preparation on @p n
 * qubits - a single sequential CX ladder, the minimal-parallelism
 * stress case.
 */
Circuit makeGhz(int n);

/**
 * Extension workload (beyond Table II): hardware-efficient VQE ansatz
 * (Kandala et al. 2017 style) on @p n qubits with @p layers layers of
 * Euler rotations, a CX ladder and sparse longer-range ZZ couplings -
 * the near-term chemistry workload the paper's introduction motivates.
 */
Circuit makeVqe(int n, int layers = 4, uint64_t seed = 31);

/** Named constructor registry for CLI/bench use. */
struct BenchmarkSpec
{
    std::string name;        ///< "qft", "bv", "adder", ...
    std::string description; ///< one-line summary
};

/** All registered benchmark names, in Table II order. */
std::vector<BenchmarkSpec> benchmarkList();

/**
 * Build a Table II application by name at its paper-scale size:
 * supremacy(8x8), qaoa(64), squareroot(38), qft(64), adder(31), bv(64).
 *
 * @throws ConfigError for unknown names.
 */
Circuit makeBenchmark(const std::string &name);

/** Build a scaled-down variant for fast tests: roughly @p n qubits. */
Circuit makeBenchmarkSized(const std::string &name, int n);

} // namespace qccd

#endif // QCCD_BENCHGEN_BENCHGEN_HPP
