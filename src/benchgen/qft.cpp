#include "benchgen/benchgen.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace qccd
{

Circuit
makeQft(int n)
{
    fatalUnless(n >= 1, "QFT needs at least one qubit");
    Circuit circuit(n, "qft" + std::to_string(n));
    constexpr double pi = std::numbers::pi;

    // Standard textbook QFT network: H on qubit i, then controlled
    // phase rotations of angle pi/2^(j-i) from every later qubit j.
    for (QubitId i = 0; i < n; ++i) {
        circuit.h(i);
        for (QubitId j = i + 1; j < n; ++j)
            circuit.cphase(j, i, std::ldexp(pi, -(j - i)));
    }
    // The trailing bit-reversal swaps are conventionally elided on
    // hardware by relabeling outputs, as the paper's frontends do.
    circuit.measureAll();
    return circuit;
}

} // namespace qccd
