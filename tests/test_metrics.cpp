/** @file Unit tests for metric accumulation. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/metrics.hpp"

namespace qccd
{
namespace
{

PrimOp
msOp(TimeUs start, TimeUs dur, double fid, bool comm = false)
{
    PrimOp op;
    op.kind = PrimKind::GateMS;
    op.start = start;
    op.duration = dur;
    op.fidelity = fid;
    op.errBackground = 0.1;
    op.errMotional = 0.2;
    op.forCommunication = comm;
    op.separation = 1;
    op.chainLength = 2;
    return op;
}

TEST(Metrics, MakespanTracksLatestEnd)
{
    SimResult r;
    r.noteOp(msOp(0, 100, 0.99));
    r.noteOp(msOp(50, 10, 0.99));
    EXPECT_DOUBLE_EQ(r.makespan, 100.0);
    r.noteOp(msOp(500, 20, 0.99));
    EXPECT_DOUBLE_EQ(r.makespan, 520.0);
}

TEST(Metrics, FidelityIsProductOfOps)
{
    SimResult r;
    r.noteOp(msOp(0, 1, 0.9));
    r.noteOp(msOp(0, 1, 0.8));
    EXPECT_NEAR(r.fidelity(), 0.72, 1e-12);
}

TEST(Metrics, ZeroFidelityClampedNotFatal)
{
    SimResult r;
    r.noteOp(msOp(0, 1, 0.0));
    EXPECT_EQ(r.zeroFidelityOps, 1);
    EXPECT_GT(r.fidelity(), 0.0);
    EXPECT_TRUE(std::isfinite(r.logFidelity));
}

TEST(Metrics, CountsByKind)
{
    SimResult r;
    r.noteOp(msOp(0, 1, 1.0, false));
    r.noteOp(msOp(0, 1, 1.0, true));

    PrimOp split;
    split.kind = PrimKind::Split;
    split.forCommunication = true;
    split.fidelity = 1.0;
    r.noteOp(split);

    PrimOp one;
    one.kind = PrimKind::Gate1Q;
    one.fidelity = 1.0;
    r.noteOp(one);

    EXPECT_EQ(r.counts.algorithmMs, 1);
    EXPECT_EQ(r.counts.reorderMs, 1);
    EXPECT_EQ(r.counts.totalMs(), 2);
    EXPECT_EQ(r.counts.splits, 1);
    EXPECT_EQ(r.counts.oneQubit, 1);
}

TEST(Metrics, BusyTimeSplitsByClass)
{
    SimResult r;
    r.noteOp(msOp(0, 100, 1.0, false)); // compute
    r.noteOp(msOp(0, 30, 1.0, true));   // comm (reorder gate)
    PrimOp merge;
    merge.kind = PrimKind::Merge;
    merge.duration = 80;
    merge.forCommunication = true;
    merge.fidelity = 1.0;
    r.noteOp(merge);

    EXPECT_DOUBLE_EQ(r.computeBusy, 100.0);
    EXPECT_DOUBLE_EQ(r.commBusy, 110.0);
}

TEST(Metrics, ErrorDecompositionAverages)
{
    SimResult r;
    r.noteOp(msOp(0, 1, 0.7));
    r.noteOp(msOp(0, 1, 0.7));
    EXPECT_NEAR(r.meanBackgroundError(), 0.1, 1e-12);
    EXPECT_NEAR(r.meanMotionalError(), 0.2, 1e-12);
}

TEST(Metrics, EmptyResultDefaults)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.fidelity(), 1.0);
    EXPECT_DOUBLE_EQ(r.makespan, 0.0);
    EXPECT_DOUBLE_EQ(r.meanBackgroundError(), 0.0);
}

} // namespace
} // namespace qccd
