/** @file Unit + property tests for the motional heating model. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/heating.hpp"

namespace qccd
{
namespace
{

TEST(Heating, DefaultsMatchPaper)
{
    HeatingModel model;
    EXPECT_DOUBLE_EQ(model.k1(), 0.1);
    EXPECT_DOUBLE_EQ(model.k2(), 0.01);
}

TEST(Heating, SplitDividesProportionally)
{
    HeatingModel model(0.1, 0.01);
    const auto [a, b] = model.afterSplit(10.0, 3, 1);
    EXPECT_DOUBLE_EQ(a, 7.5 + 0.1);
    EXPECT_DOUBLE_EQ(b, 2.5 + 0.1);
}

TEST(Heating, MergeSumsPlusK1)
{
    HeatingModel model(0.1, 0.01);
    EXPECT_DOUBLE_EQ(model.afterMerge(1.5, 2.5), 4.0 + 0.1);
}

TEST(Heating, MovePerSegment)
{
    HeatingModel model(0.1, 0.01);
    EXPECT_DOUBLE_EQ(model.afterMove(1.0, 3), 1.03);
    EXPECT_DOUBLE_EQ(model.afterMove(1.0, 0), 1.0);
}

TEST(Heating, AfterMovesBitwiseMatchesSegmentLoop)
{
    // afterMoves(e, k) replaces the emitter's per-segment loop; the
    // contract is bit-for-bit equality with applying afterMove(., 1)
    // k times (EXPECT_EQ on doubles is exact equality). The closed
    // form afterMove(e, k) would NOT satisfy this: the stepwise
    // partial sums round differently, which is why the model keeps
    // the recurrence.
    HeatingModel model(0.1, 0.01);
    for (double energy : {0.0, 0.1, 1.0, 3.7, 123.456, 9876.54321}) {
        for (int segments : {0, 1, 2, 3, 7, 25, 100}) {
            double looped = energy;
            for (int s = 0; s < segments; ++s)
                looped = model.afterMove(looped, 1);
            EXPECT_EQ(model.afterMoves(energy, segments), looped)
                << "e=" << energy << " k=" << segments;
        }
    }
    // Odd k2 values too, not just the paper default.
    HeatingModel odd(0.1, 0.0123456789);
    double looped = 0.3;
    for (int s = 0; s < 13; ++s)
        looped = odd.afterMove(looped, 1);
    EXPECT_EQ(odd.afterMoves(0.3, 13), looped);
    EXPECT_THROW(odd.afterMoves(1.0, -1), InternalError);
}

TEST(Heating, JunctionAddsK2)
{
    HeatingModel model(0.1, 0.01);
    EXPECT_DOUBLE_EQ(model.afterJunction(0.5), 0.51);
}

TEST(Heating, NegativeConstantsRejected)
{
    EXPECT_THROW(HeatingModel(-0.1, 0.01), ConfigError);
    EXPECT_THROW(HeatingModel(0.1, -0.01), ConfigError);
}

TEST(Heating, InvalidSplitArgsPanic)
{
    HeatingModel model;
    EXPECT_THROW(model.afterSplit(1.0, 0, 1), InternalError);
    EXPECT_THROW(model.afterSplit(-1.0, 1, 1), InternalError);
    EXPECT_THROW(model.afterMove(1.0, -1), InternalError);
}

/** Property: split conserves the parent energy (before k1 injection). */
class HeatingSplitProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(HeatingSplitProperty, EnergyConservedUpToK1)
{
    const auto [na, nb] = GetParam();
    HeatingModel model(0.1, 0.01);
    for (double energy : {0.0, 0.3, 5.0, 123.456}) {
        const auto [a, b] = model.afterSplit(energy, na, nb);
        // Sub-chain energies are the conserved shares plus one k1 each.
        EXPECT_NEAR(a + b, energy + 2 * model.k1(), 1e-12);
        EXPECT_GE(a, model.k1());
        EXPECT_GE(b, model.k1());
        // Larger sub-chain takes at least the smaller one's share.
        if (na > nb) {
            EXPECT_GE(a, b);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ChainSizes, HeatingSplitProperty,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{9, 1},
                      std::pair{5, 5}, std::pair{19, 1},
                      std::pair{17, 3}, std::pair{33, 2}));

/** Property: a split-then-merge cycle adds exactly 3*k1. */
TEST(Heating, SplitMergeCycleAddsThreeK1)
{
    HeatingModel model(0.1, 0.01);
    for (double energy : {0.0, 1.0, 42.0}) {
        const auto [rest, ion] = model.afterSplit(energy, 7, 1);
        const double merged = model.afterMerge(rest, ion);
        EXPECT_NEAR(merged, energy + 3 * model.k1(), 1e-12);
    }
}

} // namespace
} // namespace qccd
