/** @file Unit tests for the OpenQASM 2.0 parser. */

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/qasm/parser.hpp"
#include "circuit/stats.hpp"
#include "common/error.hpp"

namespace qccd::qasm
{
namespace
{

constexpr const char *kBell = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
)";

TEST(QasmParser, ParsesBellPair)
{
    const Circuit c = parse(kBell, "bell");
    EXPECT_EQ(c.numQubits(), 2);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.gate(0).op, Op::H);
    EXPECT_EQ(c.gate(1).op, Op::CX);
    EXPECT_EQ(c.gate(2).op, Op::Measure);
    EXPECT_EQ(c.name(), "bell");
}

TEST(QasmParser, AngleExpressions)
{
    const Circuit c = parse(
        "qreg q[1]; rz(pi/2) q[0]; rx(-pi) q[0]; ry(2*pi/4+1) q[0];"
        " rz((1+2)*3) q[0];");
    constexpr double pi = std::numbers::pi;
    ASSERT_EQ(c.size(), 4u);
    EXPECT_DOUBLE_EQ(c.gate(0).param, pi / 2);
    EXPECT_DOUBLE_EQ(c.gate(1).param, -pi);
    EXPECT_DOUBLE_EQ(c.gate(2).param, pi / 2 + 1);
    EXPECT_DOUBLE_EQ(c.gate(3).param, 9.0);
}

TEST(QasmParser, MultipleRegistersConcatenate)
{
    const Circuit c = parse("qreg a[2]; qreg b[3]; cx a[1], b[0];");
    EXPECT_EQ(c.numQubits(), 5);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).q0, 1);
    EXPECT_EQ(c.gate(0).q1, 2); // b[0] is global qubit 2
}

TEST(QasmParser, RegisterBroadcast)
{
    const Circuit c = parse("qreg q[3]; h q;");
    EXPECT_EQ(c.size(), 3u);
}

TEST(QasmParser, BroadcastTwoQubit)
{
    const Circuit c = parse("qreg a[3]; qreg b[3]; cx a, b;");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(1).q0, 1);
    EXPECT_EQ(c.gate(1).q1, 4);
}

TEST(QasmParser, MeasureWholeRegister)
{
    const Circuit c = parse("qreg q[3]; creg c[3]; measure q -> c;");
    EXPECT_EQ(computeStats(c).measurements, 3);
}

TEST(QasmParser, UserDefinedGateInlined)
{
    const Circuit c = parse(R"(
qreg q[2];
gate mybell a, b { h a; cx a, b; }
mybell q[0], q[1];
mybell q[1], q[0];
)");
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.gate(0).op, Op::H);
    EXPECT_EQ(c.gate(1).op, Op::CX);
    EXPECT_EQ(c.gate(2).q0, 1);
    EXPECT_EQ(c.gate(3).q1, 0);
}

TEST(QasmParser, NestedUserGates)
{
    const Circuit c = parse(R"(
qreg q[2];
gate inner a { h a; }
gate outer a, b { inner a; cx a, b; inner b; }
outer q[0], q[1];
)");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(0).op, Op::H);
    EXPECT_EQ(c.gate(2).q0, 1);
}

TEST(QasmParser, RzzMapsToCPhase)
{
    const Circuit c = parse("qreg q[2]; rzz(0.25) q[0], q[1];");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).op, Op::CPhase);
    EXPECT_DOUBLE_EQ(c.gate(0).param, 0.5);
}

TEST(QasmParser, RxxMapsToMs)
{
    const Circuit c = parse("qreg q[2]; rxx(0.5) q[0], q[1];");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).op, Op::MS);
}

TEST(QasmParser, BarrierKept)
{
    const Circuit c = parse("qreg q[2]; h q[0]; barrier q; x q[1];");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(1).op, Op::Barrier);
}

TEST(QasmParser, OpaqueAndResetSkipped)
{
    const Circuit c = parse(
        "qreg q[1]; opaque magic a; reset q[0]; x q[0];");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).op, Op::X);
}

TEST(QasmParser, Errors)
{
    EXPECT_THROW(parse("qreg q[2]; bogus q[0];"), ConfigError);
    EXPECT_THROW(parse("qreg q[2]; h q[5];"), ConfigError);
    EXPECT_THROW(parse("qreg q[2]; h r[0];"), ConfigError);
    EXPECT_THROW(parse("qreg q[0];"), ConfigError);
    EXPECT_THROW(parse("qreg q[2]; qreg q[2];"), ConfigError);
    EXPECT_THROW(parse("qreg q[2]; cx q[0];"), ConfigError);
    EXPECT_THROW(parse("qreg q[2]; rz() q[0];"), ConfigError);
    EXPECT_THROW(parse("qreg q[2]; rz(1/0) q[0];"), ConfigError);
    EXPECT_THROW(parse("h q[0];"), ConfigError); // gate before qreg
    EXPECT_THROW(parse("qreg q[2]; if (c == 0) x q[0];"), ConfigError);
}

TEST(QasmParser, QregAfterGatesRejected)
{
    EXPECT_THROW(parse("qreg q[1]; x q[0]; qreg r[1];"), ConfigError);
}

TEST(QasmParser, MissingFileThrows)
{
    EXPECT_THROW(parseFile("/nonexistent/file.qasm"), ConfigError);
}

} // namespace
} // namespace qccd::qasm
