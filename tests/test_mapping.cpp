/** @file Unit tests for the greedy first-use initial mapping. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "common/error.hpp"
#include "compiler/mapping.hpp"

namespace qccd
{
namespace
{

TEST(Mapping, FirstUseOrderFollowsGateSequence)
{
    Circuit c(4);
    c.h(2);
    c.cx(2, 0);
    c.h(3);
    c.h(1);
    const auto order = firstUseOrder(c);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 0);
    EXPECT_EQ(order[2], 3);
    EXPECT_EQ(order[3], 1);
}

TEST(Mapping, UnusedQubitsComeLastInIndexOrder)
{
    Circuit c(4);
    c.h(3);
    const auto order = firstUseOrder(c);
    EXPECT_EQ(order[0], 3);
    EXPECT_EQ(order[1], 0);
    EXPECT_EQ(order[2], 1);
    EXPECT_EQ(order[3], 2);
}

TEST(Mapping, PacksWithBufferSlots)
{
    const Topology topo = makeLinear(3, 6);
    Circuit c(10);
    for (QubitId q = 0; q + 1 < 10; ++q)
        c.cx(q, q + 1);
    const InitialMapping m = mapQubits(c, topo, 2);
    EXPECT_EQ(m.effectiveBuffer, 2);
    // 6-2 = 4 per trap: [0..3], [4..7], [8..9].
    EXPECT_EQ(m.chainOrder[0].size(), 4u);
    EXPECT_EQ(m.chainOrder[1].size(), 4u);
    EXPECT_EQ(m.chainOrder[2].size(), 2u);
    for (QubitId q = 0; q < 10; ++q)
        EXPECT_EQ(m.trapOf[q], q / 4);
}

TEST(Mapping, BufferShrinksWhenTight)
{
    // 16 qubits on 3 traps of 6 = 18 capacity: buffer 2 leaves only 12
    // usable slots, so the mapper must shrink the buffer to 0.
    const Topology topo = makeLinear(3, 6);
    Circuit c(16);
    c.h(0);
    const InitialMapping m = mapQubits(c, topo, 2);
    EXPECT_EQ(m.effectiveBuffer, 0);
    size_t placed = 0;
    for (const auto &chain : m.chainOrder)
        placed += chain.size();
    EXPECT_EQ(placed, 16u);
}

TEST(Mapping, PaperCaseSquareRootAtCapacity14)
{
    // 78 qubits on six 14-ion traps: only one buffer slot fits.
    const Topology topo = makeLinear(6, 14);
    const Circuit c = makeBenchmark("squareroot");
    const InitialMapping m = mapQubits(c, topo, 2);
    EXPECT_EQ(m.effectiveBuffer, 1);
}

TEST(Mapping, TooManyQubitsRejected)
{
    const Topology topo = makeLinear(2, 4);
    Circuit c(9);
    c.h(0);
    EXPECT_THROW(mapQubits(c, topo, 2), ConfigError);
}

TEST(Mapping, NegativeBufferRejected)
{
    const Topology topo = makeLinear(2, 4);
    Circuit c(2);
    EXPECT_THROW(mapQubits(c, topo, -1), ConfigError);
}

TEST(Mapping, CoLocatesEarlyInteractingQubits)
{
    // QAOA's line interaction should co-locate consecutive qubits.
    const Topology topo = makeLinear(4, 10);
    const Circuit c = makeQaoa(24, 2);
    const InitialMapping m = mapQubits(c, topo, 2);
    for (QubitId q = 0; q + 1 < 24; ++q) {
        const int trap_gap = std::abs(m.trapOf[q] - m.trapOf[q + 1]);
        EXPECT_LE(trap_gap, 1) << "qubit " << q;
    }
}

} // namespace
} // namespace qccd
