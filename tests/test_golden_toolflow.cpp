/**
 * @file
 * Golden-output tests: the toolflow must produce bit-identical metrics
 * to the values captured before the hot-path optimizations (PR 3's
 * memoized models / O(1) device state / pooled scheduling), across all
 * four gate implementations, both reorder methods, and both topology
 * families. Every double comparison is exact (EXPECT_EQ, not NEAR):
 * any deviation means an optimization changed the arithmetic.
 *
 * Regenerate the table by printing the same fields with %.17g from a
 * trusted build (the values below come from commit f699107).
 */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "core/toolflow.hpp"

namespace qccd
{
namespace
{

struct GoldenCounts
{
    long algorithmMs, reorderMs, oneQubit, measurements, splits, merges,
        moves, segmentsMoved, junctionCrossings, rotations, transits,
        shuttles, evictions;
};

struct GoldenCase
{
    const char *app;
    const char *spec;
    int capacity;
    GateImpl gate;
    ReorderMethod reorder;
    bool decomposeRuntime;

    double makespan;
    double logFidelity;
    double computeOnlyTime;
    double maxChainEnergy;
    double sumBackgroundError;
    double sumMotionalError;
    double computeBusy;
    double commBusy;
    long zeroFidelityOps;
    GoldenCounts counts;
};

const GoldenCase kGolden[] = {
    {"bv", "linear:6", 22, GateImpl::FM, ReorderMethod::GS, true,
     25892.839999999982, -0.092875965663158533, 23407.279999999992, 1.6825612585181964, 0.014242840000000003, 0.0041989304172278053,
     24157.279999999988, 3250.5600000000004, 0,
     {63, 6, 380, 63, 11, 11, 11, 11, 0, 0, 0, 11, 0}},
    {"adder", "linear:6", 17, GateImpl::AM1, ReorderMethod::GS, false,
     100349, -0.24002667908665187, 0, 2.7267255119193861, 0.084391999999999773, 0.048338494601929322,
     100348, 6024, 0,
     {496, 18, 2542, 31, 28, 28, 28, 28, 0, 0, 0, 28, 0}},
    {"qft", "grid:2x3", 25, GateImpl::PM, ReorderMethod::IS, true,
     927780, -48.164733897382092, 567100, 337.46879051182913, 0.86740499999999332, 46.134443152990293,
     988205, 547955, 0,
     {4032, 0, 22240, 64, 2517, 2517, 377, 377, 231, 2371, 0, 146, 1}},
    {"supremacy", "linear:6", 14, GateImpl::AM2, ReorderMethod::IS, false,
     893821, -3.9845734778729924, 0, 476.60701930179994, 0.10383000000000014, 3.6563464061056763,
     136150, 1232310, 0,
     {560, 0, 4544, 64, 6004, 6004, 634, 634, 0, 5370, 0, 367, 18}},
    {"qaoa", "linear:6", 30, GateImpl::FM, ReorderMethod::IS, false,
     332134.09000000008, -0.80466999160643748, 0, 3.1812050202908426, 0.36201053999999799, 0.18727401195131954,
     403480.54000000178, 4455, 0,
     {1260, 0, 6374, 64, 27, 27, 27, 27, 0, 0, 0, 27, 0}},
    {"squareroot", "grid:2x3", 20, GateImpl::AM2, ReorderMethod::GS, true,
     387101, -1.6833224795990156, 270982, 21.459507565189579, 0.42243799999999404, 0.99440478042071745,
     285582, 266796, 0,
     {1339, 621, 7562, 39, 218, 218, 660, 660, 442, 0, 0, 218, 0}},
};

TEST(GoldenToolflow, MetricsBitIdenticalToReference)
{
    for (const GoldenCase &g : kGolden) {
        SCOPED_TRACE(std::string(g.app) + " @ " + g.spec + " cap=" +
                     std::to_string(g.capacity) + " " +
                     gateImplName(g.gate) + "-" +
                     reorderMethodName(g.reorder));
        DesignPoint dp;
        dp.topologySpec = g.spec;
        dp.trapCapacity = g.capacity;
        dp.hw.gateImpl = g.gate;
        dp.hw.reorder = g.reorder;
        const Circuit native = decomposeToNative(makeBenchmark(g.app));
        const ToolflowContext context(dp);
        RunOptions options;
        options.decomposeRuntime = g.decomposeRuntime;
        const RunResult r = runToolflow(native, dp, context, options);
        const SimResult &s = r.sim;

        EXPECT_EQ(s.makespan, g.makespan);
        EXPECT_EQ(s.logFidelity, g.logFidelity);
        EXPECT_EQ(r.computeOnlyTime, g.computeOnlyTime);
        EXPECT_EQ(s.maxChainEnergy, g.maxChainEnergy);
        EXPECT_EQ(s.sumBackgroundError, g.sumBackgroundError);
        EXPECT_EQ(s.sumMotionalError, g.sumMotionalError);
        EXPECT_EQ(s.computeBusy, g.computeBusy);
        EXPECT_EQ(s.commBusy, g.commBusy);
        EXPECT_EQ(s.zeroFidelityOps, g.zeroFidelityOps);

        EXPECT_EQ(s.counts.algorithmMs, g.counts.algorithmMs);
        EXPECT_EQ(s.counts.reorderMs, g.counts.reorderMs);
        EXPECT_EQ(s.counts.oneQubit, g.counts.oneQubit);
        EXPECT_EQ(s.counts.measurements, g.counts.measurements);
        EXPECT_EQ(s.counts.splits, g.counts.splits);
        EXPECT_EQ(s.counts.merges, g.counts.merges);
        EXPECT_EQ(s.counts.moves, g.counts.moves);
        EXPECT_EQ(s.counts.segmentsMoved, g.counts.segmentsMoved);
        EXPECT_EQ(s.counts.junctionCrossings,
                  g.counts.junctionCrossings);
        EXPECT_EQ(s.counts.rotations, g.counts.rotations);
        EXPECT_EQ(s.counts.transits, g.counts.transits);
        EXPECT_EQ(s.counts.shuttles, g.counts.shuttles);
        EXPECT_EQ(s.counts.evictions, g.counts.evictions);
    }
}

TEST(GoldenToolflow, ScratchReuseDoesNotChangeResults)
{
    // The same point evaluated with a cold scratch, a reused scratch
    // (second run), and no scratch must agree bit for bit.
    DesignPoint dp = DesignPoint::linear(6, 22);
    const Circuit native = decomposeToNative(makeBenchmark("bv"));
    const ToolflowContext context(dp);
    RunOptions options;
    options.decomposeRuntime = true;

    const RunResult plain = runToolflow(native, dp, context, options);

    SchedulerScratch scratch;
    const RunResult cold =
        runToolflow(native, dp, context, options, &scratch);
    const RunResult warm =
        runToolflow(native, dp, context, options, &scratch);

    // Also a different design through the same scratch (device-state
    // re-emplacement path), then the original point again.
    DesignPoint other = DesignPoint::grid(2, 3, 20);
    const ToolflowContext otherContext(other);
    runToolflow(native, other, otherContext, options, &scratch);
    const RunResult rewarmed =
        runToolflow(native, dp, context, options, &scratch);

    for (const RunResult *r : {&cold, &warm, &rewarmed}) {
        EXPECT_EQ(r->sim.makespan, plain.sim.makespan);
        EXPECT_EQ(r->sim.logFidelity, plain.sim.logFidelity);
        EXPECT_EQ(r->computeOnlyTime, plain.computeOnlyTime);
        EXPECT_EQ(r->sim.counts.shuttles, plain.sim.counts.shuttles);
        EXPECT_EQ(r->sim.counts.reorderMs, plain.sim.counts.reorderMs);
    }
}

} // namespace
} // namespace qccd
