/** @file Design-space matrix validation: the full cross-product of
 *  workloads, topologies, gate implementations, reordering methods and
 *  mapping policies is executed on scaled-down instances and checked
 *  against every architectural invariant plus basic sanity relations.
 *  This is the repository's broadest property net: any scheduling or
 *  accounting regression anywhere in the design space trips it. */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "circuit/stats.hpp"
#include "compiler/scheduler.hpp"
#include "sim/checker.hpp"

namespace qccd
{
namespace
{

struct MatrixCase
{
    std::string app;
    std::string topo;
    GateImpl gate;
    ReorderMethod reorder;
    MappingPolicy policy;
};

class DesignMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(DesignMatrix, SchedulesAndSatisfiesInvariants)
{
    const MatrixCase &c = GetParam();
    const Topology topo = makeFromSpec(c.topo, 8);
    const Circuit native =
        decomposeToNative(makeBenchmarkSized(c.app, 18));
    const CircuitStats stats = computeStats(native);

    HardwareParams hw;
    hw.gateImpl = c.gate;
    hw.reorder = c.reorder;
    ScheduleOptions options;
    options.mappingPolicy = c.policy;

    Scheduler sched(native, topo, hw, options);
    const ScheduleResult r = sched.run();

    // 1. Trace invariants: exclusive resources, valid geometry, ...
    const CheckReport report = checkTrace(r.trace, topo);
    EXPECT_TRUE(report.ok);
    for (const std::string &v : report.violations)
        ADD_FAILURE() << v;

    // 2. Conservation: every program op executed exactly once.
    EXPECT_EQ(r.metrics.counts.algorithmMs, stats.twoQubitGates);
    EXPECT_EQ(r.metrics.counts.oneQubit, stats.oneQubitGates);
    EXPECT_EQ(r.metrics.counts.measurements, stats.measurements);

    // 3. Shuttle bookkeeping: splits and merges pair up.
    EXPECT_EQ(r.metrics.counts.splits, r.metrics.counts.merges);

    // 4. Reordering method exclusivity.
    if (c.reorder == ReorderMethod::GS)
        EXPECT_EQ(r.metrics.counts.rotations, 0);
    else
        EXPECT_EQ(r.metrics.counts.reorderMs, 0);

    // 5. Sanity: time positive, fidelity in (0, 1], energy finite.
    EXPECT_GT(r.metrics.makespan, 0.0);
    EXPECT_LE(r.metrics.logFidelity, 0.0);
    EXPECT_TRUE(std::isfinite(r.metrics.logFidelity));
    EXPECT_GE(r.metrics.maxChainEnergy, 0.0);
    EXPECT_TRUE(std::isfinite(r.metrics.maxChainEnergy));

    // 6. Makespan is at least the busiest critical resource's load and
    // no greater than fully serial execution.
    EXPECT_LE(r.metrics.makespan,
              r.metrics.computeBusy + r.metrics.commBusy + 1e-6);
}

std::vector<MatrixCase>
allCases()
{
    std::vector<MatrixCase> cases;
    for (const char *app : {"qft", "bv", "adder", "qaoa", "supremacy",
                            "squareroot", "ghz", "vqe"}) {
        for (const char *topo : {"linear:3", "grid:2x2"}) {
            for (GateImpl gate : {GateImpl::AM1, GateImpl::AM2,
                                  GateImpl::PM, GateImpl::FM}) {
                for (ReorderMethod reorder : {ReorderMethod::GS,
                                              ReorderMethod::IS}) {
                    // Policy varies only for one gate type to keep the
                    // matrix at a tractable 160 cases.
                    const auto policies =
                        gate == GateImpl::FM
                            ? std::vector<MappingPolicy>{
                                  MappingPolicy::Packed,
                                  MappingPolicy::Balanced}
                            : std::vector<MappingPolicy>{
                                  MappingPolicy::Packed};
                    for (MappingPolicy policy : policies)
                        cases.push_back(
                            {app, topo, gate, reorder, policy});
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Full, DesignMatrix, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<MatrixCase> &info) {
        const MatrixCase &c = info.param;
        std::string topo = c.topo;
        for (char &ch : topo)
            if (ch == ':' || ch == 'x')
                ch = '_';
        return c.app + "_" + topo + "_" + gateImplName(c.gate) + "_" +
               reorderMethodName(c.reorder) + "_" +
               (c.policy == MappingPolicy::Packed ? "packed"
                                                  : "balanced");
    });

} // namespace
} // namespace qccd
