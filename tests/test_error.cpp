/** @file Unit tests for the error hierarchy and check helpers. */

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qccd
{
namespace
{

TEST(Error, FatalUnlessThrowsConfigError)
{
    EXPECT_NO_THROW(fatalUnless(true, "fine"));
    EXPECT_THROW(fatalUnless(false, "bad config"), ConfigError);
}

TEST(Error, PanicUnlessThrowsInternalError)
{
    EXPECT_NO_THROW(panicUnless(true, "fine"));
    EXPECT_THROW(panicUnless(false, "broken invariant"), InternalError);
}

TEST(Error, BothDeriveFromQccdError)
{
    try {
        fatalUnless(false, "user mistake");
        FAIL() << "expected a throw";
    } catch (const QccdError &err) {
        EXPECT_STREQ(err.what(), "user mistake");
    }

    try {
        panicUnless(false, "bug");
        FAIL() << "expected a throw";
    } catch (const QccdError &err) {
        EXPECT_STREQ(err.what(), "bug");
    }
}

} // namespace
} // namespace qccd
