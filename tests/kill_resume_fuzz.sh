#!/usr/bin/env bash
# Crash-safety fuzz for sweep checkpointing: SIGKILL a sweep at random
# moments, resume it, repeat — the final CSV must be byte-identical to
# an uninterrupted run. Exercises flushed line appends, torn-line
# healing, and planned-point validation end to end through the real
# binary. A cache-enabled variant holds the result store to the same
# bar: after the kill storm, both the CSV *and* the healed store must
# match their uninterrupted twins byte for byte. Registered with CTest
# by tests/CMakeLists.txt; $1 is the qccd_explore binary.
set -u

EXPLORE=${1:?usage: kill_resume_fuzz.sh /path/to/qccd_explore}
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
cd "$scratch" || exit 1

cat > fuzz.sweep <<'EOF'
{"name": "fuzz", "sweeps": [{"apps": ["bv", "qft"], "capacity": [14, 18, 22]}]}
EOF

"$EXPLORE" --sweep fuzz.sweep --out clean.csv > /dev/null 2>&1
if [[ ! -s clean.csv ]]; then
    echo "FAIL: uninterrupted reference run produced no output" >&2
    exit 1
fi

# Fixed seed: the kill schedule is reproducible run to run.
RANDOM=20260808
failures=0

for trial in 1 2; do
    rm -f out.csv out.csv.errors
    for attempt in $(seq 1 20); do
        "$EXPLORE" --sweep fuzz.sweep --out out.csv --resume \
            > /dev/null 2>&1 &
        pid=$!
        # 0-70ms in: early kills tear the header or the first rows,
        # late ones tear mid-stream or miss (a completed run is fine).
        sleep "0.0$((RANDOM % 8))"
        kill -KILL "$pid" 2> /dev/null
        wait "$pid" 2> /dev/null
    done
    # Let the final resume finish uninterrupted.
    "$EXPLORE" --sweep fuzz.sweep --out out.csv --resume \
        > /dev/null 2>&1
    status=$?
    if [[ $status -ne 0 ]]; then
        echo "FAIL: trial $trial: final resume exited $status" >&2
        failures=$((failures + 1))
    elif ! cmp -s clean.csv out.csv; then
        echo "FAIL: trial $trial: resumed output differs from the" \
             "uninterrupted run" >&2
        diff clean.csv out.csv | head -5 >&2
        failures=$((failures + 1))
    elif [[ -e out.csv.errors ]]; then
        echo "FAIL: trial $trial: fault-free fuzz left an .errors" \
             "sidecar" >&2
        failures=$((failures + 1))
    else
        echo "ok: trial $trial resumed to a byte-identical CSV"
    fi
done

# Sharded variant: kill/resume shard 1 (no header) the same way.
for attempt in $(seq 1 8); do
    "$EXPLORE" --sweep fuzz.sweep --shard 1/2 --out shard1.csv \
        --resume > /dev/null 2>&1 &
    pid=$!
    sleep "0.0$((RANDOM % 6))"
    kill -KILL "$pid" 2> /dev/null
    wait "$pid" 2> /dev/null
done
"$EXPLORE" --sweep fuzz.sweep --shard 1/2 --out shard1.csv --resume \
    > /dev/null 2>&1
"$EXPLORE" --sweep fuzz.sweep --shard 0/2 --out shard0.csv \
    > /dev/null 2>&1
if cat shard0.csv shard1.csv | cmp -s - clean.csv; then
    echo "ok: killed+resumed shard concatenates byte-identically"
else
    echo "FAIL: sharded kill/resume diverges from the clean run" >&2
    failures=$((failures + 1))
fi

# Cache-enabled variant: the same kill storm with a persistent result
# store in play. The store is append-only with first-wins dedup and
# torn-tail healing, so the killed-and-resumed store must converge to
# the exact bytes an uninterrupted cold run writes — any divergence
# means a replayed point re-appended or a heal lost a record.
"$EXPLORE" --sweep fuzz.sweep --out cacheref.csv --cache ref.qcache \
    > /dev/null 2>&1
if ! cmp -s clean.csv cacheref.csv; then
    echo "FAIL: cold cached run differs from the cacheless run" >&2
    failures=$((failures + 1))
fi
rm -f cout.csv cout.csv.errors
for attempt in $(seq 1 20); do
    "$EXPLORE" --sweep fuzz.sweep --out cout.csv --cache fuzz.qcache \
        --resume > /dev/null 2>&1 &
    pid=$!
    # A kill can land mid CSV row, mid store append, or between the
    # two; dead-pid lock takeover happens on every resume.
    sleep "0.0$((RANDOM % 8))"
    kill -KILL "$pid" 2> /dev/null
    wait "$pid" 2> /dev/null
done
"$EXPLORE" --sweep fuzz.sweep --out cout.csv --cache fuzz.qcache \
    --resume > /dev/null 2>&1
status=$?
if [[ $status -ne 0 ]]; then
    echo "FAIL: cached final resume exited $status" >&2
    failures=$((failures + 1))
elif ! cmp -s clean.csv cout.csv; then
    echo "FAIL: cached kill/resume CSV differs from the clean run" >&2
    failures=$((failures + 1))
elif ! cmp -s ref.qcache fuzz.qcache; then
    echo "FAIL: killed+resumed store differs byte-wise from an" \
         "uninterrupted one" >&2
    failures=$((failures + 1))
elif [[ -e fuzz.qcache.lock ]]; then
    echo "FAIL: cached fuzz left a stale lock behind" >&2
    failures=$((failures + 1))
else
    echo "ok: cached kill/resume: CSV and store both byte-identical"
fi

# The surviving store must answer the whole sweep warm and unchanged.
"$EXPLORE" --sweep fuzz.sweep --out warm.csv --cache fuzz.qcache \
    > warmstats.txt 2>&1
if cmp -s clean.csv warm.csv \
    && grep -q 'hits=6 misses=0 inserts=0' warmstats.txt; then
    echo "ok: warm store answers the full sweep byte-identically"
else
    echo "FAIL: warm rerun from the fuzzed store diverges" >&2
    failures=$((failures + 1))
fi

if [[ $failures -eq 0 ]]; then
    echo "kill/resume fuzz: checkpoint recovery is byte-exact"
fi
exit "$failures"
