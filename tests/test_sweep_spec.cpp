/**
 * @file
 * Tests for the declarative sweep-spec subsystem (core/sweep_spec.hpp):
 * parser semantics, fuzzed malformed input (clean ConfigError, never a
 * crash), shard arithmetic, and the differential guarantee — engine
 * evaluation of randomly drawn spec grids is bit-identical to direct
 * point-by-point runToolflow calls, for any worker count and any shard
 * partition.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "benchgen/benchgen.hpp"
#include "circuit/qasm/parser.hpp"
#include "circuit/qasm/writer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/export.hpp"
#include "core/sweep_engine.hpp"
#include "core/sweep_spec.hpp"

namespace qccd
{
namespace
{

// ---------------------------------------------------------------------
// Parser semantics
// ---------------------------------------------------------------------

TEST(SweepSpecParse, MinimalSpec)
{
    const SweepSpec spec = parseSweepSpec(R"({
        "name": "tiny",
        "sweeps": [{"apps": "qft"}]
    })");
    EXPECT_EQ(spec.name, "tiny");
    ASSERT_EQ(spec.points.size(), 1u);
    EXPECT_EQ(spec.points[0].application, "qft");
    EXPECT_TRUE(spec.points[0].qasmPath.empty());
    // Defaults match DesignPoint/RunOptions defaults.
    EXPECT_EQ(spec.points[0].design.topologySpec, "linear:6");
    EXPECT_EQ(spec.points[0].design.trapCapacity, 22);
    EXPECT_EQ(spec.points[0].design.hw.gateImpl, GateImpl::FM);
    EXPECT_EQ(spec.points[0].design.hw.reorder, ReorderMethod::GS);
    EXPECT_EQ(spec.points[0].design.hw.bufferSlots, 2);
    EXPECT_FALSE(spec.points[0].options.decomposeRuntime);
}

TEST(SweepSpecParse, AxesExpandInDeclarationOrderFirstSlowest)
{
    const SweepSpec spec = parseSweepSpec(R"({
        "name": "order",
        "sweeps": [{
            "apps": ["qft", "bv"],
            "gate": ["FM", "PM"],
            "capacity": [14, 18]
        }]
    })");
    ASSERT_EQ(spec.points.size(), 8u);
    // apps varies slowest, capacity fastest.
    EXPECT_EQ(spec.points[0].application, "qft");
    EXPECT_EQ(spec.points[0].design.hw.gateImpl, GateImpl::FM);
    EXPECT_EQ(spec.points[0].design.trapCapacity, 14);
    EXPECT_EQ(spec.points[1].design.trapCapacity, 18);
    EXPECT_EQ(spec.points[2].design.hw.gateImpl, GateImpl::PM);
    EXPECT_EQ(spec.points[2].design.trapCapacity, 14);
    EXPECT_EQ(spec.points[4].application, "bv");
    EXPECT_EQ(spec.points[7].application, "bv");
    EXPECT_EQ(spec.points[7].design.hw.gateImpl, GateImpl::PM);
    EXPECT_EQ(spec.points[7].design.trapCapacity, 18);
}

TEST(SweepSpecParse, GridsConcatenateInFileOrder)
{
    const SweepSpec spec = parseSweepSpec(R"({
        "name": "two",
        "sweeps": [
            {"apps": "qft", "topology": "linear:6"},
            {"apps": "qft", "topology": "grid:2x3"}
        ]
    })");
    ASSERT_EQ(spec.points.size(), 2u);
    EXPECT_EQ(spec.points[0].design.topologySpec, "linear:6");
    EXPECT_EQ(spec.points[1].design.topologySpec, "grid:2x3");
}

TEST(SweepSpecParse, ParamsOverridesAndCoVaryingAxis)
{
    const SweepSpec spec = parseSweepSpec(R"({
        "name": "p",
        "sweeps": [{
            "apps": "qft",
            "params": [
                {"heating_k1": 0.2, "heating_k2": 0.02},
                {"gamma_per_s": 2.5, "split_us": 160.0,
                 "buffer_slots": 3}
            ]
        }]
    })");
    ASSERT_EQ(spec.points.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.points[0].design.hw.heatingK1, 0.2);
    EXPECT_DOUBLE_EQ(spec.points[0].design.hw.heatingK2, 0.02);
    EXPECT_DOUBLE_EQ(spec.points[0].design.hw.gammaPerS, 1.0);
    EXPECT_DOUBLE_EQ(spec.points[1].design.hw.gammaPerS, 2.5);
    EXPECT_DOUBLE_EQ(spec.points[1].design.hw.shuttle.split, 160.0);
    EXPECT_EQ(spec.points[1].design.hw.bufferSlots, 3);
    // The second axis value must not inherit the first one's overrides.
    EXPECT_DOUBLE_EQ(spec.points[1].design.hw.heatingK1, 0.1);
}

TEST(SweepSpecParse, EveryHardwareOverrideKeyIsApplicable)
{
    for (const std::string &key : hardwareOverrideKeys()) {
        HardwareParams params;
        EXPECT_NO_THROW(applyHardwareOverride(params, key, 1.0)) << key;
    }
    HardwareParams params;
    EXPECT_THROW(applyHardwareOverride(params, "no_such_knob", 1.0),
                 ConfigError);
    EXPECT_THROW(applyHardwareOverride(params, "buffer_slots", 1.5),
                 ConfigError);
}

TEST(SweepSpecParse, QasmAppsResolveRelativeToBaseDir)
{
    const std::string dir = ::testing::TempDir();
    Circuit c(2, "pair");
    c.h(0);
    c.cx(0, 1);
    qasm::writeFile(c, dir + "/pair.qasm");

    const SweepSpec spec = parseSweepSpec(R"({
        "name": "q",
        "sweeps": [{"apps": ["qasm:pair.qasm"]}]
    })", "inline", dir);
    ASSERT_EQ(spec.points.size(), 1u);
    EXPECT_EQ(spec.points[0].application, "pair");
    EXPECT_EQ(spec.points[0].qasmPath, dir + "/pair.qasm");
}

TEST(SweepSpecParse, CommentsAndTrailingCommasAccepted)
{
    const SweepSpec spec = parseSweepSpec(
        "# leading comment\n"
        "{\n"
        "  \"name\": \"c\", # inline comment\n"
        "  \"sweeps\": [{\"apps\": [\"qft\",], \"capacity\": [14, 18,],},],\n"
        "}\n");
    EXPECT_EQ(spec.points.size(), 2u);
}

TEST(SweepSpecParse, OptionsApplyGridWide)
{
    const SweepSpec spec = parseSweepSpec(R"({
        "name": "o",
        "sweeps": [
            {"apps": "qft", "options": {"decompose_runtime": true}},
            {"apps": "qft"}
        ]
    })");
    EXPECT_TRUE(spec.points[0].options.decomposeRuntime);
    EXPECT_FALSE(spec.points[1].options.decomposeRuntime);
}

/** Expect a ConfigError whose message contains @p fragment. */
void
expectParseError(const std::string &text, const std::string &fragment)
{
    try {
        parseSweepSpec(text, "spec");
        FAIL() << "expected ConfigError for: " << text;
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find(fragment),
                  std::string::npos)
            << "message '" << err.what() << "' lacks '" << fragment
            << "'";
    }
}

TEST(SweepSpecParse, SchemaErrorsAreCleanAndPositioned)
{
    expectParseError("", "unexpected end of input");
    expectParseError("{", "expected a quoted object key");
    expectParseError("[1, 2]", "spec document must be a object");
    expectParseError(R"({"sweeps": [{"apps": "qft"}]})", "missing \"name\"");
    expectParseError(R"({"name": "x"})", "non-empty \"sweeps\"");
    expectParseError(R"({"name": "x", "sweeps": []})",
                     "non-empty \"sweeps\"");
    expectParseError(R"({"name": "x", "sweeps": [{}]})",
                     "missing \"apps\"");
    expectParseError(R"({"name": "a b", "sweeps": [{"apps": "qft"}]})",
                     "may only contain");
    expectParseError(
        R"({"name": "x", "sweeps": [{"apps": "nonesuch"}]})",
        "unknown application");
    expectParseError(
        R"({"name": "x", "sweeps": [{"apps": "qft", "gate": "XX"}]})",
        "unknown gate implementation");
    expectParseError(
        R"({"name": "x", "sweeps": [{"apps": "qft", "widget": 1}]})",
        "unknown grid key");
    expectParseError(
        R"({"name": "x", "sweeps": [{"apps": "qft", "capacity": 1.5}]})",
        "must be an integer");
    expectParseError(
        R"({"name": "x", "sweeps": [{"apps": "qft", "capacity": []}]})",
        "must not be empty");
    expectParseError(
        R"({"name": "x", "sweeps": [{"apps": "qft",)"
        R"( "params": {"bogus_knob": 1}}]})",
        "unknown hardware parameter");
    expectParseError(
        R"({"name": "x", "name": "y", "sweeps": [{"apps": "qft"}]})",
        "duplicate key");
    expectParseError(R"({"name": "x", "sweeps": [{"apps": "qft"}]} !)",
                     "trailing content");
    // Error messages carry origin:line:column.
    try {
        parseSweepSpec("{\n  \"name\": 7\n}", "myfile.sweep");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("myfile.sweep:2:11"),
                  std::string::npos)
            << err.what();
    }
    // ... and carry it exactly once, including on schema errors raised
    // from inside the axis appliers (a re-wrap used to double it).
    for (const char *bad :
         {R"({"name": "x", "sweeps": [{"apps": "qft",)"
          R"( "capacity": "big"}]})",
          R"({"name": "x", "sweeps": [{"apps": "qft",)"
          R"( "gate": "ZZ"}]})",
          R"({"name": "x", "sweeps": [{"apps": "nonesuch"}]})"}) {
        try {
            parseSweepSpec(bad, "once.sweep");
            FAIL() << "expected ConfigError for: " << bad;
        } catch (const ConfigError &err) {
            const std::string msg = err.what();
            const size_t first = msg.find("once.sweep:");
            ASSERT_NE(first, std::string::npos) << msg;
            EXPECT_EQ(msg.find("once.sweep:", first + 1),
                      std::string::npos)
                << "position prefix doubled: " << msg;
        }
    }
}

TEST(SweepSpecParse, DeeplyNestedInputErrorsInsteadOfOverflowing)
{
    std::string bomb(2000, '[');
    EXPECT_THROW(parseSweepSpec(bomb), ConfigError);
}

// ---------------------------------------------------------------------
// Fuzzed malformed input: parse must either succeed or throw QccdError;
// anything else (crash, hang, foreign exception) fails the test.
// ---------------------------------------------------------------------

std::string
randomValidSpecText(Rng &rng)
{
    static const char *kApps[] = {"qft", "bv", "adder", "qaoa"};
    static const char *kGates[] = {"AM1", "AM2", "PM", "FM"};
    std::ostringstream out;
    out << "{\"name\": \"fuzz" << rng.nextInt(0, 99)
        << "\", \"sweeps\": [";
    const int grids = rng.nextInt(1, 3);
    for (int g = 0; g < grids; ++g) {
        out << (g ? ", " : "") << "{\"apps\": [\""
            << kApps[rng.nextInt(0, 3)] << "\"]";
        if (rng.nextBool())
            out << ", \"capacity\": [" << rng.nextInt(2, 34) << ", "
                << rng.nextInt(2, 34) << "]";
        if (rng.nextBool())
            out << ", \"gate\": \"" << kGates[rng.nextInt(0, 3)] << "\"";
        if (rng.nextBool())
            out << ", \"params\": {\"heating_k1\": "
                << rng.nextDouble() << "}";
        if (rng.nextBool())
            out << ", \"options\": {\"decompose_runtime\": "
                << (rng.nextBool() ? "true" : "false") << "}";
        out << "}";
    }
    out << "]}";
    return out.str();
}

TEST(SweepSpecFuzz, GarbledInputNeverCrashes)
{
    Rng rng(0x5eedf00dULL);
    const std::string garbage_alphabet =
        "{}[]\",:#.-+eE0123456789abz \n\\\t";
    int parsed_ok = 0;
    for (int iter = 0; iter < 200; ++iter) {
        std::string text = randomValidSpecText(rng);
        // Mutate: truncate, splice garbage, or delete a span.
        switch (rng.nextInt(0, 3)) {
          case 0:
            text.resize(rng.nextBelow(text.size() + 1));
            break;
          case 1: {
            const int edits = rng.nextInt(1, 8);
            for (int e = 0; e < edits && !text.empty(); ++e)
                text[rng.nextBelow(text.size())] = garbage_alphabet
                    [rng.nextBelow(garbage_alphabet.size())];
            break;
          }
          case 2: {
            const size_t from = rng.nextBelow(text.size() + 1);
            const size_t len = rng.nextBelow(text.size() - from + 1);
            text.erase(from, len);
            break;
          }
          default:
            break; // keep valid — parser must accept
        }
        try {
            parseSweepSpec(text, "fuzz");
            ++parsed_ok;
        } catch (const QccdError &) {
            // Clean, typed failure: exactly what malformed input owes us.
        }
    }
    // The unmutated case (default branch) must parse, so some succeed.
    EXPECT_GT(parsed_ok, 0);
}

TEST(SweepSpecFuzz, RandomBytesNeverCrash)
{
    Rng rng(0xbadcafeULL);
    for (int iter = 0; iter < 200; ++iter) {
        std::string text;
        const int len = rng.nextInt(0, 120);
        for (int i = 0; i < len; ++i)
            text.push_back(static_cast<char>(rng.nextInt(1, 126)));
        try {
            parseSweepSpec(text, "bytes");
        } catch (const QccdError &) {
        }
    }
}

// ---------------------------------------------------------------------
// Shard arithmetic
// ---------------------------------------------------------------------

TEST(SweepShardTest, RangesPartitionAndBalance)
{
    for (size_t total : {0u, 1u, 5u, 17u, 288u}) {
        for (int count : {1, 2, 3, 7}) {
            size_t covered = 0;
            size_t min_size = total + 1;
            size_t max_size = 0;
            size_t expected_first = 0;
            for (int i = 0; i < count; ++i) {
                const auto [first, last] = shardRange(total, i, count);
                EXPECT_EQ(first, expected_first);
                EXPECT_LE(last, total);
                expected_first = last;
                covered += last - first;
                min_size = std::min(min_size, last - first);
                max_size = std::max(max_size, last - first);
            }
            EXPECT_EQ(covered, total);
            EXPECT_LE(max_size - min_size, 1u)
                << "unbalanced shards for " << total << "/" << count;
        }
    }
}

TEST(SweepShardTest, ParseShardAcceptsAndRejects)
{
    EXPECT_EQ(parseShard("0/1").index, 0);
    EXPECT_EQ(parseShard("2/5").index, 2);
    EXPECT_EQ(parseShard("2/5").count, 5);
    EXPECT_THROW(parseShard(""), ConfigError);
    EXPECT_THROW(parseShard("3"), ConfigError);
    EXPECT_THROW(parseShard("a/b"), ConfigError);
    EXPECT_THROW(parseShard("1/0"), ConfigError);
    EXPECT_THROW(parseShard("5/5"), ConfigError);
    EXPECT_THROW(parseShard("-1/4"), ConfigError);
    EXPECT_THROW(parseShard("1/4x"), ConfigError);
}

// ---------------------------------------------------------------------
// Differential: engine-evaluated spec grids vs direct runToolflow,
// bit for bit, across worker counts and shard partitions.
// ---------------------------------------------------------------------

class SweepSpecDifferential : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        dir_ = new std::string(::testing::TempDir());
        qasm::writeFile(makeBenchmarkSized("qft", 8),
                        *dir_ + "/qft8.qasm");
        qasm::writeFile(makeBenchmarkSized("adder", 9),
                        *dir_ + "/adder9.qasm");
        Circuit mixed(6, "mixed");
        mixed.h(0);
        mixed.cx(0, 5);
        mixed.cphase(1, 4, 0.375);
        mixed.swap(2, 3);
        mixed.ms(0, 3, 0.5);
        mixed.rz(5, -1.25);
        mixed.measureAll();
        qasm::writeFile(mixed, *dir_ + "/mixed.qasm");
    }

    static void TearDownTestSuite()
    {
        delete dir_;
        dir_ = nullptr;
    }

    static std::string *dir_;
};

std::string *SweepSpecDifferential::dir_ = nullptr;

/** Exact-equality comparison on everything the exporter reads. */
void
expectBitIdentical(const SweepPoint &a, const SweepPoint &b,
                   const std::string &what)
{
    EXPECT_EQ(a.application, b.application) << what;
    EXPECT_EQ(a.design.topologySpec, b.design.topologySpec) << what;
    EXPECT_EQ(a.design.trapCapacity, b.design.trapCapacity) << what;
    EXPECT_EQ(a.result.sim.makespan, b.result.sim.makespan) << what;
    EXPECT_EQ(a.result.computeOnlyTime, b.result.computeOnlyTime)
        << what;
    EXPECT_EQ(a.result.sim.logFidelity, b.result.sim.logFidelity)
        << what;
    EXPECT_EQ(a.result.sim.maxChainEnergy, b.result.sim.maxChainEnergy)
        << what;
    EXPECT_EQ(a.result.sim.counts.algorithmMs,
              b.result.sim.counts.algorithmMs)
        << what;
    EXPECT_EQ(a.result.sim.counts.reorderMs,
              b.result.sim.counts.reorderMs)
        << what;
    EXPECT_EQ(a.result.sim.counts.shuttles, b.result.sim.counts.shuttles)
        << what;
    EXPECT_EQ(a.result.sim.counts.evictions,
              b.result.sim.counts.evictions)
        << what;
    EXPECT_EQ(sweepCsvRow(a), sweepCsvRow(b)) << what;
}

std::string
randomGridText(Rng &rng)
{
    static const char *kQasm[] = {"qft8.qasm", "adder9.qasm",
                                  "mixed.qasm"};
    static const char *kTopos[] = {"linear:2", "linear:3", "linear:4",
                                   "grid:2x2", "grid:2x3"};
    static const char *kGates[] = {"AM1", "AM2", "PM", "FM"};
    static const char *kParams[] = {
        R"({"heating_k1": 0.2, "heating_k2": 0.02})",
        R"({"gamma_per_s": 2.0, "kappa": 1e-5})",
        R"({"recool_factor": 0.5})",
        R"({"move_per_segment_us": 7.5, "split_us": 120.0})",
        R"({"one_qubit_us": 6.25})",
    };
    std::ostringstream out;
    out << "{\"name\": \"diff\", \"sweeps\": [{";
    out << "\"apps\": [";
    const int napps = rng.nextInt(1, 2);
    for (int a = 0; a < napps; ++a)
        out << (a ? ", " : "") << "\"qasm:" << kQasm[rng.nextInt(0, 2)]
            << "\"";
    out << "]";
    out << ", \"topology\": \"" << kTopos[rng.nextInt(0, 4)] << "\"";
    out << ", \"capacity\": [";
    const int ncaps = rng.nextInt(1, 3);
    for (int c = 0; c < ncaps; ++c)
        out << (c ? ", " : "") << rng.nextInt(10, 24);
    out << "]";
    if (rng.nextBool()) {
        out << ", \"gate\": [\"" << kGates[rng.nextInt(0, 3)] << "\"";
        if (rng.nextBool())
            out << ", \"" << kGates[rng.nextInt(0, 3)] << "\"";
        out << "]";
    }
    if (rng.nextBool())
        out << ", \"reorder\": [\"GS\", \"IS\"]";
    if (rng.nextBool())
        out << ", \"buffer\": " << rng.nextInt(0, 3);
    if (rng.nextBool())
        out << ", \"policy\": \""
            << (rng.nextBool() ? "balanced" : "packed") << "\"";
    if (rng.nextBool())
        out << ", \"params\": " << kParams[rng.nextInt(0, 4)];
    if (rng.nextBool())
        out << ", \"options\": {\"decompose_runtime\": true}";
    out << "}]}";
    return out.str();
}

/** Run @p points through a fresh engine/runner with @p jobs workers. */
std::vector<SweepPoint>
engineRows(const std::vector<PlannedPoint> &points, int jobs,
           size_t skip = 0, size_t batch_size = 3)
{
    SweepEngine engine(jobs);
    SweepSpecRunner runner(engine);
    std::vector<SweepPoint> rows;
    runner.run(points, skip,
               [&](const SweepPoint &p) { rows.push_back(p); },
               batch_size);
    return rows;
}

TEST_F(SweepSpecDifferential, EngineMatchesDirectAndShardsCompose)
{
    Rng rng(0xd1ffULL);
    for (int grid = 0; grid < 30; ++grid) {
        const std::string text = randomGridText(rng);
        const SweepSpec spec = parseSweepSpec(text, "diff", *dir_);
        ASSERT_FALSE(spec.points.empty()) << text;

        // Direct path: lower and evaluate every point independently,
        // with no engine, no caches, no batching.
        std::vector<SweepPoint> direct;
        for (const PlannedPoint &point : spec.points) {
            const Circuit circuit =
                point.qasmPath.empty()
                    ? makeBenchmark(point.application)
                    : qasm::parseFile(point.qasmPath);
            SweepPoint row;
            row.application = point.application;
            row.design = point.design;
            row.result =
                runToolflow(circuit, point.design, point.options);
            direct.push_back(std::move(row));
        }

        const std::vector<SweepPoint> serial =
            engineRows(spec.points, 1);
        const std::vector<SweepPoint> parallel =
            engineRows(spec.points, 4);
        ASSERT_EQ(serial.size(), direct.size()) << text;
        ASSERT_EQ(parallel.size(), direct.size()) << text;
        for (size_t i = 0; i < direct.size(); ++i) {
            const std::string what = "grid " + std::to_string(grid) +
                                     " point " + std::to_string(i) +
                                     "\n" + text;
            expectBitIdentical(serial[i], direct[i], what);
            expectBitIdentical(parallel[i], direct[i], what);
        }

        // Shard union 0/2 then 1/2 must equal the unsharded run.
        const auto [a_first, a_last] =
            shardRange(spec.points.size(), 0, 2);
        const auto [b_first, b_last] =
            shardRange(spec.points.size(), 1, 2);
        EXPECT_EQ(a_first, 0u);
        EXPECT_EQ(a_last, b_first);
        EXPECT_EQ(b_last, spec.points.size());
        std::vector<PlannedPoint> shard_a(
            spec.points.begin(),
            spec.points.begin() + static_cast<long>(a_last));
        std::vector<PlannedPoint> shard_b(
            spec.points.begin() + static_cast<long>(b_first),
            spec.points.end());
        std::vector<SweepPoint> unionRows = engineRows(shard_a, 2);
        for (const SweepPoint &p : engineRows(shard_b, 2))
            unionRows.push_back(p);
        ASSERT_EQ(unionRows.size(), direct.size()) << text;
        for (size_t i = 0; i < direct.size(); ++i)
            expectBitIdentical(unionRows[i], direct[i],
                               "shard union point " +
                                   std::to_string(i) + "\n" + text);
    }
}

TEST_F(SweepSpecDifferential, BuiltinAppsMatchDirectToo)
{
    // One grid over a paper-scale builtin exercises the engine's
    // nativeBenchmark cache against direct in-place lowering.
    const SweepSpec spec = parseSweepSpec(R"({
        "name": "builtin",
        "sweeps": [{
            "apps": ["bv"],
            "capacity": [14, 22],
            "gate": ["FM", "PM"]
        }]
    })");
    std::vector<SweepPoint> direct;
    for (const PlannedPoint &point : spec.points) {
        SweepPoint row;
        row.application = point.application;
        row.design = point.design;
        row.result = runToolflow(makeBenchmark(point.application),
                                 point.design, point.options);
        direct.push_back(std::move(row));
    }
    const std::vector<SweepPoint> engine = engineRows(spec.points, 4);
    ASSERT_EQ(engine.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i)
        expectBitIdentical(engine[i], direct[i],
                           "builtin point " + std::to_string(i));
}

TEST_F(SweepSpecDifferential, ResumeSkipEmitsTheSuffix)
{
    const SweepSpec spec = parseSweepSpec(R"({
        "name": "resume",
        "sweeps": [{"apps": ["qasm:qft8.qasm"], "capacity": [10, 12, 14]}]
    })", "resume", *dir_);
    const std::vector<SweepPoint> all = engineRows(spec.points, 1);
    const std::vector<SweepPoint> tail =
        engineRows(spec.points, 1, /*skip=*/2);
    ASSERT_EQ(all.size(), 3u);
    ASSERT_EQ(tail.size(), 1u);
    expectBitIdentical(tail[0], all[2], "resume suffix");
}

} // namespace
} // namespace qccd
