/** @file Unit tests for HardwareParams aggregation and validation. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/params.hpp"

namespace qccd
{
namespace
{

TEST(Params, DefaultsValidate)
{
    HardwareParams hw;
    EXPECT_NO_THROW(hw.validate());
    EXPECT_EQ(hw.gateImpl, GateImpl::FM);
    EXPECT_EQ(hw.reorder, ReorderMethod::GS);
    EXPECT_EQ(hw.bufferSlots, 2);
}

TEST(Params, ModelsInheritConstants)
{
    HardwareParams hw;
    hw.gateImpl = GateImpl::AM2;
    hw.oneQubitUs = 7.0;
    hw.heatingK1 = 0.2;
    hw.gammaPerS = 3.0;

    EXPECT_EQ(hw.gateTimeModel().impl(), GateImpl::AM2);
    EXPECT_DOUBLE_EQ(hw.gateTimeModel().oneQubit(), 7.0);
    EXPECT_DOUBLE_EQ(hw.heatingModel().k1(), 0.2);
    EXPECT_DOUBLE_EQ(hw.fidelityModel().gammaPerSecond(), 3.0);
}

TEST(Params, InvalidValuesRejected)
{
    HardwareParams hw;
    hw.bufferSlots = -1;
    EXPECT_THROW(hw.validate(), ConfigError);

    hw = HardwareParams{};
    hw.recoolFactor = 0.0;
    EXPECT_THROW(hw.validate(), ConfigError);

    hw = HardwareParams{};
    hw.recoolFactor = 1.5;
    EXPECT_THROW(hw.validate(), ConfigError);

    hw = HardwareParams{};
    hw.shuttle.merge = -5;
    EXPECT_THROW(hw.validate(), ConfigError);

    hw = HardwareParams{};
    hw.kappa = -1;
    EXPECT_THROW(hw.validate(), ConfigError);
}

TEST(Params, ReorderNamesRoundTrip)
{
    EXPECT_EQ(reorderMethodFromName("GS"), ReorderMethod::GS);
    EXPECT_EQ(reorderMethodFromName("IS"), ReorderMethod::IS);
    EXPECT_EQ(reorderMethodName(ReorderMethod::GS), "GS");
    EXPECT_EQ(reorderMethodName(ReorderMethod::IS), "IS");
    EXPECT_THROW(reorderMethodFromName("XX"), ConfigError);
}

} // namespace
} // namespace qccd
