/** @file Unit + property tests for the Table II workload generators. */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "circuit/stats.hpp"
#include "common/error.hpp"

namespace qccd
{
namespace
{

TEST(Benchgen, QftShape)
{
    const Circuit c = makeQft(8);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 8);
    EXPECT_EQ(s.twoQubitGates, 8 * 7 / 2); // one CPhase per pair
    EXPECT_EQ(s.measurements, 8);
    // Native lowering doubles the count.
    EXPECT_EQ(computeStats(decomposeToNative(c)).twoQubitGates, 8 * 7);
}

TEST(Benchgen, BvFullSecretCounts)
{
    const Circuit c = makeBv(16);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 17);
    EXPECT_EQ(s.twoQubitGates, 16); // one CX per secret bit
    EXPECT_EQ(s.measurements, 16);  // data qubits only
}

TEST(Benchgen, BvRandomSecretIsSparser)
{
    const Circuit full = makeBv(32, 7, true);
    const Circuit rand = makeBv(32, 7, false);
    EXPECT_LT(computeStats(rand).twoQubitGates,
              computeStats(full).twoQubitGates);
    // Deterministic for a fixed seed.
    const Circuit rand2 = makeBv(32, 7, false);
    EXPECT_EQ(computeStats(rand).twoQubitGates,
              computeStats(rand2).twoQubitGates);
}

TEST(Benchgen, AdderShape)
{
    const Circuit c = makeAdder(8);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 17); // 2*8 + carry
    // Cuccaro: 8 MAJ + 8 UMA blocks, each 2 CX + 1 Toffoli (6 CX).
    EXPECT_EQ(s.twoQubitGates, 16 * 8);
    EXPECT_EQ(s.measurements, 8);
}

TEST(Benchgen, QaoaShape)
{
    const Circuit c = makeQaoa(16, 5);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 16);
    EXPECT_EQ(s.twoQubitGates, 5 * 15 * 2); // layers * (n-1) ZZ * 2 CX
    EXPECT_EQ(s.maxInteractionDistance, 1); // strictly nearest neighbour
}

TEST(Benchgen, SupremacyShape)
{
    const Circuit c = makeSupremacy(4, 4, 60);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 16);
    EXPECT_EQ(s.twoQubitGates, 60);
    // Grid-NN pairs at linear distance 1 (horizontal) or 4 (vertical).
    for (int d = 0; d < s.numQubits; ++d) {
        if (d != 1 && d != 4) {
            EXPECT_EQ(s.interactionDistance[d], 0) << "distance " << d;
        }
    }
}

TEST(Benchgen, SupremacyDeterministicPerSeed)
{
    const Circuit a = makeSupremacy(4, 4, 50, 5);
    const Circuit b = makeSupremacy(4, 4, 50, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.gate(i).op, b.gate(i).op);
        EXPECT_EQ(a.gate(i).q0, b.gate(i).q0);
    }
}

TEST(Benchgen, SquareRootShape)
{
    const Circuit c = makeSquareRoot(10, 1);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 2 * 10); // search + (search-2) scratch + 2
    EXPECT_GT(s.twoQubitGates, 100);
    // Ladder couples search qubits to ancillas across the register.
    EXPECT_GE(s.maxInteractionDistance, 10);
}

TEST(Benchgen, PaperScaleTableTwo)
{
    // Table II targets; generated counts recorded in EXPERIMENTS.md.
    const CircuitStats sup = computeStats(makeBenchmark("supremacy"));
    EXPECT_EQ(sup.numQubits, 64);
    EXPECT_EQ(sup.twoQubitGates, 560);

    const CircuitStats qaoa = computeStats(makeBenchmark("qaoa"));
    EXPECT_EQ(qaoa.numQubits, 64);
    EXPECT_EQ(qaoa.twoQubitGates, 1260);

    const CircuitStats sq = computeStats(makeBenchmark("squareroot"));
    EXPECT_EQ(sq.numQubits, 78);

    const CircuitStats qft = computeStats(
        decomposeToNative(makeBenchmark("qft")));
    EXPECT_EQ(qft.numQubits, 64);
    EXPECT_EQ(qft.twoQubitGates, 4032);

    const CircuitStats adder = computeStats(makeBenchmark("adder"));
    EXPECT_EQ(adder.numQubits, 63);

    const CircuitStats bv = computeStats(makeBenchmark("bv"));
    EXPECT_EQ(bv.numQubits, 64);
    EXPECT_EQ(bv.twoQubitGates, 63);
}

TEST(Benchgen, RegistryListsTableTwoPlusExtensions)
{
    // Six Table II applications plus the GHZ and VQE extensions.
    const auto list = benchmarkList();
    EXPECT_EQ(list.size(), 8u);
    for (const BenchmarkSpec &spec : list)
        EXPECT_NO_THROW(makeBenchmarkSized(spec.name, 12));
    EXPECT_THROW(makeBenchmark("nope"), ConfigError);
    EXPECT_THROW(makeBenchmarkSized("nope", 12), ConfigError);
}

TEST(Benchgen, InvalidArgumentsRejected)
{
    EXPECT_THROW(makeQft(0), ConfigError);
    EXPECT_THROW(makeBv(0), ConfigError);
    EXPECT_THROW(makeAdder(0), ConfigError);
    EXPECT_THROW(makeQaoa(1), ConfigError);
    EXPECT_THROW(makeQaoa(4, 0), ConfigError);
    EXPECT_THROW(makeSupremacy(1, 4), ConfigError);
    EXPECT_THROW(makeSupremacy(4, 4, 0), ConfigError);
    EXPECT_THROW(makeSquareRoot(2), ConfigError);
    EXPECT_THROW(makeSquareRoot(5, 0), ConfigError);
}

/** Property: every generator emits a valid circuit at many sizes. */
class BenchgenSizes
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(BenchgenSizes, GeneratesValidCircuits)
{
    const auto &[name, size] = GetParam();
    const Circuit c = makeBenchmarkSized(name, size);
    EXPECT_GE(c.numQubits(), 4);
    const Circuit native = decomposeToNative(c);
    for (const Gate &g : native.gates())
        EXPECT_TRUE(isNative(g.op));
    EXPECT_GT(computeStats(native).twoQubitGates, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BenchgenSizes,
    ::testing::Combine(::testing::Values("qft", "bv", "adder", "qaoa",
                                         "supremacy", "squareroot"),
                       ::testing::Values(8, 12, 16, 24)));

} // namespace
} // namespace qccd
