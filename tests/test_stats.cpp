/** @file Unit tests for static circuit statistics. */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "circuit/stats.hpp"

namespace qccd
{
namespace
{

TEST(Stats, CountsByClass)
{
    Circuit c(4);
    c.h(0);
    c.h(1);
    c.cx(0, 1);
    c.cx(2, 3);
    c.measure(0);

    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 4);
    EXPECT_EQ(s.oneQubitGates, 2);
    EXPECT_EQ(s.twoQubitGates, 2);
    EXPECT_EQ(s.measurements, 1);
}

TEST(Stats, DepthTracksCriticalPath)
{
    Circuit c(3);
    c.h(0);        // level 1 on q0
    c.cx(0, 1);    // level 2 on q0,q1
    c.cx(1, 2);    // level 3 on q1,q2
    c.h(2);        // level 4 on q2
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.depth, 4);
}

TEST(Stats, ParallelGatesShareDepth)
{
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    EXPECT_EQ(computeStats(c).depth, 1);
}

TEST(Stats, InteractionDistances)
{
    Circuit c(8);
    c.cx(0, 1);
    c.cx(0, 7);
    c.cx(2, 4);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.interactionDistance[1], 1);
    EXPECT_EQ(s.interactionDistance[7], 1);
    EXPECT_EQ(s.interactionDistance[2], 1);
    EXPECT_EQ(s.maxInteractionDistance, 7);
    EXPECT_NEAR(s.meanInteractionDistance, (1 + 7 + 2) / 3.0, 1e-12);
}

TEST(Stats, BarriersIgnored)
{
    Circuit c(2);
    Gate b;
    b.op = Op::Barrier;
    c.add(b);
    c.cx(0, 1);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.twoQubitGates, 1);
    EXPECT_EQ(s.depth, 1);
}

TEST(Stats, PatternLabels)
{
    // Nearest neighbour: QAOA's line ansatz.
    EXPECT_EQ(computeStats(makeQaoa(16, 2)).patternLabel(),
              "nearest neighbor");
    // All distances: the QFT couples every pair.
    EXPECT_EQ(computeStats(makeQft(16)).patternLabel(), "all distances");
    // BV couples every data qubit to the far ancilla.
    const std::string bv = computeStats(makeBv(16)).patternLabel();
    EXPECT_TRUE(bv == "short and long-range" || bv == "all distances")
        << bv;
    // Adder stays short range by construction.
    EXPECT_EQ(computeStats(makeAdder(8)).patternLabel(), "short range");
}

TEST(Stats, NoTwoQubitGatesLabel)
{
    Circuit c(2);
    c.h(0);
    EXPECT_EQ(computeStats(c).patternLabel(), "no two-qubit gates");
}

} // namespace
} // namespace qccd
