/** @file Unit tests for the text table renderer and number formatting. */

#include <gtest/gtest.h>

#include "common/table.hpp"

namespace qccd
{
namespace
{

TEST(TextTable, RendersHeaderRule)
{
    TextTable table;
    table.addRow({"a", "bb"});
    table.addRow({"ccc", "d"});
    const std::string text = table.render();
    EXPECT_NE(text.find("a"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_NE(text.find("ccc"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.addRow({"x", "y"});
    table.addRow({"long-cell", "z"});
    const std::string text = table.render();
    // Both data rows end with the second column; the first column pads
    // to the widest cell, so "y" cannot directly follow "x".
    EXPECT_NE(text.find("x         "), std::string::npos);
}

TEST(TextTable, EmptyTableRendersEmpty)
{
    TextTable table;
    EXPECT_TRUE(table.render().empty());
    EXPECT_EQ(table.rowCount(), 0u);
}

TEST(TextTable, RaggedRowsSupported)
{
    TextTable table;
    table.addRow({"h1", "h2", "h3"});
    table.addRow({"only-one"});
    EXPECT_NO_THROW(table.render());
}

TEST(Format, Significant)
{
    EXPECT_EQ(formatSig(1234.5678, 4), "1235");
    EXPECT_EQ(formatSig(0.00012345, 3), "0.000123");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
}

TEST(Format, Scientific)
{
    EXPECT_EQ(formatSci(12345.0, 2), "1.23e+04");
    EXPECT_EQ(formatSci(0.5, 1), "5.0e-01");
}

} // namespace
} // namespace qccd
