/**
 * @file
 * Tests for the qccd_lint artifact analyzer (core/lint.hpp): every
 * documented diagnostic code is pinned against a minimal fixture, the
 * cross-artifact checks are exercised through lintArtifacts over a
 * temp tree, and fuzzed/mutated artifacts must never make the linter
 * throw — diagnostics are its only failure channel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "core/export.hpp"
#include "core/lint.hpp"
#include "core/sweep_spec.hpp"

namespace qccd
{
namespace
{

LintReport
lintSpec(const std::string &text)
{
    LintReport report;
    lintSweepText(text, "spec", "", report);
    return report;
}

/** The first diagnostic carrying @p code, or nullptr. */
const LintDiagnostic *
diag(const LintReport &report, const std::string &code)
{
    for (const LintDiagnostic &d : report.diagnostics)
        if (d.code == code)
            return &d;
    return nullptr;
}

::testing::AssertionResult
hasCode(const LintReport &report, const std::string &code)
{
    if (diag(report, code) != nullptr)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "no diagnostic [" << code << "] in:\n"
           << report.toString();
}

// ---------------------------------------------------------------------
// Pinned diagnostics: each documented code fires on a minimal fixture.
// ---------------------------------------------------------------------

TEST(LintSweep, ParseErrorIsPositionedDiagnostic)
{
    const LintReport report = lintSpec("{\"name\": \"x\",\n  !}");
    ASSERT_TRUE(hasCode(report, "parse"));
    const LintDiagnostic &d = *diag(report, "parse");
    EXPECT_EQ(d.origin, "spec");
    EXPECT_EQ(d.line, 2);
    EXPECT_EQ(d.column, 3);
    EXPECT_FALSE(report.clean());
}

TEST(LintSweep, UnknownKeysAtBothLevels)
{
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"frobnicate\": 1,\n"
        " \"sweeps\": [{\"apps\": [\"qft\"], \"colour\": 3}]}");
    ASSERT_TRUE(hasCode(report, "unknown-key"));
    // Both the spec-level and the grid-level unknown key are reported
    // in one pass — the linter does not stop at the first finding.
    size_t unknown = 0;
    for (const LintDiagnostic &d : report.diagnostics)
        unknown += d.code == "unknown-key" ? 1 : 0;
    EXPECT_EQ(unknown, 2u);
}

TEST(LintSweep, UnknownOptionAndParam)
{
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"sweeps\": [{\"apps\": [\"qft\"],"
        " \"options\": {\"turbo\": true},"
        " \"params\": {\"warp_factor\": 9}}]}");
    EXPECT_TRUE(hasCode(report, "unknown-option"));
    EXPECT_TRUE(hasCode(report, "unknown-param"));
}

TEST(LintSweep, BadValueKinds)
{
    const LintReport report = lintSpec(
        "{\"name\": 7, \"sweeps\": [{\"apps\": [\"qft\"],"
        " \"capacity\": \"big\"}]}");
    EXPECT_TRUE(hasCode(report, "bad-kind"));
}

TEST(LintSweep, EmptyAxisIsUnreachable)
{
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"sweeps\": [{\"apps\": [\"qft\"],"
        " \"capacity\": []}]}");
    ASSERT_TRUE(hasCode(report, "empty-axis"));
    EXPECT_NE(diag(report, "empty-axis")->message.find("cross-product"),
              std::string::npos);
}

TEST(LintSweep, DuplicateAxisValueIsWarningOnly)
{
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"sweeps\": [{\"apps\": [\"qft\"],"
        " \"capacity\": [14, 18, 14]}]}");
    ASSERT_TRUE(hasCode(report, "duplicate-axis-value"));
    EXPECT_EQ(diag(report, "duplicate-axis-value")->severity,
              LintSeverity::Warning);
    EXPECT_TRUE(report.clean()) << report.toString();
}

TEST(LintSweep, UnknownNamesAcrossAxes)
{
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"sweeps\": [{\"apps\": [\"nonesuch\"],"
        " \"gate\": \"ZZ\", \"reorder\": \"XY\","
        " \"policy\": \"fancy\"}]}");
    EXPECT_TRUE(hasCode(report, "unknown-app"));
    EXPECT_TRUE(hasCode(report, "unknown-gate"));
    EXPECT_TRUE(hasCode(report, "unknown-reorder"));
    EXPECT_TRUE(hasCode(report, "unknown-policy"));
    EXPECT_EQ(report.errorCount(), 4u);
}

TEST(LintSweep, BadTopologyAndMissingFiles)
{
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"sweeps\": ["
        "{\"apps\": [\"qft\"], \"topology\": \"hexagon:3\"},"
        "{\"apps\": [\"qasm:/nonexistent/f.qasm\"],"
        " \"topology\": \"topo:/nonexistent/d.topo\"}]}");
    EXPECT_TRUE(hasCode(report, "bad-topology"));
    size_t missing = 0;
    for (const LintDiagnostic &d : report.diagnostics)
        missing += d.code == "missing-file" ? 1 : 0;
    EXPECT_EQ(missing, 2u) << report.toString();
}

TEST(LintSweep, CapacityAndBufferBounds)
{
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"sweeps\": [{\"apps\": [\"qft\"],"
        " \"capacity\": 1, \"buffer\": -1}]}");
    EXPECT_TRUE(hasCode(report, "bad-capacity"));
    EXPECT_TRUE(hasCode(report, "bad-buffer"));
}

TEST(LintSweep, GridPastExpansionCapIsFlagged)
{
    // 1100 x 1000 > kMaxSweepPoints (2^20): flagged statically, no
    // expansion attempted.
    std::ostringstream spec;
    spec << "{\"name\": \"x\", \"sweeps\": [{\"apps\": [\"qft\"],"
            " \"capacity\": [";
    for (int i = 0; i < 1100; ++i)
        spec << (i ? "," : "") << 2 + i;
    spec << "], \"buffer\": [";
    for (int i = 0; i < 1000; ++i)
        spec << (i ? "," : "") << i;
    spec << "]}]}";
    EXPECT_TRUE(hasCode(lintSpec(spec.str()), "grid-too-large"));
}

TEST(LintSweep, FitAnalysisAgainstDeviceCapacity)
{
    // qft is 64 qubits. linear:2 at capacity 4 holds 8 ions: error.
    // linear:6 at capacity 12 holds 72, but 6 traps x 2 buffer slots
    // leaves 60: fits only by shrinking the buffer — warning.
    const LintReport report = lintSpec(
        "{\"name\": \"x\", \"sweeps\": ["
        "{\"apps\": [\"qft\"], \"topology\": \"linear:2\","
        " \"capacity\": 4},"
        "{\"apps\": [\"qft\"], \"topology\": \"linear:6\","
        " \"capacity\": 12}]}");
    ASSERT_TRUE(hasCode(report, "app-does-not-fit"));
    ASSERT_TRUE(hasCode(report, "tight-fit"));
    EXPECT_EQ(diag(report, "tight-fit")->severity,
              LintSeverity::Warning);
    EXPECT_EQ(report.errorCount(), 1u) << report.toString();
}

TEST(LintSweep, CleanSpecExpandsForCrossChecks)
{
    SweepLintSummary summary;
    LintReport report;
    lintSweepText("{\"name\": \"tiny\", \"sweeps\": [{"
                  "\"apps\": [\"qft\", \"bv\"],"
                  " \"capacity\": [14, 18, 22]}]}",
                  "spec", "", report, &summary);
    EXPECT_TRUE(report.clean()) << report.toString();
    EXPECT_TRUE(summary.expanded);
    EXPECT_EQ(summary.name, "tiny");
    EXPECT_EQ(summary.points, 6u);
}

TEST(LintTopo, ParseAndGraphErrors)
{
    LintReport report;
    lintTopoText("trap a\ntrap a\n", "dev.topo", report);
    ASSERT_TRUE(hasCode(report, "topo-parse"));
    EXPECT_EQ(diag(report, "topo-parse")->line, 2);

    LintReport graph;
    lintTopoText("trap a\ntrap b\n", "dev.topo", graph);
    EXPECT_TRUE(hasCode(graph, "topo-graph"));
}

TEST(LintGolden, HeaderRowAndNumberChecks)
{
    const std::string header = sweepCsvHeader();

    LintReport drift;
    lintGoldenText("app,time\nqft,1\n", "g.csv", drift);
    EXPECT_TRUE(hasCode(drift, "golden-header"));

    LintReport empty;
    lintGoldenText(header + "\n", "g.csv", empty);
    EXPECT_TRUE(hasCode(empty, "golden-empty"));

    LintReport cols;
    lintGoldenText(header + "\nqft,linear:6,22\n", "g.csv", cols);
    EXPECT_TRUE(hasCode(cols, "golden-columns"));

    // A full-width row whose capacity field is not a number.
    std::string row = "qft,linear:6,many";
    for (int i = 3; i < 17; ++i)
        row += ",1";
    LintReport num;
    size_t rows = 0;
    lintGoldenText(header + "\n" + row + "\n", "g.csv", num, &rows);
    ASSERT_TRUE(hasCode(num, "golden-number"));
    EXPECT_EQ(rows, 1u);
}

// ---------------------------------------------------------------------
// Cross-artifact checks through lintArtifacts over a temp tree.
// ---------------------------------------------------------------------

class LintTreeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = std::filesystem::temp_directory_path() /
                ("qccd_lint_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + std::to_string(reinterpret_cast<uintptr_t>(this)));
        std::filesystem::create_directories(root_);
    }

    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(root_, ec);
    }

    void write(const std::string &rel, const std::string &text)
    {
        std::ofstream out(root_ / rel);
        out << text;
    }

    std::string path(const std::string &rel)
    {
        return (root_ / rel).string();
    }

    std::filesystem::path root_;
};

TEST_F(LintTreeTest, CoverageAndRowCountChecks)
{
    const std::string header = sweepCsvHeader();
    std::string row = "qft,linear:6,22";
    for (int i = 3; i < 17; ++i)
        row += ",1";

    // covered: 2 points, golden has 2 rows -> clean.
    write("covered.sweep",
          "{\"name\": \"covered\", \"sweeps\": [{"
          "\"apps\": [\"qft\"], \"capacity\": [14, 18]}]}");
    write("covered.csv", header + "\n" + row + "\n" + row + "\n");
    // uncovered: no golden at all -> missing-golden.
    write("uncovered.sweep",
          "{\"name\": \"uncovered\", \"sweeps\": [{"
          "\"apps\": [\"qft\"]}]}");
    // short: golden exists but has 1 row for 2 points -> golden-rows.
    write("short.sweep",
          "{\"name\": \"short\", \"sweeps\": [{"
          "\"apps\": [\"qft\"], \"capacity\": [14, 18]}]}");
    write("short.csv", header + "\n" + row + "\n");
    // orphan golden no spec produces -> warning only.
    write("orphan.csv", header + "\n" + row + "\n");

    const LintReport report = lintArtifacts({root_.string()});
    EXPECT_TRUE(hasCode(report, "missing-golden"));
    EXPECT_TRUE(hasCode(report, "golden-rows"));
    ASSERT_TRUE(hasCode(report, "golden-orphan"));
    EXPECT_EQ(diag(report, "golden-orphan")->severity,
              LintSeverity::Warning);
    EXPECT_EQ(report.errorCount(), 2u) << report.toString();
    EXPECT_EQ(report.filesChecked, 6);
}

TEST_F(LintTreeTest, NonexistentPathIsDiagnosticNotException)
{
    const LintReport report = lintArtifacts({path("nope.sweep")});
    EXPECT_TRUE(hasCode(report, "missing-file"));
    EXPECT_FALSE(report.clean());
}

TEST_F(LintTreeTest, CommittedTreeArtifactsAreLintClean)
{
    // The repo's own examples/ and golden/ must stay error-free; this
    // is the same gate CI runs via the qccd_lint binary.
    const std::string source_dir = QCCD_LINT_TEST_SOURCE_DIR;
    const std::string examples = source_dir + "/examples";
    const std::string golden = source_dir + "/golden";
    ASSERT_TRUE(std::filesystem::exists(examples));
    ASSERT_TRUE(std::filesystem::exists(golden));
    const LintReport report = lintArtifacts({examples, golden});
    EXPECT_TRUE(report.clean()) << report.toString();
    EXPECT_GE(report.filesChecked, 20);
}

// ---------------------------------------------------------------------
// Fuzz: mutated artifacts must never make the linter throw.
// ---------------------------------------------------------------------

std::string
randomSpecText(Rng &rng)
{
    static const char *kApps[] = {"qft", "bv", "adder", "nonesuch"};
    std::ostringstream out;
    out << "{\"name\": \"fuzz" << rng.nextInt(0, 99)
        << "\", \"sweeps\": [{\"apps\": [\""
        << kApps[rng.nextInt(0, 3)] << "\"]";
    if (rng.nextBool())
        out << ", \"capacity\": [" << rng.nextInt(-2, 30) << "]";
    if (rng.nextBool())
        out << ", \"topology\": \"linear:" << rng.nextInt(0, 8) << "\"";
    if (rng.nextBool())
        out << ", \"params\": {\"heating_k1\": " << rng.nextDouble()
            << "}";
    out << "}]}";
    return out.str();
}

void
mutate(std::string &text, Rng &rng)
{
    const std::string alphabet = "{}[]\",:#.-+eE0123456789abz \n\\\t";
    switch (rng.nextInt(0, 3)) {
      case 0:
        text.resize(rng.nextBelow(text.size() + 1));
        break;
      case 1: {
        const int edits = rng.nextInt(1, 8);
        for (int e = 0; e < edits && !text.empty(); ++e)
            text[rng.nextBelow(text.size())] =
                alphabet[rng.nextBelow(alphabet.size())];
        break;
      }
      case 2: {
        const size_t from = rng.nextBelow(text.size() + 1);
        text.erase(from, rng.nextBelow(text.size() - from + 1));
        break;
      }
      default:
        break; // keep as generated
    }
}

TEST(LintFuzz, MutatedSpecsNeverCrashTheLinter)
{
    Rng rng(0x11177f00dULL);
    int clean = 0;
    for (int iter = 0; iter < 400; ++iter) {
        std::string text = randomSpecText(rng);
        mutate(text, rng);
        LintReport report;
        SweepLintSummary summary;
        // Must not throw; ASSERT_NO_THROW would hide which iteration.
        try {
            lintSweepText(text, "fuzz", "", report, &summary);
        } catch (...) {
            FAIL() << "linter threw on iteration " << iter
                   << " input:\n" << text;
        }
        clean += report.clean() ? 1 : 0;
        // A well-formed report: counts sum, no code is empty.
        EXPECT_EQ(report.errorCount() + report.warningCount(),
                  report.diagnostics.size());
        for (const LintDiagnostic &d : report.diagnostics)
            EXPECT_FALSE(d.code.empty());
    }
    // Unmutated iterations (the default branch) stay clean for valid
    // app names, so both outcomes are exercised.
    EXPECT_GT(clean, 0);
}

TEST(LintFuzz, MutatedTopoAndGoldenNeverCrashTheLinter)
{
    Rng rng(0x70b0f00dULL);
    for (int iter = 0; iter < 400; ++iter) {
        std::string topo = "name dev\ntrap a 14\ntrap b\njunction j\n"
                           "edge a j\nedge j b 2\n";
        std::string golden = sweepCsvHeader() + "\nqft,linear:6,22";
        for (int i = 3; i < 17; ++i)
            golden += ",1";
        golden += "\n";
        mutate(topo, rng);
        mutate(golden, rng);
        LintReport report;
        try {
            lintTopoText(topo, "fuzz.topo", report);
            lintGoldenText(golden, "fuzz.csv", report);
        } catch (...) {
            FAIL() << "linter threw on iteration " << iter;
        }
    }
}

} // namespace
} // namespace qccd
