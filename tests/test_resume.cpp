/**
 * @file
 * Tests for crash-safe resume (core/resume.hpp): torn-line healing is
 * atomic and lossless, and every recovered row — data CSV and .errors
 * sidecar alike — is verified against the shard's planned points, so a
 * header-compatible checkpoint from the wrong sweep is refused instead
 * of silently merged.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "core/export.hpp"
#include "core/resume.hpp"
#include "core/sweep_spec.hpp"

namespace qccd
{
namespace
{

std::string
pathIn(const std::string &name)
{
    return ::testing::TempDir() + "resume_" + name;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Four points: qft/bv at capacities 14 and 18 (apps vary slowest). */
std::vector<PlannedPoint>
plannedPoints()
{
    return parseSweepSpec(R"({
        "name": "resume",
        "sweeps": [{"apps": ["qft", "bv"], "capacity": [14, 18]}]
    })").points;
}

/** A data row whose identifying prefix matches @p app/@p capacity; the
 *  metric columns are irrelevant to resume validation. */
std::string
row(const std::string &app, int capacity)
{
    return app + ",linear:6," + std::to_string(capacity) +
           ",FM,GS,0,0,0,0,0,0,0,0,0,0,0,0";
}

std::string
sidecarRow(size_t index, const std::string &app, int capacity)
{
    return std::to_string(index) + "," + app + ",linear:6," +
           std::to_string(capacity) + ",FM,GS,error,\"boom\"";
}

TEST(LoadHealedLines, MissingFileIsEmptyNotAnError)
{
    bool existed = true;
    EXPECT_EQ(loadHealedLines(pathIn("missing.csv"), &existed), "");
    EXPECT_FALSE(existed);
}

TEST(LoadHealedLines, TornFinalLineIsDroppedAndTheFileRewritten)
{
    const std::string path = pathIn("torn.csv");
    writeFile(path, "header\nrow1\npartial-ro");
    bool existed = false;
    const std::string healed = loadHealedLines(path, &existed);
    EXPECT_TRUE(existed);
    EXPECT_EQ(healed, "header\nrow1\n");
    // The heal is durable and atomic: the rewritten file matches what
    // was returned, and no temp file is left behind.
    EXPECT_EQ(readFile(path), "header\nrow1\n");
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

TEST(LoadHealedLines, CompleteFileIsLeftUntouched)
{
    const std::string path = pathIn("whole.csv");
    writeFile(path, "header\nrow1\n");
    bool existed = false;
    EXPECT_EQ(loadHealedLines(path, &existed), "header\nrow1\n");
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

TEST(LoadHealedLines, FileWithOnlyATornLineHealsToEmpty)
{
    const std::string path = pathIn("alltorn.csv");
    writeFile(path, "headerwithoutnewline");
    bool existed = false;
    EXPECT_EQ(loadHealedLines(path, &existed), "");
    EXPECT_EQ(readFile(path), "");
}

TEST(AnalyzeResume, FreshOutputMeansNothingDone)
{
    const ResumeState state = analyzeResume(
        pathIn("fresh.csv"), true, false, plannedPoints(), 0);
    EXPECT_EQ(state.done, 0u);
    EXPECT_EQ(state.csvRows, 0u);
    EXPECT_TRUE(state.csvEmpty);
}

TEST(AnalyzeResume, ValidPrefixIsCountedAndVerified)
{
    const std::string path = pathIn("valid.csv");
    writeFile(path, sweepCsvHeader() + "\n" + row("qft", 14) + "\n" +
                        row("qft", 18) + "\n");
    const ResumeState state =
        analyzeResume(path, true, false, plannedPoints(), 0);
    EXPECT_EQ(state.done, 2u);
    EXPECT_EQ(state.csvRows, 2u);
    EXPECT_FALSE(state.csvEmpty);
    EXPECT_TRUE(state.failedIndices.empty());
}

TEST(AnalyzeResume, WrongHeaderIsRefused)
{
    const std::string path = pathIn("hdr.csv");
    writeFile(path, "app,topo\nqft,linear:6\n");
    EXPECT_THROW(analyzeResume(path, true, false, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, ForeignRowsAreRefusedNotMerged)
{
    // Header-compatible, but the rows belong to a different sweep.
    const std::string path = pathIn("foreign.csv");
    writeFile(path,
              sweepCsvHeader() + "\n" + row("supremacy", 22) + "\n");
    EXPECT_THROW(analyzeResume(path, true, false, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, WrongShardSliceIsRefused)
{
    // Rows valid for shard 0 do not resume under shard 1's slice.
    const std::vector<PlannedPoint> all = plannedPoints();
    const std::vector<PlannedPoint> shard1(all.begin() + 2, all.end());
    const std::string path = pathIn("shard.csv");
    writeFile(path, row("qft", 14) + "\n");
    EXPECT_THROW(analyzeResume(path, false, false, shard1, 2),
                 ConfigError);
    // The same rows are fine for the slice they came from.
    const std::vector<PlannedPoint> shard0(all.begin(), all.begin() + 2);
    const ResumeState state =
        analyzeResume(path, false, false, shard0, 0);
    EXPECT_EQ(state.done, 1u);
}

TEST(AnalyzeResume, MoreRowsThanPlannedIsRefused)
{
    const std::string path = pathIn("overfull.csv");
    std::string content = sweepCsvHeader() + "\n";
    for (int i = 0; i < 5; ++i)
        content += row("qft", 14) + "\n";
    writeFile(path, content);
    EXPECT_THROW(analyzeResume(path, true, false, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, SidecarRequiresKeepGoing)
{
    const std::string path = pathIn("kg.csv");
    writeFile(path, sweepCsvHeader() + "\n");
    writeFile(path + ".errors",
              sweepErrorsHeader() + "\n" + sidecarRow(0, "qft", 14) +
                  "\n");
    EXPECT_THROW(analyzeResume(path, true, false, plannedPoints(), 0),
                 ConfigError);
    const ResumeState state =
        analyzeResume(path, true, true, plannedPoints(), 0);
    EXPECT_EQ(state.done, 1u);
    EXPECT_EQ(state.csvRows, 0u);
    ASSERT_EQ(state.failedIndices.size(), 1u);
    EXPECT_EQ(state.failedIndices[0], 0u);
}

TEST(AnalyzeResume, FailuresInterleaveWithRowsInPlannedOrder)
{
    // Point 0 succeeded, point 1 failed, point 2 succeeded.
    const std::string path = pathIn("mix.csv");
    writeFile(path, sweepCsvHeader() + "\n" + row("qft", 14) + "\n" +
                        row("bv", 14) + "\n");
    writeFile(path + ".errors",
              sweepErrorsHeader() + "\n" + sidecarRow(1, "qft", 18) +
                  "\n");
    const ResumeState state =
        analyzeResume(path, true, true, plannedPoints(), 0);
    EXPECT_EQ(state.done, 3u);
    EXPECT_EQ(state.csvRows, 2u);
    ASSERT_EQ(state.failedIndices.size(), 1u);
    EXPECT_EQ(state.failedIndices[0], 1u);
}

TEST(AnalyzeResume, SidecarIdentityMismatchIsRefused)
{
    const std::string path = pathIn("sidemis.csv");
    writeFile(path, sweepCsvHeader() + "\n");
    writeFile(path + ".errors",
              sweepErrorsHeader() + "\n" + sidecarRow(0, "bv", 99) +
                  "\n");
    EXPECT_THROW(analyzeResume(path, true, true, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, SidecarIndexOutsideTheShardIsRefused)
{
    const std::string path = pathIn("sideoob.csv");
    writeFile(path, sweepCsvHeader() + "\n");
    writeFile(path + ".errors",
              sweepErrorsHeader() + "\n" + sidecarRow(7, "bv", 18) +
                  "\n");
    EXPECT_THROW(analyzeResume(path, true, true, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, SidecarIndicesMustAscend)
{
    const std::string path = pathIn("sideord.csv");
    writeFile(path, sweepCsvHeader() + "\n");
    writeFile(path + ".errors",
              sweepErrorsHeader() + "\n" + sidecarRow(1, "qft", 18) +
                  "\n" + sidecarRow(0, "qft", 14) + "\n");
    EXPECT_THROW(analyzeResume(path, true, true, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, FailureRecordedBeyondTheCompletedPrefixIsRefused)
{
    // Sidecar says point 1 failed, but the CSV has no row for point 0:
    // the checkpoint is internally inconsistent.
    const std::string path = pathIn("sidegap.csv");
    writeFile(path, sweepCsvHeader() + "\n");
    writeFile(path + ".errors",
              sweepErrorsHeader() + "\n" + sidecarRow(1, "qft", 18) +
                  "\n");
    EXPECT_THROW(analyzeResume(path, true, true, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, MalformedSidecarIndexIsRefused)
{
    const std::string path = pathIn("sidebad.csv");
    writeFile(path, sweepCsvHeader() + "\n");
    writeFile(path + ".errors",
              sweepErrorsHeader() + "\nxyz,qft,linear:6,14,FM,GS,"
              "error,\"x\"\n");
    EXPECT_THROW(analyzeResume(path, true, true, plannedPoints(), 0),
                 ConfigError);
}

TEST(AnalyzeResume, TornSidecarLineIsHealedBeforeCounting)
{
    const std::string path = pathIn("sidetorn.csv");
    writeFile(path, sweepCsvHeader() + "\n" + row("qft", 14) + "\n");
    writeFile(path + ".errors", sweepErrorsHeader() + "\n" +
                                    sidecarRow(1, "qft", 18) +
                                    "\n2,bv,linear");
    const ResumeState state =
        analyzeResume(path, true, true, plannedPoints(), 0);
    EXPECT_EQ(state.done, 2u); // the torn failure record is dropped
    EXPECT_EQ(readFile(path + ".errors"),
              sweepErrorsHeader() + "\n" + sidecarRow(1, "qft", 18) +
                  "\n");
}

} // namespace
} // namespace qccd
