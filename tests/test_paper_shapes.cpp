/** @file Paper-shape regression tests: the qualitative findings of the
 *  paper's evaluation (Sections IX-X) must hold on scaled-down runs. */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "core/toolflow.hpp"

namespace qccd
{
namespace
{

TEST(PaperShapes, GridBeatsLinearForIrregularCommunication)
{
    // Section IX-B: SquareRoot's irregular pattern favours the grid by
    // orders of magnitude in fidelity.
    const Circuit c = makeBenchmarkSized("squareroot", 24);
    const RunResult lin =
        runToolflow(c, DesignPoint::linear(6, 8));
    const RunResult grid =
        runToolflow(c, DesignPoint::grid(2, 3, 8));
    EXPECT_GT(grid.sim.logFidelity, lin.sim.logFidelity);
    // The grid also accrues less motional heating (Fig. 7g).
    EXPECT_LT(grid.sim.maxChainEnergy, lin.sim.maxChainEnergy);
}

TEST(PaperShapes, GsBeatsIsInFidelity)
{
    // Section X-B: gate-based swapping is vastly more reliable than
    // physical ion swapping because IS needs a split+merge per hop.
    const Circuit c = makeBenchmarkSized("squareroot", 24);
    DesignPoint gs = DesignPoint::linear(4, 10);
    DesignPoint is = gs;
    is.hw.reorder = ReorderMethod::IS;
    const RunResult rg = runToolflow(c, gs);
    const RunResult ri = runToolflow(c, is);
    EXPECT_GT(rg.sim.logFidelity, ri.sim.logFidelity);
}

TEST(PaperShapes, QaoaInsensitiveToReordering)
{
    // Fig. 8: QAOA's GS and IS curves coincide because the
    // nearest-neighbour ansatz needs no chain reordering to speak of.
    const Circuit c = makeBenchmarkSized("qaoa", 16);
    DesignPoint gs = DesignPoint::linear(4, 6);
    DesignPoint is = gs;
    is.hw.reorder = ReorderMethod::IS;
    const RunResult rg = runToolflow(c, gs);
    const RunResult ri = runToolflow(c, is);
    EXPECT_NEAR(rg.sim.logFidelity, ri.sim.logFidelity,
                std::abs(rg.sim.logFidelity) * 0.2 + 1e-9);
}

TEST(PaperShapes, CommunicationHeavyAppsPreferLargerTraps)
{
    // Fig. 6f: motional energy falls as capacity grows because less
    // shuttling is needed.
    const Circuit c = makeBenchmarkSized("qft", 24);
    const RunResult small =
        runToolflow(c, DesignPoint::linear(6, 6));
    const RunResult large =
        runToolflow(c, DesignPoint::linear(6, 26));
    EXPECT_GT(small.sim.maxChainEnergy, large.sim.maxChainEnergy);
    EXPECT_GT(small.sim.counts.splits, large.sim.counts.splits);
}

TEST(PaperShapes, LaserInstabilityPenalizesVeryLargeTraps)
{
    // Fig. 6g: with everything co-located (no shuttling), bigger chains
    // still err more because A grows as N/ln(N) and FM gates slow down.
    Circuit c(30, "colocated");
    for (int rep = 0; rep < 20; ++rep)
        c.ms(0, 1);

    const RunResult small = runToolflow(c, DesignPoint::linear(1, 34));
    // Same program but ions spread in one big chain vs capacity 30:
    // emulate by comparing single-trap devices of different capacity
    // filled with the same 30 qubits -> same chain length; instead
    // compare a 30-ion chain against a 60-capacity trap padded by
    // inflating capacity (chain length equals qubit count either way),
    // so directly check the model's chain-length dependence through
    // two different co-location sizes.
    Circuit c2(12, "colocated-small");
    for (int rep = 0; rep < 20; ++rep)
        c2.ms(0, 1);
    const RunResult tiny = runToolflow(c2, DesignPoint::linear(1, 14));
    EXPECT_LT(small.sim.logFidelity, tiny.sim.logFidelity);
}

TEST(PaperShapes, FmBeatsAm1ForLongRangeApps)
{
    // Section X-A: QFT/SquareRoot favour FM (or PM) because AM gate
    // time grows linearly with ion separation.
    const Circuit c = makeBenchmarkSized("qft", 20);
    DesignPoint fm = DesignPoint::linear(4, 8, GateImpl::FM);
    DesignPoint am1 = DesignPoint::linear(4, 8, GateImpl::AM1);
    const RunResult rf = runToolflow(c, fm);
    const RunResult ra = runToolflow(c, am1);
    EXPECT_GT(rf.sim.logFidelity, ra.sim.logFidelity);
}

TEST(PaperShapes, Am2FastForShortRangeApps)
{
    // QAOA's short-range gates run faster on AM2 than on FM at the
    // paper's trap sizes, where FM's chain-length scaling makes every
    // gate take ~240 us while AM2 stays near 48 us (Fig. 8i). The
    // effect needs paper-scale chains: at tiny capacities FM sits on
    // its 100 us floor and the ordering flips.
    const Circuit c = makeQaoa(64, 2);
    DesignPoint am2 = DesignPoint::linear(6, 22, GateImpl::AM2);
    DesignPoint fm = DesignPoint::linear(6, 22, GateImpl::FM);
    const RunResult ra = runToolflow(c, am2);
    const RunResult rf = runToolflow(c, fm);
    EXPECT_LT(ra.totalTime(), rf.totalTime());
}

TEST(PaperShapes, BvFidelityStaysHighEverywhere)
{
    // Fig. 6c: BV barely communicates, so fidelity is high across all
    // capacities.
    const Circuit c = makeBenchmarkSized("bv", 16);
    for (int cap : {6, 10, 18}) {
        const RunResult r = runToolflow(c, DesignPoint::linear(4, cap));
        EXPECT_GT(r.fidelity(), 0.5) << "capacity " << cap;
    }
}

} // namespace
} // namespace qccd
