/** @file Unit + property tests for the Equation 1 fidelity model. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "models/fidelity.hpp"

namespace qccd
{
namespace
{

TEST(Fidelity, EquationOneTerms)
{
    // F = 1 - Gamma*tau - kappa*N/ln(N)*(2*nbar + 1)
    FidelityModel model(2.0, 1e-5, 1e-4, 1e-3);
    const GateErrorBreakdown err = model.twoQubitError(200.0, 20, 3.0);
    EXPECT_NEAR(err.background, 2.0 * 200e-6, 1e-12);
    EXPECT_NEAR(err.motional, 1e-5 * 20 / std::log(20.0) * 7.0, 1e-12);
    EXPECT_NEAR(err.fidelity(), 1.0 - err.background - err.motional,
                1e-12);
}

TEST(Fidelity, ScaleFactorGrowsAsNOverLogN)
{
    FidelityModel model(2.0, 1e-5);
    const double a20 = model.scaleFactorA(20);
    const double a35 = model.scaleFactorA(35);
    // The paper reports about a 1.5x motional-error growth from
    // capacity 20 to capacity 35 due to this factor.
    EXPECT_NEAR(a35 / a20, (35 / std::log(35.0)) / (20 / std::log(20.0)),
                1e-12);
    EXPECT_GT(a35 / a20, 1.4);
    EXPECT_LT(a35 / a20, 1.6);
}

TEST(Fidelity, DecreasesWithDuration)
{
    FidelityModel model;
    double prev = 1.0;
    for (double tau : {50.0, 100.0, 400.0, 1600.0}) {
        const double f = model.twoQubitFidelity(tau, 10, 1.0);
        EXPECT_LT(f, prev);
        prev = f;
    }
}

TEST(Fidelity, DecreasesWithMotionalEnergy)
{
    FidelityModel model;
    double prev = 1.0;
    for (double nbar : {0.0, 1.0, 10.0, 100.0}) {
        const double f = model.twoQubitFidelity(100.0, 10, nbar);
        EXPECT_LT(f, prev);
        prev = f;
    }
}

TEST(Fidelity, TotalErrorClampedToOne)
{
    FidelityModel model(2.0, 1.0); // absurd kappa
    const GateErrorBreakdown err =
        model.twoQubitError(100.0, 30, 1000.0);
    EXPECT_DOUBLE_EQ(err.total(), 1.0);
    EXPECT_DOUBLE_EQ(err.fidelity(), 0.0);
}

TEST(Fidelity, ConstantRates)
{
    FidelityModel model(2.0, 1e-5, 2e-4, 5e-3);
    EXPECT_DOUBLE_EQ(model.oneQubitFidelity(), 1.0 - 2e-4);
    EXPECT_DOUBLE_EQ(model.measureFidelity(), 1.0 - 5e-3);
}

TEST(Fidelity, BadParametersRejected)
{
    EXPECT_THROW(FidelityModel(-1.0), ConfigError);
    EXPECT_THROW(FidelityModel(2.0, -1e-5), ConfigError);
    EXPECT_THROW(FidelityModel(2.0, 1e-5, 1.5), ConfigError);
    EXPECT_THROW(FidelityModel(2.0, 1e-5, 1e-4, -0.1), ConfigError);
}

TEST(Fidelity, InvalidQueriesPanic)
{
    FidelityModel model;
    EXPECT_THROW(model.twoQubitError(-1.0, 10, 0.0), InternalError);
    EXPECT_THROW(model.twoQubitError(100.0, 10, -1.0), InternalError);
    EXPECT_THROW(model.scaleFactorA(1), InternalError);
}

/** Property sweep over chain lengths: error grows with N (N >= 3). */
class FidelityChainProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FidelityChainProperty, MotionalErrorGrowsWithChainLength)
{
    const int n = GetParam();
    FidelityModel model;
    // N/ln(N) is increasing for N >= 3 (it dips between 2 and e).
    if (n >= 3) {
        EXPECT_GT(model.scaleFactorA(n + 1), model.scaleFactorA(n));
    }
    EXPECT_GT(model.scaleFactorA(n), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FidelityChainProperty,
                         ::testing::Range(2, 40));

} // namespace
} // namespace qccd
