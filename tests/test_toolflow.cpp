/** @file Integration tests for the end-to-end toolflow API. */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "common/error.hpp"
#include "core/toolflow.hpp"

namespace qccd
{
namespace
{

TEST(Toolflow, RunsGeneralGateSetDirectly)
{
    // runToolflow lowers CX/CPhase internally.
    Circuit c(4, "bell-ish");
    c.h(0);
    c.cx(0, 1);
    c.cphase(2, 3, 0.5);
    c.measureAll();

    DesignPoint dp = DesignPoint::linear(2, 6);
    const RunResult r = runToolflow(c, dp);
    EXPECT_GT(r.totalTime(), 0.0);
    EXPECT_GT(r.fidelity(), 0.0);
    EXPECT_LT(r.fidelity(), 1.0);
    EXPECT_EQ(r.sim.counts.algorithmMs, 3); // 1 CX + 2 for CPhase
    EXPECT_EQ(r.sim.counts.measurements, 4);
}

TEST(Toolflow, DetailedRunExposesTraceAndMapping)
{
    const Circuit c = makeBenchmarkSized("qaoa", 12);
    DesignPoint dp = DesignPoint::linear(3, 8);
    const ScheduleResult r = runToolflowDetailed(c, dp);
    EXPECT_FALSE(r.trace.empty());
    EXPECT_EQ(r.mapping.trapOf.size(), 12u);
    EXPECT_EQ(r.mapping.chainOrder.size(), 3u);
}

TEST(Toolflow, DetailedRunHonorsMappingPolicy)
{
    // The bug this pins: the detailed path (--analyze/--emit-isa/
    // --trace) used to drop the run options, so --policy balanced
    // analyzed a schedule the metrics path would never run. The
    // detailed metrics must equal runToolflow's under each policy,
    // and the two policies must be distinguishable.
    const Circuit c = makeBenchmarkSized("qaoa", 12);
    DesignPoint dp = DesignPoint::linear(3, 8);
    for (MappingPolicy policy :
         {MappingPolicy::Packed, MappingPolicy::Balanced}) {
        RunOptions options;
        options.mappingPolicy = policy;
        const ScheduleResult detail =
            runToolflowDetailed(c, dp, options);
        const RunResult scalar = runToolflow(c, dp, options);
        EXPECT_EQ(detail.metrics.makespan, scalar.sim.makespan);
        EXPECT_EQ(detail.metrics.logFidelity, scalar.sim.logFidelity);
        EXPECT_EQ(detail.metrics.counts.shuttles,
                  scalar.sim.counts.shuttles);
        EXPECT_EQ(detail.metrics.counts.segmentsMoved,
                  scalar.sim.counts.segmentsMoved);
    }

    RunOptions packed, balanced;
    packed.mappingPolicy = MappingPolicy::Packed;
    balanced.mappingPolicy = MappingPolicy::Balanced;
    EXPECT_NE(runToolflowDetailed(c, dp, packed).mapping.trapOf,
              runToolflowDetailed(c, dp, balanced).mapping.trapOf);
}

TEST(Toolflow, DetailedRunHonorsPointTimeout)
{
    // The watchdog must also guard the detailed path: an armed,
    // already-hopeless budget fires instead of grinding through the
    // whole schedule.
    const Circuit c = makeBenchmarkSized("supremacy", 64);
    DesignPoint dp = DesignPoint::linear(16, 6);
    RunOptions options;
    options.pointTimeoutMs = 1;
    EXPECT_THROW(runToolflowDetailed(c, dp, options), TimeoutError);
}

TEST(Toolflow, RuntimeDecompositionSumsToTotal)
{
    const Circuit c = makeBenchmarkSized("qft", 12);
    DesignPoint dp = DesignPoint::linear(3, 8);
    RunOptions options;
    options.decomposeRuntime = true;
    const RunResult r = runToolflow(c, dp, options);
    EXPECT_GT(r.computeOnlyTime, 0.0);
    EXPECT_LE(r.computeOnlyTime, r.totalTime());
    EXPECT_NEAR(r.computeOnlyTime + r.communicationTime(),
                r.totalTime(), 1e-6);
}

TEST(Toolflow, ApplicationTooLargeRejected)
{
    const Circuit c = makeBenchmarkSized("qft", 40);
    DesignPoint dp = DesignPoint::linear(2, 10); // capacity 20 < 40
    EXPECT_THROW(runToolflow(c, dp), ConfigError);
}

TEST(Toolflow, DesignPointLabels)
{
    DesignPoint lin = DesignPoint::linear(6, 22);
    EXPECT_EQ(lin.label(), "linear:6 cap=22 FM-GS");
    DesignPoint grid =
        DesignPoint::grid(2, 3, 18, GateImpl::AM2, ReorderMethod::IS);
    EXPECT_EQ(grid.label(), "grid:2x3 cap=18 AM2-IS");
    EXPECT_EQ(grid.buildTopology().trapCount(), 6);
}

TEST(Toolflow, MoreCommunicationLowersFidelity)
{
    // The same program with qubit pairs forced across traps must lose
    // fidelity versus a co-located version.
    Circuit local(16, "local");
    for (QubitId q = 0; q < 16; ++q)
        local.h(q); // pin first-use placement
    for (int rep = 0; rep < 10; ++rep)
        local.ms(0, 1); // same trap
    Circuit remote(16, "remote");
    for (QubitId q = 0; q < 16; ++q)
        remote.h(q);
    for (int rep = 0; rep < 10; ++rep)
        remote.ms(0, 15); // opposite ends of the device

    DesignPoint dp = DesignPoint::linear(4, 6);
    const RunResult rl = runToolflow(local, dp);
    const RunResult rr = runToolflow(remote, dp);
    EXPECT_GT(rl.fidelity(), rr.fidelity());
    EXPECT_LT(rl.totalTime(), rr.totalTime());
}

TEST(Toolflow, RecoolExtensionImprovesFidelity)
{
    const Circuit c = makeBenchmarkSized("qft", 16);
    DesignPoint base = DesignPoint::linear(4, 6);
    DesignPoint cooled = base;
    cooled.hw.recoolFactor = 0.1; // strong sympathetic recooling

    const RunResult rb = runToolflow(c, base);
    const RunResult rc = runToolflow(c, cooled);
    EXPECT_GT(rc.fidelity(), rb.fidelity());
}

TEST(Toolflow, HigherHeatingRatesLowerFidelity)
{
    const Circuit c = makeBenchmarkSized("qft", 16);
    DesignPoint base = DesignPoint::linear(4, 6);
    DesignPoint hot = base;
    hot.hw.heatingK1 = 1.0; // Honeywell-scale rather than projected
    hot.hw.heatingK2 = 0.1;

    const RunResult rb = runToolflow(c, base);
    const RunResult rh = runToolflow(c, hot);
    EXPECT_GT(rb.fidelity(), rh.fidelity());
    EXPECT_GT(rh.sim.maxChainEnergy, rb.sim.maxChainEnergy);
}

} // namespace
} // namespace qccd
