/** @file Unit + integration tests for the backend scheduler. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "compiler/scheduler.hpp"

namespace qccd
{
namespace
{

HardwareParams
fmGs()
{
    HardwareParams hw;
    hw.gateImpl = GateImpl::FM;
    hw.reorder = ReorderMethod::GS;
    return hw;
}

TEST(Scheduler, RequiresNativeGates)
{
    const Topology topo = makeLinear(2, 6);
    Circuit c(2);
    c.cx(0, 1); // not native
    EXPECT_THROW(Scheduler(c, topo, fmGs()), ConfigError);
}

TEST(Scheduler, SingleTrapSerialGates)
{
    const Topology topo = makeLinear(1, 6);
    Circuit c(4);
    c.ms(0, 1);
    c.ms(2, 3);
    Scheduler sched(c, topo, fmGs());
    const ScheduleResult r = sched.run();
    // Both gates in one trap execute serially: 2 x 100 us FM gates.
    EXPECT_DOUBLE_EQ(r.metrics.makespan, 200.0);
    EXPECT_EQ(r.metrics.counts.algorithmMs, 2);
    EXPECT_EQ(r.metrics.counts.shuttles, 0);
}

TEST(Scheduler, ParallelTrapsOverlap)
{
    const Topology topo = makeLinear(2, 6);
    Circuit c(8);
    // H prologue pins the first-use order so qubits 0..3 land in trap
    // 0 and 4..7 in trap 1 (buffer 2 -> 4 per trap).
    for (QubitId q = 0; q < 8; ++q)
        c.h(q);
    c.ms(0, 1);
    c.ms(4, 5);
    Scheduler sched(c, topo, fmGs());
    const ScheduleResult r = sched.run();
    // Independent traps run concurrently: 4 serial H (20 us) then one
    // 100 us FM gate in each trap.
    EXPECT_DOUBLE_EQ(r.metrics.makespan, 120.0);
}

TEST(Scheduler, CrossTrapGateShuttles)
{
    const Topology topo = makeLinear(2, 6);
    Circuit c(8);
    for (QubitId q = 0; q < 8; ++q)
        c.h(q); // pin placement: 0..3 in trap 0, 4..7 in trap 1
    c.ms(0, 4);
    SchedulerScratch scratch;
    Scheduler sched(c, topo, fmGs(), {}, &scratch);
    const ScheduleResult r = sched.run();
    EXPECT_EQ(r.metrics.counts.shuttles, 1);
    EXPECT_EQ(r.metrics.counts.splits, 1);
    EXPECT_EQ(r.metrics.counts.merges, 1);
    EXPECT_EQ(r.metrics.counts.moves, 1);
    EXPECT_EQ(r.metrics.counts.algorithmMs, 1);
    // Shuttling exercised split/attach on both ends: the O(1) position
    // index must still agree with the chain contents.
    ASSERT_NE(scratch.deviceState(), nullptr);
    EXPECT_TRUE(scratch.deviceState()->positionIndexConsistent());
    // Reorder: qubit 0 sits at the left end of trap 0 and must reach
    // the right end -> one GS swap (3 MS gates).
    EXPECT_EQ(r.metrics.counts.reorderMs, 3);
    // Timing: 20 (H prologue per trap) + 3*100 (GS swap, waits for
    // q3's H at t=20) + 80 (split) + 5 (move) + 80 (merge) + 100
    // (FM gate on the merged 5-ion chain, still at the 100 us floor).
    EXPECT_DOUBLE_EQ(r.metrics.makespan, 20 + 300 + 80 + 5 + 80 + 100);
}

TEST(Scheduler, MeasurementsAndOneQubitGates)
{
    const Topology topo = makeLinear(1, 4);
    Circuit c(2);
    c.h(0);
    c.ms(0, 1);
    c.measure(0);
    c.measure(1);
    Scheduler sched(c, topo, fmGs());
    const ScheduleResult r = sched.run();
    EXPECT_EQ(r.metrics.counts.oneQubit, 1);
    EXPECT_EQ(r.metrics.counts.measurements, 2);
    // h(5) + ms(100) + two serial measures (150 each).
    EXPECT_DOUBLE_EQ(r.metrics.makespan, 5 + 100 + 150 + 150);
}

TEST(Scheduler, RunIsSingleShot)
{
    const Topology topo = makeLinear(1, 4);
    Circuit c(2);
    c.ms(0, 1);
    Scheduler sched(c, topo, fmGs());
    sched.run();
    EXPECT_THROW(sched.run(), InternalError);
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    const Topology topo = makeLinear(3, 8);
    const Circuit native = decomposeToNative([] {
        Circuit c(12, "mix");
        for (QubitId q = 0; q + 1 < 12; ++q)
            c.cx(q, q + 1);
        for (QubitId q = 0; q < 12; q += 3)
            c.cx(q, 11 - q);
        c.measureAll();
        return c;
    }());

    Scheduler a(native, topo, fmGs());
    Scheduler b(native, topo, fmGs());
    const ScheduleResult ra = a.run();
    const ScheduleResult rb = b.run();
    EXPECT_DOUBLE_EQ(ra.metrics.makespan, rb.metrics.makespan);
    EXPECT_DOUBLE_EQ(ra.metrics.logFidelity, rb.metrics.logFidelity);
    ASSERT_EQ(ra.trace.size(), rb.trace.size());
    for (size_t i = 0; i < ra.trace.size(); ++i)
        EXPECT_DOUBLE_EQ(ra.trace[i].start, rb.trace[i].start);
}

TEST(Scheduler, EvictionWhenDestinationFull)
{
    // Two traps of capacity 4, zero buffer: trap 0 holds 0-3, trap 1
    // holds 4-7. A gate between 0 and 4 must evict someone.
    const Topology topo = makeLinear(3, 4);
    HardwareParams hw = fmGs();
    hw.bufferSlots = 0;
    Circuit c(8);
    for (QubitId q = 0; q < 8; ++q)
        c.h(q); // pin placement
    c.ms(0, 4);
    Scheduler sched(c, topo, hw);
    const ScheduleResult r = sched.run();
    EXPECT_GE(r.metrics.counts.evictions, 1);
    EXPECT_EQ(r.metrics.counts.algorithmMs, 1);
}

TEST(Scheduler, LinearPassThroughUsesIntermediateTrap)
{
    // Three traps; a gate between trap 0 and trap 2 must traverse the
    // occupied middle trap: merge + reorder + split there (Fig. 4).
    const Topology topo = makeLinear(3, 6);
    Circuit c(12);
    for (QubitId q = 0; q < 12; ++q)
        c.h(q); // pin placement
    c.ms(0, 11); // trap 0 left end to trap 2
    Scheduler sched(c, topo, fmGs());
    const ScheduleResult r = sched.run();
    EXPECT_EQ(r.metrics.counts.trapPassThroughs, 1);
    EXPECT_GE(r.metrics.counts.splits, 2);
    EXPECT_GE(r.metrics.counts.merges, 2);
}

TEST(Scheduler, GridAvoidsPassThroughs)
{
    const Topology topo = makeGrid(2, 3, 8);
    Circuit c(24);
    for (QubitId q = 0; q < 24; ++q)
        c.h(q); // pin placement
    c.ms(0, 23); // far corner to far corner
    Scheduler sched(c, topo, fmGs());
    const ScheduleResult r = sched.run();
    EXPECT_EQ(r.metrics.counts.trapPassThroughs, 0);
    EXPECT_GE(r.metrics.counts.junctionCrossings, 1);
}

TEST(Scheduler, IsReorderingProducesRotations)
{
    const Topology topo = makeLinear(2, 8);
    HardwareParams hw = fmGs();
    hw.reorder = ReorderMethod::IS;
    Circuit c(10);
    for (QubitId q = 0; q < 10; ++q)
        c.h(q); // pin placement
    c.ms(0, 9);
    SchedulerScratch scratch;
    Scheduler sched(c, topo, hw, {}, &scratch);
    const ScheduleResult r = sched.run();
    EXPECT_GT(r.metrics.counts.rotations, 0);
    EXPECT_EQ(r.metrics.counts.reorderMs, 0);
    // IS hops permute chains in place; check the position index.
    ASSERT_NE(scratch.deviceState(), nullptr);
    EXPECT_TRUE(scratch.deviceState()->positionIndexConsistent());
}

TEST(Scheduler, PositionIndexConsistentAfterHeavySchedule)
{
    // A shuttle/eviction/pass-through heavy run on a linear device,
    // under both reorder methods, must leave the per-ion position
    // index agreeing with every chain (the invariant the O(1)
    // positionOf depends on).
    for (const ReorderMethod method :
         {ReorderMethod::GS, ReorderMethod::IS}) {
        const Topology topo = makeLinear(3, 6);
        HardwareParams hw = fmGs();
        hw.reorder = method;
        hw.bufferSlots = 1;
        const Circuit native = decomposeToNative([] {
            Circuit c(14, "stress");
            for (QubitId q = 0; q < 14; ++q)
                c.h(q);
            for (QubitId q = 0; q + 1 < 14; ++q)
                c.cx(q, q == 13 - q ? q + 1 : 13 - q);
            for (QubitId q = 0; q < 14; q += 2)
                c.cx(q, (q + 7) % 14);
            c.measureAll();
            return c;
        }());
        SchedulerScratch scratch;
        Scheduler sched(native, topo, hw, {}, &scratch);
        const ScheduleResult r = sched.run();
        EXPECT_GT(r.metrics.counts.shuttles, 0);
        ASSERT_NE(scratch.deviceState(), nullptr);
        EXPECT_TRUE(scratch.deviceState()->positionIndexConsistent());
    }
}

TEST(Scheduler, ScratchReuseAcrossRunsIsBitIdentical)
{
    const Topology topo = makeLinear(3, 8);
    const Circuit native = decomposeToNative([] {
        Circuit c(12, "mix");
        for (QubitId q = 0; q + 1 < 12; ++q)
            c.cx(q, q + 1);
        c.measureAll();
        return c;
    }());

    Scheduler fresh(native, topo, fmGs());
    const ScheduleResult expect = fresh.run();

    SchedulerScratch scratch;
    for (int round = 0; round < 3; ++round) {
        Scheduler sched(native, topo, fmGs(), {}, &scratch);
        const ScheduleResult r = sched.run();
        EXPECT_EQ(r.metrics.makespan, expect.metrics.makespan);
        EXPECT_EQ(r.metrics.logFidelity, expect.metrics.logFidelity);
        ASSERT_EQ(r.trace.size(), expect.trace.size());
        for (size_t i = 0; i < r.trace.size(); ++i)
            EXPECT_EQ(r.trace[i].start, expect.trace[i].start);
        EXPECT_TRUE(scratch.deviceState()->positionIndexConsistent());
    }
}

TEST(Scheduler, FidelityAccumulatesOverGates)
{
    const Topology topo = makeLinear(1, 6);
    Circuit c(2);
    c.ms(0, 1);
    c.ms(0, 1);
    Scheduler sched(c, topo, fmGs());
    const ScheduleResult r = sched.run();
    ASSERT_EQ(r.trace.size(), 2u);
    EXPECT_NEAR(r.metrics.fidelity(),
                r.trace[0].fidelity * r.trace[1].fidelity, 1e-12);
    EXPECT_LT(r.metrics.fidelity(), 1.0);
}

TEST(Scheduler, BarrierOnlyCircuitRuns)
{
    const Topology topo = makeLinear(1, 4);
    Circuit c(2);
    Gate b;
    b.op = Op::Barrier;
    c.add(b);
    Scheduler sched(c, topo, fmGs());
    const ScheduleResult r = sched.run();
    EXPECT_DOUBLE_EQ(r.metrics.makespan, 0.0);
}

} // namespace
} // namespace qccd
