/** @file Tests for CSV/JSON sweep export. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/export.hpp"

namespace qccd
{
namespace
{

std::vector<SweepPoint>
smallSweep()
{
    return sweepCapacity(
        {"bv"}, {26, 30},
        [](int cap) { return DesignPoint::linear(3, cap); });
}

TEST(Export, CsvHasHeaderAndOneRowPerPoint)
{
    const auto points = smallSweep();
    const std::string csv = toCsv(points);
    std::istringstream in(csv);
    std::string line;
    int lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 1 + static_cast<int>(points.size()));
    EXPECT_EQ(csv.rfind("application,topology,capacity", 0), 0u);
    EXPECT_NE(csv.find("bv,linear:3,26,FM,GS,"), std::string::npos);
}

TEST(Export, TopoFileSpecsExportTheDeviceStem)
{
    // Rows carry the device name, not the machine-local file path.
    SweepPoint point;
    point.application = "bv";
    point.design.topologySpec = "topo:examples/topos/ring6.topo";
    point.design.trapCapacity = 22;
    EXPECT_EQ(point.design.topologyLabel(), "ring6");
    EXPECT_EQ(sweepCsvRow(point).rfind("bv,ring6,22,", 0), 0u);
    EXPECT_NE(sweepJsonRow(point).find("\"topology\": \"ring6\""),
              std::string::npos);
    // Builder specs export verbatim (golden CSV compatibility).
    point.design.topologySpec = "grid:2x3";
    EXPECT_EQ(point.design.topologyLabel(), "grid:2x3");
    EXPECT_NE(sweepCsvRow(point).find("bv,grid:2x3,22,"),
              std::string::npos);
}

TEST(Export, CsvColumnCountConsistent)
{
    const std::string csv = toCsv(smallSweep());
    std::istringstream in(csv);
    std::string line;
    int expected = -1;
    while (std::getline(in, line)) {
        const int commas = static_cast<int>(
            std::count(line.begin(), line.end(), ','));
        if (expected == -1)
            expected = commas;
        EXPECT_EQ(commas, expected) << line;
    }
    EXPECT_EQ(expected, 16); // 17 columns
}

TEST(Export, JsonIsWellFormedEnough)
{
    const std::string json = toJson(smallSweep());
    // Structural sanity: array brackets, balanced braces, both rows.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
    EXPECT_NE(json.find("\"application\": \"bv\""), std::string::npos);
    EXPECT_NE(json.find("\"capacity\": 26"), std::string::npos);
    EXPECT_NE(json.find("\"capacity\": 30"), std::string::npos);
}

TEST(Export, JsonEscapesUserStrings)
{
    auto points = smallSweep();
    points.resize(1);
    points[0].application = "we\"ird\\app";
    const std::string json = toJson(points);
    EXPECT_NE(json.find("\"application\": \"we\\\"ird\\\\app\""),
              std::string::npos)
        << json;
}

TEST(Export, StreamingWriterMatchesBatchHelpers)
{
    const auto points = smallSweep();
    std::ostringstream csv_stream;
    SweepRowWriter csv(csv_stream, ExportFormat::Csv);
    std::ostringstream json_stream;
    SweepRowWriter json(json_stream, ExportFormat::Json);
    for (const SweepPoint &p : points) {
        csv.write(p);
        json.write(p);
    }
    csv.finish();
    json.finish();
    EXPECT_EQ(csv_stream.str(), toCsv(points));
    EXPECT_EQ(json_stream.str(), toJson(points));
    EXPECT_EQ(csv.rowsWritten(), points.size());
}

TEST(Export, ShardedCsvWritersConcatenate)
{
    const auto points = smallSweep();
    std::ostringstream shard0;
    std::ostringstream shard1;
    SweepRowWriter w0(shard0, ExportFormat::Csv, /*with_header=*/true);
    SweepRowWriter w1(shard1, ExportFormat::Csv, /*with_header=*/false);
    w0.write(points[0]);
    w1.write(points[1]);
    w0.finish();
    w1.finish();
    EXPECT_EQ(shard0.str() + shard1.str(), toCsv(points));
}

TEST(Export, EmptySweepProducesHeaderOnly)
{
    const std::string csv = toCsv({});
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
    EXPECT_EQ(toJson({}), "[\n]\n");
}

TEST(Export, WriteTextFileRoundTrips)
{
    const std::string path = ::testing::TempDir() + "/qccd_export.csv";
    writeTextFile("hello,world\n", path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "hello,world\n");
    EXPECT_THROW(writeTextFile("x", "/nonexistent/dir/file.csv"),
                 ConfigError);
}

TEST(Export, ReplaceTextFileAtomicLeavesNoTempBehind)
{
    const std::string path = ::testing::TempDir() + "/qccd_atomic.csv";
    writeTextFile("old\n", path);
    replaceTextFileAtomic("new\n", path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "new\n");
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    EXPECT_THROW(replaceTextFileAtomic("x", "/nonexistent/dir/f.csv"),
                 ConfigError);
}

TEST(Export, ErrorRowQuotesArbitraryDiagnostics)
{
    SweepPoint point = smallSweep().front();
    point.outcome = PointOutcome::Error;
    point.error = "bad \"thing\",\nwith commas";
    const std::string line = sweepErrorRow(42, point);
    // One line per failure (newlines flattened), quotes doubled, and
    // the leading columns identify the point and its absolute index.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_EQ(line.rfind("42,bv,linear:3,26,FM,GS,error,", 0), 0u);
    EXPECT_NE(line.find("\"bad \"\"thing\"\", with commas\""),
              std::string::npos);
}

TEST(Export, ErrorRowOutcomesUseTheTaxonomyNames)
{
    SweepPoint point = smallSweep().front();
    point.outcome = PointOutcome::Timeout;
    point.error = "late";
    EXPECT_NE(sweepErrorRow(0, point).find(",timeout,"),
              std::string::npos);
    point.outcome = PointOutcome::Infeasible;
    EXPECT_NE(sweepErrorRow(0, point).find(",infeasible,"),
              std::string::npos);
}

} // namespace
} // namespace qccd
