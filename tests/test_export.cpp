/** @file Tests for CSV/JSON sweep export. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/export.hpp"

namespace qccd
{
namespace
{

std::vector<SweepPoint>
smallSweep()
{
    return sweepCapacity(
        {"bv"}, {26, 30},
        [](int cap) { return DesignPoint::linear(3, cap); });
}

TEST(Export, CsvHasHeaderAndOneRowPerPoint)
{
    const auto points = smallSweep();
    const std::string csv = toCsv(points);
    std::istringstream in(csv);
    std::string line;
    int lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 1 + static_cast<int>(points.size()));
    EXPECT_EQ(csv.rfind("application,topology,capacity", 0), 0u);
    EXPECT_NE(csv.find("bv,linear:3,26,FM,GS,"), std::string::npos);
}

TEST(Export, CsvColumnCountConsistent)
{
    const std::string csv = toCsv(smallSweep());
    std::istringstream in(csv);
    std::string line;
    int expected = -1;
    while (std::getline(in, line)) {
        const int commas = static_cast<int>(
            std::count(line.begin(), line.end(), ','));
        if (expected == -1)
            expected = commas;
        EXPECT_EQ(commas, expected) << line;
    }
    EXPECT_EQ(expected, 16); // 17 columns
}

TEST(Export, JsonIsWellFormedEnough)
{
    const std::string json = toJson(smallSweep());
    // Structural sanity: array brackets, balanced braces, both rows.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
    EXPECT_NE(json.find("\"application\": \"bv\""), std::string::npos);
    EXPECT_NE(json.find("\"capacity\": 26"), std::string::npos);
    EXPECT_NE(json.find("\"capacity\": 30"), std::string::npos);
}

TEST(Export, EmptySweepProducesHeaderOnly)
{
    const std::string csv = toCsv({});
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
    EXPECT_EQ(toJson({}), "[\n]\n");
}

TEST(Export, WriteTextFileRoundTrips)
{
    const std::string path = ::testing::TempDir() + "/qccd_export.csv";
    writeTextFile("hello,world\n", path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "hello,world\n");
    EXPECT_THROW(writeTextFile("x", "/nonexistent/dir/file.csv"),
                 ConfigError);
}

} // namespace
} // namespace qccd
