/**
 * @file
 * Tests for the surrogate-guided search (core/search.hpp). The two
 * load-bearing guarantees:
 *
 *  1. Rediscovery: on every committed golden scenario the search
 *     returns the same best design point as the exhaustive sweep
 *     while really evaluating at most a quarter of the space (the
 *     PR's headline acceptance, asserted per spec).
 *
 *  2. Audit byte-identity: every point the search really evaluates
 *     produces a row byte-identical to the exhaustive sweep's row at
 *     the same spec index (pinned on the goldens and on a 30-grid
 *     random-spec fuzz), and the whole outcome is bit-identical for
 *     any worker count and any rerun with the same seed.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/export.hpp"
#include "core/search.hpp"
#include "core/sweep_engine.hpp"
#include "core/sweep_spec.hpp"

namespace qccd
{
namespace
{

std::string
repoPath(const std::string &relative)
{
    return std::string(QCCD_SEARCH_TEST_SOURCE_DIR) + "/" + relative;
}

const std::vector<std::string> &
goldenSpecs()
{
    static const std::vector<std::string> specs = {
        "ablation_buffer.sweep",      "ablation_cooling.sweep",
        "ablation_heating.sweep",     "custom_devices.sweep",
        "fig6.sweep",                 "fig7.sweep",
        "fig8.sweep",                 "mixed_apps.sweep",
        "sensitivity_fidelity.sweep", "topology_families.sweep"};
    return specs;
}

/** Evaluate every point of @p plan in order (the exhaustive sweep). */
std::vector<SweepPoint>
runExhaustive(const SweepPlan &plan)
{
    SweepEngine engine;
    SweepSpecRunner runner(engine);
    std::vector<SweepPoint> results;
    runner.run(plan.expand(), 0,
               [&](const SweepPoint &point) {
                   results.push_back(point);
               });
    return results;
}

/** Index the exhaustive argmax keeps: max log-fidelity, then min
 *  time, then first in spec order. */
size_t
exhaustiveBest(const std::vector<SweepPoint> &results)
{
    size_t best = 0;
    for (size_t i = 1; i < results.size(); ++i) {
        const double fid = results[i].result.sim.logFidelity;
        const double bestFid = results[best].result.sim.logFidelity;
        if (fid > bestFid ||
            (fid == bestFid && results[i].result.totalTime() <
                                   results[best].result.totalTime()))
            best = i;
    }
    return best;
}

SearchOutcome
runSearch(const SweepPlan &plan, const SearchOptions &options = {})
{
    SweepEngine engine;
    SearchEngine search(engine);
    SearchOptions resolved = options;
    if (resolved.budget == 0)
        resolved.budget = plan.search.budget;
    return search.run(PlanSearchSpace(plan), resolved);
}

// ---------------------------------------------------------------------
// Golden rediscovery: the headline acceptance, one spec at a time
// ---------------------------------------------------------------------

TEST(SearchGolden, RediscoversExhaustiveOptimumWithinQuarterBudget)
{
    for (const std::string &spec : goldenSpecs()) {
        SCOPED_TRACE(spec);
        const SweepPlan plan =
            parseSweepPlanFile(repoPath("examples/sweeps/" + spec));
        const std::vector<SweepPoint> exhaustive = runExhaustive(plan);
        const size_t best = exhaustiveBest(exhaustive);

        const SearchOutcome outcome = runSearch(plan);
        ASSERT_TRUE(outcome.haveWinner);

        // <= 25% of the expanded points really evaluated.
        EXPECT_LE(outcome.stats.evaluated * 4, outcome.stats.space);
        EXPECT_EQ(outcome.stats.space, exhaustive.size());

        // Same best design point, byte for byte.
        EXPECT_EQ(outcome.winnerIndex, best);
        EXPECT_EQ(sweepCsvRow(outcome.winner),
                  sweepCsvRow(exhaustive[best]));

        // Every audited evaluation matches the exhaustive row at its
        // index, byte for byte.
        for (const SearchEvaluation &ev : outcome.evaluations) {
            ASSERT_LT(ev.index, exhaustive.size());
            EXPECT_TRUE(ev.point.ok());
            EXPECT_EQ(sweepCsvRow(ev.point),
                      sweepCsvRow(exhaustive[ev.index]))
                << "row mismatch at spec index " << ev.index;
        }
    }
}

// ---------------------------------------------------------------------
// Determinism: worker count and seed
// ---------------------------------------------------------------------

/** Flatten an outcome for bitwise comparison. */
std::string
outcomeDigest(const SearchOutcome &outcome)
{
    std::ostringstream out;
    out << outcome.winnerIndex << '|'
        << sweepCsvRow(outcome.winner) << '\n';
    for (const SearchEvaluation &ev : outcome.evaluations)
        out << ev.index << '|' << sweepCsvRow(ev.point) << '\n';
    out << outcome.stats.evaluated << '/' << outcome.stats.budget
        << '/' << outcome.stats.calibration << '/'
        << outcome.stats.rungs;
    return out.str();
}

TEST(SearchDeterminism, IdenticalForAnyWorkerCount)
{
    const SweepPlan plan =
        parseSweepPlanFile(repoPath("examples/sweeps/fig7.sweep"));
    std::vector<std::string> digests;
    for (const int jobs : {1, 3, 7}) {
        SweepEngine engine(jobs);
        SearchEngine search(engine);
        digests.push_back(
            outcomeDigest(search.run(PlanSearchSpace(plan), {})));
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0], digests[2]);
}

TEST(SearchDeterminism, IdenticalForPinnedSeedRerun)
{
    const SweepPlan plan = parseSweepPlanFile(
        repoPath("examples/sweeps/sensitivity_fidelity.sweep"));
    SearchOptions options;
    options.seed = 1234;
    const std::string first = outcomeDigest(runSearch(plan, options));
    const std::string second = outcomeDigest(runSearch(plan, options));
    EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------
// Budget semantics
// ---------------------------------------------------------------------

TEST(SearchBudget, BudgetCoveringSpaceIsExhaustive)
{
    const SweepPlan plan = parseSweepPlanFile(
        repoPath("examples/sweeps/custom_devices.sweep"));
    const std::vector<SweepPoint> exhaustive = runExhaustive(plan);

    SearchOptions options;
    options.budget = exhaustive.size() + 100; // capped at the space
    const SearchOutcome outcome = runSearch(plan, options);
    EXPECT_EQ(outcome.stats.budget, exhaustive.size());
    ASSERT_EQ(outcome.evaluations.size(), exhaustive.size());
    for (size_t i = 0; i < exhaustive.size(); ++i) {
        EXPECT_EQ(outcome.evaluations[i].index, i);
        EXPECT_EQ(sweepCsvRow(outcome.evaluations[i].point),
                  sweepCsvRow(exhaustive[i]));
    }
    EXPECT_EQ(outcome.winnerIndex, exhaustiveBest(exhaustive));
}

TEST(SearchBudget, ExplicitBudgetIsRespected)
{
    const SweepPlan plan =
        parseSweepPlanFile(repoPath("examples/sweeps/fig6.sweep"));
    SearchOptions options;
    options.budget = 5;
    const SearchOutcome outcome = runSearch(plan, options);
    EXPECT_EQ(outcome.stats.budget, 5u);
    EXPECT_EQ(outcome.stats.evaluated, 5u);
    EXPECT_EQ(outcome.evaluations.size(), 5u);
    EXPECT_TRUE(outcome.haveWinner);
}

// ---------------------------------------------------------------------
// Random-grid fuzz: audit rows are --sweep rows, always
// ---------------------------------------------------------------------

/** Draw a small random spec over cheap axes (committed circuits and
 *  fast builtins), exercising the parser path end to end. */
std::string
randomSpecText(Rng &rng)
{
    const std::vector<std::string> apps = {
        "\"bv\"", "\"adder\"", "\"qaoa\"",
        "\"qasm:" + repoPath("examples/circuits/bell.qasm") + "\"",
        "\"qasm:" + repoPath("examples/circuits/qft8.qasm") + "\""};
    const std::vector<std::string> topologies = {
        "\"linear:6\"", "\"grid:2x3\"", "\"ring:6\""};
    const std::vector<std::string> gates = {"\"FM\"", "\"AM2\""};
    const std::vector<int> capacities = {14, 18, 22, 26, 30};

    std::ostringstream spec;
    spec << "{\"name\": \"fuzz\", \"sweeps\": [{";
    spec << "\"apps\": [";
    const int napps = rng.nextInt(1, 2);
    for (int i = 0; i < napps; ++i)
        spec << (i ? ", " : "")
             << apps[static_cast<size_t>(rng.nextInt(
                    0, static_cast<int>(apps.size()) - 1))];
    spec << "], \"topology\": "
         << topologies[static_cast<size_t>(rng.nextInt(
                0, static_cast<int>(topologies.size()) - 1))];
    spec << ", \"capacity\": [";
    const int ncaps = rng.nextInt(2, 4);
    for (int i = 0; i < ncaps; ++i)
        spec << (i ? ", " : "")
             << capacities[static_cast<size_t>(rng.nextInt(
                    0, static_cast<int>(capacities.size()) - 1))];
    spec << "], \"gate\": "
         << gates[static_cast<size_t>(rng.nextInt(
                0, static_cast<int>(gates.size()) - 1))];
    if (rng.nextBool())
        spec << ", \"buffer\": " << rng.nextInt(0, 4);
    spec << "}]}";
    return spec.str();
}

TEST(SearchFuzz, AuditRowsByteIdenticalToSweepRowsOn30RandomGrids)
{
    Rng rng(0xD351'6E5E'A2C8'0001ULL);
    for (int trial = 0; trial < 30; ++trial) {
        const std::string text = randomSpecText(rng);
        SCOPED_TRACE(text);
        const SweepPlan plan = parseSweepPlan(text, "fuzz");
        const std::vector<SweepPoint> exhaustive = runExhaustive(plan);

        SearchOptions options;
        options.seed = rng.next();
        options.budget =
            static_cast<size_t>(rng.nextInt(
                1, static_cast<int>(exhaustive.size())));
        const SearchOutcome outcome = runSearch(plan, options);

        ASSERT_TRUE(outcome.haveWinner);
        EXPECT_EQ(outcome.stats.evaluated, outcome.stats.budget);
        for (const SearchEvaluation &ev : outcome.evaluations) {
            ASSERT_LT(ev.index, exhaustive.size());
            EXPECT_EQ(sweepCsvRow(ev.point),
                      sweepCsvRow(exhaustive[ev.index]))
                << "audit row differs from --sweep row at index "
                << ev.index;
        }
        // The winner is the best among what was really evaluated.
        for (const SearchEvaluation &ev : outcome.evaluations) {
            if (!ev.point.ok())
                continue;
            EXPECT_LE(ev.point.result.sim.logFidelity,
                      outcome.winner.result.sim.logFidelity);
        }
    }
}

// ---------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------

TEST(SearchErrors, EmptySpaceThrows)
{
    const std::vector<PlannedPoint> empty;
    SweepEngine engine(1);
    SearchEngine search(engine);
    EXPECT_THROW(search.run(PointsSearchSpace(empty), {}),
                 ConfigError);
}

} // namespace
} // namespace qccd
