/** @file Unit tests for the gate vocabulary. */

#include <gtest/gtest.h>

#include "circuit/gate.hpp"
#include "common/error.hpp"

namespace qccd
{
namespace
{

TEST(Gate, ArityClassification)
{
    EXPECT_EQ(opArity(Op::H), 1);
    EXPECT_EQ(opArity(Op::RZ), 1);
    EXPECT_EQ(opArity(Op::Measure), 1);
    EXPECT_EQ(opArity(Op::CX), 2);
    EXPECT_EQ(opArity(Op::MS), 2);
    EXPECT_EQ(opArity(Op::Barrier), 0);
}

TEST(Gate, TwoQubitClassification)
{
    EXPECT_TRUE(isTwoQubit(Op::CX));
    EXPECT_TRUE(isTwoQubit(Op::CZ));
    EXPECT_TRUE(isTwoQubit(Op::CPhase));
    EXPECT_TRUE(isTwoQubit(Op::MS));
    EXPECT_TRUE(isTwoQubit(Op::Swap));
    EXPECT_FALSE(isTwoQubit(Op::H));
    EXPECT_FALSE(isTwoQubit(Op::Measure));
}

TEST(Gate, NativeClassification)
{
    EXPECT_TRUE(isNative(Op::MS));
    EXPECT_TRUE(isNative(Op::RZ));
    EXPECT_TRUE(isNative(Op::H));
    EXPECT_TRUE(isNative(Op::Measure));
    EXPECT_FALSE(isNative(Op::CX));
    EXPECT_FALSE(isNative(Op::Swap));
    EXPECT_FALSE(isNative(Op::Barrier));
}

TEST(Gate, ParamClassification)
{
    EXPECT_TRUE(opHasParam(Op::RX));
    EXPECT_TRUE(opHasParam(Op::CPhase));
    EXPECT_TRUE(opHasParam(Op::MS));
    EXPECT_FALSE(opHasParam(Op::H));
    EXPECT_FALSE(opHasParam(Op::CX));
}

TEST(Gate, Constructors)
{
    const Gate h = Gate::one(Op::H, 3);
    EXPECT_EQ(h.q0, 3);
    EXPECT_TRUE(h.isOneQubit());
    EXPECT_FALSE(h.isTwoQubit());

    const Gate ms = Gate::two(Op::MS, 1, 4, 0.5);
    EXPECT_EQ(ms.q0, 1);
    EXPECT_EQ(ms.q1, 4);
    EXPECT_DOUBLE_EQ(ms.param, 0.5);
    EXPECT_TRUE(ms.isTwoQubit());

    const Gate m = Gate::measure(2);
    EXPECT_TRUE(m.isMeasure());
    EXPECT_FALSE(m.isOneQubit());
}

TEST(Gate, BadConstructorsPanic)
{
    EXPECT_THROW(Gate::one(Op::CX, 0), InternalError);
    EXPECT_THROW(Gate::one(Op::Measure, 0), InternalError);
    EXPECT_THROW(Gate::two(Op::H, 0, 1), InternalError);
    EXPECT_THROW(Gate::two(Op::MS, 2, 2), InternalError);
}

TEST(Gate, ToStringFormats)
{
    EXPECT_EQ(Gate::one(Op::H, 3).toString(), "h q3");
    EXPECT_EQ(Gate::two(Op::CX, 0, 1).toString(), "cx q0, q1");
    const std::string rz = Gate::one(Op::RZ, 2, 0.5).toString();
    EXPECT_NE(rz.find("rz(0.5"), std::string::npos);
}

TEST(Gate, OpNamesAreLowercaseMnemonics)
{
    EXPECT_EQ(opName(Op::H), "h");
    EXPECT_EQ(opName(Op::Sdg), "sdg");
    EXPECT_EQ(opName(Op::CX), "cx");
    EXPECT_EQ(opName(Op::MS), "ms");
    EXPECT_EQ(opName(Op::Measure), "measure");
}

} // namespace
} // namespace qccd
