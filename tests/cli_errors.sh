#!/usr/bin/env bash
# CLI error-path contract for qccd_explore: every bad input must exit
# nonzero with a one-line diagnostic on stderr — no silent defaults, no
# partial output, no crash. Registered with CTest (label tier1) by
# tests/CMakeLists.txt; $1 is the qccd_explore binary, $2 (optional)
# the qccd_lint binary.
set -u

EXPLORE=${1:?usage: cli_errors.sh /path/to/qccd_explore [qccd_lint]}
LINT=${2:-}
failures=0
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# expect_error DESCRIPTION EXPECTED_STDERR_FRAGMENT ARGS...
expect_error() {
    local desc=$1 fragment=$2
    shift 2
    local stderr_file="$scratch/stderr"
    "$EXPLORE" "$@" > "$scratch/stdout" 2> "$stderr_file"
    local status=$?
    if [[ $status -eq 0 ]]; then
        echo "FAIL: $desc: exited 0, expected nonzero" >&2
        failures=$((failures + 1))
        return
    fi
    # A clean diagnostic is exactly one line mentioning the problem.
    local lines
    lines=$(wc -l < "$stderr_file")
    if [[ $lines -ne 1 ]]; then
        echo "FAIL: $desc: expected a one-line diagnostic, got $lines:" >&2
        sed 's/^/    /' "$stderr_file" >&2
        failures=$((failures + 1))
        return
    fi
    if ! grep -q "$fragment" "$stderr_file"; then
        echo "FAIL: $desc: stderr lacks '$fragment':" >&2
        sed 's/^/    /' "$stderr_file" >&2
        failures=$((failures + 1))
        return
    fi
    echo "ok: $desc"
}

expect_error "bad --topology"   "unknown topology"     --topology bogus
expect_error "zero-size topo"   "must be positive"     --topology linear:0
# Malformed spec suffixes/shapes diagnose with the spec and position.
expect_error "bad :s suffix"    "segment count"        --topology linear:6:sX
expect_error "sited :s suffix"  "linear:6:sX':11"      --topology linear:6:sX
expect_error "arity too high"   "takes 1 size"         --topology linear:2x3
expect_error "arity too low"    "takes 2 sizes"        --topology grid:6
expect_error "bare family"      "expected ':'"         --topology ring
expect_error "ring too small"   "at least three"       --topology ring:2
expect_error "missing --topo"   "cannot read topology" --topo "$scratch/none.topo"
expect_error "bad --gate"       "unknown gate"         --gate ZZ
expect_error "bad --reorder"    "unknown reorder"      --reorder XY
expect_error "bad --policy"     "unknown mapping"      --policy fancy
expect_error "bad --app"        "unknown benchmark"    --app nonesuch
expect_error "tiny --capacity"  "at least 2"           --capacity 1
expect_error "text --capacity"  "expected an integer"  --capacity many
expect_error "negative buffer"  "non-negative"         --buffer -1
expect_error "zero --jobs"      "at least 1"           --jobs 0
expect_error "negative --jobs"  "at least 1"           --jobs -3
expect_error "zero --trace"     "at least 1"           --trace 0
expect_error "missing value"    "missing value"        --capacity
expect_error "missing --qasm"   "cannot"               --qasm "$scratch/none.qasm"
expect_error "missing --sweep"  "cannot read sweep"    --sweep "$scratch/none.sweep"

# .topo device files: parse errors carry file:line:col, graph errors
# carry the file name.
printf 'trap a\ntrap a\n' > "$scratch/dup.topo"
expect_error "duplicate .topo node" "dup.topo:2:6"     --topo "$scratch/dup.topo"
printf 'trap a\ntrap b\n' > "$scratch/disc.topo"
expect_error "disconnected .topo"   "must be connected" --topo "$scratch/disc.topo"
printf 'flange a b\n' > "$scratch/directive.topo"
expect_error "bad .topo directive"  "unknown directive" --topo "$scratch/directive.topo"

echo '{"name": "x", "sweeps": [{' > "$scratch/broken.sweep"
expect_error "garbled sweep"    "broken.sweep:"        --sweep "$scratch/broken.sweep"

echo '{"name": "x", "sweeps": [{"apps": "qft", "topology": "hexagon:3"}]}' \
    > "$scratch/badtopo.sweep"
expect_error "sweep w/ bad topology" "unknown topology" \
    --sweep "$scratch/badtopo.sweep" --out "$scratch/badtopo.csv"
# A typo'd topology axis fails at parse time with the spec position.
expect_error "sweep topo parse position" "badtopo.sweep:1:" \
    --sweep "$scratch/badtopo.sweep"

echo '{"name": "x", "sweeps": [{"apps": "qft"}]}' > "$scratch/ok.sweep"
expect_error "bad --shard"      "shard must be"        --sweep "$scratch/ok.sweep" --shard 1-2
expect_error "shard out of range" "shard index"        --sweep "$scratch/ok.sweep" --shard 2/2
expect_error "bad --format"     "unknown export"       --sweep "$scratch/ok.sweep" --format xml
expect_error "json + shard"     "requires CSV"         --sweep "$scratch/ok.sweep" --format json --shard 0/2
expect_error "sweep-only flag"  "require --sweep"      --app qft --resume
expect_error "json + keep-going" "requires CSV"        --sweep "$scratch/ok.sweep" --format json --keep-going
expect_error "zero --max-errors" "at least 1"          --sweep "$scratch/ok.sweep" --max-errors 0
expect_error "text --max-errors" "expected an integer" --sweep "$scratch/ok.sweep" --max-errors some
expect_error "zero --point-timeout-ms" "at least 1"    --sweep "$scratch/ok.sweep" --point-timeout-ms 0
expect_error "keep-going w/o sweep" "require --sweep"  --app qft --keep-going
expect_error "max-errors w/o sweep" "require --sweep"  --app qft --max-errors 3

# Surrogate-guided search (--search): flag validation mirrors --sweep.
expect_error "missing --search" "cannot read sweep" \
    --search "$scratch/none.sweep"
expect_error "search + sweep" "not both" \
    --sweep "$scratch/ok.sweep" --search "$scratch/ok.sweep"
expect_error "search + recommend" "not both" \
    --search "$scratch/ok.sweep" --recommend
expect_error "budget w/o search"  "require --search" --app qft --search-budget 5
expect_error "seed w/o search"    "require --search" --app qft --search-seed 7
expect_error "report w/o search"  "require --search" \
    --app qft --search-report "$scratch/r.csv"
expect_error "zero --search-budget" "at least 1" \
    --search "$scratch/ok.sweep" --search-budget 0
expect_error "text --search-budget" "expected an integer" \
    --search "$scratch/ok.sweep" --search-budget few
expect_error "bad --search-seed" "non-negative integer" \
    --search "$scratch/ok.sweep" --search-seed -5
expect_error "sweep-only flag in search" "require --sweep" \
    --search "$scratch/ok.sweep" --resume
expect_error "unwritable search report" "cannot write file" \
    --search "$scratch/ok.sweep" \
    --search-report "$scratch/no-such-dir/r.csv"
# A bad "search" block diagnoses at parse time with the spec position.
echo '{"name": "x", "search": {"budget": 0}, "sweeps": [{"apps": "qft"}]}' \
    > "$scratch/badsearch.sweep"
expect_error "zero spec search budget" "at least 1" \
    --search "$scratch/badsearch.sweep"
echo '{"name": "x", "search": {"bucket": 3}, "sweeps": [{"apps": "qft"}]}' \
    > "$scratch/typosearch.sweep"
expect_error "typo'd search key" "known: budget, eta, seed" \
    --search "$scratch/typosearch.sweep"

# A bad sweep option diagnoses with the spec position, parse-time.
echo '{"name": "x", "sweeps": [{"apps": "qft", "options": {"point_timeout_ms": 0}}]}' \
    > "$scratch/badtimeout.sweep"
expect_error "zero spec timeout" "at least 1"          --sweep "$scratch/badtimeout.sweep"

# Unknown options print usage and exit 2 (argument error).
"$EXPLORE" --frobnicate > /dev/null 2>&1
if [[ $? -ne 2 ]]; then
    echo "FAIL: unknown option should exit 2" >&2
    failures=$((failures + 1))
else
    echo "ok: unknown option exits 2"
fi

# A failed sweep with --out must not leave a half-written output file
# behind when the spec itself is bad (parse errors happen before the
# file is opened).
if [[ -e "$scratch/badtopo.csv" && -s "$scratch/badtopo.csv" ]]; then
    # Run-time errors may leave a header-only file; rows would be wrong.
    rows=$(grep -vc '^application,' "$scratch/badtopo.csv")
    if [[ $rows -ne 0 ]]; then
        echo "FAIL: failed sweep left $rows rows in its output" >&2
        failures=$((failures + 1))
    fi
fi

# Robustness contracts around the failure-adjacent sweep paths.

# --resume after a run died mid-row: the dangling partial line must be
# dropped and re-evaluated, not merged with the next appended row.
cat > "$scratch/tiny.sweep" <<'EOF'
{"name": "tiny", "sweeps": [{"apps": "bv", "capacity": [14, 18]}]}
EOF
(cd "$scratch" && "$EXPLORE" --sweep tiny.sweep > /dev/null 2>&1)
if [[ -s "$scratch/tiny.csv" ]]; then
    head -c 60 "$scratch/tiny.csv" > "$scratch/torn.csv"  # header + torn row
    (cd "$scratch" && "$EXPLORE" --sweep tiny.sweep --out torn.csv \
        --resume > /dev/null 2>&1)
    if cmp -s "$scratch/tiny.csv" "$scratch/torn.csv"; then
        echo "ok: resume recovers a torn final row"
    else
        echo "FAIL: resume after torn row diverges from clean run" >&2
        failures=$((failures + 1))
    fi
else
    echo "FAIL: tiny sweep produced no output to test resume with" >&2
    failures=$((failures + 1))
fi

# --resume must verify recovered rows against the planned points: a
# header-compatible CSV from a *different* sweep is refused, not merged.
echo '{"name": "other", "sweeps": [{"apps": "qft", "capacity": [14, 18]}]}' \
    > "$scratch/other.sweep"
cp "$scratch/tiny.csv" "$scratch/mismatch.csv"
expect_error "mismatched resume" "planned point" \
    --sweep "$scratch/other.sweep" --out "$scratch/mismatch.csv" --resume

# A checkpoint whose sidecar records failures only resumes under
# --keep-going (the rerun must keep honoring the isolation contract).
head -1 "$scratch/tiny.csv" > "$scratch/withfail.csv"
printf 'index,application,topology,capacity,gate,reorder,outcome,error\n0,bv,linear:6,14,FM,GS,error,"x"\n' \
    > "$scratch/withfail.csv.errors"
expect_error "sidecar w/o keep-going" "keep-going" \
    --sweep "$scratch/tiny.sweep" --out "$scratch/withfail.csv" --resume

# A malformed QCCD_FAULT_INJECT spec must abort before main (exit 2):
# a typo'd fault campaign silently testing nothing is itself a bug.
QCCD_FAULT_INJECT="nosuchsite=1" "$EXPLORE" --list \
    > /dev/null 2> "$scratch/stderr"
if [[ $? -ne 2 ]] || ! grep -q "QCCD_FAULT_INJECT" "$scratch/stderr"; then
    echo "FAIL: bad fault-inject spec should exit 2 with a diagnostic" >&2
    failures=$((failures + 1))
else
    echo "ok: bad fault-inject spec exits 2"
fi

# --keep-going: an injected fault yields exit 3, one sidecar row, and
# every other row still present; fault-free runs leave no sidecar.
QCCD_FAULT_INJECT="toolflow.run=1" "$EXPLORE" --sweep "$scratch/tiny.sweep" \
    --out "$scratch/kg.csv" --keep-going > /dev/null 2>&1
status=$?
rows=$(grep -vc '^application,' "$scratch/kg.csv" 2>/dev/null)
sidecar_rows=$(grep -vc '^index,' "$scratch/kg.csv.errors" 2>/dev/null)
if [[ $status -eq 3 && $rows -eq 1 && $sidecar_rows -eq 1 ]]; then
    echo "ok: keep-going isolates an injected fault (exit 3)"
else
    echo "FAIL: keep-going fault run: exit $status, $rows rows," \
         "$sidecar_rows sidecar rows (want 3/1/1)" >&2
    failures=$((failures + 1))
fi
"$EXPLORE" --sweep "$scratch/tiny.sweep" --out "$scratch/kg.csv" \
    --keep-going > /dev/null 2>&1
status=$?
if [[ $status -eq 0 && ! -e "$scratch/kg.csv.errors" ]]; then
    echo "ok: fault-free keep-going exits 0 and clears the stale sidecar"
else
    echo "FAIL: fault-free keep-going: exit $status," \
         "sidecar $([[ -e "$scratch/kg.csv.errors" ]] && echo present || echo absent)" >&2
    failures=$((failures + 1))
fi

# Sharded runs without --out must not share one default filename
# (shard 1 would truncate shard 0's output).
(cd "$scratch" && "$EXPLORE" --sweep tiny.sweep --shard 0/2 > /dev/null 2>&1 \
    && "$EXPLORE" --sweep tiny.sweep --shard 1/2 > /dev/null 2>&1)
if [[ -s "$scratch/tiny.shard0of2.csv" && -s "$scratch/tiny.shard1of2.csv" ]] \
    && cat "$scratch/tiny.shard0of2.csv" "$scratch/tiny.shard1of2.csv" \
       | cmp -s - "$scratch/tiny.csv"; then
    echo "ok: sharded default outputs are distinct and concatenate"
else
    echo "FAIL: sharded default output naming" >&2
    failures=$((failures + 1))
fi

# A set but malformed QCCD_JOBS must exit 2 with a pointed diagnostic
# naming the variable — never silently fall back to hardware
# concurrency (atoi used to turn "4x" into 4 and "garbage" into a
# surprise core count).
for bad in garbage 4x 0 -2 99999999999999999999; do
    QCCD_JOBS="$bad" "$EXPLORE" --sweep "$scratch/tiny.sweep" \
        --out "$scratch/jobs.csv" > /dev/null 2> "$scratch/stderr"
    if [[ $? -ne 2 ]] || ! grep -q "QCCD_JOBS" "$scratch/stderr" \
        || [[ $(wc -l < "$scratch/stderr") -ne 1 ]]; then
        echo "FAIL: QCCD_JOBS='$bad' should exit 2 with a one-line" \
             "diagnostic" >&2
        failures=$((failures + 1))
    else
        echo "ok: malformed QCCD_JOBS '$bad' exits 2"
    fi
done
# ...and a well-formed QCCD_JOBS still runs, byte-identically.
rm -f "$scratch/jobs.csv"
QCCD_JOBS=2 "$EXPLORE" --sweep "$scratch/tiny.sweep" \
    --out "$scratch/jobs.csv" > /dev/null 2>&1
if [[ $? -eq 0 ]] && cmp -s "$scratch/jobs.csv" "$scratch/tiny.csv"; then
    echo "ok: QCCD_JOBS=2 runs byte-identically to the default"
else
    echo "FAIL: QCCD_JOBS=2 should succeed with identical rows" >&2
    failures=$((failures + 1))
fi

# --analyze must honor --policy: the detailed path used to drop the
# run options, so packed and balanced produced identical analyses.
"$EXPLORE" --app qaoa --policy packed --analyze \
    > "$scratch/an_packed.txt" 2>&1
"$EXPLORE" --app qaoa --policy balanced --analyze \
    > "$scratch/an_balanced.txt" 2>&1
if [[ -s "$scratch/an_packed.txt" && -s "$scratch/an_balanced.txt" ]] \
    && ! cmp -s "$scratch/an_packed.txt" "$scratch/an_balanced.txt"; then
    echo "ok: --analyze honors --policy"
else
    echo "FAIL: --analyze output is policy-blind" >&2
    failures=$((failures + 1))
fi

# Result cache (--cache / --cache-verify): misuse and the refusing
# corruption classes are one-line diagnostics. (Healing classes — torn
# tails, checksum failures — are covered by test_result_store; here the
# contract is that refusal never looks like success.)
expect_error "cache w/o sweep" "require --sweep" \
    --app qft --cache "$scratch/x.qcache"
expect_error "verify w/o cache" "requires a result store" \
    --sweep "$scratch/tiny.sweep" --out "$scratch/cv.csv" --cache-verify
printf 'definitely not a result cache\n' > "$scratch/foreign.qcache"
expect_error "foreign cache file" "not a qccd result cache" \
    --sweep "$scratch/tiny.sweep" --out "$scratch/c1.csv" \
    --cache "$scratch/foreign.qcache"
(cd "$scratch" && "$EXPLORE" --sweep tiny.sweep --out warm.csv \
    --cache warm.qcache > /dev/null 2>&1)
printf '\x02' | dd of="$scratch/warm.qcache" bs=1 seek=8 conv=notrunc \
    2> /dev/null
expect_error "version-skewed cache" "schema version" \
    --sweep "$scratch/tiny.sweep" --out "$scratch/c2.csv" \
    --cache "$scratch/warm.qcache"
printf '%s\n' "$$" > "$scratch/held.qcache.lock"
expect_error "cache locked by live pid" "locked by running process" \
    --sweep "$scratch/tiny.sweep" --out "$scratch/c3.csv" \
    --cache "$scratch/held.qcache"
cat > "$scratch/conflict.sweep" <<'EOF'
{"name": "conflict", "sweeps": [
  {"apps": "bv", "options": {"cache": "a.qcache"}},
  {"apps": "bv", "options": {"cache": "b.qcache"}}
]}
EOF
expect_error "conflicting spec caches" "conflicting cache paths" \
    --sweep "$scratch/conflict.sweep" --out "$scratch/c4.csv"

# qccd_lint: usage errors exit 2 with one-line stderr; findings exit 1
# with diagnostics on stdout; a clean tree exits 0. Bad artifacts must
# produce diagnostics, never a crash.
if [[ -n "$LINT" ]]; then
    "$LINT" > /dev/null 2> "$scratch/stderr"
    if [[ $? -ne 2 || $(wc -l < "$scratch/stderr") -ne 1 ]]; then
        echo "FAIL: lint with no paths should exit 2, one line" >&2
        failures=$((failures + 1))
    else
        echo "ok: lint usage error exits 2"
    fi

    "$LINT" --frobnicate x > /dev/null 2> "$scratch/stderr"
    if [[ $? -ne 2 ]] || ! grep -q "unknown option" "$scratch/stderr"; then
        echo "FAIL: lint unknown option should exit 2" >&2
        failures=$((failures + 1))
    else
        echo "ok: lint unknown option exits 2"
    fi

    "$LINT" "$scratch/missing.sweep" > "$scratch/stdout" 2>&1
    if [[ $? -ne 1 ]] || ! grep -q "missing-file" "$scratch/stdout"; then
        echo "FAIL: lint on a missing path should exit 1 with a" \
             "missing-file diagnostic" >&2
        failures=$((failures + 1))
    else
        echo "ok: lint missing path is a diagnostic, exit 1"
    fi

    echo '{"name": "x", "sweeps": [{' > "$scratch/garbled.sweep"
    "$LINT" "$scratch/garbled.sweep" > "$scratch/stdout" 2>&1
    if [[ $? -ne 1 ]] || ! grep -qE "garbled\.sweep:[0-9]+:" "$scratch/stdout"; then
        echo "FAIL: lint on a garbled spec should exit 1 with a" \
             "positioned diagnostic" >&2
        failures=$((failures + 1))
    else
        echo "ok: lint garbled spec diagnoses with position"
    fi

    echo '{"name": "ok", "sweeps": [{"apps": ["bv"]}]}' \
        > "$scratch/fine.sweep"
    "$LINT" --quiet "$scratch/fine.sweep" > "$scratch/stdout" 2>&1
    if [[ $? -ne 0 ]] || ! grep -q "0 error(s)" "$scratch/stdout"; then
        echo "FAIL: lint on a clean spec should exit 0" >&2
        failures=$((failures + 1))
    else
        echo "ok: lint clean spec exits 0"
    fi
fi

if [[ $failures -eq 0 ]]; then
    echo "all CLI error paths produce clean one-line diagnostics"
fi
exit "$failures"
