/** @file Unit tests for the SplitMix64 RNG helpers. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace qccd
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextIntInclusiveBounds)
{
    Rng rng(11);
    std::set<int> seen;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    // All seven values should appear over 2000 draws.
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U[0,1) should be near 0.5.
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBoolIsBalanced)
{
    Rng rng(17);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += rng.nextBool() ? 1 : 0;
    EXPECT_NEAR(trues / 10000.0, 0.5, 0.03);
}

} // namespace
} // namespace qccd
