/** @file Exactness tests for the memoized physical-model tables. */

#include <gtest/gtest.h>

#include <cmath>

#include "models/model_tables.hpp"
#include "sim/metrics.hpp"

namespace qccd
{
namespace
{

constexpr GateImpl kAllImpls[] = {GateImpl::AM1, GateImpl::AM2,
                                  GateImpl::PM, GateImpl::FM};

/** Exhaustive memo-vs-direct agreement over the full discrete domain.
 *  EXPECT_EQ on doubles is exact (bitwise for non-NaN) equality: the
 *  tables must return the very doubles the models produce. */
TEST(ModelTables, TwoQubitMatchesModelExactlyForAllImpls)
{
    constexpr int kMaxChain = 40; // beyond the paper's largest capacity
    for (const GateImpl impl : kAllImpls) {
        HardwareParams hw;
        hw.gateImpl = impl;
        const ModelTables tables(hw, kMaxChain);
        const GateTimeModel model = hw.gateTimeModel();
        for (int n = 2; n <= kMaxChain; ++n)
            for (int d = 1; d < n; ++d)
                EXPECT_EQ(tables.twoQubit(d, n), model.twoQubit(d, n))
                    << gateImplName(impl) << " d=" << d << " n=" << n;
    }
}

TEST(ModelTables, ScaleFactorMatchesModelExactly)
{
    constexpr int kMaxChain = 40;
    HardwareParams hw;
    const ModelTables tables(hw, kMaxChain);
    const FidelityModel model = hw.fidelityModel();
    for (int n = 2; n <= kMaxChain; ++n)
        EXPECT_EQ(tables.scaleFactorA(n), model.scaleFactorA(n))
            << "n=" << n;
}

TEST(ModelTables, BeyondTableDomainFallsBackToModels)
{
    HardwareParams hw;
    const ModelTables tables(hw, 8);
    const GateTimeModel gate = hw.gateTimeModel();
    const FidelityModel fid = hw.fidelityModel();
    EXPECT_EQ(tables.twoQubit(5, 20), gate.twoQubit(5, 20));
    EXPECT_EQ(tables.scaleFactorA(20), fid.scaleFactorA(20));
}

TEST(ModelTables, MsErrorMatchesTwoQubitErrorExactly)
{
    HardwareParams hw;
    const ModelTables tables(hw, 30);
    const FidelityModel model = hw.fidelityModel();
    for (int n = 2; n <= 30; ++n) {
        for (const Quanta nbar : {0.0, 0.37, 12.5, 480.0}) {
            const TimeUs tau = 100.0 + 13.0 * n;
            const GateErrorBreakdown a = tables.msError(tau, n, nbar);
            const GateErrorBreakdown b =
                model.twoQubitError(tau, n, nbar);
            EXPECT_EQ(a.background, b.background);
            EXPECT_EQ(a.motional, b.motional);
            EXPECT_EQ(a.fidelity(), b.fidelity());
        }
    }
}

TEST(ModelTables, LogFidelitiesMatchNoteOpClamp)
{
    HardwareParams hw;
    hw.oneQubitError = 4.2e-4;
    hw.measureError = 2.5e-3;
    const ModelTables tables(hw, 10);
    const FidelityModel model = hw.fidelityModel();
    EXPECT_EQ(tables.logOneQubitFidelity(),
              std::log(std::max(model.oneQubitFidelity(), kMinFidelity)));
    EXPECT_EQ(tables.logMeasureFidelity(),
              std::log(std::max(model.measureFidelity(), kMinFidelity)));
    EXPECT_EQ(tables.logUnitFidelity(),
              std::log(std::max(1.0, kMinFidelity)));
    EXPECT_EQ(tables.logUnitFidelity(), 0.0);
}

TEST(ModelTables, SharedCacheReturnsOneInstancePerParameterization)
{
    HardwareParams hw;
    const auto a = ModelTables::shared(hw, 22);
    const auto b = ModelTables::shared(hw, 22);
    EXPECT_EQ(a.get(), b.get());

    const auto c = ModelTables::shared(hw, 23);
    EXPECT_NE(a.get(), c.get());

    HardwareParams other = hw;
    other.kappa = 7e-6;
    const auto d = ModelTables::shared(other, 22);
    EXPECT_NE(a.get(), d.get());

    // Parameters that do not feed the tables still key the cache's
    // embedded models (heating), but shuttle/reorder knobs do not.
    HardwareParams reorder_only = hw;
    reorder_only.reorder = ReorderMethod::IS;
    reorder_only.bufferSlots = 0;
    const auto e = ModelTables::shared(reorder_only, 22);
    EXPECT_EQ(a.get(), e.get());
}

} // namespace
} // namespace qccd
