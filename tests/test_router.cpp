/** @file Unit tests for the shuttle routing policy. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "arch/path.hpp"
#include "common/error.hpp"
#include "compiler/router.hpp"

namespace qccd
{
namespace
{

class RouterTest : public ::testing::Test
{
  protected:
    RouterTest()
        : topo_(makeLinear(4, 4)), paths_(topo_, PathCost{}),
          router_(topo_, paths_), state_(topo_, 8)
    {
        // Trap 0: ions 0,1.  Trap 1: 2,3.  Trap 2: 4,5,6,7 (full).
        state_.placeIon(0, 0, 0);
        state_.placeIon(0, 1, 1);
        state_.placeIon(1, 2, 2);
        state_.placeIon(1, 3, 3);
        state_.placeIon(2, 4, 4);
        state_.placeIon(2, 5, 5);
        state_.placeIon(2, 6, 6);
        state_.placeIon(2, 7, 7);
    }

    Topology topo_;
    PathFinder paths_;
    Router router_;
    DeviceState state_;
};

TEST_F(RouterTest, EqualCostTieBreaksTowardFirstIon)
{
    const MoveDecision d = router_.chooseMover(state_, 0, 2);
    EXPECT_EQ(d.mover, 0);
    EXPECT_EQ(d.stayer, 2);
    EXPECT_EQ(d.source, 0);
    EXPECT_EQ(d.dest, 1);
}

TEST_F(RouterTest, FullDestinationPenalized)
{
    // Gate between ion 2 (trap 1, has space) and ion 4 (trap 2, full):
    // moving ion 2 into the full trap 2 would need an eviction, so the
    // router moves ion 4 out instead.
    const MoveDecision d = router_.chooseMover(state_, 2, 4);
    EXPECT_EQ(d.mover, 4);
    EXPECT_EQ(d.dest, 1);
}

TEST_F(RouterTest, EvictionTargetPrefersNearestWithSpace)
{
    // Evicting from full trap 2: trap 1 has 2 free slots and is nearest.
    EXPECT_EQ(router_.evictionTarget(state_, 2, kInvalidId), 1);
    // Excluding trap 1 pushes the victim to trap 3 (empty, adjacent).
    EXPECT_EQ(router_.evictionTarget(state_, 2, 1), 3);
}

TEST_F(RouterTest, EvictionFailsWhenDeviceFull)
{
    const Topology tiny = makeLinear(2, 2);
    const PathFinder tiny_paths(tiny, PathCost{});
    const Router tiny_router(tiny, tiny_paths);
    DeviceState full(tiny, 4);
    full.placeIon(0, 0, 0);
    full.placeIon(0, 1, 1);
    full.placeIon(1, 2, 2);
    full.placeIon(1, 3, 3);
    EXPECT_THROW(tiny_router.evictionTarget(full, 0, kInvalidId),
                 ConfigError);
}

TEST_F(RouterTest, EvictionDiagnosticNamesTrapAndCensus)
{
    const Topology tiny = makeLinear(3, 2);
    const PathFinder tiny_paths(tiny, PathCost{});
    const Router tiny_router(tiny, tiny_paths);
    DeviceState full(tiny, 6);
    for (int i = 0; i < 6; ++i)
        full.placeIon(i / 2, i, i);
    try {
        tiny_router.evictionTarget(full, 1, 2);
        FAIL() << "eviction from a full device succeeded";
    } catch (const ConfigError &err) {
        const std::string msg = err.what();
        // The stuck trap, the exclusion and the free-slot census are
        // all in the diagnostic.
        EXPECT_NE(msg.find("evicted from trap 1"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("trap 2 excluded"), std::string::npos) << msg;
        EXPECT_NE(msg.find("t0=0 t1=0 t2=0"), std::string::npos) << msg;
    }
}

TEST_F(RouterTest, CoLocatedIonsPanic)
{
    EXPECT_THROW(router_.chooseMover(state_, 0, 1), InternalError);
}

} // namespace
} // namespace qccd
