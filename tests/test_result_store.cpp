/**
 * @file
 * Tests for the crash-safe persistent result store
 * (core/result_store.hpp): the degradation matrix — torn tail, flipped
 * byte, bad framing, truncated header, version skew, foreign file,
 * stale and live locks — plus a seeded mutate-the-store fuzz (every
 * mutation yields a clean miss or a typed QccdError, never a wrong
 * value or a crash) and the runner-level contracts: warm runs emit
 * byte-identical rows without evaluation, cache faults degrade to a
 * cold run, and --cache-verify catches a tampered record.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/hash.hpp"
#include "core/export.hpp"
#include "core/result_store.hpp"
#include "core/sweep_engine.hpp"
#include "core/sweep_spec.hpp"

namespace qccd
{
namespace
{

std::string
pathIn(const std::string &name)
{
    return ::testing::TempDir() + "rstore_" + name;
}

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Remove the store file and its lock/quarantine sidecars. */
void
removeStoreFiles(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    std::remove((path + ".quarantine").c_str());
}

/** A RunResult whose every serialized field is distinct (seeded so two
 *  calls with different seeds differ in all of them). */
RunResult
sampleResult(int seed)
{
    RunResult r;
    r.sim.makespan = 1000.5 + seed;
    r.sim.logFidelity = -0.25 - seed;
    r.sim.zeroFidelityOps = 1 + seed;
    r.sim.counts.algorithmMs = 10 + seed;
    r.sim.counts.reorderMs = 20 + seed;
    r.sim.counts.oneQubit = 30 + seed;
    r.sim.counts.measurements = 40 + seed;
    r.sim.counts.splits = 50 + seed;
    r.sim.counts.merges = 60 + seed;
    r.sim.counts.moves = 70 + seed;
    r.sim.counts.segmentsMoved = 80 + seed;
    r.sim.counts.junctionCrossings = 90 + seed;
    r.sim.counts.rotations = 100 + seed;
    r.sim.counts.transits = 110 + seed;
    r.sim.counts.shuttles = 120 + seed;
    r.sim.counts.evictions = 130 + seed;
    r.sim.counts.trapPassThroughs = 140 + seed;
    r.sim.maxChainEnergy = 2.5 + seed;
    r.sim.sumBackgroundError = 0.125 + seed;
    r.sim.sumMotionalError = 0.0625 + seed;
    r.sim.computeBusy = 3000.0 + seed;
    r.sim.commBusy = 4000.0 + seed;
    r.sim.effectiveBuffer = 2 + seed;
    r.computeOnlyTime = 800.25 + seed;
    return r;
}

Digest128
sampleKey(int n)
{
    return Digest128{0x1111111111111111ULL * (n + 1),
                     0x0101010101010101ULL * (n + 7)};
}

/** Bit-exact result equality via the store's own serializer. */
bool
sameResult(const Digest128 &key, const RunResult &a, const RunResult &b)
{
    return ResultStore::encodeRecordPayload(key, a) ==
           ResultStore::encodeRecordPayload(key, b);
}

/** File offset of record @p index in a healthy store. */
size_t
recordOffset(size_t index)
{
    const size_t frame = 12 + ResultStore::kPayloadSize;
    return ResultStore::kHeaderSize + index * frame;
}

/** Recompute record @p index's checksum after tampering its payload,
 *  so the forged record loads as valid. */
void
fixChecksum(std::string *bytes, size_t index)
{
    const size_t off = recordOffset(index);
    const size_t payload_off = off + 12;
    ASSERT_LE(payload_off + ResultStore::kPayloadSize, bytes->size());
    const uint64_t sum = fnv1a64(bytes->data() + payload_off,
                                 ResultStore::kPayloadSize);
    for (size_t i = 0; i < 8; ++i)
        (*bytes)[off + 4 + i] =
            static_cast<char>((sum >> (8 * i)) & 0xff);
}

/** A store at @p path holding sampleResult(0..count-1) under
 *  sampleKey(0..count-1); returns its bytes. */
std::string
buildStore(const std::string &path, int count)
{
    removeStoreFiles(path);
    {
        ResultStore store(path);
        for (int i = 0; i < count; ++i)
            store.insert(sampleKey(i), sampleResult(i));
    }
    return readBytes(path);
}

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

TEST(ResultStore, FreshOpenCreatesAValidEmptyStore)
{
    const std::string path = pathIn("fresh.qcache");
    removeStoreFiles(path);
    ResultStore store(path);
    EXPECT_EQ(store.entries(), 0u);
    EXPECT_EQ(store.stats().loaded, 0u);
    EXPECT_FALSE(store.stats().healedTail);
    EXPECT_EQ(readBytes(path), ResultStore::freshHeader());
}

TEST(ResultStore, InsertLookupRoundTripsAcrossReopen)
{
    const std::string path = pathIn("roundtrip.qcache");
    removeStoreFiles(path);
    {
        ResultStore store(path);
        store.insert(sampleKey(0), sampleResult(0));
        store.insert(sampleKey(1), sampleResult(1));
        EXPECT_EQ(store.stats().inserts, 2u);
        const std::optional<RunResult> hit =
            store.lookup(sampleKey(0));
        ASSERT_TRUE(hit.has_value());
        EXPECT_TRUE(sameResult(sampleKey(0), *hit, sampleResult(0)));
    }
    ResultStore again(path);
    EXPECT_EQ(again.stats().loaded, 2u);
    EXPECT_EQ(again.entries(), 2u);
    const std::optional<RunResult> hit = again.lookup(sampleKey(1));
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(sameResult(sampleKey(1), *hit, sampleResult(1)));
    EXPECT_FALSE(again.lookup(sampleKey(9)).has_value());
    EXPECT_EQ(again.stats().hits, 1u);
    EXPECT_EQ(again.stats().misses, 1u);
}

TEST(ResultStore, DuplicateInsertDoesNotGrowTheFile)
{
    const std::string path = pathIn("dup.qcache");
    removeStoreFiles(path);
    ResultStore store(path);
    store.insert(sampleKey(0), sampleResult(0));
    const std::string once = readBytes(path);
    // A replayed insert — even with a different value — is a no-op:
    // append-only plus first-wins is what keeps warm store bytes
    // deterministic under kill/resume.
    store.insert(sampleKey(0), sampleResult(5));
    EXPECT_EQ(readBytes(path), once);
    EXPECT_EQ(store.stats().inserts, 1u);
    const std::optional<RunResult> hit = store.lookup(sampleKey(0));
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(sameResult(sampleKey(0), *hit, sampleResult(0)));
}

TEST(ResultStore, EncodeDecodeRoundTripsAndRejectsWrongSize)
{
    const Digest128 key = sampleKey(3);
    const RunResult in = sampleResult(3);
    const std::string payload =
        ResultStore::encodeRecordPayload(key, in);
    ASSERT_EQ(payload.size(), ResultStore::kPayloadSize);
    Digest128 out_key;
    RunResult out;
    ASSERT_TRUE(
        ResultStore::decodeRecordPayload(payload, &out_key, &out));
    EXPECT_EQ(out_key, key);
    EXPECT_TRUE(sameResult(key, in, out));
    EXPECT_FALSE(ResultStore::decodeRecordPayload(
        payload.substr(1), &out_key, &out));
    EXPECT_FALSE(ResultStore::decodeRecordPayload(
        payload + "x", &out_key, &out));
}

TEST(ResultStore, KeySeesEveryKnobAndIgnoresNonResultFields)
{
    const DesignPoint design = DesignPoint::linear(6, 22);
    RunOptions options;
    const Digest128 digest{7, 9};
    const Digest128 base =
        ResultStore::keyFor(design, options, digest);
    EXPECT_EQ(ResultStore::keyFor(design, options, digest), base);

    DesignPoint d = design;
    d.trapCapacity = 23;
    EXPECT_NE(ResultStore::keyFor(d, options, digest), base);
    d = design;
    d.hw.heatingK1 *= 2;
    EXPECT_NE(ResultStore::keyFor(d, options, digest), base);
    d = design;
    d.hw.bufferSlots += 1;
    EXPECT_NE(ResultStore::keyFor(d, options, digest), base);

    RunOptions o = options;
    o.decomposeRuntime = true;
    EXPECT_NE(ResultStore::keyFor(design, o, digest), base);
    EXPECT_NE(ResultStore::keyFor(design, options, Digest128{7, 10}),
              base);

    // Nothing that cannot change the emitted metrics enters the key.
    o = options;
    o.pointTimeoutMs = 5000;
    o.collectTrace = true;
    o.cachePath = "/somewhere/else.qcache";
    EXPECT_EQ(ResultStore::keyFor(design, o, digest), base);
}

TEST(ResultStore, CircuitDigestIgnoresNameSeesContent)
{
    Circuit a(3, "one");
    a.h(0);
    a.cx(0, 1);
    Circuit b(3, "two");
    b.h(0);
    b.cx(0, 1);
    EXPECT_EQ(ResultStore::circuitDigest(a),
              ResultStore::circuitDigest(b));
    b.cx(1, 2);
    EXPECT_NE(ResultStore::circuitDigest(a),
              ResultStore::circuitDigest(b));
    Circuit c(3, "one");
    c.h(0);
    c.cx(1, 0); // operand order matters
    EXPECT_NE(ResultStore::circuitDigest(a),
              ResultStore::circuitDigest(c));
}

// ---------------------------------------------------------------------
// The degradation matrix
// ---------------------------------------------------------------------

TEST(ResultStore, TornTailIsHealedAtomically)
{
    const std::string path = pathIn("torn.qcache");
    const std::string whole = buildStore(path, 3);
    const std::string torn = whole.substr(0, whole.size() - 50);
    writeBytes(path, torn);
    {
        ResultStore store(path);
        EXPECT_TRUE(store.stats().healedTail);
        EXPECT_EQ(store.stats().loaded, 2u);
        EXPECT_EQ(store.stats().quarantined, 0u);
        EXPECT_TRUE(store.lookup(sampleKey(0)).has_value());
        EXPECT_TRUE(store.lookup(sampleKey(1)).has_value());
        EXPECT_FALSE(store.lookup(sampleKey(2)).has_value());
        // The torn record is re-appended where it was torn off, so
        // the healed-and-rewarmed store is byte-identical again.
        store.insert(sampleKey(2), sampleResult(2));
    }
    EXPECT_EQ(readBytes(path), whole);
    EXPECT_FALSE(fileExists(path + ".quarantine"));
}

TEST(ResultStore, ChecksumCorruptionIsQuarantinedAndBecomesAMiss)
{
    const std::string path = pathIn("flip.qcache");
    std::string bytes = buildStore(path, 3);
    bytes[recordOffset(1) + 12 + 40] ^= 0x01; // record 1's payload
    writeBytes(path, bytes);
    {
        ResultStore store(path);
        EXPECT_EQ(store.stats().quarantined, 1u);
        EXPECT_EQ(store.stats().loaded, 2u);
        EXPECT_TRUE(store.lookup(sampleKey(0)).has_value());
        EXPECT_FALSE(store.lookup(sampleKey(1)).has_value());
        EXPECT_TRUE(store.lookup(sampleKey(2)).has_value());
    }
    const std::string quarantine = readBytes(path + ".quarantine");
    EXPECT_NE(quarantine.find("reason=checksum"), std::string::npos);
    // Recovery converged: a second open finds a clean store.
    ResultStore again(path);
    EXPECT_EQ(again.stats().quarantined, 0u);
    EXPECT_FALSE(again.stats().healedTail);
    EXPECT_EQ(again.stats().loaded, 2u);
}

TEST(ResultStore, FrameCorruptionQuarantinesTheTailRegion)
{
    const std::string path = pathIn("frame.qcache");
    std::string bytes = buildStore(path, 3);
    bytes[recordOffset(1)] = static_cast<char>(0xff); // bogus length
    writeBytes(path, bytes);
    ResultStore store(path);
    // Framing is unrecoverable from that offset on: record 1 and
    // everything after it is one quarantined region.
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_EQ(store.stats().loaded, 1u);
    EXPECT_TRUE(store.lookup(sampleKey(0)).has_value());
    EXPECT_FALSE(store.lookup(sampleKey(1)).has_value());
    EXPECT_FALSE(store.lookup(sampleKey(2)).has_value());
    EXPECT_NE(readBytes(path + ".quarantine").find("reason=frame"),
              std::string::npos);
}

TEST(ResultStore, TornHeaderHealsToAFreshStore)
{
    const std::string path = pathIn("hdrtorn.qcache");
    removeStoreFiles(path);
    writeBytes(path, ResultStore::freshHeader().substr(0, 5));
    ResultStore store(path);
    EXPECT_EQ(store.entries(), 0u);
    EXPECT_TRUE(store.stats().healedTail);
    EXPECT_EQ(readBytes(path).substr(0, ResultStore::kHeaderSize),
              ResultStore::freshHeader());
}

TEST(ResultStore, ForeignFileIsRefusedNotHealed)
{
    const std::string path = pathIn("foreign.qcache");
    removeStoreFiles(path);
    writeBytes(path, "app,topology,capacity\nqft,linear:6,22\n");
    try {
        ResultStore store(path);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        EXPECT_NE(
            std::string(err.what()).find("not a qccd result cache"),
            std::string::npos);
    }
    // Refusal must not destroy the foreign file.
    EXPECT_EQ(readBytes(path).substr(0, 3), "app");
}

TEST(ResultStore, VersionSkewIsRefusedWithAPointedDiagnostic)
{
    const std::string path = pathIn("skew.qcache");
    std::string bytes = buildStore(path, 1);
    bytes[ResultStore::kMagicSize] =
        static_cast<char>(ResultStore::kSchemaVersion + 1);
    writeBytes(path, bytes);
    try {
        ResultStore store(path);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("schema version"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// The lock protocol
// ---------------------------------------------------------------------

TEST(ResultStore, LiveLockIsRefusedNamingTheOwner)
{
    const std::string path = pathIn("livelock.qcache");
    removeStoreFiles(path);
    writeBytes(path + ".lock", std::to_string(::getpid()) + "\n");
    try {
        ResultStore store(path);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("locked by running process"),
                  std::string::npos);
        EXPECT_NE(what.find(std::to_string(::getpid())),
                  std::string::npos);
    }
    removeStoreFiles(path);
}

TEST(ResultStore, StaleLockFromADeadProcessIsTakenOver)
{
    const std::string path = pathIn("stalelock.qcache");
    removeStoreFiles(path);
    // A real pid that is certainly dead: fork a child that exits
    // immediately and reap it.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0)
        ::_exit(0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    writeBytes(path + ".lock", std::to_string(child) + "\n");
    {
        ResultStore store(path);
        store.insert(sampleKey(0), sampleResult(0));
    }
    EXPECT_FALSE(fileExists(path + ".lock"));
}

TEST(ResultStore, LockIsReleasedOnClose)
{
    const std::string path = pathIn("relock.qcache");
    removeStoreFiles(path);
    { ResultStore store(path); }
    EXPECT_FALSE(fileExists(path + ".lock"));
    ResultStore again(path); // a second open must not be refused
    EXPECT_EQ(again.entries(), 0u);
}

// ---------------------------------------------------------------------
// scanResultStore (the lint-facing static half)
// ---------------------------------------------------------------------

TEST(ScanResultStore, ClassifiesPrefixesAndGarbage)
{
    const ResultStoreScan empty = scanResultStore("");
    EXPECT_FALSE(empty.magicOk);
    EXPECT_TRUE(empty.headerTorn); // zero bytes: a torn creation

    const ResultStoreScan fresh =
        scanResultStore(ResultStore::freshHeader());
    EXPECT_TRUE(fresh.magicOk);
    EXPECT_TRUE(fresh.versionOk);
    EXPECT_TRUE(fresh.records.empty());
    EXPECT_TRUE(fresh.defects.empty());
    EXPECT_FALSE(fresh.tornTail());

    const ResultStoreScan junk = scanResultStore("this is not a cache");
    EXPECT_FALSE(junk.magicOk);
    EXPECT_FALSE(junk.headerTorn);
}

// ---------------------------------------------------------------------
// Mutate-the-store fuzz
// ---------------------------------------------------------------------

/** 400 random corruptions of a healthy store. The invariant: opening
 *  either throws a typed QccdError (refusal) or yields a store whose
 *  every lookup is a clean miss or the exact original value — never a
 *  wrong value, never a crash — and recovery converges (the second
 *  open of a healed file finds nothing left to heal). */
TEST(ResultStore, MutateTheStoreFuzzNeverYieldsAWrongValue)
{
    const std::string path = pathIn("fuzz.qcache");
    constexpr int kRecords = 4;
    const std::string base = buildStore(path, kRecords);

    std::mt19937 rng(20260808u);
    const auto byteAt = [&rng](size_t size) {
        return std::uniform_int_distribution<size_t>(0, size - 1)(rng);
    };

    for (int iter = 0; iter < 400; ++iter) {
        std::string bytes = base;
        switch (iter % 4) {
        case 0: { // flip 1..4 random bytes
            const int flips = 1 + iter % 4;
            for (int f = 0; f < flips; ++f)
                bytes[byteAt(bytes.size())] ^= static_cast<char>(
                    1 + byteAt(255));
            break;
        }
        case 1: // truncate anywhere (including to empty)
            bytes.resize(byteAt(bytes.size() + 1));
            break;
        case 2: { // append garbage
            const size_t extra = 1 + byteAt(64);
            for (size_t e = 0; e < extra; ++e)
                bytes.push_back(
                    static_cast<char>(byteAt(256)));
            break;
        }
        default: { // smash a random run of bytes
            const size_t at = byteAt(bytes.size());
            const size_t len =
                std::min(bytes.size() - at, 1 + byteAt(32));
            for (size_t b = 0; b < len; ++b)
                bytes[at + b] = static_cast<char>(byteAt(256));
            break;
        }
        }
        removeStoreFiles(path);
        writeBytes(path, bytes);

        try {
            size_t survivors = 0;
            {
                ResultStore store(path);
                for (int k = 0; k < kRecords; ++k) {
                    const std::optional<RunResult> got =
                        store.lookup(sampleKey(k));
                    if (!got.has_value())
                        continue;
                    ++survivors;
                    EXPECT_TRUE(sameResult(sampleKey(k), *got,
                                           sampleResult(k)))
                        << "iteration " << iter << " record " << k;
                }
            }
            ResultStore again(path);
            EXPECT_EQ(again.stats().quarantined, 0u)
                << "iteration " << iter;
            EXPECT_FALSE(again.stats().healedTail)
                << "iteration " << iter;
            EXPECT_EQ(again.stats().loaded, survivors)
                << "iteration " << iter;
        } catch (const QccdError &) {
            // Typed refusal (bad magic, version skew): acceptable.
        }
    }
    removeStoreFiles(path);
}

// ---------------------------------------------------------------------
// Runner integration
// ---------------------------------------------------------------------

/** Disarms fault injection after every test, pass or fail. */
class CachedRunnerTest : public ::testing::Test
{
  protected:
    void TearDown() override { clearFaultInject(); }

    static std::vector<PlannedPoint> threePoints()
    {
        return parseSweepSpec(R"({
            "name": "cache",
            "sweeps": [{"apps": "qft", "capacity": [14, 18, 22]}]
        })").points;
    }

    /** Run the three points and render each emitted row. */
    static std::vector<std::string>
    runRows(ResultStore *cache, bool verify, SweepRunStats *stats)
    {
        SweepEngine engine(1);
        SweepSpecRunner runner(engine);
        SweepRunPolicy policy;
        policy.cache = cache;
        policy.cacheVerify = verify;
        std::vector<std::string> rows;
        const SweepRunStats s = runner.run(
            threePoints(), 0,
            [&](const SweepPoint &p) {
                rows.push_back(sweepCsvRow(p));
            },
            policy);
        if (stats != nullptr)
            *stats = s;
        return rows;
    }
};

TEST_F(CachedRunnerTest, WarmRunEmitsByteIdenticalRowsWithoutWork)
{
    const std::vector<std::string> reference =
        runRows(nullptr, false, nullptr);
    ASSERT_EQ(reference.size(), 3u);

    const std::string path = pathIn("runner.qcache");
    removeStoreFiles(path);
    {
        ResultStore store(path);
        SweepRunStats cold;
        EXPECT_EQ(runRows(&store, false, &cold), reference);
        EXPECT_EQ(cold.cacheHits, 0u);
        EXPECT_EQ(store.stats().inserts, 3u);
    }
    ResultStore store(path);
    EXPECT_EQ(store.stats().loaded, 3u);
    SweepRunStats warm;
    EXPECT_EQ(runRows(&store, false, &warm), reference);
    EXPECT_EQ(warm.cacheHits, 3u);
    EXPECT_EQ(store.stats().inserts, 0u);
}

TEST_F(CachedRunnerTest, CacheFaultsDegradeToAColdRunNotAFailure)
{
    const std::vector<std::string> reference =
        runRows(nullptr, false, nullptr);
    const std::string path = pathIn("degrade.qcache");
    for (const char *site : {"cache.lookup", "cache.append"}) {
        removeStoreFiles(path);
        ResultStore store(path);
        setFaultInjectSpec(std::string(site) + "=1");
        SweepRunStats stats;
        EXPECT_EQ(runRows(&store, false, &stats), reference) << site;
        clearFaultInject();
        EXPECT_EQ(stats.cacheHits, 0u) << site;
        EXPECT_EQ(stats.failed, 0u) << site;
    }
    // cache.open faults the constructor itself; the CLI turns that
    // into a warning and a cacheless run.
    removeStoreFiles(path);
    setFaultInjectSpec("cache.open=1");
    EXPECT_THROW(ResultStore{path}, InternalError);
    clearFaultInject();
}

TEST_F(CachedRunnerTest, VerifyModeCatchesATamperedRecord)
{
    const std::vector<std::string> reference =
        runRows(nullptr, false, nullptr);
    const std::string path = pathIn("verify.qcache");
    removeStoreFiles(path);
    {
        ResultStore store(path);
        runRows(&store, false, nullptr);
    }

    // An honest warm store verifies clean.
    {
        ResultStore store(path);
        SweepRunStats stats;
        EXPECT_EQ(runRows(&store, true, &stats), reference);
        EXPECT_EQ(stats.cacheHits, 3u);
        EXPECT_EQ(stats.cacheDivergent, 0u);
    }

    // Forge record 1: perturb its makespan field (payload bytes 16..23
    // hold the first f64 after the 128-bit key) and re-checksum, so
    // the record loads as valid but disagrees with recomputation —
    // exactly the corruption class checksums cannot catch.
    std::string bytes = readBytes(path);
    bytes[recordOffset(1) + 12 + 16] ^= 0x01;
    fixChecksum(&bytes, 1);
    writeBytes(path, bytes);

    ResultStore store(path);
    EXPECT_EQ(store.stats().quarantined, 0u); // the forgery loads
    SweepRunStats stats;
    // Verify recomputes every hit, so the emitted rows are still the
    // honest ones, and the tampered record is counted.
    EXPECT_EQ(runRows(&store, true, &stats), reference);
    EXPECT_EQ(stats.cacheHits, 3u);
    EXPECT_EQ(stats.cacheDivergent, 1u);
}

} // namespace
} // namespace qccd
