/** @file Unit tests for the Circuit IR container. */

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/error.hpp"

namespace qccd
{
namespace
{

TEST(Circuit, BuildsAndStoresGates)
{
    Circuit c(3, "demo");
    c.h(0);
    c.cx(0, 1);
    c.rz(2, 0.25);
    c.measure(1);

    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.name(), "demo");
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.gate(0).op, Op::H);
    EXPECT_EQ(c.gate(1).op, Op::CX);
    EXPECT_EQ(c.gate(2).op, Op::RZ);
    EXPECT_EQ(c.gate(3).op, Op::Measure);
}

TEST(Circuit, RejectsOutOfRangeOperands)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), ConfigError);
    EXPECT_THROW(c.h(-1), ConfigError);
    EXPECT_THROW(c.cx(0, 5), ConfigError);
}

TEST(Circuit, RejectsDegenerateTwoQubitGate)
{
    Circuit c(2);
    Gate g;
    g.op = Op::CX;
    g.q0 = 1;
    g.q1 = 1;
    EXPECT_THROW(c.add(g), ConfigError);
}

TEST(Circuit, MeasureAllCoversEveryQubit)
{
    Circuit c(4);
    c.measureAll();
    ASSERT_EQ(c.size(), 4u);
    for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_TRUE(c.gate(i).isMeasure());
        EXPECT_EQ(c.gate(i).q0, static_cast<QubitId>(i));
    }
}

TEST(Circuit, NeedsAtLeastOneQubit)
{
    EXPECT_THROW(Circuit(0), ConfigError);
    EXPECT_NO_THROW(Circuit(1));
}

TEST(Circuit, SetNameUpdates)
{
    Circuit c(1);
    c.setName("renamed");
    EXPECT_EQ(c.name(), "renamed");
}

} // namespace
} // namespace qccd
