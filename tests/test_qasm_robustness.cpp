/** @file Robustness tests for the OpenQASM frontend: truncated inputs,
 *  deep nesting, unusual-but-legal formatting. The parser must reject
 *  bad input with ConfigError and never crash. */

#include <gtest/gtest.h>

#include "circuit/qasm/parser.hpp"
#include "circuit/qasm/writer.hpp"
#include "common/error.hpp"

namespace qccd::qasm
{
namespace
{

TEST(QasmRobustness, TruncatedPrefixesNeverCrash)
{
    const std::string program =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n"
        "gate gg a, b { h a; cx a, b; }\ngg q[0], q[1];\n"
        "rz(pi/4) q[2];\nmeasure q[0] -> c[0];\n";
    for (size_t len = 0; len <= program.size(); ++len) {
        const std::string prefix = program.substr(0, len);
        try {
            parse(prefix);
        } catch (const ConfigError &) {
            // Rejection is fine; crashes or other exception types are
            // not.
        }
    }
}

TEST(QasmRobustness, WeirdWhitespaceAccepted)
{
    const Circuit c = parse(
        "OPENQASM\t2.0 ;\n\n\nqreg\nq[2];h q[0]\n;cx q[0],\nq[1];");
    EXPECT_EQ(c.size(), 2u);
}

TEST(QasmRobustness, CommentsEverywhere)
{
    const Circuit c = parse(
        "// leading\nqreg q[2]; // decl\n// between\nh q[0]; // gate\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmRobustness, DeeplyNestedAngleParens)
{
    std::string expr = "1.0";
    for (int i = 0; i < 40; ++i)
        expr = "(" + expr + "+0)";
    const Circuit c = parse("qreg q[1]; rz(" + expr + ") q[0];");
    EXPECT_DOUBLE_EQ(c.gate(0).param, 1.0);
}

TEST(QasmRobustness, ManyNestedUserGates)
{
    std::string program = "qreg q[2];\ngate g0 a, b { cx a, b; }\n";
    for (int i = 1; i < 20; ++i) {
        program += "gate g" + std::to_string(i) + " a, b { g" +
                   std::to_string(i - 1) + " a, b; g" +
                   std::to_string(i - 1) + " b, a; }\n";
    }
    program += "g5 q[0], q[1];\n";
    const Circuit c = parse(program);
    EXPECT_EQ(c.size(), 32u); // 2^5 inlined CX gates
}

TEST(QasmRobustness, HugeRegisterIndexRejected)
{
    EXPECT_THROW(parse("qreg q[4]; h q[4];"), ConfigError);
    EXPECT_THROW(parse("qreg q[4]; h q[-1];"), ConfigError);
}

TEST(QasmRobustness, SelfInteractingGateRejected)
{
    EXPECT_THROW(parse("qreg q[2]; cx q[1], q[1];"), ConfigError);
}

TEST(QasmRobustness, LargeGeneratedProgramsRoundTrip)
{
    // A 4000-gate program through write -> parse -> write must be
    // byte-identical on the second pass (writer output is canonical).
    Circuit big(32, "big");
    for (int rep = 0; rep < 500; ++rep) {
        big.h(rep % 32);
        big.cx(rep % 32, (rep + 7) % 32);
        big.rz((rep * 13) % 32, 0.001 * rep);
    }
    const std::string once = write(big);
    const std::string twice = write(parse(once, big.name()));
    EXPECT_EQ(once, twice);
}

} // namespace
} // namespace qccd::qasm
