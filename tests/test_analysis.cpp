/** @file Tests for trace analysis (utilization, parallelism). */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "core/toolflow.hpp"
#include "sim/analysis.hpp"

namespace qccd
{
namespace
{

PrimOp
trapOp(TrapId trap, TimeUs start, TimeUs dur)
{
    PrimOp op;
    op.kind = PrimKind::Gate1Q;
    op.trap = trap;
    op.start = start;
    op.duration = dur;
    return op;
}

TEST(Analysis, EmptyTrace)
{
    const Topology topo = makeLinear(2, 4);
    const TraceAnalysis a = analyzeTrace({}, topo);
    EXPECT_DOUBLE_EQ(a.makespan, 0.0);
    EXPECT_DOUBLE_EQ(a.meanParallelism, 0.0);
    EXPECT_EQ(a.peakParallelism, 0);
    EXPECT_EQ(a.busiestTrap, 0); // all traps tie at zero busy time
}

TEST(Analysis, UtilizationPerTrap)
{
    const Topology topo = makeLinear(2, 4);
    Trace trace;
    trace.push_back(trapOp(0, 0, 60));
    trace.push_back(trapOp(0, 60, 20));
    trace.push_back(trapOp(1, 0, 40));
    const TraceAnalysis a = analyzeTrace(trace, topo);
    EXPECT_DOUBLE_EQ(a.makespan, 80.0);
    EXPECT_EQ(a.traps[0].ops, 2);
    EXPECT_DOUBLE_EQ(a.traps[0].busy, 80.0);
    EXPECT_DOUBLE_EQ(a.traps[0].utilization(a.makespan), 1.0);
    EXPECT_DOUBLE_EQ(a.traps[1].utilization(a.makespan), 0.5);
    EXPECT_EQ(a.busiestTrap, 0);
}

TEST(Analysis, ParallelismProfile)
{
    const Topology topo = makeLinear(3, 4);
    Trace trace;
    trace.push_back(trapOp(0, 0, 100));
    trace.push_back(trapOp(1, 0, 100));
    trace.push_back(trapOp(2, 50, 100));
    const TraceAnalysis a = analyzeTrace(trace, topo);
    EXPECT_EQ(a.peakParallelism, 3);
    EXPECT_DOUBLE_EQ(a.meanParallelism, 300.0 / 150.0);
}

TEST(Analysis, BackToBackOpsDoNotOverlap)
{
    const Topology topo = makeLinear(1, 4);
    Trace trace;
    trace.push_back(trapOp(0, 0, 50));
    trace.push_back(trapOp(0, 50, 50));
    const TraceAnalysis a = analyzeTrace(trace, topo);
    EXPECT_EQ(a.peakParallelism, 1);
}

TEST(Analysis, RealScheduleHasParallelism)
{
    // A parallel workload on a 4-trap device should overlap work.
    const Circuit c = makeBenchmarkSized("supremacy", 16);
    const ScheduleResult r =
        runToolflowDetailed(c, DesignPoint::linear(4, 6));
    const TraceAnalysis a =
        analyzeTrace(r.trace, makeLinear(4, 6));
    EXPECT_GT(a.meanParallelism, 1.0);
    EXPECT_GE(a.peakParallelism, 2);
    EXPECT_DOUBLE_EQ(a.makespan, r.metrics.makespan);
}

TEST(Analysis, ReportMentionsResources)
{
    const Circuit c = makeBenchmarkSized("bv", 10);
    const ScheduleResult r =
        runToolflowDetailed(c, DesignPoint::linear(2, 8));
    const TraceAnalysis a = analyzeTrace(r.trace, makeLinear(2, 8));
    const std::string report = a.report();
    EXPECT_NE(report.find("trap 0"), std::string::npos);
    EXPECT_NE(report.find("utilization"), std::string::npos);
}

} // namespace
} // namespace qccd
