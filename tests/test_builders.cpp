/** @file Unit tests for the linear and grid topology builders. */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "arch/builders.hpp"
#include "common/error.hpp"

namespace qccd
{
namespace
{

TEST(Builders, LinearShape)
{
    const Topology topo = makeLinear(6, 20);
    EXPECT_EQ(topo.trapCount(), 6);
    EXPECT_EQ(topo.junctionCount(), 0);
    EXPECT_EQ(topo.edgeCount(), 5);
    EXPECT_TRUE(topo.isConnected());
    EXPECT_EQ(topo.totalCapacity(), 120);
    // Interior traps have degree 2, ends degree 1.
    EXPECT_EQ(topo.degree(topo.trapNode(0)), 1);
    EXPECT_EQ(topo.degree(topo.trapNode(3)), 2);
    EXPECT_EQ(topo.degree(topo.trapNode(5)), 1);
}

TEST(Builders, SingleTrapLinear)
{
    const Topology topo = makeLinear(1, 10);
    EXPECT_EQ(topo.trapCount(), 1);
    EXPECT_EQ(topo.edgeCount(), 0);
    EXPECT_TRUE(topo.isConnected());
}

TEST(Builders, GridTwoByTwoMatchesPaperFigure)
{
    // Fig. 2b: a 2x2 QCCD grid has 5 segments and 2 junctions.
    const Topology topo = makeGrid(2, 2, 4);
    EXPECT_EQ(topo.trapCount(), 4);
    EXPECT_EQ(topo.junctionCount(), 2);
    EXPECT_EQ(topo.edgeCount(), 5);
    EXPECT_TRUE(topo.isConnected());
}

TEST(Builders, GridTwoByThreeJunctionDegrees)
{
    // G2x3: rail of 3 junctions; ends are 3-way (Y), middle 4-way (X).
    const Topology topo = makeGrid(2, 3, 20);
    EXPECT_EQ(topo.trapCount(), 6);
    EXPECT_EQ(topo.junctionCount(), 3);
    EXPECT_EQ(topo.edgeCount(), 8);

    int y_count = 0;
    int x_count = 0;
    for (NodeId n = 0; n < topo.nodeCount(); ++n) {
        if (topo.node(n).kind != NodeKind::Junction)
            continue;
        if (topo.degree(n) == 3)
            ++y_count;
        else if (topo.degree(n) == 4)
            ++x_count;
    }
    EXPECT_EQ(y_count, 2);
    EXPECT_EQ(x_count, 1);
}

TEST(Builders, GridTrapsHaveDegreeOne)
{
    const Topology topo = makeGrid(2, 3, 20);
    for (TrapId t = 0; t < topo.trapCount(); ++t)
        EXPECT_EQ(topo.degree(topo.trapNode(t)), 1);
}

TEST(Builders, SpecStrings)
{
    EXPECT_EQ(makeFromSpec("linear:6", 20).trapCount(), 6);
    EXPECT_EQ(makeFromSpec("L6", 20).trapCount(), 6);
    EXPECT_EQ(makeFromSpec("l4", 20).trapCount(), 4);
    EXPECT_EQ(makeFromSpec("grid:2x3", 20).trapCount(), 6);
    EXPECT_EQ(makeFromSpec("G2x3", 20).junctionCount(), 3);
    EXPECT_EQ(makeFromSpec("g3x4", 20).trapCount(), 12);
}

TEST(Builders, BadSpecsRejected)
{
    EXPECT_THROW(makeFromSpec("", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("hex:3", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("linear:", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("linear:abc", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("grid:2", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("grid:0x3", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("grid:2x", 20), ConfigError);
}

TEST(Builders, GridNeedsTwoColumns)
{
    EXPECT_THROW(makeGrid(2, 1, 10), ConfigError);
    EXPECT_NO_THROW(makeGrid(1, 2, 10));
}

TEST(Builders, SegmentsPerEdgeRespected)
{
    const Topology topo = makeLinear(3, 10, 4);
    for (EdgeId e = 0; e < topo.edgeCount(); ++e)
        EXPECT_EQ(topo.edge(e).segments, 4);
}

TEST(Builders, RingShape)
{
    const Topology topo = makeRing(6, 20);
    EXPECT_EQ(topo.trapCount(), 6);
    EXPECT_EQ(topo.junctionCount(), 0);
    EXPECT_EQ(topo.edgeCount(), 6);
    EXPECT_TRUE(topo.isConnected());
    for (TrapId t = 0; t < topo.trapCount(); ++t)
        EXPECT_EQ(topo.degree(topo.trapNode(t)), 2);
    EXPECT_THROW(makeRing(2, 20), ConfigError);
}

TEST(Builders, StarShape)
{
    const Topology topo = makeStar(5, 20);
    EXPECT_EQ(topo.trapCount(), 5);
    EXPECT_EQ(topo.junctionCount(), 1);
    EXPECT_EQ(topo.edgeCount(), 5);
    EXPECT_TRUE(topo.isConnected());
    // Every trap has degree 1; the hub joins them all.
    for (TrapId t = 0; t < topo.trapCount(); ++t)
        EXPECT_EQ(topo.degree(topo.trapNode(t)), 1);
    EXPECT_EQ(topo.degree(topo.nodeCount() - 1), 5);
    EXPECT_THROW(makeStar(1, 20), ConfigError);
}

TEST(Builders, HTreeShape)
{
    const Topology topo = makeHTree(3, 20);
    EXPECT_EQ(topo.trapCount(), 8);   // 2^3 leaves
    EXPECT_EQ(topo.junctionCount(), 7); // 2^3 - 1 internal nodes
    EXPECT_EQ(topo.edgeCount(), 14);
    EXPECT_TRUE(topo.isConnected());
    // Root is a straight-through corner, other junctions are Ys.
    int degree2 = 0;
    int degree3 = 0;
    for (NodeId n = 0; n < topo.nodeCount(); ++n) {
        if (topo.node(n).kind != NodeKind::Junction)
            continue;
        if (topo.degree(n) == 2)
            ++degree2;
        else if (topo.degree(n) == 3)
            ++degree3;
    }
    EXPECT_EQ(degree2, 1);
    EXPECT_EQ(degree3, 6);
    EXPECT_THROW(makeHTree(0, 20), ConfigError);
    EXPECT_THROW(makeHTree(11, 20), ConfigError);
}

TEST(Builders, NewFamilySpecStrings)
{
    EXPECT_EQ(makeFromSpec("ring:5", 20).trapCount(), 5);
    EXPECT_EQ(makeFromSpec("r5", 20).edgeCount(), 5);
    EXPECT_EQ(makeFromSpec("star:4", 20).junctionCount(), 1);
    EXPECT_EQ(makeFromSpec("htree:2", 20).trapCount(), 4);
    EXPECT_EQ(makeFromSpec("h2", 20).junctionCount(), 3);
    EXPECT_EQ(makeFromSpec("ring:5:s3", 20).edge(0).segments, 3);
}

TEST(Builders, FamilyRegistryListsBuiltins)
{
    const auto &families = topologyFamilies();
    ASSERT_GE(families.size(), 5u);
    std::vector<std::string> names;
    for (const TopologyFamily &family : families)
        names.push_back(family.name);
    for (const char *expected :
         {"linear", "grid", "ring", "star", "htree"})
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
}

TEST(Builders, RegisterRejectsCollisionsAndMalformedFamilies)
{
    TopologyFamily dup;
    dup.name = "linear";
    dup.build = [](const std::vector<int> &, int, int) {
        return makeLinear(1, 2);
    };
    EXPECT_THROW(registerTopologyFamily(dup), ConfigError);

    TopologyFamily clash;
    clash.name = "ladder";
    clash.shortForm = 'g'; // taken by grid
    clash.build = dup.build;
    EXPECT_THROW(registerTopologyFamily(clash), ConfigError);

    TopologyFamily nameless;
    nameless.build = dup.build;
    EXPECT_THROW(registerTopologyFamily(nameless), ConfigError);

    TopologyFamily reserved;
    reserved.name = "topo";
    reserved.build = dup.build;
    EXPECT_THROW(registerTopologyFamily(reserved), ConfigError);

    TopologyFamily no_builder;
    no_builder.name = "ladder";
    EXPECT_THROW(registerTopologyFamily(no_builder), ConfigError);
}

TEST(Builders, RegisteredFamilyIsBuildableFromSpecs)
{
    // A "pair" family: two equal traps, N segments apart. Registration
    // is process-global, so run it exactly once even under
    // --gtest_repeat.
    static const bool registered = [] {
        TopologyFamily pair;
        pair.name = "pairx";
        pair.arity = 1;
        pair.grammar = "pairx:N";
        pair.description = "two traps, N segments apart";
        pair.build = [](const std::vector<int> &sizes, int capacity,
                        int segments) {
            Topology topo =
                makeLinear(2, capacity, sizes[0] * segments);
            return topo;
        };
        registerTopologyFamily(pair);
        return true;
    }();
    ASSERT_TRUE(registered);
    const Topology topo = makeFromSpec("pairx:4", 10);
    EXPECT_EQ(topo.trapCount(), 2);
    EXPECT_EQ(topo.edge(0).segments, 4);
    EXPECT_EQ(makeFromSpec("pairx:4:s2", 10).edge(0).segments, 8);
}

TEST(Builders, SpecErrorsCarrySpecAndPosition)
{
    const auto diagnostic = [](const std::string &spec) {
        try {
            makeFromSpec(spec, 20);
            return std::string("(no error)");
        } catch (const ConfigError &err) {
            return std::string(err.what());
        }
    };
    // Offending spec plus 1-based position of the bad character.
    EXPECT_NE(diagnostic("linear:6:sX").find("'linear:6:sX':11"),
              std::string::npos);
    EXPECT_NE(diagnostic("linear:0").find("'linear:0':8"),
              std::string::npos);
    EXPECT_NE(diagnostic("grid:2xx3").find("'grid:2xx3'"),
              std::string::npos);
    EXPECT_NE(diagnostic("linear:2x3").find("takes 1 size"),
              std::string::npos);
    EXPECT_NE(diagnostic("grid:23").find("takes 2 sizes"),
              std::string::npos);
    EXPECT_NE(diagnostic("ring").find("expected ':'"),
              std::string::npos);
    EXPECT_NE(diagnostic("linear:6:q4").find("unknown spec suffix"),
              std::string::npos);
    EXPECT_NE(diagnostic("linear:6:s2:s3").find("duplicate ':sN'"),
              std::string::npos);
    EXPECT_NE(diagnostic("topo:").find("path after 'topo:'"),
              std::string::npos);
    // validateTopologySpec raises the same syntax errors without
    // building and accepts every well-formed spec.
    EXPECT_THROW(validateTopologySpec("linear:6:sX"), ConfigError);
    EXPECT_THROW(validateTopologySpec("bogus"), ConfigError);
    EXPECT_NO_THROW(validateTopologySpec("htree:3"));
    EXPECT_NO_THROW(validateTopologySpec("topo:some/file.topo"));
}

TEST(Builders, SegmentSuffixSpecs)
{
    const Topology linear = makeFromSpec("linear:6:s4", 20);
    EXPECT_EQ(linear.trapCount(), 6);
    for (EdgeId e = 0; e < linear.edgeCount(); ++e)
        EXPECT_EQ(linear.edge(e).segments, 4);

    const Topology grid = makeFromSpec("grid:2x3:s2", 20);
    EXPECT_EQ(grid.trapCount(), 6);
    for (EdgeId e = 0; e < grid.edgeCount(); ++e)
        EXPECT_EQ(grid.edge(e).segments, 2);

    EXPECT_EQ(makeFromSpec("L6:s3", 20).edge(0).segments, 3);
    EXPECT_THROW(makeFromSpec("linear:6:s", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("linear:6:s0", 20), ConfigError);
}

} // namespace
} // namespace qccd
