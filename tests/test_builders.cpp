/** @file Unit tests for the linear and grid topology builders. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "common/error.hpp"

namespace qccd
{
namespace
{

TEST(Builders, LinearShape)
{
    const Topology topo = makeLinear(6, 20);
    EXPECT_EQ(topo.trapCount(), 6);
    EXPECT_EQ(topo.junctionCount(), 0);
    EXPECT_EQ(topo.edgeCount(), 5);
    EXPECT_TRUE(topo.isConnected());
    EXPECT_EQ(topo.totalCapacity(), 120);
    // Interior traps have degree 2, ends degree 1.
    EXPECT_EQ(topo.degree(topo.trapNode(0)), 1);
    EXPECT_EQ(topo.degree(topo.trapNode(3)), 2);
    EXPECT_EQ(topo.degree(topo.trapNode(5)), 1);
}

TEST(Builders, SingleTrapLinear)
{
    const Topology topo = makeLinear(1, 10);
    EXPECT_EQ(topo.trapCount(), 1);
    EXPECT_EQ(topo.edgeCount(), 0);
    EXPECT_TRUE(topo.isConnected());
}

TEST(Builders, GridTwoByTwoMatchesPaperFigure)
{
    // Fig. 2b: a 2x2 QCCD grid has 5 segments and 2 junctions.
    const Topology topo = makeGrid(2, 2, 4);
    EXPECT_EQ(topo.trapCount(), 4);
    EXPECT_EQ(topo.junctionCount(), 2);
    EXPECT_EQ(topo.edgeCount(), 5);
    EXPECT_TRUE(topo.isConnected());
}

TEST(Builders, GridTwoByThreeJunctionDegrees)
{
    // G2x3: rail of 3 junctions; ends are 3-way (Y), middle 4-way (X).
    const Topology topo = makeGrid(2, 3, 20);
    EXPECT_EQ(topo.trapCount(), 6);
    EXPECT_EQ(topo.junctionCount(), 3);
    EXPECT_EQ(topo.edgeCount(), 8);

    int y_count = 0;
    int x_count = 0;
    for (NodeId n = 0; n < topo.nodeCount(); ++n) {
        if (topo.node(n).kind != NodeKind::Junction)
            continue;
        if (topo.degree(n) == 3)
            ++y_count;
        else if (topo.degree(n) == 4)
            ++x_count;
    }
    EXPECT_EQ(y_count, 2);
    EXPECT_EQ(x_count, 1);
}

TEST(Builders, GridTrapsHaveDegreeOne)
{
    const Topology topo = makeGrid(2, 3, 20);
    for (TrapId t = 0; t < topo.trapCount(); ++t)
        EXPECT_EQ(topo.degree(topo.trapNode(t)), 1);
}

TEST(Builders, SpecStrings)
{
    EXPECT_EQ(makeFromSpec("linear:6", 20).trapCount(), 6);
    EXPECT_EQ(makeFromSpec("L6", 20).trapCount(), 6);
    EXPECT_EQ(makeFromSpec("l4", 20).trapCount(), 4);
    EXPECT_EQ(makeFromSpec("grid:2x3", 20).trapCount(), 6);
    EXPECT_EQ(makeFromSpec("G2x3", 20).junctionCount(), 3);
    EXPECT_EQ(makeFromSpec("g3x4", 20).trapCount(), 12);
}

TEST(Builders, BadSpecsRejected)
{
    EXPECT_THROW(makeFromSpec("", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("hex:3", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("linear:", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("linear:abc", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("grid:2", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("grid:0x3", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("grid:2x", 20), ConfigError);
}

TEST(Builders, GridNeedsTwoColumns)
{
    EXPECT_THROW(makeGrid(2, 1, 10), ConfigError);
    EXPECT_NO_THROW(makeGrid(1, 2, 10));
}

TEST(Builders, SegmentsPerEdgeRespected)
{
    const Topology topo = makeLinear(3, 10, 4);
    for (EdgeId e = 0; e < topo.edgeCount(); ++e)
        EXPECT_EQ(topo.edge(e).segments, 4);
}

TEST(Builders, SegmentSuffixSpecs)
{
    const Topology linear = makeFromSpec("linear:6:s4", 20);
    EXPECT_EQ(linear.trapCount(), 6);
    for (EdgeId e = 0; e < linear.edgeCount(); ++e)
        EXPECT_EQ(linear.edge(e).segments, 4);

    const Topology grid = makeFromSpec("grid:2x3:s2", 20);
    EXPECT_EQ(grid.trapCount(), 6);
    for (EdgeId e = 0; e < grid.edgeCount(); ++e)
        EXPECT_EQ(grid.edge(e).segments, 2);

    EXPECT_EQ(makeFromSpec("L6:s3", 20).edge(0).segments, 3);
    EXPECT_THROW(makeFromSpec("linear:6:s", 20), ConfigError);
    EXPECT_THROW(makeFromSpec("linear:6:s0", 20), ConfigError);
}

} // namespace
} // namespace qccd
