/** @file Unit tests for the device topology graph. */

#include <gtest/gtest.h>

#include "arch/topology.hpp"
#include "common/error.hpp"

namespace qccd
{
namespace
{

TEST(Topology, AddTrapAndJunction)
{
    Topology topo;
    const NodeId t0 = topo.addTrap(10);
    const NodeId t1 = topo.addTrap(12);
    const NodeId j = topo.addJunction();

    EXPECT_EQ(topo.nodeCount(), 3);
    EXPECT_EQ(topo.trapCount(), 2);
    EXPECT_EQ(topo.junctionCount(), 1);
    EXPECT_EQ(topo.node(t0).kind, NodeKind::Trap);
    EXPECT_EQ(topo.node(t0).capacity, 10);
    EXPECT_EQ(topo.node(j).kind, NodeKind::Junction);
    EXPECT_EQ(topo.trapNode(0), t0);
    EXPECT_EQ(topo.trapNode(1), t1);
    EXPECT_EQ(topo.totalCapacity(), 22);
}

TEST(Topology, ValidateAcceptsWellFormedGraphs)
{
    Topology topo;
    const NodeId a = topo.addTrap(4);
    const NodeId b = topo.addTrap(4);
    const NodeId j = topo.addJunction();
    topo.connect(a, j);
    topo.connect(b, j);
    EXPECT_NO_THROW(topo.validate());
}

TEST(Topology, ValidateRejectsNoTraps)
{
    Topology empty;
    EXPECT_THROW(empty.validate(), ConfigError);
    Topology junctions_only;
    junctions_only.addJunction();
    EXPECT_THROW(junctions_only.validate(), ConfigError);
}

TEST(Topology, ValidateRejectsDanglingJunction)
{
    Topology topo;
    const NodeId a = topo.addTrap(4);
    const NodeId j = topo.addJunction();
    topo.connect(a, j);
    try {
        topo.validate();
        FAIL() << "dangling junction accepted";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("junction node 1"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Topology, ValidateRejectsDisconnectedWithCensus)
{
    Topology topo;
    topo.addTrap(4);
    topo.addTrap(4);
    topo.addTrap(4);
    topo.connect(0, 1);
    try {
        topo.validate();
        FAIL() << "disconnected graph accepted";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("only 2 of 3 nodes"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Topology, NameRoundTripsAndPrefixesSummary)
{
    Topology topo;
    topo.addTrap(4);
    EXPECT_EQ(topo.name(), "");
    EXPECT_EQ(topo.summary().rfind("1 traps", 0), 0u);
    topo.setName("ringlet");
    EXPECT_EQ(topo.name(), "ringlet");
    EXPECT_EQ(topo.summary().rfind("ringlet: ", 0), 0u);
}

TEST(Topology, ConnectBuildsAdjacency)
{
    Topology topo;
    const NodeId a = topo.addTrap(4);
    const NodeId b = topo.addTrap(4);
    const EdgeId e = topo.connect(a, b, 3);

    EXPECT_EQ(topo.edgeCount(), 1);
    EXPECT_EQ(topo.edge(e).segments, 3);
    EXPECT_EQ(topo.edge(e).other(a), b);
    EXPECT_EQ(topo.edge(e).other(b), a);
    EXPECT_EQ(topo.degree(a), 1);
    EXPECT_EQ(topo.incidentEdges(b).size(), 1u);
}

TEST(Topology, ConnectivityDetection)
{
    Topology topo;
    const NodeId a = topo.addTrap(4);
    const NodeId b = topo.addTrap(4);
    const NodeId c = topo.addTrap(4);
    topo.connect(a, b);
    EXPECT_FALSE(topo.isConnected());
    topo.connect(b, c);
    EXPECT_TRUE(topo.isConnected());
}

TEST(Topology, EmptyGraphIsConnected)
{
    Topology topo;
    EXPECT_TRUE(topo.isConnected());
}

TEST(Topology, InvalidConstructionRejected)
{
    Topology topo;
    const NodeId a = topo.addTrap(4);
    EXPECT_THROW(topo.addTrap(1), ConfigError);
    EXPECT_THROW(topo.connect(a, a), ConfigError);
    EXPECT_THROW(topo.connect(a, 99), ConfigError);
    const NodeId b = topo.addTrap(4);
    EXPECT_THROW(topo.connect(a, b, 0), ConfigError);
}

TEST(Topology, OutOfRangeAccessPanics)
{
    Topology topo;
    topo.addTrap(4);
    EXPECT_THROW(topo.node(5), InternalError);
    EXPECT_THROW(topo.edge(0), InternalError);
    EXPECT_THROW(topo.trapNode(1), InternalError);
}

TEST(Topology, SummaryMentionsCounts)
{
    Topology topo;
    topo.addTrap(4);
    topo.addTrap(4);
    topo.connect(0, 1);
    const std::string s = topo.summary();
    EXPECT_NE(s.find("2 traps"), std::string::npos);
    EXPECT_NE(s.find("1 edges"), std::string::npos);
    EXPECT_NE(s.find("capacity 8"), std::string::npos);
}

} // namespace
} // namespace qccd
