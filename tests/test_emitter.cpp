/** @file Unit tests for primitive op emission and chain reordering. */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/builders.hpp"
#include "compiler/reorder.hpp"
#include "sim/metrics.hpp"

namespace qccd
{
namespace
{

/** Fixture: 5 ions [0..4] in trap 0 of a 2-trap linear device. */
class EmitterTest : public ::testing::Test
{
  protected:
    EmitterTest()
        : topo_(makeLinear(2, 8)), state_(topo_, 5),
          emitter_(state_, hw_, result_, &trace_)
    {
        for (IonId i = 0; i < 5; ++i)
            state_.placeIon(0, i, i);
    }

    HardwareParams hw_;
    Topology topo_;
    DeviceState state_;
    SimResult result_;
    Trace trace_;
    PrimitiveEmitter emitter_;
};

TEST_F(EmitterTest, MsGateChargesTrapTimeline)
{
    const TimeUs end = emitter_.emitMs(0, 1, 0, false);
    // FM on a 5-ion chain: max(13.33*5-54, 100) = 100 us.
    EXPECT_DOUBLE_EQ(end, 100.0);
    ASSERT_EQ(trace_.size(), 1u);
    EXPECT_EQ(trace_[0].kind, PrimKind::GateMS);
    EXPECT_EQ(trace_[0].separation, 1);
    EXPECT_EQ(trace_[0].chainLength, 5);
    EXPECT_EQ(result_.counts.algorithmMs, 1);

    // A second gate in the same trap serializes.
    const TimeUs end2 = emitter_.emitMs(2, 3, 0, false);
    EXPECT_DOUBLE_EQ(end2, 200.0);
}

TEST_F(EmitterTest, MsFidelityMatchesModel)
{
    state_.setEnergy(0, 2.0);
    emitter_.emitMs(0, 4, 0, false);
    const FidelityModel model = hw_.fidelityModel();
    const GateTimeModel times = hw_.gateTimeModel();
    const double expected =
        model.twoQubitFidelity(times.twoQubit(4, 5), 5, 2.0);
    EXPECT_NEAR(trace_[0].fidelity, expected, 1e-12);
    EXPECT_NEAR(result_.logFidelity, std::log(expected), 1e-12);
}

TEST_F(EmitterTest, OneQubitAndMeasureTimes)
{
    EXPECT_DOUBLE_EQ(emitter_.emitOneQubit(3, 0), 5.0);
    EXPECT_DOUBLE_EQ(emitter_.emitMeasure(3, 0), 155.0);
    EXPECT_EQ(result_.counts.oneQubit, 1);
    EXPECT_EQ(result_.counts.measurements, 1);
}

TEST_F(EmitterTest, SplitDetachesAndHeats)
{
    state_.setEnergy(0, 1.0);
    IonId ion = kInvalidId;
    const TimeUs end = emitter_.emitSplit(0, ChainEnd::Right, 0, &ion);
    EXPECT_DOUBLE_EQ(end, 80.0);
    EXPECT_EQ(ion, 4);
    EXPECT_EQ(state_.chain(0).size(), 4);
    // Chain keeps 4/5 of the energy plus k1; the ion takes 1/5 + k1.
    EXPECT_NEAR(state_.energy(0), 0.8 + 0.1, 1e-12);
    EXPECT_NEAR(state_.flightEnergy(ion), 0.2 + 0.1, 1e-12);
    EXPECT_EQ(result_.counts.splits, 1);
}

TEST_F(EmitterTest, MergeAttachesAndHeats)
{
    IonId ion = kInvalidId;
    emitter_.emitSplit(0, ChainEnd::Right, 0, &ion);
    const Quanta ion_energy = state_.flightEnergy(ion);
    const Quanta chain_energy = state_.energy(0);

    // Merge starts at ready=100 (split ended at 80) and runs 80 us.
    const TimeUs end = emitter_.emitMerge(1, ChainEnd::Left, ion, 100);
    EXPECT_DOUBLE_EQ(end, 180.0);
    EXPECT_EQ(state_.trapOf(ion), 1);
    // Empty destination chain: merged energy = 0 + ion energy + k1.
    EXPECT_NEAR(state_.energy(1), ion_energy + 0.1, 1e-12);
    EXPECT_EQ(result_.counts.merges, 1);
    (void)chain_energy;
}

TEST_F(EmitterTest, MoveAddsEnergyPerSegment)
{
    IonId ion = kInvalidId;
    emitter_.emitSplit(0, ChainEnd::Right, 0, &ion);
    const Quanta before = state_.flightEnergy(ion);
    const TimeUs end = emitter_.emitMove(0, ion, 1000);
    EXPECT_DOUBLE_EQ(end, 1005.0); // one segment, 5 us
    EXPECT_NEAR(state_.flightEnergy(ion), before + 0.01, 1e-12);
    EXPECT_EQ(result_.counts.segmentsMoved, 1);
}

TEST_F(EmitterTest, GsReorderUsesThreeGates)
{
    TimeUs done = 0;
    const IonId carrier =
        emitter_.reorderToEnd(0, ChainEnd::Right, 0, &done);
    // Payload 0 teleports into the ion already at the right end.
    EXPECT_EQ(carrier, 4);
    EXPECT_EQ(state_.payloadOf(4), 0);
    EXPECT_EQ(state_.payloadOf(0), 4);
    EXPECT_EQ(result_.counts.reorderMs, 3);
    EXPECT_DOUBLE_EQ(done, 300.0); // 3 FM gates at 100 us
    // Physical order unchanged under GS.
    EXPECT_EQ(state_.positionOf(0), 0);
}

TEST_F(EmitterTest, GsReorderNoOpWhenAlreadyAtEnd)
{
    TimeUs done = 123;
    const IonId carrier =
        emitter_.reorderToEnd(4, ChainEnd::Right, 123, &done);
    EXPECT_EQ(carrier, 4);
    EXPECT_DOUBLE_EQ(done, 123.0);
    EXPECT_TRUE(trace_.empty());
}

TEST_F(EmitterTest, IsReorderHopsPhysically)
{
    hw_.reorder = ReorderMethod::IS;
    PrimitiveEmitter is_emitter(state_, hw_, result_, &trace_);
    TimeUs done = 0;
    const IonId carrier =
        is_emitter.reorderToEnd(3, ChainEnd::Left, 0, &done);
    // IS moves the same physical ion all the way to the left end.
    EXPECT_EQ(carrier, 3);
    EXPECT_EQ(state_.positionOf(3), 0);
    EXPECT_TRUE(state_.positionIndexConsistent());
    // Three hops, each split+rotate+merge on a >2 ion chain.
    EXPECT_EQ(result_.counts.rotations, 3);
    EXPECT_EQ(result_.counts.splits, 3);
    EXPECT_EQ(result_.counts.merges, 3);
    // Each hop adds 3*k1 = 0.3 quanta.
    EXPECT_NEAR(state_.energy(0), 0.9, 1e-12);
    EXPECT_DOUBLE_EQ(done, 3 * (80 + 50 + 80));
}

TEST_F(EmitterTest, IsReorderTwoIonChainRotatesOnly)
{
    hw_.reorder = ReorderMethod::IS;
    const Topology small = makeLinear(1, 4);
    DeviceState state(small, 2);
    state.placeIon(0, 0, 0);
    state.placeIon(0, 1, 1);
    SimResult result;
    Trace trace;
    PrimitiveEmitter emitter(state, hw_, result, &trace);
    TimeUs done = 0;
    emitter.reorderToEnd(1, ChainEnd::Left, 0, &done);
    EXPECT_EQ(result.counts.rotations, 1);
    EXPECT_EQ(result.counts.splits, 0);
    EXPECT_DOUBLE_EQ(done, 50.0);
    EXPECT_EQ(state.positionOf(1), 0);
}

TEST_F(EmitterTest, ZeroCommModeKeepsHeatingAndFidelity)
{
    SimResult result;
    Trace trace;
    PrimitiveEmitter zero(state_, hw_, result, &trace, true);
    IonId ion = kInvalidId;
    const TimeUs end = zero.emitSplit(0, ChainEnd::Right, 0, &ion);
    EXPECT_DOUBLE_EQ(end, 0.0); // zero duration
    EXPECT_GT(state_.flightEnergy(ion), 0.0); // heating still applied
}

TEST_F(EmitterTest, QubitReadinessRespected)
{
    emitter_.qubitReady()[2] = 500.0;
    const TimeUs end = emitter_.emitOneQubit(2, 0);
    EXPECT_DOUBLE_EQ(end, 505.0);
}

} // namespace
} // namespace qccd
