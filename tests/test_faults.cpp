/**
 * @file
 * Fault-injection campaign for the failure-isolation contract
 * (common/faultpoint.hpp, SweepEngine FailurePolicy, SweepRunPolicy):
 * every registered fault site is armed in turn and the sweep must
 * survive it — the faulted point carries a classified outcome and a
 * diagnostic, every other point is byte-identical to a fault-free run.
 * Also covers the cooperative watchdog (common/deadline.hpp) through
 * the deterministic Deadline::expired() hook.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "compiler/scheduler.hpp"
#include "core/export.hpp"
#include "core/sweep_engine.hpp"
#include "core/sweep_spec.hpp"

namespace qccd
{
namespace
{

/** Disarms injection after every test, pass or fail. */
class FaultsTest : public ::testing::Test
{
  protected:
    void TearDown() override { clearFaultInject(); }
};

/** qft at capacity 14 evicts and shuttles heavily, so one point hits
 *  every scheduler/router/shuttle site; capacity 18 is the survivor
 *  that must stay bit-identical. */
std::vector<PlannedPoint>
twoPoints()
{
    return parseSweepSpec(R"({
        "name": "faults",
        "sweeps": [{"apps": "qft", "capacity": [14, 18]}]
    })").points;
}

std::vector<SweepPoint>
runKeepGoing(const std::vector<PlannedPoint> &points,
             SweepRunStats *stats = nullptr, size_t max_errors = 0)
{
    SweepEngine engine(1); // one worker: the faulting point is fixed
    SweepSpecRunner runner(engine);
    SweepRunPolicy policy;
    policy.keepGoing = true;
    policy.maxErrors = max_errors;
    std::vector<SweepPoint> out;
    const SweepRunStats s = runner.run(
        points, 0, [&](const SweepPoint &p) { out.push_back(p); },
        policy);
    if (stats != nullptr)
        *stats = s;
    return out;
}

TEST_F(FaultsTest, EveryRegisteredSiteIsIsolatedUnderKeepGoing)
{
    // Fault-free reference for the surviving point.
    const std::vector<SweepPoint> clean = runKeepGoing(twoPoints());
    ASSERT_EQ(clean.size(), 2u);
    ASSERT_TRUE(clean[0].ok());
    ASSERT_TRUE(clean[1].ok());

    size_t covered = 0;
    size_t skipped = 0;
    for (const std::string &site : faultSiteNames()) {
        if (site == "export.row" ||
            site.rfind("cache.", 0) == 0) {
            // export.row lives in the writer (covered below); the
            // cache sites never fire in a cacheless sweep and are
            // armed against a cached one in test_result_store.
            ++skipped;
            continue;
        }
        setFaultInjectSpec(site + "=1");
        SweepRunStats stats;
        const std::vector<SweepPoint> got =
            runKeepGoing(twoPoints(), &stats);
        clearFaultInject();

        ASSERT_EQ(got.size(), 2u) << site;
        EXPECT_EQ(stats.evaluated, 2u) << site;
        EXPECT_EQ(stats.failed, 1u) << site;
        EXPECT_FALSE(stats.aborted) << site;
        // The first hit of every site lands in point 0 (one worker).
        EXPECT_FALSE(got[0].ok()) << site;
        EXPECT_NE(got[0].error.find(site), std::string::npos) << site;
        ASSERT_TRUE(got[1].ok()) << site;
        // The survivor is byte-identical to the fault-free run.
        EXPECT_EQ(sweepCsvRow(got[1]), sweepCsvRow(clean[1])) << site;
        ++covered;
    }
    EXPECT_EQ(covered, faultSiteNames().size() - skipped);
    EXPECT_EQ(skipped, 5u); // export.row + the four cache.* sites
}

TEST_F(FaultsTest, ExportRowSiteFaultsTheWriter)
{
    const std::vector<SweepPoint> clean = runKeepGoing(twoPoints());
    std::ostringstream out;
    SweepRowWriter writer(out, ExportFormat::Csv);
    setFaultInjectSpec("export.row=1");
    EXPECT_THROW(writer.write(clean[0]), InternalError);
    clearFaultInject();
    writer.write(clean[0]); // the writer itself survives the fault
    EXPECT_EQ(writer.rowsWritten(), 1u);
}

TEST_F(FaultsTest, FaultKindsClassifyIntoOutcomes)
{
    const struct
    {
        const char *kind;
        PointOutcome outcome;
    } cases[] = {
        {"throw", PointOutcome::Error},
        {"alloc", PointOutcome::Error},
        {"config", PointOutcome::Infeasible},
        {"timeout", PointOutcome::Timeout},
    };
    for (const auto &c : cases) {
        setFaultInjectSpec(std::string("toolflow.run=1:") + c.kind);
        const std::vector<SweepPoint> got = runKeepGoing(twoPoints());
        clearFaultInject();
        ASSERT_EQ(got.size(), 2u) << c.kind;
        EXPECT_EQ(got[0].outcome, c.outcome) << c.kind;
        EXPECT_FALSE(got[0].error.empty()) << c.kind;
        EXPECT_TRUE(got[1].ok()) << c.kind;
    }
}

TEST_F(FaultsTest, RethrowPolicyIsStillTheDefault)
{
    setFaultInjectSpec("toolflow.run=1");
    SweepEngine engine(1);
    SweepSpecRunner runner(engine);
    EXPECT_THROW(
        runner.run(twoPoints(), 0, [](const SweepPoint &) {}),
        InternalError);
}

TEST_F(FaultsTest, MaxErrorsStopsTheSweepMidBatch)
{
    const std::vector<PlannedPoint> points = parseSweepSpec(R"({
        "name": "budget",
        "sweeps": [{"apps": "qft", "capacity": [14, 18, 22]}]
    })").points;
    setFaultInjectSpec("toolflow.run=1,toolflow.run=2");
    SweepRunStats stats;
    const std::vector<SweepPoint> got =
        runKeepGoing(points, &stats, 2);
    EXPECT_TRUE(stats.aborted);
    EXPECT_EQ(stats.evaluated, 2u);
    EXPECT_EQ(stats.failed, 2u);
    EXPECT_EQ(got.size(), 2u); // the third point was never launched
}

TEST_F(FaultsTest, BudgetTrippedOnTheLastPointIsNotAnAbort)
{
    setFaultInjectSpec("toolflow.run=2");
    SweepRunStats stats;
    const std::vector<SweepPoint> got =
        runKeepGoing(twoPoints(), &stats, 1);
    EXPECT_FALSE(stats.aborted); // nothing was cut short
    EXPECT_EQ(stats.evaluated, 2u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_TRUE(got[0].ok());
    EXPECT_FALSE(got[1].ok());
}

TEST_F(FaultsTest, UnloadableCircuitIsAPointFailureNotASweepFailure)
{
    std::vector<PlannedPoint> points = twoPoints();
    points[0].application = "ghost";
    points[0].qasmPath = "/nonexistent/ghost.qasm";
    SweepRunStats stats;
    const std::vector<SweepPoint> got = runKeepGoing(points, &stats);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].outcome, PointOutcome::Infeasible);
    EXPECT_EQ(got[0].application, "ghost");
    EXPECT_FALSE(got[0].error.empty());
    EXPECT_TRUE(got[1].ok());
    EXPECT_EQ(stats.failed, 1u);
}

TEST_F(FaultsTest, SpecGrammarRejectsTyposLoudly)
{
    EXPECT_THROW(setFaultInjectSpec("nope=1"), ConfigError);
    EXPECT_THROW(setFaultInjectSpec("toolflow.run"), ConfigError);
    EXPECT_THROW(setFaultInjectSpec("toolflow.run=0"), ConfigError);
    EXPECT_THROW(setFaultInjectSpec("toolflow.run=x"), ConfigError);
    EXPECT_THROW(setFaultInjectSpec("toolflow.run=1:weird"),
                 ConfigError);
    EXPECT_THROW(setFaultInjectSpec(""), ConfigError);
}

TEST_F(FaultsTest, ClearDisarmsAndResetsCounters)
{
    setFaultInjectSpec("toolflow.run=1");
    clearFaultInject();
    const std::vector<SweepPoint> got = runKeepGoing(twoPoints());
    EXPECT_TRUE(got[0].ok());
    EXPECT_TRUE(got[1].ok());
}

// ---------------------------------------------------------------------
// Watchdog deadlines
// ---------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsUnarmedAndNeverThrows)
{
    const Deadline deadline;
    EXPECT_FALSE(deadline.armed());
    EXPECT_NO_THROW(deadline.check("anywhere"));
}

TEST(DeadlineTest, ExpiredDeadlineThrowsWithTheStageName)
{
    const Deadline deadline = Deadline::expired();
    EXPECT_TRUE(deadline.armed());
    EXPECT_TRUE(deadline.exceededNow());
    try {
        deadline.check("scheduler.pop");
        FAIL() << "expected TimeoutError";
    } catch (const TimeoutError &err) {
        EXPECT_NE(std::string(err.what()).find("scheduler.pop"),
                  std::string::npos);
    }
}

TEST(DeadlineTest, NegativeBudgetIsRejected)
{
    EXPECT_THROW(Deadline::afterMs(-1), ConfigError);
}

TEST(DeadlineTest, SchedulerHonorsAnExpiredDeadlineDeterministically)
{
    const Circuit native = decomposeToNative(makeQft(16));
    const Topology topo = makeLinear(6, 22);
    const HardwareParams hw;
    ScheduleOptions options;
    options.collectTrace = false;
    options.deadline = Deadline::expired();
    Scheduler sched(native, topo, hw, options);
    EXPECT_THROW(sched.run(), TimeoutError);
}

TEST(DeadlineTest, GenerousDeadlineDoesNotPerturbResults)
{
    const Circuit native = decomposeToNative(makeQft(16));
    const Topology topo = makeLinear(6, 22);
    const HardwareParams hw;
    ScheduleOptions plain;
    plain.collectTrace = false;
    ScheduleOptions guarded = plain;
    guarded.deadline = Deadline::afterMs(60'000);
    const auto a = Scheduler(native, topo, hw, plain).run();
    const auto b = Scheduler(native, topo, hw, guarded).run();
    EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
    EXPECT_EQ(a.metrics.counts.shuttles, b.metrics.counts.shuttles);
}

} // namespace
} // namespace qccd
