/** @file Unit + property tests for the MS gate duration models. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/gate_time.hpp"

namespace qccd
{
namespace
{

TEST(GateTime, Am1MatchesPaperFit)
{
    GateTimeModel model(GateImpl::AM1);
    // tau(d) = 100*d - 22
    EXPECT_DOUBLE_EQ(model.twoQubit(1, 10), 78.0);
    EXPECT_DOUBLE_EQ(model.twoQubit(3, 10), 278.0);
    EXPECT_DOUBLE_EQ(model.twoQubit(9, 10), 878.0);
}

TEST(GateTime, Am2MatchesPaperFit)
{
    GateTimeModel model(GateImpl::AM2);
    // tau(d) = 38*d + 10
    EXPECT_DOUBLE_EQ(model.twoQubit(1, 10), 48.0);
    EXPECT_DOUBLE_EQ(model.twoQubit(5, 10), 200.0);
}

TEST(GateTime, PmMatchesPaperFit)
{
    GateTimeModel model(GateImpl::PM);
    // tau(d) = 5*d + 160
    EXPECT_DOUBLE_EQ(model.twoQubit(1, 10), 165.0);
    EXPECT_DOUBLE_EQ(model.twoQubit(8, 10), 200.0);
}

TEST(GateTime, FmMatchesPaperFit)
{
    GateTimeModel model(GateImpl::FM);
    // tau(N) = max(13.33*N - 54, 100): constant 100 below ~12 ions.
    EXPECT_DOUBLE_EQ(model.twoQubit(1, 5), 100.0);
    EXPECT_DOUBLE_EQ(model.twoQubit(3, 11), 100.0);
    EXPECT_NEAR(model.twoQubit(1, 20), 13.33 * 20 - 54, 1e-9);
    EXPECT_NEAR(model.twoQubit(7, 30), 13.33 * 30 - 54, 1e-9);
}

TEST(GateTime, FmIgnoresSeparation)
{
    GateTimeModel model(GateImpl::FM);
    for (int d = 1; d < 20; ++d)
        EXPECT_DOUBLE_EQ(model.twoQubit(d, 20), model.twoQubit(1, 20));
}

TEST(GateTime, AmPmIgnoreChainLength)
{
    for (GateImpl impl : {GateImpl::AM1, GateImpl::AM2, GateImpl::PM}) {
        GateTimeModel model(impl);
        for (int n = 4; n <= 30; n += 2)
            EXPECT_DOUBLE_EQ(model.twoQubit(3, n), model.twoQubit(3, 4))
                << gateImplName(impl);
    }
}

TEST(GateTime, InvalidGeometryPanics)
{
    GateTimeModel model(GateImpl::FM);
    EXPECT_THROW(model.twoQubit(0, 5), InternalError);
    EXPECT_THROW(model.twoQubit(1, 1), InternalError);
    EXPECT_THROW(model.twoQubit(5, 5), InternalError);
}

TEST(GateTime, NamesRoundTrip)
{
    for (GateImpl impl : {GateImpl::AM1, GateImpl::AM2, GateImpl::PM,
                          GateImpl::FM})
        EXPECT_EQ(gateImplFromName(gateImplName(impl)), impl);
    EXPECT_THROW(gateImplFromName("??"), ConfigError);
}

TEST(GateTime, BadConstructionRejected)
{
    EXPECT_THROW(GateTimeModel(GateImpl::FM, -1.0), ConfigError);
    EXPECT_THROW(GateTimeModel(GateImpl::FM, 5.0, 0.0), ConfigError);
    EXPECT_THROW(GateTimeModel(GateImpl::FM, 5.0, 150.0, -2.0),
                 ConfigError);
}

/** Property sweep: durations are positive and monotone in distance. */
class GateTimeProperty : public ::testing::TestWithParam<GateImpl>
{
};

TEST_P(GateTimeProperty, PositiveAndMonotone)
{
    GateTimeModel model(GetParam());
    for (int n = 4; n <= 34; n += 3) {
        double prev = 0;
        for (int d = 1; d < n; ++d) {
            const double tau = model.twoQubit(d, n);
            EXPECT_GT(tau, 0) << gateImplName(GetParam());
            EXPECT_GE(tau, prev) << gateImplName(GetParam());
            prev = tau;
        }
    }
}

TEST_P(GateTimeProperty, MonotoneInChainLengthForFm)
{
    GateTimeModel model(GetParam());
    double prev = 0;
    for (int n = 4; n <= 34; ++n) {
        const double tau = model.twoQubit(1, n);
        if (GetParam() == GateImpl::FM) {
            EXPECT_GE(tau, prev);
        }
        prev = tau;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, GateTimeProperty,
    ::testing::Values(GateImpl::AM1, GateImpl::AM2, GateImpl::PM,
                      GateImpl::FM),
    [](const ::testing::TestParamInfo<GateImpl> &info) {
        return gateImplName(info.param);
    });

} // namespace
} // namespace qccd
