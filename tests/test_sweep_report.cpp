/** @file Tests for sweep helpers and report formatting. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/report.hpp"
#include "core/sweep.hpp"

namespace qccd
{
namespace
{

TEST(Sweep, PaperCapacitiesMatchFigureAxes)
{
    const auto caps = paperCapacities();
    ASSERT_EQ(caps.size(), 6u);
    EXPECT_EQ(caps.front(), 14);
    EXPECT_EQ(caps.back(), 34);
    for (size_t i = 1; i < caps.size(); ++i)
        EXPECT_EQ(caps[i] - caps[i - 1], 4);
}

TEST(Sweep, RunsGridOfPoints)
{
    // Paper-scale BV has 64 qubits; three traps of 26/30 fit it.
    const auto points = sweepCapacity(
        {"bv"}, {26, 30},
        [](int cap) { return DesignPoint::linear(3, cap); });
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].application, "bv");
    EXPECT_EQ(points[0].design.trapCapacity, 26);
    EXPECT_EQ(points[1].design.trapCapacity, 30);
    for (const SweepPoint &p : points) {
        EXPECT_GT(p.result.totalTime(), 0.0);
        EXPECT_GT(p.result.fidelity(), 0.0);
    }
}

TEST(Report, SummaryMentionsKeyNumbers)
{
    DesignPoint dp = DesignPoint::linear(3, 8);
    Circuit c(4, "tiny");
    c.ms(0, 1);
    c.measureAll();
    const RunResult r = runToolflow(c, dp);
    const std::string s = summarizeRun("tiny", dp, r);
    EXPECT_NE(s.find("tiny"), std::string::npos);
    EXPECT_NE(s.find("linear:3"), std::string::npos);
    EXPECT_NE(s.find("fidelity"), std::string::npos);
}

TEST(Report, SeriesTableHasAppRowsAndCapacityColumns)
{
    const auto points = sweepCapacity(
        {"bv", "adder"}, {26, 30},
        [](int cap) { return DesignPoint::linear(3, cap); });
    const std::string table =
        seriesTable(points, metricFidelity, "fidelity");
    EXPECT_NE(table.find("bv"), std::string::npos);
    EXPECT_NE(table.find("adder"), std::string::npos);
    EXPECT_NE(table.find("26"), std::string::npos);
    EXPECT_NE(table.find("30"), std::string::npos);
}

TEST(Report, MetricExtractors)
{
    RunResult r;
    r.sim.makespan = 2e6; // 2 s
    r.sim.logFidelity = -1.0;
    r.sim.maxChainEnergy = 42;
    r.computeOnlyTime = 0.5e6;
    EXPECT_DOUBLE_EQ(metricTimeSeconds(r), 2.0);
    EXPECT_DOUBLE_EQ(metricLogFidelity(r), -1.0);
    EXPECT_DOUBLE_EQ(metricMaxEnergy(r), 42.0);
    EXPECT_DOUBLE_EQ(metricComputeTimeSeconds(r), 0.5);
    EXPECT_DOUBLE_EQ(metricCommTimeSeconds(r), 1.5);
    EXPECT_NEAR(metricFidelity(r), std::exp(-1.0), 1e-12);
}

} // namespace
} // namespace qccd
