/** @file Cross-validation tests: recompute metrics independently from
 *  the emitted trace and compare against the scheduler's accumulators.
 *  This catches any place where time, fidelity or counts could be
 *  charged twice or skipped. */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "circuit/stats.hpp"
#include "compiler/scheduler.hpp"

namespace qccd
{
namespace
{

class ReplayConsistency
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(ReplayConsistency, TraceReproducesScalarMetrics)
{
    const auto &[app, cap] = GetParam();
    const Circuit native =
        decomposeToNative(makeBenchmarkSized(app, 20));
    const Topology topo = makeLinear(4, cap);
    HardwareParams hw;
    Scheduler sched(native, topo, hw);
    const ScheduleResult r = sched.run();

    // Replay the trace: recompute makespan, the fidelity product and
    // the op counts from the raw op stream.
    TimeUs makespan = 0;
    double log_fid = 0;
    long ms = 0;
    long reorder_ms = 0;
    long splits = 0;
    long merges = 0;
    for (const PrimOp &op : r.trace) {
        makespan = std::max(makespan, op.end());
        log_fid += std::log(std::max(op.fidelity, 1e-15));
        switch (op.kind) {
          case PrimKind::GateMS:
            op.forCommunication ? ++reorder_ms : ++ms;
            break;
          case PrimKind::Split:
            ++splits;
            break;
          case PrimKind::Merge:
            ++merges;
            break;
          default:
            break;
        }
    }
    EXPECT_DOUBLE_EQ(makespan, r.metrics.makespan);
    EXPECT_NEAR(log_fid, r.metrics.logFidelity,
                std::abs(log_fid) * 1e-12 + 1e-12);
    EXPECT_EQ(ms, r.metrics.counts.algorithmMs);
    EXPECT_EQ(reorder_ms, r.metrics.counts.reorderMs);
    EXPECT_EQ(splits, r.metrics.counts.splits);
    EXPECT_EQ(merges, r.metrics.counts.merges);
}

TEST_P(ReplayConsistency, AlgorithmGateCountMatchesCircuit)
{
    const auto &[app, cap] = GetParam();
    const Circuit native =
        decomposeToNative(makeBenchmarkSized(app, 20));
    const CircuitStats stats = computeStats(native);
    const Topology topo = makeLinear(4, cap);
    HardwareParams hw;
    Scheduler sched(native, topo, hw);
    const ScheduleResult r = sched.run();

    // Every program gate executes exactly once, regardless of how much
    // communication the placement needed.
    EXPECT_EQ(r.metrics.counts.algorithmMs, stats.twoQubitGates);
    EXPECT_EQ(r.metrics.counts.oneQubit, stats.oneQubitGates);
    EXPECT_EQ(r.metrics.counts.measurements, stats.measurements);
}

TEST_P(ReplayConsistency, MsGateFidelitiesMatchModelPointwise)
{
    const auto &[app, cap] = GetParam();
    const Circuit native =
        decomposeToNative(makeBenchmarkSized(app, 20));
    const Topology topo = makeLinear(4, cap);
    HardwareParams hw;
    Scheduler sched(native, topo, hw);
    const ScheduleResult r = sched.run();

    const GateTimeModel times = hw.gateTimeModel();
    const FidelityModel model = hw.fidelityModel();
    for (const PrimOp &op : r.trace) {
        if (op.kind != PrimKind::GateMS)
            continue;
        const TimeUs tau =
            times.twoQubit(op.separation, op.chainLength);
        EXPECT_NEAR(op.fidelity,
                    model.twoQubitFidelity(tau, op.chainLength, op.nbar),
                    1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ReplayConsistency,
    ::testing::Combine(::testing::Values("qft", "supremacy",
                                         "squareroot", "vqe"),
                       ::testing::Values(6, 10)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_cap" +
               std::to_string(std::get<1>(info.param));
    });

TEST(ReplayConsistency, EnergyNeverNegativeAlongTrace)
{
    const Circuit native =
        decomposeToNative(makeBenchmarkSized("squareroot", 24));
    const Topology topo = makeLinear(6, 6);
    HardwareParams hw;
    Scheduler sched(native, topo, hw);
    const ScheduleResult r = sched.run();
    for (const PrimOp &op : r.trace) {
        if (op.kind == PrimKind::GateMS) {
            ASSERT_GE(op.nbar, 0.0);
        }
    }
    EXPECT_GE(r.metrics.maxChainEnergy, 0.0);
}

TEST(ReplayConsistency, RecoolingNeverIncreasesGateEnergies)
{
    const Circuit native =
        decomposeToNative(makeBenchmarkSized("qft", 20));
    const Topology topo = makeLinear(4, 8);
    HardwareParams base;
    HardwareParams cooled = base;
    cooled.recoolFactor = 0.2;

    Scheduler a(native, topo, base);
    Scheduler b(native, topo, cooled);
    const SimResult ra = a.run().metrics;
    const SimResult rb = b.run().metrics;
    EXPECT_LE(rb.maxChainEnergy, ra.maxChainEnergy);
    EXPECT_GE(rb.logFidelity, ra.logFidelity);
}

} // namespace
} // namespace qccd
