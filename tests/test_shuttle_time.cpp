/** @file Unit tests for the Table I shuttle timing model. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/shuttle_time.hpp"

namespace qccd
{
namespace
{

TEST(ShuttleTime, DefaultsMatchTableOne)
{
    ShuttleTimeModel model;
    EXPECT_DOUBLE_EQ(model.movePerSegment, 5.0);
    EXPECT_DOUBLE_EQ(model.split, 80.0);
    EXPECT_DOUBLE_EQ(model.merge, 80.0);
    EXPECT_DOUBLE_EQ(model.yJunction, 100.0);
    EXPECT_DOUBLE_EQ(model.xJunction, 120.0);
}

TEST(ShuttleTime, JunctionCrossingByDegree)
{
    ShuttleTimeModel model;
    EXPECT_DOUBLE_EQ(model.junctionCrossing(3), 100.0);
    EXPECT_DOUBLE_EQ(model.junctionCrossing(4), 120.0);
    // Degrees above four still use the X-junction time.
    EXPECT_DOUBLE_EQ(model.junctionCrossing(5), 120.0);
    // Straight-through corners (e.g. an H-tree root) cross like a Y.
    EXPECT_DOUBLE_EQ(model.junctionCrossing(2), 100.0);
}

TEST(ShuttleTime, DegreeBelowTwoPanics)
{
    ShuttleTimeModel model;
    EXPECT_THROW(model.junctionCrossing(1), InternalError);
}

TEST(ShuttleTime, ValidateRejectsNonPositive)
{
    ShuttleTimeModel model;
    model.split = 0;
    EXPECT_THROW(model.validate(), ConfigError);
    model.split = 80;
    model.ionSwapRotation = -1;
    EXPECT_THROW(model.validate(), ConfigError);
    model.ionSwapRotation = 50;
    EXPECT_NO_THROW(model.validate());
}

} // namespace
} // namespace qccd
