/** @file Tests for the automated design recommender. */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "common/error.hpp"
#include "core/recommend.hpp"

namespace qccd
{
namespace
{

/** Small candidate space so tests stay fast. */
CandidateSpace
smallSpace()
{
    CandidateSpace space;
    space.topologies = {"linear:3", "grid:2x2"};
    space.capacities = {8, 12};
    space.gates = {GateImpl::AM2, GateImpl::FM};
    space.reorders = {ReorderMethod::GS};
    return space;
}

TEST(Recommend, SpaceSizeIsProduct)
{
    EXPECT_EQ(smallSpace().size(), 2u * 2u * 2u * 1u);
    EXPECT_EQ(CandidateSpace{}.size(), 2u * 6u * 4u * 2u);
}

TEST(Recommend, RankingIsSortedBestFirst)
{
    const Circuit c = makeBenchmarkSized("squareroot", 16);
    const auto ranking = rankDesigns(c, smallSpace());
    ASSERT_EQ(ranking.size(), smallSpace().size());
    for (size_t i = 1; i < ranking.size(); ++i)
        EXPECT_GE(ranking[i - 1].score(), ranking[i].score());
}

TEST(Recommend, BestEqualsFrontOfRanking)
{
    const Circuit c = makeBenchmarkSized("qaoa", 16);
    const auto ranking = rankDesigns(c, smallSpace());
    const RankedDesign best = recommendDesign(c, smallSpace());
    EXPECT_EQ(best.design.label(), ranking.front().design.label());
    EXPECT_DOUBLE_EQ(best.score(), ranking.front().score());
}

TEST(Recommend, SkipsTooSmallCandidates)
{
    // 30 qubits do not fit linear:3 at capacity 8 (24 slots); those
    // candidates must be skipped, not fail the whole search.
    const Circuit c = makeBenchmarkSized("qft", 30);
    const auto ranking = rankDesigns(c, smallSpace());
    EXPECT_LT(ranking.size(), smallSpace().size());
    for (const RankedDesign &r : ranking) {
        EXPECT_GE(r.design.buildTopology().totalCapacity(), 30);
    }
}

TEST(Recommend, ThrowsWhenNothingFits)
{
    CandidateSpace space = smallSpace();
    space.capacities = {4};
    const Circuit c = makeBenchmarkSized("qft", 30);
    EXPECT_THROW(rankDesigns(c, space), ConfigError);
}

TEST(Recommend, GridRecommendedForIrregularWorkload)
{
    // The paper's Section IX-B conclusion, automated: SquareRoot's
    // irregular pattern should select a grid topology.
    const Circuit c = makeBenchmarkSized("squareroot", 20);
    CandidateSpace space;
    space.topologies = {"linear:4", "grid:2x2"};
    space.capacities = {8};
    space.gates = {GateImpl::FM};
    space.reorders = {ReorderMethod::GS};
    const RankedDesign best = recommendDesign(c, space);
    EXPECT_EQ(best.design.topologySpec, "grid:2x2");
}

TEST(Recommend, GsRecommendedOverIs)
{
    const Circuit c = makeBenchmarkSized("qft", 16);
    CandidateSpace space;
    space.topologies = {"linear:3"};
    space.capacities = {8};
    space.gates = {GateImpl::FM};
    space.reorders = {ReorderMethod::GS, ReorderMethod::IS};
    const RankedDesign best = recommendDesign(c, space);
    EXPECT_EQ(best.design.hw.reorder, ReorderMethod::GS);
}

TEST(Recommend, TableShowsTopRows)
{
    const Circuit c = makeBenchmarkSized("bv", 12);
    const auto ranking = rankDesigns(c, smallSpace());
    const std::string table = rankingTable(ranking, 3);
    EXPECT_NE(table.find("rank"), std::string::npos);
    EXPECT_NE(table.find("1"), std::string::npos);
    // Only 3 data rows requested: "4" must not appear as a rank.
    EXPECT_EQ(table.find("\n4  "), std::string::npos);
}

} // namespace
} // namespace qccd
