/** @file Unit + fuzz tests for the `.topo` device-file parser. */

#include <gtest/gtest.h>

#include <string>

#include "arch/topo_file.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace qccd
{
namespace
{

const char *kRing4 =
    "# a four-trap ring with a named big trap\n"
    "name ring4\n"
    "trap a 30\n"
    "trap b\n"
    "trap c\n"
    "trap d   # trailing comment\n"
    "\n"
    "edge a b\n"
    "edge b c 2\n"
    "edge c d\n"
    "edge d a\n";

TEST(TopoFile, ParsesRingWithDefaultsAndComments)
{
    const Topology topo = parseTopo(kRing4, "ring4.topo", 20);
    EXPECT_EQ(topo.name(), "ring4");
    EXPECT_EQ(topo.trapCount(), 4);
    EXPECT_EQ(topo.junctionCount(), 0);
    EXPECT_EQ(topo.edgeCount(), 4);
    // Trap "a" pins capacity 30; the rest take the default 20.
    EXPECT_EQ(topo.node(topo.trapNode(0)).capacity, 30);
    EXPECT_EQ(topo.node(topo.trapNode(1)).capacity, 20);
    EXPECT_EQ(topo.totalCapacity(), 90);
    // "edge b c 2" has two transport segments.
    EXPECT_EQ(topo.edge(1).segments, 2);
    EXPECT_TRUE(topo.isConnected());
}

TEST(TopoFile, NameDefaultsToOriginStem)
{
    const Topology topo =
        parseTopo("trap x\ntrap y\nedge x y\n",
                  "examples/topos/mydev.topo", 10);
    EXPECT_EQ(topo.name(), "mydev");
}

TEST(TopoFile, JunctionsAndDeclarationOrderFixTrapIds)
{
    const Topology topo = parseTopo("junction j\n"
                                    "trap t1\n"
                                    "trap t0\n"
                                    "edge t1 j\n"
                                    "edge t0 j\n",
                                    "star.topo", 8);
    // Dense trap ids follow declaration order: t1 first.
    EXPECT_EQ(topo.trapCount(), 2);
    EXPECT_EQ(topo.junctionCount(), 1);
    EXPECT_EQ(topo.node(topo.trapNode(0)).kind, NodeKind::Trap);
    EXPECT_EQ(topo.degree(0), 2); // the junction was node 0
}

struct BadCase
{
    const char *text;
    const char *fragment; ///< must appear in the diagnostic
};

TEST(TopoFile, DiagnosticsCarryOriginLineColumn)
{
    const BadCase cases[] = {
        {"widget a\n", "bad.topo:1:1"},
        {"trap a\nwidget b\n", "bad.topo:2:1"},
        {"trap a\ntrap a\n", "bad.topo:2:6"},
        {"trap a 1\n", "bad.topo:1:8"},
        {"trap a zap\n", "bad.topo:1:8"},
        {"trap a\ntrap b\nedge a b extra junk\n", "bad.topo:3:16"},
        {"trap a\nedge a zz\n", "bad.topo:2:8"},
        {"trap a\nedge a a\n", "bad.topo:2:8"},
        {"trap a\ntrap b\nedge a b 0\n", "bad.topo:3:10"},
        {"name x\nname y\ntrap a\n", "bad.topo:2:1"},
        {"trap\n", "bad.topo:1:1"},
        {"junction j1 j2\n", "bad.topo:1:13"},
    };
    for (const BadCase &c : cases) {
        try {
            parseTopo(c.text, "bad.topo", 20);
            FAIL() << "no error for: " << c.text;
        } catch (const ConfigError &err) {
            EXPECT_NE(std::string(err.what()).find(c.fragment),
                      std::string::npos)
                << "for input [" << c.text << "] got: " << err.what();
        }
    }
}

TEST(TopoFile, GraphInvariantErrorsNameTheOrigin)
{
    // Disconnected device.
    try {
        parseTopo("trap a\ntrap b\n", "islands.topo", 20);
        FAIL() << "disconnected device accepted";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("islands.topo"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("connected"),
                  std::string::npos);
    }
    // Dangling junction.
    EXPECT_THROW(parseTopo("trap a\njunction j\nedge a j\n",
                           "dangle.topo", 20),
                 ConfigError);
    // No traps at all.
    EXPECT_THROW(parseTopo("# empty\n", "empty.topo", 20), ConfigError);
}

TEST(TopoFile, LoadMissingFileIsConfigError)
{
    EXPECT_THROW(loadTopoFile("/nonexistent/dev.topo", 20), ConfigError);
}

TEST(TopoFile, LoadDirectoryIsConfigErrorNotGraphError)
{
    // A directory "opens" fine and reads empty; the loader must name
    // the real problem instead of "topology has no traps".
    try {
        loadTopoFile("/tmp", 20);
        FAIL() << "directory accepted as a .topo file";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("cannot read topology"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TopoFile, StemHelper)
{
    EXPECT_EQ(topoFileStem("a/b/ring4.topo"), "ring4");
    EXPECT_EQ(topoFileStem("ring4.topo"), "ring4");
    EXPECT_EQ(topoFileStem("ring4"), "ring4");
    EXPECT_EQ(topoFileStem("a/b/.topo"), ".topo");
}

/**
 * Fuzz pass: random mutations of a valid file must either parse or
 * raise a clean typed ConfigError — never an InternalError, another
 * exception type, or a crash.
 */
TEST(TopoFile, FuzzedInputsFailCleanly)
{
    const std::string base = kRing4;
    Rng rng(20260731);
    const std::string garbage_chars =
        "\n\t #:xtrapjunctionedge0123456789-\\\"{}";
    int parsed = 0;
    int rejected = 0;
    for (int iter = 0; iter < 400; ++iter) {
        std::string text = base;
        const int edits = 1 + static_cast<int>(rng.nextBelow(4));
        for (int e = 0; e < edits; ++e) {
            const uint64_t kind = rng.nextBelow(3);
            const size_t pos =
                text.empty() ? 0 : rng.nextBelow(text.size());
            const char c =
                garbage_chars[rng.nextBelow(garbage_chars.size())];
            if (kind == 0 && !text.empty()) {
                text[pos] = c; // overwrite
            } else if (kind == 1) {
                text.insert(text.begin() + pos, c); // insert
            } else if (!text.empty()) {
                // Delete a random slice.
                const size_t len =
                    1 + rng.nextBelow(std::min<size_t>(
                            16, text.size() - pos));
                text.erase(pos, len);
            }
        }
        try {
            const Topology topo = parseTopo(text, "fuzz.topo", 20);
            EXPECT_GE(topo.trapCount(), 1);
            ++parsed;
        } catch (const ConfigError &) {
            ++rejected; // clean typed rejection is the contract
        }
    }
    // The mutator must actually exercise both outcomes.
    EXPECT_GT(parsed, 0);
    EXPECT_GT(rejected, 0);
}

} // namespace
} // namespace qccd
