/** @file Tests for extension workloads and the balanced mapping policy. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/stats.hpp"
#include "common/error.hpp"
#include "compiler/mapping.hpp"
#include "core/toolflow.hpp"

namespace qccd
{
namespace
{

TEST(Extensions, GhzShape)
{
    const Circuit c = makeGhz(16);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 16);
    EXPECT_EQ(s.twoQubitGates, 15);
    EXPECT_EQ(s.maxInteractionDistance, 1);
    EXPECT_EQ(s.measurements, 16);
    // The ladder is strictly sequential: depth >= gate count.
    EXPECT_GE(s.depth, 16);
    EXPECT_THROW(makeGhz(1), ConfigError);
}

TEST(Extensions, VqeShape)
{
    const Circuit c = makeVqe(16, 3);
    const CircuitStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 16);
    // Ladder (15 CX) + 3 strided ZZ pairs (2 CX each) per layer.
    EXPECT_EQ(s.twoQubitGates, 3 * (15 + 3 * 2));
    EXPECT_GT(s.maxInteractionDistance, 1);
    EXPECT_THROW(makeVqe(1), ConfigError);
    EXPECT_THROW(makeVqe(8, 0), ConfigError);
}

TEST(Extensions, VqeDeterministicPerSeed)
{
    const Circuit a = makeVqe(12, 2, 9);
    const Circuit b = makeVqe(12, 2, 9);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a.gate(i).param, b.gate(i).param);
}

TEST(Extensions, RegistryBuildsPaperScaleExtensions)
{
    EXPECT_EQ(computeStats(makeBenchmark("ghz")).numQubits, 64);
    EXPECT_EQ(computeStats(makeBenchmark("vqe")).numQubits, 64);
    EXPECT_NO_THROW(makeBenchmarkSized("ghz", 10));
    EXPECT_NO_THROW(makeBenchmarkSized("vqe", 10));
}

TEST(MappingPolicy, BalancedSpreadsEvenly)
{
    const Topology topo = makeLinear(4, 10);
    Circuit c(16);
    c.h(0);
    const InitialMapping packed =
        mapQubits(c, topo, 2, MappingPolicy::Packed);
    const InitialMapping balanced =
        mapQubits(c, topo, 2, MappingPolicy::Balanced);

    // Packed: 8, 8, 0, 0. Balanced: 4, 4, 4, 4.
    EXPECT_EQ(packed.chainOrder[0].size(), 8u);
    EXPECT_EQ(packed.chainOrder[2].size(), 0u);
    for (TrapId t = 0; t < 4; ++t)
        EXPECT_EQ(balanced.chainOrder[t].size(), 4u);
}

TEST(MappingPolicy, BalancedRespectsCapacity)
{
    // 30 qubits over traps of capacity 8 with buffer 2: even share is
    // 7.5, capacity clamp is 6 -> 6,6,6,6,6 across five traps.
    const Topology topo = makeLinear(5, 8);
    Circuit c(30);
    c.h(0);
    const InitialMapping m =
        mapQubits(c, topo, 2, MappingPolicy::Balanced);
    size_t placed = 0;
    for (const auto &chain : m.chainOrder) {
        EXPECT_LE(chain.size(), 6u);
        placed += chain.size();
    }
    EXPECT_EQ(placed, 30u);
}

TEST(MappingPolicy, ToolflowAcceptsBothPolicies)
{
    const Circuit c = makeBenchmarkSized("qft", 16);
    const DesignPoint dp = DesignPoint::linear(4, 8);
    RunOptions packed;
    RunOptions balanced;
    balanced.mappingPolicy = MappingPolicy::Balanced;
    const RunResult rp = runToolflow(c, dp, packed);
    const RunResult rb = runToolflow(c, dp, balanced);
    EXPECT_GT(rp.fidelity(), 0.0);
    EXPECT_GT(rb.fidelity(), 0.0);
    // Balanced shortens chains, so FM gates are faster per gate, but
    // communication differs; both must still satisfy the invariants.
    EXPECT_NE(rp.totalTime(), rb.totalTime());
}

TEST(MappingPolicy, BalancedKeepsFirstUseOrder)
{
    const Topology topo = makeLinear(2, 10);
    Circuit c(8);
    c.h(7); // qubit 7 used first
    for (QubitId q = 0; q < 7; ++q)
        c.h(q);
    const InitialMapping m =
        mapQubits(c, topo, 2, MappingPolicy::Balanced);
    EXPECT_EQ(m.chainOrder[0].front(), 7);
}

} // namespace
} // namespace qccd
