/** @file Unit tests for lowering to the native {1q, MS} basis. */

#include <gtest/gtest.h>

#include "circuit/decompose.hpp"
#include "circuit/stats.hpp"

namespace qccd
{
namespace
{

/** Count gates of one op kind. */
int
countOp(const Circuit &c, Op op)
{
    int count = 0;
    for (const Gate &g : c.gates())
        if (g.op == op)
            ++count;
    return count;
}

TEST(Decompose, OutputIsNative)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cz(1, 2);
    c.cphase(0, 2, 0.5);
    c.swap(0, 1);
    c.measure(2);

    const Circuit native = decomposeToNative(c);
    for (const Gate &g : native.gates())
        EXPECT_TRUE(isNative(g.op)) << g.toString();
}

TEST(Decompose, MsCostsMatchTable)
{
    EXPECT_EQ(msCostOf(Op::MS), 1);
    EXPECT_EQ(msCostOf(Op::CX), 1);
    EXPECT_EQ(msCostOf(Op::CZ), 1);
    EXPECT_EQ(msCostOf(Op::CPhase), 2);
    EXPECT_EQ(msCostOf(Op::Swap), 3);
    EXPECT_EQ(msCostOf(Op::H), 0);
}

TEST(Decompose, CxBecomesOneMs)
{
    Circuit c(2);
    c.cx(0, 1);
    const Circuit native = decomposeToNative(c);
    EXPECT_EQ(countOp(native, Op::MS), 1);
    EXPECT_EQ(computeStats(native).twoQubitGates, 1);
}

TEST(Decompose, CPhaseBecomesTwoMs)
{
    Circuit c(2);
    c.cphase(0, 1, 0.7);
    const Circuit native = decomposeToNative(c);
    EXPECT_EQ(countOp(native, Op::MS), 2);
}

TEST(Decompose, SwapBecomesThreeMs)
{
    Circuit c(2);
    c.swap(0, 1);
    const Circuit native = decomposeToNative(c);
    EXPECT_EQ(countOp(native, Op::MS), 3);
}

TEST(Decompose, BarriersDropped)
{
    Circuit c(2);
    Gate b;
    b.op = Op::Barrier;
    c.add(b);
    c.h(0);
    const Circuit native = decomposeToNative(c);
    EXPECT_EQ(countOp(native, Op::Barrier), 0);
    EXPECT_EQ(native.size(), 1u);
}

TEST(Decompose, NativeGatesPassThrough)
{
    Circuit c(2);
    c.rx(0, 0.1);
    c.ms(0, 1, 0.25);
    c.measure(1);
    const Circuit native = decomposeToNative(c);
    ASSERT_EQ(native.size(), 3u);
    EXPECT_EQ(native.gate(0).op, Op::RX);
    EXPECT_EQ(native.gate(1).op, Op::MS);
    EXPECT_DOUBLE_EQ(native.gate(1).param, 0.25);
    EXPECT_EQ(native.gate(2).op, Op::Measure);
}

TEST(Decompose, PreservesQubitCountAndName)
{
    Circuit c(5, "named");
    c.cx(4, 0);
    const Circuit native = decomposeToNative(c);
    EXPECT_EQ(native.numQubits(), 5);
    EXPECT_EQ(native.name(), "named");
}

TEST(Decompose, QftNativeCountIsNTimesNMinusOne)
{
    // Table II: QFT-64 has 64*63 = 4032 two-qubit gates, which is the
    // CPhase -> 2 MS lowering of the 2016-pair network. Checked here at
    // n = 16 for speed: 16*15 = 240 native MS gates.
    Circuit qft(16);
    for (QubitId i = 0; i < 16; ++i) {
        qft.h(i);
        for (QubitId j = i + 1; j < 16; ++j)
            qft.cphase(j, i, 0.5);
    }
    const Circuit native = decomposeToNative(qft);
    EXPECT_EQ(countOp(native, Op::MS), 16 * 15);
}

} // namespace
} // namespace qccd
