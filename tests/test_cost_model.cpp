/**
 * @file
 * Tests for the surrogate cost models (core/cost_model.hpp): feature
 * extraction pinned on known graphs, analytic determinism and
 * monotone responses to the physical knobs, calibration
 * reproducibility, and rank agreement with real toolflow points.
 */

#include <gtest/gtest.h>

#include <vector>

#include "circuit/stats.hpp"
#include "core/cost_model.hpp"
#include "core/sweep_engine.hpp"
#include "core/toolflow.hpp"

namespace qccd
{
namespace
{

TopologyFeatures
featuresOf(const std::string &spec, int capacity)
{
    DesignPoint design;
    design.topologySpec = spec;
    design.trapCapacity = capacity;
    const ToolflowContext context(design);
    return extractTopologyFeatures(context.topology());
}

CircuitStats
statsOf(const std::string &app)
{
    SweepEngine engine(1);
    return computeStats(*engine.nativeBenchmark(app));
}

// ---------------------------------------------------------------------
// Feature extraction, pinned on hand-checkable graphs
// ---------------------------------------------------------------------

TEST(TopologyFeatures, LinearSixTraps)
{
    const TopologyFeatures f = featuresOf("linear:6", 22);
    EXPECT_EQ(f.traps, 6);
    EXPECT_EQ(f.junctions, 0);
    EXPECT_EQ(f.edges, 5);
    EXPECT_EQ(f.totalCapacity, 6 * 22);
    EXPECT_EQ(f.minTrapCapacity, 22);
    EXPECT_EQ(f.maxTrapCapacity, 22);
    EXPECT_EQ(f.diameterEdges, 5);
    // 15 unordered pairs; path lengths 1x5, 2x4, 3x3, 4x2, 5x1.
    EXPECT_DOUBLE_EQ(f.meanPathEdges, 35.0 / 15.0);
    // Intermediate traps: one fewer than the path length each.
    EXPECT_DOUBLE_EQ(f.meanPathTraps, 20.0 / 15.0);
    EXPECT_DOUBLE_EQ(f.meanPathJunctions3, 0.0);
    EXPECT_DOUBLE_EQ(f.meanPathJunctions4, 0.0);
}

TEST(TopologyFeatures, RingSixTraps)
{
    const TopologyFeatures f = featuresOf("ring:6", 18);
    EXPECT_EQ(f.traps, 6);
    EXPECT_EQ(f.edges, 6);
    EXPECT_EQ(f.diameterEdges, 3);
    // 15 pairs: distances 1x6, 2x6, 3x3.
    EXPECT_DOUBLE_EQ(f.meanPathEdges, 27.0 / 15.0);
}

TEST(TopologyFeatures, GridHasJunctions)
{
    const TopologyFeatures f = featuresOf("grid:2x3", 22);
    EXPECT_EQ(f.traps, 6);
    EXPECT_GT(f.junctions, 0);
    EXPECT_GT(f.meanPathJunctions3 + f.meanPathJunctions4, 0.0);
}

// ---------------------------------------------------------------------
// Analytic surrogate: determinism and knob monotonicity
// ---------------------------------------------------------------------

TEST(AnalyticModel, DeterministicAcrossCalls)
{
    const AnalyticCostModel model;
    const CircuitStats stats = statsOf("qft");
    const TopologyFeatures topo = featuresOf("linear:6", 22);
    DesignPoint design;
    const CostPrediction a = model.predict(design, stats, topo);
    const CostPrediction b = model.predict(design, stats, topo);
    EXPECT_EQ(a.logFidelity, b.logFidelity);
    EXPECT_EQ(a.timeUs, b.timeUs);
    EXPECT_LT(a.logFidelity, 0.0);
    EXPECT_GT(a.timeUs, 0.0);
}

TEST(AnalyticModel, MonotoneInPhysicalKnobs)
{
    const AnalyticCostModel model;
    const CircuitStats stats = statsOf("supremacy");
    const TopologyFeatures topo = featuresOf("linear:6", 22);
    DesignPoint base;

    // Faster background decoherence -> lower predicted fidelity.
    DesignPoint hotter = base;
    hotter.hw.gammaPerS = 4.0;
    EXPECT_LT(model.predict(hotter, stats, topo).logFidelity,
              model.predict(base, stats, topo).logFidelity);

    // Stronger recooling -> higher predicted fidelity.
    DesignPoint cooled = base;
    cooled.hw.recoolFactor = 0.01;
    EXPECT_GT(model.predict(cooled, stats, topo).logFidelity,
              model.predict(base, stats, topo).logFidelity);

    // More heating per split/merge -> lower predicted fidelity.
    DesignPoint noisy = base;
    noisy.hw.heatingK1 = 0.5;
    EXPECT_LT(model.predict(noisy, stats, topo).logFidelity,
              model.predict(base, stats, topo).logFidelity);
}

TEST(AnalyticModel, SingleTrapAppIgnoresCapacityAndTopology)
{
    // An application that fits one trap predicts identically across
    // capacities and device graphs — like the simulator, so spec
    // index stays the tie-break in both worlds.
    const AnalyticCostModel model;
    CircuitStats bell;
    bell.numQubits = 2;
    bell.oneQubitGates = 1;
    bell.twoQubitGates = 1;
    bell.measurements = 2;
    bell.interactionDistance = {0, 1};

    DesignPoint small;
    small.trapCapacity = 14;
    DesignPoint large;
    large.trapCapacity = 30;
    const CostPrediction a =
        model.predict(small, bell, featuresOf("linear:6", 14));
    const CostPrediction b =
        model.predict(large, bell, featuresOf("grid:2x3", 30));
    EXPECT_EQ(a.logFidelity, b.logFidelity);
    EXPECT_EQ(a.timeUs, b.timeUs);
}

// ---------------------------------------------------------------------
// Rank agreement with real toolflow points
// ---------------------------------------------------------------------

TEST(AnalyticModel, RanksAppsLikeTheSimulatorOnTheDefaultDevice)
{
    const AnalyticCostModel model;
    const TopologyFeatures topo = featuresOf("linear:6", 22);
    const DesignPoint design;

    SweepEngine engine(1);
    double realBv = 0;
    double realSupremacy = 0;
    double realQft = 0;
    double predBv = 0;
    double predSupremacy = 0;
    double predQft = 0;
    for (const auto &[app, real, pred] :
         {std::tuple<std::string, double *, double *>{"bv", &realBv,
                                                      &predBv},
          {"supremacy", &realSupremacy, &predSupremacy},
          {"qft", &realQft, &predQft}}) {
        const std::shared_ptr<const Circuit> native =
            engine.nativeBenchmark(app);
        *real = runToolflow(*native, design,
                            *engine.context(design), {})
                    .sim.logFidelity;
        *pred = model.predict(design, computeStats(*native), topo)
                    .logFidelity;
    }
    // The simulator orders bv > supremacy > qft here; the surrogate
    // must agree (rank, not magnitude — the estimator over-counts
    // communication on purpose).
    EXPECT_GT(realBv, realSupremacy);
    EXPECT_GT(realSupremacy, realQft);
    EXPECT_GT(predBv, predSupremacy);
    EXPECT_GT(predSupremacy, predQft);
}

// ---------------------------------------------------------------------
// Calibrated surrogate
// ---------------------------------------------------------------------

TEST(CalibratedModel, FitIsReproducibleAndIdempotent)
{
    std::vector<CalibratedCostModel::Sample> samples;
    for (int i = 0; i < 8; ++i) {
        CalibratedCostModel::Sample s;
        s.prior = {-0.5 * i - 0.1, 1000.0 + 300.0 * i};
        s.logFidelity = -0.2 * i - 0.05;
        s.timeUs = 800.0 + 250.0 * i;
        samples.push_back(s);
    }
    CalibratedCostModel a;
    CalibratedCostModel b;
    a.fit(samples);
    b.fit(samples);
    EXPECT_EQ(a.fidelityIntercept(), b.fidelityIntercept());
    EXPECT_EQ(a.fidelitySlope(), b.fidelitySlope());
    EXPECT_EQ(a.timeIntercept(), b.timeIntercept());
    EXPECT_EQ(a.timeSlope(), b.timeSlope());
    a.fit(samples); // refit from scratch, not accumulate
    EXPECT_EQ(a.fidelitySlope(), b.fidelitySlope());
    EXPECT_GT(a.fidelitySlope(), 0.0);
    EXPECT_GT(a.timeSlope(), 0.0);
}

TEST(CalibratedModel, CorrectionNeverInvertsTheAnalyticOrder)
{
    // Anti-correlated samples would fit a negative slope; the
    // monotonicity guard clamps back to identity so ranking is
    // preserved no matter what was measured.
    std::vector<CalibratedCostModel::Sample> samples;
    for (int i = 0; i < 6; ++i) {
        CalibratedCostModel::Sample s;
        s.prior = {-1.0 * i, 1000.0};
        s.logFidelity = +0.5 * i - 10.0; // opposite direction
        s.timeUs = 1000.0;
        samples.push_back(s);
    }
    CalibratedCostModel model;
    model.fit(samples);
    EXPECT_GT(model.fidelitySlope(), 0.0);

    const CostPrediction betterPrior{-0.1, 500.0};
    const CostPrediction worsePrior{-2.0, 500.0};
    EXPECT_GT(model.correct(betterPrior).logFidelity,
              model.correct(worsePrior).logFidelity);
}

TEST(CalibratedModel, FewSamplesFitInterceptOnly)
{
    std::vector<CalibratedCostModel::Sample> samples;
    for (int i = 0; i < 3; ++i) {
        CalibratedCostModel::Sample s;
        s.prior = {-1.0 - i, 1000.0};
        s.logFidelity = -0.5 - i;
        s.timeUs = 2000.0;
        samples.push_back(s);
    }
    CalibratedCostModel model;
    model.fit(samples);
    EXPECT_EQ(model.fidelitySlope(), 1.0);
    EXPECT_EQ(model.timeSlope(), 1.0);
}

} // namespace
} // namespace qccd
