/** @file Tests for the trace invariant checker, plus property checks
 *  that every scheduled workload produces a valid trace. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "compiler/scheduler.hpp"
#include "sim/checker.hpp"

namespace qccd
{
namespace
{

TEST(Checker, AcceptsEmptyTrace)
{
    const Topology topo = makeLinear(2, 4);
    const CheckReport report = checkTrace({}, topo);
    EXPECT_TRUE(report.ok);
}

TEST(Checker, DetectsTrapOverlap)
{
    const Topology topo = makeLinear(2, 4);
    Trace trace;
    PrimOp a;
    a.kind = PrimKind::Gate1Q;
    a.trap = 0;
    a.start = 0;
    a.duration = 100;
    PrimOp b = a;
    b.start = 50;
    trace.push_back(a);
    trace.push_back(b);
    const CheckReport report = checkTrace(trace, topo);
    EXPECT_FALSE(report.ok);
    ASSERT_FALSE(report.violations.empty());
    EXPECT_NE(report.violations[0].find("trap 0"), std::string::npos);
}

TEST(Checker, DetectsQubitOverlap)
{
    const Topology topo = makeLinear(2, 4);
    Trace trace;
    PrimOp a;
    a.kind = PrimKind::Gate1Q;
    a.trap = 0;
    a.q0 = 1;
    a.start = 0;
    a.duration = 10;
    PrimOp b = a;
    b.trap = 1; // different trap, same qubit
    b.start = 5;
    trace.push_back(a);
    trace.push_back(b);
    EXPECT_FALSE(checkTrace(trace, topo).ok);
}

TEST(Checker, DetectsNegativeDurationAndBadFidelity)
{
    const Topology topo = makeLinear(1, 4);
    PrimOp op;
    op.kind = PrimKind::Gate1Q;
    op.trap = 0;
    op.duration = -1;
    op.fidelity = 1.5;
    const CheckReport report = checkTrace({op}, topo);
    EXPECT_FALSE(report.ok);
    EXPECT_GE(report.violations.size(), 2u);
}

TEST(Checker, DetectsBadMsGeometry)
{
    const Topology topo = makeLinear(1, 4);
    PrimOp op;
    op.kind = PrimKind::GateMS;
    op.trap = 0;
    op.duration = 100;
    op.separation = 4;
    op.chainLength = 4; // separation must be < chainLength
    EXPECT_FALSE(checkTrace({op}, topo).ok);
}

TEST(Checker, DetectsInvalidResourceIds)
{
    const Topology topo = makeLinear(2, 4);
    PrimOp op;
    op.kind = PrimKind::Gate1Q;
    op.trap = 7;
    op.duration = 1;
    EXPECT_FALSE(checkTrace({op}, topo).ok);

    PrimOp mv;
    mv.kind = PrimKind::Move;
    mv.edge = 9;
    mv.duration = 1;
    EXPECT_FALSE(checkTrace({mv}, topo).ok);
}

TEST(Checker, ZeroDurationOpsMayTouch)
{
    const Topology topo = makeLinear(1, 4);
    Trace trace;
    PrimOp a;
    a.kind = PrimKind::Split;
    a.trap = 0;
    a.start = 10;
    a.duration = 0;
    PrimOp b = a;
    trace.push_back(a);
    trace.push_back(b);
    EXPECT_TRUE(checkTrace(trace, topo).ok);
}

/**
 * End-to-end property: every workload, topology and microarchitecture
 * combination yields a trace satisfying all architectural invariants.
 */
class ScheduleInvariants
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, ReorderMethod>>
{
};

TEST_P(ScheduleInvariants, TraceIsValid)
{
    const auto &[app, topo_spec, reorder] = GetParam();
    const Topology topo = makeFromSpec(topo_spec, 8);
    HardwareParams hw;
    hw.reorder = reorder;
    const Circuit native =
        decomposeToNative(makeBenchmarkSized(app, 16));

    Scheduler sched(native, topo, hw);
    const ScheduleResult result = sched.run();
    const CheckReport report = checkTrace(result.trace, topo);
    EXPECT_TRUE(report.ok);
    for (const std::string &v : report.violations)
        ADD_FAILURE() << v;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ScheduleInvariants,
    ::testing::Combine(::testing::Values("qft", "bv", "adder", "qaoa",
                                         "supremacy", "squareroot"),
                       ::testing::Values("linear:4", "grid:2x2"),
                       ::testing::Values(ReorderMethod::GS,
                                         ReorderMethod::IS)),
    [](const auto &info) {
        // Structured bindings would introduce commas that break the
        // INSTANTIATE macro's argument splitting; unpack explicitly.
        std::string app = std::get<0>(info.param);
        std::string topo = std::get<1>(info.param);
        for (char &c : topo)
            if (c == ':' || c == 'x')
                c = '_';
        return app + "_" + topo + "_" +
               reorderMethodName(std::get<2>(info.param));
    });

} // namespace
} // namespace qccd
