/** @file Unit tests for the mutable device state. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "common/error.hpp"
#include "sim/device_state.hpp"

namespace qccd
{
namespace
{

class DeviceStateTest : public ::testing::Test
{
  protected:
    DeviceStateTest() : topo_(makeLinear(3, 5)), state_(topo_, 6)
    {
        // Traps: [0,1,2] in trap 0, [3,4] in trap 1, [5] in trap 2.
        state_.placeIon(0, 0, 0);
        state_.placeIon(0, 1, 1);
        state_.placeIon(0, 2, 2);
        state_.placeIon(1, 3, 3);
        state_.placeIon(1, 4, 4);
        state_.placeIon(2, 5, 5);
    }

    Topology topo_;
    DeviceState state_;
};

TEST_F(DeviceStateTest, InitialPlacement)
{
    EXPECT_EQ(state_.chain(0).size(), 3);
    EXPECT_EQ(state_.chain(1).size(), 2);
    EXPECT_EQ(state_.trapOf(4), 1);
    EXPECT_EQ(state_.positionOf(1), 1);
    EXPECT_EQ(state_.payloadOf(2), 2);
    EXPECT_EQ(state_.ionOf(5), 5);
    EXPECT_EQ(state_.freeSlots(0), 2);
    EXPECT_EQ(state_.freeSlots(2), 4);
}

TEST_F(DeviceStateTest, SwapPayloads)
{
    state_.swapPayloads(0, 2);
    EXPECT_EQ(state_.payloadOf(0), 2);
    EXPECT_EQ(state_.payloadOf(2), 0);
    EXPECT_EQ(state_.ionOf(0), 2);
    EXPECT_EQ(state_.ionOf(2), 0);
    // Physical positions unchanged.
    EXPECT_EQ(state_.positionOf(0), 0);
}

TEST_F(DeviceStateTest, SwapTowardMovesPhysically)
{
    const IonId neighbour = state_.swapToward(0, ChainEnd::Right);
    EXPECT_EQ(neighbour, 1);
    EXPECT_EQ(state_.positionOf(0), 1);
    EXPECT_EQ(state_.positionOf(1), 0);
    EXPECT_THROW(state_.swapToward(1, ChainEnd::Left), InternalError);
}

TEST_F(DeviceStateTest, DetachAttachRoundTrip)
{
    state_.setEnergy(0, 3.0);
    const IonId ion = state_.detachEnd(0, ChainEnd::Right, 1.25);
    EXPECT_EQ(ion, 2);
    EXPECT_EQ(state_.trapOf(ion), kInvalidId);
    EXPECT_DOUBLE_EQ(state_.flightEnergy(ion), 1.25);
    EXPECT_EQ(state_.chain(0).size(), 2);

    state_.attachEnd(1, ChainEnd::Left, ion);
    EXPECT_EQ(state_.trapOf(ion), 1);
    EXPECT_EQ(state_.positionOf(ion), 0);
    EXPECT_EQ(state_.chain(1).ions.front(), ion);
}

TEST_F(DeviceStateTest, DetachLeftTakesFront)
{
    const IonId ion = state_.detachEnd(0, ChainEnd::Left, 0.0);
    EXPECT_EQ(ion, 0);
    EXPECT_EQ(state_.chain(0).ions.front(), 1);
}

TEST_F(DeviceStateTest, PortEndsFollowNodeIdConvention)
{
    // Linear: edge 0 connects traps 0-1; edge 1 connects traps 1-2.
    EXPECT_EQ(state_.portEnd(0, 0), ChainEnd::Right);
    EXPECT_EQ(state_.portEnd(1, 0), ChainEnd::Left);
    EXPECT_EQ(state_.portEnd(1, 1), ChainEnd::Right);
    EXPECT_EQ(state_.portEnd(2, 1), ChainEnd::Left);
}

TEST_F(DeviceStateTest, GridPortsAreAllRight)
{
    const Topology grid = makeGrid(2, 3, 5);
    DeviceState state(grid, 2);
    state.placeIon(0, 0, 0);
    state.placeIon(5, 1, 1);
    // Junction node ids exceed all trap ids, so every port is right.
    for (TrapId t = 0; t < grid.trapCount(); ++t)
        for (EdgeId e : grid.incidentEdges(grid.trapNode(t)))
            EXPECT_EQ(state.portEnd(t, e), ChainEnd::Right);
}

TEST_F(DeviceStateTest, EnergyTracksMaximum)
{
    state_.setEnergy(0, 2.0);
    state_.setEnergy(1, 7.5);
    state_.setEnergy(1, 1.0);
    EXPECT_DOUBLE_EQ(state_.maxEnergySeen(), 7.5);
    EXPECT_DOUBLE_EQ(state_.energy(1), 1.0);
}

TEST_F(DeviceStateTest, InvalidOperationsPanic)
{
    EXPECT_THROW(state_.positionOf(99), InternalError);
    EXPECT_THROW(state_.flightEnergy(0), InternalError);
    EXPECT_THROW(state_.setEnergy(0, -1.0), InternalError);
    EXPECT_THROW(state_.junctionTimeline(topo_.trapNode(0)),
                 InternalError);
    // Attaching a trapped ion is a bug.
    EXPECT_THROW(state_.attachEnd(1, ChainEnd::Left, 0), InternalError);
}

TEST_F(DeviceStateTest, TooManyIonsRejected)
{
    const Topology tiny = makeLinear(1, 2);
    EXPECT_THROW(DeviceState(tiny, 3), ConfigError);
}

TEST_F(DeviceStateTest, PositionIndexConsistentThroughMutations)
{
    // Every mutation path of the O(1) per-ion position index: place,
    // physical swap, detach at both ends, attach at both ends.
    EXPECT_TRUE(state_.positionIndexConsistent());

    state_.swapToward(0, ChainEnd::Right);
    EXPECT_TRUE(state_.positionIndexConsistent());
    state_.swapToward(0, ChainEnd::Right);
    EXPECT_TRUE(state_.positionIndexConsistent());

    const IonId right = state_.detachEnd(0, ChainEnd::Right, 0.5);
    EXPECT_TRUE(state_.positionIndexConsistent());
    const IonId left = state_.detachEnd(0, ChainEnd::Left, 0.5);
    EXPECT_TRUE(state_.positionIndexConsistent());

    state_.attachEnd(1, ChainEnd::Left, right);
    EXPECT_TRUE(state_.positionIndexConsistent());
    state_.attachEnd(2, ChainEnd::Right, left);
    EXPECT_TRUE(state_.positionIndexConsistent());

    EXPECT_EQ(state_.positionOf(right), 0);
    EXPECT_EQ(state_.chain(1).ions.front(), right);
}

TEST_F(DeviceStateTest, ResetRestoresFreshState)
{
    state_.setEnergy(0, 3.0);
    state_.trapTimeline(1).acquire(0, 50);
    state_.detachEnd(0, ChainEnd::Right, 1.0);
    state_.swapPayloads(0, 1);

    state_.reset();

    for (TrapId t = 0; t < topo_.trapCount(); ++t) {
        EXPECT_EQ(state_.chain(t).size(), 0);
        EXPECT_DOUBLE_EQ(state_.energy(t), 0.0);
        EXPECT_DOUBLE_EQ(state_.trapTimeline(t).freeAt(), 0.0);
    }
    EXPECT_DOUBLE_EQ(state_.maxEnergySeen(), 0.0);
    EXPECT_TRUE(state_.positionIndexConsistent());

    // The reset state accepts a fresh layout, exactly like a newly
    // constructed one.
    state_.placeIon(0, 0, 0);
    state_.placeIon(0, 1, 1);
    EXPECT_EQ(state_.positionOf(1), 1);
    EXPECT_TRUE(state_.positionIndexConsistent());
}

TEST(ResourceTimelineTest, AcquireSerializes)
{
    ResourceTimeline res;
    EXPECT_DOUBLE_EQ(res.acquire(0, 10), 0);
    EXPECT_DOUBLE_EQ(res.acquire(0, 5), 10);  // waits for free
    EXPECT_DOUBLE_EQ(res.acquire(50, 5), 50); // idle gap allowed
    EXPECT_DOUBLE_EQ(res.freeAt(), 55);
}

} // namespace
} // namespace qccd
