/** @file Tests for the QCCD instruction-set serialization. */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "common/error.hpp"
#include "core/toolflow.hpp"
#include "sim/isa.hpp"

namespace qccd
{
namespace
{

/** Field-wise trace equality. */
void
expectSameTrace(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << "op " << i;
        EXPECT_DOUBLE_EQ(a[i].start, b[i].start) << "op " << i;
        EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration) << "op " << i;
        EXPECT_EQ(a[i].trap, b[i].trap) << "op " << i;
        EXPECT_EQ(a[i].edge, b[i].edge) << "op " << i;
        EXPECT_EQ(a[i].junction, b[i].junction) << "op " << i;
        EXPECT_EQ(a[i].ion, b[i].ion) << "op " << i;
        EXPECT_EQ(a[i].q0, b[i].q0) << "op " << i;
        EXPECT_EQ(a[i].q1, b[i].q1) << "op " << i;
        EXPECT_EQ(a[i].separation, b[i].separation) << "op " << i;
        EXPECT_EQ(a[i].chainLength, b[i].chainLength) << "op " << i;
        EXPECT_DOUBLE_EQ(a[i].nbar, b[i].nbar) << "op " << i;
        EXPECT_DOUBLE_EQ(a[i].fidelity, b[i].fidelity) << "op " << i;
        EXPECT_EQ(a[i].forCommunication, b[i].forCommunication)
            << "op " << i;
    }
}

TEST(Isa, EmptyTraceRoundTrips)
{
    const Trace empty;
    expectSameTrace(parseIsa(writeIsa(empty)), empty);
}

TEST(Isa, HandWrittenOpRoundTrips)
{
    PrimOp op;
    op.kind = PrimKind::GateMS;
    op.start = 123.5;
    op.duration = 100;
    op.trap = 2;
    op.q0 = 5;
    op.q1 = 9;
    op.separation = 3;
    op.chainLength = 12;
    op.nbar = 1.75;
    op.fidelity = 0.9975;
    op.forCommunication = true;
    expectSameTrace(parseIsa(writeIsa({op})), {op});
}

TEST(Isa, CompiledProgramRoundTrips)
{
    const Circuit c = makeBenchmarkSized("squareroot", 20);
    const ScheduleResult r =
        runToolflowDetailed(c, DesignPoint::linear(3, 10));
    ASSERT_GT(r.trace.size(), 100u);
    const std::string text = writeIsa(r.trace);
    expectSameTrace(parseIsa(text), r.trace);
}

TEST(Isa, Fig6TraceRoundTrips)
{
    // A real Figure 6 configuration (L6, FM, GS, paper capacity), full
    // paper-scale application: the round trip must preserve every op
    // of the production trace exactly.
    const Circuit c = makeBenchmark("qft");
    const ScheduleResult r =
        runToolflowDetailed(c, DesignPoint::linear(6, 22));
    ASSERT_GT(r.trace.size(), 10000u);
    const std::string text = writeIsa(r.trace);
    const Trace parsed = parseIsa(text);
    expectSameTrace(parsed, r.trace);
    // Exact double round trip (17 significant digits), not just
    // EXPECT_DOUBLE_EQ's 4-ULP tolerance.
    for (size_t i = 0; i < parsed.size(); ++i) {
        ASSERT_EQ(parsed[i].start, r.trace[i].start) << "op " << i;
        ASSERT_EQ(parsed[i].fidelity, r.trace[i].fidelity) << "op " << i;
        ASSERT_EQ(parsed[i].nbar, r.trace[i].nbar) << "op " << i;
    }
}

TEST(Isa, CommentsAndBlankLinesIgnored)
{
    const Trace t = parseIsa(
        "# header comment\n"
        "\n"
        "0 5 1q trap=0 q0=1 fid=0.99 # trailing comment\n");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].kind, PrimKind::Gate1Q);
    EXPECT_EQ(t[0].q0, 1);
    EXPECT_DOUBLE_EQ(t[0].fidelity, 0.99);
}

TEST(Isa, MalformedInputRejected)
{
    EXPECT_THROW(parseIsa("0 5 frobnicate trap=0\n"), ConfigError);
    EXPECT_THROW(parseIsa("0 5 1q trap\n"), ConfigError);
    EXPECT_THROW(parseIsa("0 5 1q bogus=3\n"), ConfigError);
    EXPECT_THROW(parseIsa("0 5 1q trap=abc\n"), ConfigError);
    EXPECT_THROW(parseIsa("garbage line\n"), ConfigError);
}

TEST(Isa, FileRoundTrip)
{
    const Circuit c = makeBenchmarkSized("bv", 10);
    const ScheduleResult r =
        runToolflowDetailed(c, DesignPoint::linear(2, 8));
    const std::string path = ::testing::TempDir() + "/qccd_isa_test.txt";
    writeIsaFile(r.trace, path);
    expectSameTrace(parseIsaFile(path), r.trace);
    EXPECT_THROW(parseIsaFile("/nonexistent/isa.txt"), ConfigError);
}

} // namespace
} // namespace qccd
