/** @file Unit tests for the OpenQASM tokenizer. */

#include <gtest/gtest.h>

#include "circuit/qasm/lexer.hpp"
#include "common/error.hpp"

namespace qccd::qasm
{
namespace
{

TEST(QasmLexer, TokenizesHeader)
{
    const auto tokens = tokenize("OPENQASM 2.0;");
    ASSERT_EQ(tokens.size(), 4u); // keyword, real, semicolon, eof
    EXPECT_EQ(tokens[0].kind, TokenKind::Keyword);
    EXPECT_EQ(tokens[0].text, "OPENQASM");
    EXPECT_EQ(tokens[1].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(tokens[1].numValue, 2.0);
    EXPECT_EQ(tokens[2].kind, TokenKind::Semicolon);
    EXPECT_EQ(tokens[3].kind, TokenKind::EndOfFile);
}

TEST(QasmLexer, IdentifiersVsKeywords)
{
    const auto tokens = tokenize("qreg myname cx");
    EXPECT_EQ(tokens[0].kind, TokenKind::Keyword);
    EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[2].kind, TokenKind::Identifier); // cx is a gate name
}

TEST(QasmLexer, NumbersIntegerAndReal)
{
    const auto tokens = tokenize("42 3.5 1e-3 .25");
    EXPECT_EQ(tokens[0].kind, TokenKind::Integer);
    EXPECT_DOUBLE_EQ(tokens[0].numValue, 42);
    EXPECT_EQ(tokens[1].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(tokens[1].numValue, 3.5);
    EXPECT_EQ(tokens[2].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(tokens[2].numValue, 1e-3);
    EXPECT_EQ(tokens[3].kind, TokenKind::Real);
    EXPECT_DOUBLE_EQ(tokens[3].numValue, 0.25);
}

TEST(QasmLexer, PiToken)
{
    const auto tokens = tokenize("rz(pi/2)");
    ASSERT_GE(tokens.size(), 5u);
    EXPECT_EQ(tokens[2].kind, TokenKind::Pi);
}

TEST(QasmLexer, CommentsSkipped)
{
    const auto tokens = tokenize("h q; // comment to end\nx q;");
    // h q ; x q ; eof
    EXPECT_EQ(tokens.size(), 7u);
}

TEST(QasmLexer, ArrowToken)
{
    const auto tokens = tokenize("measure q -> c;");
    EXPECT_EQ(tokens[2].kind, TokenKind::Arrow);
}

TEST(QasmLexer, StringLiteral)
{
    const auto tokens = tokenize("include \"qelib1.inc\";");
    EXPECT_EQ(tokens[1].kind, TokenKind::StringLit);
    EXPECT_EQ(tokens[1].text, "qelib1.inc");
}

TEST(QasmLexer, TracksLineNumbers)
{
    const auto tokens = tokenize("h q;\nx q;\n\ny q;");
    // Find the 'y' token and check its line.
    bool found = false;
    for (const Token &t : tokens) {
        if (t.kind == TokenKind::Identifier && t.text == "y") {
            EXPECT_EQ(t.line, 4);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(QasmLexer, IllegalCharacterThrows)
{
    EXPECT_THROW(tokenize("h q; @"), ConfigError);
}

TEST(QasmLexer, UnterminatedStringThrows)
{
    EXPECT_THROW(tokenize("include \"oops"), ConfigError);
}

TEST(QasmLexer, EmptyInputYieldsEof)
{
    const auto tokens = tokenize("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].kind, TokenKind::EndOfFile);
}

} // namespace
} // namespace qccd::qasm
