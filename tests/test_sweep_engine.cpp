/**
 * @file
 * Tests for the parallel sweep engine: worker-count determinism, the
 * shared-context fast path agreeing with the uncached toolflow, job
 * resolution, and cache behaviour.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "core/sweep_engine.hpp"

namespace qccd
{
namespace
{

/** Field-by-field exact equality of two run results. */
void
expectIdenticalResults(const RunResult &a, const RunResult &b,
                       const std::string &what)
{
    EXPECT_EQ(a.sim.makespan, b.sim.makespan) << what;
    EXPECT_EQ(a.sim.logFidelity, b.sim.logFidelity) << what;
    EXPECT_EQ(a.sim.zeroFidelityOps, b.sim.zeroFidelityOps) << what;
    EXPECT_EQ(a.sim.maxChainEnergy, b.sim.maxChainEnergy) << what;
    EXPECT_EQ(a.sim.sumBackgroundError, b.sim.sumBackgroundError) << what;
    EXPECT_EQ(a.sim.sumMotionalError, b.sim.sumMotionalError) << what;
    EXPECT_EQ(a.sim.computeBusy, b.sim.computeBusy) << what;
    EXPECT_EQ(a.sim.commBusy, b.sim.commBusy) << what;
    EXPECT_EQ(a.sim.effectiveBuffer, b.sim.effectiveBuffer) << what;
    EXPECT_EQ(a.computeOnlyTime, b.computeOnlyTime) << what;

    const OpCounts &ca = a.sim.counts;
    const OpCounts &cb = b.sim.counts;
    EXPECT_EQ(ca.algorithmMs, cb.algorithmMs) << what;
    EXPECT_EQ(ca.reorderMs, cb.reorderMs) << what;
    EXPECT_EQ(ca.oneQubit, cb.oneQubit) << what;
    EXPECT_EQ(ca.measurements, cb.measurements) << what;
    EXPECT_EQ(ca.splits, cb.splits) << what;
    EXPECT_EQ(ca.merges, cb.merges) << what;
    EXPECT_EQ(ca.moves, cb.moves) << what;
    EXPECT_EQ(ca.segmentsMoved, cb.segmentsMoved) << what;
    EXPECT_EQ(ca.junctionCrossings, cb.junctionCrossings) << what;
    EXPECT_EQ(ca.rotations, cb.rotations) << what;
    EXPECT_EQ(ca.transits, cb.transits) << what;
    EXPECT_EQ(ca.shuttles, cb.shuttles) << what;
    EXPECT_EQ(ca.evictions, cb.evictions) << what;
    EXPECT_EQ(ca.trapPassThroughs, cb.trapPassThroughs) << what;
}

void
expectIdenticalPoints(const std::vector<SweepPoint> &a,
                      const std::vector<SweepPoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].application, b[i].application);
        EXPECT_EQ(a[i].design.label(), b[i].design.label());
        expectIdenticalResults(a[i].result, b[i].result,
                               a[i].design.label());
    }
}

/** A small mixed batch: two apps, two topologies, decompose pass on. */
std::vector<SweepJob>
smallBatch()
{
    std::vector<SweepJob> jobs;
    RunOptions options;
    options.decomposeRuntime = true;
    for (const char *app : {"qft", "qaoa"}) {
        const auto native =
            SweepEngine::lower(makeBenchmarkSized(app, 16));
        for (const std::string &spec : {std::string("linear:4"),
                                        std::string("grid:2x2")}) {
            for (int cap : {6, 8}) {
                SweepJob job;
                job.application = app;
                job.native = native;
                job.design.topologySpec = spec;
                job.design.trapCapacity = cap;
                job.options = options;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

TEST(SweepEngine, DeterministicAcrossWorkerCounts)
{
    SweepEngine serial(1);
    SweepEngine four(4);
    SweepEngine hardware(static_cast<int>(std::max(
        1u, std::thread::hardware_concurrency())));

    const auto jobs = smallBatch();
    const auto a = serial.run(jobs);
    const auto b = four.run(jobs);
    const auto c = hardware.run(jobs);

    ASSERT_EQ(a.size(), 8u);
    expectIdenticalPoints(a, b);
    expectIdenticalPoints(a, c);
}

TEST(SweepEngine, RepeatedRunsOnOneEngineAreIdentical)
{
    SweepEngine engine(4);
    const auto jobs = smallBatch();
    expectIdenticalPoints(engine.run(jobs), engine.run(jobs));
}

TEST(SweepEngine, CachedAndUncachedToolflowAgreeForEveryAppAndGate)
{
    // The regression the caches must never introduce: for every
    // application x gate implementation, the shared-context fast path
    // must equal a from-scratch runToolflow bit for bit.
    SweepEngine engine;
    RunOptions options;
    options.decomposeRuntime = true;
    for (const BenchmarkSpec &spec : benchmarkList()) {
        const Circuit app = makeBenchmarkSized(spec.name, 16);
        const auto native = SweepEngine::lower(app);
        for (GateImpl gate : {GateImpl::AM1, GateImpl::AM2, GateImpl::PM,
                              GateImpl::FM}) {
            DesignPoint dp = DesignPoint::linear(4, 8, gate);
            const RunResult uncached = runToolflow(app, dp, options);
            const RunResult cached = runToolflow(
                *native, dp, *engine.context(dp), options);
            expectIdenticalResults(uncached, cached,
                                   spec.name + " " + dp.label());
        }
    }
}

TEST(SweepEngine, ContextCacheKeySeparatesArchitectures)
{
    const DesignPoint a = DesignPoint::linear(6, 22);
    DesignPoint b = a;
    EXPECT_EQ(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(b));

    // Gate implementation and reorder method do not touch the
    // architecture: contexts are shared across them.
    b.hw.gateImpl = GateImpl::AM1;
    b.hw.reorder = ReorderMethod::IS;
    EXPECT_EQ(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(b));

    // Topology, capacity, and shuttle timings do.
    DesignPoint c = a;
    c.trapCapacity = 14;
    EXPECT_NE(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(c));
    DesignPoint d = a;
    d.topologySpec = "grid:2x3";
    EXPECT_NE(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(d));
    DesignPoint e = a;
    e.hw.shuttle.movePerSegment = 7.5;
    EXPECT_NE(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(e));
}

TEST(SweepEngine, ContextsAreSharedPerArchitecture)
{
    SweepEngine engine(1);
    const DesignPoint fm = DesignPoint::linear(6, 22, GateImpl::FM);
    const DesignPoint am1 = DesignPoint::linear(6, 22, GateImpl::AM1);
    EXPECT_EQ(engine.context(fm).get(), engine.context(am1).get());

    const DesignPoint other = DesignPoint::linear(6, 14);
    EXPECT_NE(engine.context(fm).get(), engine.context(other).get());
}

TEST(SweepEngine, NativeBenchmarkIsLoweredOncePerApp)
{
    SweepEngine engine(1);
    const auto first = engine.nativeBenchmark("bv");
    const auto second = engine.nativeBenchmark("bv");
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(first->size(),
              decomposeToNative(makeBenchmark("bv")).size());
}

TEST(SweepEngine, ResolveJobsPrefersExplicitThenEnvThenHardware)
{
    EXPECT_EQ(SweepEngine::resolveJobs(3), 3);

    ASSERT_EQ(setenv("QCCD_JOBS", "5", 1), 0);
    EXPECT_EQ(SweepEngine::resolveJobs(0), 5);
    EXPECT_EQ(SweepEngine::resolveJobs(2), 2);

    ASSERT_EQ(setenv("QCCD_JOBS", "garbage", 1), 0);
    EXPECT_GE(SweepEngine::resolveJobs(0), 1);

    ASSERT_EQ(unsetenv("QCCD_JOBS"), 0);
    EXPECT_GE(SweepEngine::resolveJobs(0), 1);
}

TEST(SweepEngine, PropagatesJobErrorsAfterFinishingTheBatch)
{
    SweepEngine engine(2);
    std::vector<SweepJob> jobs;
    SweepJob bad;
    bad.application = "qft";
    bad.native = SweepEngine::lower(makeBenchmarkSized("qft", 16));
    bad.design = DesignPoint::linear(2, 4); // capacity 8 < 16 qubits
    jobs.push_back(bad);
    EXPECT_THROW(engine.run(jobs), ConfigError);
}

TEST(SweepEngine, RejectsJobsWithoutLoweredCircuit)
{
    SweepEngine engine(1);
    std::vector<SweepJob> jobs(1);
    jobs[0].application = "empty";
    jobs[0].design = DesignPoint::linear(2, 6);
    EXPECT_THROW(engine.run(jobs), ConfigError);
}

} // namespace
} // namespace qccd
