/**
 * @file
 * Tests for the parallel sweep engine: worker-count determinism, the
 * shared-context fast path agreeing with the uncached toolflow, job
 * resolution, and cache behaviour.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/sweep_engine.hpp"

namespace qccd
{
namespace
{

/** Field-by-field exact equality of two run results. */
void
expectIdenticalResults(const RunResult &a, const RunResult &b,
                       const std::string &what)
{
    EXPECT_EQ(a.sim.makespan, b.sim.makespan) << what;
    EXPECT_EQ(a.sim.logFidelity, b.sim.logFidelity) << what;
    EXPECT_EQ(a.sim.zeroFidelityOps, b.sim.zeroFidelityOps) << what;
    EXPECT_EQ(a.sim.maxChainEnergy, b.sim.maxChainEnergy) << what;
    EXPECT_EQ(a.sim.sumBackgroundError, b.sim.sumBackgroundError) << what;
    EXPECT_EQ(a.sim.sumMotionalError, b.sim.sumMotionalError) << what;
    EXPECT_EQ(a.sim.computeBusy, b.sim.computeBusy) << what;
    EXPECT_EQ(a.sim.commBusy, b.sim.commBusy) << what;
    EXPECT_EQ(a.sim.effectiveBuffer, b.sim.effectiveBuffer) << what;
    EXPECT_EQ(a.computeOnlyTime, b.computeOnlyTime) << what;

    const OpCounts &ca = a.sim.counts;
    const OpCounts &cb = b.sim.counts;
    EXPECT_EQ(ca.algorithmMs, cb.algorithmMs) << what;
    EXPECT_EQ(ca.reorderMs, cb.reorderMs) << what;
    EXPECT_EQ(ca.oneQubit, cb.oneQubit) << what;
    EXPECT_EQ(ca.measurements, cb.measurements) << what;
    EXPECT_EQ(ca.splits, cb.splits) << what;
    EXPECT_EQ(ca.merges, cb.merges) << what;
    EXPECT_EQ(ca.moves, cb.moves) << what;
    EXPECT_EQ(ca.segmentsMoved, cb.segmentsMoved) << what;
    EXPECT_EQ(ca.junctionCrossings, cb.junctionCrossings) << what;
    EXPECT_EQ(ca.rotations, cb.rotations) << what;
    EXPECT_EQ(ca.transits, cb.transits) << what;
    EXPECT_EQ(ca.shuttles, cb.shuttles) << what;
    EXPECT_EQ(ca.evictions, cb.evictions) << what;
    EXPECT_EQ(ca.trapPassThroughs, cb.trapPassThroughs) << what;
}

void
expectIdenticalPoints(const std::vector<SweepPoint> &a,
                      const std::vector<SweepPoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].application, b[i].application);
        EXPECT_EQ(a[i].design.label(), b[i].design.label());
        expectIdenticalResults(a[i].result, b[i].result,
                               a[i].design.label());
    }
}

/** A small mixed batch: two apps, two topologies, decompose pass on. */
std::vector<SweepJob>
smallBatch()
{
    std::vector<SweepJob> jobs;
    RunOptions options;
    options.decomposeRuntime = true;
    for (const char *app : {"qft", "qaoa"}) {
        const auto native =
            SweepEngine::lower(makeBenchmarkSized(app, 16));
        for (const std::string &spec : {std::string("linear:4"),
                                        std::string("grid:2x2")}) {
            for (int cap : {6, 8}) {
                SweepJob job;
                job.application = app;
                job.native = native;
                job.design.topologySpec = spec;
                job.design.trapCapacity = cap;
                job.options = options;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

TEST(SweepEngine, DeterministicAcrossWorkerCounts)
{
    SweepEngine serial(1);
    SweepEngine four(4);
    SweepEngine hardware(static_cast<int>(std::max(
        1u, std::thread::hardware_concurrency())));

    const auto jobs = smallBatch();
    const auto a = serial.run(jobs);
    const auto b = four.run(jobs);
    const auto c = hardware.run(jobs);

    ASSERT_EQ(a.size(), 8u);
    expectIdenticalPoints(a, b);
    expectIdenticalPoints(a, c);
}

TEST(SweepEngine, RepeatedRunsOnOneEngineAreIdentical)
{
    SweepEngine engine(4);
    const auto jobs = smallBatch();
    expectIdenticalPoints(engine.run(jobs), engine.run(jobs));
}

TEST(SweepEngine, CachedAndUncachedToolflowAgreeForEveryAppAndGate)
{
    // The regression the caches must never introduce: for every
    // application x gate implementation, the shared-context fast path
    // must equal a from-scratch runToolflow bit for bit.
    SweepEngine engine;
    RunOptions options;
    options.decomposeRuntime = true;
    for (const BenchmarkSpec &spec : benchmarkList()) {
        const Circuit app = makeBenchmarkSized(spec.name, 16);
        const auto native = SweepEngine::lower(app);
        for (GateImpl gate : {GateImpl::AM1, GateImpl::AM2, GateImpl::PM,
                              GateImpl::FM}) {
            DesignPoint dp = DesignPoint::linear(4, 8, gate);
            const RunResult uncached = runToolflow(app, dp, options);
            const RunResult cached = runToolflow(
                *native, dp, *engine.context(dp), options);
            expectIdenticalResults(uncached, cached,
                                   spec.name + " " + dp.label());
        }
    }
}

TEST(SweepEngine, ContextCacheKeySeparatesArchitectures)
{
    const DesignPoint a = DesignPoint::linear(6, 22);
    DesignPoint b = a;
    EXPECT_EQ(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(b));

    // Gate implementation and reorder method do not touch the
    // architecture: contexts are shared across them.
    b.hw.gateImpl = GateImpl::AM1;
    b.hw.reorder = ReorderMethod::IS;
    EXPECT_EQ(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(b));

    // Topology, capacity, and shuttle timings do.
    DesignPoint c = a;
    c.trapCapacity = 14;
    EXPECT_NE(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(c));
    DesignPoint d = a;
    d.topologySpec = "grid:2x3";
    EXPECT_NE(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(d));
    DesignPoint e = a;
    e.hw.shuttle.movePerSegment = 7.5;
    EXPECT_NE(ToolflowContext::cacheKey(a), ToolflowContext::cacheKey(e));
}

TEST(SweepEngine, ContextsAreSharedPerArchitecture)
{
    SweepEngine engine(1);
    const DesignPoint fm = DesignPoint::linear(6, 22, GateImpl::FM);
    const DesignPoint am1 = DesignPoint::linear(6, 22, GateImpl::AM1);
    EXPECT_EQ(engine.context(fm).get(), engine.context(am1).get());

    const DesignPoint other = DesignPoint::linear(6, 14);
    EXPECT_NE(engine.context(fm).get(), engine.context(other).get());
}

TEST(SweepEngine, NativeBenchmarkIsLoweredOncePerApp)
{
    SweepEngine engine(1);
    const auto first = engine.nativeBenchmark("bv");
    const auto second = engine.nativeBenchmark("bv");
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(first->size(),
              decomposeToNative(makeBenchmark("bv")).size());
}

TEST(SweepEngine, ResolveJobsPrefersExplicitThenEnvThenHardware)
{
    EXPECT_EQ(SweepEngine::resolveJobs(3), 3);

    ASSERT_EQ(setenv("QCCD_JOBS", "5", 1), 0);
    EXPECT_EQ(SweepEngine::resolveJobs(0), 5);
    EXPECT_EQ(SweepEngine::resolveJobs(2), 2);

    ASSERT_EQ(unsetenv("QCCD_JOBS"), 0);
    EXPECT_GE(SweepEngine::resolveJobs(0), 1);
}

TEST(SweepEngineDeathTest, ResolveJobsRejectsMalformedEnv)
{
    // A set but broken QCCD_JOBS is a usage error (exit 2 with a
    // pointed diagnostic), never a silent hardware-concurrency
    // fallback: std::atoi used to turn "garbage" into a surprise
    // core count and "4x" into 4.
    for (const char *bad :
         {"garbage", "4x", "0", "-2", "", " 4", "99999999999999999999"}) {
        ASSERT_EQ(setenv("QCCD_JOBS", bad, 1), 0);
        EXPECT_EXIT(SweepEngine::resolveJobs(0),
                    testing::ExitedWithCode(2), "bad QCCD_JOBS")
            << "value: '" << bad << "'";
    }
    ASSERT_EQ(unsetenv("QCCD_JOBS"), 0);
}

/**
 * The staged toolflow's whole contract: evaluating a batch through the
 * engine (which groups by schedule key and replays model logs) must be
 * bit-identical to evaluating every point from scratch with scalar
 * runToolflow, for any worker count and any batch composition. Random
 * grids mix pure model-knob axes (replay candidates) with
 * schedule-affecting axes (gate implementation, capacity, reorder,
 * placement policy) so both the reuse and the invalidation edges are
 * exercised.
 */
TEST(SweepEngine, StagedEvaluationMatchesScalarToolflowOnRandomGrids)
{
    Rng rng(0x5eedc0de);
    const char *apps[] = {"qft", "qaoa", "bv", "adder"};

    for (int trial = 0; trial < 30; ++trial) {
        const char *app = apps[rng.nextInt(0, 3)];
        const auto native =
            SweepEngine::lower(makeBenchmarkSized(app, 12));

        const DesignPoint base = rng.nextBool()
                                     ? DesignPoint::linear(4, 8)
                                     : DesignPoint::linear(3, 10);

        std::vector<DesignPoint> designs{base};
        const auto expand = [&designs](int count, const auto &apply) {
            std::vector<DesignPoint> out;
            for (const DesignPoint &d : designs)
                for (int v = 0; v < count; ++v) {
                    DesignPoint e = d;
                    apply(e, v);
                    out.push_back(e);
                }
            designs = std::move(out);
        };

        // One or two pure model-knob axes (the replay fast path)...
        const int model_axes = rng.nextInt(1, 2);
        for (int a = 0; a < model_axes; ++a) {
            switch (rng.nextInt(0, 3)) {
            case 0:
                expand(rng.nextInt(2, 3), [](DesignPoint &d, int v) {
                    d.hw.gammaPerS = 1.0 + 0.75 * v;
                });
                break;
            case 1:
                expand(2, [](DesignPoint &d, int v) {
                    d.hw.heatingK1 = 0.1 + 0.05 * v;
                    d.hw.heatingK2 = 0.01 + 0.005 * v;
                });
                break;
            case 2:
                expand(2, [](DesignPoint &d, int v) {
                    d.hw.kappa = 5e-6 * (1 + v);
                    d.hw.oneQubitError = 3e-5 * (1 + 2 * v);
                });
                break;
            default:
                expand(2, [](DesignPoint &d, int v) {
                    d.hw.measureError = 1e-3 * (1 + v);
                    d.hw.recoolFactor = v == 0 ? 1.0 : 0.5;
                });
                break;
            }
        }
        // ...sometimes crossed with a schedule-affecting axis (forces
        // full re-schedules between key groups).
        switch (rng.nextInt(0, 3)) {
        case 0:
            expand(2, [](DesignPoint &d, int v) {
                d.hw.gateImpl = v == 0 ? GateImpl::FM : GateImpl::AM1;
            });
            break;
        case 1:
            expand(2, [](DesignPoint &d, int v) {
                d.trapCapacity = 8 + 2 * v;
            });
            break;
        case 2:
            expand(2, [](DesignPoint &d, int v) {
                d.hw.reorder = v == 0 ? ReorderMethod::GS
                                      : ReorderMethod::IS;
            });
            break;
        default:
            break; // model knobs only: the whole grid is one key group
        }

        RunOptions options;
        options.decomposeRuntime = rng.nextBool();
        options.mappingPolicy = rng.nextBool() ? MappingPolicy::Packed
                                               : MappingPolicy::Balanced;

        std::vector<SweepJob> jobs;
        for (const DesignPoint &d : designs) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = d;
            job.options = options;
            jobs.push_back(std::move(job));
        }

        SweepEngine serial(1);
        SweepEngine four(4);
        const auto a = serial.run(jobs);
        const auto b = four.run(jobs);
        expectIdenticalPoints(a, b);

        // A sharded evaluation (two halves on fresh engines) must
        // union to the same rows: replay never leaks across shard
        // boundaries.
        const size_t half = jobs.size() / 2;
        SweepEngine lo(2);
        SweepEngine hi(2);
        const auto first = lo.run(
            {jobs.begin(), jobs.begin() + static_cast<long>(half)});
        const auto second = hi.run(
            {jobs.begin() + static_cast<long>(half), jobs.end()});
        ASSERT_EQ(first.size() + second.size(), a.size());
        for (size_t i = 0; i < a.size(); ++i) {
            const SweepPoint &shard =
                i < half ? first[i] : second[i - half];
            expectIdenticalResults(a[i].result, shard.result,
                                   "shard " + a[i].design.label());
        }

        // Scalar reference: every point from scratch, no staging.
        for (size_t i = 0; i < jobs.size(); ++i) {
            const ToolflowContext context(jobs[i].design);
            const RunResult scalar =
                runToolflow(*jobs[i].native, jobs[i].design, context,
                            jobs[i].options);
            expectIdenticalResults(
                a[i].result, scalar,
                "trial " + std::to_string(trial) + " point " +
                    std::to_string(i) + " " + a[i].design.label());
        }
    }
}

TEST(SweepEngine, ModelKnobOnlyAxesCollapseToOneScheduleKeyGroup)
{
    // gateImpl axis (2 schedule keys) x gamma axis (5 model values):
    // a serial engine must schedule exactly once per key group and
    // replay everything else.
    SweepEngine engine(1);
    const auto native = SweepEngine::lower(makeBenchmarkSized("qft", 12));
    std::vector<SweepJob> jobs;
    for (GateImpl gate : {GateImpl::FM, GateImpl::AM1}) {
        for (int v = 0; v < 5; ++v) {
            SweepJob job;
            job.application = "qft";
            job.native = native;
            job.design = DesignPoint::linear(4, 8, gate);
            job.design.hw.gammaPerS = 1.0 + 0.5 * v;
            jobs.push_back(std::move(job));
        }
    }
    engine.run(jobs);
    EXPECT_EQ(engine.deltaStats().fullSchedules, 2u);
    EXPECT_EQ(engine.deltaStats().replays, 8u);
}

TEST(SweepEngine, PropagatesJobErrorsAfterFinishingTheBatch)
{
    SweepEngine engine(2);
    std::vector<SweepJob> jobs;
    SweepJob bad;
    bad.application = "qft";
    bad.native = SweepEngine::lower(makeBenchmarkSized("qft", 16));
    bad.design = DesignPoint::linear(2, 4); // capacity 8 < 16 qubits
    jobs.push_back(bad);
    EXPECT_THROW(engine.run(jobs), ConfigError);
}

TEST(SweepEngine, RejectsJobsWithoutLoweredCircuit)
{
    SweepEngine engine(1);
    std::vector<SweepJob> jobs(1);
    jobs[0].application = "empty";
    jobs[0].design = DesignPoint::linear(2, 6);
    EXPECT_THROW(engine.run(jobs), ConfigError);
}

} // namespace
} // namespace qccd
