/**
 * @file
 * Tests for the checked-build contract layer (common/error.hpp):
 * QCCD_DBG_ASSERT must be provably zero-cost in release builds (the
 * condition is not even evaluated) and must throw InternalError — the
 * same typed failure panicUnless raises — when QCCD_CHECKED=ON. The
 * suite compiles in both modes; each test asserts the behavior of the
 * mode it was built under, so the release CI lane proves compiled-out
 * and the checked CI lane proves the audits fire.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/design_point.hpp"
#include "core/toolflow.hpp"

namespace qccd
{
namespace
{

TEST(Contracts, BuildFlagAndHelperAgree)
{
    EXPECT_EQ(checkedBuildEnabled(), QCCD_CHECKED_BUILD != 0);
}

TEST(Contracts, PassingAssertIsAlwaysSilent)
{
    EXPECT_NO_THROW(QCCD_DBG_ASSERT(true, "never fires"));
}

TEST(Contracts, FailingAssertThrowsOnlyWhenChecked)
{
#if QCCD_CHECKED_BUILD
    EXPECT_THROW(QCCD_DBG_ASSERT(false, "contract violated"),
                 InternalError);
    try {
        QCCD_DBG_ASSERT(false, "contract violated");
    } catch (const InternalError &err) {
        // Same formatting path as panicUnless: the message names the
        // violated invariant and the error brands itself internal.
        EXPECT_NE(std::string(err.what()).find("contract violated"),
                  std::string::npos);
    }
#else
    EXPECT_NO_THROW(QCCD_DBG_ASSERT(false, "compiled out"));
#endif
}

TEST(Contracts, ReleaseBuildsDoNotEvaluateTheCondition)
{
    // The condition must be compiled out entirely, not just ignored:
    // a release-build audit with a side effect would desynchronize
    // release and checked behavior (and cost time on the hot path).
    int evaluations = 0;
    [[maybe_unused]] auto probe = [&]() {
        ++evaluations;
        return true;
    };
    QCCD_DBG_ASSERT(probe(), "probe");
#if QCCD_CHECKED_BUILD
    EXPECT_EQ(evaluations, 1);
#else
    EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Contracts, CheckedOnlyBlocksFollowTheSameGate)
{
    int ran = 0;
    QCCD_CHECKED_ONLY(ran = 1;)
#if QCCD_CHECKED_BUILD
    EXPECT_EQ(ran, 1);
#else
    EXPECT_EQ(ran, 0);
#endif
}

TEST(Contracts, StageBoundaryAuditsPassOnHealthyRuns)
{
    // End-to-end: a real toolflow context construction runs the
    // checked Topology::validate audit (and a full point would run the
    // scheduler/device-state audits — covered by the suites under the
    // checked CI lane). Healthy inputs must never trip a contract.
    DesignPoint design;
    design.topologySpec = "linear:4";
    design.trapCapacity = 14;
    EXPECT_NO_THROW(ToolflowContext{design});
}

} // namespace
} // namespace qccd
