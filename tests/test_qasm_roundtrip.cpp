/** @file Round-trip property tests: write(parse(x)) preserves the IR. */

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "circuit/qasm/parser.hpp"
#include "circuit/qasm/writer.hpp"
#include "circuit/stats.hpp"

namespace qccd
{
namespace
{

/** Equality on everything the simulator consumes. */
void
expectEquivalent(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    // Barriers may be dropped/normalized; compare non-barrier streams.
    std::vector<Gate> ga;
    std::vector<Gate> gb;
    for (const Gate &g : a.gates())
        if (g.op != Op::Barrier)
            ga.push_back(g);
    for (const Gate &g : b.gates())
        if (g.op != Op::Barrier)
            gb.push_back(g);
    ASSERT_EQ(ga.size(), gb.size());
    for (size_t i = 0; i < ga.size(); ++i) {
        EXPECT_EQ(ga[i].op, gb[i].op) << "gate " << i;
        EXPECT_EQ(ga[i].q0, gb[i].q0) << "gate " << i;
        EXPECT_EQ(ga[i].q1, gb[i].q1) << "gate " << i;
        EXPECT_NEAR(ga[i].param, gb[i].param, 1e-12) << "gate " << i;
    }
}

class QasmRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QasmRoundTrip, WriteParsePreservesCircuit)
{
    const Circuit original = makeBenchmarkSized(GetParam(), 10);
    const std::string text = qasm::write(original);
    const Circuit reparsed = qasm::parse(text, original.name());
    expectEquivalent(original, reparsed);
}

TEST_P(QasmRoundTrip, StatsSurviveRoundTrip)
{
    const Circuit original = makeBenchmarkSized(GetParam(), 12);
    const Circuit reparsed = qasm::parse(qasm::write(original));
    const CircuitStats sa = computeStats(original);
    const CircuitStats sb = computeStats(reparsed);
    EXPECT_EQ(sa.twoQubitGates, sb.twoQubitGates);
    EXPECT_EQ(sa.oneQubitGates, sb.oneQubitGates);
    EXPECT_EQ(sa.measurements, sb.measurements);
    EXPECT_EQ(sa.depth, sb.depth);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, QasmRoundTrip,
                         ::testing::Values("qft", "bv", "adder", "qaoa",
                                           "supremacy", "squareroot"));

TEST(QasmRoundTrip, HandwrittenMixedGates)
{
    Circuit c(4, "mixed");
    c.h(0);
    c.t(1);
    c.tdg(2);
    c.rx(3, 0.125);
    c.cx(0, 2);
    c.cz(1, 3);
    c.cphase(0, 3, 0.75);
    c.swap(1, 2);
    c.ms(0, 1, 0.5);
    c.measureAll();
    const Circuit reparsed = qasm::parse(qasm::write(c));
    expectEquivalent(c, reparsed);
}

} // namespace
} // namespace qccd
