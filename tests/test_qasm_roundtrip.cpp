/** @file Round-trip property tests: write(parse(x)) preserves the IR. */

#include <gtest/gtest.h>

#include <iterator>
#include <numbers>

#include "benchgen/benchgen.hpp"
#include "circuit/qasm/parser.hpp"
#include "circuit/qasm/writer.hpp"
#include "circuit/stats.hpp"
#include "common/rng.hpp"

namespace qccd
{
namespace
{

/** Equality on everything the simulator consumes. */
void
expectEquivalent(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    // Barriers may be dropped/normalized; compare non-barrier streams.
    std::vector<Gate> ga;
    std::vector<Gate> gb;
    for (const Gate &g : a.gates())
        if (g.op != Op::Barrier)
            ga.push_back(g);
    for (const Gate &g : b.gates())
        if (g.op != Op::Barrier)
            gb.push_back(g);
    ASSERT_EQ(ga.size(), gb.size());
    for (size_t i = 0; i < ga.size(); ++i) {
        EXPECT_EQ(ga[i].op, gb[i].op) << "gate " << i;
        EXPECT_EQ(ga[i].q0, gb[i].q0) << "gate " << i;
        EXPECT_EQ(ga[i].q1, gb[i].q1) << "gate " << i;
        EXPECT_NEAR(ga[i].param, gb[i].param, 1e-12) << "gate " << i;
    }
}

class QasmRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QasmRoundTrip, WriteParsePreservesCircuit)
{
    const Circuit original = makeBenchmarkSized(GetParam(), 10);
    const std::string text = qasm::write(original);
    const Circuit reparsed = qasm::parse(text, original.name());
    expectEquivalent(original, reparsed);
}

TEST_P(QasmRoundTrip, StatsSurviveRoundTrip)
{
    const Circuit original = makeBenchmarkSized(GetParam(), 12);
    const Circuit reparsed = qasm::parse(qasm::write(original));
    const CircuitStats sa = computeStats(original);
    const CircuitStats sb = computeStats(reparsed);
    EXPECT_EQ(sa.twoQubitGates, sb.twoQubitGates);
    EXPECT_EQ(sa.oneQubitGates, sb.oneQubitGates);
    EXPECT_EQ(sa.measurements, sb.measurements);
    EXPECT_EQ(sa.depth, sb.depth);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, QasmRoundTrip,
                         ::testing::Values("qft", "bv", "adder", "qaoa",
                                           "supremacy", "squareroot"));

/**
 * Draw a random circuit covering the whole IR vocabulary: every Op
 * (including barriers and measurements), parameterized gates with
 * positive/negative/zero/pi-multiple angles, and edge qubit counts
 * (1-qubit circuits force the generator to skip two-qubit ops).
 */
Circuit
randomCircuit(Rng &rng)
{
    // Edge-heavy qubit count distribution: 1 and 2 show up often.
    static const int kQubitCounts[] = {1, 1, 2, 2, 3, 5, 8, 17};
    const int n = kQubitCounts[rng.nextBelow(8)];
    Circuit circuit(n, "fuzz");

    static const Op kOps[] = {Op::H, Op::X, Op::Y, Op::Z, Op::S,
                              Op::Sdg, Op::T, Op::Tdg, Op::RX, Op::RY,
                              Op::RZ, Op::CX, Op::CZ, Op::CPhase,
                              Op::MS, Op::Swap, Op::Measure,
                              Op::Barrier};
    const int gates = rng.nextInt(0, 40);
    for (int i = 0; i < gates; ++i) {
        const Op op = kOps[rng.nextBelow(std::size(kOps))];
        double param = 0;
        if (opHasParam(op)) {
            switch (rng.nextInt(0, 3)) {
              case 0: param = 0; break;
              case 1: param = std::numbers::pi *
                              rng.nextInt(-4, 4) / 2.0; break;
              default:
                param = (rng.nextDouble() - 0.5) * 20.0;
            }
        }
        if (op == Op::Barrier) {
            circuit.add(Gate{});
        } else if (opArity(op) == 2) {
            if (n < 2)
                continue;
            const QubitId a = rng.nextInt(0, n - 1);
            QubitId b = rng.nextInt(0, n - 2);
            b += b >= a ? 1 : 0;
            circuit.add(Gate::two(op, a, b, param));
        } else if (op == Op::Measure) {
            circuit.measure(rng.nextInt(0, n - 1));
        } else {
            circuit.add(Gate::one(op, rng.nextInt(0, n - 1), param));
        }
    }
    return circuit;
}

TEST(QasmRoundTrip, TwoHundredRandomCircuitsSurviveWriteParse)
{
    Rng rng(0x0a5a5a5aULL);
    for (int iter = 0; iter < 200; ++iter) {
        const Circuit original = randomCircuit(rng);
        const std::string text = qasm::write(original);
        Circuit reparsed(1);
        ASSERT_NO_THROW(reparsed = qasm::parse(text, original.name()))
            << "iteration " << iter << "\n" << text;
        expectEquivalent(original, reparsed);
        // And the round trip is a fixed point: writing the reparsed
        // circuit reproduces the same QASM text.
        EXPECT_EQ(text, qasm::write(reparsed)) << "iteration " << iter;
    }
}

TEST(QasmRoundTrip, HandwrittenMixedGates)
{
    Circuit c(4, "mixed");
    c.h(0);
    c.t(1);
    c.tdg(2);
    c.rx(3, 0.125);
    c.cx(0, 2);
    c.cz(1, 3);
    c.cphase(0, 3, 0.75);
    c.swap(1, 2);
    c.ms(0, 1, 0.5);
    c.measureAll();
    const Circuit reparsed = qasm::parse(qasm::write(c));
    expectEquivalent(c, reparsed);
}

} // namespace
} // namespace qccd
