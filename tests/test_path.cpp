/** @file Unit + property tests for shortest-path shuttle routing. */

#include <gtest/gtest.h>

#include "arch/builders.hpp"
#include "arch/path.hpp"

namespace qccd
{
namespace
{

TEST(Path, AdjacentLinearTrapsIsOneEdge)
{
    const Topology topo = makeLinear(6, 20);
    const PathFinder finder(topo, PathCost{});
    const Path &p = finder.path(0, 1);
    ASSERT_EQ(p.steps.size(), 1u);
    EXPECT_EQ(p.steps[0].kind, PathStep::Kind::Edge);
    EXPECT_EQ(p.throughTrapCount(), 0);
    EXPECT_EQ(p.junctionCount(), 0);
    EXPECT_DOUBLE_EQ(p.cost, 5.0);
}

TEST(Path, DistantLinearTrapsPassThroughIntermediates)
{
    const Topology topo = makeLinear(6, 20);
    const PathFinder finder(topo, PathCost{});
    const Path &p = finder.path(0, 5);
    // Fig. 4: every intermediate trap costs a merge/reorder/split.
    EXPECT_EQ(p.throughTrapCount(), 4);
    EXPECT_EQ(p.segmentCount(), 5);
    EXPECT_EQ(p.junctionCount(), 0);
    EXPECT_DOUBLE_EQ(p.cost, 5 * 5.0 + 4 * PathCost{}.trapPassThrough);
}

TEST(Path, GridAvoidsTrapPassThroughs)
{
    const Topology topo = makeGrid(2, 3, 20);
    const PathFinder finder(topo, PathCost{});
    for (TrapId a = 0; a < topo.trapCount(); ++a) {
        for (TrapId b = 0; b < topo.trapCount(); ++b) {
            if (a == b)
                continue;
            EXPECT_EQ(finder.path(a, b).throughTrapCount(), 0)
                << "path " << a << " -> " << b;
        }
    }
}

TEST(Path, GridSameColumnUsesOneJunction)
{
    // Trap layout: row-major, so traps 0 and 3 share column 0.
    const Topology topo = makeGrid(2, 3, 20);
    const PathFinder finder(topo, PathCost{});
    const Path &p = finder.path(0, 3);
    EXPECT_EQ(p.junctionCount(), 1);
    EXPECT_EQ(p.segmentCount(), 2);
}

TEST(Path, GridCrossColumnCrossesRail)
{
    const Topology topo = makeGrid(2, 3, 20);
    const PathFinder finder(topo, PathCost{});
    // Trap 0 (row 0, col 0) to trap 5 (row 1, col 2): 3 junctions.
    const Path &p = finder.path(0, 5);
    EXPECT_EQ(p.junctionCount(), 3);
    EXPECT_EQ(p.segmentCount(), 4);
}

TEST(Path, SelfPathIsEmpty)
{
    const Topology topo = makeLinear(4, 20);
    const PathFinder finder(topo, PathCost{});
    EXPECT_TRUE(finder.path(2, 2).steps.empty());
    EXPECT_DOUBLE_EQ(finder.cost(2, 2), 0.0);
}

/** Property sweep over topologies: costs are symmetric and positive. */
class PathProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PathProperty, CostsSymmetricAndPositive)
{
    const Topology topo = makeFromSpec(GetParam(), 20);
    const PathFinder finder(topo, PathCost{});
    for (TrapId a = 0; a < topo.trapCount(); ++a) {
        for (TrapId b = 0; b < topo.trapCount(); ++b) {
            if (a == b)
                continue;
            EXPECT_GT(finder.cost(a, b), 0.0);
            EXPECT_DOUBLE_EQ(finder.cost(a, b), finder.cost(b, a))
                << GetParam() << " " << a << "<->" << b;
        }
    }
}

TEST_P(PathProperty, PathsStartAndEndWithEdges)
{
    const Topology topo = makeFromSpec(GetParam(), 20);
    const PathFinder finder(topo, PathCost{});
    for (TrapId a = 0; a < topo.trapCount(); ++a) {
        for (TrapId b = 0; b < topo.trapCount(); ++b) {
            if (a == b)
                continue;
            const Path &p = finder.path(a, b);
            ASSERT_FALSE(p.steps.empty());
            EXPECT_EQ(p.steps.front().kind, PathStep::Kind::Edge);
            EXPECT_EQ(p.steps.back().kind, PathStep::Kind::Edge);
        }
    }
}

TEST_P(PathProperty, TriangleInequalityOnCosts)
{
    const Topology topo = makeFromSpec(GetParam(), 20);
    const PathFinder finder(topo, PathCost{});
    for (TrapId a = 0; a < topo.trapCount(); ++a)
        for (TrapId b = 0; b < topo.trapCount(); ++b)
            for (TrapId c = 0; c < topo.trapCount(); ++c) {
                // Going via c can never beat the direct shortest path
                // by more than c's own pass-through handling; the
                // direct cost must not exceed the sum of the two legs.
                if (a == b || b == c || a == c)
                    continue;
                EXPECT_LE(finder.cost(a, b) - 1e-9,
                          finder.cost(a, c) + PathCost{}.trapPassThrough +
                              finder.cost(c, b))
                    << GetParam();
            }
}

INSTANTIATE_TEST_SUITE_P(Topologies, PathProperty,
                         ::testing::Values("linear:2", "linear:6",
                                           "grid:2x2", "grid:2x3",
                                           "grid:3x3", "grid:2x5"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == ':' || c == 'x')
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace qccd
