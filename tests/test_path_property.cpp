/**
 * @file
 * Property tests for PathFinder on arbitrary connected topologies.
 *
 * The generalized architecture layer promises correct routing on any
 * trap/junction graph, not just the paper's rail shapes. This suite
 * checks PathFinder against an independent Floyd-Warshall reference
 * (same cost semantics, different algorithm) over ~50 random connected
 * topologies: cost optimality, cost symmetry, and step-sequence
 * validity of every reconstructed path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/builders.hpp"
#include "arch/path.hpp"
#include "arch/topology.hpp"
#include "common/rng.hpp"

namespace qccd
{
namespace
{

/** Traversal price of crossing node @p n, mirroring path.cpp. */
double
traversalCost(const Topology &topo, NodeId n, const PathCost &cost)
{
    if (topo.node(n).kind == NodeKind::Trap)
        return cost.trapPassThrough;
    return topo.degree(n) <= 3 ? cost.yJunction : cost.xJunction;
}

/**
 * Floyd-Warshall over the node graph with intermediate-node traversal
 * costs: dist[u][v] covers the edges of the u..v walk plus the
 * traversal price of every interior node (endpoints are free, matching
 * PathFinder's semantics).
 */
std::vector<std::vector<double>>
referenceDistances(const Topology &topo, const PathCost &cost)
{
    const int n = topo.nodeCount();
    const double inf = 1e18;
    std::vector<std::vector<double>> dist(n,
                                          std::vector<double>(n, inf));
    for (int u = 0; u < n; ++u)
        dist[u][u] = 0;
    for (EdgeId e = 0; e < topo.edgeCount(); ++e) {
        const TopoEdge &edge = topo.edge(e);
        const double w = edge.segments * cost.perSegment;
        dist[edge.a][edge.b] = std::min(dist[edge.a][edge.b], w);
        dist[edge.b][edge.a] = std::min(dist[edge.b][edge.a], w);
    }
    for (int w = 0; w < n; ++w) {
        const double through = traversalCost(topo, w, cost);
        for (int u = 0; u < n; ++u) {
            if (u == w || dist[u][w] >= inf)
                continue;
            for (int v = 0; v < n; ++v) {
                if (v == w)
                    continue;
                const double via = dist[u][w] + through + dist[w][v];
                if (via < dist[u][v])
                    dist[u][v] = via;
            }
        }
    }
    return dist;
}

/** Random connected topology: spanning tree plus chords. */
Topology
randomTopology(Rng &rng)
{
    Topology topo;
    const int traps = 2 + static_cast<int>(rng.nextBelow(7));
    const int junctions = static_cast<int>(rng.nextBelow(5));
    const int nodes = traps + junctions;

    // Interleave trap/junction creation so node ids and kinds mix, but
    // guarantee the trap quota exactly.
    std::vector<char> is_trap;
    for (int i = 0; i < traps; ++i)
        is_trap.push_back(1);
    for (int i = 0; i < junctions; ++i)
        is_trap.push_back(0);
    for (int i = nodes - 1; i > 0; --i) {
        const int j = static_cast<int>(rng.nextBelow(i + 1));
        std::swap(is_trap[i], is_trap[j]);
    }
    for (int i = 0; i < nodes; ++i) {
        if (is_trap[i])
            topo.addTrap(2 + static_cast<int>(rng.nextBelow(20)));
        else
            topo.addJunction();
    }

    // Random spanning tree: attach node i to an earlier node.
    for (int i = 1; i < nodes; ++i)
        topo.connect(i, static_cast<int>(rng.nextBelow(i)),
                     1 + static_cast<int>(rng.nextBelow(3)));
    // Chords for cycles (parallel edges allowed; Dijkstra and the
    // reference both take the min).
    const int chords = static_cast<int>(rng.nextBelow(4));
    for (int c = 0; c < chords; ++c) {
        const NodeId a = static_cast<int>(rng.nextBelow(nodes));
        const NodeId b = static_cast<int>(rng.nextBelow(nodes));
        if (a != b)
            topo.connect(a, b, 1 + static_cast<int>(rng.nextBelow(3)));
    }

    // Junctions that ended up dangling (degree < 2) violate the device
    // invariants; hang them off a second node to keep the graph legal.
    for (NodeId n = 0; n < topo.nodeCount(); ++n) {
        if (topo.node(n).kind == NodeKind::Junction &&
            topo.degree(n) < 2)
            topo.connect(n, n == 0 ? 1 : 0, 1);
    }
    return topo;
}

/** Walk @p p's steps, checking the sequence is a real src->dst walk. */
void
checkPathValidity(const Topology &topo, const Path &p,
                  const PathCost &cost)
{
    ASSERT_FALSE(p.steps.empty());
    EXPECT_EQ(p.steps.front().kind, PathStep::Kind::Edge);
    EXPECT_EQ(p.steps.back().kind, PathStep::Kind::Edge);

    NodeId at = p.src;
    double walked = 0;
    for (size_t i = 0; i < p.steps.size(); ++i) {
        const PathStep &step = p.steps[i];
        if (step.kind == PathStep::Kind::Edge) {
            const TopoEdge &edge = topo.edge(step.id);
            ASSERT_TRUE(edge.a == at || edge.b == at)
                << "edge " << step.id << " not incident to node " << at;
            at = edge.other(at);
            walked += edge.segments * cost.perSegment;
        } else {
            // Non-edge steps name the node the walk currently sits on,
            // and charge its traversal price.
            ASSERT_EQ(step.id, at);
            const NodeKind kind = topo.node(at).kind;
            EXPECT_EQ(step.kind == PathStep::Kind::ThroughTrap,
                      kind == NodeKind::Trap);
            walked += traversalCost(topo, at, cost);
            // Interior only: never first or last.
            EXPECT_GT(i, 0u);
            EXPECT_LT(i, p.steps.size() - 1);
        }
    }
    EXPECT_EQ(at, p.dst);
    // The step sequence's own cost must equal the reported cost.
    EXPECT_NEAR(walked, p.cost, 1e-9);
}

TEST(PathProperty, MatchesFloydWarshallOnRandomTopologies)
{
    Rng rng(0xABCD2026);
    for (int trial = 0; trial < 50; ++trial) {
        const Topology topo = randomTopology(rng);
        ASSERT_TRUE(topo.isConnected());
        const PathCost cost;
        const PathFinder finder(topo, cost);
        const auto ref = referenceDistances(topo, cost);

        for (TrapId a = 0; a < topo.trapCount(); ++a) {
            for (TrapId b = 0; b < topo.trapCount(); ++b) {
                const double got = finder.cost(a, b);
                const double want =
                    ref[topo.trapNode(a)][topo.trapNode(b)];
                // Optimality: Dijkstra == Floyd-Warshall.
                EXPECT_NEAR(got, want, 1e-9)
                    << "trial " << trial << " traps " << a << "->" << b
                    << " on " << topo.summary();
                // Symmetry.
                EXPECT_DOUBLE_EQ(got, finder.cost(b, a));
                if (a != b)
                    checkPathValidity(topo, finder.path(a, b), cost);
                else
                    EXPECT_TRUE(finder.path(a, b).steps.empty());
            }
        }
    }
}

/** The new builder families agree with the reference too. */
TEST(PathProperty, MatchesFloydWarshallOnBuilderFamilies)
{
    const char *specs[] = {"ring:3",  "ring:8",   "star:2",
                           "star:7",  "htree:1",  "htree:4",
                           "grid:1x3", "grid:3x4", "linear:9:s3"};
    for (const char *spec : specs) {
        const Topology topo = makeFromSpec(spec, 6);
        const PathCost cost;
        const PathFinder finder(topo, cost);
        const auto ref = referenceDistances(topo, cost);
        for (TrapId a = 0; a < topo.trapCount(); ++a)
            for (TrapId b = 0; b < topo.trapCount(); ++b)
                EXPECT_NEAR(finder.cost(a, b),
                            ref[topo.trapNode(a)][topo.trapNode(b)],
                            1e-9)
                    << spec << " " << a << "->" << b;
    }
}

} // namespace
} // namespace qccd
