/**
 * @file
 * Reproduces Table I: operation times for each shuttling primitive, plus
 * the gate-time model fits of Section VII-A evaluated on representative
 * geometries. These are model inputs; printing them verifies the
 * configured constants match the paper.
 */

#include <iostream>

#include "common/table.hpp"
#include "models/gate_time.hpp"
#include "models/shuttle_time.hpp"

int
main()
{
    using namespace qccd;

    std::cout << "=== Table I: shuttling operation times ===\n";
    const ShuttleTimeModel shuttle;
    TextTable t1;
    t1.addRow({"Operation", "Time (us)"});
    t1.addRow({"Move ion through one segment",
               formatSig(shuttle.movePerSegment, 3)});
    t1.addRow({"Splitting operation on a chain",
               formatSig(shuttle.split, 3)});
    t1.addRow({"Merging an ion with a chain",
               formatSig(shuttle.merge, 3)});
    t1.addRow({"Crossing Y-junction", formatSig(shuttle.yJunction, 3)});
    t1.addRow({"Crossing X-junction", formatSig(shuttle.xJunction, 3)});
    t1.addRow({"Ion-swap rotation (IS hop, assumed)",
               formatSig(shuttle.ionSwapRotation, 3)});
    std::cout << t1.render() << "\n";

    std::cout << "=== Section VII-A: two-qubit gate time fits (us) ===\n";
    TextTable t2;
    t2.addRow({"impl", "d=1,N=15", "d=7,N=15", "d=14,N=15", "d=1,N=30",
               "d=29,N=30"});
    for (GateImpl impl : {GateImpl::AM1, GateImpl::AM2, GateImpl::PM,
                          GateImpl::FM}) {
        const GateTimeModel model(impl);
        t2.addRow({gateImplName(impl),
                   formatSig(model.twoQubit(1, 15), 4),
                   formatSig(model.twoQubit(7, 15), 4),
                   formatSig(model.twoQubit(14, 15), 4),
                   formatSig(model.twoQubit(1, 30), 4),
                   formatSig(model.twoQubit(29, 30), 4)});
    }
    std::cout << t2.render();
    return 0;
}
