/**
 * @file
 * Topology-family study beyond the paper: the generalized architecture
 * layer's ring, star and H-tree devices against the L6 linear baseline
 * (same toolflow, same models), swept over trap capacity for two
 * contrasting communication patterns (bv shared-ancilla, qft all
 * distances). The CSV is reproduced bit-identically by
 * examples/sweeps/topology_families.sweep and pinned in golden/.
 */

#include <iostream>

#include "core/export.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    const std::vector<std::string> apps{"bv", "qft"};
    const std::vector<int> caps{14, 22, 30};
    const std::vector<std::string> topologies{"linear:6", "ring:6",
                                              "star:6", "htree:3"};

    // One engine across all families: each app lowers once and every
    // family's points share the worker pool.
    SweepEngine engine;
    std::vector<SweepPoint> all;
    for (const std::string &topo : topologies) {
        const auto points =
            sweepCapacity(engine, apps, caps, [&](int cap) {
                DesignPoint dp;
                dp.topologySpec = topo;
                dp.trapCapacity = cap;
                return dp;
            });
        all.insert(all.end(), points.begin(), points.end());
    }

    std::cout << "=== Topology families: L6 vs ring:6 / star:6 / "
                 "htree:3 (FM, GS) ===\n\n";
    for (const std::string &topo : topologies) {
        std::vector<SweepPoint> series;
        for (const SweepPoint &p : all)
            if (p.design.topologySpec == topo)
                series.push_back(p);
        std::cout << "--- " << topo << ": runtime (s) ---\n"
                  << seriesTable(series, metricTimeSeconds,
                                 topo + " time[s]")
                  << "\n";
    }

    writeTextFile(toCsv(all), "topology_families.csv");
    std::cout << "wrote topology_families.csv (" << all.size()
              << " rows)\n";
    return 0;
}
