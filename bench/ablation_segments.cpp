/**
 * @file
 * Ablation: segments per inter-trap edge. The paper's Table I charges
 * 5 us and k2 heating per segment; real devices differ in how many
 * segments separate traps. This sweep shows the (small) runtime and
 * fidelity sensitivity, confirming split/merge - not linear transport -
 * dominates shuttling cost.
 */

#include <iostream>

#include "common/table.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    // Each segment count is a distinct architecture (expressed with the
    // ":sN" spec suffix), so the engine builds five contexts and shares
    // each between the two applications.
    SweepEngine engine;
    std::vector<SweepJob> jobs;
    const std::vector<int> segmentCounts{1, 2, 4, 8, 16};
    for (const char *app : {"qft", "bv"}) {
        const auto native = engine.nativeBenchmark(app);
        for (int segments : segmentCounts) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = DesignPoint::linear(6, 22);
            job.design.topologySpec =
                "linear:6:s" + std::to_string(segments);
            jobs.push_back(std::move(job));
        }
    }
    const auto points = engine.run(jobs);

    std::cout << "=== Ablation: segments per inter-trap edge "
                 "(linear:6 cap=22, FM-GS) ===\n";
    TextTable table;
    table.addRow({"app", "segments/edge", "time (s)", "fidelity",
                  "segments moved"});
    size_t at = 0;
    for (const char *app : {"qft", "bv"}) {
        for (int segments : segmentCounts) {
            const RunResult &r = points[at++].result;
            table.addRow(
                {app, std::to_string(segments),
                 formatSig(r.totalTime() / kSecondUs, 4),
                 formatSci(r.fidelity(), 3),
                 std::to_string(r.sim.counts.segmentsMoved)});
        }
    }
    std::cout << table.render();
    return 0;
}
