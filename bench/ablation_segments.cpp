/**
 * @file
 * Ablation: segments per inter-trap edge. The paper's Table I charges
 * 5 us and k2 heating per segment; real devices differ in how many
 * segments separate traps. This sweep shows the (small) runtime and
 * fidelity sensitivity, confirming split/merge - not linear transport -
 * dominates shuttling cost.
 */

#include <iostream>

#include "arch/builders.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "common/table.hpp"
#include "compiler/scheduler.hpp"

int
main()
{
    using namespace qccd;

    std::cout << "=== Ablation: segments per inter-trap edge "
                 "(linear:6 cap=22, FM-GS) ===\n";
    TextTable table;
    table.addRow({"app", "segments/edge", "time (s)", "fidelity",
                  "segments moved"});
    HardwareParams hw;
    for (const char *app : {"qft", "bv"}) {
        const Circuit native = decomposeToNative(makeBenchmark(app));
        for (int segments : {1, 2, 4, 8, 16}) {
            const Topology topo = makeLinear(6, 22, segments);
            Scheduler sched(native, topo, hw,
                            ScheduleOptions{false, false});
            const ScheduleResult r = sched.run();
            table.addRow(
                {app, std::to_string(segments),
                 formatSig(r.metrics.makespan / kSecondUs, 4),
                 formatSci(r.metrics.fidelity(), 3),
                 std::to_string(r.metrics.counts.segmentsMoved)});
        }
    }
    std::cout << table.render();
    return 0;
}
