/**
 * @file
 * google-benchmark convergence bench for the surrogate-guided search:
 * wall time of a default-budget search over a fig7-shaped space, with
 * counters for the headline economics — points really evaluated vs.
 * the exhaustive count, the Spearman rank correlation between the
 * analytic surrogate's ordering and the simulator's, and whether the
 * search found the exhaustive optimum. scripts/run_benches.sh lifts
 * the search_* counters into BENCH_SUMMARY.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "circuit/stats.hpp"
#include "core/cost_model.hpp"
#include "core/search.hpp"
#include "core/sweep_engine.hpp"
#include "core/sweep_spec.hpp"

namespace
{

using namespace qccd;

/** A fig7-shaped space: apps x device families x capacities x gates. */
constexpr const char *kSpecText = R"({
  "name": "search_convergence",
  "sweeps": [{
    "apps": ["bv", "adder", "qft"],
    "topology": ["linear:6", "ring:6", "grid:2x3"],
    "capacity": [14, 18, 22, 26],
    "gate": ["FM", "AM2"]
  }]
})";

/** Rank of every index under @p better (competition ranking; ties
 *  broken by index, matching the search's deterministic order). */
template <typename Less>
std::vector<size_t>
ranksUnder(size_t n, Less better)
{
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), better);
    std::vector<size_t> rank(n);
    for (size_t r = 0; r < n; ++r)
        rank[order[r]] = r;
    return rank;
}

void
BM_SearchConvergence(benchmark::State &state)
{
    const SweepPlan plan =
        parseSweepPlan(kSpecText, "search_convergence");
    SweepEngine engine;
    SweepSpecRunner runner(engine);
    const std::vector<PlannedPoint> points = plan.expand();

    // Exhaustive reference (outside the timing loop).
    std::vector<SweepPoint> exhaustive;
    exhaustive.reserve(points.size());
    runner.run(points, 0, [&](const SweepPoint &point) {
        exhaustive.push_back(point);
    });
    size_t best = 0;
    for (size_t i = 1; i < exhaustive.size(); ++i) {
        const double fid = exhaustive[i].result.sim.logFidelity;
        const double at = exhaustive[best].result.sim.logFidelity;
        if (fid > at ||
            (fid == at && exhaustive[i].result.totalTime() <
                              exhaustive[best].result.totalTime()))
            best = i;
    }

    // Analytic priors for the rank-correlation counter.
    const AnalyticCostModel model;
    const size_t n = points.size();
    std::vector<CostPrediction> priors(n);
    for (size_t i = 0; i < n; ++i)
        priors[i] = model.predict(
            points[i].design,
            computeStats(*runner.circuitFor(points[i])),
            extractTopologyFeatures(
                engine.context(points[i].design)->topology()));
    const std::vector<size_t> predictedRank =
        ranksUnder(n, [&](size_t a, size_t b) {
            if (priors[a].logFidelity != priors[b].logFidelity)
                return priors[a].logFidelity > priors[b].logFidelity;
            if (priors[a].timeUs != priors[b].timeUs)
                return priors[a].timeUs < priors[b].timeUs;
            return a < b;
        });
    const std::vector<size_t> realRank =
        ranksUnder(n, [&](size_t a, size_t b) {
            const double fa = exhaustive[a].result.sim.logFidelity;
            const double fb = exhaustive[b].result.sim.logFidelity;
            if (fa != fb)
                return fa > fb;
            const double ta = exhaustive[a].result.totalTime();
            const double tb = exhaustive[b].result.totalTime();
            if (ta != tb)
                return ta < tb;
            return a < b;
        });
    double sumSq = 0;
    for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(predictedRank[i]) -
                         static_cast<double>(realRank[i]);
        sumSq += d * d;
    }
    const auto count = static_cast<double>(n);
    const double spearman =
        n < 2 ? 1.0
              : 1.0 - 6.0 * sumSq / (count * (count * count - 1.0));

    size_t evaluated = 0;
    bool foundOptimum = false;
    for (auto _ : state) {
        SearchEngine search(engine);
        const SearchOutcome outcome =
            search.run(PlanSearchSpace(plan), {});
        evaluated = outcome.stats.evaluated;
        foundOptimum =
            outcome.haveWinner && outcome.winnerIndex == best;
        benchmark::DoNotOptimize(outcome.winnerIndex);
    }

    state.counters["search_points_evaluated"] =
        static_cast<double>(evaluated);
    state.counters["search_exhaustive_points"] =
        static_cast<double>(n);
    state.counters["search_rank_correlation"] = spearman;
    state.counters["search_found_optimum"] = foundOptimum ? 1.0 : 0.0;
}
BENCHMARK(BM_SearchConvergence)->Unit(benchmark::kMillisecond);

} // namespace
