/**
 * @file
 * Extension study: sympathetic recooling after merges. The paper's
 * model accumulates motional energy monotonically; real QCCD machines
 * (e.g. Honeywell's) recool chains with coolant ions. This bench adds a
 * configurable post-merge recool factor and quantifies how much of the
 * shuttling fidelity penalty recooling recovers - a future-work knob
 * beyond the paper's model, off by default everywhere else.
 */

#include <iostream>

#include "common/table.hpp"
#include "core/export.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    // One shared L6 cap=22 context; the recool factor is a pure model
    // knob, so all 15 points ride the same architecture.
    SweepEngine engine;
    std::vector<SweepJob> jobs;
    for (const char *app : {"qft", "squareroot", "supremacy"}) {
        const auto native = engine.nativeBenchmark(app);
        for (double factor : {1.0, 0.5, 0.25, 0.1, 0.01}) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = DesignPoint::linear(6, 22);
            job.design.hw.recoolFactor = factor;
            jobs.push_back(std::move(job));
        }
    }
    const auto points = engine.run(jobs);

    std::cout << "=== Extension: post-merge sympathetic recooling "
                 "(L6 cap=22, FM-GS) ===\n";
    TextTable table;
    table.addRow({"app", "recool factor", "fidelity",
                  "max heat (quanta)", "time (s)"});
    for (const SweepPoint &p : points) {
        const RunResult &r = p.result;
        table.addRow({p.application,
                      formatSig(p.design.hw.recoolFactor, 3),
                      formatSci(r.fidelity(), 3),
                      formatSig(r.sim.maxChainEnergy, 4),
                      formatSig(r.totalTime() / kSecondUs, 4)});
    }
    std::cout << table.render();
    std::cout << "\nfactor=1.0 is the paper's model (no recooling); "
                 "smaller factors recool chains toward the ground state "
                 "after each merge.\n";

    // Raw series for external plotting and the golden check.
    writeTextFile(toCsv(points), "ablation_cooling.csv");
    std::cout << "wrote ablation_cooling.csv (" << points.size()
              << " rows)\n";
    return 0;
}
