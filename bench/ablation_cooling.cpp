/**
 * @file
 * Extension study: sympathetic recooling after merges. The paper's
 * model accumulates motional energy monotonically; real QCCD machines
 * (e.g. Honeywell's) recool chains with coolant ions. This bench adds a
 * configurable post-merge recool factor and quantifies how much of the
 * shuttling fidelity penalty recooling recovers - a future-work knob
 * beyond the paper's model, off by default everywhere else.
 */

#include <iostream>

#include "benchgen/benchgen.hpp"
#include "common/table.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    std::cout << "=== Extension: post-merge sympathetic recooling "
                 "(L6 cap=22, FM-GS) ===\n";
    TextTable table;
    table.addRow({"app", "recool factor", "fidelity",
                  "max heat (quanta)", "time (s)"});
    for (const char *app : {"qft", "squareroot", "supremacy"}) {
        const Circuit circuit = makeBenchmark(app);
        for (double factor : {1.0, 0.5, 0.25, 0.1, 0.01}) {
            DesignPoint dp = DesignPoint::linear(6, 22);
            dp.hw.recoolFactor = factor;
            const RunResult r = runToolflow(circuit, dp);
            table.addRow({app, formatSig(factor, 3),
                          formatSci(r.fidelity(), 3),
                          formatSig(r.sim.maxChainEnergy, 4),
                          formatSig(r.totalTime() / kSecondUs, 4)});
        }
    }
    std::cout << table.render();
    std::cout << "\nfactor=1.0 is the paper's model (no recooling); "
                 "smaller factors recool chains toward the ground state "
                 "after each merge.\n";
    return 0;
}
