/**
 * @file
 * google-benchmark microbenchmarks: throughput of the physical models,
 * the OpenQASM parser, workload generation, and the full compile +
 * simulate toolflow. These verify the simulator itself is fast enough
 * for large design-space sweeps (hundreds of runs per figure).
 */

#include <benchmark/benchmark.h>

#include "arch/builders.hpp"
#include "arch/path.hpp"
#include "benchgen/benchgen.hpp"
#include "circuit/decompose.hpp"
#include "circuit/qasm/parser.hpp"
#include "circuit/qasm/writer.hpp"
#include "compiler/scheduler.hpp"
#include "core/sweep_engine.hpp"
#include "core/toolflow.hpp"
#include "models/model_tables.hpp"
#include "sim/isa.hpp"

namespace
{

using namespace qccd;

void
BM_GateTimeModel(benchmark::State &state)
{
    const GateTimeModel model(GateImpl::FM);
    int d = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.twoQubit(1 + d % 19, 20));
        ++d;
    }
}
BENCHMARK(BM_GateTimeModel);

void
BM_FidelityModel(benchmark::State &state)
{
    const FidelityModel model;
    double nbar = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.twoQubitError(200.0, 20, nbar));
        nbar += 0.01;
    }
}
BENCHMARK(BM_FidelityModel);

void
BM_PathFinderConstruction(benchmark::State &state)
{
    const Topology topo = makeGrid(2, static_cast<int>(state.range(0)),
                                   20);
    for (auto _ : state) {
        PathFinder finder(topo, PathCost{});
        benchmark::DoNotOptimize(finder.cost(0, topo.trapCount() - 1));
    }
}
BENCHMARK(BM_PathFinderConstruction)->Arg(3)->Arg(8)->Arg(16);

void
BM_QasmParse(benchmark::State &state)
{
    const std::string text = qasm::write(makeQft(32));
    for (auto _ : state) {
        const Circuit c = qasm::parse(text);
        benchmark::DoNotOptimize(c.size());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * text.size());
}
BENCHMARK(BM_QasmParse);

void
BM_GenerateSupremacy(benchmark::State &state)
{
    for (auto _ : state) {
        const Circuit c = makeSupremacy(8, 8, 560);
        benchmark::DoNotOptimize(c.size());
    }
}
BENCHMARK(BM_GenerateSupremacy);

void
BM_DecomposeQft(benchmark::State &state)
{
    const Circuit qft = makeQft(64);
    for (auto _ : state) {
        const Circuit native = decomposeToNative(qft);
        benchmark::DoNotOptimize(native.size());
    }
}
BENCHMARK(BM_DecomposeQft);

void
BM_ScheduleQft(benchmark::State &state)
{
    const Circuit native = decomposeToNative(
        makeQft(static_cast<int>(state.range(0))));
    const Topology topo = makeLinear(6, 22);
    HardwareParams hw;
    for (auto _ : state) {
        ScheduleOptions sched_options;
        sched_options.collectTrace = false;
        Scheduler sched(native, topo, hw, sched_options);
        benchmark::DoNotOptimize(sched.run().metrics.makespan);
    }
}
BENCHMARK(BM_ScheduleQft)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_FullToolflowSupremacy(benchmark::State &state)
{
    const Circuit app = makeBenchmark("supremacy");
    const DesignPoint dp = DesignPoint::linear(6, 22);
    for (auto _ : state) {
        const RunResult r = runToolflow(app, dp);
        benchmark::DoNotOptimize(r.fidelity());
    }
}
BENCHMARK(BM_FullToolflowSupremacy)->Unit(benchmark::kMillisecond);

void
BM_ToolflowSharedContext(benchmark::State &state)
{
    // Same workload as BM_FullToolflowSupremacy minus the per-run
    // lowering and Topology/PathFinder construction: the gap between
    // the two is the fixed cost the SweepEngine caches away per point.
    const Circuit native = decomposeToNative(makeBenchmark("supremacy"));
    const DesignPoint dp = DesignPoint::linear(6, 22);
    const ToolflowContext context(dp);
    for (auto _ : state) {
        const RunResult r = runToolflow(native, dp, context);
        benchmark::DoNotOptimize(r.fidelity());
    }
}
BENCHMARK(BM_ToolflowSharedContext)->Unit(benchmark::kMillisecond);

void
BM_ToolflowPoint(benchmark::State &state)
{
    // One design point exactly as a sweep worker evaluates it: shared
    // lowered circuit and ToolflowContext, pooled SchedulerScratch,
    // and the two-pass runtime decomposition (the Fig. 6 workload).
    // This is the per-point number the >= 2x PR-3 target is measured
    // on; scripts/run_benches.sh exports it as toolflow_point_us.
    const Circuit native = decomposeToNative(makeBenchmark("supremacy"));
    const DesignPoint dp = DesignPoint::linear(6, 22);
    const ToolflowContext context(dp);
    RunOptions options;
    options.decomposeRuntime = true;
    SchedulerScratch scratch;
    for (auto _ : state) {
        const RunResult r =
            runToolflow(native, dp, context, options, &scratch);
        benchmark::DoNotOptimize(r.fidelity());
    }
}
BENCHMARK(BM_ToolflowPoint)->Unit(benchmark::kMillisecond);

void
BM_ModelTablesLookup(benchmark::State &state)
{
    HardwareParams hw;
    const auto tables = ModelTables::shared(hw, 30);
    int d = 1;
    for (auto _ : state) {
        const int sep = 1 + d % 19;
        benchmark::DoNotOptimize(tables->twoQubit(sep, 20));
        benchmark::DoNotOptimize(tables->scaleFactorA(20));
        ++d;
    }
}
BENCHMARK(BM_ModelTablesLookup);

void
BM_WriteIsa(benchmark::State &state)
{
    const Circuit c = makeBenchmarkSized("squareroot", 20);
    const ScheduleResult r =
        runToolflowDetailed(c, DesignPoint::linear(3, 10));
    size_t bytes = 0;
    for (auto _ : state) {
        const std::string text = writeIsa(r.trace);
        bytes = text.size();
        benchmark::DoNotOptimize(text.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(bytes));
}
BENCHMARK(BM_WriteIsa);

void
BM_ParseIsa(benchmark::State &state)
{
    const Circuit c = makeBenchmarkSized("squareroot", 20);
    const ScheduleResult r =
        runToolflowDetailed(c, DesignPoint::linear(3, 10));
    const std::string text = writeIsa(r.trace);
    for (auto _ : state) {
        const Trace parsed = parseIsa(text);
        benchmark::DoNotOptimize(parsed.size());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseIsa);

void
BM_SweepEngineBatch(benchmark::State &state)
{
    // An 18-point capacity sweep through the engine; Arg is the worker
    // count, so Arg(1) vs Arg(4) shows the parallel win on multi-core.
    const int jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        SweepEngine engine(jobs);
        const auto points =
            sweepCapacity(engine, {"bv", "adder", "supremacy"},
                          paperCapacities(), [](int cap) {
                              return DesignPoint::linear(6, cap);
                          });
        benchmark::DoNotOptimize(points.size());
    }
}
BENCHMARK(BM_SweepEngineBatch)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_SweepDelta(benchmark::State &state)
{
    // The staged toolflow's delta-evaluation win, on the shape of
    // examples/sweeps/sensitivity_fidelity.sweep: 2 apps x 2 gate
    // implementations x 5 co-varied model-knob sets = 20 points but
    // only 4 distinct schedule keys. A serial engine must schedule
    // once per key and replay the rest; the counters (exported to
    // BENCH_SUMMARY.json by scripts/run_benches.sh) pin the >= 2x
    // fewer-full-schedules acceptance target.
    struct Knobs
    {
        double gamma;
        double kappa;
    };
    const Knobs knobs[] = {{0.5, 2.5e-6},
                           {1.0, 5e-6},
                           {2.0, 1e-5},
                           {5.0, 2.5e-5},
                           {10.0, 5e-5}};
    std::vector<SweepJob> jobs;
    SweepEngine seed(1);
    for (const char *app : {"qft", "supremacy"}) {
        const auto native = seed.nativeBenchmark(app);
        for (GateImpl gate : {GateImpl::FM, GateImpl::AM1}) {
            for (const Knobs &k : knobs) {
                SweepJob job;
                job.application = app;
                job.native = native;
                job.design = DesignPoint::linear(6, 22, gate);
                job.design.hw.gammaPerS = k.gamma;
                job.design.hw.kappa = k.kappa;
                jobs.push_back(std::move(job));
            }
        }
    }

    size_t points = 0;
    size_t full = 0;
    size_t replays = 0;
    for (auto _ : state) {
        SweepEngine engine(1);
        const auto results = engine.run(jobs);
        benchmark::DoNotOptimize(results.size());
        points += results.size();
        full += engine.deltaStats().fullSchedules;
        replays += engine.deltaStats().replays;
    }
    state.counters["points"] = static_cast<double>(points);
    state.counters["full_schedules"] = static_cast<double>(full);
    state.counters["replays"] = static_cast<double>(replays);
}
BENCHMARK(BM_SweepDelta)->Unit(benchmark::kMillisecond);

} // namespace
