/**
 * @file
 * Reproduces Figure 6 (trap sizing study): L6 device, FM gates, GS
 * reordering, capacity swept 14-34.
 *
 *  6a: application runtime for all six applications
 *  6b: QFT compute/communication runtime decomposition
 *  6c-6e: application fidelities
 *  6f: maximum motional mode energy across the device
 *  6g: Supremacy two-qubit gate error decomposition
 *      (background Gamma*tau vs motional A*(2nbar+1))
 */

#include <iostream>
#include <map>

#include "common/table.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"

int
main()
{
    using namespace qccd;

    const std::vector<std::string> apps{"adder", "supremacy", "qft",
                                        "bv", "qaoa", "squareroot"};
    const std::vector<int> caps = paperCapacities();
    RunOptions options;
    options.decomposeRuntime = true;

    const auto points = sweepCapacity(apps, caps, [](int cap) {
        return DesignPoint::linear(6, cap, GateImpl::FM,
                                   ReorderMethod::GS);
    }, options);

    std::cout << "=== Figure 6: trap sizing (L6, FM, GS) ===\n\n";

    std::cout << "--- Fig 6a: application runtime (s) ---\n"
              << seriesTable(points, metricTimeSeconds, "time[s]")
              << "\n";

    std::cout << "--- Fig 6b: QFT compute vs communication time (s) ---\n";
    {
        TextTable table;
        std::vector<std::string> h{"QFT series"};
        for (int c : caps)
            h.push_back(std::to_string(c));
        table.addRow(h);
        std::vector<std::string> comp{"computation"};
        std::vector<std::string> comm{"communication"};
        for (int c : caps) {
            for (const SweepPoint &p : points) {
                if (p.application == "qft" &&
                    p.design.trapCapacity == c) {
                    comp.push_back(
                        formatSig(metricComputeTimeSeconds(p.result), 4));
                    comm.push_back(
                        formatSig(metricCommTimeSeconds(p.result), 4));
                }
            }
        }
        table.addRow(comp);
        table.addRow(comm);
        std::cout << table.render() << "\n";
    }

    std::cout << "--- Fig 6c-6e: application fidelity ---\n"
              << seriesTable(points, metricFidelity, "fidelity", true)
              << "\n";

    std::cout << "--- Fig 6c-6e (log fidelity, for deep-loss configs) "
                 "---\n"
              << seriesTable(points, metricLogFidelity, "ln(fidelity)")
              << "\n";

    std::cout << "--- Fig 6f: max motional mode energy (quanta) ---\n"
              << seriesTable(points, metricMaxEnergy, "max energy")
              << "\n";

    std::cout << "--- Fig 6g: Supremacy MS gate error split (x1e-2) "
                 "---\n";
    {
        TextTable table;
        std::vector<std::string> h{"error term"};
        for (int c : caps)
            h.push_back(std::to_string(c));
        table.addRow(h);
        std::vector<std::string> bg{"background"};
        std::vector<std::string> mot{"motional"};
        for (int c : caps) {
            for (const SweepPoint &p : points) {
                if (p.application == "supremacy" &&
                    p.design.trapCapacity == c) {
                    bg.push_back(formatSig(
                        p.result.sim.meanBackgroundError() * 100, 4));
                    mot.push_back(formatSig(
                        p.result.sim.meanMotionalError() * 100, 4));
                }
            }
        }
        table.addRow(bg);
        table.addRow(mot);
        std::cout << table.render();
    }

    // Raw series for external plotting.
    writeTextFile(toCsv(points), "fig6_trap_sizing.csv");
    std::cout << "\nwrote fig6_trap_sizing.csv (" << points.size()
              << " rows)\n";
    return 0;
}
