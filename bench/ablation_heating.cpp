/**
 * @file
 * Ablation: heating constants k1/k2. The paper assumes rates one order
 * of magnitude better than Honeywell's measured ~2 quanta per shuttle
 * (Section VII-B, k1=0.1, k2=0.01). This sweep shows how application
 * fidelity degrades if that projection is not met.
 */

#include <iostream>

#include "benchgen/benchgen.hpp"
#include "common/table.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    std::cout << "=== Ablation: heating constants (L6 cap=22, FM-GS) "
                 "===\n";
    TextTable table;
    table.addRow({"app", "k1", "k2", "fidelity", "max heat (quanta)"});
    const double scales[] = {0.1, 0.5, 1.0, 2.0, 10.0};
    for (const char *app : {"qft", "supremacy"}) {
        const Circuit circuit = makeBenchmark(app);
        for (double s : scales) {
            DesignPoint dp = DesignPoint::linear(6, 22);
            dp.hw.heatingK1 = 0.1 * s;
            dp.hw.heatingK2 = 0.01 * s;
            const RunResult r = runToolflow(circuit, dp);
            table.addRow({app, formatSig(dp.hw.heatingK1, 3),
                          formatSig(dp.hw.heatingK2, 3),
                          formatSci(r.fidelity(), 3),
                          formatSig(r.sim.maxChainEnergy, 4)});
        }
    }
    std::cout << table.render();
    std::cout << "\nk1=1.0 corresponds to Honeywell-scale heating; the "
                 "paper's projected rates are the first row.\n";
    return 0;
}
